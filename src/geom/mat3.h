// Small 3x3 matrix for continuum mechanics kinematics (deformation
// gradients, stress and strain tensors). Value semantics, row-major.
#pragma once

#include <array>
#include <cmath>

#include "common/config.h"
#include "geom/vec3.h"

namespace prom {

struct Mat3 {
  // m[i][j], row i, column j.
  std::array<std::array<real, 3>, 3> m{};

  static constexpr Mat3 zero() { return {}; }
  static constexpr Mat3 identity() {
    Mat3 a;
    a.m[0][0] = a.m[1][1] = a.m[2][2] = 1;
    return a;
  }

  constexpr real& operator()(int i, int j) { return m[i][j]; }
  constexpr real operator()(int i, int j) const { return m[i][j]; }

  constexpr Mat3& operator+=(const Mat3& o) {
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) m[i][j] += o.m[i][j];
    }
    return *this;
  }
  constexpr Mat3& operator-=(const Mat3& o) {
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) m[i][j] -= o.m[i][j];
    }
    return *this;
  }
  constexpr Mat3& operator*=(real s) {
    for (auto& row : m) {
      for (real& v : row) v *= s;
    }
    return *this;
  }
};

constexpr Mat3 operator+(Mat3 a, const Mat3& b) { return a += b; }
constexpr Mat3 operator-(Mat3 a, const Mat3& b) { return a -= b; }
constexpr Mat3 operator*(Mat3 a, real s) { return a *= s; }
constexpr Mat3 operator*(real s, Mat3 a) { return a *= s; }

constexpr Mat3 matmul(const Mat3& a, const Mat3& b) {
  Mat3 c;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      real sum = 0;
      for (int k = 0; k < 3; ++k) sum += a(i, k) * b(k, j);
      c(i, j) = sum;
    }
  }
  return c;
}

constexpr Vec3 matvec(const Mat3& a, const Vec3& x) {
  return {a(0, 0) * x.x + a(0, 1) * x.y + a(0, 2) * x.z,
          a(1, 0) * x.x + a(1, 1) * x.y + a(1, 2) * x.z,
          a(2, 0) * x.x + a(2, 1) * x.y + a(2, 2) * x.z};
}

constexpr Mat3 transpose(const Mat3& a) {
  Mat3 t;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) t(i, j) = a(j, i);
  }
  return t;
}

constexpr real trace(const Mat3& a) { return a(0, 0) + a(1, 1) + a(2, 2); }

constexpr real det(const Mat3& a) {
  return a(0, 0) * (a(1, 1) * a(2, 2) - a(1, 2) * a(2, 1)) -
         a(0, 1) * (a(1, 0) * a(2, 2) - a(1, 2) * a(2, 0)) +
         a(0, 2) * (a(1, 0) * a(2, 1) - a(1, 1) * a(2, 0));
}

/// Inverse; the caller must ensure det != 0.
constexpr Mat3 inverse(const Mat3& a) {
  const real d = det(a);
  const real id = real{1} / d;
  Mat3 inv;
  inv(0, 0) = (a(1, 1) * a(2, 2) - a(1, 2) * a(2, 1)) * id;
  inv(0, 1) = (a(0, 2) * a(2, 1) - a(0, 1) * a(2, 2)) * id;
  inv(0, 2) = (a(0, 1) * a(1, 2) - a(0, 2) * a(1, 1)) * id;
  inv(1, 0) = (a(1, 2) * a(2, 0) - a(1, 0) * a(2, 2)) * id;
  inv(1, 1) = (a(0, 0) * a(2, 2) - a(0, 2) * a(2, 0)) * id;
  inv(1, 2) = (a(0, 2) * a(1, 0) - a(0, 0) * a(1, 2)) * id;
  inv(2, 0) = (a(1, 0) * a(2, 1) - a(1, 1) * a(2, 0)) * id;
  inv(2, 1) = (a(0, 1) * a(2, 0) - a(0, 0) * a(2, 1)) * id;
  inv(2, 2) = (a(0, 0) * a(1, 1) - a(0, 1) * a(1, 0)) * id;
  return inv;
}

constexpr Mat3 sym(const Mat3& a) {
  Mat3 s;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) s(i, j) = real{0.5} * (a(i, j) + a(j, i));
  }
  return s;
}

constexpr Mat3 deviator(const Mat3& a) {
  Mat3 d = a;
  const real p = trace(a) / real{3};
  d(0, 0) -= p;
  d(1, 1) -= p;
  d(2, 2) -= p;
  return d;
}

constexpr real double_contract(const Mat3& a, const Mat3& b) {
  real sum = 0;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) sum += a(i, j) * b(i, j);
  }
  return sum;
}

inline real frobenius_norm(const Mat3& a) {
  return std::sqrt(double_contract(a, a));
}

/// Outer product of two vectors: (a ⊗ b)_ij = a_i b_j.
constexpr Mat3 outer(const Vec3& a, const Vec3& b) {
  Mat3 o;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) o(i, j) = a[i] * b[j];
  }
  return o;
}

}  // namespace prom
