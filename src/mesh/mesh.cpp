#include "mesh/mesh.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/error.h"
#include "geom/predicates.h"

namespace prom::mesh {
namespace {

// VTK hexahedron local face connectivity, outward-oriented for a
// right-handed (non-inverted) hex: bottom 0-3, top 4-7 with 4 above 0.
constexpr int kHexFaces[6][4] = {{0, 3, 2, 1}, {4, 5, 6, 7}, {0, 1, 5, 4},
                                 {1, 2, 6, 5}, {2, 3, 7, 6}, {3, 0, 4, 7}};

// Tetrahedron faces, outward-oriented for orient3d(v0,v1,v2,v3) > 0.
constexpr int kTetFaces[4][3] = {{0, 2, 1}, {0, 1, 3}, {1, 2, 3}, {0, 3, 2}};

// The 6-tet decomposition of a hex along the 0-6 diagonal; used for volume.
constexpr int kHexTets[6][4] = {{0, 1, 2, 6}, {0, 2, 3, 6}, {0, 3, 7, 6},
                                {0, 7, 4, 6}, {0, 4, 5, 6}, {0, 5, 1, 6}};

/// Newell's method: robust polygon normal for (possibly non-planar) quads.
Vec3 newell_normal(std::span<const Vec3> pts) {
  Vec3 n{};
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const Vec3& a = pts[i];
    const Vec3& b = pts[(i + 1) % pts.size()];
    n.x += (a.y - b.y) * (a.z + b.z);
    n.y += (a.z - b.z) * (a.x + b.x);
    n.z += (a.x - b.x) * (a.y + b.y);
  }
  return normalized(n);
}

}  // namespace

Mesh::Mesh(CellKind kind, std::vector<Vec3> coords, std::vector<idx> cells,
           std::vector<idx> cell_material)
    : kind_(kind),
      coords_(std::move(coords)),
      cells_(std::move(cells)),
      cell_material_(std::move(cell_material)) {
  const int npc = nodes_per_cell(kind_);
  PROM_CHECK(cells_.size() % npc == 0);
  PROM_CHECK(cell_material_.size() == cells_.size() / npc);
  for (idx v : cells_) {
    PROM_CHECK(v >= 0 && v < static_cast<idx>(coords_.size()));
  }
}

Vec3 Mesh::centroid(idx e) const {
  Vec3 c{};
  for (idx v : cell(e)) c += coords_[v];
  return c / static_cast<real>(nodes_per_cell(kind_));
}

graph::Graph Mesh::vertex_graph() const {
  std::vector<std::pair<idx, idx>> edges;
  const idx nc = num_cells();
  const int npc = nodes_per_cell(kind_);
  edges.reserve(static_cast<std::size_t>(nc) * npc * (npc - 1) / 2);
  for (idx e = 0; e < nc; ++e) {
    const auto verts = cell(e);
    for (int a = 0; a < npc; ++a) {
      for (int b = a + 1; b < npc; ++b) {
        edges.emplace_back(verts[a], verts[b]);
      }
    }
  }
  return graph::Graph::from_edges(num_vertices(), edges);
}

void Mesh::vertex_to_cells(std::vector<nnz_t>& offsets,
                           std::vector<idx>& out_cells) const {
  const idx nv = num_vertices();
  const idx nc = num_cells();
  const int npc = nodes_per_cell(kind_);
  offsets.assign(static_cast<std::size_t>(nv) + 1, 0);
  for (idx v : cells_) offsets[v + 1]++;
  for (idx v = 0; v < nv; ++v) offsets[v + 1] += offsets[v];
  out_cells.resize(cells_.size());
  std::vector<nnz_t> next(offsets.begin(), offsets.end() - 1);
  for (idx e = 0; e < nc; ++e) {
    for (int a = 0; a < npc; ++a) {
      out_cells[next[cells_[static_cast<std::size_t>(e) * npc + a]]++] = e;
    }
  }
}

std::vector<idx> Mesh::vertices_where(
    const std::function<bool(const Vec3&)>& pred) const {
  std::vector<idx> out;
  for (idx v = 0; v < num_vertices(); ++v) {
    if (pred(coords_[v])) out.push_back(v);
  }
  return out;
}

real cell_volume(const Mesh& mesh, idx e) {
  const auto verts = mesh.cell(e);
  const auto& x = mesh.coords();
  if (mesh.kind() == CellKind::kTet4) {
    return std::fabs(
        signed_tet_volume(x[verts[0]], x[verts[1]], x[verts[2]], x[verts[3]]));
  }
  real vol = 0;
  for (const auto& t : kHexTets) {
    vol += signed_tet_volume(x[verts[t[0]]], x[verts[t[1]]], x[verts[t[2]]],
                             x[verts[t[3]]]);
  }
  return std::fabs(vol);
}

real Mesh::volume() const {
  real vol = 0;
  for (idx e = 0; e < num_cells(); ++e) vol += cell_volume(*this, e);
  return vol;
}

std::vector<Facet> boundary_facets(const Mesh& mesh) {
  struct FaceUse {
    idx cell;
    idx material;
    std::array<idx, 4> verts;  // original (oriented) order
    int nv;
  };
  // Key: sorted vertex ids; value: the cells using the face.
  std::map<std::array<idx, 4>, std::vector<FaceUse>> uses;

  const bool hex = mesh.kind() == CellKind::kHex8;
  const int nfaces = hex ? 6 : 4;
  const int face_nv = hex ? 4 : 3;
  for (idx e = 0; e < mesh.num_cells(); ++e) {
    const auto verts = mesh.cell(e);
    for (int f = 0; f < nfaces; ++f) {
      FaceUse use;
      use.cell = e;
      use.material = mesh.material(e);
      use.nv = face_nv;
      use.verts = {kInvalidIdx, kInvalidIdx, kInvalidIdx, kInvalidIdx};
      for (int a = 0; a < face_nv; ++a) {
        use.verts[a] = hex ? verts[kHexFaces[f][a]] : verts[kTetFaces[f][a]];
      }
      std::array<idx, 4> key = use.verts;
      std::sort(key.begin(), key.end());
      uses[key].push_back(use);
    }
  }

  std::vector<Facet> facets;
  for (const auto& [key, list] : uses) {
    PROM_CHECK_MSG(list.size() <= 2, "non-manifold mesh face");
    const bool exterior = list.size() == 1;
    const bool interface =
        list.size() == 2 && list[0].material != list[1].material;
    if (!exterior && !interface) continue;
    for (const FaceUse& use : list) {
      Facet facet;
      facet.cell = use.cell;
      facet.material = use.material;
      facet.v = use.verts;
      std::vector<Vec3> pts;
      for (int a = 0; a < use.nv; ++a) pts.push_back(mesh.coord(use.verts[a]));
      Vec3 n = newell_normal(pts);
      // Orient away from the owning cell.
      Vec3 fc{};
      for (const Vec3& p : pts) fc += p;
      fc = fc / static_cast<real>(pts.size());
      if (dot(n, fc - mesh.centroid(use.cell)) < 0) n = -n;
      facet.normal = n;
      facets.push_back(facet);
    }
  }
  return facets;
}

graph::Graph facet_adjacency(std::span<const Facet> facets) {
  std::map<std::pair<idx, idx>, std::vector<idx>> edge_to_facets;
  for (std::size_t f = 0; f < facets.size(); ++f) {
    const int nv = facets[f].num_vertices();
    for (int a = 0; a < nv; ++a) {
      idx u = facets[f].v[a];
      idx v = facets[f].v[(a + 1) % nv];
      if (u > v) std::swap(u, v);
      edge_to_facets[{u, v}].push_back(static_cast<idx>(f));
    }
  }
  std::vector<std::pair<idx, idx>> edges;
  for (const auto& [edge, fs] : edge_to_facets) {
    for (std::size_t a = 0; a < fs.size(); ++a) {
      for (std::size_t b = a + 1; b < fs.size(); ++b) {
        if (facets[fs[a]].material == facets[fs[b]].material) {
          edges.emplace_back(fs[a], fs[b]);
        }
      }
    }
  }
  return graph::Graph::from_edges(static_cast<idx>(facets.size()), edges);
}

}  // namespace prom::mesh
