// Reproduction of the paper's §1 motivation: "direct methods possess
// sub-optimal time and space complexity, as the scale of the problems
// increase, when compared to iterative methods."
//
// Sweeps problem sizes and compares the sparse direct solver (Cholesky
// with RCM ordering) against the automatic multigrid (FMG-PCG) on the
// elastic cube: factor/iteration flops, fill, wall times, and where the
// crossover falls. Shape claims: direct factor flops and fill grow
// super-linearly with n while MG grows linearly, so MG overtakes the
// direct method as the problem grows — exactly the argument that
// motivates the paper.
#include <cstdio>
#include <cstdlib>

#include "app/driver.h"
#include "common/flops.h"
#include "common/timer.h"
#include "la/sparse_chol.h"
#include "mg/hierarchy.h"
#include "mg/solver.h"

using namespace prom;

int main() {
  const bool full = std::getenv("PROM_BENCH_FULL") != nullptr;
  std::vector<idx> sizes = {6, 8, 10, 12, 14};
  if (full) sizes.push_back(18);

  std::printf("Direct (sparse Cholesky + RCM) vs automatic multigrid "
              "(FMG-PCG, rtol 1e-8)\n");
  std::printf("%-8s | %-12s %-12s %-9s | %-9s %-12s %-9s | %-9s\n", "dofs",
              "factor Mflop", "fill nnz(L)", "chol s", "MG its",
              "solve Mflop", "MG s", "winner");
  for (idx n : sizes) {
    const app::ModelProblem model = app::make_box_problem(n);
    fem::FeProblem fe(model.mesh, model.materials, model.dofmap);
    const fem::LinearSystem sys = fem::assemble_linear_system(fe);

    // Direct path.
    Timer t;
    const la::SparseCholesky chol(sys.stiffness);
    std::vector<real> x_direct(sys.rhs.size());
    chol.solve(sys.rhs, x_direct);
    const double chol_time = t.seconds();

    // Multigrid path (setup + solve counted).
    t.reset();
    reset_thread_flops();
    mg::MgOptions mo;
    const mg::Hierarchy h =
        mg::Hierarchy::build(model.mesh, model.dofmap, sys.stiffness, mo);
    std::vector<real> x(sys.rhs.size(), 0.0);
    mg::MgSolveOptions so;
    so.rtol = 1e-8;
    FlopWindow solve_flops;
    const la::KrylovResult res = mg_pcg_solve(h, sys.rhs, x, so);
    const double mg_time = t.seconds();

    std::printf("%-8d | %-12.1f %-12lld %-9.3f | %-9d %-12.1f %-9.3f | %s\n",
                sys.stiffness.nrows, chol.factor_flops() / 1e6,
                static_cast<long long>(chol.factor_nnz()), chol_time,
                res.iterations, solve_flops.flops() / 1e6, mg_time,
                chol.factor_flops() > solve_flops.flops() ? "MG (flops)"
                                                          : "direct");
  }
  std::printf(
      "\nshape claims: the direct factor's flops and fill grow super-"
      "linearly in the\nnumber of unknowns, the multigrid solve grows "
      "linearly with bounded iteration\ncounts; MG wins on flops from a "
      "modest size on (the paper's §1 argument).\n");
  return 0;
}
