#!/usr/bin/env bash
# The one-command CI gate: optimized build + full test suite, the same
# suite again under Address/UB sanitizers, then the ThreadSanitizer race
# gate (ci/tsan.sh). Everything a PR must pass.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset release
cmake --build --preset release -j"$(nproc)"
ctest --test-dir build-release --output-on-failure -j"$(nproc)"

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j"$(nproc)"
ctest --preset asan-ubsan -j"$(nproc)"

./ci/tsan.sh

echo "ci/check.sh: OK"
