# Empty compiler generated dependencies file for prom_la.
# This may be replaced when dependencies are built.
