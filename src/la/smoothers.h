// Multigrid smoothers (§2: "simple iterative methods ... reduce the high
// frequency error"). The paper's configuration is one pre- and one
// post-smoothing step of damped Richardson preconditioned with block
// Jacobi, the blocks produced by a graph partitioner at 6 blocks per 1,000
// unknowns (§7.2). Jacobi and symmetric Gauss–Seidel are provided both as
// baselines and for tests.
//
// A smoother performs the stationary update  x <- x + M^{-1} (b - A x)
// (possibly damped); all smoothers here are symmetric in the energy sense
// required for use inside a CG preconditioner.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/config.h"
#include "la/csr.h"
#include "la/dense.h"

namespace prom::la {

class Smoother {
 public:
  virtual ~Smoother() = default;

  /// One smoothing step, updating x in place. b is the right-hand side of
  /// A x = b for the matrix bound at construction.
  virtual void smooth(std::span<const real> b, std::span<real> x) const = 0;

  /// Column-blocked smoothing step. The default smooths one column at a
  /// time (trivially bitwise-equal to k standalone sweeps); overrides must
  /// preserve that per-column equality.
  virtual void smooth_mv(const MultiVec& b, MultiVec& x) const {
    for (int j = 0; j < b.cols(); ++j) smooth(b.col(j), x.col(j));
  }

  virtual idx n() const = 0;
};

/// Damped (point) Jacobi: x += omega * D^{-1} (b - A x).
class JacobiSmoother final : public Smoother {
 public:
  JacobiSmoother(const Csr& a, real omega = 0.67);
  void smooth(std::span<const real> b, std::span<real> x) const override;
  idx n() const override { return a_->nrows; }

 private:
  const Csr* a_;
  real omega_;
  std::vector<real> inv_diag_;
};

/// Symmetric Gauss–Seidel: one forward then one backward sweep.
class SymmetricGaussSeidel final : public Smoother {
 public:
  explicit SymmetricGaussSeidel(const Csr& a);
  void smooth(std::span<const real> b, std::span<real> x) const override;
  idx n() const override { return a_->nrows; }

 private:
  const Csr* a_;
  std::vector<real> inv_diag_;
};

/// Damped block Jacobi: x += omega * blkdiag(A)^{-1} (b - A x), with the
/// diagonal blocks factored once (dense LDL^T). `blocks[k]` lists the row
/// indices of block k; blocks must partition [0, n).
class BlockJacobiSmoother final : public Smoother {
 public:
  BlockJacobiSmoother(const Csr& a, std::vector<std::vector<idx>> blocks,
                      real omega = 0.6);
  void smooth(std::span<const real> b, std::span<real> x) const override;
  idx n() const override { return a_->nrows; }

  idx num_blocks() const { return static_cast<idx>(blocks_.size()); }

 private:
  const Csr* a_;
  real omega_;
  std::vector<std::vector<idx>> blocks_;
  std::vector<DenseLdlt> factors_;
};

/// Chebyshev polynomial smoother on the Jacobi-preconditioned operator
/// D^{-1}A, of fixed degree, targeting the upper part [lmax/eig_ratio,
/// 1.1 lmax] of the spectrum (the GAMG-lineage smoother; spectral radius
/// estimated by power iteration at construction). Symmetric, so valid
/// inside a CG preconditioner.
class ChebyshevSmoother final : public Smoother {
 public:
  explicit ChebyshevSmoother(const Csr& a, int degree = 3,
                             real eig_ratio = 30);
  void smooth(std::span<const real> b, std::span<real> x) const override;
  idx n() const override { return a_->nrows; }

  real lambda_max() const { return lmax_; }

 private:
  const Csr* a_;
  int degree_;
  real lmin_ = 0, lmax_ = 0;
  std::vector<real> inv_diag_;
};

/// Partitions [0, n) into contiguous index blocks of roughly equal size —
/// the fallback when no graph partitioner is supplied.
std::vector<std::vector<idx>> contiguous_blocks(idx n, idx nblocks);

/// 1 / diag(a), checked nonzero — the diagonal scaling every point-wise
/// smoother needs (also used by the distributed levels on their local
/// diagonal blocks).
std::vector<real> inverted_diagonal(const Csr& a);

/// Extracts and factors (dense LDL^T, with diagonal-shift escalation for
/// non-SPD blocks) the diagonal blocks of `a` listed in `blocks` — shared
/// by the serial BlockJacobiSmoother and the distributed processor-block
/// smoothers. Columns >= a.nrows (ghost columns of a distributed local
/// matrix) are ignored.
std::vector<DenseLdlt> factor_diagonal_blocks(
    const Csr& a, std::span<const std::vector<idx>> blocks);

}  // namespace prom::la
