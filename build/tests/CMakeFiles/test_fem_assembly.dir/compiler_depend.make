# Empty compiler generated dependencies file for test_fem_assembly.
# This may be replaced when dependencies are built.
