#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "app/driver.h"
#include "common/rng.h"
#include "dla/dist_csr.h"
#include "dla/dist_krylov.h"
#include "dla/dist_mg.h"
#include "dla/dist_vec.h"
#include "fem/assembly.h"
#include "la/vec.h"
#include "mg/hierarchy.h"
#include "mg/solver.h"
#include "partition/rcb.h"

namespace prom::dla {
namespace {

la::Csr poisson1d(idx n) {
  std::vector<la::Triplet> t;
  for (idx i = 0; i < n; ++i) {
    t.push_back({i, i, 2.0});
    if (i > 0) t.push_back({i, i - 1, -1.0});
    if (i + 1 < n) t.push_back({i, i + 1, -1.0});
  }
  return la::Csr::from_triplets(n, n, t);
}

std::vector<real> random_vec(idx n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<real> v(static_cast<std::size_t>(n));
  for (real& x : v) x = rng.next_real() - 0.5;
  return v;
}

TEST(RowDist, BlockSplit) {
  const RowDist d = RowDist::block(10, 3);
  EXPECT_EQ(d.nranks(), 3);
  EXPECT_EQ(d.global_size(), 10);
  EXPECT_EQ(d.local_size(0) + d.local_size(1) + d.local_size(2), 10);
  EXPECT_EQ(d.owner(0), 0);
  EXPECT_EQ(d.owner(9), 2);
  for (idx g = 0; g < 10; ++g) {
    const int r = d.owner(g);
    EXPECT_GE(g, d.begin(r));
    EXPECT_LT(g, d.end(r));
  }
}

TEST(RowDist, FromSortedOwners) {
  const std::vector<idx> owners = {0, 0, 1, 1, 1, 3};
  const RowDist d = RowDist::from_sorted_owners(owners, 4);
  EXPECT_EQ(d.local_size(0), 2);
  EXPECT_EQ(d.local_size(1), 3);
  EXPECT_EQ(d.local_size(2), 0);
  EXPECT_EQ(d.local_size(3), 1);
  // Non-monotone owners rejected.
  const std::vector<idx> bad = {1, 0};
  EXPECT_THROW(RowDist::from_sorted_owners(bad, 2), Error);
}

class DlaRanks : public ::testing::TestWithParam<int> {};

TEST_P(DlaRanks, DistDotMatchesSerial) {
  const int p = GetParam();
  const idx n = 101;
  const auto a = random_vec(n, 1), b = random_vec(n, 2);
  const real serial = la::dot(a, b);
  const RowDist dist = RowDist::block(n, p);
  parx::Runtime::run(p, [&](parx::Comm& comm) {
    const idx lo = dist.begin(comm.rank()), hi = dist.end(comm.rank());
    const real mine = dist_dot(
        comm, std::span<const real>(a).subspan(lo, hi - lo),
        std::span<const real>(b).subspan(lo, hi - lo));
    EXPECT_NEAR(mine, serial, 1e-12);
    EXPECT_NEAR(
        dist_nrm2(comm, std::span<const real>(a).subspan(lo, hi - lo)),
        la::nrm2(a), 1e-12);
  });
}

TEST_P(DlaRanks, DistSpmvMatchesSerial) {
  const int p = GetParam();
  const idx n = 73;
  const la::Csr a = poisson1d(n);
  const auto x = random_vec(n, 3);
  std::vector<real> y_ref(n);
  a.spmv(x, y_ref);
  const RowDist dist = RowDist::block(n, p);
  parx::Runtime::run(p, [&](parx::Comm& comm) {
    const DistCsr da(comm, a, dist, dist);
    const idx lo = dist.begin(comm.rank());
    const idx ln = dist.local_size(comm.rank());
    std::vector<real> xl(x.begin() + lo, x.begin() + lo + ln), yl(ln);
    da.spmv(comm, xl, yl);
    for (idx i = 0; i < ln; ++i) EXPECT_NEAR(yl[i], y_ref[lo + i], 1e-13);
  });
}

TEST_P(DlaRanks, DistSpmvTransposeMatchesSerial) {
  const int p = GetParam();
  const idx n = 40, m = 25;
  // Rectangular random matrix (restriction-like).
  Rng rng(7);
  std::vector<la::Triplet> t;
  for (int k = 0; k < 120; ++k) {
    t.push_back({static_cast<idx>(rng.next_below(m)),
                 static_cast<idx>(rng.next_below(n)),
                 rng.next_real()});
  }
  const la::Csr r = la::Csr::from_triplets(m, n, t);
  const auto x = random_vec(m, 4);
  std::vector<real> y_ref(n);
  r.spmv_transpose(x, y_ref);
  const RowDist rows = RowDist::block(m, p);
  const RowDist cols = RowDist::block(n, p);
  parx::Runtime::run(p, [&](parx::Comm& comm) {
    const DistCsr dr(comm, r, rows, cols);
    const idx rlo = rows.begin(comm.rank());
    std::vector<real> xl(x.begin() + rlo,
                         x.begin() + rows.end(comm.rank()));
    std::vector<real> yl(static_cast<std::size_t>(
        cols.local_size(comm.rank())));
    dr.spmv_transpose(comm, xl, yl);
    const idx clo = cols.begin(comm.rank());
    for (std::size_t i = 0; i < yl.size(); ++i) {
      EXPECT_NEAR(yl[i], y_ref[clo + i], 1e-12);
    }
  });
}

TEST_P(DlaRanks, DistPcgMatchesSerialIterationForIteration) {
  const int p = GetParam();
  const idx n = 64;
  const la::Csr a = poisson1d(n);
  const auto b = random_vec(n, 5);
  // Serial CG reference.
  std::vector<real> x_ref(n, 0.0);
  la::KrylovOptions opts;
  opts.rtol = 1e-10;
  const la::CsrOperator op(a);
  const la::KrylovResult serial = la::cg(op, b, x_ref, opts);
  ASSERT_TRUE(serial.converged);
  const RowDist dist = RowDist::block(n, p);
  parx::Runtime::run(p, [&](parx::Comm& comm) {
    const DistCsr da(comm, a, dist, dist);
    const DistCsrOperator dop(da);
    const idx lo = dist.begin(comm.rank());
    const idx ln = dist.local_size(comm.rank());
    std::vector<real> bl(b.begin() + lo, b.begin() + lo + ln), xl(ln, 0.0);
    const la::KrylovResult res = dist_pcg(comm, dop, nullptr, bl, xl, opts);
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.iterations, serial.iterations);
    for (idx i = 0; i < ln; ++i) EXPECT_NEAR(xl[i], x_ref[lo + i], 1e-8);
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, DlaRanks, ::testing::Values(1, 2, 3, 5, 8));

class DistMgRanks : public ::testing::TestWithParam<int> {};

TEST_P(DistMgRanks, MatchesSerialMgIterationCounts) {
  const int p = GetParam();
  const app::ModelProblem model = app::make_box_problem(6);
  fem::FeProblem fe(model.mesh, model.materials, model.dofmap);
  const fem::LinearSystem sys = fem::assemble_linear_system(fe);
  mg::MgOptions mopts;
  mopts.coarsest_max_dofs = 150;
  const mg::Hierarchy serial_h =
      mg::Hierarchy::build(model.mesh, model.dofmap, sys.stiffness, mopts);

  // Serial reference.
  std::vector<real> x_ref(sys.rhs.size(), 0.0);
  mg::MgSolveOptions so;
  so.rtol = 1e-8;
  const la::KrylovResult serial = mg_pcg_solve(serial_h, sys.rhs, x_ref, so);
  ASSERT_TRUE(serial.converged);

  const auto owner = partition::rcb_partition(model.mesh.coords(), p);
  parx::Runtime::run(p, [&](parx::Comm& comm) {
    const DistHierarchy dh = DistHierarchy::build(comm, serial_h, owner);
    const auto& perm = dh.permutation(0);
    const RowDist& rows = dh.level(0).a.row_dist();
    const idx lo = rows.begin(comm.rank());
    const idx ln = rows.local_size(comm.rank());
    std::vector<real> bl(static_cast<std::size_t>(ln)), xl(ln, 0.0);
    for (idx i = 0; i < ln; ++i) bl[i] = sys.rhs[perm[lo + i]];
    const la::KrylovResult res = dist_mg_pcg_solve(comm, dh, bl, xl, so);
    EXPECT_TRUE(res.converged);
    // Identical grids and a processor-block smoother: iteration counts may
    // differ slightly from serial but must stay in the same band (the
    // paper's "no deterioration in convergence rates with the use of
    // multiple processors").
    EXPECT_LE(res.iterations, serial.iterations + 6);
    // Distributed solution must solve the system (check via residual).
    for (idx i = 0; i < ln; ++i) {
      EXPECT_NEAR(xl[i], x_ref[perm[lo + i]], 1e-5);
    }
  });
}

TEST_P(DistMgRanks, GatherAllReassemblesVector) {
  const int p = GetParam();
  const idx n = 37;
  const auto full = random_vec(n, 6);
  const RowDist dist = RowDist::block(n, p);
  parx::Runtime::run(p, [&](parx::Comm& comm) {
    const idx lo = dist.begin(comm.rank());
    std::vector<real> local(full.begin() + lo,
                            full.begin() + dist.end(comm.rank()));
    const std::vector<real> gathered = dist_gather_all(comm, dist, local);
    EXPECT_EQ(gathered, full);
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistMgRanks, ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace prom::dla
