
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/csr.cpp" "src/CMakeFiles/prom_la.dir/la/csr.cpp.o" "gcc" "src/CMakeFiles/prom_la.dir/la/csr.cpp.o.d"
  "/root/repo/src/la/dense.cpp" "src/CMakeFiles/prom_la.dir/la/dense.cpp.o" "gcc" "src/CMakeFiles/prom_la.dir/la/dense.cpp.o.d"
  "/root/repo/src/la/krylov.cpp" "src/CMakeFiles/prom_la.dir/la/krylov.cpp.o" "gcc" "src/CMakeFiles/prom_la.dir/la/krylov.cpp.o.d"
  "/root/repo/src/la/smoothers.cpp" "src/CMakeFiles/prom_la.dir/la/smoothers.cpp.o" "gcc" "src/CMakeFiles/prom_la.dir/la/smoothers.cpp.o.d"
  "/root/repo/src/la/sparse_chol.cpp" "src/CMakeFiles/prom_la.dir/la/sparse_chol.cpp.o" "gcc" "src/CMakeFiles/prom_la.dir/la/sparse_chol.cpp.o.d"
  "/root/repo/src/la/vec.cpp" "src/CMakeFiles/prom_la.dir/la/vec.cpp.o" "gcc" "src/CMakeFiles/prom_la.dir/la/vec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prom_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
