file(REMOVE_RECURSE
  "libprom_mg.a"
)
