# Empty compiler generated dependencies file for test_fem_material.
# This may be replaced when dependencies are built.
