#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "coarsen/coarsen.h"
#include "coarsen/modified_graph.h"
#include "coarsen/parallel_mis.h"
#include "graph/mis.h"
#include "graph/order.h"
#include "mesh/generate.h"
#include "partition/rcb.h"

namespace prom::coarsen {
namespace {

TEST(ModifiedGraph, RemovesOppositeSurfaceEdgesOfThinBody) {
  // The Figure 4/5 scenario: a plate two elements thick. In the raw
  // vertex graph, top-surface vertices are adjacent to bottom-surface
  // vertices through the middle layer cells? No — with two layers there is
  // a mid-plane of interior vertices; use ONE layer so top and bottom
  // surface vertices share cells directly.
  const mesh::Mesh m = mesh::thin_slab(8, 8, 1, 8.0, 8.0, 0.5);
  const graph::Graph g = m.vertex_graph();
  const Classification cls = classify_mesh(m);
  ModifiedGraphStats stats;
  const graph::Graph modified = modified_mis_graph(g, cls, &stats);
  EXPECT_GT(stats.edges_removed, 0);
  EXPECT_LT(modified.num_edges(), g.num_edges());
  // Specifically: a mid-face top vertex and the bottom vertex below it are
  // adjacent in g (they share a cell) but not in the modified graph (they
  // share no identified face).
  idx top = kInvalidIdx, bottom = kInvalidIdx;
  for (idx v = 0; v < m.num_vertices(); ++v) {
    const Vec3& p = m.coord(v);
    if (p.x == 4 && p.y == 4 && p.z == 0.5) top = v;
    if (p.x == 4 && p.y == 4 && p.z == 0) bottom = v;
  }
  ASSERT_NE(top, kInvalidIdx);
  ASSERT_NE(bottom, kInvalidIdx);
  EXPECT_TRUE(g.has_edge(top, bottom));
  EXPECT_FALSE(modified.has_edge(top, bottom));
}

TEST(ModifiedGraph, KeepsInteriorEdges) {
  const mesh::Mesh m = mesh::box_hex(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  const graph::Graph g = m.vertex_graph();
  const Classification cls = classify_mesh(m);
  const graph::Graph modified = modified_mis_graph(g, cls);
  for (idx v = 0; v < m.num_vertices(); ++v) {
    if (cls.type[v] != VertexType::kInterior) continue;
    EXPECT_EQ(modified.degree(v), g.degree(v)) << "interior vertex " << v;
  }
}

TEST(ModifiedGraph, MisCoversThinBodySurfacesSeparately) {
  // After modification, the MIS must keep vertices on *both* surfaces of
  // the thin body (Figure 6), because neither surface can decimate the
  // other.
  const mesh::Mesh m = mesh::thin_slab(10, 10, 1, 10.0, 10.0, 0.4);
  const graph::Graph g = m.vertex_graph();
  const Classification cls = classify_mesh(m);
  const graph::Graph modified = modified_mis_graph(g, cls);
  const std::vector<idx> ranks = cls.ranks();
  graph::MisOptions opts;
  opts.ranks = ranks;
  const auto order = graph::natural_order(m.num_vertices());
  const graph::MisResult mis = graph::greedy_mis(modified, order, opts);
  idx top = 0, bottom = 0;
  for (idx v : mis.selected) {
    if (m.coord(v).z > 0.39) ++top;
    if (m.coord(v).z < 0.01) ++bottom;
  }
  EXPECT_GT(top, 4);
  EXPECT_GT(bottom, 4);
}

TEST(MisOrdering, ExteriorBeforeInteriorAndSeedStable) {
  const mesh::Mesh m = mesh::box_hex(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  const Classification cls = classify_mesh(m);
  CoarsenOptions opts;
  const auto order = mis_ordering(cls, opts);
  EXPECT_EQ(order.size(), static_cast<std::size_t>(m.num_vertices()));
  // All exterior vertices precede all interior ones.
  bool seen_interior = false;
  for (idx v : order) {
    if (cls.type[v] == VertexType::kInterior) {
      seen_interior = true;
    } else {
      EXPECT_FALSE(seen_interior) << "exterior after interior";
    }
  }
  EXPECT_EQ(order, mis_ordering(cls, opts));  // deterministic
}

TEST(MisOrdering, NaturalVsRandomInteriorDensity) {
  // §4.7: natural orderings give denser (larger) MISs than random ones on
  // structured hex meshes. Compare interior-vertex MIS sizes.
  const mesh::Mesh m = mesh::box_hex(10, 10, 10, {0, 0, 0}, {1, 1, 1});
  const graph::Graph g = m.vertex_graph();
  const Classification cls = classify_mesh(m);
  const std::vector<idx> ranks = cls.ranks();
  graph::MisOptions mis_opts;
  mis_opts.ranks = ranks;

  CoarsenOptions natural;
  natural.interior_order = MisOrdering::kNatural;
  natural.exterior_order = MisOrdering::kNatural;
  CoarsenOptions random;
  random.interior_order = MisOrdering::kRandom;
  random.exterior_order = MisOrdering::kRandom;

  const auto mis_nat =
      graph::greedy_mis(g, mis_ordering(cls, natural), mis_opts);
  const auto mis_rnd =
      graph::greedy_mis(g, mis_ordering(cls, random), mis_opts);
  EXPECT_GT(mis_nat.selected.size(), mis_rnd.selected.size());

  // Both bounded by the paper's 1/27..1/8 heuristic range for the
  // interior of a uniform hex mesh (with slack for boundary effects).
  const double n = m.num_vertices();
  EXPECT_GT(mis_nat.selected.size() / n, 1.0 / 27.0);
  EXPECT_LT(mis_rnd.selected.size() / n, 1.0 / 4.0);
}

// Owner map placing every vertex on rank 0.
std::vector<idx> owner_all_zero(const graph::Graph& g) {
  return std::vector<idx>(static_cast<std::size_t>(g.num_vertices()), 0);
}

class ParallelMisRanks : public ::testing::TestWithParam<int> {};

TEST_P(ParallelMisRanks, ProducesValidMisMatchingAllRanks) {
  const int nranks = GetParam();
  const mesh::Mesh m = mesh::box_hex(5, 5, 5, {0, 0, 0}, {1, 1, 1});
  const graph::Graph g = m.vertex_graph();
  const Classification cls = classify_mesh(m);
  const std::vector<idx> ranks = cls.ranks();
  const auto owner = partition::rcb_partition(m.coords(), nranks);
  const auto order = graph::natural_order(m.num_vertices());

  std::vector<ParallelMisResult> results(static_cast<std::size_t>(nranks));
  parx::Runtime::run(nranks, [&](parx::Comm& comm) {
    ParallelMisOptions opts;
    opts.ranks = ranks;
    opts.order = order;
    results[comm.rank()] = parallel_mis(comm, g, owner, opts);
  });
  for (int r = 0; r < nranks; ++r) {
    EXPECT_TRUE(graph::is_maximal_independent_set(g, results[r].selected));
    EXPECT_EQ(results[r].selected, results[0].selected);
  }
}

TEST_P(ParallelMisRanks, SingleRankMatchesSerialGreedy) {
  // With one rank and the same rank-sorted traversal, the parallel
  // algorithm degenerates to Figure 2's greedy algorithm.
  const int nranks = GetParam();
  if (nranks != 1) GTEST_SKIP();
  const mesh::Mesh m = mesh::box_hex(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  const graph::Graph g = m.vertex_graph();
  const Classification cls = classify_mesh(m);
  const std::vector<idx> ranks = cls.ranks();
  const auto order = graph::natural_order(m.num_vertices());
  graph::MisOptions serial_opts;
  serial_opts.ranks = ranks;
  const auto serial = graph::greedy_mis(g, order, serial_opts);
  std::vector<idx> serial_sorted = serial.selected;
  std::sort(serial_sorted.begin(), serial_sorted.end());

  ParallelMisResult parallel;
  parx::Runtime::run(1, [&](parx::Comm& comm) {
    ParallelMisOptions opts;
    opts.ranks = ranks;
    opts.order = order;
    parallel = parallel_mis(comm, g, owner_all_zero(g), opts);
  });
  EXPECT_EQ(parallel.selected, serial_sorted);
}

INSTANTIATE_TEST_SUITE_P(Ranks, ParallelMisRanks,
                         ::testing::Values(1, 2, 3, 4, 6, 9));

TEST(ParallelMis, RankRuleRespectedAcrossPartition) {
  // Classification ranks must dominate regardless of the partition: every
  // deleted vertex has a selected neighbor of >= rank.
  const mesh::Mesh m = mesh::box_hex(6, 6, 2, {0, 0, 0}, {3, 3, 1});
  const graph::Graph g = m.vertex_graph();
  const Classification cls = classify_mesh(m);
  const std::vector<idx> vranks = cls.ranks();
  const auto owner = partition::rcb_partition(m.coords(), 4);
  ParallelMisResult result;
  parx::Runtime::run(4, [&](parx::Comm& comm) {
    ParallelMisOptions opts;
    opts.ranks = vranks;
    result = parallel_mis(comm, g, owner, opts);
  });
  std::vector<char> selected(static_cast<std::size_t>(g.num_vertices()), 0);
  for (idx v : result.selected) selected[v] = 1;
  for (idx v = 0; v < g.num_vertices(); ++v) {
    if (selected[v]) continue;
    bool dominated = false;
    for (idx u : g.neighbors(v)) {
      if (selected[u] && vranks[u] >= vranks[v]) dominated = true;
    }
    EXPECT_TRUE(dominated) << "vertex " << v;
  }
}

}  // namespace
}  // namespace prom::coarsen
