// Serial instantiation of the backend-generic multigrid cycles
// (mg/cycle_any.h): HierarchyCycleView adapts mg::Hierarchy to the
// CycleView concept, and vcycle / fmg_cycle keep their original
// signatures as thin wrappers.
#pragma once

#include <span>
#include <vector>

#include "common/config.h"
#include "mg/cycle_any.h"
#include "mg/hierarchy.h"

namespace prom::mg {

/// Adapts the serial Hierarchy (with built operators and smoothers) to the
/// generic cycle templates.
struct HierarchyCycleView {
  const Hierarchy* h;
  /// Apply level operators through their node-block (BAIJ) views when the
  /// hierarchy has them (Hierarchy::enable_bsr). Same bits as the scalar
  /// path — the blocked SpMV preserves the CSR accumulation order.
  bool use_bsr = false;
  /// Apply the finest level through its matrix-free element view when the
  /// hierarchy has one (Hierarchy::enable_mf); coarse levels always go
  /// through their assembled operators.
  bool use_mf = false;

  int num_levels() const { return h->num_levels(); }
  idx local_n(int l) const { return h->level(l).a.nrows; }
  int pre_smooth() const { return h->options().pre_smooth; }
  int post_smooth() const { return h->options().post_smooth; }
  void smooth(int l, std::span<const real> b, std::span<real> x) const {
    const MgLevel& lv = h->level(l);
    if (lv.smooth_rows.empty()) {
      lv.smoother->smooth(b, x);
      return;
    }
    // Local smoothing (adaptive refinement levels): run the configured
    // smoother on a scratch copy and keep only the refined-region rows —
    // identical update on those rows to the full sweep, identity
    // elsewhere, for any smoother kind.
    std::vector<real> tmp(x.begin(), x.end());
    lv.smoother->smooth(b, tmp);
    for (idx i : lv.smooth_rows) x[i] = tmp[i];
  }
  void apply_a(int l, std::span<const real> x, std::span<real> y) const {
    const MgLevel& lv = h->level(l);
    if (use_mf && lv.a_mf != nullptr) {
      lv.a_mf->apply(x, y);
    } else if (use_bsr && lv.a_bsr != nullptr) {
      lv.a_bsr->apply(x, y);
    } else {
      lv.a.spmv(x, y);
    }
  }
  void restrict_to(int l, std::span<const real> xf, std::span<real> xc) const {
    h->level(l).r.spmv(xf, xc);
  }
  void prolong(int l, std::span<const real> xc, std::span<real> xf) const {
    h->level(l).r.spmv_transpose(xc, xf);
  }
  void coarse_solve(std::span<const real> b, std::span<real> x) const;

  // Column-blocked level operations (MultiCycleView); column j bitwise
  // equals the scalar operation on that column.
  void smooth_mv(int l, const la::MultiVec& b, la::MultiVec& x) const {
    const MgLevel& lv = h->level(l);
    if (lv.smooth_rows.empty()) {
      lv.smoother->smooth_mv(b, x);
      return;
    }
    la::MultiVec tmp = x;
    lv.smoother->smooth_mv(b, tmp);
    for (int j = 0; j < x.cols(); ++j) {
      real* xj = x.col_data(j);
      const real* tj = tmp.col_data(j);
      for (idx i : lv.smooth_rows) xj[i] = tj[i];
    }
  }
  void apply_a_mv(int l, const la::MultiVec& x, la::MultiVec& y) const {
    const MgLevel& lv = h->level(l);
    if (use_mf && lv.a_mf != nullptr) {
      lv.a_mf->apply_mv(x, y);
    } else if (use_bsr && lv.a_bsr != nullptr) {
      lv.a_bsr->apply_mv(x, y);
    } else {
      lv.a.spmm(x, y);
    }
  }
  void restrict_to_mv(int l, const la::MultiVec& xf, la::MultiVec& xc) const {
    h->level(l).r.spmm(xf, xc);
  }
  void prolong_mv(int l, const la::MultiVec& xc, la::MultiVec& xf) const {
    for (int j = 0; j < xc.cols(); ++j) {
      h->level(l).r.spmv_transpose(xc.col(j), xf.col(j));
    }
  }
  void coarse_solve_mv(const la::MultiVec& b, la::MultiVec& x) const {
    for (int j = 0; j < b.cols(); ++j) coarse_solve(b.col(j), x.col(j));
  }
};

/// One V-cycle at `level` for A_level x = b, improving x in place.
void vcycle(const Hierarchy& h, int level, std::span<const real> b,
            std::span<real> x);

/// One full multigrid cycle for A_0 x = b starting from zero; returns x.
std::vector<real> fmg_cycle(const Hierarchy& h, std::span<const real> b);

}  // namespace prom::mg
