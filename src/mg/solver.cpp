#include "mg/solver.h"

#include "common/error.h"

namespace prom::mg {

void MgPreconditioner::apply(std::span<const real> x,
                             std::span<real> y) const {
  const bool use_bsr = format_ == MatrixFormat::kBsr3;
  const bool use_mf = format_ == MatrixFormat::kMf;
  apply_cycle(HierarchyCycleView{h_, use_bsr, use_mf}, kind_, x, y);
}

void MgPreconditioner::apply_mv(const la::MultiVec& x,
                                la::MultiVec& y) const {
  const bool use_bsr = format_ == MatrixFormat::kBsr3;
  const bool use_mf = format_ == MatrixFormat::kMf;
  apply_cycle_mv(HierarchyCycleView{h_, use_bsr, use_mf}, kind_, x, y);
}

la::KrylovResult mg_pcg_solve(const Hierarchy& h, std::span<const real> b,
                              std::span<real> x, const MgSolveOptions& opts) {
  const MgPreconditioner precond(h, opts.cycle, opts.format);
  if (opts.format == MatrixFormat::kBsr3) {
    PROM_CHECK_MSG(h.level(0).a_bsr != nullptr,
                   "MatrixFormat::kBsr3 requires Hierarchy::enable_bsr()");
    return la::pcg(*h.level(0).a_bsr, precond, b, x, to_krylov_options(opts));
  }
  if (opts.format == MatrixFormat::kMf) {
    PROM_CHECK_MSG(h.level(0).a_mf != nullptr,
                   "MatrixFormat::kMf requires Hierarchy::enable_mf()");
    return la::pcg(*h.level(0).a_mf, precond, b, x, to_krylov_options(opts));
  }
  const la::CsrOperator a(h.level(0).a);
  return la::pcg(a, precond, b, x, to_krylov_options(opts));
}

la::KrylovResult mg_krylov_solve(const Hierarchy& h, std::span<const real> b,
                                 std::span<real> x,
                                 const MgSolveOptions& opts) {
  if (opts.krylov == la::KrylovKind::kPcg) {
    return mg_pcg_solve(h, b, x, opts);
  }
  const MgPreconditioner precond(h, opts.cycle, opts.format);
  const la::CsrOperator a_csr(h.level(0).a);
  const la::LinearOperator* a = &a_csr;
  if (opts.format == MatrixFormat::kBsr3) {
    PROM_CHECK_MSG(h.level(0).a_bsr != nullptr,
                   "MatrixFormat::kBsr3 requires Hierarchy::enable_bsr()");
    a = h.level(0).a_bsr.get();
  } else if (opts.format == MatrixFormat::kMf) {
    PROM_CHECK_MSG(h.level(0).a_mf != nullptr,
                   "MatrixFormat::kMf requires Hierarchy::enable_mf()");
    a = h.level(0).a_mf.get();
  }
  if (opts.krylov == la::KrylovKind::kGmres) {
    return la::gmres(*a, &precond, b, x, to_gmres_options(opts));
  }
  return la::bicgstab(*a, &precond, b, x, to_krylov_options(opts));
}

std::vector<la::KrylovResult> mg_pcg_solve_mv(const Hierarchy& h,
                                              const la::MultiVec& b,
                                              la::MultiVec& x,
                                              const MgSolveOptions& opts,
                                              la::KrylovWorkspace* ws) {
  const MgPreconditioner precond(h, opts.cycle, opts.format);
  if (opts.format == MatrixFormat::kBsr3) {
    PROM_CHECK_MSG(h.level(0).a_bsr != nullptr,
                   "MatrixFormat::kBsr3 requires Hierarchy::enable_bsr()");
    return la::pcg_multi(*h.level(0).a_bsr, &precond, b, x,
                         to_krylov_options(opts), ws);
  }
  if (opts.format == MatrixFormat::kMf) {
    PROM_CHECK_MSG(h.level(0).a_mf != nullptr,
                   "MatrixFormat::kMf requires Hierarchy::enable_mf()");
    return la::pcg_multi(*h.level(0).a_mf, &precond, b, x,
                         to_krylov_options(opts), ws);
  }
  const la::CsrOperator a(h.level(0).a);
  return la::pcg_multi(a, &precond, b, x, to_krylov_options(opts), ws);
}

}  // namespace prom::mg
