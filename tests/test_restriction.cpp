#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "coarsen/coarsen.h"
#include "coarsen/restriction.h"
#include "mesh/generate.h"

namespace prom::coarsen {
namespace {

/// Runs one full coarsening of a box mesh and returns everything.
struct CoarsenedBox {
  mesh::Mesh mesh;
  graph::Graph graph;
  Classification cls;
  CoarsenLevelResult level;
};

CoarsenedBox coarsen_box(idx n) {
  CoarsenedBox out;
  out.mesh = mesh::box_hex(n, n, n, {0, 0, 0}, {1, 1, 1});
  out.graph = out.mesh.vertex_graph();
  out.cls = classify_mesh(out.mesh);
  out.level = coarsen_level(out.mesh.coords(), out.graph, out.cls, 0, {});
  return out;
}

class RestrictionBox : public ::testing::TestWithParam<idx> {};

TEST_P(RestrictionBox, ColumnsArePartitionsOfUnity) {
  // Every fine vertex's interpolation weights sum to 1 (linear tet shape
  // functions evaluated at the vertex).
  const CoarsenedBox box = coarsen_box(GetParam());
  const la::Csr rt = box.level.r_vertex.transposed();
  for (idx v = 0; v < rt.nrows; ++v) {
    real sum = 0;
    for (nnz_t k = rt.rowptr[v]; k < rt.rowptr[v + 1]; ++k) {
      sum += rt.vals[k];
      EXPECT_GE(rt.vals[k], -1e-12);
      EXPECT_LE(rt.vals[k], 1 + 1e-12);
    }
    EXPECT_NEAR(sum, 1.0, 1e-10) << "fine vertex " << v;
  }
}

TEST_P(RestrictionBox, SelectedVerticesAreInjected) {
  const CoarsenedBox box = coarsen_box(GetParam());
  const la::Csr& r = box.level.r_vertex;
  for (idx c = 0; c < r.nrows; ++c) {
    EXPECT_DOUBLE_EQ(r.at(c, box.level.selected[c]), 1.0);
  }
  // ... and no other coarse vertex interpolates a selected fine vertex.
  for (idx c = 0; c < r.nrows; ++c) {
    const idx fv = box.level.selected[c];
    idx count = 0;
    for (idx c2 = 0; c2 < r.nrows; ++c2) {
      if (r.at(c2, fv) != 0) ++count;
    }
    EXPECT_EQ(count, 1);
  }
}

TEST_P(RestrictionBox, ProlongationReproducesLinearFields) {
  // The heart of the method (§3): coarse linear FE spaces must reproduce
  // linear functions, so R^T (f at coarse vertices) == f at fine vertices
  // for every vertex interpolated through a tet (lost vertices excepted).
  const CoarsenedBox box = coarsen_box(GetParam());
  const la::Csr& r = box.level.r_vertex;
  auto f = [](const Vec3& p) { return 0.5 + 2 * p.x - p.y + 3 * p.z; };
  std::vector<real> coarse_values(static_cast<std::size_t>(r.nrows));
  for (idx c = 0; c < r.nrows; ++c) {
    coarse_values[c] = f(box.mesh.coord(box.level.selected[c]));
  }
  std::vector<real> fine_values(static_cast<std::size_t>(r.ncols));
  r.spmv_transpose(coarse_values, fine_values);
  std::set<idx> lost(box.level.lost.begin(), box.level.lost.end());
  idx checked = 0;
  for (idx v = 0; v < r.ncols; ++v) {
    if (lost.contains(v)) continue;
    // Weight clamping perturbs vertices outside their tet slightly; the
    // tolerance reflects the jitter + clamping budget.
    EXPECT_NEAR(fine_values[v], f(box.mesh.coord(v)), 5e-2) << "vertex " << v;
    ++checked;
  }
  EXPECT_GT(checked, r.ncols / 2);
}

TEST_P(RestrictionBox, CoarseMeshIsValid) {
  const CoarsenedBox box = coarsen_box(GetParam());
  const mesh::Mesh& cm = box.level.coarse_mesh;
  EXPECT_EQ(cm.kind(), mesh::CellKind::kTet4);
  EXPECT_EQ(cm.num_vertices(),
            static_cast<idx>(box.level.selected.size()));
  EXPECT_GT(cm.num_cells(), 0);
  for (idx e = 0; e < cm.num_cells(); ++e) {
    EXPECT_GT(mesh::cell_volume(cm, e), 0.0);
  }
}

TEST_P(RestrictionBox, FewLostVerticesOnConvexDomain) {
  // The box is convex: nearly every fine vertex lies in the Delaunay hull
  // of the MIS vertices (corners are always selected).
  const CoarsenedBox box = coarsen_box(GetParam());
  EXPECT_LT(box.level.lost.size(),
            static_cast<std::size_t>(box.mesh.num_vertices() / 20 + 2));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RestrictionBox, ::testing::Values(3, 4, 6));

TEST(Restriction, ExpandToDofsKroneckerStructure) {
  // Small hand-made vertex restriction: 1 coarse vertex, 2 fine vertices.
  std::vector<la::Triplet> t = {{0, 0, 1.0}, {0, 1, 0.5}};
  const la::Csr rv = la::Csr::from_triplets(1, 2, t);
  // All dofs free.
  std::vector<idx> fine_free = {0, 1, 2, 3, 4, 5};
  std::vector<idx> coarse_free = {0, 1, 2};
  const la::Csr rd = expand_restriction_to_dofs(rv, fine_free, coarse_free);
  EXPECT_EQ(rd.nrows, 3);
  EXPECT_EQ(rd.ncols, 6);
  // Component c of coarse vertex interpolates component c of fine only.
  EXPECT_DOUBLE_EQ(rd.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(rd.at(0, 3), 0.5);
  EXPECT_DOUBLE_EQ(rd.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(rd.at(1, 4), 0.5);
  EXPECT_DOUBLE_EQ(rd.at(2, 5), 0.5);
}

TEST(Restriction, ExpandDropsConstrainedDofs) {
  std::vector<la::Triplet> t = {{0, 0, 0.7}, {0, 1, 0.3}};
  const la::Csr rv = la::Csr::from_triplets(1, 2, t);
  // Fine dof 3 (vertex 1, comp 0) constrained; coarse comp 2 constrained.
  std::vector<idx> fine_free = {0, 1, 2, 4, 5};
  std::vector<idx> coarse_free = {0, 1};
  const la::Csr rd = expand_restriction_to_dofs(rv, fine_free, coarse_free);
  EXPECT_EQ(rd.nrows, 2);
  EXPECT_EQ(rd.ncols, 5);
  // Row 0 (coarse comp 0): only fine dof 0 remains with weight 0.7.
  EXPECT_DOUBLE_EQ(rd.at(0, 0), 0.7);
  EXPECT_EQ(rd.rowptr[1] - rd.rowptr[0], 1);
}

TEST(Restriction, GraphNearnessPruningDropsFarTets) {
  // Construct a fine "graph" where two clusters are far apart: tets
  // spanning clusters must be pruned unless they hold unique vertices.
  std::vector<Vec3> fine;
  for (int i = 0; i < 8; ++i) {
    fine.push_back({i * 0.1, (i * 7 % 3) * 0.1, (i * 5 % 2) * 0.1});
  }
  for (int i = 0; i < 8; ++i) {
    fine.push_back({10 + i * 0.1, (i * 7 % 3) * 0.1, (i * 5 % 2) * 0.1});
  }
  // Graph: two cliques, no inter-cluster edges.
  std::vector<std::pair<idx, idx>> edges;
  for (idx a = 0; a < 8; ++a) {
    for (idx b = a + 1; b < 8; ++b) {
      edges.emplace_back(a, b);
      edges.emplace_back(a + 8, b + 8);
    }
  }
  const graph::Graph g = graph::Graph::from_edges(16, edges);
  std::vector<idx> selected = {0, 3, 6, 8, 11, 14};
  const RestrictionResult res =
      build_restriction(fine, selected, {}, &g);
  // No kept tet may connect the two clusters (coarse 0-2 vs 3-5) because
  // no fine vertex can lie uniquely inside the gap.
  for (idx e = 0; e < res.coarse_mesh.num_cells(); ++e) {
    const auto verts = res.coarse_mesh.cell(e);
    const bool left = std::any_of(verts.begin(), verts.end(),
                                  [](idx v) { return v < 3; });
    const bool right = std::any_of(verts.begin(), verts.end(),
                                   [](idx v) { return v >= 3; });
    EXPECT_FALSE(left && right) << "cell " << e << " spans the gap";
  }
}

TEST(CoarsenLevel, ReclassificationDepthControlsCoarseTypes) {
  const mesh::Mesh m = mesh::box_hex(5, 5, 5, {0, 0, 0}, {1, 1, 1});
  const graph::Graph g = m.vertex_graph();
  const Classification cls = classify_mesh(m);
  // Level 0 -> 1: inherited classification (second grid keeps fine types).
  CoarsenOptions opts;
  const CoarsenLevelResult l1 = coarsen_level(m.coords(), g, cls, 0, opts);
  for (std::size_t c = 0; c < l1.selected.size(); ++c) {
    EXPECT_EQ(l1.coarse_cls.type[c], cls.type[l1.selected[c]]);
  }
  // Level 1 -> 2: reclassified from the coarse tet mesh geometry.
  std::vector<Vec3> coarse_coords;
  for (idx v : l1.selected) coarse_coords.push_back(m.coord(v));
  const CoarsenLevelResult l2 = coarsen_level(
      coarse_coords, l1.coarse_mesh.vertex_graph(), l1.coarse_cls, 1, opts);
  // Reclassified types need not match inheritance, but corners must still
  // exist (the box has corners at every level) and counts stay sane.
  const auto h = l2.coarse_cls.type_histogram();
  EXPECT_EQ(h[0] + h[1] + h[2] + h[3],
            static_cast<idx>(l2.selected.size()));
}

TEST(CoarsenLevel, CornersAlwaysSurvive) {
  // The 8 box corners are rank-3 and processed first: all must be
  // selected into the MIS (§4.6 "we do not allow corners to be deleted").
  const mesh::Mesh m = mesh::box_hex(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  const graph::Graph g = m.vertex_graph();
  const Classification cls = classify_mesh(m);
  const CoarsenLevelResult level = coarsen_level(m.coords(), g, cls, 0, {});
  std::set<idx> selected(level.selected.begin(), level.selected.end());
  for (idx v = 0; v < m.num_vertices(); ++v) {
    if (cls.type[v] == VertexType::kCorner) {
      EXPECT_TRUE(selected.contains(v)) << "corner " << v << " deleted";
    }
  }
}

}  // namespace
}  // namespace prom::coarsen
