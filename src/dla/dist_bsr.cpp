#include "dla/dist_bsr.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "obs/trace.h"

namespace prom::dla {
namespace {

// Forward node-block ghost exchange; the plan's reverse path would use
// kTagNodeGhost + 1 (unused — DistBsr has no transpose).
constexpr int kTagNodeGhost = 311;
constexpr int BS = kDofPerVertex;

}  // namespace

DistBsr DistBsr::build(parx::Comm& comm, const DistCsr& a,
                       std::span<const idx> perm,
                       std::span<const idx> free_dofs) {
  DistBsr d;
  d.rank_ = comm.rank();
  const int rank = d.rank_;
  const RowDist& cols = a.col_dist();
  const idx c0 = cols.begin(rank);
  const idx n_own = cols.local_size(rank);
  // Square operator with aligned row/column distributions only.
  PROM_CHECK(a.row_dist().begin(rank) == c0 && a.local_rows() == n_own);
  PROM_CHECK(static_cast<idx>(perm.size()) == cols.global_size());
  d.nlocal_ = n_own;

  const std::vector<idx>& ghosts = a.ghost_cols();
  const idx n_ext = n_own + static_cast<idx>(ghosts.size());

  // Extended columns sorted by global id (owned range and ghost list are
  // both ascending — merge). A node's free dofs are contiguous in the
  // global numbering, so grouping consecutive equal vertices yields the
  // node partition, already ordered by global position.
  std::vector<std::pair<idx, idx>> by_global;  // (global id, ext col)
  by_global.reserve(static_cast<std::size_t>(n_ext));
  {
    idx io = 0;
    std::size_t ig = 0;
    while (io < n_own || ig < ghosts.size()) {
      if (ig >= ghosts.size() || (io < n_own && c0 + io < ghosts[ig])) {
        by_global.emplace_back(c0 + io, io);
        ++io;
      } else {
        by_global.emplace_back(ghosts[ig], n_own + static_cast<idx>(ig));
        ++ig;
      }
    }
  }

  struct NodeInfo {
    idx vertex;
    int owner;
  };
  std::vector<NodeInfo> nodes;
  std::vector<idx> bcol_of_ext(static_cast<std::size_t>(n_ext));
  std::vector<idx> comp_of_ext(static_cast<std::size_t>(n_ext));
  for (const auto& [g, e] : by_global) {
    const idx serial = perm[g];
    const idx v = free_dofs[serial] / BS;
    const idx c = free_dofs[serial] % BS;
    if (nodes.empty() || nodes.back().vertex != v) {
      nodes.push_back({v, cols.owner(g)});
    }
    bcol_of_ext[e] = static_cast<idx>(nodes.size()) - 1;
    comp_of_ext[e] = c;
  }
  const idx nnodes = static_cast<idx>(nodes.size());

  // Owned block rows, in node (= global) order.
  std::vector<idx> brow_of_node(static_cast<std::size_t>(nnodes),
                                kInvalidIdx);
  idx nbrows = 0;
  for (idx nd = 0; nd < nnodes; ++nd) {
    if (nodes[nd].owner == rank) brow_of_node[nd] = nbrows++;
  }

  d.row_slot_of_free_.resize(static_cast<std::size_t>(n_own));
  d.slot_of_owned_col_.resize(static_cast<std::size_t>(n_own));
  d.own_node_dof_.assign(static_cast<std::size_t>(nbrows) * BS, kInvalidIdx);
  for (idx i = 0; i < n_own; ++i) {
    const idx nd = bcol_of_ext[i];
    PROM_CHECK(brow_of_node[nd] != kInvalidIdx);
    d.row_slot_of_free_[i] = BS * brow_of_node[nd] + comp_of_ext[i];
    d.slot_of_owned_col_[i] = BS * nd + comp_of_ext[i];
    d.own_node_dof_[d.row_slot_of_free_[i]] = i;
  }

  // Re-block the local rows. Pattern pass per block row over the node's
  // scalar rows (consecutive local rows — owned columns are sorted by
  // global id); the diagonal node block is always kept so constrained
  // components get their identity pivot.
  const la::Csr& lm = a.local_matrix();
  la::Bsr3& m = d.local_;
  m.nbrows = nbrows;
  m.nbcols = nnodes;
  m.browptr.assign(static_cast<std::size_t>(nbrows) + 1, 0);
  std::vector<idx> marker(static_cast<std::size_t>(nnodes), kInvalidIdx);
  std::vector<std::vector<idx>> row_bcols(static_cast<std::size_t>(nbrows));
  for (idx i = 0; i < n_own; ++i) {
    const idx br = d.row_slot_of_free_[i] / BS;
    auto& bcols = row_bcols[br];
    const idx own_nd = bcol_of_ext[i];
    if (marker[own_nd] != br) {
      marker[own_nd] = br;
      bcols.push_back(own_nd);
    }
    for (nnz_t k = lm.rowptr[i]; k < lm.rowptr[i + 1]; ++k) {
      const idx nd = bcol_of_ext[lm.colidx[k]];
      if (marker[nd] != br) {
        marker[nd] = br;
        bcols.push_back(nd);
      }
    }
  }
  for (idx br = 0; br < nbrows; ++br) {
    std::sort(row_bcols[br].begin(), row_bcols[br].end());
    m.browptr[br + 1] =
        m.browptr[br] + static_cast<nnz_t>(row_bcols[br].size());
  }
  m.bcolidx.resize(static_cast<std::size_t>(m.browptr[nbrows]));
  m.vals.assign(m.bcolidx.size() * BS * BS, real{0});
  for (idx br = 0; br < nbrows; ++br) {
    std::copy(row_bcols[br].begin(), row_bcols[br].end(),
              m.bcolidx.begin() + m.browptr[br]);
  }
  for (idx i = 0; i < n_own; ++i) {
    const idx br = d.row_slot_of_free_[i] / BS;
    const idx r = d.row_slot_of_free_[i] % BS;
    const auto& bcols = row_bcols[br];
    const nnz_t base = m.browptr[br];
    for (nnz_t k = lm.rowptr[i]; k < lm.rowptr[i + 1]; ++k) {
      const idx nd = bcol_of_ext[lm.colidx[k]];
      const auto it = std::lower_bound(bcols.begin(), bcols.end(), nd);
      const nnz_t pos = base + static_cast<nnz_t>(it - bcols.begin());
      m.vals[static_cast<std::size_t>(pos) * BS * BS + r * BS +
             comp_of_ext[lm.colidx[k]]] = lm.vals[k];
    }
  }
  // Identity pivots on constrained (padding) components of owned nodes;
  // the padded x entries are always 0, so SpMV results are unaffected.
  for (idx nd = 0; nd < nnodes; ++nd) {
    const idx br = brow_of_node[nd];
    if (br == kInvalidIdx) continue;
    for (int c = 0; c < BS; ++c) {
      if (d.own_node_dof_[static_cast<std::size_t>(br) * BS + c] !=
          kInvalidIdx) {
        continue;
      }
      const auto& bcols = row_bcols[br];
      const auto it = std::lower_bound(bcols.begin(), bcols.end(), nd);
      const nnz_t pos =
          m.browptr[br] + static_cast<nnz_t>(it - bcols.begin());
      m.vals[static_cast<std::size_t>(pos) * BS * BS + c * BS + c] = 1;
    }
  }

  // Node-granularity exchange plan: ghost nodes are requested from their
  // owners by vertex id (identical on every rank at a given level).
  std::vector<std::vector<idx>> requests(
      static_cast<std::size_t>(comm.size()));
  std::vector<std::vector<idx>> req_bcols(
      static_cast<std::size_t>(comm.size()));
  for (idx nd = 0; nd < nnodes; ++nd) {
    if (nodes[nd].owner == rank) continue;
    requests[nodes[nd].owner].push_back(nodes[nd].vertex);
    req_bcols[nodes[nd].owner].push_back(nd);
  }
  const auto incoming = comm.alltoallv(requests);

  std::vector<std::pair<idx, idx>> vertex_to_brow;  // owned (vertex, brow)
  vertex_to_brow.reserve(static_cast<std::size_t>(nbrows));
  for (idx nd = 0; nd < nnodes; ++nd) {
    if (brow_of_node[nd] != kInvalidIdx) {
      vertex_to_brow.emplace_back(nodes[nd].vertex, brow_of_node[nd]);
    }
  }
  std::sort(vertex_to_brow.begin(), vertex_to_brow.end());

  for (int r = 0; r < comm.size(); ++r) {
    if (r == rank) continue;
    if (!incoming[r].empty()) {
      // Whole node blocks on the wire: BS values per requested node,
      // padding components gathered as kInvalidIdx (shipped as 0).
      std::vector<idx> gather;
      gather.reserve(incoming[r].size() * BS);
      for (idx v : incoming[r]) {
        const auto it = std::lower_bound(
            vertex_to_brow.begin(), vertex_to_brow.end(),
            std::make_pair(v, idx{0}),
            [](const auto& a_, const auto& b_) { return a_.first < b_.first; });
        PROM_CHECK(it != vertex_to_brow.end() && it->first == v);
        for (int c = 0; c < BS; ++c) {
          gather.push_back(
              d.own_node_dof_[static_cast<std::size_t>(it->second) * BS + c]);
        }
      }
      d.plan_.add_send(r, std::move(gather));
    }
    if (!requests[r].empty()) {
      std::vector<idx> slots;
      slots.reserve(req_bcols[r].size() * BS);
      for (idx nd : req_bcols[r]) {
        for (int c = 0; c < BS; ++c) slots.push_back(nd * BS + c);
      }
      d.plan_.add_recv(r, std::move(slots));
    }
  }
  d.plan_.finalize(kTagNodeGhost);

  // Interior/boundary split at block-row granularity: a block row is
  // interior when every referenced node column is owned.
  for (idx br = 0; br < nbrows; ++br) {
    bool interior = true;
    for (nnz_t k = m.browptr[br]; k < m.browptr[br + 1]; ++k) {
      if (brow_of_node[m.bcolidx[k]] == kInvalidIdx) {
        interior = false;
        break;
      }
    }
    (interior ? d.interior_brows_ : d.boundary_brows_).push_back(br);
  }

  // Persistent padded work vectors. Zero invariants: owned padding slots
  // of x_ext_ are never rewritten (the per-call scatter touches only free
  // owned slots, the exchange rewrites whole ghost nodes incl. their
  // padding zeros); b_pad_ padding likewise stays 0 after this fill.
  d.x_ext_.assign(static_cast<std::size_t>(d.local_.cols()), real{0});
  d.y_pad_.assign(static_cast<std::size_t>(d.local_.rows()), real{0});
  d.b_pad_.assign(static_cast<std::size_t>(d.local_.rows()), real{0});
  d.r_pad_.assign(static_cast<std::size_t>(d.local_.rows()), real{0});
  return d;
}

void DistBsr::spmv(parx::Comm& comm, std::span<const real> x_local,
                   std::span<real> y_local) const {
  PROM_CHECK(static_cast<idx>(x_local.size()) == nlocal_ &&
             static_cast<idx>(y_local.size()) == nlocal_);
  plan_.post(comm, x_local);
  for (idx i = 0; i < nlocal_; ++i) {
    x_ext_[slot_of_owned_col_[i]] = x_local[i];
  }
  if (halo_mode() == HaloMode::kOverlap) {
    {
      const obs::Span span("halo.interior");
      local_.spmv_brows(x_ext_, y_pad_, interior_brows_);
    }
    plan_.finish(comm, x_ext_);
    const obs::Span span("halo.boundary");
    local_.spmv_brows(x_ext_, y_pad_, boundary_brows_);
  } else {
    plan_.finish_rank_order(comm, x_ext_);
    local_.spmv(x_ext_, y_pad_);
  }
  for (idx i = 0; i < nlocal_; ++i) y_local[i] = y_pad_[row_slot_of_free_[i]];
}

void DistBsr::residual(parx::Comm& comm, std::span<const real> b_local,
                       std::span<const real> x_local,
                       std::span<real> r_local) const {
  PROM_CHECK(static_cast<idx>(b_local.size()) == nlocal_ &&
             static_cast<idx>(x_local.size()) == nlocal_ &&
             static_cast<idx>(r_local.size()) == nlocal_);
  plan_.post(comm, x_local);
  for (idx i = 0; i < nlocal_; ++i) {
    x_ext_[slot_of_owned_col_[i]] = x_local[i];
  }
  for (idx i = 0; i < nlocal_; ++i) {
    b_pad_[row_slot_of_free_[i]] = b_local[i];
  }
  if (halo_mode() == HaloMode::kOverlap) {
    {
      const obs::Span span("halo.interior");
      local_.residual_brows(b_pad_, x_ext_, r_pad_, interior_brows_);
    }
    plan_.finish(comm, x_ext_);
    const obs::Span span("halo.boundary");
    local_.residual_brows(b_pad_, x_ext_, r_pad_, boundary_brows_);
  } else {
    plan_.finish_rank_order(comm, x_ext_);
    local_.residual(b_pad_, x_ext_, r_pad_);
  }
  for (idx i = 0; i < nlocal_; ++i) r_local[i] = r_pad_[row_slot_of_free_[i]];
}

void DistBsr::ensure_mv_buffers(int k) const {
  if (x_ext_mv_.cols() == k) return;
  x_ext_mv_.resize(static_cast<idx>(x_ext_.size()), k);
  y_pad_mv_.resize(static_cast<idx>(y_pad_.size()), k);
  b_pad_mv_.resize(static_cast<idx>(b_pad_.size()), k);
  r_pad_mv_.resize(static_cast<idx>(r_pad_.size()), k);
}

void DistBsr::spmm(parx::Comm& comm, const la::MultiVec& x_local,
                   la::MultiVec& y_local) const {
  const int k = x_local.cols();
  PROM_CHECK(x_local.rows() == nlocal_ && y_local.rows() == nlocal_ &&
             y_local.cols() == k);
  ensure_mv_buffers(k);
  plan_.post_mv(comm, x_local);
  for (int j = 0; j < k; ++j) {
    const real* xj = x_local.col_data(j);
    real* ext = x_ext_mv_.col_data(j);
    for (idx i = 0; i < nlocal_; ++i) ext[slot_of_owned_col_[i]] = xj[i];
  }
  if (halo_mode() == HaloMode::kOverlap) {
    {
      const obs::Span span("halo.interior");
      local_.spmm_brows(x_ext_mv_, y_pad_mv_, interior_brows_);
    }
    plan_.finish_mv(comm, x_ext_mv_);
    const obs::Span span("halo.boundary");
    local_.spmm_brows(x_ext_mv_, y_pad_mv_, boundary_brows_);
  } else {
    plan_.finish_rank_order_mv(comm, x_ext_mv_);
    local_.spmm(x_ext_mv_, y_pad_mv_);
  }
  for (int j = 0; j < k; ++j) {
    const real* yp = y_pad_mv_.col_data(j);
    real* yj = y_local.col_data(j);
    for (idx i = 0; i < nlocal_; ++i) yj[i] = yp[row_slot_of_free_[i]];
  }
}

void DistBsr::residual_mv(parx::Comm& comm, const la::MultiVec& b_local,
                          const la::MultiVec& x_local,
                          la::MultiVec& r_local) const {
  const int k = x_local.cols();
  PROM_CHECK(b_local.rows() == nlocal_ && x_local.rows() == nlocal_ &&
             r_local.rows() == nlocal_ && b_local.cols() == k &&
             r_local.cols() == k);
  ensure_mv_buffers(k);
  plan_.post_mv(comm, x_local);
  for (int j = 0; j < k; ++j) {
    const real* xj = x_local.col_data(j);
    const real* bj = b_local.col_data(j);
    real* ext = x_ext_mv_.col_data(j);
    real* bp = b_pad_mv_.col_data(j);
    for (idx i = 0; i < nlocal_; ++i) ext[slot_of_owned_col_[i]] = xj[i];
    for (idx i = 0; i < nlocal_; ++i) bp[row_slot_of_free_[i]] = bj[i];
  }
  if (halo_mode() == HaloMode::kOverlap) {
    {
      const obs::Span span("halo.interior");
      local_.residual_mv_brows(b_pad_mv_, x_ext_mv_, r_pad_mv_,
                               interior_brows_);
    }
    plan_.finish_mv(comm, x_ext_mv_);
    const obs::Span span("halo.boundary");
    local_.residual_mv_brows(b_pad_mv_, x_ext_mv_, r_pad_mv_,
                             boundary_brows_);
  } else {
    plan_.finish_rank_order_mv(comm, x_ext_mv_);
    local_.residual_mv(b_pad_mv_, x_ext_mv_, r_pad_mv_);
  }
  for (int j = 0; j < k; ++j) {
    const real* rp = r_pad_mv_.col_data(j);
    real* rj = r_local.col_data(j);
    for (idx i = 0; i < nlocal_; ++i) rj[i] = rp[row_slot_of_free_[i]];
  }
}

}  // namespace prom::dla
