file(REMOVE_RECURSE
  "CMakeFiles/prom_la.dir/la/csr.cpp.o"
  "CMakeFiles/prom_la.dir/la/csr.cpp.o.d"
  "CMakeFiles/prom_la.dir/la/dense.cpp.o"
  "CMakeFiles/prom_la.dir/la/dense.cpp.o.d"
  "CMakeFiles/prom_la.dir/la/krylov.cpp.o"
  "CMakeFiles/prom_la.dir/la/krylov.cpp.o.d"
  "CMakeFiles/prom_la.dir/la/smoothers.cpp.o"
  "CMakeFiles/prom_la.dir/la/smoothers.cpp.o.d"
  "CMakeFiles/prom_la.dir/la/sparse_chol.cpp.o"
  "CMakeFiles/prom_la.dir/la/sparse_chol.cpp.o.d"
  "CMakeFiles/prom_la.dir/la/vec.cpp.o"
  "CMakeFiles/prom_la.dir/la/vec.cpp.o.d"
  "libprom_la.a"
  "libprom_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prom_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
