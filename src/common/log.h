// Minimal leveled logging to stderr. Thread-safe (each line is emitted with
// a single write under a mutex). Verbosity is a process-global setting so
// examples/benches can silence library chatter.
#pragma once

#include <sstream>
#include <string>

namespace prom {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Sets the global verbosity; messages above this level are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one log line (appends '\n'); used by the PROM_LOG macro below.
void log_line(LogLevel level, const std::string& msg);

}  // namespace prom

#define PROM_LOG(level, expr)                                \
  do {                                                       \
    if (static_cast<int>(level) <=                           \
        static_cast<int>(::prom::log_level())) {             \
      std::ostringstream prom_log_os;                        \
      prom_log_os << expr;                                   \
      ::prom::log_line(level, prom_log_os.str());            \
    }                                                        \
  } while (0)

#define PROM_INFO(expr) PROM_LOG(::prom::LogLevel::kInfo, expr)
#define PROM_WARN(expr) PROM_LOG(::prom::LogLevel::kWarn, expr)
#define PROM_DEBUG(expr) PROM_LOG(::prom::LogLevel::kDebug, expr)
