file(REMOVE_RECURSE
  "libprom_app.a"
)
