// Adaptive local refinement (ISSUE 10): the Kuhn hex-to-tet split, Rivara
// longest-edge bisection with conformity closure, the residual-based
// error indicators, the refined multigrid hierarchy with local smoothing,
// and the app-level solve-estimate-mark-refine loop. Everything here is
// serial; the distributed equivalence lives in test_dist_refine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <utility>
#include <vector>

#include "app/driver.h"
#include "app/refine.h"
#include "common/error.h"
#include "common/parallel.h"
#include "fem/assembly.h"
#include "fem/indicator.h"
#include "fem/scalar.h"
#include "mesh/generate.h"
#include "mesh/refine.h"
#include "mg/hierarchy.h"
#include "mg/solver.h"
#include "partition/rcb.h"

namespace prom {
namespace {

mesh::Mesh unit_tet_box(idx n) {
  return mesh::hex_to_tet(mesh::box_hex(n, n, n, {0, 0, 0}, {1, 1, 1}));
}

TEST(HexToTet, SplitsEveryHexIntoSixPositiveTets) {
  const mesh::Mesh hex = mesh::box_hex(3, 3, 3, {0, 0, 0}, {1, 1, 1});
  const mesh::Mesh tet = mesh::hex_to_tet(hex);
  EXPECT_EQ(tet.kind(), mesh::CellKind::kTet4);
  EXPECT_EQ(tet.num_cells(), 6 * hex.num_cells());
  // The split adds no vertices (dof maps built on the hex mesh stay
  // valid) and preserves the volume exactly as a sum of tet volumes.
  EXPECT_EQ(tet.num_vertices(), hex.num_vertices());
  EXPECT_NEAR(tet.volume(), hex.volume(), 1e-12);
  for (idx e = 0; e < tet.num_cells(); ++e) {
    EXPECT_GT(mesh::cell_volume(tet, e), 0) << "cell " << e;
  }
  EXPECT_TRUE(mesh::is_conforming(tet));
  // Materials follow the parent hex.
  for (idx e = 0; e < tet.num_cells(); ++e) {
    EXPECT_EQ(tet.material(e), hex.material(e / 6));
  }
}

TEST(HexToTet, TetMeshPassesThrough) {
  const mesh::Mesh tet = unit_tet_box(2);
  const mesh::Mesh again = mesh::hex_to_tet(tet);
  EXPECT_EQ(again.num_cells(), tet.num_cells());
  EXPECT_EQ(again.num_vertices(), tet.num_vertices());
}

TEST(RefineLocal, BisectionIsConformingAndVolumePreserving) {
  const mesh::Mesh m = unit_tet_box(3);
  const std::vector<idx> marked = {0, 7, 41};
  const mesh::RefineResult r = mesh::refine_local(m, marked);

  EXPECT_TRUE(mesh::is_conforming(r.mesh));
  EXPECT_NEAR(r.mesh.volume(), m.volume(), 1e-12);
  EXPECT_GT(r.mesh.num_cells(), m.num_cells());
  EXPECT_EQ(r.num_parent_vertices, m.num_vertices());
  EXPECT_EQ(static_cast<idx>(r.cell_changed.size()), m.num_cells());
  for (idx e : marked) EXPECT_TRUE(r.cell_changed[e]) << "cell " << e;

  // Old vertices keep their ids and coordinates; midpoints sit exactly
  // at the average of their parent endpoints.
  for (idx v = 0; v < m.num_vertices(); ++v) {
    EXPECT_EQ(std::memcmp(&r.mesh.coord(v), &m.coord(v), sizeof(Vec3)), 0);
  }
  for (std::size_t k = 0; k < r.vertex_parents.size(); ++k) {
    const idx mid = r.num_parent_vertices + static_cast<idx>(k);
    const auto& par = r.vertex_parents[k];
    ASSERT_LT(par[0], mid);
    ASSERT_LT(par[1], mid);
    const Vec3 expect = (r.mesh.coord(par[0]) + r.mesh.coord(par[1])) * 0.5;
    const Vec3 got = r.mesh.coord(mid);
    EXPECT_EQ(std::memcmp(&got, &expect, sizeof(Vec3)), 0) << "midpoint "
                                                           << mid;
  }

  // Every refined cell maps to a live ancestor, and unchanged cells map
  // to themselves with identical connectivity.
  ASSERT_EQ(static_cast<idx>(r.parent_cell.size()), r.mesh.num_cells());
  for (idx e = 0; e < r.mesh.num_cells(); ++e) {
    ASSERT_GE(r.parent_cell[e], 0);
    ASSERT_LT(r.parent_cell[e], m.num_cells());
  }
  idx unchanged = 0;
  for (idx e = 0; e < r.mesh.num_cells(); ++e) {
    const idx p = r.parent_cell[e];
    if (r.cell_changed[p]) continue;
    ++unchanged;
    const auto a = r.mesh.cell(e);
    const auto b = m.cell(p);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
  EXPECT_GT(unchanged, 0);
}

TEST(RefineLocal, DeterministicAcrossCallsAndThreads) {
  const mesh::Mesh m = unit_tet_box(3);
  std::vector<real> eta(static_cast<std::size_t>(m.num_cells()));
  for (idx e = 0; e < m.num_cells(); ++e) {
    eta[e] = std::sin(0.1 * static_cast<real>(e)) + 1.5;
  }
  const std::vector<idx> marked = mesh::mark_fraction(eta, 0.15);

  common::set_kernel_threads(1);
  const mesh::RefineResult a = mesh::refine_local(m, marked);
  common::set_kernel_threads(8);
  const mesh::RefineResult b = mesh::refine_local(m, marked);
  common::set_kernel_threads(0);

  ASSERT_EQ(a.mesh.num_cells(), b.mesh.num_cells());
  ASSERT_EQ(a.mesh.num_vertices(), b.mesh.num_vertices());
  EXPECT_EQ(std::memcmp(a.mesh.coords().data(), b.mesh.coords().data(),
                        a.mesh.coords().size() * sizeof(Vec3)),
            0);
  for (idx e = 0; e < a.mesh.num_cells(); ++e) {
    const auto ca = a.mesh.cell(e);
    const auto cb = b.mesh.cell(e);
    ASSERT_TRUE(std::equal(ca.begin(), ca.end(), cb.begin())) << e;
  }
  EXPECT_EQ(a.parent_cell, b.parent_cell);
  EXPECT_EQ(a.vertex_parents, b.vertex_parents);
}

TEST(RefineLocal, RepeatedRoundsStayConforming) {
  mesh::Mesh m = unit_tet_box(2);
  for (int round = 0; round < 3; ++round) {
    // Mark a deterministic pseudo-random 10%.
    std::vector<real> eta(static_cast<std::size_t>(m.num_cells()));
    for (idx e = 0; e < m.num_cells(); ++e) {
      eta[e] = std::fmod(static_cast<real>(e) * 0.61803, 1.0);
    }
    const std::vector<idx> marked = mesh::mark_fraction(eta, 0.1);
    mesh::RefineResult r = mesh::refine_local(m, marked);
    ASSERT_TRUE(mesh::is_conforming(r.mesh)) << "round " << round;
    ASSERT_NEAR(r.mesh.volume(), m.volume(), 1e-12) << "round " << round;
    m = std::move(r.mesh);
  }
}

TEST(MarkFraction, PicksLargestWithDeterministicTies) {
  const std::vector<real> eta = {0.5, 2.0, 2.0, 0.1, 3.0, 2.0};
  // ceil(0.5 * 6) = 3: the 3.0 and the two smallest-id 2.0s.
  const std::vector<idx> marked = mesh::mark_fraction(eta, 0.5);
  EXPECT_EQ(marked, (std::vector<idx>{1, 2, 4}));
  // Always at least one cell.
  EXPECT_EQ(mesh::mark_fraction(eta, 1e-9).size(), 1u);
  EXPECT_EQ(mesh::mark_fraction(eta, 1e-9)[0], 4);
}

// A globally linear solution has element-wise constant flux/stress with
// no jumps, so the indicators must vanish identically.
TEST(Indicator, LinearFieldsHaveZeroIndicator) {
  const mesh::Mesh m = unit_tet_box(3);

  std::vector<real> u_scalar(static_cast<std::size_t>(m.num_vertices()));
  for (idx v = 0; v < m.num_vertices(); ++v) {
    const Vec3& x = m.coord(v);
    u_scalar[v] = 1.0 + 2.0 * x.x - 3.0 * x.y + 0.5 * x.z;
  }
  fem::ScalarCoefficients coeffs;
  coeffs.diffusion = [](idx, const Vec3&) { return Mat3::identity(); };
  const std::vector<real> eta_s =
      fem::scalar_error_indicator(m, u_scalar, coeffs);
  ASSERT_EQ(static_cast<idx>(eta_s.size()), m.num_cells());
  for (real e : eta_s) EXPECT_NEAR(e, 0, 1e-12);

  std::vector<real> u_elast(3 * static_cast<std::size_t>(m.num_vertices()));
  for (idx v = 0; v < m.num_vertices(); ++v) {
    const Vec3& x = m.coord(v);
    u_elast[3 * v + 0] = 0.1 * x.x + 0.02 * x.y;
    u_elast[3 * v + 1] = -0.05 * x.y;
    u_elast[3 * v + 2] = 0.03 * x.z + 0.01 * x.x;
  }
  const std::vector<fem::Material> mats(1);
  const std::vector<real> eta_e =
      fem::elasticity_error_indicator(m, u_elast, mats);
  ASSERT_EQ(static_cast<idx>(eta_e.size()), m.num_cells());
  for (real e : eta_e) EXPECT_NEAR(e, 0, 1e-10);
}

// A kink in the gradient across the x = 0.5 plane: the flux-jump terms
// must concentrate the indicator in the cells touching that plane.
TEST(Indicator, FluxJumpConcentratesAtKink) {
  const mesh::Mesh m = unit_tet_box(4);
  std::vector<real> u(static_cast<std::size_t>(m.num_vertices()));
  for (idx v = 0; v < m.num_vertices(); ++v) {
    const real x = m.coord(v).x;
    u[v] = x < 0.5 ? x : 1.0 - x;  // tent: du/dx jumps at x = 0.5
  }
  fem::ScalarCoefficients coeffs;
  coeffs.diffusion = [](idx, const Vec3&) { return Mat3::identity(); };
  const std::vector<real> eta = fem::scalar_error_indicator(m, u, coeffs);

  real eta_kink = 0, eta_far = 0;
  for (idx e = 0; e < m.num_cells(); ++e) {
    const Vec3 c = m.centroid(e);
    if (std::fabs(c.x - 0.5) < 0.25) {
      eta_kink = std::max(eta_kink, eta[e]);
    } else {
      eta_far = std::max(eta_far, eta[e]);
    }
  }
  EXPECT_GT(eta_kink, 0);
  EXPECT_NEAR(eta_far, 0, 1e-12);
}

TEST(RefinedHierarchy, ElasticitySolveConvergesWithLocalSmoothing) {
  // Two bisection rounds on the tet box, then the refined hierarchy:
  // refinement levels (with masked smoothing) above the MIS chain.
  const app::ModelProblem p = app::make_box_problem(4);
  app::AdaptiveOptions ao;
  ao.rounds = 2;
  app::AdaptiveLoop loop = app::run_adaptive_refinement(p, ao);
  ASSERT_EQ(loop.rounds.size(), 2u);
  ASSERT_EQ(loop.dofmaps.size(), 3u);
  ASSERT_TRUE(mesh::is_conforming(loop.final_mesh()));
  // Refinement must actually grow the problem.
  ASSERT_GT(loop.round_unknowns[2], loop.round_unknowns[0]);

  mg::MgOptions mo;
  mo.coarsest_max_dofs = 200;
  const std::vector<real> rhs = loop.sys.rhs;
  la::Csr a = loop.sys.stiffness;
  const mg::Hierarchy h = mg::Hierarchy::build_refined(
      loop.mesh_ptrs(), loop.dofmap_ptrs(), loop.rounds, std::move(a), mo);

  // Levels 1..rounds are the refinement levels: identity vertex
  // inheritance and a non-empty local-smoothing mask.
  ASSERT_GE(h.num_levels(), 3);
  for (int l = 1; l <= 2; ++l) {
    EXPECT_FALSE(h.level(l).smooth_rows.empty()) << "level " << l;
    EXPECT_LT(h.level(l).smooth_rows.size(), h.level(l).free_dofs.size())
        << "level " << l << ": mask should be local, not global";
  }
  EXPECT_TRUE(h.level(0).smooth_rows.empty());

  mg::MgSolveOptions so;
  so.rtol = 1e-8;
  std::vector<real> x(rhs.size(), 0);
  const la::KrylovResult r = mg::mg_pcg_solve(h, rhs, x, so);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 60);

  // True residual check against the assembled operator.
  std::vector<real> ax(rhs.size());
  loop.sys.stiffness.spmv(x, ax);
  real num = 0, den = 0;
  for (std::size_t i = 0; i < rhs.size(); ++i) {
    num += (rhs[i] - ax[i]) * (rhs[i] - ax[i]);
    den += rhs[i] * rhs[i];
  }
  EXPECT_LE(std::sqrt(num / den), 1e-7);
}

TEST(RefinedHierarchy, ScalarRefinedSolveMatchesUnrefinedHierarchy) {
  // The refined hierarchy and a plain MIS hierarchy on the *same* final
  // mesh solve the same linear system: solutions must agree to solver
  // tolerance even though the level structures differ.
  const app::ModelProblem p = app::make_poisson_het_problem(4, 1e3);
  app::AdaptiveOptions ao;
  ao.rounds = 2;
  app::AdaptiveLoop loop = app::run_adaptive_refinement(p, ao);

  mg::MgOptions mo = app::default_mg_options(p.equation);
  const std::vector<real>& rhs = loop.sys.rhs;
  mg::MgSolveOptions so;
  so.rtol = 1e-10;
  so.max_iters = 400;

  la::Csr a1 = loop.sys.stiffness;
  const mg::Hierarchy h_ref = mg::Hierarchy::build_refined_scalar(
      loop.mesh_ptrs(), loop.scalar_dofmap_ptrs(), loop.rounds,
      std::move(a1), mo);
  std::vector<real> x_ref(rhs.size(), 0);
  ASSERT_TRUE(mg::mg_pcg_solve(h_ref, rhs, x_ref, so).converged);

  la::Csr a2 = loop.sys.stiffness;
  const mg::Hierarchy h_mis = mg::Hierarchy::build_scalar(
      loop.final_mesh(), loop.final_scalar_dofmap(), std::move(a2), mo);
  std::vector<real> x_mis(rhs.size(), 0);
  ASSERT_TRUE(mg::mg_pcg_solve(h_mis, rhs, x_mis, so).converged);

  real scale = 0;
  for (real v : x_mis) scale = std::max(scale, std::fabs(v));
  ASSERT_GT(scale, 0);
  for (std::size_t i = 0; i < x_ref.size(); ++i) {
    EXPECT_NEAR(x_ref[i], x_mis[i], 1e-7 * scale) << "entry " << i;
  }
}

TEST(AdaptiveLoop, RefinesWhereTheIndicatorSaysAndRebalances) {
  // Jump-coefficient Poisson concentrates error at the coefficient
  // interface; the marked region should cluster there, and the fresh RCB
  // cut of the refined mesh must stay balanced while the inherited
  // partition degrades.
  const app::ModelProblem p = app::make_poisson_het_problem(4, 1e4);
  app::AdaptiveOptions ao;
  ao.rounds = 3;
  ao.mark_fraction = 0.1;
  app::AdaptiveLoop loop = app::run_adaptive_refinement(p, ao);
  ASSERT_EQ(loop.rounds.size(), 3u);
  ASSERT_TRUE(mesh::is_conforming(loop.final_mesh()));

  const int nranks = 4;
  const std::vector<idx> base_owner =
      partition::rcb_partition(loop.base.coords(), nranks);
  const std::vector<idx> inherited = app::inherit_owners(loop, base_owner);
  ASSERT_EQ(static_cast<idx>(inherited.size()),
            loop.final_mesh().num_vertices());
  const std::vector<idx> fresh =
      partition::rcb_partition(loop.final_mesh().coords(), nranks);

  const real imb_inherited = app::partition_imbalance(inherited, nranks);
  const real imb_fresh = app::partition_imbalance(fresh, nranks);
  // The acceptance bar: post-rebalance max/mean row imbalance <= 1.2.
  EXPECT_LE(imb_fresh, 1.2);
  // Rebalancing must not be worse than inheriting the stale cut.
  EXPECT_LE(imb_fresh, imb_inherited + 1e-12);
}

TEST(AdaptiveLoop, RequiresBcRefitter) {
  app::ModelProblem p = app::make_box_problem(3);
  p.fix_bcs = nullptr;  // hand-built problems cannot be refined
  app::AdaptiveOptions ao;
  ao.rounds = 1;
  EXPECT_THROW(app::run_adaptive_refinement(p, ao), prom::Error);
}

}  // namespace
}  // namespace prom
