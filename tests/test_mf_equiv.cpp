// Matrix-free operator equivalence battery (fem/matrix_free.h +
// dla/dist_mf.h): the on-the-fly element apply must reproduce the
// assembled CSR and BSR3 operators to reassociation rounding on
// randomized meshes and vectors, must be bitwise reproducible across
// kernel thread counts (the bit-determinism contract of
// common/parallel.h), and the distributed apply must match the serial one
// bitwise per owned row at every rank count and in both halo modes —
// which is what lets PROM_MATRIX=mf reproduce the assembled solver's
// iterate history.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "app/driver.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "dla/dist_mg.h"
#include "dla/halo.h"
#include "fem/assembly.h"
#include "fem/matrix_free.h"
#include "la/bsr.h"
#include "mesh/generate.h"
#include "mg/hierarchy.h"
#include "mg/solver.h"
#include "parx/runtime.h"

namespace prom {
namespace {

/// Restores the kernel thread count (and halo mode) on scope exit so a
/// failing assertion cannot leak a setting into later tests.
struct ScopedKernelThreads {
  int saved;
  explicit ScopedKernelThreads(int n) : saved(common::kernel_threads()) {
    common::set_kernel_threads(n);
  }
  ~ScopedKernelThreads() { common::set_kernel_threads(saved); }
};

struct ScopedHaloMode {
  dla::HaloMode saved;
  explicit ScopedHaloMode(dla::HaloMode m) : saved(dla::halo_mode()) {
    dla::set_halo_mode(m);
  }
  ~ScopedHaloMode() { dla::set_halo_mode(saved); }
};

std::vector<real> random_vector(std::size_t n, Rng& rng) {
  std::vector<real> x(n);
  for (real& v : x) v = 2 * rng.next_real() - 1;
  return x;
}

/// A meshed elasticity problem with randomized Dirichlet data: the box and
/// sphere meshers' geometry, a clamped bottom plus a handful of randomly
/// fixed dofs so the constrained-slot masking is exercised away from the
/// structured faces.
struct TestProblem {
  mesh::Mesh mesh;
  std::vector<fem::Material> materials;
  fem::DofMap dofmap{0};
  la::Csr k;  ///< assembled K_ff
};

TestProblem make_problem(mesh::Mesh mesh, std::vector<fem::Material> mats,
                         Rng& rng) {
  TestProblem p;
  p.mesh = std::move(mesh);
  p.materials = std::move(mats);
  p.dofmap = fem::DofMap(p.mesh.num_vertices());
  const Aabb box = p.mesh.bounding_box();
  const real zmin = box.lo.z;
  p.dofmap.fix_all(p.mesh.vertices_where(
                       [zmin](const Vec3& q) { return q.z < zmin + 1e-9; }),
                   0.0);
  for (int i = 0; i < 10; ++i) {
    const idx v = static_cast<idx>(rng.next_below(
        static_cast<std::uint64_t>(p.mesh.num_vertices())));
    p.dofmap.fix(v, static_cast<int>(rng.next_below(3)),
                 0.01 * (2 * rng.next_real() - 1));
  }
  p.dofmap.finalize();
  fem::FeProblem fe(p.mesh, p.materials, p.dofmap);
  p.k = fem::assemble_linear_system(fe).stiffness;
  return p;
}

std::vector<TestProblem> equivalence_problems(Rng& rng) {
  std::vector<TestProblem> out;
  out.push_back(
      make_problem(mesh::box_hex(4, 5, 3, {0, 0, 0}, {1.3, 1, 0.7}),
                   {fem::Material{}}, rng));
  mesh::SphereInCubeParams sp;
  sp.num_shells = 3;
  sp.base_core_layers = 2;
  sp.base_outer_layers = 2;
  out.push_back(make_problem(mesh::sphere_in_cube_octant(sp),
                             {fem::Material::paper_soft(),
                              fem::Material::paper_hard()},
                             rng));
  return out;
}

// --- assembled-operator equivalence ----------------------------------------

TEST(MfEquivalence, ApplyMatchesCsrAndBsr3OnRandomizedProblems) {
  Rng rng(0xA11CE);
  for (const TestProblem& p : equivalence_problems(rng)) {
    const idx n = p.k.nrows;
    ASSERT_GT(n, 0);
    const fem::MatrixFreeOperator mf =
        fem::MatrixFreeOperator::build(p.mesh, p.materials, p.dofmap);
    ASSERT_EQ(mf.rows(), n);
    la::NodeBlockMap map = la::node_block_map(p.dofmap.free_dofs());
    la::Bsr3 blocked = la::bsr_from_free_csr(p.k, map);
    const la::BsrOperator bsr(std::move(blocked), std::move(map));

    for (int trial = 0; trial < 4; ++trial) {
      const std::vector<real> x =
          random_vector(static_cast<std::size_t>(n), rng);
      std::vector<real> y_csr(x.size()), y_bsr(x.size()), y_mf(x.size());
      p.k.spmv(x, y_csr);
      bsr.apply(x, y_bsr);
      mf.apply(x, y_mf);
      real scale = 0;
      for (real v : y_csr) scale = std::max(scale, std::fabs(v));
      ASSERT_GT(scale, 0);
      for (idx i = 0; i < n; ++i) {
        EXPECT_NEAR(y_mf[i], y_csr[i], 1e-12 * scale)
            << "csr entry " << i << ", trial " << trial;
        EXPECT_NEAR(y_mf[i], y_bsr[i], 1e-12 * scale)
            << "bsr entry " << i << ", trial " << trial;
      }

      // Fused residual: one subtraction per entry on top of the apply —
      // bitwise equal to compose-then-subtract (la/backend.h contract).
      const std::vector<real> b =
          random_vector(static_cast<std::size_t>(n), rng);
      std::vector<real> r_fused(x.size());
      mf.residual(b, x, r_fused);
      for (idx i = 0; i < n; ++i) {
        EXPECT_EQ(r_fused[i], b[i] - y_mf[i]) << "residual entry " << i;
      }
    }
  }
}

TEST(MfEquivalence, SubsetRowHooksMatchFullApply) {
  Rng rng(0xB0B);
  const TestProblem p = make_problem(
      mesh::box_hex(4, 4, 4, {0, 0, 0}, {1, 1, 1}), {fem::Material{}}, rng);
  const idx n = p.k.nrows;
  const fem::MatrixFreeOperator mf =
      fem::MatrixFreeOperator::build(p.mesh, p.materials, p.dofmap);
  const std::vector<real> x = random_vector(static_cast<std::size_t>(n), rng);
  const std::vector<real> b = random_vector(static_cast<std::size_t>(n), rng);
  std::vector<real> y_full(x.size());
  mf.apply(x, y_full);

  // An arbitrary split into two subsets must tile the full result and
  // leave out-of-subset entries untouched.
  std::vector<idx> evens, odds;
  for (idx i = 0; i < n; ++i) (i % 2 == 0 ? evens : odds).push_back(i);
  std::vector<real> y(x.size(), -7.0);
  mf.apply_rows(x, y, evens);
  for (idx i : odds) EXPECT_EQ(y[i], -7.0);
  mf.apply_rows(x, y, odds);
  for (idx i = 0; i < n; ++i) EXPECT_EQ(y[i], y_full[i]) << "row " << i;

  std::vector<real> r_full(x.size()), r(x.size(), -7.0);
  mf.residual(b, x, r_full);
  mf.residual_rows(b, x, r, evens);
  mf.residual_rows(b, x, r, odds);
  for (idx i = 0; i < n; ++i) EXPECT_EQ(r[i], r_full[i]) << "row " << i;
}

// --- kernel-thread bit determinism -----------------------------------------

TEST(MfEquivalence, ApplyIsBitwiseIdenticalAcrossKernelThreadCounts) {
  Rng rng(0xDE7);
  for (const TestProblem& p : equivalence_problems(rng)) {
    const idx n = p.k.nrows;
    const fem::MatrixFreeOperator mf =
        fem::MatrixFreeOperator::build(p.mesh, p.materials, p.dofmap);
    const std::vector<real> x =
        random_vector(static_cast<std::size_t>(n), rng);
    std::vector<real> y_ref(x.size());
    {
      const ScopedKernelThreads one(1);
      mf.apply(x, y_ref);
    }
    for (int threads : {2, 8}) {
      const ScopedKernelThreads t(threads);
      std::vector<real> y(x.size());
      mf.apply(x, y);
      for (idx i = 0; i < n; ++i) {
        EXPECT_EQ(y[i], y_ref[i]) << threads << " threads, entry " << i;
      }
    }
  }
}

// --- serial vs distributed -------------------------------------------------

struct DistProblem {
  app::ModelProblem model;
  mg::Hierarchy hierarchy;
  std::vector<real> rhs;
};

DistProblem build_dist_problem() {
  DistProblem p;
  p.model = app::make_box_problem(6);
  fem::FeProblem fe(p.model.mesh, p.model.materials, p.model.dofmap);
  fem::LinearSystem sys = fem::assemble_linear_system(fe);
  mg::MgOptions mo;
  mo.smoother = mg::SmootherKind::kJacobi;
  mo.coarsest_max_dofs = 60;  // multi-level hierarchy on a small box
  p.rhs = std::move(sys.rhs);
  p.hierarchy = mg::Hierarchy::build(p.model.mesh, p.model.dofmap,
                                     std::move(sys.stiffness), mo);
  return p;
}

std::vector<idx> block_owner(idx nv, int p) {
  std::vector<idx> owner(static_cast<std::size_t>(nv));
  for (idx v = 0; v < nv; ++v) {
    owner[static_cast<std::size_t>(v)] =
        static_cast<idx>((static_cast<std::int64_t>(v) * p) / nv);
  }
  return owner;
}

class MfEquivRanks : public ::testing::TestWithParam<int> {};

TEST_P(MfEquivRanks, DistributedSpmvMatchesSerialBitwise) {
  const DistProblem prob = build_dist_problem();
  const fem::MatrixFreeOperator serial = fem::MatrixFreeOperator::build(
      prob.model.mesh, prob.model.materials, prob.model.dofmap);
  Rng rng(0x5EED);
  const std::vector<real> x = random_vector(prob.rhs.size(), rng);
  std::vector<real> y_ref(x.size());
  serial.apply(x, y_ref);

  const dla::MfProblem mfp{&prob.model.mesh, &prob.model.materials,
                           &prob.model.dofmap, true};
  const std::vector<idx> owner =
      block_owner(prob.model.mesh.num_vertices(), GetParam());
  for (const dla::HaloMode mode :
       {dla::HaloMode::kOverlap, dla::HaloMode::kSync}) {
    const ScopedHaloMode scoped(mode);
    std::vector<real> y(x.size(), 0);
    parx::Runtime::run(GetParam(), [&](parx::Comm& comm) {
      const dla::DistHierarchy dist = dla::DistHierarchy::build(
          comm, prob.hierarchy, owner, mg::MatrixFormat::kMf, &mfp);
      ASSERT_NE(dist.level(0).a_mf, nullptr);
      const auto& perm = dist.permutation(0);
      const dla::RowDist& rows = dist.level(0).a.row_dist();
      const idx b0 = rows.begin(comm.rank());
      const idx nloc = rows.local_size(comm.rank());
      std::vector<real> x_local(static_cast<std::size_t>(nloc));
      for (idx i = 0; i < nloc; ++i) x_local[i] = x[perm[b0 + i]];
      std::vector<real> y_local(static_cast<std::size_t>(nloc), 0);
      dist.level(0).a_mf->spmv(comm, x_local, y_local);
      for (idx i = 0; i < nloc; ++i) y[perm[b0 + i]] = y_local[i];
    });
    // Pass B accumulates each owned row's element contributions in
    // ascending global element order on every rank — identical to the
    // serial order, so the match is bitwise, not just close.
    for (std::size_t i = 0; i < y.size(); ++i) {
      EXPECT_EQ(y[i], y_ref[i])
          << "entry " << i << ", "
          << (mode == dla::HaloMode::kSync ? "sync" : "overlap");
    }
  }
}

TEST_P(MfEquivRanks, MfPcgHistoryMatchesSerialCsr) {
  DistProblem prob = build_dist_problem();
  mg::MgSolveOptions so;
  so.rtol = 1e-8;
  so.track_history = true;
  std::vector<real> x_ref(prob.rhs.size(), 0);
  const la::KrylovResult ref =
      mg::mg_pcg_solve(prob.hierarchy, prob.rhs, x_ref, so);
  ASSERT_TRUE(ref.converged);
  ASSERT_FALSE(ref.history.empty());

  // Serial mf against serial CSR first: identical iteration count, same
  // residual history to reassociation rounding.
  prob.hierarchy.enable_mf(prob.model.mesh, prob.model.materials,
                           prob.model.dofmap);
  mg::MgSolveOptions so_mf = so;
  so_mf.format = mg::MatrixFormat::kMf;
  std::vector<real> x_sm(prob.rhs.size(), 0);
  const la::KrylovResult sm =
      mg::mg_pcg_solve(prob.hierarchy, prob.rhs, x_sm, so_mf);
  EXPECT_TRUE(sm.converged);
  EXPECT_EQ(sm.iterations, ref.iterations);
  ASSERT_EQ(sm.history.size(), ref.history.size());
  for (std::size_t i = 0; i < ref.history.size(); ++i) {
    EXPECT_NEAR(sm.history[i], ref.history[i], 1e-12 * ref.history[0])
        << "serial mf history entry " << i;
  }

  // Distributed mf PCG at this rank count: same iterate history again.
  const dla::MfProblem mfp{&prob.model.mesh, &prob.model.materials,
                           &prob.model.dofmap, true};
  const std::vector<idx> owner =
      block_owner(prob.model.mesh.num_vertices(), GetParam());
  std::vector<la::KrylovResult> results(
      static_cast<std::size_t>(GetParam()));
  parx::Runtime::run(GetParam(), [&](parx::Comm& comm) {
    const dla::DistHierarchy dist = dla::DistHierarchy::build(
        comm, prob.hierarchy, owner, mg::MatrixFormat::kMf, &mfp);
    const auto& perm = dist.permutation(0);
    const dla::RowDist& rows = dist.level(0).a.row_dist();
    const idx b0 = rows.begin(comm.rank());
    const idx nloc = rows.local_size(comm.rank());
    std::vector<real> b_local(static_cast<std::size_t>(nloc));
    for (idx i = 0; i < nloc; ++i) b_local[i] = prob.rhs[perm[b0 + i]];
    std::vector<real> x_local(static_cast<std::size_t>(nloc), 0);
    results[comm.rank()] =
        dist_mg_pcg_solve(comm, dist, b_local, x_local, so_mf);
  });
  const la::KrylovResult& d = results[0];
  EXPECT_TRUE(d.converged);
  EXPECT_EQ(d.iterations, ref.iterations);
  ASSERT_EQ(d.history.size(), ref.history.size());
  for (std::size_t i = 0; i < ref.history.size(); ++i) {
    EXPECT_NEAR(d.history[i], ref.history[i], 1e-12 * ref.history[0])
        << "dist mf history entry " << i;
  }
  // Collective deterministic reductions: every rank reports identical
  // results.
  for (int r = 1; r < GetParam(); ++r) {
    EXPECT_EQ(results[r].iterations, d.iterations);
    EXPECT_EQ(results[r].final_relres, d.final_relres);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, MfEquivRanks, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace prom
