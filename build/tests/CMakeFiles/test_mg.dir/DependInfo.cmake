
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_mg.cpp" "tests/CMakeFiles/test_mg.dir/test_mg.cpp.o" "gcc" "tests/CMakeFiles/test_mg.dir/test_mg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prom_mg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_fem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_app.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_nonlinear.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_dla.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_coarsen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_delaunay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_parx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
