// Small 3-vector used for vertex coordinates, facet normals, and the
// geometric heuristics of §4. Deliberately a plain aggregate with value
// semantics; all operations are constexpr-friendly.
#pragma once

#include <cmath>

#include "common/config.h"

namespace prom {

struct Vec3 {
  real x = 0, y = 0, z = 0;

  constexpr real& operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr const real& operator[](int i) const {
    return i == 0 ? x : (i == 1 ? y : z);
  }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(real s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }
};

constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
constexpr Vec3 operator*(Vec3 a, real s) { return a *= s; }
constexpr Vec3 operator*(real s, Vec3 a) { return a *= s; }
constexpr Vec3 operator/(Vec3 a, real s) { return a *= (real{1} / s); }
constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

constexpr bool operator==(const Vec3& a, const Vec3& b) {
  return a.x == b.x && a.y == b.y && a.z == b.z;
}

constexpr real dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}

inline real norm(const Vec3& a) { return std::sqrt(dot(a, a)); }

constexpr real norm2(const Vec3& a) { return dot(a, a); }

/// Unit vector in the direction of `a`; returns the zero vector if `a` is
/// (numerically) zero so callers need not special-case degenerate facets.
inline Vec3 normalized(const Vec3& a) {
  const real n = norm(a);
  return n > real{0} ? a / n : Vec3{};
}

inline real distance(const Vec3& a, const Vec3& b) { return norm(a - b); }

}  // namespace prom
