// Tests of the observability subsystem (src/obs): span recording and its
// determinism under the kernel-thread sweep, traffic bracketing against
// parx's own counters, the report / Chrome-trace schemas round-tripped
// through the obs JSON parser, and the disabled-tracer bit-identity
// guarantee the solver gates rely on.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "app/driver.h"
#include "common/error.h"
#include "common/parallel.h"
#include "fem/assembly.h"
#include "mg/hierarchy.h"
#include "mg/solver.h"
#include "obs/json.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "parx/runtime.h"

namespace prom {
namespace {

/// RAII: recording on for one test, restored (and off) after.
class ScopedTracing {
 public:
  ScopedTracing() : was_(obs::tracing()) {
    obs::Tracer::instance().set_enabled(true);
  }
  ~ScopedTracing() { obs::Tracer::instance().set_enabled(was_); }

 private:
  bool was_;
};

/// ctest runs test binaries concurrently in one directory; keep temp
/// filenames per-process.
std::string temp_path(const std::string& stem) {
  return stem + "." + std::to_string(::getpid()) + ".json";
}

// ---- obs::json ------------------------------------------------------------

TEST(ObsJson, ParsesScalarsArraysAndObjects) {
  const obs::json::Value v = obs::json::Value::parse(
      R"({"a": 1.5, "b": [true, false, null], "c": {"d": "x\n\"y\""}, )"
      R"("e": -2e3})");
  EXPECT_DOUBLE_EQ(v.at("a").as_number(), 1.5);
  ASSERT_EQ(v.at("b").items().size(), 3u);
  EXPECT_TRUE(v.at("b").items()[0].as_bool());
  EXPECT_FALSE(v.at("b").items()[1].as_bool());
  EXPECT_TRUE(v.at("b").items()[2].is_null());
  EXPECT_EQ(v.at("c").at("d").as_string(), "x\n\"y\"");
  EXPECT_DOUBLE_EQ(v.at("e").as_number(), -2000.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ObsJson, RejectsMalformedDocuments) {
  EXPECT_THROW(obs::json::Value::parse("{"), Error);
  EXPECT_THROW(obs::json::Value::parse("[1, 2,]"), Error);
  EXPECT_THROW(obs::json::Value::parse("{\"a\": 1} trailing"), Error);
  EXPECT_THROW(obs::json::Value::parse("\"unterminated"), Error);
  EXPECT_THROW(obs::json::Value::parse("nul"), Error);
}

TEST(ObsJson, DecodesUnicodeEscapesToUtf8) {
  // BMP code points: 1-, 2-, and 3-byte UTF-8.
  EXPECT_EQ(obs::json::Value::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(obs::json::Value::parse("\"\\u00e9\"").as_string(),
            "\xC3\xA9");  // e-acute
  EXPECT_EQ(obs::json::Value::parse("\"\\u20ac\"").as_string(),
            "\xE2\x82\xAC");  // euro sign
  // Supplementary plane: the surrogate pair combines to one 4-byte
  // sequence (U+1F600).
  EXPECT_EQ(obs::json::Value::parse("\"\\ud83d\\ude00\"").as_string(),
            "\xF0\x9F\x98\x80");
  // Control characters as \u00XX escapes.
  EXPECT_EQ(obs::json::Value::parse("\"\\u0001\\u001f\"").as_string(),
            "\x01\x1F");

  // Broken surrogates and truncated escapes are malformed, not silently
  // passed through.
  EXPECT_THROW(obs::json::Value::parse("\"\\ud83d\""), Error);
  EXPECT_THROW(obs::json::Value::parse("\"\\ud83dx\""), Error);
  EXPECT_THROW(obs::json::Value::parse("\"\\ud83d\\u0041\""), Error);
  EXPECT_THROW(obs::json::Value::parse("\"\\ude00\""), Error);
  EXPECT_THROW(obs::json::Value::parse("\"\\u12\""), Error);
  EXPECT_THROW(obs::json::Value::parse("\"\\u12gz\""), Error);
}

TEST(ObsJson, EscapedRoundTripsAdversarialStrings) {
  const std::string cases[] = {
      "plain",
      "quote \" backslash \\ slash /",
      "newline\nreturn\rtab\t",
      std::string("nul\0byte", 8),
      "\x01\x02\x1F control run",
      "non-ascii: émile \xE2\x82\xAC \xF0\x9F\x98\x80",
      "looks like an escape: \\u0041 \\n",
      "{\"json\": [\"inside\", 1]}",
  };
  for (const std::string& s : cases) {
    const std::string doc = "\"" + obs::json::escaped(s) + "\"";
    EXPECT_EQ(obs::json::Value::parse(doc).as_string(), s) << doc;
  }
}

// ---- span recording -------------------------------------------------------

/// A nested-span workload whose inner work runs through parallel_for.
void traced_workload() {
  const obs::Span outer("test.outer");
  std::vector<real> x(4096, 1);
  common::parallel_for(0, static_cast<idx>(x.size()), 256,
                       [&](idx b, idx e) {
                         for (idx i = b; i < e; ++i) x[i] = 2 * x[i] + 1;
                       });
  {
    const obs::Span inner("test.inner", 3);
    common::parallel_reduce(0, static_cast<idx>(x.size()), 256,
                            [&](idx b, idx e) {
                              real s = 0;
                              for (idx i = b; i < e; ++i) s += x[i];
                              return s;
                            });
  }
  const obs::Span tail("test.tail");
}

/// This thread's spans opened since `mark`, in open (seq) order.
std::vector<obs::SpanRecord> my_spans_since(std::int64_t mark) {
  std::vector<obs::SpanRecord> spans =
      obs::Tracer::instance().spans_since(mark);
  std::erase_if(spans, [](const obs::SpanRecord& s) {
    return std::string_view(s.name).substr(0, 5) != "test.";
  });
  std::sort(spans.begin(), spans.end(),
            [](const obs::SpanRecord& a, const obs::SpanRecord& b) {
              return a.seq < b.seq;
            });
  return spans;
}

TEST(ObsTrace, SpanNestingIsDeterministicAcrossKernelThreads) {
  const ScopedTracing tracing;
  struct Shape {
    std::string name;
    int level;
    std::uint32_t depth;
  };
  std::vector<std::vector<Shape>> shapes;
  for (const int threads : {1, 2, 8}) {
    common::set_kernel_threads(threads);
    const std::int64_t mark = obs::Tracer::now_ns();
    traced_workload();
    const std::vector<obs::SpanRecord> spans = my_spans_since(mark);
    ASSERT_EQ(spans.size(), 3u) << threads << " threads";
    std::vector<Shape> shape;
    for (const obs::SpanRecord& s : spans) {
      shape.push_back({s.name, s.level, s.depth});
      EXPECT_EQ(s.rank, obs::kHostRank);
      EXPECT_LE(s.t0_ns, s.t1_ns);
    }
    // The tree: outer at depth 0 encloses inner and tail at depth 1.
    EXPECT_EQ(shape[0].name, "test.outer");
    EXPECT_EQ(shape[0].depth, 0u);
    EXPECT_EQ(shape[1].name, "test.inner");
    EXPECT_EQ(shape[1].level, 3);
    EXPECT_EQ(shape[1].depth, 1u);
    EXPECT_EQ(shape[2].name, "test.tail");
    EXPECT_EQ(shape[2].depth, 1u);
    // Nesting in time: children open and close inside the parent.
    const auto outer_it = std::find_if(
        spans.begin(), spans.end(),
        [](const obs::SpanRecord& s) { return s.depth == 0; });
    for (const obs::SpanRecord& s : spans) {
      if (s.depth == 0) continue;
      EXPECT_GE(s.t0_ns, outer_it->t0_ns);
      EXPECT_LE(s.t1_ns, outer_it->t1_ns);
    }
    shapes.push_back(std::move(shape));
  }
  common::set_kernel_threads(0);  // restore default policy
  for (std::size_t i = 1; i < shapes.size(); ++i) {
    ASSERT_EQ(shapes[i].size(), shapes[0].size());
    for (std::size_t k = 0; k < shapes[0].size(); ++k) {
      EXPECT_EQ(shapes[i][k].name, shapes[0][k].name);
      EXPECT_EQ(shapes[i][k].level, shapes[0][k].level);
      EXPECT_EQ(shapes[i][k].depth, shapes[0][k].depth);
    }
  }
}

TEST(ObsTrace, SpanTrafficDeltasMatchCommTraffic) {
  const ScopedTracing tracing;
  constexpr int kRanks = 4;
  std::vector<std::int64_t> expect_messages(kRanks), expect_bytes(kRanks);
  const std::int64_t mark = obs::Tracer::now_ns();
  parx::Runtime::run(kRanks, [&](parx::Comm& comm) {
    const parx::TrafficStats before = comm.traffic();
    {
      const obs::Span span("test.collective");
      comm.allreduce_sum(static_cast<double>(comm.rank()));
      comm.allgatherv(std::vector<std::int32_t>(
          static_cast<std::size_t>(comm.rank() + 1), comm.rank()));
      comm.barrier();
    }
    const parx::TrafficStats after = comm.traffic();
    expect_messages[comm.rank()] =
        after.messages_sent - before.messages_sent;
    expect_bytes[comm.rank()] = after.bytes_sent - before.bytes_sent;
  });
  std::vector<obs::SpanRecord> spans =
      obs::Tracer::instance().spans_since(mark);
  std::erase_if(spans, [](const obs::SpanRecord& s) {
    return std::string_view(s.name) != "test.collective";
  });
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kRanks));
  std::int64_t total_messages = 0;
  for (const obs::SpanRecord& s : spans) {
    ASSERT_GE(s.rank, 0);
    ASSERT_LT(s.rank, kRanks);
    EXPECT_EQ(s.messages, expect_messages[s.rank]) << "rank " << s.rank;
    EXPECT_EQ(s.bytes, expect_bytes[s.rank]) << "rank " << s.rank;
    total_messages += s.messages;
  }
  EXPECT_GT(total_messages, 0);
}

// ---- report ---------------------------------------------------------------

TEST(ObsReport, AggregatesPhasesMetricsAndRoundTripsThroughJson) {
  const ScopedTracing tracing;
  const std::int64_t mark = obs::Tracer::now_ns();
  {
    const obs::Span phase("phase.alpha");
    const obs::Span comp("test.work", 2);
  }
  obs::counter_add("test.count", 2.0, 0);
  obs::counter_add("test.count", 3.0, 0);
  obs::gauge_set("test.gauge", 1.0);
  obs::gauge_set("test.gauge", 7.5);
  obs::series_push("test.series", 1.0);
  obs::series_push("test.series", 0.5);
  parx::Runtime::run(2, [&](parx::Comm& comm) {
    const obs::Span phase("phase.beta");
    comm.barrier();
    obs::counter_add("test.count", 1.0, 0);
  });

  const obs::Report rep = obs::build_report(mark);
  EXPECT_EQ(rep.ranks, 2);
  ASSERT_NE(rep.phase("alpha"), nullptr);
  ASSERT_NE(rep.phase("beta"), nullptr);
  EXPECT_GT(rep.phase("alpha")->host_seconds, 0);
  EXPECT_EQ(rep.phase("beta")->per_rank.size(), 2u);
  EXPECT_GT(rep.phase_seconds("beta"), 0);
  ASSERT_NE(rep.component("test.work", 2), nullptr);
  EXPECT_EQ(rep.component("test.work", 2)->count, 1);
  // 2 + 3 on the host plus 1 on each of the two ranks.
  EXPECT_DOUBLE_EQ(rep.counter("test.count", 0), 7.0);
  EXPECT_DOUBLE_EQ(rep.gauge("test.gauge"), 7.5);
  ASSERT_NE(rep.find_series("test.series"), nullptr);
  EXPECT_EQ(rep.find_series("test.series")->values,
            (std::vector<double>{1.0, 0.5}));

  // Serialize, parse back through the schema check, compare.
  const obs::Report back = obs::Report::from_json(rep.to_json());
  EXPECT_EQ(back.ranks, rep.ranks);
  ASSERT_EQ(back.phases.size(), rep.phases.size());
  for (std::size_t i = 0; i < rep.phases.size(); ++i) {
    EXPECT_EQ(back.phases[i].name, rep.phases[i].name);
    EXPECT_EQ(back.phases[i].per_rank.size(), rep.phases[i].per_rank.size());
    EXPECT_EQ(back.phases[i].messages, rep.phases[i].messages);
    EXPECT_NEAR(back.phases[i].seconds(), rep.phases[i].seconds(), 1e-12);
  }
  ASSERT_EQ(back.components.size(), rep.components.size());
  for (std::size_t i = 0; i < rep.components.size(); ++i) {
    EXPECT_EQ(back.components[i].name, rep.components[i].name);
    EXPECT_EQ(back.components[i].level, rep.components[i].level);
    EXPECT_EQ(back.components[i].count, rep.components[i].count);
  }
  EXPECT_DOUBLE_EQ(back.counter("test.count", 0), rep.counter("test.count", 0));
  EXPECT_DOUBLE_EQ(back.gauge("test.gauge"), 7.5);
  EXPECT_EQ(back.find_series("test.series")->values,
            rep.find_series("test.series")->values);

  EXPECT_THROW(obs::Report::from_json("{\"schema\": \"other\"}"), Error);
}

TEST(ObsReport, DerivesOperatorComplexityFromLevelCounters) {
  const ScopedTracing tracing;
  const std::int64_t mark = obs::Tracer::now_ns();
  obs::counter_add("mg.nnz", 1000.0, 0);
  obs::counter_add("mg.nnz", 400.0, 1);
  obs::counter_add("mg.nnz", 100.0, 2);
  obs::gauge_set("mg.rows", 90.0, 0);
  const obs::Report rep = obs::build_report(mark);
  EXPECT_NEAR(rep.gauge("mg.operator_complexity"), 1.5, 1e-12);
  EXPECT_DOUBLE_EQ(rep.gauge("mg.rows", 0), 90.0);
}

TEST(ObsReport, WindowMarkExcludesEarlierRecords) {
  const ScopedTracing tracing;
  { const obs::Span old_span("phase.stale"); }
  const std::int64_t mark = obs::Tracer::now_ns();
  { const obs::Span fresh("phase.fresh"); }
  const obs::Report rep = obs::build_report(mark);
  EXPECT_EQ(rep.phase("stale"), nullptr);
  EXPECT_NE(rep.phase("fresh"), nullptr);
}

// ---- Chrome trace ---------------------------------------------------------

TEST(ObsTrace, ChromeTraceFileMatchesSchema) {
  const ScopedTracing tracing;
  {
    const obs::Span span("test.chrome", 1);
  }
  parx::Runtime::run(2, [&](parx::Comm& comm) {
    const obs::Span span("test.chrome_rank");
    comm.barrier();
  });
  const std::string path = temp_path("test_obs_chrome");
  obs::Tracer::instance().write_chrome_trace(path);
  const obs::json::Value doc = obs::json::parse_file(path);
  std::remove(path.c_str());

  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto& events = doc.at("traceEvents").items();
  ASSERT_FALSE(events.empty());
  bool saw_host = false, saw_rank = false, saw_metadata = false;
  for (const obs::json::Value& e : events) {
    const std::string ph = e.at("ph").as_string();
    if (ph == "M") {
      saw_metadata = true;
      EXPECT_EQ(e.at("name").as_string(), "process_name");
      continue;
    }
    ASSERT_EQ(ph, "X");
    EXPECT_FALSE(e.at("name").as_string().empty());
    EXPECT_GE(e.at("dur").as_number(), 0.0);
    EXPECT_GE(e.at("ts").as_number(), 0.0);
    const auto& args = e.at("args");
    EXPECT_NE(args.find("messages"), nullptr);
    EXPECT_NE(args.find("flops"), nullptr);
    if (e.at("name").as_string() == "test.chrome") {
      saw_host = true;
      EXPECT_DOUBLE_EQ(e.at("pid").as_number(), 0.0);
      EXPECT_DOUBLE_EQ(args.at("level").as_number(), 1.0);
    }
    if (e.at("name").as_string() == "test.chrome_rank") saw_rank = true;
  }
  EXPECT_TRUE(saw_metadata);
  EXPECT_TRUE(saw_host);
  EXPECT_TRUE(saw_rank);
}

// ---- adversarial labels ---------------------------------------------------

// Span and metric labels flow verbatim into report.json and the Chrome
// trace; quotes, backslashes, control characters, and non-ASCII bytes in
// a label must produce valid JSON documents whose strings round-trip
// byte-for-byte (satellite of the shared json::escape_into fix).
TEST(ObsReport, AdversarialLabelsSurviveJsonRoundTrip) {
  const ScopedTracing tracing;
  static const char kPhase[] = "phase.bad \"quote\" \\back\nline\x01";
  static const char kComp[] = "comp \"x\"\t\\end\x1f\xC3\xA9";
  static const char kCount[] = "count \"c\" \\\n\x02";
  static const char kGauge[] = "gauge \"g\"\r\x03\xE2\x82\xAC";
  static const char kSeries[] = "series \"s\"\\u0041\x04";
  const std::int64_t mark = obs::Tracer::now_ns();
  {
    const obs::Span phase(kPhase);
    const obs::Span comp(kComp, 1);
  }
  obs::counter_add(kCount, 2.0, 0);
  obs::gauge_set(kGauge, 1.5);
  obs::series_push(kSeries, 0.5);

  const obs::Report rep = obs::build_report(mark);
  const std::string json = rep.to_json();
  // The document must parse despite the hostile labels...
  const obs::Report back = obs::Report::from_json(json);
  // ...and every label must round-trip byte-for-byte.
  ASSERT_NE(back.phase(std::string(kPhase).substr(6)), nullptr);
  ASSERT_NE(back.component(kComp, 1), nullptr);
  EXPECT_DOUBLE_EQ(back.counter(kCount, 0), 2.0);
  EXPECT_DOUBLE_EQ(back.gauge(kGauge), 1.5);
  ASSERT_NE(back.find_series(kSeries), nullptr);
  EXPECT_EQ(back.find_series(kSeries)->values, (std::vector<double>{0.5}));
}

TEST(ObsTrace, ChromeTraceSurvivesAdversarialSpanNames) {
  const ScopedTracing tracing;
  static const char kName[] = "test.bad \"quote\"\\slash\nline\x01\xC3\xA9";
  {
    const obs::Span span(kName, 2);
  }
  const std::string path = temp_path("test_obs_chrome_adversarial");
  obs::Tracer::instance().write_chrome_trace(path);
  const obs::json::Value doc = obs::json::parse_file(path);
  std::remove(path.c_str());

  bool found = false;
  for (const obs::json::Value& e : doc.at("traceEvents").items()) {
    if (e.at("ph").as_string() != "X") continue;
    if (e.at("name").as_string() == kName) found = true;
  }
  EXPECT_TRUE(found) << "hostile span name must survive the trace writer";
}

// ---- bit-identity ---------------------------------------------------------

TEST(ObsTrace, DisabledTracerLeavesSolveBitIdentical) {
  const app::ModelProblem problem = app::make_box_problem(6);
  fem::FeProblem fe(problem.mesh, problem.materials, problem.dofmap);
  const fem::LinearSystem sys = fem::assemble_linear_system(fe);

  auto solve = [&] {
    mg::Hierarchy h =
        mg::Hierarchy::build(problem.mesh, problem.dofmap, sys.stiffness, {});
    std::vector<real> x(sys.rhs.size(), 0);
    mg::MgSolveOptions opts;
    opts.rtol = 1e-8;
    opts.track_history = true;
    const la::KrylovResult r = mg_pcg_solve(h, sys.rhs, x, opts);
    return std::make_pair(r.history, x);
  };

  ASSERT_FALSE(obs::tracing());
  const auto [history_off, x_off] = solve();
  std::pair<std::vector<real>, std::vector<real>> on;
  {
    const ScopedTracing tracing;
    on = solve();
  }
  const auto [history_off2, x_off2] = solve();

  // Tracing on or off, iterate histories and solutions are bit-identical.
  ASSERT_EQ(on.first.size(), history_off.size());
  for (std::size_t i = 0; i < history_off.size(); ++i) {
    EXPECT_EQ(on.first[i], history_off[i]) << "history entry " << i;
    EXPECT_EQ(history_off2[i], history_off[i]);
  }
  ASSERT_EQ(on.second.size(), x_off.size());
  for (std::size_t i = 0; i < x_off.size(); ++i) {
    EXPECT_EQ(on.second[i], x_off[i]) << "solution entry " << i;
    EXPECT_EQ(x_off2[i], x_off[i]);
  }
}

// ---- end-to-end through the driver ---------------------------------------

TEST(ObsReport, LinearStudyReportCarriesPhasesAndLevelMetrics) {
  const app::ModelProblem problem = app::make_box_problem(8);
  app::LinearStudyConfig cfg;
  cfg.nranks = 2;
  const std::string path = temp_path("test_obs_report");
  cfg.report_path = path;
  const app::LinearStudyReport r = app::run_linear_study(problem, cfg);

  for (const char* name :
       {"partition", "fine_grid", "mesh_setup", "matrix_setup", "solve"}) {
    ASSERT_NE(r.obs.phase(name), nullptr) << name;
  }
  EXPECT_EQ(r.obs.phase("matrix_setup")->per_rank.size(), 2u);
  EXPECT_EQ(r.obs.phase("solve")->per_rank.size(), 2u);
  // Derived wall times come from the report itself.
  EXPECT_DOUBLE_EQ(r.wall_solve, r.obs.phase_seconds("solve"));
  // Level metrics: rows gauge and nnz counter on every level, and the
  // derived operator complexity >= 1.
  for (int l = 0; l < r.levels; ++l) {
    EXPECT_GT(r.obs.gauge("mg.rows", l), 0) << "level " << l;
    EXPECT_GT(r.obs.counter("mg.nnz", l), 0) << "level " << l;
  }
  EXPECT_GE(r.obs.gauge("mg.operator_complexity"), 1.0);
  // PCG residual history: ||b|| followed by one entry per iteration.
  const obs::SeriesEntry* res = r.obs.find_series("pcg.residual");
  ASSERT_NE(res, nullptr);
  EXPECT_EQ(static_cast<int>(res->values.size()), r.iterations + 1);
  // Cycle components are level-resolved.
  EXPECT_NE(r.obs.component("mg.smooth", 0), nullptr);

  // The written report parses back through the schema check.
  const obs::Report back = obs::Report::read_json(path);
  std::remove(path.c_str());
  EXPECT_EQ(back.ranks, r.obs.ranks);
  EXPECT_NEAR(back.phase_seconds("solve"), r.wall_solve, 1e-9);
}

}  // namespace
}  // namespace prom
