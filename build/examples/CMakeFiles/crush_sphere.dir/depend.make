# Empty dependencies file for crush_sphere.
# This may be replaced when dependencies are built.
