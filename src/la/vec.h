// Dense vector kernels (BLAS-1 level) with flop accounting. All kernels
// operate on spans so callers can use std::vector, sub-ranges of a
// distributed vector, or stack buffers.
#pragma once

#include <span>
#include <vector>

#include "common/config.h"

namespace prom::la {

/// y <- y + a*x
void axpy(real a, std::span<const real> x, std::span<real> y);

/// y <- x + a*y
void aypx(real a, std::span<const real> x, std::span<real> y);

/// w <- a*x + b*y
void waxpby(real a, std::span<const real> x, real b, std::span<const real> y,
            std::span<real> w);

/// <x, y>
real dot(std::span<const real> x, std::span<const real> y);

/// ||x||_2
real nrm2(std::span<const real> x);

/// x <- a*x
void scale(real a, std::span<real> x);

/// x <- value
void set_all(std::span<real> x, real value);

/// y <- x
void copy(std::span<const real> x, std::span<real> y);

/// Convenience: allocate a zero vector of length n.
inline std::vector<real> zeros(idx n) {
  return std::vector<real>(static_cast<std::size_t>(n), real{0});
}

}  // namespace prom::la
