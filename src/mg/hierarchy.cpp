#include "mg/hierarchy.h"

#include <cstdlib>
#include <sstream>
#include <string_view>

#include "common/error.h"
#include "common/log.h"
#include "obs/trace.h"
#include "partition/greedy.h"

namespace prom::mg {
namespace {

/// Adjacency graph of a (structurally symmetric) sparse matrix.
graph::Graph graph_of_matrix(const la::Csr& a) {
  std::vector<std::pair<idx, idx>> edges;
  edges.reserve(static_cast<std::size_t>(a.nnz()));
  for (idx i = 0; i < a.nrows; ++i) {
    for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
      if (a.colidx[k] > i) edges.emplace_back(i, a.colidx[k]);
    }
  }
  return graph::Graph::from_edges(a.nrows, edges);
}

std::unique_ptr<la::Smoother> make_smoother(const la::Csr& a,
                                            const MgOptions& opts) {
  switch (opts.smoother) {
    case SmootherKind::kJacobi:
      return std::make_unique<la::JacobiSmoother>(a, opts.omega);
    case SmootherKind::kSymGaussSeidel:
      return std::make_unique<la::SymmetricGaussSeidel>(a);
    case SmootherKind::kBlockJacobi: {
      auto blocks = partition::block_jacobi_blocks(graph_of_matrix(a),
                                                   opts.bj_blocks_per_1000);
      return std::make_unique<la::BlockJacobiSmoother>(a, std::move(blocks),
                                                       opts.omega);
    }
    case SmootherKind::kChebyshev:
      return std::make_unique<la::ChebyshevSmoother>(a, opts.cheby_degree);
  }
  PROM_CHECK(false);
  return nullptr;
}

}  // namespace

Hierarchy Hierarchy::build(const mesh::Mesh& mesh, const fem::DofMap& dofmap,
                           la::Csr a_fine, const MgOptions& opts) {
  Hierarchy h = build_grids(mesh, dofmap, std::move(a_fine), opts);
  h.build_operators();
  return h;
}

Hierarchy Hierarchy::build_grids(const mesh::Mesh& mesh,
                                 const fem::DofMap& dofmap, la::Csr a_fine,
                                 const MgOptions& opts) {
  PROM_CHECK(dofmap.num_vertices() == mesh.num_vertices());
  PROM_CHECK(a_fine.nrows == dofmap.num_free() &&
             a_fine.ncols == dofmap.num_free());
  std::vector<char> dof_free(static_cast<std::size_t>(dofmap.num_dofs()));
  for (idx d = 0; d < dofmap.num_dofs(); ++d) {
    dof_free[d] = dofmap.is_constrained(d) ? 0 : 1;
  }
  return build_grids_any(mesh, 3, std::move(dof_free), dofmap.free_dofs(),
                         std::move(a_fine), opts);
}

Hierarchy Hierarchy::build_scalar(const mesh::Mesh& mesh,
                                  const fem::ScalarDofMap& dofmap,
                                  la::Csr a_fine, const MgOptions& opts) {
  Hierarchy h = build_grids_scalar(mesh, dofmap, std::move(a_fine), opts);
  h.build_operators();
  return h;
}

Hierarchy Hierarchy::build_grids_scalar(const mesh::Mesh& mesh,
                                        const fem::ScalarDofMap& dofmap,
                                        la::Csr a_fine,
                                        const MgOptions& opts) {
  PROM_CHECK(dofmap.num_vertices() == mesh.num_vertices());
  PROM_CHECK(a_fine.nrows == dofmap.num_free() &&
             a_fine.ncols == dofmap.num_free());
  std::vector<char> dof_free(static_cast<std::size_t>(dofmap.num_dofs()));
  for (idx v = 0; v < dofmap.num_dofs(); ++v) {
    dof_free[v] = dofmap.is_constrained(v) ? 0 : 1;
  }
  return build_grids_any(mesh, 1, std::move(dof_free), dofmap.free_dofs(),
                         std::move(a_fine), opts);
}

Hierarchy Hierarchy::build_grids_any(const mesh::Mesh& mesh, int ncomp,
                                     std::vector<char> dof_free,
                                     std::vector<idx> fine_free,
                                     la::Csr a_fine, const MgOptions& opts) {
  Hierarchy h;
  h.opts_ = opts;
  h.block_size_ = ncomp;

  // Level 0: the application-provided grid.
  MgLevel fine;
  fine.a = std::move(a_fine);
  fine.num_vertices = mesh.num_vertices();
  fine.free_dofs = std::move(fine_free);
  h.levels_.push_back(std::move(fine));

  // Geometry of the level currently being coarsened. The coarsening is
  // purely vertex-based — identical grids for any block size; only the
  // dof expansion of the restriction differs.
  std::vector<Vec3> coords = mesh.coords();
  graph::Graph vgraph = mesh.vertex_graph();
  coarsen::Classification cls = coarsen::classify_mesh(mesh, opts.coarsen.face);

  for (int l = 0; l + 1 < opts.max_levels; ++l) {
    const idx n_free = static_cast<idx>(h.levels_.back().free_dofs.size());
    if (n_free <= opts.coarsest_max_dofs) break;

    coarsen::CoarsenLevelResult cl =
        coarsen::coarsen_level(coords, vgraph, cls, l, opts.coarsen);
    const idx n_coarse = static_cast<idx>(cl.selected.size());
    if (n_coarse < 8 ||
        n_coarse >= static_cast<idx>(opts.min_coarsen_ratio *
                                     static_cast<real>(coords.size()))) {
      PROM_WARN("coarsening stalled at level "
                << l << " (" << coords.size() << " -> " << n_coarse
                << " vertices); stopping hierarchy here");
      break;
    }

    // Coarse constraint flags + free dof lists for the dof expansion.
    std::vector<char> coarse_dof_free(static_cast<std::size_t>(ncomp) *
                                      n_coarse);
    std::vector<idx> coarse_free;
    for (idx c = 0; c < n_coarse; ++c) {
      for (int comp = 0; comp < ncomp; ++comp) {
        const char f = dof_free[ncomp * cl.selected[c] + comp];
        coarse_dof_free[ncomp * c + comp] = f;
        if (f) coarse_free.push_back(ncomp * c + comp);
      }
    }

    MgLevel next;
    next.r = coarsen::expand_restriction_to_dofs(
        cl.r_vertex, h.levels_.back().free_dofs, coarse_free, ncomp);
    next.num_vertices = n_coarse;
    next.free_dofs = std::move(coarse_free);
    next.selected_from_fine = cl.selected;
    next.lost_vertices = static_cast<idx>(cl.lost.size());
    next.graph_edges_removed = cl.graph_stats.edges_removed;
    h.levels_.push_back(std::move(next));

    // Advance the geometry to the new level.
    std::vector<Vec3> coarse_coords(static_cast<std::size_t>(n_coarse));
    for (idx c = 0; c < n_coarse; ++c) {
      coarse_coords[c] = coords[cl.selected[c]];
    }
    coords = std::move(coarse_coords);
    vgraph = cl.coarse_mesh.vertex_graph();
    cls = std::move(cl.coarse_cls);
    dof_free = std::move(coarse_dof_free);
  }

  return h;
}

Hierarchy Hierarchy::from_operator_chain(la::Csr a_fine,
                                         std::vector<la::Csr> restrictions,
                                         const MgOptions& opts) {
  Hierarchy h;
  h.opts_ = opts;
  MgLevel fine;
  fine.num_vertices = a_fine.nrows;
  fine.free_dofs.resize(static_cast<std::size_t>(a_fine.nrows));
  for (idx i = 0; i < a_fine.nrows; ++i) fine.free_dofs[i] = i;
  fine.a = std::move(a_fine);
  h.levels_.push_back(std::move(fine));
  for (la::Csr& r : restrictions) {
    PROM_CHECK(r.ncols ==
               static_cast<idx>(h.levels_.back().free_dofs.size()));
    MgLevel next;
    next.num_vertices = r.nrows;
    next.free_dofs.resize(static_cast<std::size_t>(r.nrows));
    for (idx i = 0; i < r.nrows; ++i) next.free_dofs[i] = i;
    next.r = std::move(r);
    h.levels_.push_back(std::move(next));
  }
  h.build_operators();
  return h;
}

void Hierarchy::update_fine_matrix(la::Csr a_fine) {
  PROM_CHECK(!levels_.empty());
  PROM_CHECK(a_fine.nrows == levels_[0].a.nrows);
  levels_[0].a = std::move(a_fine);
  build_operators();
}

void Hierarchy::set_fine_matrix(la::Csr a_fine) {
  PROM_CHECK(!levels_.empty());
  PROM_CHECK(a_fine.nrows == levels_[0].a.nrows);
  levels_[0].a = std::move(a_fine);
  levels_[0].a_bsr.reset();  // stale node-block view; enable_bsr rebuilds
}

void Hierarchy::build_operators() {
  for (std::size_t l = 1; l < levels_.size(); ++l) {
    const obs::Span span("setup.galerkin", static_cast<int>(l));
    levels_[l].a = la::galerkin_product(levels_[l].r, levels_[l - 1].a);
  }
  // Level-resolved size metrics (the serial mirror of the distributed
  // build's records; the serial hierarchy holds the whole operator).
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const int li = static_cast<int>(l);
    obs::gauge_set("mg.rows", static_cast<double>(levels_[l].a.nrows), li);
    obs::counter_add("mg.nnz", static_cast<double>(levels_[l].a.nnz()), li);
  }
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const bool coarsest = l + 1 == levels_.size();
    levels_[l].smoother.reset();
    levels_[l].direct.reset();
    levels_[l].direct_lu.reset();
    levels_[l].sparse_direct.reset();
    levels_[l].a_bsr.reset();  // stale node-block view; enable_bsr rebuilds
    if (coarsest && levels_.size() > 1 &&
        opts_.coarse_solver == CoarseSolverKind::kDenseLu) {
      // Partial-pivoting LU: the non-symmetric coarse solve. No shift
      // escalation — pivoting handles anything short of exact
      // singularity, which PROM_CHECK rejects.
      const la::Csr& a = levels_[l].a;
      la::DenseMatrix dense(a.nrows, a.ncols);
      for (idx i = 0; i < a.nrows; ++i) {
        for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
          dense(i, a.colidx[k]) = a.vals[k];
        }
      }
      levels_[l].direct_lu = std::make_unique<la::DenseLu>(dense);
      PROM_CHECK_MSG(levels_[l].direct_lu->ok(),
                     "coarsest-level LU factorization failed (singular)");
    } else if (coarsest && levels_.size() > 1 &&
               opts_.coarse_solver == CoarseSolverKind::kSparseCholesky) {
      const la::Csr& a = levels_[l].a;
      levels_[l].sparse_direct = std::make_unique<la::SparseCholesky>(a);
      if (!levels_[l].sparse_direct->ok()) {
        real max_diag = 1;
        for (real v : a.diagonal()) max_diag = std::max(max_diag, std::abs(v));
        la::SparseCholOptions copts;
        for (copts.shift = 1e-12 * max_diag;
             !levels_[l].sparse_direct->ok(); copts.shift *= 10) {
          *levels_[l].sparse_direct = la::SparseCholesky(a, copts);
          PROM_CHECK_MSG(copts.shift < 1e30,
                         "coarse sparse Cholesky shift escalation failed");
        }
        PROM_WARN("coarsest-level sparse factor required a diagonal shift");
      }
    } else if (coarsest && levels_.size() > 1) {
      // Redundant dense factorization of the coarsest operator.
      const la::Csr& a = levels_[l].a;
      la::DenseMatrix dense(a.nrows, a.ncols);
      for (idx i = 0; i < a.nrows; ++i) {
        for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
          dense(i, a.colidx[k]) = a.vals[k];
        }
      }
      levels_[l].direct = std::make_unique<la::DenseLdlt>(dense);
      if (!levels_[l].direct->ok()) {
        // Newton tangents can be mildly indefinite; shift to factorability
        // (degrades the coarse solve, never correctness of PCG's answer).
        real max_diag = 1;
        for (idx i = 0; i < a.nrows; ++i) {
          max_diag = std::max(max_diag, std::abs(dense(i, i)));
        }
        for (real shift = 1e-12 * max_diag; !levels_[l].direct->ok();
             shift *= 10) {
          la::DenseMatrix shifted = dense;
          for (idx i = 0; i < a.nrows; ++i) shifted(i, i) += shift;
          *levels_[l].direct = la::DenseLdlt(shifted);
          PROM_CHECK_MSG(shift < 1e30, "coarse-level shift escalation failed");
        }
        PROM_WARN("coarsest-level operator required a diagonal shift");
      }
    } else {
      levels_[l].smoother = make_smoother(levels_[l].a, opts_);
    }
  }
}

MatrixFormat matrix_format_from_env() {
  const char* env = std::getenv("PROM_MATRIX");
  if (env == nullptr || env[0] == '\0') return MatrixFormat::kCsr;
  const std::string_view v(env);
  if (v == "csr") return MatrixFormat::kCsr;
  if (v == "bsr3") return MatrixFormat::kBsr3;
  if (v == "mf") return MatrixFormat::kMf;
  PROM_CHECK_MSG(false, "PROM_MATRIX must be 'csr', 'bsr3' or 'mf'");
  return MatrixFormat::kCsr;
}

idx agglom_min_rows_from_env() {
  const char* env = std::getenv("PROM_MIN_ROWS_PER_RANK");
  if (env == nullptr || env[0] == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  PROM_CHECK_MSG(end != env && *end == '\0' && v >= 0,
                 "PROM_MIN_ROWS_PER_RANK must be a non-negative integer");
  return static_cast<idx>(v);
}

void Hierarchy::enable_bsr() {
  const obs::Span span("setup.enable_bsr");
  PROM_CHECK_MSG(block_size_ == 3,
                 "node-block (bsr3) format requires block size 3");
  for (MgLevel& lv : levels_) {
    PROM_CHECK(static_cast<idx>(lv.free_dofs.size()) == lv.a.nrows);
    la::NodeBlockMap map = la::node_block_map(lv.free_dofs);
    la::Bsr3 blocked = la::bsr_from_free_csr(lv.a, map);
    lv.a_bsr =
        std::make_unique<la::BsrOperator>(std::move(blocked), std::move(map));
  }
}

void Hierarchy::enable_mf(const mesh::Mesh& mesh,
                          std::span<const fem::Material> materials,
                          const fem::DofMap& dofmap, bool bbar) {
  PROM_CHECK(!levels_.empty());
  PROM_CHECK_MSG(block_size_ == 3,
                 "matrix-free elasticity format requires block size 3");
  fem::MatrixFreeOperator op =
      fem::MatrixFreeOperator::build(mesh, materials, dofmap, bbar);
  PROM_CHECK_MSG(op.rows() == levels_[0].a.nrows,
                 "enable_mf: dofmap does not match the fine operator");
  levels_[0].a_mf = std::make_unique<fem::MatrixFreeOperator>(std::move(op));
}

std::string Hierarchy::describe() const {
  std::ostringstream os;
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const MgLevel& lv = levels_[l];
    os << "level " << l << ": " << lv.num_vertices << " vertices, "
       << lv.free_dofs.size() << " free dofs, nnz(A) = " << lv.a.nnz();
    if (l > 0) {
      os << ", reduction 1/"
         << static_cast<double>(levels_[l - 1].num_vertices) /
                static_cast<double>(lv.num_vertices)
         << ", lost " << lv.lost_vertices;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace prom::mg
