// Robust geometric predicates in the style of Shewchuk's adaptive-precision
// arithmetic [21 in the paper]: a fast floating-point evaluation guarded by
// a forward error bound, with an exact multi-term ("expansion") fallback
// when the fast result is not certain. These are the foundation of the
// Delaunay tetrahedralization used to remesh MIS vertex sets (§4.8).
//
// Both predicates follow the conventional signs:
//  - orient3d(a,b,c,d) > 0  iff det[b-a, c-a, d-a] > 0, i.e. d lies on the
//    side of plane(a,b,c) from which a,b,c appear counterclockwise (the
//    standard unit tetrahedron (0,0,0),(1,0,0),(0,1,0),(0,0,1) is
//    positive).
//  - insphere(a,b,c,d,e) > 0 iff e lies inside the circumsphere of the
//    positively oriented tetrahedron (a,b,c,d).
//
// The returned value is only meaningful through its sign (and zero-ness):
// the fast path returns the approximate determinant, the exact path returns
// the most significant component of the exact determinant.
#pragma once

#include "geom/vec3.h"

namespace prom {

/// Orientation test for four points (see file comment for the convention).
real orient3d(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d);

/// Circumsphere test for five points (see file comment for the convention).
real insphere(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d,
              const Vec3& e);

/// Sign helper: -1, 0 or +1.
inline int sign_of(real v) { return (v > 0) - (v < 0); }

/// Signed volume of tetrahedron (a,b,c,d); positive when orient3d > 0.
inline real signed_tet_volume(const Vec3& a, const Vec3& b, const Vec3& c,
                              const Vec3& d) {
  return orient3d(a, b, c, d) / real{6};
}

/// Unit normal of triangle (a,b,c) by the right-hand rule; zero for a
/// degenerate triangle.
inline Vec3 triangle_normal(const Vec3& a, const Vec3& b, const Vec3& c) {
  return normalized(cross(b - a, c - a));
}

/// Counts of how often each predicate fell back to the exact path; useful
/// to verify the filter is effective (kernel microbenchmarks).
struct PredicateStats {
  long orient3d_exact = 0;
  long insphere_exact = 0;
};
PredicateStats predicate_stats();
void reset_predicate_stats();

}  // namespace prom
