#include "fem/indicator.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_map>

#include "common/error.h"

namespace prom::fem {
namespace {

constexpr std::array<std::array<int, 3>, 4> kTetFaces = {
    {{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}}};

struct TripleHash {
  std::size_t operator()(const std::array<idx, 3>& t) const {
    std::uint64_t h = 1469598103934665603ull;
    for (idx v : t) {
      h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

struct CellGeom {
  std::array<Vec3, 4> grad;  ///< P1 basis gradients
  Vec3 centroid;
  real volume = 0;
  real h = 0;  ///< longest edge (the element diameter)
};

CellGeom cell_geom(const mesh::Mesh& mesh, idx e) {
  const std::span<const idx> c = mesh.cell(e);
  const Vec3 p0 = mesh.coord(c[0]);
  const Vec3 d1 = mesh.coord(c[1]) - p0;
  const Vec3 d2 = mesh.coord(c[2]) - p0;
  const Vec3 d3 = mesh.coord(c[3]) - p0;
  const real det6 = dot(d1, cross(d2, d3));  // 6 * signed volume
  PROM_CHECK_MSG(det6 != 0, "error indicator: degenerate tet");
  CellGeom g;
  g.volume = std::abs(det6) / 6;
  // Gradients of barycentric coordinates: rows of the inverse Jacobian.
  g.grad[1] = cross(d2, d3) / det6;
  g.grad[2] = cross(d3, d1) / det6;
  g.grad[3] = cross(d1, d2) / det6;
  g.grad[0] = -(g.grad[1] + g.grad[2] + g.grad[3]);
  g.centroid = mesh.centroid(e);
  g.h = 0;
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      g.h = std::max(g.h,
                     norm(mesh.coord(c[a]) - mesh.coord(c[b])));
    }
  }
  return g;
}

/// Accumulates the face-jump terms: `flux_of(e)` returns the element's
/// constant flux row(s); for each interior face the squared jump of the
/// normal component, weighted by sqrt(A_f)/2 * A_f, is added to both
/// neighbors' eta^2.
template <typename FluxOf>
void add_face_jumps(const mesh::Mesh& mesh, const FluxOf& flux_of,
                    std::vector<real>& eta2) {
  struct Side {
    idx cell = kInvalidIdx;
    std::array<idx, 3> verts{};
  };
  std::unordered_map<std::array<idx, 3>, Side, TripleHash> open;
  open.reserve(static_cast<std::size_t>(mesh.num_cells()) * 2);
  for (idx e = 0; e < mesh.num_cells(); ++e) {
    const std::span<const idx> c = mesh.cell(e);
    for (const auto& f : kTetFaces) {
      std::array<idx, 3> verts = {c[f[0]], c[f[1]], c[f[2]]};
      std::array<idx, 3> key = verts;
      std::sort(key.begin(), key.end());
      const auto it = open.find(key);
      if (it == open.end()) {
        open.emplace(key, Side{e, verts});
        continue;
      }
      const Side other = it->second;
      open.erase(it);
      const Vec3 p0 = mesh.coord(verts[0]);
      const Vec3 a = mesh.coord(verts[1]) - p0;
      const Vec3 b = mesh.coord(verts[2]) - p0;
      const Vec3 an = cross(a, b);  // |an| = 2 * area
      const real area = norm(an) / 2;
      if (area == 0) continue;
      const Vec3 n = an / (2 * area);
      const real jump2 = flux_of(e, other.cell, n);
      const real h_f = std::sqrt(area);
      // Half of the face term to each neighbor.
      const real w = (h_f / 2) * area * jump2 / 2;
      eta2[e] += w;
      eta2[other.cell] += w;
    }
  }
}

}  // namespace

std::vector<real> scalar_error_indicator(const mesh::Mesh& mesh,
                                         std::span<const real> u_full,
                                         const ScalarCoefficients& coeffs) {
  PROM_CHECK(mesh.kind() == mesh::CellKind::kTet4);
  PROM_CHECK(static_cast<idx>(u_full.size()) == mesh.num_vertices());
  PROM_CHECK_MSG(coeffs.diffusion != nullptr,
                 "scalar_error_indicator: diffusion coefficient required");
  const idx ne = mesh.num_cells();
  std::vector<real> eta2(static_cast<std::size_t>(ne), 0);
  std::vector<Vec3> flux(static_cast<std::size_t>(ne));

  for (idx e = 0; e < ne; ++e) {
    const CellGeom g = cell_geom(mesh, e);
    const std::span<const idx> c = mesh.cell(e);
    Vec3 grad_u{};
    real u_bar = 0;
    for (int k = 0; k < 4; ++k) {
      grad_u += u_full[c[k]] * g.grad[k];
      u_bar += u_full[c[k]] / 4;
    }
    const Mat3 kmat = coeffs.diffusion(e, g.centroid);
    Vec3 f{};
    for (int i = 0; i < 3; ++i) {
      f[i] = kmat(i, 0) * grad_u.x + kmat(i, 1) * grad_u.y +
             kmat(i, 2) * grad_u.z;
    }
    flux[e] = f;
    // Interior residual at the centroid; div(K grad u) vanishes for the
    // element-wise constant gradient.
    real r = coeffs.source ? coeffs.source(e, g.centroid) : 0;
    if (coeffs.velocity) r -= dot(coeffs.velocity(e, g.centroid), grad_u);
    if (coeffs.reaction) r -= coeffs.reaction(e, g.centroid) * u_bar;
    eta2[e] += g.h * g.h * g.volume * r * r;
  }

  add_face_jumps(mesh,
                 [&](idx e, idx o, const Vec3& n) {
                   const real j = dot(flux[e] - flux[o], n);
                   return j * j;
                 },
                 eta2);

  std::vector<real> eta(eta2.size());
  for (std::size_t e = 0; e < eta2.size(); ++e) eta[e] = std::sqrt(eta2[e]);
  return eta;
}

std::vector<real> elasticity_error_indicator(
    const mesh::Mesh& mesh, std::span<const real> u_full,
    std::span<const Material> materials) {
  PROM_CHECK(mesh.kind() == mesh::CellKind::kTet4);
  PROM_CHECK(static_cast<idx>(u_full.size()) == 3 * mesh.num_vertices());
  const idx ne = mesh.num_cells();
  std::vector<real> eta2(static_cast<std::size_t>(ne), 0);
  std::vector<Mat3> stress(static_cast<std::size_t>(ne));

  for (idx e = 0; e < ne; ++e) {
    const CellGeom g = cell_geom(mesh, e);
    const std::span<const idx> c = mesh.cell(e);
    Mat3 grad = Mat3::zero();  // grad(i,j) = d u_i / d x_j
    for (int k = 0; k < 4; ++k) {
      for (int i = 0; i < 3; ++i) {
        const real ui = u_full[3 * c[k] + i];
        for (int j = 0; j < 3; ++j) grad(i, j) += ui * g.grad[k][j];
      }
    }
    const Material& mat = materials[mesh.material(e)];
    const real mu = mat.mu();
    const real lambda = mat.lambda();
    const real tr = grad(0, 0) + grad(1, 1) + grad(2, 2);
    Mat3 sig = Mat3::zero();
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) sig(i, j) = mu * (grad(i, j) + grad(j, i));
      sig(i, i) += lambda * tr;
    }
    stress[e] = sig;
  }

  add_face_jumps(mesh,
                 [&](idx e, idx o, const Vec3& n) {
                   const Mat3 d = stress[e] - stress[o];
                   real j2 = 0;
                   for (int i = 0; i < 3; ++i) {
                     const real t =
                         d(i, 0) * n.x + d(i, 1) * n.y + d(i, 2) * n.z;
                     j2 += t * t;
                   }
                   return j2;
                 },
                 eta2);

  std::vector<real> eta(eta2.size());
  for (std::size_t e = 0; e < eta2.size(); ++e) eta[e] = std::sqrt(eta2[e]);
  return eta;
}

}  // namespace prom::fem
