// Figure 10 reproduction: per-phase times of one linear solve over the
// scaled series — solve times (left plot: total solve, solve for x,
// matrix setup) and "end to end" times (right plot: partitioning, fine
// grid creation, mesh setup, matrix setup, solve). Wall times are from
// this host (all phases execute genuinely); the solve phase additionally
// reports the machine-model time of DESIGN.md substitution 1, which is
// the quantity comparable to the paper's IBM cluster.
//
// All timings come out of the obs tracer: each case writes report.json
// (the prom.obs.report.v1 schema) and the table is printed from the
// parsed file, so the numbers shown are the numbers the artifact carries.
//
// Environment: PROM_BENCH_FULL=1 enlarges the series; PROM_BENCH_SMOKE=1
// shrinks it to the two smallest cases (the CI smoke lane).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "app/driver.h"
#include "obs/report.h"

using namespace prom;

int main() {
  const bool full = std::getenv("PROM_BENCH_FULL") != nullptr;
  const bool smoke = std::getenv("PROM_BENCH_SMOKE") != nullptr;
  const auto series = app::scaled_series(smoke ? 2 : (full ? 4 : 3));

  struct Row {
    idx unknowns;
    int ranks;
    int iterations;
    double partition, fine_grid, mesh_setup, matrix_setup, solve;
    double modeled_solve;
  };
  std::vector<Row> rows;

  std::printf("Figure 10: phase times of one linear solve (seconds)\n");
  std::printf("%-10s %-7s | %-9s %-9s %-10s %-9s %-9s | %-12s %-8s\n",
              "equations", "ranks", "partition", "fine grid", "mesh setup",
              "mat setup", "solve x", "model solve", "its");
  for (const app::ScaledCase& sc : series) {
    const app::ModelProblem problem =
        app::make_sphere_problem(sc.params, 1.2);
    app::LinearStudyConfig cfg;
    cfg.nranks = sc.ranks;
    cfg.rtol = 1e-4;
    cfg.report_path = "report.json";
    const app::LinearStudyReport r = app::run_linear_study(problem, cfg);
    const obs::Report rep = obs::Report::read_json("report.json");
    const Row row{r.unknowns,
                  r.ranks,
                  r.iterations,
                  rep.phase_seconds("partition"),
                  rep.phase_seconds("fine_grid"),
                  rep.phase_seconds("mesh_setup"),
                  rep.phase_seconds("matrix_setup"),
                  rep.phase_seconds("solve"),
                  r.modeled_solve_time};
    rows.push_back(row);
    std::printf(
        "%-10d %-7d | %-9.2f %-9.2f %-10.2f %-9.2f %-9.2f | %-12.2f %-8d\n",
        row.unknowns, row.ranks, row.partition, row.fine_grid, row.mesh_setup,
        row.matrix_setup, row.solve, row.modeled_solve, row.iterations);
  }
  std::printf(
      "\nshape claims vs the paper's Figure 10: every phase grows roughly\n"
      "linearly with problem size (all phases scale); the solve dominates\n"
      "the repeated cost; mesh setup (Prometheus) is amortizable and the\n"
      "matrix setup is paid once per Newton matrix.\n");

  std::FILE* json = std::fopen("BENCH_fig10_times.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fig10_times.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"fig10_times\",\n  \"cases\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(json,
                 "    {\"unknowns\": %d, \"ranks\": %d, \"iterations\": %d, "
                 "\"wall_partition_s\": %.6f, \"wall_fine_grid_s\": %.6f, "
                 "\"wall_mesh_setup_s\": %.6f, \"wall_matrix_setup_s\": %.6f, "
                 "\"wall_solve_s\": %.6f, \"modeled_solve_s\": %.6f}%s\n",
                 r.unknowns, r.ranks, r.iterations, r.partition, r.fine_grid,
                 r.mesh_setup, r.matrix_setup, r.solve, r.modeled_solve,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_fig10_times.json (timings read from report.json)\n");
  return 0;
}
