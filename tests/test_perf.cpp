#include <gtest/gtest.h>

#include "perf/efficiency.h"
#include "perf/model.h"

namespace prom::perf {
namespace {

PhaseStats make_stats(std::initializer_list<parx::TrafficStats> ranks) {
  PhaseStats s;
  s.per_rank.assign(ranks.begin(), ranks.end());
  return s;
}

TEST(MachineModel, RankTimeComposition) {
  MachineModel m;
  m.flops_per_sec = 1e6;
  m.latency = 1e-3;
  m.bandwidth = 1e6;
  // 1e6 flops (1s) + 10 messages (0.01s) + 1e6 bytes (1s).
  EXPECT_NEAR(m.rank_time(1'000'000, 10, 1'000'000), 2.01, 1e-12);
}

TEST(PhaseStats, Aggregates) {
  const PhaseStats s = make_stats({{10, 100, 1000}, {20, 200, 3000}});
  EXPECT_EQ(s.total_flops(), 4000);
  EXPECT_EQ(s.max_flops(), 3000);
  EXPECT_DOUBLE_EQ(s.average_flops(), 2000.0);
  EXPECT_EQ(s.total_messages(), 30);
  EXPECT_EQ(s.total_bytes(), 300);
  EXPECT_DOUBLE_EQ(s.load_balance(), 2000.0 / 3000.0);
}

TEST(PhaseStats, ModeledTimeIsMaxOverRanks) {
  MachineModel m;
  m.flops_per_sec = 1e3;
  m.latency = 0;
  m.bandwidth = 1e30;
  const PhaseStats s = make_stats({{0, 0, 1000}, {0, 0, 4000}});
  EXPECT_NEAR(s.modeled_time(m), 4.0, 1e-12);  // slowest rank dominates
  EXPECT_NEAR(s.modeled_flop_rate(m), 5000.0 / 4.0, 1e-9);
}

TEST(PhaseStats, PerfectBalanceGivesUnitLoadBalance) {
  const PhaseStats s = make_stats({{0, 0, 500}, {0, 0, 500}});
  EXPECT_DOUBLE_EQ(s.load_balance(), 1.0);
}

TEST(Efficiencies, IdenticalRunsGiveUnity) {
  RunMeasurement base;
  base.ranks = 2;
  base.unknowns = 1000;
  base.iterations = 20;
  base.solve_flops = 4'000'000;
  base.solve_phase = make_stats({{10, 1000, 2'000'000}, {10, 1000, 2'000'000}});
  const Efficiencies e = compute_efficiencies(base, base);
  EXPECT_NEAR(e.iteration_scale, 1.0, 1e-12);
  EXPECT_NEAR(e.flop_scale, 1.0, 1e-12);
  EXPECT_NEAR(e.communication, 1.0, 1e-12);
  EXPECT_NEAR(e.total, 1.0, 1e-12);
  EXPECT_NEAR(e.load_balance, 1.0, 1e-12);
}

TEST(Efficiencies, SuperLinearIterationScale) {
  // Fewer iterations at scale: eIs > 1, exactly the paper's Table 2
  // behaviour (29 iterations at 80K dofs, 20 at 9.6M).
  RunMeasurement base;
  base.ranks = 2;
  base.unknowns = 1000;
  base.iterations = 29;
  base.solve_flops = 1'000'000;
  base.solve_phase = make_stats({{0, 0, 500'000}, {0, 0, 500'000}});
  RunMeasurement run = base;
  run.ranks = 4;
  run.unknowns = 2000;
  run.iterations = 20;
  run.solve_flops = 2'000'000 * 20 / 29;
  run.solve_phase = make_stats(
      {{0, 0, 250'000}, {0, 0, 250'000}, {0, 0, 250'000}, {0, 0, 250'000}});
  const Efficiencies e = compute_efficiencies(base, run);
  EXPECT_GT(e.iteration_scale, 1.0);
}

TEST(Efficiencies, CommunicationPenaltyLowersEc) {
  MachineModel model;  // default model: latency matters
  RunMeasurement base;
  base.ranks = 2;
  base.unknowns = 1000;
  base.iterations = 10;
  base.solve_flops = 10'000'000;
  base.solve_phase = make_stats({{0, 0, 5'000'000}, {0, 0, 5'000'000}});
  RunMeasurement run = base;
  run.ranks = 2;
  // Same flops but heavy message traffic: modeled flop rate drops.
  run.solve_phase =
      make_stats({{5000, 5'000'000, 5'000'000}, {5000, 5'000'000, 5'000'000}});
  const Efficiencies e = compute_efficiencies(base, run);
  EXPECT_LT(e.communication, 1.0);
  (void)model;
}

TEST(Efficiencies, LoadImbalanceReported) {
  RunMeasurement base;
  base.ranks = 1;
  base.unknowns = 100;
  base.iterations = 10;
  base.solve_flops = 1000;
  base.solve_phase = make_stats({{0, 0, 1000}});
  RunMeasurement run = base;
  run.solve_phase = make_stats({{0, 0, 100}, {0, 0, 900}});
  run.ranks = 2;
  const Efficiencies e = compute_efficiencies(base, run);
  EXPECT_NEAR(e.load_balance, 500.0 / 900.0, 1e-12);
}

TEST(Efficiencies, ZeroGuards) {
  // Empty/zero measurements must not divide by zero.
  RunMeasurement base, run;
  const Efficiencies e = compute_efficiencies(base, run);
  EXPECT_EQ(e.total, 1.0);
}

}  // namespace
}  // namespace prom::perf
