// Deterministic, seedable RNG (SplitMix64). Used for the random vertex
// orderings of §4.7 and for property-based tests; std::mt19937 is avoided
// so that results are identical across standard libraries.
#pragma once

#include <cstdint>

namespace prom {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next 64 random bits.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  /// Uniform real in [0, 1).
  double next_real() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace prom
