// Recursive coordinate bisection — the geometric partitioner used to place
// mesh vertices on virtual ranks (the ParMetis substitute for the
// "partition to SMPs / partition within each SMP" stage of Figure 8).
#pragma once

#include <span>
#include <vector>

#include "common/config.h"
#include "geom/vec3.h"

namespace prom::partition {

/// Assigns each point a part in [0, nparts). Splits recursively along the
/// longest axis of each subset's bounding box at the weighted median, so
/// part sizes differ by at most one point per split level.
std::vector<idx> rcb_partition(std::span<const Vec3> points, idx nparts);

/// Part sizes histogram (convenience for balance checks).
std::vector<idx> part_sizes(std::span<const idx> part, idx nparts);

/// Converts a part assignment into explicit index blocks, aligned with
/// part ids: blocks[p] lists the members of part p, so empty parts yield
/// empty blocks and block indices keep corresponding to part ids.
std::vector<std::vector<idx>> parts_to_blocks(std::span<const idx> part,
                                              idx nparts);

}  // namespace prom::partition
