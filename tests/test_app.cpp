#include <gtest/gtest.h>

#include "app/driver.h"

namespace prom::app {
namespace {

TEST(MakeSphereProblem, BoundaryConditionsMatchPaper) {
  mesh::SphereInCubeParams sp;
  sp.num_shells = 3;
  sp.base_core_layers = 1;
  sp.base_outer_layers = 1;
  const ModelProblem p = make_sphere_problem(sp, 0.36);
  EXPECT_EQ(p.materials.size(), 2u);
  // Symmetry faces: normal components fixed to zero; top: z fixed to
  // -crush; everything else free.
  const real side = sp.cube_side;
  for (idx v = 0; v < p.mesh.num_vertices(); ++v) {
    const Vec3& x = p.mesh.coord(v);
    const bool on_x0 = x.x < 1e-9;
    const bool on_top = x.z > side - 1e-9;
    EXPECT_EQ(p.dofmap.is_constrained(fem::DofMap::dof_of(v, 0)), on_x0);
    if (on_top) {
      EXPECT_TRUE(p.dofmap.is_constrained(fem::DofMap::dof_of(v, 2)));
      EXPECT_DOUBLE_EQ(p.dofmap.bc_value(fem::DofMap::dof_of(v, 2)), -0.36);
    }
  }
}

TEST(MakeBoxProblem, ClampsBottomPressesTop) {
  const ModelProblem p = make_box_problem(2, 0.1);
  idx clamped = 0, pressed = 0;
  for (idx v = 0; v < p.mesh.num_vertices(); ++v) {
    if (p.dofmap.is_constrained(fem::DofMap::dof_of(v, 0))) ++clamped;
    const idx zdof = fem::DofMap::dof_of(v, 2);
    if (p.dofmap.is_constrained(zdof) && p.dofmap.bc_value(zdof) < 0) {
      ++pressed;
    }
  }
  EXPECT_EQ(clamped, 9);
  EXPECT_EQ(pressed, 9);
}

TEST(ScaledSeries, SizesAndRanksGrowTogether) {
  const auto series = scaled_series(5);
  ASSERT_EQ(series.size(), 5u);
  idx prev_res = 0;
  int prev_ranks = 0;
  for (const ScaledCase& c : series) {
    const idx res = mesh::sphere_in_cube_resolution(c.params);
    EXPECT_GT(res, prev_res);
    EXPECT_GE(c.ranks, prev_ranks);
    EXPECT_EQ(c.params.num_shells, 17);
    prev_res = res;
    prev_ranks = c.ranks;
  }
  // Truncation honored.
  EXPECT_EQ(scaled_series(2).size(), 2u);
}

TEST(RunLinearStudy, EndToEndSmallSphere) {
  mesh::SphereInCubeParams sp;
  sp.num_shells = 3;
  sp.base_core_layers = 1;
  sp.base_outer_layers = 1;
  const ModelProblem p = make_sphere_problem(sp, 0.36);
  LinearStudyConfig cfg;
  cfg.nranks = 2;
  cfg.mg.coarsest_max_dofs = 150;
  const LinearStudyReport rep = run_linear_study(p, cfg);
  EXPECT_TRUE(rep.converged);
  EXPECT_GT(rep.iterations, 0);
  EXPECT_GE(rep.levels, 2);
  EXPECT_EQ(rep.ranks, 2);
  EXPECT_GT(rep.unknowns, 0);
  EXPECT_GT(rep.solve_phase.total_flops(), 0);
  EXPECT_GT(rep.modeled_solve_time, 0.0);
  EXPECT_GT(rep.modeled_mflops, 0.0);
  EXPECT_GT(rep.solve_phase.load_balance(), 0.3);
  EXPECT_LE(rep.solve_phase.load_balance(), 1.0);
  // Wall phases were measured.
  EXPECT_GT(rep.wall_fine_grid, 0.0);
  EXPECT_GT(rep.wall_mesh_setup, 0.0);
  EXPECT_GT(rep.wall_solve, 0.0);
}

TEST(RunLinearStudy, IterationsStableAcrossRankCounts) {
  // The same problem on 1, 2 and 4 virtual ranks: convergence must not
  // deteriorate (§4.5: "we do not see deterioration in convergence rates
  // with the use of multiple processors").
  mesh::SphereInCubeParams sp;
  sp.num_shells = 3;
  sp.base_core_layers = 1;
  sp.base_outer_layers = 1;
  const ModelProblem p = make_sphere_problem(sp, 0.36);
  int base_iters = 0;
  for (int ranks : {1, 2, 4}) {
    LinearStudyConfig cfg;
    cfg.nranks = ranks;
    cfg.mg.coarsest_max_dofs = 150;
    const LinearStudyReport rep = run_linear_study(p, cfg);
    ASSERT_TRUE(rep.converged);
    if (ranks == 1) {
      base_iters = rep.iterations;
    } else {
      EXPECT_LE(rep.iterations, base_iters + 5);
    }
  }
}

TEST(RunLinearStudy, MeasurementConversion) {
  mesh::SphereInCubeParams sp;
  sp.num_shells = 3;
  sp.base_core_layers = 1;
  sp.base_outer_layers = 1;
  const ModelProblem p = make_sphere_problem(sp, 0.36);
  LinearStudyConfig cfg;
  cfg.nranks = 2;
  cfg.mg.coarsest_max_dofs = 150;
  const LinearStudyReport rep = run_linear_study(p, cfg);
  const perf::RunMeasurement m = rep.measurement();
  EXPECT_EQ(m.ranks, rep.ranks);
  EXPECT_EQ(m.unknowns, rep.unknowns);
  EXPECT_EQ(m.iterations, rep.iterations);
  EXPECT_EQ(m.solve_flops, rep.solve_phase.total_flops());
}

}  // namespace
}  // namespace prom::app
