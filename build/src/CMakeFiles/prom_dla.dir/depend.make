# Empty dependencies file for prom_dla.
# This may be replaced when dependencies are built.
