#include "coarsen/parallel_faces.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <set>

#include "common/error.h"

namespace prom::coarsen {
namespace {

constexpr int kTagSeeds = 201;

// Face ids during the parallel phase are 64-bit <rank, counter> tuples so
// every rank can mint unique ids; "largest reachable in Gfid" then has a
// well-defined meaning.
using FaceId64 = std::int64_t;
constexpr FaceId64 kNone = -1;

FaceId64 encode(int rank, idx counter) {
  return (static_cast<FaceId64>(rank) << 32) | static_cast<FaceId64>(counter);
}

struct GfidEdge {
  FaceId64 a;
  FaceId64 b;
};

struct SeedMsg {
  idx facet;       ///< global facet index
  FaceId64 id;     ///< face id of its tree
  real root[3];    ///< root normal of its tree
};

/// Union-find over arbitrary FaceId64 keys.
class IdUnion {
 public:
  FaceId64 find(FaceId64 x) {
    auto it = parent_.find(x);
    if (it == parent_.end()) {
      parent_[x] = x;
      return x;
    }
    if (it->second == x) return x;
    return it->second = find(it->second);
  }
  void unite(FaceId64 a, FaceId64 b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    // Keep the larger id as the representative ("largest face ID that
    // face_ID can reach").
    if (a < b) std::swap(a, b);
    parent_[b] = a;
  }

 private:
  std::map<FaceId64, FaceId64> parent_;
};

}  // namespace

FaceIdResult parallel_identify_faces(parx::Comm& comm,
                                     std::span<const mesh::Facet> facets,
                                     const graph::Graph& facet_adj,
                                     std::span<const idx> facet_owner,
                                     const FaceIdOptions& opts) {
  const idx nf = static_cast<idx>(facets.size());
  const int me = comm.rank();
  PROM_CHECK(facet_adj.num_vertices() == nf);
  PROM_CHECK(static_cast<idx>(facet_owner.size()) == nf);

  // Neighbor ranks across the facet adjacency.
  std::set<int> higher, lower;
  for (idx f = 0; f < nf; ++f) {
    if (facet_owner[f] != me) continue;
    for (idx f1 : facet_adj.neighbors(f)) {
      if (facet_owner[f1] > me) higher.insert(facet_owner[f1]);
      if (facet_owner[f1] < me) lower.insert(facet_owner[f1]);
    }
  }

  std::vector<FaceId64> id(static_cast<std::size_t>(nf), kNone);
  std::map<FaceId64, Vec3> root_norm;
  std::vector<GfidEdge> gfid_edges;

  // BFS of Figure 3 restricted to my undone owned facets, rooted at
  // `start` whose id/root are already set. Collisions with already-labeled
  // compatible facets become Gfid edges.
  auto grow = [&](idx start) {
    const FaceId64 tree_id = id[start];
    const Vec3 root = root_norm.at(tree_id);
    std::deque<idx> queue{start};
    while (!queue.empty()) {
      const idx f = queue.front();
      queue.pop_front();
      for (idx f1 : facet_adj.neighbors(f)) {
        const bool compatible =
            dot(root, facets[f1].normal) > opts.tol &&
            dot(facets[f].normal, facets[f1].normal) > opts.tol;
        if (!compatible) continue;
        if (id[f1] == kNone) {
          if (facet_owner[f1] != me) continue;  // their owner labels them
          id[f1] = tree_id;
          queue.push_back(f1);
        } else if (id[f1] != tree_id) {
          gfid_edges.push_back({tree_id, id[f1]});
        }
      }
    }
  };

  // Wait for seed facets from all higher-numbered neighbor ranks (the
  // highest rank has none and starts immediately).
  for (int r : higher) {
    const std::vector<SeedMsg> seeds = comm.recv<SeedMsg>(r, kTagSeeds);
    for (const SeedMsg& s : seeds) {
      const Vec3 root{s.root[0], s.root[1], s.root[2]};
      if (id[s.facet] == kNone) {
        id[s.facet] = s.id;
        root_norm.emplace(s.id, root);
        grow(s.facet);
      } else if (id[s.facet] != s.id) {
        // The ghost copy was already labeled by another tree: reconcile.
        root_norm.emplace(s.id, root);
        gfid_edges.push_back({id[s.facet], s.id});
      }
    }
  }

  // Local algorithm over the remaining undone owned facets (Figure 3).
  idx counter = 0;
  for (idx f = 0; f < nf; ++f) {
    if (facet_owner[f] != me || id[f] != kNone) continue;
    const FaceId64 fresh = encode(me, counter++);
    id[f] = fresh;
    root_norm.emplace(fresh, facets[f].normal);
    grow(f);
  }

  // Send seeds to lower-numbered neighbor ranks: my owned facets adjacent
  // to facets they own.
  for (int r : lower) {
    std::vector<SeedMsg> seeds;
    for (idx f = 0; f < nf; ++f) {
      if (facet_owner[f] != me) continue;
      bool borders_r = false;
      for (idx f1 : facet_adj.neighbors(f)) {
        if (facet_owner[f1] == r) {
          borders_r = true;
          break;
        }
      }
      if (!borders_r) continue;
      const Vec3& root = root_norm.at(id[f]);
      seeds.push_back({f, id[f], {root.x, root.y, root.z}});
    }
    comm.send<SeedMsg>(r, kTagSeeds, seeds);
  }

  // Global reduction of Gfid and of the facet labels ("a global reduction
  // is performed ... so that all processors have a copy of Gfid").
  struct Labeled {
    idx facet;
    FaceId64 id;
  };
  std::vector<Labeled> mine;
  for (idx f = 0; f < nf; ++f) {
    if (facet_owner[f] == me) mine.push_back({f, id[f]});
  }
  const auto all_labels = comm.allgatherv(mine);
  const auto all_edges = comm.allgatherv(gfid_edges);

  std::vector<FaceId64> final_id(static_cast<std::size_t>(nf), kNone);
  for (const auto& part : all_labels) {
    for (const Labeled& l : part) final_id[l.facet] = l.id;
  }
  IdUnion uf;
  for (const auto& part : all_edges) {
    for (const GfidEdge& e : part) uf.unite(e.a, e.b);
  }

  // Compress representatives to contiguous small ids.
  std::map<FaceId64, idx> compact;
  FaceIdResult result;
  result.face_id.resize(static_cast<std::size_t>(nf));
  for (idx f = 0; f < nf; ++f) {
    PROM_CHECK_MSG(final_id[f] != kNone, "facet left unlabeled");
    const FaceId64 rep = uf.find(final_id[f]);
    auto [it, inserted] = compact.emplace(rep, result.num_faces);
    if (inserted) ++result.num_faces;
    result.face_id[f] = it->second;
  }
  return result;
}

}  // namespace prom::coarsen
