file(REMOVE_RECURSE
  "CMakeFiles/crush_sphere.dir/crush_sphere.cpp.o"
  "CMakeFiles/crush_sphere.dir/crush_sphere.cpp.o.d"
  "crush_sphere"
  "crush_sphere.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crush_sphere.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
