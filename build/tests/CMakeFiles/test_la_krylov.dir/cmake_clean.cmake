file(REMOVE_RECURSE
  "CMakeFiles/test_la_krylov.dir/test_la_krylov.cpp.o"
  "CMakeFiles/test_la_krylov.dir/test_la_krylov.cpp.o.d"
  "test_la_krylov"
  "test_la_krylov.pdb"
  "test_la_krylov[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_la_krylov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
