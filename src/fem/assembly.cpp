#include "fem/assembly.h"

#include <algorithm>

#include "common/error.h"
#include "common/parallel.h"

namespace prom::fem {
namespace {

/// Cells per assembly chunk — fixed, so the chunk decomposition (and with
/// it the merged triplet/force ordering) never depends on the thread
/// count (see common/parallel.h).
constexpr idx kCellGrain = 64;

}  // namespace

DofMap::DofMap(idx num_vertices)
    : nv_(num_vertices),
      constrained_(static_cast<std::size_t>(3) * num_vertices, 0),
      bc_value_(static_cast<std::size_t>(3) * num_vertices, 0),
      free_index_(static_cast<std::size_t>(3) * num_vertices, kInvalidIdx) {
  finalize();
}

void DofMap::fix(idx vertex, int comp, real value) {
  PROM_CHECK(vertex >= 0 && vertex < nv_ && comp >= 0 && comp < 3);
  constrained_[dof_of(vertex, comp)] = 1;
  bc_value_[dof_of(vertex, comp)] = value;
}

void DofMap::fix_all(std::span<const idx> vertices, real value) {
  for (idx v : vertices) {
    for (int c = 0; c < 3; ++c) fix(v, c, value);
  }
}

void DofMap::scale_bc(real factor) {
  for (idx d = 0; d < num_dofs(); ++d) {
    if (constrained_[d]) bc_value_[d] *= factor;
  }
}

void DofMap::finalize() {
  free_dofs_.clear();
  for (idx d = 0; d < num_dofs(); ++d) {
    if (!constrained_[d]) {
      free_index_[d] = static_cast<idx>(free_dofs_.size());
      free_dofs_.push_back(d);
    } else {
      free_index_[d] = kInvalidIdx;
    }
  }
}

std::vector<real> DofMap::full_from_free(std::span<const real> free_values,
                                         real bc_scale) const {
  PROM_CHECK(static_cast<idx>(free_values.size()) == num_free());
  std::vector<real> full(static_cast<std::size_t>(num_dofs()));
  for (idx d = 0; d < num_dofs(); ++d) {
    full[d] = constrained_[d] ? bc_scale * bc_value_[d]
                              : free_values[free_index_[d]];
  }
  return full;
}

std::vector<real> DofMap::free_from_full(
    std::span<const real> full_values) const {
  PROM_CHECK(static_cast<idx>(full_values.size()) == num_dofs());
  std::vector<real> out(static_cast<std::size_t>(num_free()));
  for (idx i = 0; i < num_free(); ++i) out[i] = full_values[free_dofs_[i]];
  return out;
}

FeProblem::FeProblem(const mesh::Mesh& mesh, std::vector<Material> materials,
                     DofMap dofmap, bool bbar, bool fbar)
    : mesh_(&mesh),
      materials_(std::move(materials)),
      dofmap_(std::move(dofmap)),
      bbar_(bbar),
      fbar_(fbar),
      gp_per_cell_(
          gauss_points_per_cell(mesh::nodes_per_cell(mesh.kind()))) {
  PROM_CHECK(dofmap_.num_vertices() == mesh.num_vertices());
  for (idx e = 0; e < mesh.num_cells(); ++e) {
    PROM_CHECK_MSG(mesh.material(e) >= 0 &&
                       mesh.material(e) <
                           static_cast<idx>(materials_.size()),
                   "cell references an undefined material");
  }
  const std::size_t nstates =
      static_cast<std::size_t>(mesh.num_cells()) * gp_per_cell_;
  committed_.resize(nstates);
  trial_.resize(nstates);
}

AssemblyResult FeProblem::assemble(std::span<const real> u_full,
                                   bool want_stiffness) {
  const mesh::Mesh& mesh = *mesh_;
  PROM_CHECK(static_cast<idx>(u_full.size()) == dofmap_.num_dofs());
  const int npc = mesh::nodes_per_cell(mesh.kind());
  const int edof = 3 * npc;

  AssemblyResult out;
  out.f_int.assign(static_cast<std::size_t>(dofmap_.num_free()), 0);
  if (want_stiffness) {
    out.bc_coupling.assign(static_cast<std::size_t>(dofmap_.num_free()), 0);
  }

  // Cell-chunk-parallel assembly. Each fixed chunk of cells integrates
  // into private buffers (element scratch included); chunk outputs are
  // merged in chunk order afterwards, which reproduces the serial
  // cell-by-cell scatter order exactly — the assembled matrix and force
  // vector are bit-identical for any thread count. Gauss-point state
  // (trial_) is indexed per cell, so chunks write disjoint slices of it.
  struct ChunkOut {
    std::vector<la::Triplet> triplets;
    std::vector<std::pair<idx, real>> f_contrib;    // (free row, value)
    std::vector<std::pair<idx, real>> bc_contrib;   // (free row, value)
    idx plastic_gauss_points = 0;
    idx hard_gauss_points = 0;
  };
  const idx nchunks = common::chunk_count(0, mesh.num_cells(), kCellGrain);
  std::vector<ChunkOut> outs(static_cast<std::size_t>(nchunks));

  common::parallel_for(0, mesh.num_cells(), kCellGrain, [&](idx eb, idx ee) {
    ChunkOut& co = outs[eb / kCellGrain];
    if (want_stiffness) {
      co.triplets.reserve(static_cast<std::size_t>(ee - eb) * edof * edof);
    }
    la::DenseMatrix ke(edof, edof);
    std::vector<real> fe(static_cast<std::size_t>(edof));
    std::vector<Vec3> coords(static_cast<std::size_t>(npc));
    std::vector<real> ue(static_cast<std::size_t>(edof));

    for (idx e = eb; e < ee; ++e) {
      const auto verts = mesh.cell(e);
      const Material& mat = materials_[mesh.material(e)];
      for (int a = 0; a < npc; ++a) {
        coords[a] = mesh.coord(verts[a]);
        for (int c = 0; c < 3; ++c) {
          ue[a * 3 + c] = u_full[DofMap::dof_of(verts[a], c)];
        }
      }

      const std::size_t state_base =
          static_cast<std::size_t>(e) * gp_per_cell_;
      if (mat.model == MaterialModel::kNeoHookean) {
        total_lagrangian_element(mat, coords, ue, fbar_,
                                 want_stiffness ? &ke : nullptr, fe);
      } else {
        std::span<const J2State> committed;
        std::span<J2State> updated;
        if (mat.model == MaterialModel::kJ2Plasticity) {
          committed = {committed_.data() + state_base,
                       static_cast<std::size_t>(gp_per_cell_)};
          updated = {trial_.data() + state_base,
                     static_cast<std::size_t>(gp_per_cell_)};
          co.hard_gauss_points += gp_per_cell_;
        }
        co.plastic_gauss_points += small_strain_element(
            mat, coords, ue, bbar_, committed, updated,
            want_stiffness ? &ke : nullptr, fe);
      }

      // Scatter to free dofs (recorded, merged below in cell order).
      for (int a = 0; a < npc; ++a) {
        for (int ca = 0; ca < 3; ++ca) {
          const idx row = dofmap_.free_index(DofMap::dof_of(verts[a], ca));
          if (row == kInvalidIdx) continue;
          co.f_contrib.emplace_back(row, fe[a * 3 + ca]);
          if (!want_stiffness) continue;
          for (int b = 0; b < npc; ++b) {
            for (int cb = 0; cb < 3; ++cb) {
              const idx coldof = DofMap::dof_of(verts[b], cb);
              const idx col = dofmap_.free_index(coldof);
              if (col == kInvalidIdx) {
                co.bc_contrib.emplace_back(
                    row, ke(a * 3 + ca, b * 3 + cb) * dofmap_.bc_value(coldof));
              } else {
                co.triplets.push_back({row, col, ke(a * 3 + ca, b * 3 + cb)});
              }
            }
          }
        }
      }
    }
  });

  // Deterministic merge: chunk order == cell order, and contributions are
  // applied one by one, so the accumulation order (and therefore every
  // rounding) matches the serial loop.
  std::size_t total_triplets = 0;
  for (const ChunkOut& co : outs) {
    total_triplets += co.triplets.size();
    for (const auto& [row, v] : co.f_contrib) out.f_int[row] += v;
    for (const auto& [row, v] : co.bc_contrib) out.bc_coupling[row] += v;
    out.plastic_gauss_points += co.plastic_gauss_points;
    out.hard_gauss_points += co.hard_gauss_points;
  }

  if (want_stiffness) {
    std::vector<la::Triplet> triplets;
    triplets.reserve(total_triplets);
    for (const ChunkOut& co : outs) {
      triplets.insert(triplets.end(), co.triplets.begin(), co.triplets.end());
    }
    out.stiffness = la::Csr::from_triplets(dofmap_.num_free(),
                                           dofmap_.num_free(), triplets);
  }
  return out;
}

FeProblem::BsrAssembly FeProblem::assemble_bsr(std::span<const real> u_full) {
  const mesh::Mesh& mesh = *mesh_;
  PROM_CHECK(static_cast<idx>(u_full.size()) == dofmap_.num_dofs());
  const int npc = mesh::nodes_per_cell(mesh.kind());
  const int edof = 3 * npc;

  BsrAssembly out;
  out.map = la::node_block_map(dofmap_.free_dofs());
  out.bc_coupling.assign(static_cast<std::size_t>(dofmap_.num_free()), 0);

  // Vertex -> node-block row (kInvalidIdx when all components are
  // constrained — those vertices have no block row at all).
  std::vector<idx> node_of_vertex(
      static_cast<std::size_t>(mesh.num_vertices()), kInvalidIdx);
  for (idx nd = 0; nd < out.map.nnodes; ++nd) {
    node_of_vertex[out.map.vertex_of_node[nd]] = nd;
  }

  // Same fixed cell chunking as assemble(): blocks and bc contributions
  // are recorded per chunk and merged in chunk (= cell) order, so the
  // accumulation order — and with it every rounding — is independent of
  // the thread count, and the rhs matches assemble()'s bit for bit.
  struct ChunkOut {
    std::vector<la::BlockTriplet3> blocks;
    std::vector<std::pair<idx, real>> bc_contrib;  // (free row, value)
  };
  const idx nchunks = common::chunk_count(0, mesh.num_cells(), kCellGrain);
  std::vector<ChunkOut> outs(static_cast<std::size_t>(nchunks));

  common::parallel_for(0, mesh.num_cells(), kCellGrain, [&](idx eb, idx ee) {
    ChunkOut& co = outs[eb / kCellGrain];
    co.blocks.reserve(static_cast<std::size_t>(ee - eb) * npc * npc);
    la::DenseMatrix ke(edof, edof);
    std::vector<real> fe(static_cast<std::size_t>(edof));
    std::vector<Vec3> coords(static_cast<std::size_t>(npc));
    std::vector<real> ue(static_cast<std::size_t>(edof));

    for (idx e = eb; e < ee; ++e) {
      const auto verts = mesh.cell(e);
      const Material& mat = materials_[mesh.material(e)];
      for (int a = 0; a < npc; ++a) {
        coords[a] = mesh.coord(verts[a]);
        for (int c = 0; c < 3; ++c) {
          ue[a * 3 + c] = u_full[DofMap::dof_of(verts[a], c)];
        }
      }

      const std::size_t state_base =
          static_cast<std::size_t>(e) * gp_per_cell_;
      if (mat.model == MaterialModel::kNeoHookean) {
        total_lagrangian_element(mat, coords, ue, fbar_, &ke, fe);
      } else {
        std::span<const J2State> committed;
        std::span<J2State> updated;
        if (mat.model == MaterialModel::kJ2Plasticity) {
          committed = {committed_.data() + state_base,
                       static_cast<std::size_t>(gp_per_cell_)};
          updated = {trial_.data() + state_base,
                     static_cast<std::size_t>(gp_per_cell_)};
        }
        small_strain_element(mat, coords, ue, bbar_, committed, updated, &ke,
                             fe);
      }

      // Scatter vertex-pair couplings as whole 3x3 blocks. Constrained
      // components are zeroed in the block; their column couplings feed
      // the rhs in assemble()'s (a, ca, b, cb) order.
      for (int a = 0; a < npc; ++a) {
        const idx na = node_of_vertex[verts[a]];
        for (int b = 0; b < npc; ++b) {
          const idx nb = node_of_vertex[verts[b]];
          la::BlockTriplet3 bt;
          bt.brow = na;
          bt.bcol = nb;
          bool any = false;
          for (int ca = 0; ca < 3; ++ca) {
            const idx row = dofmap_.free_index(DofMap::dof_of(verts[a], ca));
            for (int cb = 0; cb < 3; ++cb) {
              const idx coldof = DofMap::dof_of(verts[b], cb);
              const real k = ke(a * 3 + ca, b * 3 + cb);
              real blocked = 0;
              if (row != kInvalidIdx) {
                if (dofmap_.free_index(coldof) == kInvalidIdx) {
                  co.bc_contrib.emplace_back(row,
                                             k * dofmap_.bc_value(coldof));
                } else {
                  blocked = k;
                  any = true;
                }
              }
              bt.v[ca * 3 + cb] = blocked;
            }
          }
          if (any && na != kInvalidIdx && nb != kInvalidIdx) {
            co.blocks.push_back(bt);
          }
        }
      }
    }
  });

  std::size_t total_blocks = 0;
  for (const ChunkOut& co : outs) {
    total_blocks += co.blocks.size();
    for (const auto& [row, v] : co.bc_contrib) out.bc_coupling[row] += v;
  }

  // Identity pivots for constrained diagonal slots, emitted *before* the
  // element blocks: elements contribute exact zeros at those slots, so
  // the pivot stays exactly 1 and the free sub-operator is untouched.
  std::vector<la::BlockTriplet3> blocks;
  blocks.reserve(static_cast<std::size_t>(out.map.nnodes) + total_blocks);
  for (idx nd = 0; nd < out.map.nnodes; ++nd) {
    la::BlockTriplet3 bt;
    bt.brow = bt.bcol = nd;
    bt.v.fill(0);
    const idx v0 = out.map.vertex_of_node[nd];
    for (int c = 0; c < 3; ++c) {
      if (dofmap_.free_index(DofMap::dof_of(v0, c)) == kInvalidIdx) {
        bt.v[c * 3 + c] = 1;
      }
    }
    blocks.push_back(bt);
  }
  for (const ChunkOut& co : outs) {
    blocks.insert(blocks.end(), co.blocks.begin(), co.blocks.end());
  }
  out.stiffness =
      la::Bsr3::from_block_triplets(out.map.nnodes, out.map.nnodes, blocks);
  return out;
}

void FeProblem::commit() { committed_ = trial_; }

void FeProblem::restore_state(std::vector<J2State> state) {
  PROM_CHECK(state.size() == committed_.size());
  committed_ = std::move(state);
  trial_ = committed_;
}

real FeProblem::plastic_fraction() const {
  idx hard = 0, yielded = 0;
  for (idx e = 0; e < mesh_->num_cells(); ++e) {
    if (materials_[mesh_->material(e)].model != MaterialModel::kJ2Plasticity) {
      continue;
    }
    const std::size_t base = static_cast<std::size_t>(e) * gp_per_cell_;
    for (int q = 0; q < gp_per_cell_; ++q) {
      ++hard;
      if (committed_[base + q].has_yielded()) ++yielded;
    }
  }
  return hard == 0 ? 0 : static_cast<real>(yielded) / hard;
}

LinearSystem assemble_linear_system(FeProblem& problem) {
  const DofMap& dofmap = problem.dofmap();
  // Tangent at the unloaded state (zero displacement everywhere).
  const std::vector<real> u_zero(static_cast<std::size_t>(dofmap.num_dofs()),
                                 0);
  AssemblyResult asmres = problem.assemble(u_zero, /*want_stiffness=*/true);
  LinearSystem sys;
  sys.stiffness = std::move(asmres.stiffness);
  sys.rhs.resize(asmres.bc_coupling.size());
  for (std::size_t i = 0; i < sys.rhs.size(); ++i) {
    sys.rhs[i] = -asmres.bc_coupling[i];
  }
  return sys;
}

LinearSystemBsr assemble_linear_system_bsr(FeProblem& problem) {
  const DofMap& dofmap = problem.dofmap();
  const std::vector<real> u_zero(static_cast<std::size_t>(dofmap.num_dofs()),
                                 0);
  FeProblem::BsrAssembly asmres = problem.assemble_bsr(u_zero);
  LinearSystemBsr sys;
  sys.map = std::move(asmres.map);
  sys.stiffness = std::move(asmres.stiffness);
  sys.rhs.resize(asmres.bc_coupling.size());
  for (std::size_t i = 0; i < sys.rhs.size(); ++i) {
    sys.rhs[i] = -asmres.bc_coupling[i];
  }
  return sys;
}

}  // namespace prom::fem
