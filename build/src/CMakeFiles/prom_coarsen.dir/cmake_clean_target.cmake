file(REMOVE_RECURSE
  "libprom_coarsen.a"
)
