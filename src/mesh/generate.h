// Mesh generators. `box_hex` is the workhorse for tests; `thin_slab`
// reproduces the "thin body" of Figures 4–6; `sphere_in_cube_octant` is the
// paper's §7 model problem: one octant of a cube with a 17-layer
// alternating hard/soft sphere embedded in a soft matrix (the "spherical
// steel-belted radial inside a rubber cube"), built directly instead of
// read from a FEAP input deck (DESIGN.md substitution 3).
#pragma once

#include "common/config.h"
#include "mesh/mesh.h"

namespace prom::mesh {

/// Structured hexahedral mesh of the box [lo, hi] with nx*ny*nz cells,
/// all material 0.
Mesh box_hex(idx nx, idx ny, idx nz, const Vec3& lo, const Vec3& hi);

/// A thin plate: nx*ny*nz cells over [0,Lx]x[0,Ly]x[0,Lz] with Lz << Lx.
/// Defaults give the two-elements-through-the-thickness geometry whose MIS
/// pathology Figure 4 illustrates.
Mesh thin_slab(idx nx = 16, idx ny = 16, idx nz = 2, real lx = 16.0,
               real ly = 16.0, real lz = 1.0);

struct SphereInCubeParams {
  /// Number of alternating hard/soft spherical shells (paper: 17).
  idx num_shells = 17;
  /// Element layers through each shell — the paper's scale knob ("each
  /// successive problem has one more layer of elements through each of the
  /// seventeen shell layers").
  idx layers_per_shell = 1;
  /// Element layers in the soft core / outer soft region at
  /// layers_per_shell == 1; both scale proportionally with it.
  idx base_core_layers = 4;
  idx base_outer_layers = 4;

  real core_radius = 4.0;         ///< inner radius of the shell stack
  real shell_outer_radius = 7.5;  ///< outer radius of the shell stack
  real cube_side = 12.5;          ///< octant side length (paper: 12.5 in)

  idx soft_material = 0;
  idx hard_material = 1;
};

/// Octant sphere-in-cube mesh. The grid is a warped structured cube: cube
/// shells (constant max-index) are mapped to spherical shells inside the
/// sphere and blended back to the cube outside it, so every material
/// interface is an exact sphere aligned with element layers. Material of
/// shell k is hard for even k (9 hard, 8 soft at num_shells == 17).
Mesh sphere_in_cube_octant(const SphereInCubeParams& params = {});

/// Total radial (= tangential) element count per edge for given params;
/// the mesh has cube of this many elements per edge.
idx sphere_in_cube_resolution(const SphereInCubeParams& params);

}  // namespace prom::mesh
