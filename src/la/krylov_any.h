// The single preconditioned-conjugate-gradient implementation, templated
// over an execution backend (la/backend.h). la::cg / la::pcg instantiate
// it with SerialBackend; dla::dist_pcg instantiates it with ParxBackend —
// same code, same stopping criterion, only the reductions differ.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "common/error.h"
#include "la/backend.h"
#include "la/krylov.h"
#include "la/vec.h"
#include "obs/trace.h"

namespace prom::la {

/// Reusable PCG work storage (r, z, p, ap). Owned by long-lived callers
/// (the solve service keeps one per rank) so that repeat solves against a
/// cached operator perform no per-solve heap allocation: `ensure` only
/// reallocates when the requested shape exceeds anything seen before.
struct KrylovWorkspace {
  MultiVec r, z, p, ap;

  void ensure(idx n, int k) {
    if (r.rows() == n && r.cols() == k) return;
    r.resize(n, k);
    z.resize(n, k);
    p.resize(n, k);
    ap.resize(n, k);
  }
};

/// PCG for SPD systems over any backend; `m == nullptr` means
/// unpreconditioned. `b` and `x` are the local blocks of the distributed
/// right-hand side and iterate (the whole vectors on SerialBackend); x
/// holds the initial guess on entry and the solution on exit. On a
/// collective backend every rank receives the same KrylovResult. A
/// caller-owned `ws` makes repeat solves allocation-free.
template <class B, class Op>
  requires BackendFor<B, Op>
KrylovResult pcg_any(const B& be, const Op& a, const Op* m,
                     std::span<const real> b, std::span<real> x,
                     const KrylovOptions& opts,
                     KrylovWorkspace* ws = nullptr) {
  const idx n = be.local_n(a);
  PROM_CHECK(static_cast<idx>(b.size()) == n &&
             static_cast<idx>(x.size()) == n);

  KrylovResult result;
  KrylovWorkspace local_ws;
  KrylovWorkspace& w = ws != nullptr ? *ws : local_ws;
  w.ensure(n, 1);
  const std::span<real> r = w.r.col(0);
  const std::span<real> z = w.z.col(0);
  const std::span<real> p = w.p.col(0);
  const std::span<real> ap = w.ap.col(0);

  const real bnorm = be.norm2(b);
  if (opts.track_history) result.history.push_back(bnorm);
  // Residual history into the obs series registry (same convention as
  // `history`: entry 0 is ||b||). Identical values on every rank of a
  // collective backend; the report keeps one representative copy.
  obs::series_push("pcg.residual", bnorm);
  if (bnorm == real{0}) {
    set_all(x, 0);
    result.converged = true;
    return result;
  }

  // r = b - A x
  be.apply(a, x, r);
  waxpby(1, b, -1, r, r);

  real rnorm = be.norm2(r);
  if (krylov_converged(rnorm, bnorm, opts.rtol)) {
    result.converged = true;
    result.final_relres = rnorm / bnorm;
    return result;
  }

  if (m != nullptr) {
    be.apply(*m, r, z);
  } else {
    copy(r, z);
  }
  copy(z, p);
  real rz = be.dot(r, z);

  for (int it = 1; it <= opts.max_iters; ++it) {
    be.apply(a, p, ap);
    const real pap = be.dot(p, ap);
    if (!std::isfinite(pap) || pap <= 0) {
      result.breakdown = true;
      break;
    }
    const real alpha = rz / pap;
    be.axpy(alpha, p, x);
    be.axpy(-alpha, ap, r);
    rnorm = be.norm2(r);
    if (opts.track_history) result.history.push_back(rnorm);
    obs::series_push("pcg.residual", rnorm);
    result.iterations = it;
    if (krylov_converged(rnorm, bnorm, opts.rtol)) {
      result.converged = true;
      break;
    }
    if (m != nullptr) {
      be.apply(*m, r, z);
    } else {
      copy(r, z);
    }
    const real rz_new = be.dot(r, z);
    const real beta = rz_new / rz;
    rz = rz_new;
    aypx(beta, z, p);
  }
  result.final_relres = rnorm / bnorm;
  return result;
}

/// Blocked PCG: k right-hand sides against one operator, sharing every
/// matrix pass (apply_mv) and ghost exchange while keeping all per-column
/// scalar recurrences separate. Column j runs exactly pcg_any's operation
/// sequence on its own data — per-column dots/norms reduced individually,
/// same update order — so it is bitwise identical to a standalone pcg_any
/// solve of that RHS, at any kernel-thread count, serial or distributed.
///
/// Convergence masking: a column that converges (or breaks down) freezes —
/// its scalar recurrences stop exactly where pcg_any would have stopped.
/// Frozen columns still ride along in the blocked applies (their results
/// are discarded), so the collective call counts stay identical on every
/// rank; all masks derive from reduced values, which a collective backend
/// returns bit-identically everywhere.
template <class B, class Op>
  requires BackendFor<B, Op>
std::vector<KrylovResult> pcg_multi_any(const B& be, const Op& a, const Op* m,
                                        const MultiVec& b, MultiVec& x,
                                        const KrylovOptions& opts,
                                        KrylovWorkspace* ws = nullptr) {
  const idx n = be.local_n(a);
  const int k = b.cols();
  PROM_CHECK(b.rows() == n && x.rows() == n && x.cols() == k && k >= 1 &&
             k <= kMaxRhsBlock);

  std::vector<KrylovResult> results(static_cast<std::size_t>(k));
  KrylovWorkspace local_ws;
  KrylovWorkspace& w = ws != nullptr ? *ws : local_ws;
  w.ensure(n, k);
  MultiVec& r = w.r;
  MultiVec& z = w.z;
  MultiVec& p = w.p;
  MultiVec& ap = w.ap;

  real bnorm[kMaxRhsBlock];
  real rnorm[kMaxRhsBlock] = {};
  real rz[kMaxRhsBlock] = {};
  bool active[kMaxRhsBlock];
  const auto any_active = [&] {
    for (int j = 0; j < k; ++j) {
      if (active[j]) return true;
    }
    return false;
  };

  for (int j = 0; j < k; ++j) {
    active[j] = true;
    bnorm[j] = be.norm2(b.col(j));
    if (opts.track_history) results[j].history.push_back(bnorm[j]);
    obs::series_push("pcg.residual", bnorm[j]);
    if (bnorm[j] == real{0}) {
      set_all(x.col(j), 0);
      results[j].converged = true;
      active[j] = false;
    }
  }
  if (!any_active()) return results;

  // R = B - A X (columns of dead RHSs computed and ignored).
  be.residual_mv(a, b, x, r);
  for (int j = 0; j < k; ++j) {
    if (!active[j]) continue;
    rnorm[j] = be.norm2(r.col(j));
    if (krylov_converged(rnorm[j], bnorm[j], opts.rtol)) {
      results[j].converged = true;
      results[j].final_relres = rnorm[j] / bnorm[j];
      active[j] = false;
    }
  }
  if (!any_active()) return results;

  if (m != nullptr) {
    be.apply_mv(*m, r, z);
  } else {
    for (int j = 0; j < k; ++j) copy(r.col(j), z.col(j));
  }
  for (int j = 0; j < k; ++j) {
    if (!active[j]) continue;
    copy(z.col(j), p.col(j));
    rz[j] = be.dot(r.col(j), z.col(j));
  }

  for (int it = 1; it <= opts.max_iters; ++it) {
    be.apply_mv(a, p, ap);
    for (int j = 0; j < k; ++j) {
      if (!active[j]) continue;
      const real pap = be.dot(p.col(j), ap.col(j));
      if (!std::isfinite(pap) || pap <= 0) {
        results[j].breakdown = true;
        results[j].final_relres = rnorm[j] / bnorm[j];
        active[j] = false;
        continue;
      }
      const real alpha = rz[j] / pap;
      be.axpy(alpha, p.col(j), x.col(j));
      be.axpy(-alpha, ap.col(j), r.col(j));
      rnorm[j] = be.norm2(r.col(j));
      if (opts.track_history) results[j].history.push_back(rnorm[j]);
      obs::series_push("pcg.residual", rnorm[j]);
      results[j].iterations = it;
      if (krylov_converged(rnorm[j], bnorm[j], opts.rtol)) {
        results[j].converged = true;
        results[j].final_relres = rnorm[j] / bnorm[j];
        active[j] = false;
      }
    }
    if (!any_active()) break;
    if (m != nullptr) {
      be.apply_mv(*m, r, z);
    } else {
      for (int j = 0; j < k; ++j) copy(r.col(j), z.col(j));
    }
    for (int j = 0; j < k; ++j) {
      if (!active[j]) continue;
      const real rz_new = be.dot(r.col(j), z.col(j));
      const real beta = rz_new / rz[j];
      rz[j] = rz_new;
      aypx(beta, z.col(j), p.col(j));
    }
  }
  for (int j = 0; j < k; ++j) {
    if (active[j]) results[j].final_relres = rnorm[j] / bnorm[j];
  }
  return results;
}

}  // namespace prom::la
