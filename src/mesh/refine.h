// Adaptive local refinement of tetrahedral meshes: Rivara longest-edge
// bisection with conformity closure (no hanging nodes) plus the Kuhn
// 6-tet split that turns the structured hex model problems into the tet
// meshes the bisection operates on. The refinement record (parent cells,
// midpoint parent vertices) is exactly what mg::Hierarchy::build_refined
// needs to form geometric prolongation between refinement levels.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "common/config.h"
#include "mesh/mesh.h"

namespace prom::mesh {

/// Splits every hexahedron into 6 tetrahedra around the body diagonal
/// v0-v6 (the Kuhn/Freudenthal triangulation). No vertices are added or
/// reordered, so dof maps built on the hex mesh remain valid. For the
/// structured-connectivity generators in mesh/generate.h (consistent VTK
/// local ordering per cell) the shared-face diagonals of neighboring
/// hexes coincide, so the result is conforming. Tet meshes pass through
/// unchanged.
Mesh hex_to_tet(const Mesh& mesh);

/// What one refinement round produced, in terms the multigrid and
/// partitioning layers consume.
struct RefineResult {
  Mesh mesh;  ///< the conforming refined mesh

  /// For each cell of the refined mesh, the id of its ancestor cell in
  /// the input mesh (the cell itself when it was not split).
  std::vector<idx> parent_cell;

  /// Vertex count of the input mesh. Vertices [0, num_parent_vertices)
  /// of the refined mesh are the input vertices with unchanged ids;
  /// vertices at and above it are edge midpoints created by this round.
  idx num_parent_vertices = 0;

  /// For each created vertex m (refined id m >= num_parent_vertices,
  /// entry m - num_parent_vertices), the two endpoints of the bisected
  /// edge. Both endpoint ids are strictly smaller than m — an endpoint
  /// may itself be a midpoint created earlier in the same round (closure
  /// cascades), so interpolation weights onto the input vertices compose
  /// in increasing id order.
  std::vector<std::array<idx, 2>> vertex_parents;

  /// Per *input* cell: 1 when the cell was bisected this round.
  std::vector<std::uint8_t> cell_changed;
};

/// Bisects the marked cells of a TET4 mesh by their longest edge and
/// propagates (Rivara) until the mesh is conforming again: a bisection
/// midpoint hanging on an edge of an unsplit neighbor forces that
/// neighbor's (longest-edge) bisection too. Deterministic: ties in edge
/// length break on the lexicographically smallest sorted vertex pair,
/// and cells are processed in id order, so the output depends only on
/// the input mesh and the marked set.
RefineResult refine_local(const Mesh& mesh, std::span<const idx> marked);

/// Marks the `fraction` of cells with the largest indicator values
/// (fixed-fraction/Doerfler-style marking). Deterministic: sorts by
/// (-indicator, cell id). Always marks at least one cell when the mesh
/// is non-empty and fraction > 0.
std::vector<idx> mark_fraction(std::span<const real> indicator,
                               real fraction);

/// Conformity check: every interior tet face is shared by exactly two
/// cells and carries no hanging vertex (i.e. face multiset counts are 1
/// or 2). Used by tests and debug assertions.
bool is_conforming(const Mesh& mesh);

}  // namespace prom::mesh
