file(REMOVE_RECURSE
  "CMakeFiles/prom_coarsen.dir/coarsen/classify.cpp.o"
  "CMakeFiles/prom_coarsen.dir/coarsen/classify.cpp.o.d"
  "CMakeFiles/prom_coarsen.dir/coarsen/coarsen.cpp.o"
  "CMakeFiles/prom_coarsen.dir/coarsen/coarsen.cpp.o.d"
  "CMakeFiles/prom_coarsen.dir/coarsen/faces.cpp.o"
  "CMakeFiles/prom_coarsen.dir/coarsen/faces.cpp.o.d"
  "CMakeFiles/prom_coarsen.dir/coarsen/modified_graph.cpp.o"
  "CMakeFiles/prom_coarsen.dir/coarsen/modified_graph.cpp.o.d"
  "CMakeFiles/prom_coarsen.dir/coarsen/parallel_faces.cpp.o"
  "CMakeFiles/prom_coarsen.dir/coarsen/parallel_faces.cpp.o.d"
  "CMakeFiles/prom_coarsen.dir/coarsen/parallel_mis.cpp.o"
  "CMakeFiles/prom_coarsen.dir/coarsen/parallel_mis.cpp.o.d"
  "CMakeFiles/prom_coarsen.dir/coarsen/restriction.cpp.o"
  "CMakeFiles/prom_coarsen.dir/coarsen/restriction.cpp.o.d"
  "libprom_coarsen.a"
  "libprom_coarsen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prom_coarsen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
