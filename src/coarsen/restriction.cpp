#include "coarsen/restriction.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <set>
#include <utility>

#include "common/error.h"
#include "delaunay/delaunay.h"
#include "geom/predicates.h"

namespace prom::coarsen {
namespace {

/// Clamp slightly negative barycentric weights and renormalize.
std::array<real, 4> clamp_weights(const std::array<real, 4>& w) {
  std::array<real, 4> out;
  real sum = 0;
  for (int i = 0; i < 4; ++i) {
    out[i] = std::max(w[i], real{0});
    sum += out[i];
  }
  PROM_CHECK(sum > 0);
  for (real& v : out) v /= sum;
  return out;
}

/// Pairs of selected vertices within `hops` of each other in the fine
/// graph ("near each other on the fine mesh", §4.8), as a sorted set of
/// (coarse_i, coarse_j) with i < j.
std::set<std::pair<idx, idx>> near_pairs(const graph::Graph& fine_graph,
                                         std::span<const idx> selected,
                                         std::span<const idx> coarse_of,
                                         idx hops) {
  std::set<std::pair<idx, idx>> near;
  std::vector<idx> dist(static_cast<std::size_t>(fine_graph.num_vertices()),
                        kInvalidIdx);
  std::vector<idx> touched;
  for (idx c = 0; c < static_cast<idx>(selected.size()); ++c) {
    // Bounded BFS from selected[c].
    touched.clear();
    std::deque<idx> queue{selected[c]};
    dist[selected[c]] = 0;
    touched.push_back(selected[c]);
    while (!queue.empty()) {
      const idx v = queue.front();
      queue.pop_front();
      if (dist[v] >= hops) continue;
      for (idx u : fine_graph.neighbors(v)) {
        if (dist[u] == kInvalidIdx) {
          dist[u] = dist[v] + 1;
          touched.push_back(u);
          queue.push_back(u);
        }
      }
    }
    for (idx v : touched) {
      const idx c2 = coarse_of[v];
      if (c2 != kInvalidIdx && c2 != c) {
        near.emplace(std::min(c, c2), std::max(c, c2));
      }
      dist[v] = kInvalidIdx;  // reset for the next BFS
    }
  }
  return near;
}

}  // namespace

RestrictionResult build_restriction(std::span<const Vec3> fine_coords,
                                    std::span<const idx> selected,
                                    const RestrictionOptions& opts,
                                    const graph::Graph* fine_graph) {
  const idx n_fine = static_cast<idx>(fine_coords.size());
  const idx n_coarse = static_cast<idx>(selected.size());
  PROM_CHECK(n_coarse >= 1);

  // Coarse-local index of each fine vertex (or invalid).
  std::vector<idx> coarse_of(static_cast<std::size_t>(n_fine), kInvalidIdx);
  std::vector<Vec3> coarse_pts(static_cast<std::size_t>(n_coarse));
  for (idx c = 0; c < n_coarse; ++c) {
    PROM_CHECK(selected[c] >= 0 && selected[c] < n_fine);
    coarse_of[selected[c]] = c;
    coarse_pts[c] = fine_coords[selected[c]];
  }

  const delaunay::Delaunay3 dt(coarse_pts);
  const auto& tets = dt.tets();

  RestrictionResult result;
  std::vector<la::Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(n_fine) * 4);

  auto nearest_coarse = [&](const Vec3& p) {
    idx best = 0;
    real best_d = std::numeric_limits<real>::max();
    for (idx c = 0; c < n_coarse; ++c) {
      const real d = norm2(coarse_pts[c] - p);
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    return best;
  };

  // Interpolation pass: each fine vertex takes the linear tet shape
  // function values of its containing tet; vertices landing in super-box
  // tets are "lost" (§4.8) and fall back to nearest-vertex injection.
  // Simultaneously record which tets hold a fine vertex *uniquely* inside
  // (all weights > eps) for the pruning pass below.
  //
  // Weights are validated by reconstructing the vertex position from the
  // *true* coarse coordinates: near-degenerate sliver tets (exactly
  // cospherical lattice configurations survive only through the jitter)
  // can produce inaccurate barycentric ratios, in which case neighboring
  // tets are tried and the nearest-vertex fallback is the last resort.
  std::vector<char> has_unique(tets.size(), 0);

  auto reconstruction_error = [&](idx t, const std::array<real, 4>& w,
                                  const Vec3& p) {
    Vec3 rec{};
    real scale = 0;
    for (int a = 0; a < 4; ++a) {
      const Vec3& xa = coarse_pts[dt.point_of_vertex(tets[t].v[a])];
      rec += xa * w[a];
      for (int b = a + 1; b < 4; ++b) {
        scale = std::max(
            scale, norm2(xa - coarse_pts[dt.point_of_vertex(tets[t].v[b])]));
      }
    }
    return scale > 0 ? std::sqrt(norm2(rec - p) / scale)
                     : std::numeric_limits<real>::max();
  };

  idx hint = kInvalidIdx;
  for (idx v = 0; v < n_fine; ++v) {
    if (coarse_of[v] != kInvalidIdx) {
      triplets.push_back({coarse_of[v], v, 1});
      continue;
    }
    const Vec3& p = fine_coords[v];
    const idx located = dt.locate(p, hint);
    hint = located;

    // Candidates: the located tet plus its two-ring of face neighbors.
    std::vector<idx> candidates{located};
    for (idx nb : tets[located].nbr) {
      if (nb == kInvalidIdx) continue;
      candidates.push_back(nb);
      for (idx nb2 : tets[nb].nbr) {
        if (nb2 != kInvalidIdx) candidates.push_back(nb2);
      }
    }
    idx best_t = kInvalidIdx;
    std::array<real, 4> best_w{};
    real best_score = std::numeric_limits<real>::max();
    for (idx cand : candidates) {
      if (!tets[cand].alive || dt.tet_touches_super(cand)) continue;
      const auto w = clamp_weights(dt.barycentric(cand, p));
      const real err = reconstruction_error(cand, w, p);
      if (err < best_score) {
        best_score = err;
        best_t = cand;
        best_w = w;
      }
      if (err < 1e-9) break;  // exact enough; stop searching
    }
    if (best_t == kInvalidIdx || best_score > 1e-3) {
      result.lost.push_back(v);
      triplets.push_back({nearest_coarse(p), v, 1});
      continue;
    }
    if (std::min({best_w[0], best_w[1], best_w[2], best_w[3]}) >
        opts.inside_eps) {
      has_unique[best_t] = 1;
    }
    for (int a = 0; a < 4; ++a) {
      if (best_w[a] <= 0) continue;
      triplets.push_back({dt.point_of_vertex(tets[best_t].v[a]), v, best_w[a]});
    }
  }
  result.r_vertex = la::Csr::from_triplets(n_coarse, n_fine, triplets);

  // Pruning pass (§4.8): drop super-box tets, and tets that connect
  // vertices not near each other on the fine mesh unless a fine vertex
  // lies uniquely inside them. Nearness comes from the fine graph when
  // available, otherwise from a global edge-length heuristic.
  std::set<std::pair<idx, idx>> near;
  if (fine_graph != nullptr) {
    near = near_pairs(*fine_graph, selected, coarse_of, opts.near_hops);
  }
  real long_edge = std::numeric_limits<real>::max();
  if (fine_graph == nullptr) {
    std::vector<real> lengths;
    for (std::size_t t = 0; t < tets.size(); ++t) {
      if (!tets[t].alive || dt.tet_touches_super(static_cast<idx>(t))) {
        continue;
      }
      for (int a = 0; a < 4; ++a) {
        for (int b = a + 1; b < 4; ++b) {
          lengths.push_back(distance(dt.vertex_coords()[tets[t].v[a]],
                                     dt.vertex_coords()[tets[t].v[b]]));
        }
      }
    }
    if (!lengths.empty()) {
      auto mid =
          lengths.begin() + static_cast<std::ptrdiff_t>(lengths.size() / 2);
      std::nth_element(lengths.begin(), mid, lengths.end());
      long_edge = opts.long_edge_factor * *mid;
    }
  }

  std::vector<idx> cells;
  for (std::size_t t = 0; t < tets.size(); ++t) {
    if (!tets[t].alive || dt.tet_touches_super(static_cast<idx>(t))) continue;
    // Degenerate slivers (zero volume in the true, unjittered coordinates)
    // carry no geometric information for the next level: drop them.
    {
      const auto& tv = tets[t].v;
      const Vec3& x0 = coarse_pts[dt.point_of_vertex(tv[0])];
      const Vec3& x1 = coarse_pts[dt.point_of_vertex(tv[1])];
      const Vec3& x2 = coarse_pts[dt.point_of_vertex(tv[2])];
      const Vec3& x3 = coarse_pts[dt.point_of_vertex(tv[3])];
      const real vol = std::abs(signed_tet_volume(x0, x1, x2, x3));
      const real edge = std::max({norm2(x1 - x0), norm2(x2 - x0),
                                  norm2(x3 - x0), norm2(x2 - x1),
                                  norm2(x3 - x1), norm2(x3 - x2)});
      if (vol <= 1e-9 * std::pow(std::sqrt(edge), 3)) continue;
    }
    bool far = false;
    for (int a = 0; a < 4 && !far; ++a) {
      for (int b = a + 1; b < 4; ++b) {
        const idx ca = dt.point_of_vertex(tets[t].v[a]);
        const idx cb = dt.point_of_vertex(tets[t].v[b]);
        if (fine_graph != nullptr) {
          if (!near.contains({std::min(ca, cb), std::max(ca, cb)})) {
            far = true;
            break;
          }
        } else if (distance(coarse_pts[ca], coarse_pts[cb]) > long_edge) {
          far = true;
          break;
        }
      }
    }
    if (far && !has_unique[t]) continue;
    for (idx tv : tets[t].v) cells.push_back(dt.point_of_vertex(tv));
  }
  std::vector<idx> materials(cells.size() / 4, 0);
  result.coarse_mesh = mesh::Mesh(mesh::CellKind::kTet4, coarse_pts,
                                  std::move(cells), std::move(materials));
  return result;
}

la::Csr expand_restriction_to_dofs(const la::Csr& r_vertex,
                                   std::span<const idx> fine_free,
                                   std::span<const idx> coarse_free,
                                   int ncomp) {
  PROM_CHECK(ncomp >= 1);
  // Map global fine dof -> fine free index.
  const idx n_fine_dofs = ncomp * r_vertex.ncols;
  const idx n_coarse_dofs = ncomp * r_vertex.nrows;
  std::vector<idx> fine_index(static_cast<std::size_t>(n_fine_dofs),
                              kInvalidIdx);
  for (std::size_t i = 0; i < fine_free.size(); ++i) {
    PROM_CHECK(fine_free[i] >= 0 && fine_free[i] < n_fine_dofs);
    fine_index[fine_free[i]] = static_cast<idx>(i);
  }
  std::vector<la::Triplet> triplets;
  for (std::size_t ci = 0; ci < coarse_free.size(); ++ci) {
    const idx cdof = coarse_free[ci];
    PROM_CHECK(cdof >= 0 && cdof < n_coarse_dofs);
    const idx cvert = cdof / ncomp;
    const int comp = static_cast<int>(cdof % ncomp);
    for (nnz_t k = r_vertex.rowptr[cvert]; k < r_vertex.rowptr[cvert + 1];
         ++k) {
      const idx fdof = ncomp * r_vertex.colidx[k] + comp;
      const idx fj = fine_index[fdof];
      if (fj == kInvalidIdx) continue;  // constrained fine dof: dropped
      triplets.push_back({static_cast<idx>(ci), fj, r_vertex.vals[k]});
    }
  }
  return la::Csr::from_triplets(static_cast<idx>(coarse_free.size()),
                                static_cast<idx>(fine_free.size()), triplets);
}

}  // namespace prom::coarsen
