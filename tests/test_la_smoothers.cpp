#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "la/smoothers.h"
#include "la/vec.h"
#include "partition/greedy.h"

namespace prom::la {
namespace {

/// 2D Poisson 5-point stencil on an n x n grid.
Csr poisson2d(idx n) {
  auto id = [n](idx i, idx j) { return i * n + j; };
  std::vector<Triplet> t;
  for (idx i = 0; i < n; ++i) {
    for (idx j = 0; j < n; ++j) {
      t.push_back({id(i, j), id(i, j), 4.0});
      if (i > 0) t.push_back({id(i, j), id(i - 1, j), -1.0});
      if (i + 1 < n) t.push_back({id(i, j), id(i + 1, j), -1.0});
      if (j > 0) t.push_back({id(i, j), id(i, j - 1), -1.0});
      if (j + 1 < n) t.push_back({id(i, j), id(i, j + 1), -1.0});
    }
  }
  return Csr::from_triplets(n * n, n * n, t);
}

real residual_norm(const Csr& a, std::span<const real> b,
                   std::span<const real> x) {
  std::vector<real> r(b.size());
  a.spmv(x, r);
  waxpby(1, b, -1, r, r);
  return nrm2(r);
}

enum class Kind { kJacobi, kSgs, kBlockJacobi };

class SmootherKinds : public ::testing::TestWithParam<Kind> {
 protected:
  std::unique_ptr<Smoother> make(const Csr& a) {
    switch (GetParam()) {
      case Kind::kJacobi:
        return std::make_unique<JacobiSmoother>(a, 0.67);
      case Kind::kSgs:
        return std::make_unique<SymmetricGaussSeidel>(a);
      case Kind::kBlockJacobi:
        return std::make_unique<BlockJacobiSmoother>(
            a, contiguous_blocks(a.nrows, 6), 0.6);
    }
    return nullptr;
  }
};

TEST_P(SmootherKinds, EveryStepReducesResidual) {
  const Csr a = poisson2d(10);
  const auto smoother = make(a);
  std::vector<real> b(100, 1.0), x(100, 0.0);
  real prev = residual_norm(a, b, x);
  for (int step = 0; step < 15; ++step) {
    smoother->smooth(b, x);
    const real now = residual_norm(a, b, x);
    EXPECT_LT(now, prev);
    prev = now;
  }
}

TEST_P(SmootherKinds, FixedPointIsExactSolution) {
  // Smoothing at the exact solution must not move it.
  const Csr a = poisson2d(6);
  const auto smoother = make(a);
  std::vector<real> x_true(36);
  for (idx i = 0; i < 36; ++i) x_true[i] = std::sin(i * 0.3);
  std::vector<real> b(36);
  a.spmv(x_true, b);
  std::vector<real> x = x_true;
  smoother->smooth(b, x);
  for (idx i = 0; i < 36; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-12);
}

TEST_P(SmootherKinds, DampsHighFrequencyFasterThanLow) {
  // The defining property of a smoother (§2 of the paper): one step must
  // reduce the highest-frequency error mode by a much larger factor than
  // the lowest-frequency one.
  const idx n = 32;
  std::vector<Triplet> t;
  for (idx i = 0; i < n; ++i) {
    t.push_back({i, i, 2.0});
    if (i > 0) t.push_back({i, i - 1, -1.0});
    if (i + 1 < n) t.push_back({i, i + 1, -1.0});
  }
  const Csr a = Csr::from_triplets(n, n, t);
  const auto smoother = make(a);

  auto damping_of_mode = [&](int k) {
    std::vector<real> e(n), x(n), b(n, 0.0);
    for (idx i = 0; i < n; ++i) {
      e[i] = std::sin(M_PI * k * (i + 1.0) / (n + 1.0));
    }
    x = e;  // error = x - 0
    smoother->smooth(b, x);
    return nrm2(x) / nrm2(e);
  };
  const real low = damping_of_mode(1);
  const real high = damping_of_mode(n - 1);
  EXPECT_LT(high, 0.7);
  EXPECT_GT(low, high * 1.5);
}

INSTANTIATE_TEST_SUITE_P(Kinds, SmootherKinds,
                         ::testing::Values(Kind::kJacobi, Kind::kSgs,
                                           Kind::kBlockJacobi));

TEST(BlockJacobi, RejectsOverlappingBlocks) {
  const Csr a = poisson2d(3);
  std::vector<std::vector<idx>> blocks = {{0, 1, 2}, {2, 3, 4},
                                          {5, 6, 7, 8}};
  EXPECT_THROW(BlockJacobiSmoother(a, blocks), Error);
}

TEST(BlockJacobi, RejectsIncompleteCover) {
  const Csr a = poisson2d(3);
  std::vector<std::vector<idx>> blocks = {{0, 1, 2}};
  EXPECT_THROW(BlockJacobiSmoother(a, blocks), Error);
}

TEST(BlockJacobi, SingleBlockIsDirectSolve) {
  // One block spanning everything: x_new = x + omega*(A^{-1} r); with
  // omega = 1 and x0 = 0 this is the exact solution.
  const Csr a = poisson2d(4);
  BlockJacobiSmoother smoother(a, contiguous_blocks(16, 1), 1.0);
  std::vector<real> x_true(16, 2.0), b(16), x(16, 0.0);
  a.spmv(x_true, b);
  smoother.smooth(b, x);
  for (idx i = 0; i < 16; ++i) EXPECT_NEAR(x[i], 2.0, 1e-11);
}

TEST(BlockJacobi, GraphPartitionedBlocksMatchPaperDensity) {
  const Csr a = poisson2d(20);  // 400 unknowns
  std::vector<std::pair<idx, idx>> edges;
  for (idx i = 0; i < a.nrows; ++i) {
    for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
      if (a.colidx[k] > i) edges.emplace_back(i, a.colidx[k]);
    }
  }
  const auto g = graph::Graph::from_edges(a.nrows, edges);
  const auto blocks = partition::block_jacobi_blocks(g, 6);
  // ceil(6 * 400 / 1000) = 3 blocks.
  EXPECT_EQ(blocks.size(), 3u);
  BlockJacobiSmoother smoother(a, blocks, 0.6);
  EXPECT_EQ(smoother.num_blocks(), 3);
}

TEST(ContiguousBlocks, PartitionExactly) {
  const auto blocks = contiguous_blocks(10, 3);
  idx total = 0;
  for (const auto& b : blocks) total += static_cast<idx>(b.size());
  EXPECT_EQ(total, 10);
  EXPECT_EQ(blocks.size(), 3u);
  // More blocks than elements: degenerate singleton blocks.
  const auto tiny = contiguous_blocks(2, 5);
  EXPECT_EQ(tiny.size(), 2u);
}

}  // namespace
}  // namespace prom::la
