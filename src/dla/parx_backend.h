// The parx execution backend for the single-source solver layer
// (la/backend.h): operators are DistOperator-shaped (local_n() +
// apply(comm, x, y)), vectors are the rank-local blocks of distributed
// vectors, and reductions allreduce over the virtual ranks. The binomial
// allreduce returns bit-identical doubles on every rank, so a solver
// instantiated with this backend makes identical control-flow decisions
// everywhere — no divergence-by-rounding across ranks.
#pragma once

#include <cmath>
#include <span>

#include "common/config.h"
#include "la/backend.h"
#include "la/vec.h"
#include "parx/runtime.h"

namespace prom::dla {

struct ParxBackend {
  parx::Comm* comm;

  /// Local storage of a distributed vector: this rank's owned block.
  using Vec = std::span<real>;

  template <class Op>
  idx local_n(const Op& op) const {
    return op.local_n();
  }

  template <class Op>
  void apply(const Op& op, std::span<const real> x,
             std::span<real> y) const {
    op.apply(*comm, x, y);
  }

  /// r = b - Op x on the local block; same bits as apply + waxpby (see
  /// la/backend.h), fused when the operator provides a residual kernel.
  template <class Op>
  void residual(const Op& op, std::span<const real> b,
                std::span<const real> x, std::span<real> r) const {
    if constexpr (requires { op.residual(*comm, b, x, r); }) {
      op.residual(*comm, b, x, r);
    } else {
      apply(op, x, r);
      la::waxpby(1, b, -1, r, r);
    }
  }

  /// Column-blocked apply: one exchange per peer carries all columns when
  /// the operator provides a blocked kernel; otherwise column by column.
  /// Either way column j matches `apply` on that column bitwise.
  template <class Op>
  void apply_mv(const Op& op, const la::MultiVec& x, la::MultiVec& y) const {
    if constexpr (requires { op.apply_mv(*comm, x, y); }) {
      op.apply_mv(*comm, x, y);
    } else {
      for (int j = 0; j < x.cols(); ++j) apply(op, x.col(j), y.col(j));
    }
  }

  template <class Op>
  void residual_mv(const Op& op, const la::MultiVec& b, const la::MultiVec& x,
                   la::MultiVec& r) const {
    if constexpr (requires { op.residual_mv(*comm, b, x, r); }) {
      op.residual_mv(*comm, b, x, r);
    } else {
      apply_mv(op, x, r);
      for (int j = 0; j < x.cols(); ++j) {
        la::waxpby(1, b.col(j), -1, r.col(j), r.col(j));
      }
    }
  }

  real reduce_sum(real local) const { return comm->allreduce_sum(local); }

  real dot(std::span<const real> x, std::span<const real> y) const {
    return reduce_sum(la::dot(x, y));
  }
  real norm2(std::span<const real> x) const { return std::sqrt(dot(x, x)); }
  void axpy(real a, std::span<const real> x, std::span<real> y) const {
    la::axpy(a, x, y);
  }
};

}  // namespace prom::dla
