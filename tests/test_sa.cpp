#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "app/driver.h"
#include "la/vec.h"
#include "mg/sa.h"
#include "mg/solver.h"

namespace prom::mg {
namespace {

struct Built {
  app::ModelProblem model;
  fem::LinearSystem sys;
};

Built build_box(idx n) {
  Built b;
  b.model = app::make_box_problem(n);
  fem::FeProblem fe(b.model.mesh, b.model.materials, b.model.dofmap);
  b.sys = fem::assemble_linear_system(fe);
  return b;
}

TEST(RigidBodyModes, AnnihilatedByFreeFreeStiffness) {
  // On an unconstrained mesh, K * rbm = 0 for all six modes.
  const mesh::Mesh m = mesh::box_hex(3, 3, 3, {0, 0, 0}, {1, 1, 1});
  fem::DofMap free_map(m.num_vertices());  // no constraints
  fem::FeProblem fe(m, {fem::Material{}}, free_map);
  const std::vector<real> u0(free_map.num_dofs(), 0.0);
  const fem::AssemblyResult res = fe.assemble(u0, true);
  const std::vector<real> rbm = rigid_body_modes(m, free_map);
  const idx n = free_map.num_free();
  std::vector<real> ku(static_cast<std::size_t>(n));
  for (int c = 0; c < 6; ++c) {
    const std::span<const real> mode(rbm.data() + static_cast<std::size_t>(c) * n,
                                     static_cast<std::size_t>(n));
    res.stiffness.spmv(mode, ku);
    real err = 0, scale = la::nrm2(mode);
    for (real v : ku) err = std::max(err, std::abs(v));
    EXPECT_LT(err, 1e-10 * std::max(scale, real{1})) << "mode " << c;
  }
}

TEST(RigidBodyModes, RespectsConstrainedDofLayout) {
  const mesh::Mesh m = mesh::box_hex(2, 2, 2, {0, 0, 0}, {1, 1, 1});
  fem::DofMap dm(m.num_vertices());
  dm.fix(0, 1, 0.0);
  dm.finalize();
  const std::vector<real> rbm = rigid_body_modes(m, dm);
  EXPECT_EQ(rbm.size(), static_cast<std::size_t>(dm.num_free()) * 6);
  // Translation mode in x: 1 exactly at x-components, 0 elsewhere.
  for (idx i = 0; i < dm.num_free(); ++i) {
    const idx dof = dm.free_dofs()[i];
    EXPECT_DOUBLE_EQ(rbm[i], dof % 3 == 0 ? 1.0 : 0.0);
  }
}

TEST(AggregateNodes, CoversAllNodesWithReduction) {
  const mesh::Mesh m = mesh::box_hex(6, 6, 6, {0, 0, 0}, {1, 1, 1});
  const graph::Graph g = m.vertex_graph();
  idx num_agg = 0;
  const std::vector<idx> agg = aggregate_nodes(g, &num_agg);
  EXPECT_GT(num_agg, 0);
  EXPECT_LT(num_agg, g.num_vertices() / 3);
  std::set<idx> used;
  for (idx a : agg) {
    ASSERT_GE(a, 0);
    ASSERT_LT(a, num_agg);
    used.insert(a);
  }
  EXPECT_EQ(static_cast<idx>(used.size()), num_agg);
}

TEST(AggregateNodes, EmptyGraphMakesSingletons) {
  const graph::Graph g = graph::Graph::from_edges(5, {});
  idx num_agg = 0;
  const std::vector<idx> agg = aggregate_nodes(g, &num_agg);
  EXPECT_EQ(num_agg, 5);
}

class SaSizes : public ::testing::TestWithParam<idx> {};

TEST_P(SaSizes, PcgConvergesMeshIndependently) {
  const Built b = build_box(GetParam());
  MgOptions mo;
  mo.coarsest_max_dofs = 300;
  const Hierarchy h = build_smoothed_aggregation(
      b.model.mesh, b.model.dofmap, b.sys.stiffness, mo);
  ASSERT_GE(h.num_levels(), 2);
  std::vector<real> x(b.sys.rhs.size(), 0.0);
  MgSolveOptions so;
  so.rtol = 1e-8;
  const la::KrylovResult res = mg_pcg_solve(h, b.sys.rhs, x, so);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.iterations, 30);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SaSizes, ::testing::Values(6, 9, 12));

TEST(Sa, TentativeProlongatorReproducesRigidModes) {
  // P (restricted RBM coefficients) must reproduce the RBMs: since the
  // coarse candidates are the per-aggregate QR factors R, B = P_tent B_c
  // holds; after smoothing, P B_c = (I - w D^-1 A) B, and A annihilates
  // the RBMs on a free-free problem, so P B_c == B exactly. Verify on a
  // translation mode with a constrained problem's coarse operator being
  // SPD (indirect check: coarse operator SPD and prolongated coarse
  // constants approximate fine constants).
  const Built b = build_box(6);
  MgOptions mo;
  mo.coarsest_max_dofs = 300;
  const Hierarchy h = build_smoothed_aggregation(
      b.model.mesh, b.model.dofmap, b.sys.stiffness, mo);
  ASSERT_GE(h.num_levels(), 2);
  for (int l = 0; l < h.num_levels(); ++l) {
    EXPECT_LT(h.level(l).a.symmetry_error(),
              1e-9 * std::abs(h.level(l).a.vals[0]) + 1e-12)
        << "level " << l;
  }
  // Coarse grid sizes shrink.
  for (int l = 1; l < h.num_levels(); ++l) {
    EXPECT_LT(h.level(l).a.nrows, h.level(l - 1).a.nrows);
  }
}

TEST(Sa, HandlesMaterialJumpProblem) {
  mesh::SphereInCubeParams sp;
  sp.num_shells = 5;
  sp.base_core_layers = 1;
  sp.base_outer_layers = 1;
  const app::ModelProblem model = app::make_sphere_problem(sp, 0.36);
  fem::FeProblem fe(model.mesh, model.materials, model.dofmap);
  const fem::LinearSystem sys = fem::assemble_linear_system(fe);
  MgOptions mo;
  mo.coarsest_max_dofs = 400;
  const Hierarchy h = build_smoothed_aggregation(model.mesh, model.dofmap,
                                                 sys.stiffness, mo);
  std::vector<real> x(sys.rhs.size(), 0.0);
  MgSolveOptions so;
  so.rtol = 1e-4;
  so.max_iters = 150;
  const la::KrylovResult res = mg_pcg_solve(h, sys.rhs, x, so);
  EXPECT_TRUE(res.converged);
}

TEST(Sa, SparseCoarseSolverWorksInHierarchy) {
  const Built b = build_box(8);
  MgOptions mo;
  mo.coarsest_max_dofs = 500;
  mo.coarse_solver = CoarseSolverKind::kSparseCholesky;
  const Hierarchy h = Hierarchy::build(b.model.mesh, b.model.dofmap,
                                       b.sys.stiffness, mo);
  std::vector<real> x(b.sys.rhs.size(), 0.0);
  MgSolveOptions so;
  so.rtol = 1e-8;
  const la::KrylovResult res = mg_pcg_solve(h, b.sys.rhs, x, so);
  EXPECT_TRUE(res.converged);
}

TEST(Sa, ChebyshevSmootherWorksInHierarchy) {
  const Built b = build_box(8);
  MgOptions mo;
  mo.smoother = SmootherKind::kChebyshev;
  mo.cheby_degree = 3;
  const Hierarchy h = Hierarchy::build(b.model.mesh, b.model.dofmap,
                                       b.sys.stiffness, mo);
  std::vector<real> x(b.sys.rhs.size(), 0.0);
  MgSolveOptions so;
  so.rtol = 1e-8;
  const la::KrylovResult res = mg_pcg_solve(h, b.sys.rhs, x, so);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.iterations, 30);
}

}  // namespace
}  // namespace prom::mg
