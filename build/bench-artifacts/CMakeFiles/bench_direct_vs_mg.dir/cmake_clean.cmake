file(REMOVE_RECURSE
  "../bench/bench_direct_vs_mg"
  "../bench/bench_direct_vs_mg.pdb"
  "CMakeFiles/bench_direct_vs_mg.dir/bench_direct_vs_mg.cpp.o"
  "CMakeFiles/bench_direct_vs_mg.dir/bench_direct_vs_mg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_direct_vs_mg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
