#include "graph/mis.h"

#include <algorithm>

#include "common/error.h"
#include "graph/order.h"

namespace prom::graph {

MisResult greedy_mis(const Graph& g, std::span<const idx> order,
                     const MisOptions& opts) {
  const idx n = g.num_vertices();
  PROM_CHECK(static_cast<idx>(order.size()) == n);
  PROM_CHECK(opts.ranks.empty() || static_cast<idx>(opts.ranks.size()) == n);

  std::vector<idx> traversal(order.begin(), order.end());
  if (!opts.ranks.empty()) {
    // Stable sort by decreasing rank: all corner vertices are visited
    // before edge vertices, and so on, so a lower-ranked vertex can never
    // delete an undone higher-ranked one.
    std::stable_sort(traversal.begin(), traversal.end(), [&](idx a, idx b) {
      return opts.ranks[a] > opts.ranks[b];
    });
  }

  MisResult result;
  result.state.assign(static_cast<std::size_t>(n), MisState::kUndone);
  for (idx v : traversal) {
    PROM_CHECK(v >= 0 && v < n);
    if (result.state[v] != MisState::kUndone) continue;
    result.state[v] = MisState::kSelected;
    result.selected.push_back(v);
    for (idx u : g.neighbors(v)) {
      if (result.state[u] == MisState::kUndone) {
        result.state[u] = MisState::kDeleted;
      }
    }
  }
  return result;
}

MisResult greedy_mis(const Graph& g) {
  const std::vector<idx> order = natural_order(g.num_vertices());
  return greedy_mis(g, order, {});
}

}  // namespace prom::graph
