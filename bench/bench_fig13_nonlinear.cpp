// Figure 13 reproduction: the nonlinear crush study.
//  - Left plot: percentage of "hard"-shell Gauss points in the plastic
//    state after each of the 10 displacement steps (monotone growth of
//    the plastic front).
//  - Right plot: PCG iterations of every Newton solve of every step,
//    stacked per problem size (roughly constant totals across sizes).
// Scaled down per DESIGN.md substitutions 2 and 4: smaller meshes and a
// gentler total crush (1.2 instead of 3.6) so the simplified finite-
// strain kinematics remain in their robust range; the growth *shape* of
// the plastic fraction and the flat iteration counts are the claims under
// test.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "app/driver.h"
#include "nonlinear/newton.h"

using namespace prom;

namespace {

struct CaseConfig {
  idx num_shells;
  idx core, outer;
  int steps;
};

}  // namespace

int main() {
  const bool full = std::getenv("PROM_BENCH_FULL") != nullptr;
  std::vector<CaseConfig> cases = {{9, 1, 1, 10}, {13, 1, 1, 10}};
  if (full) cases.push_back({17, 1, 1, 10});

  std::printf("Figure 13: nonlinear crush study (10 'time' steps, "
              "displacement control)\n\n");
  for (const CaseConfig& cc : cases) {
    mesh::SphereInCubeParams params;
    params.num_shells = cc.num_shells;
    params.base_core_layers = cc.core;
    params.base_outer_layers = cc.outer;
    const app::ModelProblem model = app::make_sphere_problem(params, 1.2);
    std::printf("case: %d shells, %d dofs\n", cc.num_shells,
                model.dofmap.num_free());
    fem::FeProblem fe(model.mesh, model.materials, model.dofmap);
    nonlinear::NewtonDriver driver(fe, mg::MgOptions{});

    std::printf("  %-6s %-14s %-8s %-22s %-10s\n", "step",
                "plastic %% (L)", "Newton", "PCG its per solve (R)", "total");
    int grand_total = 0;
    for (int s = 1; s <= cc.steps; ++s) {
      const auto rep = driver.solve_step_adaptive(
          static_cast<real>(s) / static_cast<real>(cc.steps));
      int total = 0;
      char detail[128] = {0};
      std::size_t off = 0;
      for (int it : rep.linear_iters) {
        total += it;
        if (off + 8 < sizeof detail) {
          off += std::snprintf(detail + off, sizeof detail - off, "%d ", it);
        }
      }
      grand_total += total;
      std::printf("  %-6d %-14.2f %-8d %-22s %-10d%s\n", s,
                  100 * rep.plastic_fraction, rep.newton_iters, detail,
                  total, rep.converged ? "" : "  [FAILED]");
      if (!rep.converged) break;
    }
    std::printf("  stacked total: %d PCG iterations\n\n", grand_total);
  }
  std::printf(
      "shape claims vs the paper's Figure 13: the plastic fraction grows\n"
      "monotonically over the steps to tens of percent (left; paper: 24%%\n"
      "at its final step); Newton iterations per step stay ~5-8 (paper:\n"
      "6-7) and the stacked PCG totals stay roughly constant across\n"
      "problem sizes (right; paper: ~3000-4100 at every size).\n");
  return 0;
}
