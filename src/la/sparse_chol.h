// Sparse Cholesky factorization (left-looking, with reverse Cuthill-McKee
// fill-reducing preordering). Two roles in this project:
//  - the *direct solver baseline* the paper's introduction argues against
//    ("direct methods possess sub-optimal time and space complexity, as
//    the scale of the problems increase") — bench_direct_vs_mg measures
//    the crossover;
//  - an alternative coarsest-level solver for the multigrid hierarchy
//    when the coarse grid is too large for a dense factorization.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/config.h"
#include "la/csr.h"

namespace prom::la {

struct SparseCholOptions {
  bool use_rcm = true;  ///< reverse Cuthill-McKee preordering
  real shift = 0;       ///< diagonal shift added before factoring
};

class SparseCholesky {
 public:
  using Options = SparseCholOptions;

  /// Factors the SPD matrix `a` (reads the full symmetric pattern).
  /// Check ok() before solving.
  explicit SparseCholesky(const Csr& a, const Options& opts = {});

  bool ok() const { return ok_; }
  idx n() const { return n_; }

  /// Number of nonzeros in the factor L (fill measure).
  nnz_t factor_nnz() const;

  /// Flops spent in the numeric factorization (for crossover studies).
  std::int64_t factor_flops() const { return factor_flops_; }

  /// Solves A x = b (forward + backward substitution). Requires ok().
  void solve(std::span<const real> b, std::span<real> x) const;

 private:
  idx n_ = 0;
  bool ok_ = false;
  std::int64_t factor_flops_ = 0;
  std::vector<idx> perm_;      // new -> old
  std::vector<idx> iperm_;     // old -> new
  // L in compressed sparse column form, diagonal stored separately.
  std::vector<nnz_t> colptr_;
  std::vector<idx> rowidx_;
  std::vector<real> values_;
  std::vector<real> diag_;
};

}  // namespace prom::la
