// Non-symmetric Krylov coverage: GMRES(m) and BiCGStab against a dense
// partial-pivoting LU solve on small non-symmetric fixtures, restart
// invariance of the converged answer, the history convention
// (history[0] = ||b||), and right preconditioning. The serial solvers here
// are the same templated bodies the distributed backend instantiates
// (la/krylov_any.h), so this file is the numerical ground truth the
// serial/distributed equivalence suite compares against.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "la/dense.h"
#include "la/krylov.h"
#include "la/vec.h"

namespace prom::la {
namespace {

/// 1D convection-diffusion matrix tridiag(-1-c, 2+d, -1+c): symmetric at
/// c == 0, increasingly skew as c grows; diagonally dominant (nonsingular)
/// for d >= 0, |c| <= 1.
Csr convdiff1d(idx n, real c, real d = 0) {
  std::vector<Triplet> t;
  for (idx i = 0; i < n; ++i) {
    t.push_back({i, i, 2.0 + d});
    if (i > 0) t.push_back({i, i - 1, -1.0 - c});
    if (i + 1 < n) t.push_back({i, i + 1, -1.0 + c});
  }
  return Csr::from_triplets(n, n, t);
}

DenseMatrix densify(const Csr& a) {
  DenseMatrix d(a.nrows, a.ncols);
  for (idx i = 0; i < a.nrows; ++i) {
    for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
      d(i, a.colidx[k]) = a.vals[k];
    }
  }
  return d;
}

std::vector<real> rhs_for(idx n) {
  std::vector<real> b(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) b[i] = std::cos(0.3 * i) + 0.01 * i;
  return b;
}

real true_relres(const Csr& a, std::span<const real> b,
                 std::span<const real> x) {
  std::vector<real> r(b.begin(), b.end());
  std::vector<real> ax(b.size());
  a.spmv(x, ax);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] -= ax[i];
  return nrm2(r) / nrm2(b);
}

/// Jacobi preconditioner as a LinearOperator (for the right-preconditioned
/// paths; any fixed nonsingular operator is admissible).
class DiagPrecond final : public LinearOperator {
 public:
  explicit DiagPrecond(const Csr& a) : inv_diag_(a.nrows) {
    for (idx i = 0; i < a.nrows; ++i) {
      for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
        if (a.colidx[k] == i) inv_diag_[i] = 1.0 / a.vals[k];
      }
    }
  }
  idx rows() const override { return static_cast<idx>(inv_diag_.size()); }
  idx cols() const override { return rows(); }
  void apply(std::span<const real> x, std::span<real> y) const override {
    for (std::size_t i = 0; i < inv_diag_.size(); ++i) {
      y[i] = inv_diag_[i] * x[i];
    }
  }

 private:
  std::vector<real> inv_diag_;
};

TEST(DenseLuFactor, SolvesNonsymmetricSystemExactly) {
  // A fixture LU's pivoting must actually visit: zero leading pivot.
  DenseMatrix a(3, 3);
  a(0, 0) = 0;  a(0, 1) = 2;  a(0, 2) = 1;
  a(1, 0) = 1;  a(1, 1) = 1;  a(1, 2) = 0;
  a(2, 0) = 3;  a(2, 1) = 0;  a(2, 2) = 4;
  const DenseLu lu(a);
  ASSERT_TRUE(lu.ok());
  const std::vector<real> x_true = {1.0, -2.0, 0.5};
  std::vector<real> b(3, 0);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) b[i] += a(i, j) * x_true[j];
  }
  std::vector<real> x(3);
  lu.solve(b, x);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-13);
}

TEST(DenseLuFactor, RejectsSingularMatrix) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;  a(0, 1) = 2;
  a(1, 0) = 2;  a(1, 1) = 4;  // rank 1
  const DenseLu lu(a);
  EXPECT_FALSE(lu.ok());
}

class NonsymSolvers : public ::testing::TestWithParam<real> {};

TEST_P(NonsymSolvers, GmresMatchesDenseLu) {
  const idx n = 40;
  const Csr a = convdiff1d(n, GetParam());
  const std::vector<real> b = rhs_for(n);
  std::vector<real> x_lu(static_cast<std::size_t>(n));
  const DenseLu lu(densify(a));
  ASSERT_TRUE(lu.ok());
  lu.solve(b, x_lu);

  const CsrOperator op(a);
  GmresOptions opts;
  opts.rtol = 1e-12;
  opts.max_iters = 400;
  opts.track_history = true;
  std::vector<real> x(static_cast<std::size_t>(n), 0);
  const KrylovResult r = gmres(op, nullptr, b, x, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_FALSE(r.breakdown);
  ASSERT_FALSE(r.history.empty());
  EXPECT_EQ(r.history[0], nrm2(b));  // history convention: entry 0 = ||b||
  EXPECT_LE(true_relres(a, b, x), 1e-11);
  for (idx i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_lu[i], 1e-9);
}

TEST_P(NonsymSolvers, BicgstabMatchesDenseLu) {
  const idx n = 40;
  const Csr a = convdiff1d(n, GetParam());
  const std::vector<real> b = rhs_for(n);
  std::vector<real> x_lu(static_cast<std::size_t>(n));
  const DenseLu lu(densify(a));
  ASSERT_TRUE(lu.ok());
  lu.solve(b, x_lu);

  const CsrOperator op(a);
  KrylovOptions opts;
  opts.rtol = 1e-12;
  opts.max_iters = 400;
  opts.track_history = true;
  std::vector<real> x(static_cast<std::size_t>(n), 0);
  const KrylovResult r = bicgstab(op, nullptr, b, x, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_FALSE(r.breakdown);
  ASSERT_FALSE(r.history.empty());
  EXPECT_EQ(r.history[0], nrm2(b));
  // BiCGStab's recursively updated residual drifts slightly from the true
  // one; allow two orders over the stopping tolerance.
  EXPECT_LE(true_relres(a, b, x), 1e-10);
  for (idx i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_lu[i], 1e-8);
}

// Skewness sweep: symmetric, mildly and strongly advective.
INSTANTIATE_TEST_SUITE_P(Skew, NonsymSolvers,
                         ::testing::Values(0.0, 0.3, 0.9));

TEST(GmresRestart, ConvergedAnswerIsRestartInvariant) {
  // Any restart length must land on the same solution (the minimized
  // residual is the true residual, and the system is well conditioned).
  const idx n = 60;
  const Csr a = convdiff1d(n, 0.5, 0.5);
  const std::vector<real> b = rhs_for(n);
  const CsrOperator op(a);

  std::vector<std::vector<real>> sols;
  for (int restart : {5, 15, 60}) {
    GmresOptions opts;
    opts.rtol = 1e-12;
    opts.max_iters = 2000;
    opts.restart = restart;
    std::vector<real> x(static_cast<std::size_t>(n), 0);
    const KrylovResult r = gmres(op, nullptr, b, x, opts);
    ASSERT_TRUE(r.converged) << "restart " << restart;
    EXPECT_LE(true_relres(a, b, x), 1e-11) << "restart " << restart;
    sols.push_back(std::move(x));
  }
  for (std::size_t s = 1; s < sols.size(); ++s) {
    for (idx i = 0; i < n; ++i) {
      EXPECT_NEAR(sols[s][i], sols[0][i], 1e-9) << "restart set " << s;
    }
  }
}

TEST(NonsymPrecond, RightPreconditioningPreservesTrueResidual) {
  // Right preconditioning minimizes the *true* residual: final_relres must
  // match ||b - Ax|| / ||b|| computed from scratch, preconditioned or not.
  const idx n = 50;
  const Csr a = convdiff1d(n, 0.7, 1.0);
  const std::vector<real> b = rhs_for(n);
  const CsrOperator op(a);
  const DiagPrecond m(a);

  GmresOptions gopts;
  gopts.rtol = 1e-10;
  std::vector<real> xg(static_cast<std::size_t>(n), 0);
  const KrylovResult rg = gmres(op, &m, b, xg, gopts);
  ASSERT_TRUE(rg.converged);
  EXPECT_NEAR(rg.final_relres, true_relres(a, b, xg), 1e-12);

  KrylovOptions bopts;
  bopts.rtol = 1e-10;
  std::vector<real> xb(static_cast<std::size_t>(n), 0);
  const KrylovResult rb = bicgstab(op, &m, b, xb, bopts);
  ASSERT_TRUE(rb.converged);
  EXPECT_LE(true_relres(a, b, xb), 1e-9);
  for (idx i = 0; i < n; ++i) EXPECT_NEAR(xb[i], xg[i], 1e-7);
}

TEST(NonsymSolversEdge, ZeroRhsGivesZeroSolution) {
  const Csr a = convdiff1d(12, 0.4);
  const CsrOperator op(a);
  std::vector<real> b(12, 0.0);
  std::vector<real> x(12, 7.0);
  const KrylovResult rg = gmres(op, nullptr, b, x);
  EXPECT_TRUE(rg.converged);
  for (real v : x) EXPECT_EQ(v, 0.0);
  std::vector<real> y(12, 7.0);
  const KrylovResult rb = bicgstab(op, nullptr, b, y);
  EXPECT_TRUE(rb.converged);
  for (real v : y) EXPECT_EQ(v, 0.0);
}

TEST(KrylovKindNames, RoundTrip) {
  EXPECT_STREQ(to_string(KrylovKind::kPcg), "pcg");
  EXPECT_STREQ(to_string(KrylovKind::kGmres), "gmres");
  EXPECT_STREQ(to_string(KrylovKind::kBicgstab), "bicgstab");
}

}  // namespace
}  // namespace prom::la
