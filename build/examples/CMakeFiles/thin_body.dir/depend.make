# Empty dependencies file for thin_body.
# This may be replaced when dependencies are built.
