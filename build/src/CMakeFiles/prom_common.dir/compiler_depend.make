# Empty compiler generated dependencies file for prom_common.
# This may be replaced when dependencies are built.
