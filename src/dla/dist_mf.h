// Distributed matrix-free fine-level operator: the dla counterpart of
// fem::MatrixFreeOperator. Each rank batches the elements relevant to its
// owned rows (every element with at least one owned free dof) and applies
// K_ff on the fly over the fine DistCsr's extended [owned | ghost] column
// space, reusing that matrix's HaloPlan — the assembled fine matrix still
// exists for the Galerkin coarse-level products and the smoothers (the
// hybrid scheme of arXiv:2203.12292), and its ghost columns are exactly
// the non-owned free dofs of the rank's relevant elements, so no second
// exchange plan is needed.
//
// Overlap schedule (PROM_HALO=overlap): Pass A runs on the interior
// element batches (no ghost gather slots) while the halo is in flight,
// then on the boundary batches once it lands; Pass B accumulates each
// owned row's element contributions in ascending global element order.
// Per-element forces are pure per-lane functions and the accumulation
// order is a function of the mesh alone, so the distributed apply matches
// the serial matrix-free apply bitwise per owned row at any rank count,
// thread count, and halo mode.
#pragma once

#include <span>
#include <vector>

#include "common/config.h"
#include "dla/dist_csr.h"
#include "dla/dist_krylov.h"
#include "fem/matrix_free.h"

namespace prom::dla {

/// The fine-level finite element problem the matrix-free operator is
/// built from (everything the assembled path already had in scope).
struct MfProblem {
  const mesh::Mesh* mesh = nullptr;
  const std::vector<fem::Material>* materials = nullptr;
  const fem::DofMap* dofmap = nullptr;
  bool bbar = true;
};

class DistMf {
 public:
  DistMf() = default;

  /// Builds this rank's batched element data against the fine-level
  /// distributed matrix `a` (whose row/column layout, ghost columns, and
  /// exchange plan are reused; `a` must outlive the DistMf). `perm` is
  /// the level's global permutation (perm[global] = serial free index).
  static DistMf build(parx::Comm& comm, const MfProblem& prob,
                      const DistCsr& a, std::span<const idx> perm);

  idx local_rows() const { return nlocal_; }
  const fem::MfCore& core() const { return core_; }

  /// y_local = K_ff x on owned rows. Collective.
  void spmv(parx::Comm& comm, std::span<const real> x_local,
            std::span<real> y_local) const;

  /// r_local = b - K_ff x, fused. Collective.
  void residual(parx::Comm& comm, std::span<const real> b_local,
                std::span<const real> x_local, std::span<real> r_local) const;

  /// Column-blocked spmv: one ghost exchange (one message per peer
  /// carrying all k columns) serves every column; the element passes run
  /// column by column (one per-element force buffer), with column 0
  /// overlapped against the exchange. Column j bitwise equals `spmv` on
  /// that column. Collective.
  void spmm(parx::Comm& comm, const la::MultiVec& x_local,
            la::MultiVec& y_local) const;

  /// Column-blocked fused residual. Collective.
  void residual_mv(parx::Comm& comm, const la::MultiVec& b_local,
                   const la::MultiVec& x_local, la::MultiVec& r_local) const;

 private:
  idx nlocal_ = 0;
  const DistCsr* a_ = nullptr;  // layout + halo plan donor
  fem::MfCore core_;
  mutable std::vector<real> x_ext_;  // [owned | ghost] gather space
  mutable la::MultiVec x_ext_mv_;    // blocked counterpart
};

/// DistOperator adapter with the fused residual the ParxBackend picks up.
class DistMfOperator final : public DistOperator {
 public:
  explicit DistMfOperator(const DistMf& a) : a_(&a) {}
  idx local_n() const override { return a_->local_rows(); }
  void apply(parx::Comm& comm, std::span<const real> x_local,
             std::span<real> y_local) const override {
    a_->spmv(comm, x_local, y_local);
  }
  void residual(parx::Comm& comm, std::span<const real> b_local,
                std::span<const real> x_local,
                std::span<real> r_local) const {
    a_->residual(comm, b_local, x_local, r_local);
  }
  void apply_mv(parx::Comm& comm, const la::MultiVec& x_local,
                la::MultiVec& y_local) const override {
    a_->spmm(comm, x_local, y_local);
  }
  void residual_mv(parx::Comm& comm, const la::MultiVec& b_local,
                   const la::MultiVec& x_local, la::MultiVec& r_local) const {
    a_->residual_mv(comm, b_local, x_local, r_local);
  }

 private:
  const DistMf* a_;
};

}  // namespace prom::dla
