// Figure 10 reproduction: per-phase times of one linear solve over the
// scaled series — solve times (left plot: total solve, solve for x,
// matrix setup) and "end to end" times (right plot: partitioning, fine
// grid creation, mesh setup, matrix setup, solve). Wall times are from
// this host (all phases execute genuinely); the solve phase additionally
// reports the machine-model time of DESIGN.md substitution 1, which is
// the quantity comparable to the paper's IBM cluster.
#include <cstdio>
#include <cstdlib>

#include "app/driver.h"

using namespace prom;

int main() {
  const bool full = std::getenv("PROM_BENCH_FULL") != nullptr;
  const auto series = app::scaled_series(full ? 4 : 3);

  std::printf("Figure 10: phase times of one linear solve (seconds)\n");
  std::printf("%-10s %-7s | %-9s %-9s %-10s %-9s %-9s | %-12s %-8s\n",
              "equations", "ranks", "partition", "fine grid", "mesh setup",
              "mat setup", "solve x", "model solve", "its");
  for (const app::ScaledCase& sc : series) {
    const app::ModelProblem problem =
        app::make_sphere_problem(sc.params, 1.2);
    app::LinearStudyConfig cfg;
    cfg.nranks = sc.ranks;
    cfg.rtol = 1e-4;
    const app::LinearStudyReport r = app::run_linear_study(problem, cfg);
    std::printf(
        "%-10d %-7d | %-9.2f %-9.2f %-10.2f %-9.2f %-9.2f | %-12.2f %-8d\n",
        r.unknowns, r.ranks, r.wall_partition, r.wall_fine_grid,
        r.wall_mesh_setup, r.wall_matrix_setup, r.wall_solve,
        r.modeled_solve_time, r.iterations);
  }
  std::printf(
      "\nshape claims vs the paper's Figure 10: every phase grows roughly\n"
      "linearly with problem size (all phases scale); the solve dominates\n"
      "the repeated cost; mesh setup (Prometheus) is amortizable and the\n"
      "matrix setup is paid once per Newton matrix.\n");
  return 0;
}
