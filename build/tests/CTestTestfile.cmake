# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_geom[1]_include.cmake")
include("/root/repo/build/tests/test_parx[1]_include.cmake")
include("/root/repo/build/tests/test_la_vec[1]_include.cmake")
include("/root/repo/build/tests/test_la_dense[1]_include.cmake")
include("/root/repo/build/tests/test_la_csr[1]_include.cmake")
include("/root/repo/build/tests/test_la_krylov[1]_include.cmake")
include("/root/repo/build/tests/test_la_smoothers[1]_include.cmake")
include("/root/repo/build/tests/test_la_direct[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_mesh_io[1]_include.cmake")
include("/root/repo/build/tests/test_delaunay[1]_include.cmake")
include("/root/repo/build/tests/test_fem_shape[1]_include.cmake")
include("/root/repo/build/tests/test_fem_material[1]_include.cmake")
include("/root/repo/build/tests/test_fem_element[1]_include.cmake")
include("/root/repo/build/tests/test_fem_assembly[1]_include.cmake")
include("/root/repo/build/tests/test_coarsen_faces[1]_include.cmake")
include("/root/repo/build/tests/test_coarsen_mis[1]_include.cmake")
include("/root/repo/build/tests/test_restriction[1]_include.cmake")
include("/root/repo/build/tests/test_mg[1]_include.cmake")
include("/root/repo/build/tests/test_sa[1]_include.cmake")
include("/root/repo/build/tests/test_dla[1]_include.cmake")
include("/root/repo/build/tests/test_nonlinear[1]_include.cmake")
include("/root/repo/build/tests/test_perf[1]_include.cmake")
include("/root/repo/build/tests/test_app[1]_include.cmake")
