// Distributed solves on adaptively refined hierarchies: the refined
// level stack (geometric prolongation + masked local smoothing) runs the
// same templated cycle bodies on virtual ranks as serially, so the
// iterate histories must match the serial solve to working precision at
// every rank count — the same contract test_serial_dist_equiv enforces
// for the MIS-only chain. Plus the refine -> rebalance primitives:
// dla::repartition_mesh must reproduce DistCsr::from_global_permuted of
// the serial operator bit-for-bit, the fresh RCB cut of the refined mesh
// must stay under the 1.2 imbalance bar, and the whole refine+solve
// pipeline must be bitwise reproducible across kernel thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numeric>
#include <utility>
#include <vector>

#include "app/driver.h"
#include "app/refine.h"
#include "common/parallel.h"
#include "dla/dist_mg.h"
#include "dla/dist_setup.h"
#include "mg/hierarchy.h"
#include "mg/solver.h"
#include "parx/runtime.h"
#include "partition/rcb.h"

namespace prom {
namespace {

struct RefinedProblem {
  app::AdaptiveLoop loop;
  mg::Hierarchy hierarchy;
  la::Csr a_serial;  ///< the fine free-dof operator (kept for repartition)
  std::vector<real> rhs;
  idx num_vertices = 0;
};

/// Two bisection rounds on the elastic cube, then the refined hierarchy
/// with point Jacobi (backend-identical smoothing) and a forced
/// multi-level MIS tail.
RefinedProblem build_refined_problem() {
  const app::ModelProblem p = app::make_box_problem(5);
  app::AdaptiveOptions ao;
  ao.rounds = 2;
  ao.mark_fraction = 0.15;
  RefinedProblem out;
  out.loop = app::run_adaptive_refinement(p, ao);
  mg::MgOptions mo;
  mo.smoother = mg::SmootherKind::kJacobi;
  mo.coarsest_max_dofs = 60;
  out.a_serial = out.loop.sys.stiffness;
  out.rhs = out.loop.sys.rhs;
  out.num_vertices = out.loop.final_mesh().num_vertices();
  la::Csr a = out.a_serial;
  out.hierarchy =
      mg::Hierarchy::build_refined(out.loop.mesh_ptrs(), out.loop.dofmap_ptrs(),
                                   out.loop.rounds, std::move(a), mo);
  return out;
}

/// Scalar (block-size-1) counterpart on the jump-coefficient Poisson
/// problem — the refined chain at one dof per vertex.
RefinedProblem build_refined_scalar_problem() {
  const app::ModelProblem p = app::make_poisson_het_problem(6, 1e3);
  app::AdaptiveOptions ao;
  ao.rounds = 2;
  ao.mark_fraction = 0.15;
  RefinedProblem out;
  out.loop = app::run_adaptive_refinement(p, ao);
  mg::MgOptions mo = app::default_mg_options(p.equation);
  mo.smoother = mg::SmootherKind::kJacobi;
  mo.coarsest_max_dofs = 30;
  out.a_serial = out.loop.sys.stiffness;
  out.rhs = out.loop.sys.rhs;
  out.num_vertices = out.loop.final_mesh().num_vertices();
  la::Csr a = out.a_serial;
  out.hierarchy = mg::Hierarchy::build_refined_scalar(
      out.loop.mesh_ptrs(), out.loop.scalar_dofmap_ptrs(), out.loop.rounds,
      std::move(a), mo);
  return out;
}

std::vector<idx> block_owner(idx nv, int p) {
  std::vector<idx> owner(static_cast<std::size_t>(nv));
  for (idx v = 0; v < nv; ++v) {
    owner[static_cast<std::size_t>(v)] =
        static_cast<idx>((static_cast<std::int64_t>(v) * p) / nv);
  }
  return owner;
}

struct DistOutcome {
  std::vector<real> x;  ///< solution mapped back to the serial ordering
  std::vector<la::KrylovResult> results;  ///< per rank
};

DistOutcome run_distributed(const RefinedProblem& prob, int p,
                            const mg::MgSolveOptions& so) {
  DistOutcome out;
  out.x.assign(prob.rhs.size(), 0);
  out.results.resize(static_cast<std::size_t>(p));
  const std::vector<idx> owner = block_owner(prob.num_vertices, p);
  parx::Runtime::run(p, [&](parx::Comm& comm) {
    const dla::DistHierarchy dist =
        dla::DistHierarchy::build(comm, prob.hierarchy, owner);
    const auto& perm = dist.permutation(0);
    const dla::RowDist& rows = dist.level(0).a.row_dist();
    const idx b0 = rows.begin(comm.rank());
    const idx nloc = rows.local_size(comm.rank());
    std::vector<real> b_local(static_cast<std::size_t>(nloc));
    for (idx i = 0; i < nloc; ++i) b_local[i] = prob.rhs[perm[b0 + i]];
    std::vector<real> x_local(static_cast<std::size_t>(nloc), 0);
    out.results[comm.rank()] =
        dist_mg_pcg_solve(comm, dist, b_local, x_local, so);
    for (idx i = 0; i < nloc; ++i) out.x[perm[b0 + i]] = x_local[i];
  });
  return out;
}

void expect_vectors_close(const std::vector<real>& ref,
                          const std::vector<real>& got, real rel_tol) {
  ASSERT_EQ(ref.size(), got.size());
  real scale = 0;
  for (real v : ref) scale = std::max(scale, std::fabs(v));
  ASSERT_GT(scale, 0);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got[i], ref[i], rel_tol * scale) << "entry " << i;
  }
}

/// The distributed result reproduces the serial history to 1e-12 of the
/// initial residual with the identical iteration count, and every rank
/// holds the bit-identical KrylovResult.
void expect_histories_match(const la::KrylovResult& ref,
                            const DistOutcome& got, int p) {
  const la::KrylovResult& d = got.results[0];
  EXPECT_TRUE(d.converged);
  EXPECT_EQ(d.iterations, ref.iterations);
  ASSERT_EQ(d.history.size(), ref.history.size());
  for (std::size_t i = 0; i < ref.history.size(); ++i) {
    EXPECT_NEAR(d.history[i], ref.history[i], 1e-12 * ref.history[0])
        << "history entry " << i;
  }
  EXPECT_NEAR(d.final_relres, ref.final_relres, 1e-12);
  for (int r = 1; r < p; ++r) {
    const la::KrylovResult& other = got.results[r];
    EXPECT_EQ(other.iterations, d.iterations);
    EXPECT_EQ(other.converged, d.converged);
    EXPECT_EQ(other.final_relres, d.final_relres);
    ASSERT_EQ(other.history.size(), d.history.size());
    for (std::size_t i = 0; i < d.history.size(); ++i) {
      EXPECT_EQ(other.history[i], d.history[i]) << "rank " << r;
    }
  }
}

class EquivRanks : public ::testing::TestWithParam<int> {};

TEST_P(EquivRanks, RefinedPcgHistoryMatchesSerial) {
  const RefinedProblem prob = build_refined_problem();
  ASSERT_GE(prob.hierarchy.num_levels(), 4);  // 2 refinement + MIS chain
  ASSERT_FALSE(prob.hierarchy.level(1).smooth_rows.empty());
  mg::MgSolveOptions so;
  so.rtol = 1e-8;
  so.track_history = true;
  std::vector<real> x_ref(prob.rhs.size(), 0);
  const la::KrylovResult ref =
      mg::mg_pcg_solve(prob.hierarchy, prob.rhs, x_ref, so);
  ASSERT_TRUE(ref.converged);
  ASSERT_FALSE(ref.history.empty());

  const DistOutcome got = run_distributed(prob, GetParam(), so);
  expect_histories_match(ref, got, GetParam());
  expect_vectors_close(x_ref, got.x, 1e-10);
}

TEST_P(EquivRanks, RefinedScalarPcgHistoryMatchesSerial) {
  const RefinedProblem prob = build_refined_scalar_problem();
  ASSERT_GE(prob.hierarchy.num_levels(), 4);
  ASSERT_EQ(prob.hierarchy.block_size(), 1);
  mg::MgSolveOptions so;
  so.rtol = 1e-8;
  so.track_history = true;
  std::vector<real> x_ref(prob.rhs.size(), 0);
  const la::KrylovResult ref =
      mg::mg_pcg_solve(prob.hierarchy, prob.rhs, x_ref, so);
  ASSERT_TRUE(ref.converged);
  const DistOutcome got = run_distributed(prob, GetParam(), so);
  expect_histories_match(ref, got, GetParam());
  expect_vectors_close(x_ref, got.x, 1e-10);
}

// The refine -> rebalance migration: starting from the *inherited*
// partition (the base mesh's RCB cut propagated through the bisection
// rounds), dla::repartition_mesh moves the fine operator onto the fresh
// RCB cut of the refined coordinates. The result must be bit-identical
// to slicing the serial operator under the new assignment with
// DistCsr::from_global_permuted — no rank ever touching the serial
// matrix is the whole point of the primitive.
TEST_P(EquivRanks, RepartitionMeshMatchesFromGlobalPermuted) {
  const int p = GetParam();
  const RefinedProblem prob = build_refined_scalar_problem();
  const fem::ScalarDofMap& dm = prob.loop.final_scalar_dofmap();
  const idx n = prob.a_serial.nrows;

  // Initial ownership: the stale, inherited cut.
  const std::vector<idx> base_owner =
      partition::rcb_partition(prob.loop.base.coords(), p);
  const std::vector<idx> inherited =
      app::inherit_owners(prob.loop, base_owner);

  // Target ownership: a fresh RCB of the refined mesh, expanded to the
  // serial free dofs (scalar: free dof i lives at vertex free_dofs()[i]).
  const std::vector<idx> fresh =
      partition::rcb_partition(prob.loop.final_mesh().coords(), p);
  EXPECT_LE(app::partition_imbalance(fresh, p), 1.2);
  std::vector<idx> new_owner(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) new_owner[i] = fresh[dm.free_dofs()[i]];

  // The expected new numbering: stable-sort the serial rows by new owner.
  std::vector<idx> expect_perm(static_cast<std::size_t>(n));
  std::iota(expect_perm.begin(), expect_perm.end(), idx{0});
  std::stable_sort(expect_perm.begin(), expect_perm.end(), [&](idx a, idx b) {
    return new_owner[a] < new_owner[b];
  });
  std::vector<idx> sorted_owner(static_cast<std::size_t>(n));
  for (idx g = 0; g < n; ++g) sorted_owner[g] = new_owner[expect_perm[g]];

  parx::Runtime::run(p, [&](parx::Comm& comm) {
    const dla::DistHierarchy dist =
        dla::DistHierarchy::build(comm, prob.hierarchy, inherited);
    const dla::RepartitionResult rr = dla::repartition_mesh(
        comm, dist.level(0).a, dist.permutation(0), new_owner);
    ASSERT_EQ(rr.perm, expect_perm) << "rank " << comm.rank();

    const dla::RowDist rows =
        dla::RowDist::from_sorted_owners(sorted_owner, p);
    const dla::DistCsr expect = dla::DistCsr::from_global_permuted(
        comm, prob.a_serial, rows, rows, expect_perm, expect_perm);

    const la::Csr& got_m = rr.a.local_matrix();
    const la::Csr& exp_m = expect.local_matrix();
    ASSERT_EQ(got_m.nrows, exp_m.nrows) << "rank " << comm.rank();
    ASSERT_EQ(got_m.rowptr, exp_m.rowptr) << "rank " << comm.rank();
    ASSERT_EQ(got_m.colidx, exp_m.colidx) << "rank " << comm.rank();
    ASSERT_EQ(got_m.vals.size(), exp_m.vals.size());
    EXPECT_EQ(std::memcmp(got_m.vals.data(), exp_m.vals.data(),
                          got_m.vals.size() * sizeof(real)),
              0)
        << "rank " << comm.rank() << ": values must be bit-identical";
    EXPECT_EQ(rr.a.ghost_cols(), expect.ghost_cols())
        << "rank " << comm.rank();
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, EquivRanks, ::testing::Values(1, 2, 4, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "p" + std::to_string(info.param);
                         });

// The full refine+solve pipeline — adaptive loop (estimate solves,
// indicators, bisection), hierarchy build, and the final MG-PCG — must
// produce bit-identical residual histories and solutions at 1, 2, and 8
// kernel threads: every parallel kernel in the chain is required to keep
// a thread-count-independent accumulation order.
TEST(RefineThreads, PipelineBitwiseAcrossKernelThreads) {
  struct Outcome {
    std::vector<real> x;
    std::vector<double> history;
    int iterations = 0;
  };
  const auto run = [] {
    const RefinedProblem prob = build_refined_problem();
    mg::MgSolveOptions so;
    so.rtol = 1e-8;
    so.track_history = true;
    Outcome out;
    out.x.assign(prob.rhs.size(), 0);
    const la::KrylovResult r =
        mg::mg_pcg_solve(prob.hierarchy, prob.rhs, out.x, so);
    EXPECT_TRUE(r.converged);
    out.history.assign(r.history.begin(), r.history.end());
    out.iterations = r.iterations;
    return out;
  };

  common::set_kernel_threads(1);
  const Outcome ref = run();
  for (const int t : {2, 8}) {
    common::set_kernel_threads(t);
    const Outcome got = run();
    EXPECT_EQ(got.iterations, ref.iterations) << t << " threads";
    ASSERT_EQ(got.x.size(), ref.x.size());
    EXPECT_EQ(std::memcmp(got.x.data(), ref.x.data(),
                          ref.x.size() * sizeof(real)),
              0)
        << t << " threads: solution must be bitwise reproducible";
    ASSERT_EQ(got.history.size(), ref.history.size());
    EXPECT_EQ(std::memcmp(got.history.data(), ref.history.data(),
                          ref.history.size() * sizeof(double)),
              0)
        << t << " threads: history must be bitwise reproducible";
  }
  common::set_kernel_threads(0);
}

}  // namespace
}  // namespace prom
