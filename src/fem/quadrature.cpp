#include "fem/quadrature.h"

#include <array>
#include <cmath>

namespace prom::fem {
namespace {

constexpr real kG = 0.5773502691896257;  // 1/sqrt(3)

constexpr std::array<GaussPoint, 8> kHex8 = {{
    {{-kG, -kG, -kG}, 1}, {{kG, -kG, -kG}, 1}, {{kG, kG, -kG}, 1},
    {{-kG, kG, -kG}, 1},  {{-kG, -kG, kG}, 1}, {{kG, -kG, kG}, 1},
    {{kG, kG, kG}, 1},    {{-kG, kG, kG}, 1},
}};

constexpr std::array<GaussPoint, 1> kHex1 = {{{{0, 0, 0}, 8}}};

// Reference tet: vertices (0,0,0), (1,0,0), (0,1,0), (0,0,1); volume 1/6.
constexpr std::array<GaussPoint, 1> kTet1 = {{{{0.25, 0.25, 0.25},
                                               1.0 / 6.0}}};

constexpr real kTa = 0.5854101966249685;  // (5 + 3*sqrt(5)) / 20
constexpr real kTb = 0.1381966011250105;  // (5 - sqrt(5)) / 20
constexpr std::array<GaussPoint, 4> kTet4 = {{
    {{kTa, kTb, kTb}, 1.0 / 24.0},
    {{kTb, kTa, kTb}, 1.0 / 24.0},
    {{kTb, kTb, kTa}, 1.0 / 24.0},
    {{kTb, kTb, kTb}, 1.0 / 24.0},
}};

}  // namespace

std::span<const GaussPoint> hex_gauss_8() { return kHex8; }
std::span<const GaussPoint> hex_gauss_1() { return kHex1; }
std::span<const GaussPoint> tet_gauss_1() { return kTet1; }
std::span<const GaussPoint> tet_gauss_4() { return kTet4; }

}  // namespace prom::fem
