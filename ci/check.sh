#!/usr/bin/env bash
# The one-command CI gate: optimized build + tier-1 test suite, the same
# suite again under Address/UB sanitizers, then the ThreadSanitizer race
# gate (ci/tsan.sh). Everything a PR must pass.
#
# By default only tier-1 tests run (`ctest -L tier1`) — the fast PR gate.
# Pass --full to also run slow-labelled tests in both configurations, the
# nightly-style full lane.
set -euo pipefail
cd "$(dirname "$0")/.."

label_args=(-L tier1)
if [[ "${1:-}" == "--full" ]]; then
  label_args=()
  shift
fi

# Doc-only short-circuit: a committed diff that touches nothing but
# documentation cannot change a build or a test, so skip the whole gate.
# Only taken when the working tree is clean (local uncommitted edits are
# exactly what a local run wants checked) and a comparison base exists;
# PROM_CI_NO_DOC_SKIP=1 forces the full gate regardless.
if [[ "${PROM_CI_NO_DOC_SKIP:-0}" != "1" && -z "$(git status --porcelain 2>/dev/null)" ]]; then
  base="$(git merge-base HEAD origin/main 2>/dev/null ||
          git rev-parse HEAD~1 2>/dev/null || true)"
  if [[ -n "${base}" && "${base}" != "$(git rev-parse HEAD)" ]]; then
    changed="$(git diff --name-only "${base}" HEAD)"
    if [[ -n "${changed}" ]] &&
       ! grep -qvE '(\.md|\.txt|^LICENSE)$' <<<"${changed}"; then
      echo "ci/check.sh: doc-only diff ${base:0:12}..HEAD — skipping gate"
      exit 0
    fi
  fi
fi

# ccache visibility: print hit/miss stats after every build step so cache
# effectiveness (and a cold or thrashing CI cache) shows up in the log.
ccache_epilogue() {
  if command -v ccache >/dev/null 2>&1; then
    echo "--- ccache stats after $1 build ---"
    ccache -s || true
  fi
}

cmake --preset release
cmake --build --preset release -j"$(nproc)"
ccache_epilogue release
ctest --test-dir build-release --output-on-failure -j"$(nproc)" \
  "${label_args[@]}"

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j"$(nproc)"
ccache_epilogue asan-ubsan
ctest --preset asan-ubsan -j"$(nproc)" "${label_args[@]}"

# The matrix-free equivalence battery gets an explicit direct run under
# ASan/UBSan on top of the labelled ctest pass: it exercises the SIMD
# element kernel's raw slot gathers and the overlapped DistMf ghost
# indexing — exactly where an out-of-bounds lane would hide.
./build-asan-ubsan/tests/test_mf_equiv

./ci/tsan.sh
ccache_epilogue tsan

echo "ci/check.sh: OK"
