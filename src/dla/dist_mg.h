// Distributed multigrid: mirrors a serial mg::Hierarchy across virtual
// ranks. Dofs at every level are assigned to the rank owning the vertex
// they derive from (the MIS chain makes coarse vertices fine vertices, so
// ownership is inherited, exactly as in the paper's Prometheus); each
// level's operator and restriction are row-distributed, smoothing is
// processor-block Jacobi, and the constant-size coarsest problem is solved
// redundantly on every rank (§5).
//
// The build is replicated (every rank constructs the same permuted global
// operators and slices out its rows) — see DESIGN.md substitution 1: the
// setup phases are studied serially, the *solve phase* runs with real
// per-rank work and message traffic, which is what Figures 10-12 measure.
#pragma once

#include <memory>
#include <vector>

#include "dla/dist_csr.h"
#include "dla/dist_krylov.h"
#include "la/dense.h"
#include "mg/hierarchy.h"
#include "mg/solver.h"

namespace prom::dla {

struct DistMgLevel {
  DistCsr a;   ///< level operator (square, row/col dist identical)
  DistCsr r;   ///< restriction from the finer level (empty on level 0)
  // Processor-block-Jacobi smoother data over the local diagonal block.
  la::Csr local_diag;
  std::vector<std::vector<idx>> blocks;
  std::vector<la::DenseLdlt> factors;
  real omega = 0.6;
  // Coarsest level: replicated dense factorization.
  std::unique_ptr<la::DenseLdlt> direct;

  idx local_n() const { return a.local_rows(); }

  /// One damped block-Jacobi smoothing step (collective).
  void smooth(parx::Comm& comm, std::span<const real> b_local,
              std::span<real> x_local) const;
};

class DistHierarchy {
 public:
  /// Builds the distributed mirror of `serial`. `fine_vertex_owner` maps
  /// each fine-mesh vertex to a rank; level-l dof ownership follows the
  /// MIS parent chain. Collective; deterministic and identical on all
  /// ranks. The permutations applied per level are retained so solutions
  /// can be mapped back to the serial ordering.
  static DistHierarchy build(parx::Comm& comm, const mg::Hierarchy& serial,
                             std::span<const idx> fine_vertex_owner);

  int num_levels() const { return static_cast<int>(levels_.size()); }
  const DistMgLevel& level(int l) const { return levels_[l]; }

  /// perm[l][new_index] = serial free-dof index at level l.
  const std::vector<idx>& permutation(int l) const { return perms_[l]; }

  int pre_smooth = 1;
  int post_smooth = 1;

 private:
  std::vector<DistMgLevel> levels_;
  std::vector<std::vector<idx>> perms_;
};

/// One distributed V-cycle at `level` (collective).
void dist_vcycle(parx::Comm& comm, const DistHierarchy& h, int level,
                 std::span<const real> b_local, std::span<real> x_local);

/// One distributed full-multigrid cycle from zero (collective).
std::vector<real> dist_fmg_cycle(parx::Comm& comm, const DistHierarchy& h,
                                 std::span<const real> b_local);

/// The distributed FMG/V-cycle preconditioner.
class DistMgPreconditioner final : public DistOperator {
 public:
  DistMgPreconditioner(const DistHierarchy& h, mg::CycleKind kind)
      : h_(&h), kind_(kind) {}
  idx local_n() const override { return h_->level(0).local_n(); }
  void apply(parx::Comm& comm, std::span<const real> x_local,
             std::span<real> y_local) const override;

 private:
  const DistHierarchy* h_;
  mg::CycleKind kind_;
};

/// Distributed MG-preconditioned CG (collective).
la::KrylovResult dist_mg_pcg_solve(parx::Comm& comm, const DistHierarchy& h,
                                   std::span<const real> b_local,
                                   std::span<real> x_local,
                                   const mg::MgSolveOptions& opts = {});

}  // namespace prom::dla
