#!/usr/bin/env bash
# Formatting gate: runs clang-format (.clang-format at the repo root) over
# the C++ sources in src/ tests/ bench/ examples/.
#   ci/format.sh          rewrite files in place
#   ci/format.sh --check  fail (exit 1) if any file would change — CI mode
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" > /dev/null; then
  echo "ci/format.sh: $CLANG_FORMAT not found (set CLANG_FORMAT=...)" >&2
  exit 1
fi

mapfile -t files < <(git ls-files 'src/*.h' 'src/*.cpp' 'tests/*.h' \
  'tests/*.cpp' 'bench/*.h' 'bench/*.cpp' 'examples/*.h' 'examples/*.cpp')

if [[ "${1:-}" == "--check" ]]; then
  "$CLANG_FORMAT" --dry-run --Werror "${files[@]}"
  echo "ci/format.sh: OK (${#files[@]} files clean)"
else
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "ci/format.sh: formatted ${#files[@]} files"
fi
