# Empty dependencies file for prom_mesh.
# This may be replaced when dependencies are built.
