// Adaptive-vs-uniform refinement economics on the paper's sphere-in-cube
// problem (material jumps at the shell interfaces concentrate the error).
// Two refinement sequences from the same base mesh:
//  - uniform: every cell marked each round (mark_fraction = 1),
//  - adaptive: fixed-fraction marking driven by the residual indicator.
// Each row solves the refined system with the refined hierarchy
// (mg::Hierarchy::build_refined, local smoothing on refinement levels)
// and reports two error measures: the a-posteriori energy-norm estimator
// sqrt(sum eta_e^2) of fem/indicator.h, and the strain-energy distance
// from an Aitken-extrapolated reference energy (uniform sequence). Shape
// claims under test:
//  - the adaptive sequence reaches its final estimated error with >= 2x
//    fewer dofs than uniform refinement needs for the same estimate
//    (log-log interpolation along the uniform curve; gated outside the
//    smoke size, which never leaves the pre-asymptotic regime),
//  - a fresh RCB cut of each refined mesh keeps the per-rank vertex
//    imbalance <= 1.2 while the inherited base-mesh cut degrades.
// Emits BENCH_refine.json with both sweeps plus the dof-ratio summary.
//
// Environment: PROM_BENCH_FULL=1 enlarges the base mesh; PROM_BENCH_SMOKE=1
// shrinks it (the CI smoke lane).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <utility>
#include <vector>

#include "app/driver.h"
#include "app/refine.h"
#include "fem/assembly.h"
#include "fem/indicator.h"
#include "fem/material.h"
#include "mesh/mesh.h"
#include "mg/hierarchy.h"
#include "mg/solver.h"
#include "partition/rcb.h"

using namespace prom;

namespace {

/// Strain energy of a P1 displacement field: per tet the gradient is
/// constant, so U = sum_T |T| (lambda/2 tr(eps)^2 + mu eps:eps). A
/// continuous functional of the FE solution — its distance from the
/// extrapolated reference is the "energy error" of the table.
double strain_energy(const mesh::Mesh& mesh,
                     const std::vector<fem::Material>& materials,
                     std::span<const real> u_full) {
  double total = 0;
  for (idx e = 0; e < mesh.num_cells(); ++e) {
    const std::span<const idx> c = mesh.cell(e);
    const Vec3 p0 = mesh.coord(c[0]);
    const Vec3 d1 = mesh.coord(c[1]) - p0;
    const Vec3 d2 = mesh.coord(c[2]) - p0;
    const Vec3 d3 = mesh.coord(c[3]) - p0;
    const real det6 = dot(d1, cross(d2, d3));
    std::array<Vec3, 4> grad;
    grad[1] = cross(d2, d3) / det6;
    grad[2] = cross(d3, d1) / det6;
    grad[3] = cross(d1, d2) / det6;
    grad[0] = -(grad[1] + grad[2] + grad[3]);
    // Displacement gradient G_ij = sum_a u[a][i] grad[a][j].
    real g[3][3] = {};
    for (int a = 0; a < 4; ++a) {
      const std::size_t base = 3 * static_cast<std::size_t>(c[a]);
      const real ua[3] = {u_full[base], u_full[base + 1], u_full[base + 2]};
      const real ga[3] = {grad[a].x, grad[a].y, grad[a].z};
      for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) g[i][j] += ua[i] * ga[j];
      }
    }
    real tr = 0, frob = 0;
    for (int i = 0; i < 3; ++i) {
      tr += g[i][i];
      for (int j = 0; j < 3; ++j) {
        const real eps = 0.5 * (g[i][j] + g[j][i]);
        frob += eps * eps;
      }
    }
    const fem::Material& m =
        materials[static_cast<std::size_t>(mesh.material(e))];
    const double density = 0.5 * m.lambda() * tr * tr + m.mu() * frob;
    total += density * std::abs(det6) / 6.0;
  }
  return total;
}

struct Row {
  int rounds;
  idx unknowns;
  idx cells;
  double energy;
  double error;  ///< |energy - reference|, filled once the reference exists
  /// Estimated energy-norm error sqrt(sum eta_e^2) — the a-posteriori
  /// estimator of fem/indicator.h, equivalent to the energy error up to
  /// mesh-independent constants; the dof-economics target is set in this
  /// metric (standard AFEM practice: the estimator is what an adaptive
  /// code can actually observe and drive to a tolerance).
  double est_error;
  int iterations;
  double solve_s;
  double imb_inherited;  ///< base-mesh RCB cut propagated through bisection
  double imb_rebalanced; ///< fresh RCB cut of the refined coordinates
  bool converged;
};

constexpr int kRanks = 4;  ///< rank count for the imbalance columns

Row run(const app::ModelProblem& p, int rounds, real fraction) {
  app::AdaptiveOptions ao;
  ao.rounds = rounds;
  ao.mark_fraction = fraction;
  app::AdaptiveLoop loop = app::run_adaptive_refinement(p, ao);

  mg::MgOptions mo;
  // Two smoothing steps: repeated bisection degrades element quality on
  // the later adaptive rounds, and the default single sweep occasionally
  // stagnates there.
  mo.pre_smooth = 2;
  mo.post_smooth = 2;
  const std::vector<real> rhs = loop.sys.rhs;
  la::Csr a = loop.sys.stiffness;
  const mg::Hierarchy h =
      rounds == 0
          ? mg::Hierarchy::build(loop.final_mesh(), loop.final_dofmap(),
                                 std::move(a), mo)
          : mg::Hierarchy::build_refined(loop.mesh_ptrs(),
                                         loop.dofmap_ptrs(), loop.rounds,
                                         std::move(a), mo);

  mg::MgSolveOptions so;
  so.rtol = 1e-8;
  so.max_iters = 400;
  std::vector<real> x(rhs.size(), 0);
  const auto t0 = std::chrono::steady_clock::now();
  const la::KrylovResult r = mg::mg_pcg_solve(h, rhs, x, so);
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;

  const std::vector<real> u_full = loop.final_dofmap().full_from_free(x);
  const double energy = strain_energy(loop.final_mesh(), p.materials, u_full);
  const std::vector<real> eta =
      fem::elasticity_error_indicator(loop.final_mesh(), u_full, p.materials);
  double eta_sq = 0;
  for (const real v : eta) eta_sq += static_cast<double>(v) * v;

  const std::vector<idx> base_owner =
      partition::rcb_partition(loop.base.coords(), kRanks);
  const std::vector<idx> inherited = app::inherit_owners(loop, base_owner);
  const std::vector<idx> fresh =
      partition::rcb_partition(loop.final_mesh().coords(), kRanks);

  return {rounds,
          static_cast<idx>(rhs.size()),
          loop.final_mesh().num_cells(),
          energy,
          0.0,
          std::sqrt(eta_sq),
          r.iterations,
          dt.count(),
          app::partition_imbalance(inherited, kRanks),
          app::partition_imbalance(fresh, kRanks),
          r.converged};
}

void print_rows(const char* name, const std::vector<Row>& rows) {
  std::printf("%-8s | %-7s %-8s %-8s %-10s %-10s %-5s %-9s %-9s\n", name,
              "rounds", "cells", "dofs", "est err", "en err", "its",
              "imb(inh)", "imb(rcb)");
  for (const Row& r : rows) {
    std::printf("%-8s | %-7d %-8d %-8d %-10.3e %-10.3e %-5d %-9.3f %-9.3f%s\n",
                "", r.rounds, r.cells, r.unknowns, r.est_error, r.error,
                r.iterations, r.imb_inherited, r.imb_rebalanced,
                r.converged ? "" : "  DIVERGED");
  }
  std::printf("\n");
}

void write_rows(std::FILE* json, const char* name,
                const std::vector<Row>& rows, bool last) {
  std::fprintf(json, "  \"%s\": [\n", name);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(json,
                 "    {\"rounds\": %d, \"cells\": %d, \"unknowns\": %d, "
                 "\"energy\": %.10g, \"energy_error\": %.6g, "
                 "\"estimated_error\": %.6g, "
                 "\"iterations\": %d, \"solve_s\": %.6f, "
                 "\"imbalance_inherited\": %.4f, "
                 "\"imbalance_rebalanced\": %.4f, \"converged\": %s}%s\n",
                 r.rounds, r.cells, r.unknowns, r.energy, r.error,
                 r.est_error,
                 r.iterations, r.solve_s, r.imb_inherited, r.imb_rebalanced,
                 r.converged ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]%s\n", last ? "" : ",");
}

}  // namespace

int main() {
  const bool full = std::getenv("PROM_BENCH_FULL") != nullptr;
  const bool smoke = std::getenv("PROM_BENCH_SMOKE") != nullptr;

  // Smoke shrinks everything: a smoke-sized run never leaves the
  // pre-asymptotic regime where uniform refinement of the already-graded
  // base mesh is near-optimal, so the dof-ratio gate below only applies
  // to the default and full sizes.
  mesh::SphereInCubeParams sp;
  sp.num_shells = smoke ? 2 : (full ? 4 : 3);
  sp.base_core_layers = smoke ? 1 : 2;
  sp.base_outer_layers = smoke ? 2 : 3;
  const app::ModelProblem p = app::make_sphere_problem(sp, 0.5);
  // The uniform sequence roughly triples its cells per round; the
  // adaptive sequence is cheap per round, so it runs many more and
  // overtakes uniform's accuracy at a fraction of the dofs — uniform
  // wastes its budget on the large soft core/outer regions while the
  // indicator keeps marking the shell interfaces and crush edges.
  const int uniform_rounds = smoke ? 2 : 3;
  const int adaptive_rounds = smoke ? 4 : 8;
  const real fraction = 0.1;

  std::printf("sphere-in-cube octant, %d shells: adaptive (fraction %g) vs "
              "uniform bisection,\nrefined-hierarchy MG-PCG at rtol 1e-8, "
              "imbalance over %d ranks\n\n",
              static_cast<int>(sp.num_shells), fraction, kRanks);

  std::vector<Row> uniform;
  for (int r = 0; r <= uniform_rounds; ++r) uniform.push_back(run(p, r, 1.0));
  std::vector<Row> adaptive;
  for (int r = 0; r <= adaptive_rounds; ++r) {
    adaptive.push_back(run(p, r, fraction));
  }

  // Reference energy: Aitken extrapolation of the last three uniform
  // energies (bisection refines uniformly, so the error contracts
  // geometrically). Falls back to the finest value when the sequence is
  // too flat to extrapolate.
  const std::size_t u = uniform.size();
  const double d1 = uniform[u - 2].energy - uniform[u - 3].energy;
  const double d2 = uniform[u - 1].energy - uniform[u - 2].energy;
  double reference = uniform[u - 1].energy;
  if (std::abs(d1 - d2) > 1e-14 * std::abs(uniform[u - 1].energy)) {
    reference = uniform[u - 1].energy + d2 * d2 / (d1 - d2);
  }
  for (Row& r : uniform) r.error = std::abs(r.energy - reference);
  for (Row& r : adaptive) r.error = std::abs(r.energy - reference);

  print_rows("uniform", uniform);
  print_rows("adaptive", adaptive);

  // The dof-economics claim, in the estimator metric (what an adaptive
  // code drives to tolerance): the target is the final adaptive row's
  // estimated error; the uniform dof count needed to match it comes from
  // log-log interpolation along the uniform convergence curve. The ratio
  // of the two dof counts is the adaptivity payoff.
  const Row& hit_row = adaptive.back();
  const double target = hit_row.est_error;
  double uniform_dofs = 0;
  for (std::size_t i = 1; i < u; ++i) {
    if (uniform[i].est_error > target && i + 1 < u) continue;
    const double e0 = uniform[i - 1].est_error, e1 = uniform[i].est_error;
    const double n0 = uniform[i - 1].unknowns, n1 = uniform[i].unknowns;
    const double slope = std::log(e1 / e0) / std::log(n1 / n0);
    uniform_dofs = n0 * std::pow(target / e0, 1.0 / slope);
    break;
  }
  const double ratio = uniform_dofs / static_cast<double>(hit_row.unknowns);
  std::printf("target estimated error %.3e: uniform needs ~%.0f dofs, "
              "adaptive %d dofs (round %d) -> %.2fx fewer\n",
              target, uniform_dofs, hit_row.unknowns, hit_row.rounds, ratio);
  std::printf("\nshape claims: adaptive reaches the target estimated error "
              "with >= 2x fewer\ndofs (gated outside smoke), and the fresh "
              "RCB cut holds the rank\nimbalance <= 1.2 per round.\n");

  bool ok = smoke || ratio >= 2.0;
  for (const Row& r : uniform) ok = ok && r.converged;
  for (const Row& r : adaptive) {
    ok = ok && r.converged && r.imb_rebalanced <= 1.2;
  }

  std::FILE* json = std::fopen("BENCH_refine.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_refine.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"refine\",\n  \"num_shells\": %d,\n"
               "  \"mark_fraction\": %g,\n  \"ranks\": %d,\n"
               "  \"reference_energy\": %.10g,\n",
               static_cast<int>(sp.num_shells), fraction, kRanks, reference);
  write_rows(json, "uniform_sweep", uniform, false);
  write_rows(json, "adaptive_sweep", adaptive, false);
  std::fprintf(json,
               "  \"summary\": {\"target_estimated_error\": %.6g, "
               "\"uniform_unknowns\": %.0f, \"adaptive_unknowns\": %d, "
               "\"dof_ratio\": %.3f}\n}\n",
               target, uniform_dofs, hit_row.unknowns, ratio);
  std::fclose(json);
  std::printf("wrote BENCH_refine.json\n");
  return ok ? 0 : 1;
}
