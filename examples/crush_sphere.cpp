// The paper's §7 model problem end to end: one octant of a soft cube with
// an embedded 17-layer alternating hard/soft sphere ("a spherical
// steel-belted radial inside a rubber cube"), crushed from the top through
// displacement-controlled load steps with full Newton, each linear system
// solved by FMG-preconditioned CG (Figure 9 + the §7.2 nonlinear study at
// workstation scale).
//
// Writes sphere_mesh.vtk (undeformed, with materials) and
// sphere_deformed.vtk (with the displacement field) for inspection.
//
// Usage: crush_sphere [layers_per_shell] [steps] [crush]
#include <cstdio>
#include <cstdlib>

#include "app/driver.h"
#include "common/timer.h"
#include "mesh/vtk.h"
#include "nonlinear/newton.h"

int main(int argc, char** argv) {
  using namespace prom;
  mesh::SphereInCubeParams params;
  params.base_core_layers = 1;
  params.base_outer_layers = 1;
  params.layers_per_shell = argc > 1 ? std::atoi(argv[1]) : 1;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 4;
  // Total crush scaled to the range where the simplified kinematics of
  // DESIGN.md substitution 4 stay robust (the paper used 3.6).
  const real crush = argc > 3 ? std::atof(argv[3]) : 0.8;

  app::ModelProblem model = app::make_sphere_problem(params, crush);
  std::printf("concentric spheres problem: %d vertices, %d cells, %d dofs\n",
              model.mesh.num_vertices(), model.mesh.num_cells(),
              model.dofmap.num_free());
  mesh::write_vtk("sphere_mesh.vtk", model.mesh);

  fem::FeProblem problem(model.mesh, model.materials, model.dofmap);
  mg::MgOptions mg_opts;
  Timer timer;
  nonlinear::NewtonDriver driver(problem, mg_opts);
  std::printf("mesh setup: %.2fs, %d multigrid levels\n%s", timer.seconds(),
              driver.hierarchy().num_levels(),
              driver.hierarchy().describe().c_str());

  timer.reset();
  int total_newton = 0, total_pcg = 0;
  for (int s = 1; s <= steps; ++s) {
    const auto rep = driver.solve_step_adaptive(
        static_cast<real>(s) / static_cast<real>(steps));
    int pcg = 0;
    for (int it : rep.linear_iters) pcg += it;
    total_newton += rep.newton_iters;
    total_pcg += pcg;
    std::printf(
        "step %2d: %s, %d Newton iterations, %3d PCG iterations, "
        "%.2f%% of hard Gauss points plastic\n",
        s, rep.converged ? "converged" : "FAILED", rep.newton_iters, pcg,
        100 * rep.plastic_fraction);
    if (!rep.converged) return 1;
  }
  std::printf("total: %d Newton, %d PCG iterations in %.1fs\n", total_newton,
              total_pcg, timer.seconds());

  // Deformed configuration for ParaView.
  const auto u_full = problem.dofmap().full_from_free(driver.displacement());
  mesh::VtkFields fields;
  fields.displacement = u_full;
  mesh::write_vtk("sphere_deformed.vtk", model.mesh, fields);
  std::printf("wrote sphere_mesh.vtk and sphere_deformed.vtk\n");
  return 0;
}
