# Empty compiler generated dependencies file for prom_mg.
# This may be replaced when dependencies are built.
