// The single smoother-driver implementations, templated over an execution
// backend (la/backend.h). The serial Smoother classes (la/smoothers.h) and
// the distributed per-level smoothers (dla/dist_mg.cpp) both delegate
// here, so a smoothing step is the same arithmetic — including the fixed
// parallel_for grains of the intra-rank determinism contract — on every
// backend; only the operator application communicates.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "common/config.h"
#include "common/error.h"
#include "common/flops.h"
#include "common/parallel.h"
#include "la/backend.h"
#include "la/dense.h"
#include "la/vec.h"
#include "obs/trace.h"

namespace prom::la {

/// Fixed chunk sizes (see common/parallel.h determinism contract).
constexpr idx kSmootherPointGrain = 8192;  // elementwise updates
constexpr idx kSmootherBlockGrain = 8;     // block-Jacobi blocks

/// One damped point-Jacobi step: x += omega * D^{-1} (b - A x), on the
/// local block. `inv_diag` holds the inverted diagonal of the local rows.
template <class B, class Op>
  requires BackendFor<B, Op>
void jacobi_sweep(const B& be, const Op& a, std::span<const real> inv_diag,
                  real omega, std::span<const real> b, std::span<real> x) {
  const obs::Span span("smoother.jacobi");
  const idx n = be.local_n(a);
  PROM_CHECK(static_cast<idx>(b.size()) == n &&
             static_cast<idx>(x.size()) == n);
  std::vector<real> r(n);
  be.apply(a, x, r);
  common::parallel_for(0, n, kSmootherPointGrain, [&](idx ib, idx ie) {
    for (idx i = ib; i < ie; ++i) {
      x[i] += omega * inv_diag[i] * (b[i] - r[i]);
    }
  });
  count_flops(4LL * n);
}

/// One damped block-Jacobi step: x += omega * blkdiag(A)^{-1} (b - A x).
/// `blocks[k]` lists the local row indices of block k (a partition of the
/// local rows); `factors[k]` is its dense LDL^T.
template <class B, class Op>
  requires BackendFor<B, Op>
void block_jacobi_sweep(const B& be, const Op& a,
                        std::span<const std::vector<idx>> blocks,
                        std::span<const DenseLdlt> factors, real omega,
                        std::span<const real> b, std::span<real> x) {
  const obs::Span span("smoother.block_jacobi");
  const idx n = be.local_n(a);
  PROM_CHECK(static_cast<idx>(b.size()) == n &&
             static_cast<idx>(x.size()) == n);
  std::vector<real> r(n);
  be.apply(a, x, r);
  waxpby(1, b, -1, r, r);  // r = b - A x
  // Blocks partition the rows, so block solves write disjoint slices of x
  // and parallelize without ordering concerns.
  common::parallel_for(
      0, static_cast<idx>(blocks.size()), kSmootherBlockGrain,
      [&](idx kb, idx ke) {
        std::vector<real> rb, xb;
        for (idx k = kb; k < ke; ++k) {
          const auto& block = blocks[k];
          rb.resize(block.size());
          xb.resize(block.size());
          for (std::size_t li = 0; li < block.size(); ++li) {
            rb[li] = r[block[li]];
          }
          factors[k].solve(rb, xb);
          for (std::size_t li = 0; li < block.size(); ++li) {
            x[block[li]] += omega * xb[li];
          }
        }
      });
  count_flops(2LL * n);
}

/// One Chebyshev smoothing pass of the given degree on the Jacobi-
/// preconditioned operator D^{-1}A, targeting [lmin, lmax].
template <class B, class Op>
  requires BackendFor<B, Op>
void chebyshev_sweep(const B& be, const Op& a, std::span<const real> inv_diag,
                     int degree, real lmin, real lmax,
                     std::span<const real> b, std::span<real> x) {
  const obs::Span span("smoother.chebyshev");
  const idx n = be.local_n(a);
  PROM_CHECK(static_cast<idx>(b.size()) == n &&
             static_cast<idx>(x.size()) == n);
  const real theta = (lmax + lmin) / 2;
  const real delta = (lmax - lmin) / 2;
  const real sigma = theta / delta;
  real rho = 1 / sigma;

  std::vector<real> r(n), d(n), ad(n);
  be.apply(a, x, r);
  waxpby(1, b, -1, r, r);
  common::parallel_for(0, n, kSmootherPointGrain, [&](idx ib, idx ie) {
    for (idx i = ib; i < ie; ++i) d[i] = inv_diag[i] * r[i] / theta;
  });
  for (int k = 0; k < degree; ++k) {
    axpy(1, d, x);
    if (k + 1 == degree) break;
    be.apply(a, d, ad);
    axpy(-1, ad, r);
    const real rho_new = 1 / (2 * sigma - rho);
    common::parallel_for(0, n, kSmootherPointGrain, [&](idx ib, idx ie) {
      for (idx i = ib; i < ie; ++i) {
        const real zi = inv_diag[i] * r[i];
        d[i] = rho_new * rho * d[i] + 2 * rho_new / delta * zi;
      }
    });
    rho = rho_new;
    count_flops(6LL * n);
  }
}

/// Power iteration for the largest eigenvalue of D^{-1}A (15 steps from a
/// deterministic start). `row_offset` is the global index of the first
/// local row, so the start vector — and hence the estimate — is a function
/// of the global problem only, not of the distribution.
template <class B, class Op>
  requires BackendFor<B, Op>
real estimate_lambda_max(const B& be, const Op& a,
                         std::span<const real> inv_diag, idx row_offset) {
  const idx n = be.local_n(a);
  std::vector<real> v(static_cast<std::size_t>(n)), av(v.size());
  for (idx i = 0; i < n; ++i) v[i] = 1 + ((row_offset + i) % 7) * 0.1;
  real lambda = 1;
  for (int it = 0; it < 15; ++it) {
    be.apply(a, v, av);
    for (idx i = 0; i < n; ++i) av[i] *= inv_diag[i];
    lambda = be.norm2(av);
    if (lambda == 0) break;
    for (idx i = 0; i < n; ++i) v[i] = av[i] / lambda;
  }
  return lambda;
}

}  // namespace prom::la
