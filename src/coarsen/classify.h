// Topological classification of vertices (§4.3–4.4): from the identified
// faces, vertices are typed as interior (touching no boundary facet),
// surface (exactly one face), edge (two faces) or corner (more than two),
// giving the MIS ranks 0..3. Material interfaces contribute one face per
// side; the type counts faces per material and takes the worst side, so a
// vertex on a smooth two-sided interface is a *surface* vertex, not an
// edge vertex.
#pragma once

#include <span>
#include <vector>

#include "common/config.h"
#include "coarsen/faces.h"
#include "mesh/mesh.h"

namespace prom::coarsen {

enum class VertexType : std::uint8_t {
  kInterior = 0,
  kSurface = 1,
  kEdge = 2,
  kCorner = 3,
};

struct Classification {
  std::vector<VertexType> type;  ///< per vertex
  /// Distinct incident face ids per vertex (CSR, sorted within a vertex) —
  /// the "feature sets" used by the modified-graph heuristic (§4.6).
  std::vector<nnz_t> vface_ptr;
  std::vector<idx> vface;

  idx num_vertices() const { return static_cast<idx>(type.size()); }
  idx rank(idx v) const { return static_cast<idx>(type[v]); }
  std::span<const idx> faces_of(idx v) const {
    return {vface.data() + vface_ptr[v],
            static_cast<std::size_t>(vface_ptr[v + 1] - vface_ptr[v])};
  }
  /// True if u and v touch at least one common face.
  bool share_face(idx u, idx v) const;

  /// Count of vertices of each type (diagnostics / tests).
  std::array<idx, 4> type_histogram() const;

  /// All ranks as a vector (for graph::MisOptions).
  std::vector<idx> ranks() const;
};

/// Classifies all `num_vertices` vertices of the mesh whose boundary
/// facets and face ids are given.
Classification classify_vertices(idx num_vertices,
                                 std::span<const mesh::Facet> facets,
                                 const FaceIdResult& faces);

/// One-call convenience: facets + adjacency + face id + classification.
Classification classify_mesh(const mesh::Mesh& mesh,
                             const FaceIdOptions& opts = {});

}  // namespace prom::coarsen
