file(REMOVE_RECURSE
  "libprom_common.a"
)
