#include "fem/scalar.h"

#include <cmath>
#include <utility>

#include "common/error.h"
#include "common/parallel.h"
#include "fem/quadrature.h"
#include "fem/shape.h"
#include "la/dense.h"

namespace prom::fem {
namespace {

/// Same fixed chunking as the elasticity assembly (fem/assembly.cpp): the
/// chunk decomposition — and with it the merged triplet ordering — never
/// depends on the thread count.
constexpr idx kCellGrain = 64;

std::span<const GaussPoint> rule_for(mesh::CellKind kind) {
  return kind == mesh::CellKind::kHex8 ? hex_gauss_8() : tet_gauss_4();
}

ShapeEval shape_for(mesh::CellKind kind, const Vec3& xi) {
  return kind == mesh::CellKind::kHex8 ? hex8_shape(xi) : tet4_shape(xi);
}

/// Element characteristic length from the centroid Jacobian: the cube
/// root of the element volume (reference volume 1/6 for the unit simplex,
/// 8 for [-1,1]^3). Exact for affine tets; the usual approximation for
/// trilinear hexes.
real element_length(mesh::CellKind kind, real detj_centroid) {
  const real refvol = kind == mesh::CellKind::kHex8 ? real{8} : real{1} / 6;
  return std::cbrt(detj_centroid * refvol);
}

/// Optimal SUPG parameter tau = h/(2|v|) (coth Pe - 1/Pe) with the element
/// Peclet number Pe = |v| h / (2 kappa), kappa the diffusion along the
/// flow direction. The small-Pe limit (coth Pe - 1/Pe -> Pe/3) is taken
/// explicitly to avoid catastrophic cancellation.
real supg_tau(const Vec3& v, const Mat3& k, real h) {
  const real vnorm = norm(v);
  if (!(vnorm > 0) || !(h > 0)) return 0;
  const real kappa = dot(v, matvec(k, v)) / (vnorm * vnorm);
  real zeta;  // coth(Pe) - 1/Pe, the "doubly asymptotic" upwind function
  if (kappa > 0) {
    const real pe = vnorm * h / (2 * kappa);
    zeta = pe < real{0.01} ? pe / 3 : 1 / std::tanh(pe) - 1 / pe;
  } else {
    zeta = 1;  // pure advection: full upwinding
  }
  return h / (2 * vnorm) * zeta;
}

}  // namespace

ScalarDofMap::ScalarDofMap(idx num_vertices)
    : nv_(num_vertices),
      constrained_(static_cast<std::size_t>(num_vertices), 0),
      bc_value_(static_cast<std::size_t>(num_vertices), 0),
      free_index_(static_cast<std::size_t>(num_vertices), kInvalidIdx) {
  finalize();
}

void ScalarDofMap::fix(idx vertex, real value) {
  PROM_CHECK(vertex >= 0 && vertex < nv_);
  constrained_[vertex] = 1;
  bc_value_[vertex] = value;
}

void ScalarDofMap::fix_all(std::span<const idx> vertices, real value) {
  for (idx v : vertices) fix(v, value);
}

void ScalarDofMap::finalize() {
  free_dofs_.clear();
  for (idx v = 0; v < nv_; ++v) {
    if (!constrained_[v]) {
      free_index_[v] = static_cast<idx>(free_dofs_.size());
      free_dofs_.push_back(v);
    } else {
      free_index_[v] = kInvalidIdx;
    }
  }
}

std::vector<real> ScalarDofMap::full_from_free(
    std::span<const real> free_values, real bc_scale) const {
  PROM_CHECK(static_cast<idx>(free_values.size()) == num_free());
  std::vector<real> full(static_cast<std::size_t>(nv_));
  for (idx v = 0; v < nv_; ++v) {
    full[v] = constrained_[v] ? bc_scale * bc_value_[v]
                              : free_values[free_index_[v]];
  }
  return full;
}

std::vector<real> ScalarDofMap::free_from_full(
    std::span<const real> full_values) const {
  PROM_CHECK(static_cast<idx>(full_values.size()) == nv_);
  std::vector<real> out(static_cast<std::size_t>(num_free()));
  for (idx i = 0; i < num_free(); ++i) out[i] = full_values[free_dofs_[i]];
  return out;
}

ScalarAssembly assemble_scalar(const mesh::Mesh& mesh,
                               const ScalarDofMap& dofmap,
                               const ScalarCoefficients& coeffs) {
  PROM_CHECK(dofmap.num_vertices() == mesh.num_vertices());
  PROM_CHECK_MSG(static_cast<bool>(coeffs.diffusion),
                 "ScalarCoefficients::diffusion is required");
  const int npc = mesh::nodes_per_cell(mesh.kind());
  const std::span<const GaussPoint> rule = rule_for(mesh.kind());
  const Vec3 xi_centroid = mesh.kind() == mesh::CellKind::kHex8
                               ? Vec3{}
                               : Vec3{real{0.25}, real{0.25}, real{0.25}};

  ScalarAssembly out;
  out.load.assign(static_cast<std::size_t>(dofmap.num_free()), 0);
  out.bc_coupling.assign(static_cast<std::size_t>(dofmap.num_free()), 0);

  // Cell-chunk-parallel assembly with chunk-order merge, exactly the
  // elasticity pattern: bit-identical results at any thread count.
  struct ChunkOut {
    std::vector<la::Triplet> triplets;
    std::vector<std::pair<idx, real>> load_contrib;  // (free row, value)
    std::vector<std::pair<idx, real>> bc_contrib;    // (free row, value)
  };
  const idx nchunks = common::chunk_count(0, mesh.num_cells(), kCellGrain);
  std::vector<ChunkOut> outs(static_cast<std::size_t>(nchunks));

  common::parallel_for(0, mesh.num_cells(), kCellGrain, [&](idx eb, idx ee) {
    ChunkOut& co = outs[eb / kCellGrain];
    co.triplets.reserve(static_cast<std::size_t>(ee - eb) * npc * npc);
    la::DenseMatrix ke(npc, npc);
    std::vector<real> fe(static_cast<std::size_t>(npc));
    std::vector<Vec3> coords(static_cast<std::size_t>(npc));

    for (idx e = eb; e < ee; ++e) {
      const auto verts = mesh.cell(e);
      for (int a = 0; a < npc; ++a) coords[a] = mesh.coord(verts[a]);
      for (int a = 0; a < npc; ++a) {
        fe[a] = 0;
        for (int b = 0; b < npc; ++b) ke(a, b) = 0;
      }

      // SUPG data from the element centroid (element-constant tau).
      real tau = 0;
      if (coeffs.supg && coeffs.velocity) {
        const ShapeEval sc = shape_for(mesh.kind(), xi_centroid);
        const PhysicalGrads pc = physical_gradients(sc, coords);
        const Vec3 xc = interpolate_position(sc, coords);
        tau = supg_tau(coeffs.velocity(e, xc), coeffs.diffusion(e, xc),
                       element_length(mesh.kind(), pc.detJ));
      }

      for (const GaussPoint& gp : rule) {
        const ShapeEval shape = shape_for(mesh.kind(), gp.xi);
        const PhysicalGrads pg = physical_gradients(shape, coords);
        const Vec3 x = interpolate_position(shape, coords);
        const real wdet = gp.w * pg.detJ;

        const Mat3 k = coeffs.diffusion(e, x);
        const Vec3 v = coeffs.velocity ? coeffs.velocity(e, x) : Vec3{};
        const real c = coeffs.reaction ? coeffs.reaction(e, x) : 0;
        const real f = coeffs.source ? coeffs.source(e, x) : 0;

        for (int a = 0; a < npc; ++a) {
          const Vec3& ga = pg.grad[a];
          // SUPG augments the test function N_a by tau v.grad N_a on the
          // advective/reaction residual; the P1 diffusion residual has no
          // second derivatives, so the Galerkin diffusion term is all
          // that remains of it.
          const real wa_stab = tau * dot(v, ga);
          for (int b = 0; b < npc; ++b) {
            const Vec3& gb = pg.grad[b];
            const real adv = dot(v, gb);
            real kab = dot(ga, matvec(k, gb)) +
                       shape.value[a] * adv +
                       c * shape.value[a] * shape.value[b];
            if (tau != 0) kab += wa_stab * (adv + c * shape.value[b]);
            ke(a, b) += wdet * kab;
          }
          fe[a] += wdet * f * (shape.value[a] + wa_stab);
        }
      }

      // Scatter to free dofs (recorded, merged below in cell order).
      for (int a = 0; a < npc; ++a) {
        const idx row = dofmap.free_index(verts[a]);
        if (row == kInvalidIdx) continue;
        co.load_contrib.emplace_back(row, fe[a]);
        for (int b = 0; b < npc; ++b) {
          const idx col = dofmap.free_index(verts[b]);
          if (col == kInvalidIdx) {
            co.bc_contrib.emplace_back(row,
                                       ke(a, b) * dofmap.bc_value(verts[b]));
          } else {
            co.triplets.push_back({row, col, ke(a, b)});
          }
        }
      }
    }
  });

  std::size_t total_triplets = 0;
  for (const ChunkOut& co : outs) {
    total_triplets += co.triplets.size();
    for (const auto& [row, v] : co.load_contrib) out.load[row] += v;
    for (const auto& [row, v] : co.bc_contrib) out.bc_coupling[row] += v;
  }
  std::vector<la::Triplet> triplets;
  triplets.reserve(total_triplets);
  for (const ChunkOut& co : outs) {
    triplets.insert(triplets.end(), co.triplets.begin(), co.triplets.end());
  }
  out.stiffness = la::Csr::from_triplets(dofmap.num_free(), dofmap.num_free(),
                                         triplets);
  return out;
}

ScalarSystem assemble_scalar_system(const mesh::Mesh& mesh,
                                    const ScalarDofMap& dofmap,
                                    const ScalarCoefficients& coeffs) {
  ScalarAssembly a = assemble_scalar(mesh, dofmap, coeffs);
  ScalarSystem sys;
  sys.stiffness = std::move(a.stiffness);
  sys.rhs.resize(a.load.size());
  for (std::size_t i = 0; i < sys.rhs.size(); ++i) {
    sys.rhs[i] = a.load[i] - a.bc_coupling[i];
  }
  return sys;
}

real scalar_l2_error(const mesh::Mesh& mesh, std::span<const real> u_full,
                     const std::function<real(const Vec3&)>& exact) {
  PROM_CHECK(static_cast<idx>(u_full.size()) == mesh.num_vertices());
  const int npc = mesh::nodes_per_cell(mesh.kind());
  const std::span<const GaussPoint> rule = rule_for(mesh.kind());
  std::vector<Vec3> coords(static_cast<std::size_t>(npc));
  real err2 = 0;
  for (idx e = 0; e < mesh.num_cells(); ++e) {
    const auto verts = mesh.cell(e);
    for (int a = 0; a < npc; ++a) coords[a] = mesh.coord(verts[a]);
    for (const GaussPoint& gp : rule) {
      const ShapeEval shape = shape_for(mesh.kind(), gp.xi);
      const PhysicalGrads pg = physical_gradients(shape, coords);
      const Vec3 x = interpolate_position(shape, coords);
      real uh = 0;
      for (int a = 0; a < npc; ++a) uh += shape.value[a] * u_full[verts[a]];
      const real d = uh - exact(x);
      err2 += gp.w * pg.detJ * d * d;
    }
  }
  return std::sqrt(err2);
}

}  // namespace prom::fem
