// Matrix-free fine-level elasticity operator (ROADMAP item 1, after the
// hybrid scheme of arXiv:2203.12292): the finest multigrid level applies
// K_ff on the fly from precomputed per-element geometry factors instead of
// an assembled sparse matrix, while every coarse level stays assembled
// Galerkin (R A R^T and the smoother diagonals need matrix entries).
//
// The operator is the tangent at the UNLOADED state (u = 0): linear
// elastic and J2 cells sit on their elastic branch with the B-bar
// strain-displacement operator, and Neo-Hookean cells linearized at F = I
// reduce to the same isotropic form — per element only (lambda, 2 mu), a
// B-bar switch, per-quadrature-point w = gauss_w * detJ and J^{-1}, and
// the constrained-dof mask survive to apply time. That is exactly the
// operator fem::assemble_linear_system() assembles, so the apply agrees
// with the assembled CSR/BSR3 path to reassociation rounding (~1e-12).
//
// Apply runs in two deterministic passes (the bit-determinism contract of
// common/parallel.h):
//   Pass A (elements): SIMD batches of la::kSimdLanes elements in SoA
//     layout, one lane = one element. Gathers u through per-element-dof
//     slot indices (constrained dofs read 0), recomputes physical
//     gradients from the stored J^{-1} and the compile-time reference
//     gradients, forms strain -> stress -> nodal forces fe per lane, and
//     writes fe to a disjoint per-batch buffer. A lane is a pure function
//     of one element's data, so fe never depends on batching, lane
//     position, or thread count.
//   Pass B (rows): each output row sums its incident elements' fe entries
//     in ascending *global element id* order through a precomputed
//     adjacency — the same order serially and on any rank layout, which
//     makes the serial and distributed applies bitwise identical per
//     owned row.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "common/config.h"
#include "fem/assembly.h"
#include "fem/material.h"
#include "la/operator.h"
#include "mesh/mesh.h"

namespace prom::fem {

/// Shared matrix-free core: batched element data + row adjacency + the two
/// apply passes. The serial operator uses it over all elements with
/// free-dof indexing; dla::DistMf uses it over the rank's relevant
/// elements with [owned | ghost] slot indexing and an owned-row scatter.
class MfCore {
 public:
  /// Gather/scatter indices of one element dof (vertex-local node a,
  /// component c): `gather_slot` indexes the apply input x (kInvalidIdx =
  /// constrained, reads 0), `scatter_row` indexes the apply output y
  /// (kInvalidIdx = constrained or owned elsewhere, contribution dropped).
  struct Dof {
    idx gather_slot = kInvalidIdx;
    idx scatter_row = kInvalidIdx;
  };

  /// Builds the batched element data for `elements` (global cell ids,
  /// ascending). Elements whose every gather slot is < `first_ghost_slot`
  /// are grouped into the leading "interior" batches; the rest follow as
  /// "boundary" batches (ascending global id within each group), so a
  /// distributed caller can run Pass A on the interior while the halo is
  /// in flight. Serial callers pass first_ghost_slot = num_slots (no
  /// boundary group). Wrapped in an obs span "mf.setup".
  static MfCore build(const mesh::Mesh& mesh,
                      std::span<const Material> materials, bool bbar,
                      std::span<const idx> elements, idx num_slots,
                      idx num_rows, idx first_ghost_slot,
                      const std::function<Dof(idx e, int a, int c)>& dof_of);

  idx num_rows() const { return nrows_; }
  idx num_slots() const { return nslots_; }
  idx num_batches() const { return nbatch_; }
  idx num_interior_batches() const { return nbatch_interior_; }

  /// Pass A on batches [bb, be): element nodal forces into the fe buffer.
  /// Disjoint per-batch writes; callers may split the range arbitrarily
  /// (the result is identical), but a single apply must cover every batch
  /// exactly once before Pass B.
  void pass_a(std::span<const real> x, idx bb, idx be) const;

  /// Pass B over all rows: y[r] = sum of incident fe contributions.
  void pass_b_apply(std::span<real> y) const;
  /// Pass B over a row subset (the `*_rows` hooks of the halo split).
  void pass_b_apply_rows(std::span<real> y, std::span<const idx> rows) const;
  /// Pass B fused residual: r[row] = b[row] - sum(fe).
  void pass_b_residual(std::span<const real> b, std::span<real> r) const;
  void pass_b_residual_rows(std::span<const real> b, std::span<real> r,
                            std::span<const idx> rows) const;

  /// Model of the apply-time memory traffic in bytes per output row (the
  /// bench's bytes/dof column): streamed element data + slot indices + the
  /// fe buffer (written then read) + row adjacency + x and y.
  double apply_bytes_per_row() const;

 private:
  idx nrows_ = 0;
  idx nslots_ = 0;
  idx nbatch_ = 0;
  idx nbatch_interior_ = 0;
  int nen_ = 0;
  int nqp_ = 0;
  std::int64_t flops_per_batch_ = 0;

  // SoA batch data, lane = element (inert padding lanes in each group's
  // last batch: zero geometry, invalid slots).
  std::vector<real> geo_;     ///< [batch][qp][1 + 9][lane]: w, J^{-1}
  std::vector<real> mean_;    ///< [batch][nen*3][lane]: B-bar mean grads
  std::vector<real> lam_;     ///< [batch][lane]: lambda
  std::vector<real> two_mu_;  ///< [batch][lane]: 2 mu
  std::vector<real> bdil_;    ///< [batch][lane]: 1/3 for B-bar cells else 0
  std::vector<idx> slots_;    ///< [batch][nen*3][lane]: gather slots
  mutable std::vector<real> fe_;  ///< [batch][nen*3][lane] nodal forces

  // Row adjacency into fe_, incident elements ascending by global id.
  std::vector<nnz_t> row_ptr_;
  std::vector<idx> row_src_;
};

/// The serial matrix-free operator: K_ff of the unloaded-state tangent
/// over the free dofs, a drop-in for la::Csr/la::BsrOperator in the
/// solve-phase Backend concept (rows/apply + fused residual + subset-row
/// hooks). Apply runs under an obs span "mf.apply".
class MatrixFreeOperator final : public la::LinearOperator {
 public:
  static MatrixFreeOperator build(const mesh::Mesh& mesh,
                                  std::span<const Material> materials,
                                  const DofMap& dofmap, bool bbar = true);

  idx rows() const override { return core_.num_rows(); }
  idx cols() const override { return core_.num_slots(); }

  /// y = K_ff x.
  void apply(std::span<const real> x, std::span<real> y) const override;
  /// Batched apply: the element sweep runs once per column (the single
  /// fe_ buffer is reused), each column bitwise-equal to `apply`, under
  /// one mf.apply span.
  void apply_mv(const la::MultiVec& x, la::MultiVec& y) const override;
  /// r = b - K_ff x (same one-subtraction-per-entry rounding as the
  /// compose-then-waxpby fallback).
  void residual(std::span<const real> b, std::span<const real> x,
                std::span<real> r) const;
  /// Column-blocked fused residual.
  void residual_mv(const la::MultiVec& b, const la::MultiVec& x,
                   la::MultiVec& r) const;
  /// Subset-row variants: full element sweep, scatter restricted to
  /// `rows` (entries of y / r outside the subset are left untouched).
  void apply_rows(std::span<const real> x, std::span<real> y,
                  std::span<const idx> rows) const;
  void residual_rows(std::span<const real> b, std::span<const real> x,
                     std::span<real> r, std::span<const idx> rows) const;

  const MfCore& core() const { return core_; }

 private:
  explicit MatrixFreeOperator(MfCore core) : core_(std::move(core)) {}
  MfCore core_;
};

/// Single-element building block (the unit under test in
/// tests/test_fem_assembly.cpp): y = Ke u for the unloaded-state element
/// tangent, computed through the same batched SIMD kernel as the full
/// operator (one element in lane 0, inert padding in the rest). All 3*nen
/// element dofs are treated as free.
std::vector<real> mf_element_apply(const Material& mat,
                                   std::span<const Vec3> coords,
                                   std::span<const real> u, bool bbar);

}  // namespace prom::fem
