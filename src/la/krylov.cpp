#include "la/krylov.h"

#include <cmath>

#include "common/error.h"
#include "la/krylov_any.h"
#include "la/vec.h"

namespace prom::la {

KrylovResult cg(const LinearOperator& a, std::span<const real> b,
                std::span<real> x, const KrylovOptions& opts) {
  PROM_CHECK(a.cols() == a.rows());
  return pcg_any(SerialBackend{}, a,
                 static_cast<const LinearOperator*>(nullptr), b, x, opts);
}

KrylovResult pcg(const LinearOperator& a, const LinearOperator& m,
                 std::span<const real> b, std::span<real> x,
                 const KrylovOptions& opts) {
  PROM_CHECK(a.cols() == a.rows());
  return pcg_any(SerialBackend{}, a, &m, b, x, opts);
}

std::vector<KrylovResult> pcg_multi(const LinearOperator& a,
                                    const LinearOperator* m, const MultiVec& b,
                                    MultiVec& x, const KrylovOptions& opts,
                                    KrylovWorkspace* ws) {
  PROM_CHECK(a.cols() == a.rows());
  return pcg_multi_any(SerialBackend{}, a, m, b, x, opts, ws);
}

KrylovResult gmres(const LinearOperator& a, const LinearOperator* m,
                   std::span<const real> b, std::span<real> x,
                   const GmresOptions& opts) {
  PROM_CHECK(a.cols() == a.rows());
  return gmres_any(SerialBackend{}, a, m, b, x, opts);
}

KrylovResult bicgstab(const LinearOperator& a, const LinearOperator* m,
                      std::span<const real> b, std::span<real> x,
                      const KrylovOptions& opts) {
  PROM_CHECK(a.cols() == a.rows());
  return bicgstab_any(SerialBackend{}, a, m, b, x, opts);
}

const char* to_string(KrylovKind k) {
  switch (k) {
    case KrylovKind::kPcg:
      return "pcg";
    case KrylovKind::kGmres:
      return "gmres";
    case KrylovKind::kBicgstab:
      return "bicgstab";
  }
  return "?";
}

}  // namespace prom::la
