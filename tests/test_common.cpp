#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/error.h"
#include "common/flops.h"
#include "common/rng.h"
#include "common/timer.h"

namespace prom {
namespace {

TEST(Error, CheckThrowsWithMessage) {
  EXPECT_THROW(PROM_CHECK(false), Error);
  try {
    PROM_CHECK_MSG(1 == 2, "one is not two");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("one is not two"),
              std::string::npos);
  }
  EXPECT_NO_THROW(PROM_CHECK(true));
}

TEST(Flops, CountsPerThread) {
  reset_thread_flops();
  count_flops(10);
  count_flops(32);
  EXPECT_EQ(thread_flops(), 42);
  FlopWindow window;
  count_flops(8);
  EXPECT_EQ(window.flops(), 8);
  EXPECT_EQ(thread_flops(), 50);
  reset_thread_flops();
  EXPECT_EQ(thread_flops(), 0);
}

TEST(Flops, ThreadLocalIsolation) {
  reset_thread_flops();
  count_flops(5);
  std::int64_t other_thread_flops = -1;
  std::thread t([&] {
    reset_thread_flops();
    count_flops(100);
    other_thread_flops = thread_flops();
  });
  t.join();
  EXPECT_EQ(other_thread_flops, 100);
  EXPECT_EQ(thread_flops(), 5);
}

TEST(Rng, DeterministicAndSeedSensitive) {
  Rng a(1), b(1), c(2);
  const std::uint64_t a1 = a.next_u64();
  EXPECT_EQ(a1, b.next_u64());
  EXPECT_NE(a1, c.next_u64());
}

TEST(Rng, RealsInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BelowBoundRespected) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit over 200 draws
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

TEST(PhaseTimers, AccumulatesNamedPhases) {
  PhaseTimers timers;
  timers.add("solve", 1.5);
  timers.add("solve", 0.5);
  timers.add("setup", 0.25);
  EXPECT_DOUBLE_EQ(timers.total("solve"), 2.0);
  EXPECT_DOUBLE_EQ(timers.total("setup"), 0.25);
  EXPECT_DOUBLE_EQ(timers.total("missing"), 0.0);
  { ScopedPhase phase(timers, "scoped"); }
  EXPECT_GE(timers.total("scoped"), 0.0);
  timers.clear();
  EXPECT_DOUBLE_EQ(timers.total("solve"), 0.0);
}

}  // namespace
}  // namespace prom
