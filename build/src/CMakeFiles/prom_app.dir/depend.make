# Empty dependencies file for prom_app.
# This may be replaced when dependencies are built.
