#include "la/dense.h"

#include <cmath>

#include "common/flops.h"

namespace prom::la {

void DenseMatrix::matvec(std::span<const real> x, std::span<real> y) const {
  PROM_CHECK(static_cast<idx>(x.size()) == cols_ &&
             static_cast<idx>(y.size()) == rows_);
  for (idx i = 0; i < rows_; ++i) y[i] = 0;
  for (idx j = 0; j < cols_; ++j) {
    const real xj = x[j];
    for (idx i = 0; i < rows_; ++i) y[i] += (*this)(i, j) * xj;
  }
  count_flops(2LL * rows_ * cols_);
}

DenseMatrix DenseMatrix::identity(idx n) {
  DenseMatrix m(n, n);
  for (idx i = 0; i < n; ++i) m(i, i) = 1;
  return m;
}

DenseLdlt::DenseLdlt(const DenseMatrix& a)
    : n_(a.rows()), l_(a.rows(), a.rows()), d_(a.rows(), real{0}) {
  PROM_CHECK(a.rows() == a.cols());
  const idx n = n_;
  // Column-by-column LDL^T using the lower triangle of `a`.
  std::vector<real> w(n);  // workspace: column j of L*D
  for (idx j = 0; j < n; ++j) {
    for (idx k = 0; k < j; ++k) w[k] = l_(j, k) * d_[k];
    real dj = a(j, j);
    for (idx k = 0; k < j; ++k) dj -= l_(j, k) * w[k];
    if (!(std::isfinite(dj)) || dj <= real{0}) {
      ok_ = false;
      return;
    }
    d_[j] = dj;
    l_(j, j) = 1;
    for (idx i = j + 1; i < n; ++i) {
      real lij = a(i, j);
      for (idx k = 0; k < j; ++k) lij -= l_(i, k) * w[k];
      l_(i, j) = lij / dj;
    }
  }
  count_flops(n * static_cast<std::int64_t>(n) * n / 3);
  ok_ = true;
}

void DenseLdlt::solve(std::span<const real> b, std::span<real> x) const {
  PROM_CHECK_MSG(ok_, "DenseLdlt::solve on a failed factorization");
  PROM_CHECK(static_cast<idx>(b.size()) == n_ &&
             static_cast<idx>(x.size()) == n_);
  const idx n = n_;
  // Forward solve L y = b.
  for (idx i = 0; i < n; ++i) {
    real yi = b[i];
    for (idx k = 0; k < i; ++k) yi -= l_(i, k) * x[k];
    x[i] = yi;
  }
  // Diagonal solve D z = y.
  for (idx i = 0; i < n; ++i) x[i] /= d_[i];
  // Backward solve L^T x = z.
  for (idx i = n - 1; i >= 0; --i) {
    real xi = x[i];
    for (idx k = i + 1; k < n; ++k) xi -= l_(k, i) * x[k];
    x[i] = xi;
  }
  count_flops(2LL * n * n);
}

DenseLu::DenseLu(const DenseMatrix& a)
    : n_(a.rows()), lu_(a), piv_(static_cast<std::size_t>(a.rows())) {
  PROM_CHECK(a.rows() == a.cols());
  const idx n = n_;
  for (idx k = 0; k < n; ++k) {
    // Partial pivoting: largest magnitude in column k at or below the
    // diagonal.
    idx p = k;
    real pmax = std::fabs(lu_(k, k));
    for (idx i = k + 1; i < n; ++i) {
      const real v = std::fabs(lu_(i, k));
      if (v > pmax) {
        pmax = v;
        p = i;
      }
    }
    piv_[k] = p;
    if (!(std::isfinite(pmax)) || pmax == real{0}) {
      ok_ = false;
      return;
    }
    if (p != k) {
      for (idx j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(p, j));
    }
    const real pivot = lu_(k, k);
    for (idx i = k + 1; i < n; ++i) {
      const real lik = lu_(i, k) / pivot;
      lu_(i, k) = lik;
      for (idx j = k + 1; j < n; ++j) lu_(i, j) -= lik * lu_(k, j);
    }
  }
  count_flops(2LL * n * n * n / 3);
  ok_ = true;
}

void DenseLu::solve(std::span<const real> b, std::span<real> x) const {
  PROM_CHECK_MSG(ok_, "DenseLu::solve on a failed factorization");
  PROM_CHECK(static_cast<idx>(b.size()) == n_ &&
             static_cast<idx>(x.size()) == n_);
  const idx n = n_;
  for (idx i = 0; i < n; ++i) x[i] = b[i];
  // Apply the pivot row swaps in factorization order.
  for (idx k = 0; k < n; ++k) {
    if (piv_[k] != k) std::swap(x[k], x[piv_[k]]);
  }
  // Forward solve L y = P b (unit diagonal).
  for (idx i = 0; i < n; ++i) {
    real yi = x[i];
    for (idx k = 0; k < i; ++k) yi -= lu_(i, k) * x[k];
    x[i] = yi;
  }
  // Backward solve U x = y.
  for (idx i = n - 1; i >= 0; --i) {
    real xi = x[i];
    for (idx k = i + 1; k < n; ++k) xi -= lu_(i, k) * x[k];
    x[i] = xi / lu_(i, i);
  }
  count_flops(2LL * n * n);
}

}  // namespace prom::la
