// Demonstrates the paper's parallel algorithms on virtual ranks: the
// partition-based parallel MIS of §4.2 and the parallel face
// identification of §4.5, including the traffic each rank generates.
//
// Usage: parallel_mis [ranks] [n]
#include <cstdio>
#include <cstdlib>

#include "coarsen/classify.h"
#include "coarsen/parallel_faces.h"
#include "coarsen/parallel_mis.h"
#include "graph/order.h"
#include "mesh/generate.h"
#include "mesh/io.h"
#include "partition/rcb.h"

int main(int argc, char** argv) {
  using namespace prom;
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const idx n = argc > 2 ? std::atoi(argv[2]) : 8;

  // Athena-style ingest (§5): write the mesh as a flat file, then have
  // every rank seek to and read only its own slice in parallel.
  const mesh::Mesh generated = mesh::box_hex(n, n, n, {0, 0, 0}, {1, 1, 1});
  const char* path = "parallel_mis_input.pm";
  if (!mesh::write_flat_mesh(path, generated)) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  mesh::Mesh mesh;
  parx::Runtime::run(nranks, [&](parx::Comm& comm) {
    const mesh::FlatMeshSlice slice = mesh::read_flat_mesh_slice(comm, path);
    if (comm.rank() == 0) {
      std::printf("flat file read on %d ranks: rank 0 holds vertices "
                  "[%d, %d) of %d\n",
                  comm.size(), slice.vertex_begin,
                  slice.vertex_begin + static_cast<idx>(slice.coords.size()),
                  slice.num_vertices_total);
    }
    const mesh::Mesh gathered = mesh::gather_flat_mesh(comm, slice);
    if (comm.rank() == 0) mesh = gathered;
  });
  std::remove(path);
  const graph::Graph g = mesh.vertex_graph();
  const coarsen::Classification cls = coarsen::classify_mesh(mesh);
  const std::vector<idx> ranks = cls.ranks();
  const std::vector<idx> owner =
      partition::rcb_partition(mesh.coords(), nranks);
  std::printf("mesh: %d vertices on %d virtual ranks\n", mesh.num_vertices(),
              nranks);

  // Parallel MIS.
  coarsen::ParallelMisResult mis;
  auto stats = parx::Runtime::run(nranks, [&](parx::Comm& comm) {
    coarsen::ParallelMisOptions opts;
    opts.ranks = ranks;
    mis = coarsen::parallel_mis(comm, g, owner, opts);
  });
  std::printf("parallel MIS: %zu of %d vertices selected in %d rounds "
              "(ratio 1/%.1f)\n",
              mis.selected.size(), mesh.num_vertices(), mis.rounds,
              static_cast<double>(mesh.num_vertices()) / mis.selected.size());
  for (int r = 0; r < nranks; ++r) {
    std::printf("  rank %d sent %lld messages, %lld bytes\n", r,
                static_cast<long long>(stats[r].messages_sent),
                static_cast<long long>(stats[r].bytes_sent));
  }

  // Parallel face identification.
  const auto facets = mesh::boundary_facets(mesh);
  const auto adj = mesh::facet_adjacency(facets);
  std::vector<Vec3> centroids;
  for (const auto& f : facets) {
    Vec3 c{};
    for (idx v : f.vertices()) c += mesh.coord(v);
    centroids.push_back(c / static_cast<real>(f.num_vertices()));
  }
  const auto facet_owner = partition::rcb_partition(centroids, nranks);
  coarsen::FaceIdResult faces;
  parx::Runtime::run(nranks, [&](parx::Comm& comm) {
    faces = coarsen::parallel_identify_faces(comm, facets, adj, facet_owner);
  });
  std::printf("parallel face identification: %zu facets -> %d faces "
              "(a cube has 6)\n",
              facets.size(), faces.num_faces);
  return faces.num_faces == 6 ? 0 : 1;
}
