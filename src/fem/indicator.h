// Residual-based a-posteriori error indicators on TET4 meshes (the
// marking signal for mesh::refine_local). For P1 elements the gradient is
// constant per element, so the classical estimator reduces to an interior
// residual term plus normal-flux (scalar) / traction (elasticity) jumps
// across interior faces:
//
//   eta_e^2 = h_e^2 |T_e| r_e^2  +  sum_f (h_f / 2) A_f |[[flux . n]]|^2
//
// with half of each face jump attributed to each neighbor. Only the
// *relative* sizes matter for fixed-fraction marking; the indicators are
// computed serially from the gathered full (per-vertex) solution, like
// every other mesh-setup stage, so they are trivially deterministic.
#pragma once

#include <span>
#include <vector>

#include "common/config.h"
#include "fem/material.h"
#include "fem/scalar.h"
#include "mesh/mesh.h"

namespace prom::fem {

/// Scalar-equation indicator for -div(K grad u) + v.grad u + c u = f.
/// `u_full` is the per-vertex solution (constrained values inserted);
/// coefficients are sampled at element centroids. Returns one value per
/// cell (eta_e, not squared).
std::vector<real> scalar_error_indicator(const mesh::Mesh& mesh,
                                         std::span<const real> u_full,
                                         const ScalarCoefficients& coeffs);

/// Linear-elasticity indicator: traction jumps [[sigma . n]] of the
/// element-wise constant stress (zero body force, so no interior term).
/// `u_full` holds 3 displacement components per vertex.
std::vector<real> elasticity_error_indicator(
    const mesh::Mesh& mesh, std::span<const real> u_full,
    std::span<const Material> materials);

}  // namespace prom::fem
