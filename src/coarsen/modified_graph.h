// The modified MIS graph of §4.6: edges connecting exterior vertices that
// do not share a face are deleted, so a vertex on one face cannot decimate
// vertices on an opposing face of a thin region (Figures 4–6), and corner
// vertices cannot suppress edge vertices across features.
#pragma once

#include "coarsen/classify.h"
#include "graph/graph.h"

namespace prom::coarsen {

struct ModifiedGraphStats {
  nnz_t edges_removed = 0;
};

/// Returns the vertex graph with every edge (u, v) removed where both u
/// and v are exterior (type > interior) and share no identified face.
/// Edges with an interior endpoint are always kept.
graph::Graph modified_mis_graph(const graph::Graph& vertex_graph,
                                const Classification& cls,
                                ModifiedGraphStats* stats = nullptr);

}  // namespace prom::coarsen
