#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "delaunay/delaunay.h"
#include "geom/predicates.h"

namespace prom::delaunay {
namespace {

std::vector<Vec3> random_points(idx n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec3> pts(static_cast<std::size_t>(n));
  for (Vec3& p : pts) {
    p = {rng.next_real(), rng.next_real(), rng.next_real()};
  }
  return pts;
}

std::vector<Vec3> lattice_points(idx n) {
  std::vector<Vec3> pts;
  for (idx k = 0; k < n; ++k) {
    for (idx j = 0; j < n; ++j) {
      for (idx i = 0; i < n; ++i) {
        pts.push_back({static_cast<real>(i), static_cast<real>(j),
                       static_cast<real>(k)});
      }
    }
  }
  return pts;
}

/// Structural invariant: neighbor links are mutual and share a face.
void check_adjacency(const Delaunay3& dt) {
  const auto& tets = dt.tets();
  for (idx t = 0; t < static_cast<idx>(tets.size()); ++t) {
    if (!tets[t].alive) continue;
    for (int f = 0; f < 4; ++f) {
      const idx nb = tets[t].nbr[f];
      if (nb == kInvalidIdx) continue;
      ASSERT_TRUE(tets[nb].alive) << "dangling neighbor";
      bool mutual = false;
      for (int g = 0; g < 4; ++g) {
        if (tets[nb].nbr[g] == t) mutual = true;
      }
      EXPECT_TRUE(mutual);
    }
  }
}

/// All tets positively oriented.
void check_orientation(const Delaunay3& dt) {
  const auto& c = dt.vertex_coords();
  for (const Tet& t : dt.tets()) {
    if (!t.alive) continue;
    EXPECT_GT(orient3d(c[t.v[0]], c[t.v[1]], c[t.v[2]], c[t.v[3]]), 0.0);
  }
}

class DelaunayRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DelaunayRandom, EmptyCircumsphereProperty) {
  const auto pts = random_points(60, GetParam());
  const Delaunay3 dt(pts);
  EXPECT_EQ(dt.count_delaunay_violations(), 0);
  check_adjacency(dt);
  check_orientation(dt);
}

TEST_P(DelaunayRandom, LocateFindsContainingTet) {
  const auto pts = random_points(80, GetParam() + 100);
  const Delaunay3 dt(pts);
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const Vec3 q{rng.next_real(), rng.next_real(), rng.next_real()};
    const idx t = dt.locate(q);
    ASSERT_NE(t, kInvalidIdx);
    const auto w = dt.barycentric(t, q);
    for (real wi : w) EXPECT_GE(wi, -1e-9);
  }
}

TEST_P(DelaunayRandom, BarycentricInterpolatesLinearFields) {
  // Linear function f(p) = 1 + 2x - 3y + z must be reproduced exactly by
  // barycentric interpolation within any tet.
  const auto pts = random_points(50, GetParam() + 200);
  const Delaunay3 dt(pts);
  auto f = [](const Vec3& p) { return 1 + 2 * p.x - 3 * p.y + p.z; };
  Rng rng(GetParam() + 1);
  for (int trial = 0; trial < 30; ++trial) {
    const Vec3 q{rng.next_real(), rng.next_real(), rng.next_real()};
    const idx t = dt.locate(q);
    if (dt.tet_touches_super(t)) continue;
    const auto w = dt.barycentric(t, q);
    real interp = 0;
    for (int a = 0; a < 4; ++a) {
      interp += w[a] * f(dt.vertex_coords()[dt.tets()[t].v[a]]);
    }
    // Accuracy is limited by the predicate jitter (1e-6 relative).
    EXPECT_NEAR(interp, f(q), 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DelaunayRandom,
                         ::testing::Values(1u, 2u, 3u, 4u, 10u));

TEST(Delaunay, DegenerateLatticeInput) {
  // A cubic lattice is maximally cospherical/coplanar — the jitter plus
  // exact predicates must still produce a valid triangulation.
  const auto pts = lattice_points(4);
  const Delaunay3 dt(pts);
  EXPECT_EQ(dt.count_delaunay_violations(), 0);
  check_adjacency(dt);
  check_orientation(dt);
}

TEST(Delaunay, LatticeWithoutJitterStillValid) {
  DelaunayOptions opts;
  opts.jitter = 0;
  const auto pts = lattice_points(3);
  const Delaunay3 dt(pts, opts);
  check_adjacency(dt);
  check_orientation(dt);
  EXPECT_EQ(dt.count_delaunay_violations(), 0);
}

TEST(Delaunay, SinglePoint) {
  const std::vector<Vec3> pts = {{0.5, 0.5, 0.5}};
  const Delaunay3 dt(pts);
  EXPECT_EQ(dt.num_input_points(), 1);
  // All alive tets touch the super-box (no interior tets possible).
  for (idx t = 0; t < static_cast<idx>(dt.tets().size()); ++t) {
    if (dt.tet_alive(t)) {
      EXPECT_TRUE(dt.tet_touches_super(t));
    }
  }
}

TEST(Delaunay, FivePointsVolumeCovered) {
  // Unit tetrahedron corners + centroid: non-super tets tile the tet, so
  // their volumes sum to 1/6.
  const std::vector<Vec3> pts = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0},
                                 {0, 0, 1}, {0.25, 0.25, 0.25}};
  DelaunayOptions opts;
  opts.jitter = 0;
  const Delaunay3 dt(pts, opts);
  real volume = 0;
  const auto& c = dt.vertex_coords();
  for (idx t = 0; t < static_cast<idx>(dt.tets().size()); ++t) {
    if (!dt.tet_alive(t) || dt.tet_touches_super(t)) continue;
    const auto& tv = dt.tets()[t].v;
    volume += signed_tet_volume(c[tv[0]], c[tv[1]], c[tv[2]], c[tv[3]]);
  }
  EXPECT_NEAR(volume, 1.0 / 6.0, 1e-12);
}

TEST(Delaunay, VertexIdMapping) {
  const auto pts = random_points(10, 3);
  const Delaunay3 dt(pts);
  EXPECT_TRUE(dt.is_super_vertex(0));
  EXPECT_TRUE(dt.is_super_vertex(7));
  EXPECT_FALSE(dt.is_super_vertex(8));
  EXPECT_EQ(dt.point_of_vertex(8), 0);
  EXPECT_EQ(dt.point_of_vertex(17), 9);
}

TEST(Delaunay, AliveTetCountGrowsWithPoints) {
  const Delaunay3 small(random_points(10, 1));
  const Delaunay3 large(random_points(100, 1));
  EXPECT_GT(large.num_alive_tets(), small.num_alive_tets());
}

}  // namespace
}  // namespace prom::delaunay
