#include "fem/shape.h"

#include "common/error.h"

namespace prom::fem {

ShapeEval hex8_shape(const Vec3& xi) {
  // VTK hex: node a has reference corner (sx, sy, sz) below.
  constexpr real sx[8] = {-1, 1, 1, -1, -1, 1, 1, -1};
  constexpr real sy[8] = {-1, -1, 1, 1, -1, -1, 1, 1};
  constexpr real sz[8] = {-1, -1, -1, -1, 1, 1, 1, 1};
  ShapeEval s;
  s.n = 8;
  for (int a = 0; a < 8; ++a) {
    const real fx = 1 + sx[a] * xi.x;
    const real fy = 1 + sy[a] * xi.y;
    const real fz = 1 + sz[a] * xi.z;
    s.value[a] = real{0.125} * fx * fy * fz;
    s.grad_xi[a] = {real{0.125} * sx[a] * fy * fz,
                    real{0.125} * fx * sy[a] * fz,
                    real{0.125} * fx * fy * sz[a]};
  }
  return s;
}

ShapeEval tet4_shape(const Vec3& xi) {
  ShapeEval s;
  s.n = 4;
  s.value[0] = 1 - xi.x - xi.y - xi.z;
  s.value[1] = xi.x;
  s.value[2] = xi.y;
  s.value[3] = xi.z;
  s.grad_xi[0] = {-1, -1, -1};
  s.grad_xi[1] = {1, 0, 0};
  s.grad_xi[2] = {0, 1, 0};
  s.grad_xi[3] = {0, 0, 1};
  return s;
}

PhysicalGrads physical_gradients(const ShapeEval& shape,
                                 std::span<const Vec3> nodes) {
  PROM_CHECK(static_cast<int>(nodes.size()) == shape.n);
  // J_ij = dX_i / dxi_j = sum_a X_a,i * dN_a/dxi_j
  Mat3 jac = Mat3::zero();
  for (int a = 0; a < shape.n; ++a) {
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        jac(i, j) += nodes[a][i] * shape.grad_xi[a][j];
      }
    }
  }
  PhysicalGrads out;
  out.detJ = det(jac);
  PROM_CHECK_MSG(out.detJ > 0, "inverted element (detJ <= 0)");
  const Mat3 jinv = inverse(jac);
  // dN/dX = J^{-T} dN/dxi
  const Mat3 jinv_t = transpose(jinv);
  for (int a = 0; a < shape.n; ++a) {
    out.grad[a] = matvec(jinv_t, shape.grad_xi[a]);
  }
  return out;
}

Vec3 interpolate_position(const ShapeEval& shape,
                          std::span<const Vec3> nodes) {
  Vec3 x{};
  for (int a = 0; a < shape.n; ++a) x += nodes[a] * shape.value[a];
  return x;
}

}  // namespace prom::fem
