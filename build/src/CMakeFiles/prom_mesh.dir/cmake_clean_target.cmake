file(REMOVE_RECURSE
  "libprom_mesh.a"
)
