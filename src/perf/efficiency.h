// The efficiency decomposition of §6:
//   e(P) ~= eIs * eFs * ec
// with iteration scale efficiency eIs = Iterations(base)/Iterations(P),
// flop scale efficiency eFs = normalized flops/iteration/unknown, and
// communication efficiency ec = normalized flop rate per processor; load
// balance l = average/max work. Efficiencies are reported relative to the
// smallest (base) configuration, exactly as the paper normalizes to its
// 2-processor case.
#pragma once

#include <cstdint>
#include <vector>

#include "perf/model.h"

namespace prom::perf {

/// Raw measurements of one scaled-problem run.
struct RunMeasurement {
  int ranks = 1;
  std::int64_t unknowns = 0;
  int iterations = 0;              ///< PCG iterations of the solve
  std::int64_t solve_flops = 0;    ///< total flops in the solve phase
  PhaseStats solve_phase;          ///< per-rank stats of the solve phase
  double modeled_solve_time = 0;   ///< machine-model time of the solve
  double wall_solve_time = 0;      ///< measured wall time (host machine)
};

/// Efficiencies of one run relative to a base run (§6 definitions).
struct Efficiencies {
  double iteration_scale = 1;     ///< eIs
  double flop_scale = 1;          ///< eFs (flops/iteration/unknown)
  double communication = 1;       ///< ec (modeled flop rate / rank)
  double load_balance = 1;        ///< l
  double total = 1;               ///< eIs * eFs * ec
};

Efficiencies compute_efficiencies(const RunMeasurement& base,
                                  const RunMeasurement& run);

}  // namespace prom::perf
