// The vectorized 3x3 block microkernel, shared between the node-block BSR
// format (la/bsr.cpp) and the matrix-free element kernel
// (fem/matrix_free.cpp). Both express their innermost hot loop as "3x3
// block times 3-vector, accumulated" — BSR over stored node blocks, the
// element kernel over small per-quadrature-point tensors — and both need
// the accumulation to round exactly like the reference scalar loop
//
//   for (r) for (c) acc[r] += blk[r*3+c] * xj[c];
//
// so the microkernel fixes one evaluation order (ascending c, one
// multiply-add per step) and vectorizes across the dimension that is NOT
// the accumulation chain:
//
//  - block3_row_madd: lanes = block rows r (lane 3 inert). Each lane runs
//    the identical scalar chain over c, so the result is bit-identical to
//    the scalar two-loop form — the BSR<->CSR bitwise guarantee survives.
//  - block3_madd (T = RealPack): lanes = elements; the whole 3x3 op is
//    per-lane scalar arithmetic in SoA layout, the element-kernel shape.
#pragma once

#include "common/config.h"
#include "la/simd.h"

namespace prom::la {

/// acc(0..2) += blk * xj for one row-major 3x3 block. Vectorized over the
/// three block rows; column packs are gathered lane-by-lane (a 4-wide load
/// from blk would read past the final block of the matrix). Lane 3
/// accumulates exact zeros and is never stored.
inline void block3_row_madd(const real* blk, const real* xj, RealPack& acc) {
  for (int c = 0; c < 3; ++c) {
    RealPack col = pack_zero();
    pack_set_lane(col, 0, blk[c]);
    pack_set_lane(col, 1, blk[3 + c]);
    pack_set_lane(col, 2, blk[6 + c]);
    acc += col * pack_broadcast(xj[c]);
  }
}

/// y(0..2) += m * x for a row-major 3x3 operand held per entry in T.
/// With T = real this is the reference scalar loop; with T = RealPack it
/// is the same microkernel at pack granularity (each SIMD lane an
/// independent 3x3 op — the matrix-free element kernel's layout, where a
/// lane is an element).
template <class T>
inline void block3_madd(const T* m, const T* x, T* y) {
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) y[r] += m[r * 3 + c] * x[c];
  }
}

}  // namespace prom::la
