#include "obs/trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "common/error.h"
#include "common/flops.h"
#include "obs/json.h"

namespace prom::obs {
namespace detail {

std::atomic<bool> g_tracing{false};

}  // namespace detail

namespace {

struct ThreadLog {
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;
  std::uint32_t next_seq = 0;
  std::vector<SpanRecord> spans;
  std::vector<MetricRecord> metrics;
};

// The registry is leaked on purpose: the atexit Chrome-trace writer and
// late-exiting threads may touch it after static destruction would have
// run.
struct Registry {
  std::mutex m;
  std::vector<std::unique_ptr<ThreadLog>> logs;
};

Registry& registry() {
  static Registry* reg = new Registry;
  return *reg;
}

thread_local ThreadLog* t_log = nullptr;
thread_local int t_rank = kHostRank;
thread_local std::int64_t t_messages = 0;
thread_local std::int64_t t_bytes = 0;

ThreadLog& local_log() {
  if (t_log == nullptr) {
    auto log = std::make_unique<ThreadLog>();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.m);
    log->tid = static_cast<std::uint32_t>(reg.logs.size());
    t_log = log.get();
    reg.logs.push_back(std::move(log));
  }
  return *t_log;
}

std::chrono::steady_clock::time_point process_origin() {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return origin;
}

// Forces the origin before main() in instrumented binaries so timestamps
// are process-relative, and wires up PROM_TRACE.
struct EnvInit {
  EnvInit() {
    process_origin();
    const char* path = std::getenv("PROM_TRACE");
    if (path != nullptr && path[0] != '\0') {
      Tracer& tracer = Tracer::instance();
      tracer.set_trace_path(path);
      tracer.set_enabled(true);
      std::atexit(+[] {
        const Tracer& t = Tracer::instance();
        if (!t.trace_path().empty()) t.write_chrome_trace(t.trace_path());
      });
    }
  }
} g_env_init;

}  // namespace

namespace detail {

void record_metric(const char* name, int kind, double value, int level) {
  ThreadLog& log = local_log();
  log.metrics.push_back({name, static_cast<MetricKind>(kind), level, t_rank,
                         log.tid, log.next_seq++, Tracer::now_ns(), value});
}

}  // namespace detail

void set_thread_rank(int rank) { t_rank = rank; }
int thread_rank() { return t_rank; }

void count_message(std::int64_t bytes) {
  t_messages += 1;
  t_bytes += bytes;
}
std::int64_t thread_messages() { return t_messages; }
std::int64_t thread_bytes() { return t_bytes; }

void Span::begin(const char* name, int level) {
  ThreadLog& log = local_log();
  active_ = true;
  name_ = name;
  level_ = level;
  depth_ = log.depth++;
  seq_ = log.next_seq++;
  messages0_ = t_messages;
  bytes0_ = t_bytes;
  flops0_ = thread_flops();
  t0_ = Tracer::now_ns();  // last: bookkeeping stays outside the interval
}

void Span::end() {
  const std::int64_t t1 = Tracer::now_ns();
  ThreadLog& log = *t_log;
  log.depth--;
  log.spans.push_back({name_, level_, t_rank, log.tid, depth_, seq_, t0_, t1,
                       t_messages - messages0_, t_bytes - bytes0_,
                       thread_flops() - flops0_});
}

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer;
  return *tracer;
}

void Tracer::set_enabled(bool on) {
  detail::g_tracing.store(on, std::memory_order_relaxed);
}

void Tracer::set_trace_path(std::string path) {
  trace_path_ = std::move(path);
}

std::int64_t Tracer::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - process_origin())
      .count();
}

std::vector<SpanRecord> Tracer::spans_since(std::int64_t mark_ns) const {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.m);
  std::vector<SpanRecord> out;
  for (const auto& log : reg.logs) {
    for (const SpanRecord& s : log->spans) {
      if (s.t0_ns >= mark_ns) out.push_back(s);
    }
  }
  return out;
}

std::vector<MetricRecord> Tracer::metrics_since(std::int64_t mark_ns) const {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.m);
  std::vector<MetricRecord> out;
  for (const auto& log : reg.logs) {
    for (const MetricRecord& m : log->metrics) {
      if (m.t_ns >= mark_ns) out.push_back(m);
    }
  }
  return out;
}

void Tracer::write_chrome_trace(const std::string& path) const {
  const std::vector<SpanRecord> spans = spans_since(0);

  std::string out;
  out.reserve(spans.size() * 160 + 256);
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";

  // Process-name metadata: one Chrome "process" per rank (host = pid 0,
  // rank r = pid r + 1) so Perfetto shows per-rank timelines.
  int max_rank = kHostRank;
  bool saw_host = false;
  for (const SpanRecord& s : spans) {
    if (s.rank > max_rank) max_rank = s.rank;
    if (s.rank == kHostRank) saw_host = true;
  }
  bool first = true;
  auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  if (saw_host) {
    comma();
    out +=
        "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 0, "
        "\"args\": {\"name\": \"host\"}}";
  }
  for (int r = 0; r <= max_rank; ++r) {
    comma();
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": %d, "
                  "\"args\": {\"name\": \"rank %d\"}}",
                  r + 1, r);
    out += buf;
  }

  for (const SpanRecord& s : spans) {
    comma();
    out += "{\"name\": \"";
    json::escape_into(out, s.name);
    char buf[256];
    std::snprintf(
        buf, sizeof buf,
        "\", \"cat\": \"obs\", \"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
        "\"pid\": %d, \"tid\": %u, \"args\": {\"level\": %d, "
        "\"messages\": %" PRId64 ", \"bytes\": %" PRId64
        ", \"flops\": %" PRId64 "}}",
        static_cast<double>(s.t0_ns) / 1e3,
        static_cast<double>(s.t1_ns - s.t0_ns) / 1e3, s.rank + 1, s.tid,
        s.level, s.messages, s.bytes, s.flops);
    out += buf;
  }
  out += "\n]}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  PROM_CHECK_MSG(f != nullptr, "cannot open trace output: " + path);
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
}

}  // namespace prom::obs
