#include "common/flops.h"

namespace prom {
namespace {

thread_local std::int64_t t_flops = 0;

}  // namespace

void count_flops(std::int64_t n) { t_flops += n; }

std::int64_t thread_flops() { return t_flops; }

void reset_thread_flops() { t_flops = 0; }

}  // namespace prom
