file(REMOVE_RECURSE
  "CMakeFiles/test_fem_assembly.dir/test_fem_assembly.cpp.o"
  "CMakeFiles/test_fem_assembly.dir/test_fem_assembly.cpp.o.d"
  "test_fem_assembly"
  "test_fem_assembly.pdb"
  "test_fem_assembly[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fem_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
