# Empty compiler generated dependencies file for test_sa.
# This may be replaced when dependencies are built.
