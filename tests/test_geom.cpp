#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geom/aabb.h"
#include "geom/mat3.h"
#include "geom/predicates.h"
#include "geom/vec3.h"

namespace prom {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(a * 2.0, (Vec3{2, 4, 6}));
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_EQ(cross(Vec3{1, 0, 0}, Vec3{0, 1, 0}), (Vec3{0, 0, 1}));
  EXPECT_DOUBLE_EQ(norm(Vec3{3, 4, 0}), 5.0);
  EXPECT_DOUBLE_EQ(norm(normalized(a)), 1.0);
  EXPECT_EQ(normalized(Vec3{}), (Vec3{0, 0, 0}));
}

TEST(Aabb, ExtendAndContain) {
  Aabb box;
  box.extend({0, 0, 0});
  box.extend({2, 1, 3});
  EXPECT_TRUE(box.contains({1, 0.5, 1.5}));
  EXPECT_FALSE(box.contains({3, 0, 0}));
  EXPECT_EQ(box.center(), (Vec3{1, 0.5, 1.5}));
  EXPECT_DOUBLE_EQ(box.max_extent(), 3.0);
}

TEST(Mat3, DetInverseTranspose) {
  Mat3 a = Mat3::identity();
  a(0, 1) = 2;
  a(2, 0) = -1;
  EXPECT_DOUBLE_EQ(det(Mat3::identity()), 1.0);
  const Mat3 inv = inverse(a);
  const Mat3 prod = matmul(a, inv);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-14);
    }
  }
  EXPECT_DOUBLE_EQ(transpose(a)(1, 0), a(0, 1));
  EXPECT_DOUBLE_EQ(trace(a), 3.0);
}

TEST(Mat3, DeviatorIsTraceless) {
  Mat3 a;
  a(0, 0) = 3;
  a(1, 1) = 5;
  a(2, 2) = 1;
  a(0, 1) = 2;
  EXPECT_NEAR(trace(deviator(a)), 0.0, 1e-15);
}

TEST(Orient3d, SignConvention) {
  // Positively oriented reference tetrahedron.
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 1, 0}, d{0, 0, 1};
  EXPECT_GT(orient3d(a, b, c, d), 0.0);
  EXPECT_LT(orient3d(a, c, b, d), 0.0);
  // Coplanar points: exactly zero via the exact path.
  EXPECT_EQ(orient3d(a, b, c, Vec3{0.25, 0.25, 0}), 0.0);
}

TEST(Orient3d, ExactOnNearDegenerate) {
  // A point displaced off a plane by one ulp must be classified
  // consistently with the sign of the displacement.
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 1, 0};
  const real tiny = std::ldexp(1.0, -52);
  EXPECT_GT(orient3d(a, b, c, Vec3{0.3, 0.3, tiny}), 0.0);
  EXPECT_LT(orient3d(a, b, c, Vec3{0.3, 0.3, -tiny}), 0.0);
}

TEST(Orient3d, TranslationInvarianceOfSign) {
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    Vec3 p[4];
    for (auto& v : p) {
      v = {rng.next_real(), rng.next_real(), rng.next_real()};
    }
    const int s = sign_of(orient3d(p[0], p[1], p[2], p[3]));
    const Vec3 shift{1e6, -2e6, 3e6};
    const int s2 = sign_of(orient3d(p[0] + shift, p[1] + shift, p[2] + shift,
                                    p[3] + shift));
    EXPECT_EQ(s, s2);
  }
}

TEST(Insphere, SignConvention) {
  // Unit tetrahedron, positively oriented; its circumsphere contains the
  // centroid and not a faraway point.
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 1, 0}, d{0, 0, 1};
  ASSERT_GT(orient3d(a, b, c, d), 0.0);
  EXPECT_GT(insphere(a, b, c, d, Vec3{0.25, 0.25, 0.25}), 0.0);
  EXPECT_LT(insphere(a, b, c, d, Vec3{10, 10, 10}), 0.0);
}

TEST(Insphere, CospherePointIsExactZero) {
  // Five points of a regular octahedron share a circumsphere.
  const Vec3 a{1, 0, 0}, b{-1, 0, 0}, c{0, 1, 0}, d{0, 0, 1}, e{0, -1, 0};
  ASSERT_NE(orient3d(a, b, c, d), 0.0);
  // Reorder to a positive tetrahedron before testing.
  if (orient3d(a, b, c, d) > 0) {
    EXPECT_EQ(insphere(a, b, c, d, e), 0.0);
  } else {
    EXPECT_EQ(insphere(a, c, b, d, e), 0.0);
  }
}

TEST(Insphere, AgreesWithDistanceToCircumcenter) {
  // Tetrahedron with known circumcenter: corner of a cube plus axes.
  const Vec3 a{0, 0, 0}, b{2, 0, 0}, c{0, 2, 0}, d{0, 0, 2};
  const Vec3 center{1, 1, 1};
  const real radius2 = norm2(a - center);
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const Vec3 p{4 * rng.next_real() - 1, 4 * rng.next_real() - 1,
                 4 * rng.next_real() - 1};
    const real inside = radius2 - norm2(p - center);
    if (std::fabs(inside) < 1e-9) continue;  // too close to the sphere
    EXPECT_EQ(sign_of(insphere(a, b, c, d, p)), sign_of(inside))
        << "point " << p.x << "," << p.y << "," << p.z;
  }
}

TEST(Predicates, ExactFallbackCounterAdvances) {
  reset_predicate_stats();
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 1, 0};
  (void)orient3d(a, b, c, Vec3{0.5, 0.5, 0});  // degenerate: exact path
  EXPECT_GE(predicate_stats().orient3d_exact, 1);
}

TEST(TriangleNormal, RightHandRule) {
  const Vec3 n = triangle_normal({0, 0, 0}, {1, 0, 0}, {0, 1, 0});
  EXPECT_NEAR(n.z, 1.0, 1e-15);
}

TEST(TetVolume, UnitTet) {
  EXPECT_NEAR(signed_tet_volume({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}),
              1.0 / 6.0, 1e-15);
}

}  // namespace
}  // namespace prom
