// Machine model for the §6 performance studies (DESIGN.md substitution 1).
// The host for this reproduction is a single workstation, so wall-clock
// parallel speedups cannot be measured; instead, every virtual rank's flop
// count and message traffic are *measured*, and a machine model calibrated
// to the paper's hardware (332 MHz PowerPC 604e nodes: 36 Mflop/s sparse
// matrix-vector products, MPI-over-switch latencies of the era) converts
// them into modeled times. Iteration counts, flops/unknown, and load
// balance — the terms eIs, eFs and l of §6 — are real measurements; only
// the flop-rate/communication term ec uses the model.
#pragma once

#include <cstdint>
#include <vector>

#include "parx/runtime.h"

namespace prom::perf {

struct MachineModel {
  /// Sustained Mflop/s of one processor in sparse kernels (paper: 36
  /// Mflop/s MatVec, 34 Mflop/s inside the full MG solve).
  double flops_per_sec = 34e6;
  /// Point-to-point message latency (seconds); mid-90s switched SMP
  /// cluster class.
  double latency = 35e-6;
  /// Point-to-point bandwidth (bytes/second).
  double bandwidth = 120e6;

  /// Modeled time for one rank's recorded work and traffic.
  double rank_time(std::int64_t flops, std::int64_t messages,
                   std::int64_t bytes) const {
    return static_cast<double>(flops) / flops_per_sec +
           static_cast<double>(messages) * latency +
           static_cast<double>(bytes) / bandwidth;
  }
};

/// Aggregated view of one SPMD phase across ranks.
struct PhaseStats {
  std::vector<parx::TrafficStats> per_rank;

  std::int64_t total_flops() const;
  std::int64_t max_flops() const;
  double average_flops() const;
  std::int64_t total_messages() const;
  std::int64_t total_bytes() const;

  /// Load balance l = average/maximum flops (§6).
  double load_balance() const;

  /// Modeled parallel execution time: max over ranks of the modeled
  /// per-rank time (bulk-synchronous approximation).
  double modeled_time(const MachineModel& m) const;

  /// Modeled aggregate flop rate: total flops / modeled time.
  double modeled_flop_rate(const MachineModel& m) const;
};

}  // namespace prom::perf
