#include "dla/dist_vec.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "la/vec.h"

namespace prom::dla {

int RowDist::owner(idx gid) const {
  PROM_CHECK(gid >= 0 && gid < global_size());
  const auto it = std::upper_bound(offsets.begin(), offsets.end(), gid);
  return static_cast<int>(it - offsets.begin()) - 1;
}

RowDist RowDist::block(idx n, int nranks) {
  RowDist d;
  d.offsets.resize(static_cast<std::size_t>(nranks) + 1);
  for (int r = 0; r <= nranks; ++r) {
    d.offsets[r] = static_cast<idx>(static_cast<nnz_t>(n) * r / nranks);
  }
  return d;
}

RowDist RowDist::from_sorted_owners(std::span<const idx> owner_of,
                                    int nranks) {
  RowDist d;
  d.offsets.assign(static_cast<std::size_t>(nranks) + 1, 0);
  for (std::size_t i = 0; i < owner_of.size(); ++i) {
    PROM_CHECK(owner_of[i] >= 0 && owner_of[i] < nranks);
    if (i > 0) PROM_CHECK_MSG(owner_of[i] >= owner_of[i - 1],
                              "owners must be non-decreasing");
    d.offsets[owner_of[i] + 1]++;
  }
  for (int r = 0; r < nranks; ++r) d.offsets[r + 1] += d.offsets[r];
  return d;
}

real dist_dot(parx::Comm& comm, std::span<const real> a,
              std::span<const real> b) {
  return comm.allreduce_sum(la::dot(a, b));
}

real dist_nrm2(parx::Comm& comm, std::span<const real> a) {
  return std::sqrt(dist_dot(comm, a, a));
}

std::vector<real> dist_gather_all(parx::Comm& comm, const RowDist& dist,
                                  std::span<const real> local) {
  PROM_CHECK(static_cast<idx>(local.size()) == dist.local_size(comm.rank()));
  const auto parts =
      comm.allgatherv(std::vector<real>(local.begin(), local.end()));
  std::vector<real> full(static_cast<std::size_t>(dist.global_size()));
  for (int r = 0; r < dist.nranks(); ++r) {
    PROM_CHECK(static_cast<idx>(parts[r].size()) == dist.local_size(r));
    std::copy(parts[r].begin(), parts[r].end(), full.begin() + dist.begin(r));
  }
  return full;
}

la::MultiVec dist_gather_all_mv(parx::Comm& comm, const RowDist& dist,
                                const la::MultiVec& local) {
  const int rank = comm.rank();
  const int k = local.cols();
  PROM_CHECK(local.rows() == dist.local_size(rank));
  // Ship the whole column-major local block in one message per rank.
  const auto parts = comm.allgatherv(std::vector<real>(
      local.data(), local.data() + static_cast<std::size_t>(local.rows()) * k));
  la::MultiVec full(dist.global_size(), k);
  for (int r = 0; r < dist.nranks(); ++r) {
    const idx nr = dist.local_size(r);
    PROM_CHECK(static_cast<idx>(parts[r].size()) == nr * k);
    for (int j = 0; j < k; ++j) {
      std::copy(parts[r].begin() + static_cast<std::size_t>(j) * nr,
                parts[r].begin() + static_cast<std::size_t>(j + 1) * nr,
                full.col(j).begin() + dist.begin(r));
    }
  }
  return full;
}

}  // namespace prom::dla
