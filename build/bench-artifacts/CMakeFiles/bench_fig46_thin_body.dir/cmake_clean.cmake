file(REMOVE_RECURSE
  "../bench/bench_fig46_thin_body"
  "../bench/bench_fig46_thin_body.pdb"
  "CMakeFiles/bench_fig46_thin_body.dir/bench_fig46_thin_body.cpp.o"
  "CMakeFiles/bench_fig46_thin_body.dir/bench_fig46_thin_body.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig46_thin_body.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
