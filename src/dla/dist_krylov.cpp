#include "dla/dist_krylov.h"

#include <cmath>

#include "common/error.h"
#include "dla/dist_vec.h"
#include "la/vec.h"

namespace prom::dla {

la::KrylovResult dist_pcg(parx::Comm& comm, const DistOperator& a,
                          const DistOperator* m, std::span<const real> b_local,
                          std::span<real> x_local,
                          const la::KrylovOptions& opts) {
  const idx n = a.local_n();
  PROM_CHECK(static_cast<idx>(b_local.size()) == n &&
             static_cast<idx>(x_local.size()) == n);

  la::KrylovResult result;
  std::vector<real> r(n), z(n), p(n), ap(n);

  const real bnorm = dist_nrm2(comm, b_local);
  if (opts.track_history) result.history.push_back(bnorm);
  if (bnorm == real{0}) {
    la::set_all(x_local, 0);
    result.converged = true;
    return result;
  }

  a.apply(comm, x_local, r);
  la::waxpby(1, b_local, -1, r, r);
  real rnorm = dist_nrm2(comm, r);
  if (rnorm / bnorm <= opts.rtol) {
    result.converged = true;
    result.final_relres = rnorm / bnorm;
    return result;
  }

  if (m != nullptr) {
    m->apply(comm, r, z);
  } else {
    la::copy(r, z);
  }
  la::copy(z, p);
  real rz = dist_dot(comm, r, z);

  for (int it = 1; it <= opts.max_iters; ++it) {
    a.apply(comm, p, ap);
    const real pap = dist_dot(comm, p, ap);
    if (!std::isfinite(pap) || pap <= 0) {
      result.breakdown = true;
      break;
    }
    const real alpha = rz / pap;
    la::axpy(alpha, p, x_local);
    la::axpy(-alpha, ap, r);
    rnorm = dist_nrm2(comm, r);
    if (opts.track_history) result.history.push_back(rnorm);
    result.iterations = it;
    if (rnorm / bnorm <= opts.rtol) {
      result.converged = true;
      break;
    }
    if (m != nullptr) {
      m->apply(comm, r, z);
    } else {
      la::copy(r, z);
    }
    const real rz_new = dist_dot(comm, r, z);
    const real beta = rz_new / rz;
    rz = rz_new;
    la::aypx(beta, z, p);
  }
  result.final_relres = rnorm / bnorm;
  return result;
}

}  // namespace prom::dla
