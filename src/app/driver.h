// "Athena" — the end-to-end experiment driver of Figure 8: generate the
// model problem, partition it, create the fine grid (assembly), build the
// grid hierarchy (mesh setup), build the Galerkin operators (matrix
// setup), and run the solve phase on virtual ranks, with per-phase wall
// times and the §6 flop/traffic measurements the benches print.
#pragma once

#include <vector>

#include <string>

#include "common/config.h"
#include "fem/assembly.h"
#include "mesh/generate.h"
#include "mg/hierarchy.h"
#include "mg/solver.h"
#include "nonlinear/newton.h"
#include "obs/report.h"
#include "perf/efficiency.h"
#include "perf/model.h"

namespace prom::app {

/// A ready-to-solve model problem (mesh + constraints + materials).
struct ModelProblem {
  mesh::Mesh mesh;
  fem::DofMap dofmap{0};
  std::vector<fem::Material> materials;
};

/// The paper's §7 concentric-spheres problem: symmetric BCs on the three
/// cut faces, uniform crushing displacement on the top face.
ModelProblem make_sphere_problem(const mesh::SphereInCubeParams& params,
                                 real crush);

/// A homogeneous elastic cube: bottom clamped, top pressed down; the
/// simple scalable problem used by tests and the quickstart.
ModelProblem make_box_problem(idx n, real crush = 0.05,
                              fem::Material material = {});

struct LinearStudyConfig {
  int nranks = 2;
  real rtol = 1e-4;             ///< the paper's first-linear-solve tolerance
  int max_iters = 200;
  mg::MgOptions mg;
  mg::CycleKind cycle = mg::CycleKind::kFmg;
  /// Solve-phase matrix format (PROM_MATRIX=csr|bsr3|mf by default):
  /// kBsr3 re-blocks every level operator into 3x3 node blocks and ships
  /// whole node blocks in the ghost exchange; kMf applies the finest
  /// level matrix-free from batched element data (coarse levels stay
  /// assembled). Iteration counts and residual histories match kCsr to
  /// rounding in both cases.
  mg::MatrixFormat format = mg::matrix_format_from_env();
  /// When non-empty, the study's obs report (report.json schema) is
  /// written here after the run.
  std::string report_path;
};

/// Everything Figures 10-12 and Table 2 need from one linear solve.
struct LinearStudyReport {
  idx unknowns = 0;
  int ranks = 0;
  int levels = 0;
  int iterations = 0;
  bool converged = false;

  // Wall-clock phase breakdown on the host (Figure 10's phases). Mesh
  // setup is serial (grids only); matrix setup and solve run distributed
  // on the virtual ranks.
  double wall_partition = 0;     ///< Athena: partitioning
  double wall_fine_grid = 0;     ///< FEAP: fine grid creation (assembly)
  double wall_mesh_setup = 0;    ///< Prometheus: coarse grid construction
  double wall_matrix_setup = 0;  ///< Epimetheus: distributed RAR^T + smoothers
  double wall_solve = 0;         ///< PETSc: the actual MG-PCG solve

  // Per-phase measurements across virtual ranks (§6).
  perf::PhaseStats setup_phase;  ///< distributed matrix setup
  /// This-rank flops spent in the Galerkin triple products alone, maxed
  /// over ranks (the matrix-setup scaling quantity).
  std::int64_t max_rank_galerkin_flops = 0;
  perf::PhaseStats solve_phase;
  double modeled_solve_time = 0;   ///< machine-model seconds
  double modeled_mflops = 0;       ///< total modeled Mflop/s in MG iterations

  /// The full observability report of the study's tracing window (phases,
  /// level-resolved cycle components, metrics). Every wall/traffic field
  /// above is derived from it — there is no separate stopwatch path.
  obs::Report obs;

  perf::RunMeasurement measurement() const;
};

/// Runs the distributed first linear solve of `problem` on virtual ranks.
LinearStudyReport run_linear_study(const ModelProblem& problem,
                                   const LinearStudyConfig& config);

/// The scaled-problem series of §7 (~constant work per rank): returns the
/// sphere parameters and rank count for step `i` of the series, starting
/// from `base_ranks` ranks at `layers_per_shell` == 1.
struct ScaledCase {
  mesh::SphereInCubeParams params;
  int ranks;
};
std::vector<ScaledCase> scaled_series(int num_cases, int base_ranks = 2);

}  // namespace prom::app
