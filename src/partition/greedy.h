// Greedy graph-growing partitioner with boundary refinement — the METIS
// substitute used for (a) the block-Jacobi smoother blocks ("6 blocks for
// every 1,000 unknowns ... constructed with METIS", §7.2) and (b) graph
// partitions where coordinates are unavailable.
#pragma once

#include <span>
#include <vector>

#include "common/config.h"
#include "graph/graph.h"

namespace prom::partition {

struct GreedyOptions {
  /// Passes of boundary refinement (move a boundary vertex to a
  /// neighboring part when it reduces the edge cut without unbalancing).
  int refine_passes = 2;
  /// Allowed part size as a multiple of the average (1.05 = 5% slack).
  double imbalance = 1.05;
};

/// Partitions the graph into `nparts` connected-ish parts by repeated BFS
/// growth from peripheral seeds, followed by cut refinement.
std::vector<idx> greedy_graph_partition(const graph::Graph& g, idx nparts,
                                        const GreedyOptions& opts = {});

/// Number of edges crossing between different parts.
nnz_t edge_cut(const graph::Graph& g, std::span<const idx> part);

/// Builds the paper's block-Jacobi blocks: ceil(6 * n / 1000) blocks of the
/// matrix-adjacency graph (at least `min_blocks`).
std::vector<std::vector<idx>> block_jacobi_blocks(const graph::Graph& g,
                                                  idx blocks_per_1000 = 6,
                                                  idx min_blocks = 1);

}  // namespace prom::partition
