file(REMOVE_RECURSE
  "CMakeFiles/test_fem_material.dir/test_fem_material.cpp.o"
  "CMakeFiles/test_fem_material.dir/test_fem_material.cpp.o.d"
  "test_fem_material"
  "test_fem_material.pdb"
  "test_fem_material[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fem_material.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
