# Empty compiler generated dependencies file for test_la_vec.
# This may be replaced when dependencies are built.
