# Empty dependencies file for test_la_direct.
# This may be replaced when dependencies are built.
