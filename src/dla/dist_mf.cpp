#include "dla/dist_mf.h"

#include <algorithm>

#include "common/error.h"
#include "obs/trace.h"

namespace prom::dla {

DistMf DistMf::build(parx::Comm& comm, const MfProblem& prob,
                     const DistCsr& a, std::span<const idx> perm) {
  PROM_CHECK(prob.mesh != nullptr && prob.materials != nullptr &&
             prob.dofmap != nullptr);
  const int rank = comm.rank();
  const RowDist& cols = a.col_dist();
  const idx c0 = cols.begin(rank);
  const idx n_own = cols.local_size(rank);
  // The operator is square on the fine level; rows and columns must share
  // one distribution for the owned-prefix copy in spmv to be the identity.
  PROM_CHECK(a.row_dist().begin(rank) == c0 && a.local_rows() == n_own);
  PROM_CHECK(static_cast<idx>(perm.size()) == cols.global_size());

  // perm[global] = serial free index; the element loop hands us serial
  // free indices, so invert once.
  std::vector<idx> iperm(perm.size());
  for (idx g = 0; g < static_cast<idx>(perm.size()); ++g) iperm[perm[g]] = g;

  const std::vector<idx>& ghosts = a.ghost_cols();
  const auto slot_of = [&](idx g) -> idx {
    if (g >= c0 && g < c0 + n_own) return g - c0;
    const auto it = std::lower_bound(ghosts.begin(), ghosts.end(), g);
    // Every non-owned free dof of a relevant element is a structural
    // column of the assembled fine matrix (element assembly keeps zeros),
    // hence one of its ghost columns.
    PROM_CHECK(it != ghosts.end() && *it == g);
    return n_own + static_cast<idx>(it - ghosts.begin());
  };

  const mesh::Mesh& mesh = *prob.mesh;
  const fem::DofMap& dofmap = *prob.dofmap;
  const int nen = mesh::nodes_per_cell(mesh.kind());

  // This rank's relevant elements: every element with at least one owned
  // free dof (ascending global cell id, as MfCore requires).
  std::vector<idx> elements;
  for (idx e = 0; e < mesh.num_cells(); ++e) {
    bool owned = false;
    const auto cell = mesh.cell(e);
    for (int ai = 0; ai < nen && !owned; ++ai) {
      for (int c = 0; c < kDofPerVertex && !owned; ++c) {
        const idx f = dofmap.free_index(cell[ai] * kDofPerVertex + c);
        if (f == kInvalidIdx) continue;
        const idx g = iperm[f];
        owned = g >= c0 && g < c0 + n_own;
      }
    }
    if (owned) elements.push_back(e);
  }

  DistMf mf;
  mf.nlocal_ = n_own;
  mf.a_ = &a;
  mf.core_ = fem::MfCore::build(
      mesh, *prob.materials, prob.bbar, elements,
      /*num_slots=*/n_own + a.num_ghosts(), /*num_rows=*/n_own,
      /*first_ghost_slot=*/n_own,
      [&](idx e, int ai, int c) -> fem::MfCore::Dof {
        const idx f = dofmap.free_index(mesh.cell(e)[ai] * kDofPerVertex + c);
        if (f == kInvalidIdx) return {};  // constrained: reads 0, drops
        const idx g = iperm[f];
        const idx slot = slot_of(g);
        return {slot, slot < n_own ? slot : kInvalidIdx};
      });
  mf.x_ext_.assign(static_cast<std::size_t>(n_own) + a.num_ghosts(), 0);
  return mf;
}

void DistMf::spmv(parx::Comm& comm, std::span<const real> x_local,
                  std::span<real> y_local) const {
  PROM_CHECK(static_cast<idx>(x_local.size()) == nlocal_ &&
             static_cast<idx>(y_local.size()) == nlocal_);
  const obs::Span apply_span("mf.apply");

  const HaloPlan& plan = a_->halo_plan();
  plan.post(comm, x_local);
  std::copy(x_local.begin(), x_local.end(), x_ext_.begin());
  if (halo_mode() == HaloMode::kOverlap) {
    {
      const obs::Span span("halo.interior");
      core_.pass_a(x_ext_, 0, core_.num_interior_batches());
    }
    plan.finish(comm, x_ext_);
    const obs::Span span("halo.boundary");
    core_.pass_a(x_ext_, core_.num_interior_batches(), core_.num_batches());
  } else {
    plan.finish_rank_order(comm, x_ext_);
    core_.pass_a(x_ext_, 0, core_.num_batches());
  }
  core_.pass_b_apply(y_local);
}

void DistMf::residual(parx::Comm& comm, std::span<const real> b_local,
                      std::span<const real> x_local,
                      std::span<real> r_local) const {
  PROM_CHECK(static_cast<idx>(x_local.size()) == nlocal_ &&
             static_cast<idx>(b_local.size()) == nlocal_ &&
             static_cast<idx>(r_local.size()) == nlocal_);
  const obs::Span apply_span("mf.apply");

  const HaloPlan& plan = a_->halo_plan();
  plan.post(comm, x_local);
  std::copy(x_local.begin(), x_local.end(), x_ext_.begin());
  if (halo_mode() == HaloMode::kOverlap) {
    {
      const obs::Span span("halo.interior");
      core_.pass_a(x_ext_, 0, core_.num_interior_batches());
    }
    plan.finish(comm, x_ext_);
    const obs::Span span("halo.boundary");
    core_.pass_a(x_ext_, core_.num_interior_batches(), core_.num_batches());
  } else {
    plan.finish_rank_order(comm, x_ext_);
    core_.pass_a(x_ext_, 0, core_.num_batches());
  }
  core_.pass_b_residual(b_local, r_local);
}

void DistMf::spmm(parx::Comm& comm, const la::MultiVec& x_local,
                  la::MultiVec& y_local) const {
  const int k = x_local.cols();
  PROM_CHECK(x_local.rows() == nlocal_ && y_local.rows() == nlocal_ &&
             y_local.cols() == k);
  const obs::Span apply_span("mf.apply");

  const idx next = nlocal_ + a_->num_ghosts();
  if (x_ext_mv_.rows() != next || x_ext_mv_.cols() != k) {
    x_ext_mv_.resize(next, k);
  }
  const HaloPlan& plan = a_->halo_plan();
  plan.post_mv(comm, x_local);
  for (int j = 0; j < k; ++j) {
    std::copy(x_local.col(j).begin(), x_local.col(j).end(),
              x_ext_mv_.col(j).begin());
  }
  // One per-element force buffer means the element passes are per column;
  // only column 0's Pass A can overlap the (single, blocked) exchange.
  if (halo_mode() == HaloMode::kOverlap) {
    {
      const obs::Span span("halo.interior");
      core_.pass_a(x_ext_mv_.col(0), 0, core_.num_interior_batches());
    }
    plan.finish_mv(comm, x_ext_mv_);
    {
      const obs::Span span("halo.boundary");
      core_.pass_a(x_ext_mv_.col(0), core_.num_interior_batches(),
                   core_.num_batches());
    }
    core_.pass_b_apply(y_local.col(0));
    for (int j = 1; j < k; ++j) {
      core_.pass_a(x_ext_mv_.col(j), 0, core_.num_batches());
      core_.pass_b_apply(y_local.col(j));
    }
  } else {
    plan.finish_rank_order_mv(comm, x_ext_mv_);
    for (int j = 0; j < k; ++j) {
      core_.pass_a(x_ext_mv_.col(j), 0, core_.num_batches());
      core_.pass_b_apply(y_local.col(j));
    }
  }
}

void DistMf::residual_mv(parx::Comm& comm, const la::MultiVec& b_local,
                         const la::MultiVec& x_local,
                         la::MultiVec& r_local) const {
  const int k = x_local.cols();
  PROM_CHECK(x_local.rows() == nlocal_ && b_local.rows() == nlocal_ &&
             r_local.rows() == nlocal_ && b_local.cols() == k &&
             r_local.cols() == k);
  const obs::Span apply_span("mf.apply");

  const idx next = nlocal_ + a_->num_ghosts();
  if (x_ext_mv_.rows() != next || x_ext_mv_.cols() != k) {
    x_ext_mv_.resize(next, k);
  }
  const HaloPlan& plan = a_->halo_plan();
  plan.post_mv(comm, x_local);
  for (int j = 0; j < k; ++j) {
    std::copy(x_local.col(j).begin(), x_local.col(j).end(),
              x_ext_mv_.col(j).begin());
  }
  if (halo_mode() == HaloMode::kOverlap) {
    {
      const obs::Span span("halo.interior");
      core_.pass_a(x_ext_mv_.col(0), 0, core_.num_interior_batches());
    }
    plan.finish_mv(comm, x_ext_mv_);
    {
      const obs::Span span("halo.boundary");
      core_.pass_a(x_ext_mv_.col(0), core_.num_interior_batches(),
                   core_.num_batches());
    }
    core_.pass_b_residual(b_local.col(0), r_local.col(0));
    for (int j = 1; j < k; ++j) {
      core_.pass_a(x_ext_mv_.col(j), 0, core_.num_batches());
      core_.pass_b_residual(b_local.col(j), r_local.col(j));
    }
  } else {
    plan.finish_rank_order_mv(comm, x_ext_mv_);
    for (int j = 0; j < k; ++j) {
      core_.pass_a(x_ext_mv_.col(j), 0, core_.num_batches());
      core_.pass_b_residual(b_local.col(j), r_local.col(j));
    }
  }
}

}  // namespace prom::dla
