# Empty compiler generated dependencies file for test_dla.
# This may be replaced when dependencies are built.
