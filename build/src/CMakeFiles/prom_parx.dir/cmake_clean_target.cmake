file(REMOVE_RECURSE
  "libprom_parx.a"
)
