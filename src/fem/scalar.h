// Scalar (block-size-1) equation assembly: one dof per vertex, P1/trilinear
// discretization of
//
//   -div(K grad u) + v . grad u + c u = f
//
// with per-element coefficient callbacks — the diffusion tensor K covers
// jump-coefficient Poisson problems, the velocity field v (with optional
// SUPG stabilization) covers advection–diffusion. The assembled free-dof
// operator is a plain la::Csr that the same multigrid stack consumes at
// block size 1 (mg::Hierarchy::build_scalar).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "common/config.h"
#include "geom/mat3.h"
#include "geom/vec3.h"
#include "la/csr.h"
#include "mesh/mesh.h"

namespace prom::fem {

/// Maps a vertex to its (single) global dof and tracks Dirichlet
/// constraints with prescribed values — the scalar counterpart of DofMap,
/// with vertex == dof so no component indexing.
class ScalarDofMap {
 public:
  explicit ScalarDofMap(idx num_vertices);

  idx num_vertices() const { return nv_; }
  idx num_dofs() const { return nv_; }

  /// Prescribes the value at `vertex`.
  void fix(idx vertex, real value);
  void fix_all(std::span<const idx> vertices, real value = 0);

  bool is_constrained(idx vertex) const { return constrained_[vertex] != 0; }
  real bc_value(idx vertex) const { return bc_value_[vertex]; }

  /// Builds the free-dof numbering; call after all fix() calls.
  void finalize();

  idx num_free() const { return static_cast<idx>(free_dofs_.size()); }
  const std::vector<idx>& free_dofs() const { return free_dofs_; }
  /// Free index of `vertex` or kInvalidIdx if constrained.
  idx free_index(idx vertex) const { return free_index_[vertex]; }

  /// Expands a free-dof vector to a full (per-vertex) vector, inserting
  /// `bc_scale * bc_value` at constrained vertices.
  std::vector<real> full_from_free(std::span<const real> free_values,
                                   real bc_scale = 1) const;

  /// Restricts a full vector to the free dofs.
  std::vector<real> free_from_full(std::span<const real> full_values) const;

 private:
  idx nv_;
  std::vector<char> constrained_;
  std::vector<real> bc_value_;
  std::vector<idx> free_index_;
  std::vector<idx> free_dofs_;
};

/// Coefficient callbacks for the scalar equation, evaluated per quadrature
/// point with the owning cell id (jump coefficients key off the cell or
/// its material, manufactured solutions off the position). `diffusion` is
/// required; a null `velocity` / `reaction` / `source` means zero.
struct ScalarCoefficients {
  std::function<Mat3(idx cell, const Vec3& x)> diffusion;
  std::function<Vec3(idx cell, const Vec3& x)> velocity;
  std::function<real(idx cell, const Vec3& x)> reaction;
  std::function<real(idx cell, const Vec3& x)> source;
  /// Streamline-upwind Petrov–Galerkin stabilization: adds the
  /// residual-weighted tau (v.grad w) test-function term with the standard
  /// optimal tau = h/(2|v|) (coth Pe - 1/Pe). Consistent (the exact
  /// solution still satisfies the discrete system), so MMS convergence
  /// orders are preserved; essential once the element Peclet number
  /// exceeds 1, where plain Galerkin oscillates.
  bool supg = false;
};

struct ScalarAssembly {
  la::Csr stiffness;            ///< free x free operator
  std::vector<real> load;       ///< source load vector on free dofs
  std::vector<real> bc_coupling;  ///< K_fc * u_c on free dofs
};

/// Assembles the scalar operator, the source load, and the Dirichlet
/// coupling on the free dofs. TET4 uses the 4-point rule, HEX8 the 2x2x2
/// rule. Deterministic for any kernel-thread count (same fixed cell
/// chunking + chunk-order merge as FeProblem::assemble).
ScalarAssembly assemble_scalar(const mesh::Mesh& mesh,
                               const ScalarDofMap& dofmap,
                               const ScalarCoefficients& coeffs);

/// Convenience: the linear system K_ff u_f = load - K_fc u_c.
struct ScalarSystem {
  la::Csr stiffness;
  std::vector<real> rhs;
};
ScalarSystem assemble_scalar_system(const mesh::Mesh& mesh,
                                    const ScalarDofMap& dofmap,
                                    const ScalarCoefficients& coeffs);

/// L2-norm error ||u_h - u_exact|| over the mesh, quadrature of the same
/// order as assembly. `u_full` is the per-vertex solution (constrained
/// values inserted). Test/MMS helper.
real scalar_l2_error(const mesh::Mesh& mesh, std::span<const real> u_full,
                     const std::function<real(const Vec3&)>& exact);

}  // namespace prom::fem
