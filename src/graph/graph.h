// Undirected graphs in CSR adjacency form. These are the graphs the MIS
// coarsener operates on: the vertex-connectivity graph of a finite element
// mesh, possibly modified by the feature heuristics of §4.6.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "common/config.h"

namespace prom::graph {

class Graph {
 public:
  Graph() = default;

  /// Builds a simple undirected graph from an edge list; duplicate edges
  /// and self-loops are dropped, and both directions are stored.
  static Graph from_edges(idx num_vertices,
                          std::span<const std::pair<idx, idx>> edges);

  /// Builds from pre-validated CSR adjacency (must already be symmetric,
  /// sorted, self-loop free).
  static Graph from_csr(idx num_vertices, std::vector<nnz_t> xadj,
                        std::vector<idx> adj);

  idx num_vertices() const { return nv_; }
  nnz_t num_edges() const { return static_cast<nnz_t>(adj_.size()) / 2; }

  idx degree(idx v) const {
    return static_cast<idx>(xadj_[v + 1] - xadj_[v]);
  }

  std::span<const idx> neighbors(idx v) const {
    return {adj_.data() + xadj_[v],
            static_cast<std::size_t>(xadj_[v + 1] - xadj_[v])};
  }

  bool has_edge(idx u, idx v) const;

  /// True if the adjacency structure is symmetric (validity check).
  bool is_symmetric() const;

  const std::vector<nnz_t>& xadj() const { return xadj_; }
  const std::vector<idx>& adj() const { return adj_; }

 private:
  idx nv_ = 0;
  std::vector<nnz_t> xadj_{0};
  std::vector<idx> adj_;
};

/// True if `set` is an independent set of g.
bool is_independent_set(const Graph& g, std::span<const idx> set);

/// True if `set` is a *maximal* independent set of g.
bool is_maximal_independent_set(const Graph& g, std::span<const idx> set);

}  // namespace prom::graph
