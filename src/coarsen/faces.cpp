#include "coarsen/faces.h"

#include <deque>

#include "common/error.h"

namespace prom::coarsen {

FaceIdResult identify_faces(std::span<const mesh::Facet> facets,
                            const graph::Graph& facet_adj,
                            const FaceIdOptions& opts) {
  PROM_CHECK(facet_adj.num_vertices() == static_cast<idx>(facets.size()));
  FaceIdResult result;
  result.face_id.assign(facets.size(), kInvalidIdx);

  for (idx seed = 0; seed < static_cast<idx>(facets.size()); ++seed) {
    if (result.face_id[seed] != kInvalidIdx) continue;
    const Vec3 root_norm = facets[seed].normal;
    const idx current_id = result.face_id[seed] = result.num_faces++;
    std::deque<idx> queue{seed};
    while (!queue.empty()) {
      const idx f = queue.front();
      queue.pop_front();
      for (idx f1 : facet_adj.neighbors(f)) {
        if (result.face_id[f1] != kInvalidIdx) continue;
        if (dot(root_norm, facets[f1].normal) > opts.tol &&
            dot(facets[f].normal, facets[f1].normal) > opts.tol) {
          result.face_id[f1] = current_id;
          queue.push_back(f1);
        }
      }
    }
  }
  return result;
}

}  // namespace prom::coarsen
