# Empty dependencies file for bench_fig13_nonlinear.
# This may be replaced when dependencies are built.
