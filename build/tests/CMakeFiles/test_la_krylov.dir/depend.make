# Empty dependencies file for test_la_krylov.
# This may be replaced when dependencies are built.
