#include "coarsen/parallel_mis.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/error.h"
#include "graph/mis.h"
#include "graph/order.h"

namespace prom::coarsen {
namespace {

constexpr int kTagStates = 101;

enum : idx { kUndone = 0, kSelected = 1, kDeleted = 2 };

struct StateMsg {
  idx vertex;
  idx state;
};

}  // namespace

ParallelMisResult parallel_mis(parx::Comm& comm, const graph::Graph& g,
                               std::span<const idx> owner,
                               const ParallelMisOptions& opts) {
  const idx n = g.num_vertices();
  const int me = comm.rank();
  PROM_CHECK(static_cast<idx>(owner.size()) == n);
  PROM_CHECK(opts.ranks.empty() ||
             static_cast<idx>(opts.ranks.size()) == n);

  auto rank_of = [&](idx v) -> idx {
    return opts.ranks.empty() ? 0 : opts.ranks[v];
  };

  // Traversal: my owned vertices, in the global heuristic order, stably
  // sorted by decreasing classification rank (§4.2: "the order in which
  // each processor traverses the local vertex list can be governed by our
  // heuristics").
  std::vector<idx> traversal;
  if (opts.order.empty()) {
    for (idx v = 0; v < n; ++v) {
      if (owner[v] == me) traversal.push_back(v);
    }
  } else {
    PROM_CHECK(static_cast<idx>(opts.order.size()) == n);
    for (idx v : opts.order) {
      if (owner[v] == me) traversal.push_back(v);
    }
  }
  std::stable_sort(traversal.begin(), traversal.end(),
                   [&](idx a, idx b) { return rank_of(a) > rank_of(b); });

  // Boundary book-keeping: which ranks hold a ghost copy of each of my
  // owned boundary vertices, and the set of neighbor ranks.
  std::map<idx, std::vector<int>> subscribers;  // owned vertex -> ranks
  std::set<int> neighbor_ranks;
  for (idx v = 0; v < n; ++v) {
    if (owner[v] != me) continue;
    std::set<int> subs;
    for (idx u : g.neighbors(v)) {
      if (owner[u] != me) {
        subs.insert(owner[u]);
        neighbor_ranks.insert(owner[u]);
      }
    }
    if (!subs.empty()) {
      subscribers[v] = std::vector<int>(subs.begin(), subs.end());
    }
  }

  std::vector<idx> state(static_cast<std::size_t>(n), kUndone);

  // The §4.2 selection test.
  auto selectable = [&](idx v) {
    for (idx u : g.neighbors(v)) {
      if (state[u] == kDeleted) continue;
      if (state[u] == kSelected) return false;  // v must become deleted
      if (rank_of(v) > rank_of(u)) continue;
      if (rank_of(v) == rank_of(u) && me >= owner[u]) continue;
      return false;
    }
    return true;
  };

  auto select_vertex = [&](idx v) {
    state[v] = kSelected;
    for (idx u : g.neighbors(v)) {
      if (state[u] == kUndone) state[u] = kDeleted;
    }
  };

  ParallelMisResult result;
  for (;;) {
    // Local greedy sweep over my undone owned vertices.
    for (idx v : traversal) {
      if (state[v] != kUndone) continue;
      // A neighbor selection may have been learned this round.
      bool has_selected_neighbor = false;
      for (idx u : g.neighbors(v)) {
        if (state[u] == kSelected) {
          has_selected_neighbor = true;
          break;
        }
      }
      if (has_selected_neighbor) {
        state[v] = kDeleted;
        continue;
      }
      if (selectable(v)) select_vertex(v);
    }
    ++result.rounds;

    // Exchange boundary states (fixed, deterministic message pattern).
    std::map<int, std::vector<StateMsg>> outbox;
    for (int r : neighbor_ranks) outbox[r] = {};
    for (const auto& [v, subs] : subscribers) {
      for (int r : subs) outbox[r].push_back({v, state[v]});
    }
    for (const auto& [r, msgs] : outbox) {
      comm.send<StateMsg>(r, kTagStates, msgs);
    }
    for (int r : neighbor_ranks) {
      const std::vector<StateMsg> msgs = comm.recv<StateMsg>(r, kTagStates);
      for (const StateMsg& m : msgs) {
        if (m.state == kSelected && state[m.vertex] != kSelected) {
          state[m.vertex] = kSelected;
          for (idx u : g.neighbors(m.vertex)) {
            if (state[u] == kUndone) state[u] = kDeleted;
          }
        } else if (m.state == kDeleted && state[m.vertex] == kUndone) {
          state[m.vertex] = kDeleted;
        }
      }
    }

    std::int64_t undone = 0;
    for (idx v : traversal) {
      if (state[v] == kUndone) ++undone;
    }
    if (comm.allreduce_sum(undone) == 0) break;
    // Progress guarantee: the globally maximal undone vertex (by rank,
    // owner, traversal position) is always selectable, so at most n rounds.
    PROM_CHECK_MSG(result.rounds <= n + 1, "parallel MIS failed to converge");
  }

  // Gather the global MIS.
  std::vector<idx> mine;
  for (idx v : traversal) {
    if (state[v] == kSelected) mine.push_back(v);
  }
  const auto all = comm.allgatherv(mine);
  for (const auto& part : all) {
    result.selected.insert(result.selected.end(), part.begin(), part.end());
  }
  std::sort(result.selected.begin(), result.selected.end());
  return result;
}

}  // namespace prom::coarsen
