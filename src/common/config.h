// Project-wide fundamental types and configuration constants.
//
// Index conventions (chosen to match the scale of the reproduction while
// keeping sparse storage compact):
//   - `idx`  : 32-bit signed index for vertices, elements, dofs, ranks.
//   - `nnz_t`: 64-bit signed index for positions inside sparse structures.
//   - `real` : double precision everywhere (the exact geometric predicates
//              depend on IEEE-754 binary64 semantics).
#pragma once

#include <cstdint>

namespace prom {

using idx = std::int32_t;
using nnz_t = std::int64_t;
using real = double;

/// Invalid / "none" sentinel for idx-valued fields.
inline constexpr idx kInvalidIdx = -1;

/// Spatial dimension of the whole project (the paper is explicitly 3D).
inline constexpr int kDim = 3;

/// Degrees of freedom per vertex for the solid mechanics problems
/// (displacement in x, y, z).
inline constexpr int kDofPerVertex = 3;

}  // namespace prom
