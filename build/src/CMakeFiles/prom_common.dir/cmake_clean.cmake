file(REMOVE_RECURSE
  "CMakeFiles/prom_common.dir/common/flops.cpp.o"
  "CMakeFiles/prom_common.dir/common/flops.cpp.o.d"
  "CMakeFiles/prom_common.dir/common/log.cpp.o"
  "CMakeFiles/prom_common.dir/common/log.cpp.o.d"
  "CMakeFiles/prom_common.dir/common/timer.cpp.o"
  "CMakeFiles/prom_common.dir/common/timer.cpp.o.d"
  "libprom_common.a"
  "libprom_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prom_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
