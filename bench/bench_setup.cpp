// Matrix-setup rank sweep: the distributed Galerkin setup (Epimetheus,
// dla::DistHierarchy::build) on a fixed box problem at 1/2/4/8 virtual
// ranks. Reports wall time, the max-over-ranks flops spent in the R A R^T
// triple products (the quantity that must shrink as ranks grow now that
// setup is row-distributed), and the setup-phase communication volume.
// Emits BENCH_setup.json in the working directory so the perf trajectory
// tracks setup, not just solve kernels.
//
// Wall time and traffic come out of the obs tracer: each sweep's
// "phase.matrix_setup" spans are aggregated into report.json and the
// table is printed from the parsed file — there is no stopwatch here.
//
// Environment: PROM_BENCH_FULL=1 enlarges the problem; PROM_BENCH_SMOKE=1
// shrinks it (the CI smoke lane).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "app/driver.h"
#include "dla/dist_mg.h"
#include "fem/assembly.h"
#include "mg/hierarchy.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "partition/rcb.h"
#include "parx/runtime.h"

using namespace prom;

int main() {
  const bool full = std::getenv("PROM_BENCH_FULL") != nullptr;
  const bool smoke = std::getenv("PROM_BENCH_SMOKE") != nullptr;
  const idx n = smoke ? 10 : (full ? 24 : 14);
  const app::ModelProblem problem = app::make_box_problem(n);
  fem::FeProblem fe(problem.mesh, problem.materials, problem.dofmap);
  fem::LinearSystem sys = fem::assemble_linear_system(fe);
  const idx unknowns = sys.stiffness.nrows;
  mg::MgOptions mo;
  const mg::Hierarchy grids = mg::Hierarchy::build_grids(
      problem.mesh, problem.dofmap, std::move(sys.stiffness), mo);

  struct Row {
    int ranks;
    double wall;
    std::int64_t max_galerkin_flops;
    std::int64_t bytes;
    std::int64_t messages;
  };
  std::vector<Row> rows;

  obs::Tracer& tracer = obs::Tracer::instance();
  const bool was_tracing = obs::tracing();
  tracer.set_enabled(true);

  std::printf("matrix setup (distributed R A R^T) rank sweep, %d unknowns, "
              "%d levels\n",
              unknowns, grids.num_levels());
  std::printf("%-6s | %-10s %-18s %-12s %-9s\n", "ranks", "setup (s)",
              "max galerkin Mflop", "sent MB", "messages");
  const std::vector<int> sweep = smoke ? std::vector<int>{1, 2, 4}
                                       : std::vector<int>{1, 2, 4, 8};
  for (const int p : sweep) {
    const std::vector<idx> owner =
        partition::rcb_partition(problem.mesh.coords(), p);
    std::vector<std::int64_t> flops(static_cast<std::size_t>(p), 0);
    const std::int64_t mark = obs::Tracer::now_ns();
    parx::Runtime::run(p, [&](parx::Comm& comm) {
      comm.barrier();
      const obs::Span span("phase.matrix_setup");
      const dla::DistHierarchy dist =
          dla::DistHierarchy::build(comm, grids, owner);
      comm.barrier();
      flops[comm.rank()] = dist.galerkin_flops();
    });
    obs::build_report(mark).write_json("report.json");
    const obs::Report rep = obs::Report::read_json("report.json");
    const obs::PhaseEntry* phase = rep.phase("matrix_setup");
    if (phase == nullptr) {
      std::fprintf(stderr, "report.json is missing phase matrix_setup\n");
      return 1;
    }
    Row row{p, phase->seconds(), 0, phase->bytes, phase->messages};
    for (int r = 0; r < p; ++r) {
      row.max_galerkin_flops =
          std::max(row.max_galerkin_flops, flops[static_cast<std::size_t>(r)]);
    }
    rows.push_back(row);
    std::printf("%-6d | %-10.3f %-18.1f %-12.2f %-9lld\n", row.ranks, row.wall,
                static_cast<double>(row.max_galerkin_flops) / 1e6,
                static_cast<double>(row.bytes) / 1e6,
                static_cast<long long>(row.messages));
  }
  tracer.set_enabled(was_tracing);
  std::printf(
      "\nshape claim: the busiest rank's triple-product flops shrink as\n"
      "ranks grow (per-rank setup work scales with local rows); the\n"
      "communication volume is the price of the row-distributed product.\n");

  std::FILE* json = std::fopen("BENCH_setup.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_setup.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"setup\",\n  \"unknowns\": %d,\n"
                     "  \"levels\": %d,\n  \"sweep\": [\n",
               unknowns, grids.num_levels());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(json,
                 "    {\"ranks\": %d, \"wall_setup_s\": %.6f, "
                 "\"max_rank_galerkin_flops\": %lld, \"setup_bytes\": %lld, "
                 "\"setup_messages\": %lld}%s\n",
                 r.ranks, r.wall, static_cast<long long>(r.max_galerkin_flops),
                 static_cast<long long>(r.bytes),
                 static_cast<long long>(r.messages),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_setup.json (timings read from report.json)\n");
  return 0;
}
