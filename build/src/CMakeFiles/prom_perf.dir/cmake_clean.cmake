file(REMOVE_RECURSE
  "CMakeFiles/prom_perf.dir/perf/efficiency.cpp.o"
  "CMakeFiles/prom_perf.dir/perf/efficiency.cpp.o.d"
  "CMakeFiles/prom_perf.dir/perf/model.cpp.o"
  "CMakeFiles/prom_perf.dir/perf/model.cpp.o.d"
  "libprom_perf.a"
  "libprom_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prom_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
