// Execution backends for the single-source solver layer. Every solve-phase
// algorithm (PCG, the smoother drivers, the multigrid cycles) is written
// exactly once as a template over a Backend: a small value type that knows
// how to (a) size and apply an operator on the locally-stored part of a
// vector and (b) combine locally-computed reductions across the machine.
//
// The serial backend's reduction hook is the identity (the local part IS
// the whole vector); the parx backend (dla/parx_backend.h) reduces with an
// allreduce over the virtual ranks. Everything else — axpy-style vector
// updates, dot, norm — is expressed in terms of those two hooks, so the
// serial and distributed solvers cannot drift apart.
#pragma once

#include <cmath>
#include <concepts>
#include <span>

#include "common/config.h"
#include "la/multivec.h"
#include "la/vec.h"

namespace prom::la {

/// What the generic solver templates require of a backend B driving an
/// operator type Op. `local_n` is the length of the locally-stored block of
/// a distributed vector (the whole vector for the serial backend); `apply`
/// computes y = Op x on local blocks, communicating internally if needed;
/// `reduce_sum` combines a locally-computed partial reduction into the
/// global value on every caller.
template <class B, class Op>
concept BackendFor =
    requires(const B& be, const Op& op, std::span<const real> cx,
             std::span<real> mx, real v) {
      { be.local_n(op) } -> std::convertible_to<idx>;
      be.apply(op, cx, mx);
      be.residual(op, cx, cx, mx);
      { be.reduce_sum(v) } -> std::convertible_to<real>;
      { be.dot(cx, cx) } -> std::convertible_to<real>;
      { be.norm2(cx) } -> std::convertible_to<real>;
      be.axpy(v, cx, mx);
    };

/// Single-address-space backend: operators are la::LinearOperator (or any
/// type with rows()/apply()), vectors are plain spans, reductions are
/// already global.
struct SerialBackend {
  /// Local storage of a vector (= the whole vector on this backend).
  using Vec = std::span<real>;

  template <class Op>
  idx local_n(const Op& op) const {
    return op.rows();
  }

  template <class Op>
  void apply(const Op& op, std::span<const real> x, std::span<real> y) const {
    op.apply(x, y);
  }

  /// r = b - Op x. Operators exposing a fused residual kernel (the blocked
  /// formats) get it; the fallback composes apply + waxpby, which produces
  /// the same bits (one subtraction per entry either way), so backends may
  /// fuse freely without perturbing residual histories.
  template <class Op>
  void residual(const Op& op, std::span<const real> b,
                std::span<const real> x, std::span<real> r) const {
    if constexpr (requires { op.residual(b, x, r); }) {
      op.residual(b, x, r);
    } else {
      apply(op, x, r);
      waxpby(1, b, -1, r, r);
    }
  }

  /// Y = Op X, column-blocked. Dispatches to an operator SpMM when one is
  /// exposed (including the virtual LinearOperator::apply_mv); the
  /// fallback applies column by column. Either way column j is bitwise
  /// identical to `apply` on that column alone.
  template <class Op>
  void apply_mv(const Op& op, const MultiVec& x, MultiVec& y) const {
    if constexpr (requires { op.apply_mv(x, y); }) {
      op.apply_mv(x, y);
    } else {
      for (int j = 0; j < x.cols(); ++j) apply(op, x.col(j), y.col(j));
    }
  }

  /// R = B - Op X, column-blocked, with the same fused-vs-composed
  /// dispatch as `residual` — both arms subtract once per entry, so the
  /// residual history of every column is unperturbed.
  template <class Op>
  void residual_mv(const Op& op, const MultiVec& b, const MultiVec& x,
                   MultiVec& r) const {
    if constexpr (requires { op.residual_mv(b, x, r); }) {
      op.residual_mv(b, x, r);
    } else {
      apply_mv(op, x, r);
      for (int j = 0; j < x.cols(); ++j) {
        waxpby(1, b.col(j), -1, r.col(j), r.col(j));
      }
    }
  }

  real reduce_sum(real local) const { return local; }

  real dot(std::span<const real> x, std::span<const real> y) const {
    return reduce_sum(la::dot(x, y));
  }
  real norm2(std::span<const real> x) const { return std::sqrt(dot(x, x)); }
  void axpy(real a, std::span<const real> x, std::span<real> y) const {
    la::axpy(a, x, y);
  }
};

}  // namespace prom::la
