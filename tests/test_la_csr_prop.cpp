// Property-based randomized tests for the CSR algebra (ISSUE 1 satellite):
// seeded-RNG triplet soups checked against dense references. These are the
// hardening layer under the threaded kernel work — every property must
// hold for arbitrary sparsity patterns, duplicate entries, empty rows and
// rectangular shapes, independent of how the kernels are parallelized.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "la/csr.h"

namespace prom::la {
namespace {

struct RandomProblem {
  idx nrows;
  idx ncols;
  std::vector<Triplet> triplets;
  std::vector<real> dense;  // row-major nrows x ncols reference
};

/// Random triplet soup with duplicates; the dense reference accumulates
/// the same entries, so `from_triplets` duplicate-summing is exercised.
RandomProblem random_problem(Rng& rng, idx max_dim = 40) {
  RandomProblem p;
  p.nrows = 1 + static_cast<idx>(rng.next_below(max_dim));
  p.ncols = 1 + static_cast<idx>(rng.next_below(max_dim));
  const std::size_t ntrip = rng.next_below(
      4 * static_cast<std::uint64_t>(p.nrows) * p.ncols / 3 + 1);
  p.dense.assign(static_cast<std::size_t>(p.nrows) * p.ncols, real{0});
  p.triplets.reserve(ntrip);
  for (std::size_t t = 0; t < ntrip; ++t) {
    const idx i = static_cast<idx>(rng.next_below(p.nrows));
    const idx j = static_cast<idx>(rng.next_below(p.ncols));
    const real v = 2 * rng.next_real() - 1;
    p.triplets.push_back({i, j, v});
    p.dense[static_cast<std::size_t>(i) * p.ncols + j] += v;
  }
  return p;
}

std::vector<real> random_vector(Rng& rng, idx n) {
  std::vector<real> x(static_cast<std::size_t>(n));
  for (real& v : x) v = 2 * rng.next_real() - 1;
  return x;
}

constexpr int kTrials = 200;
constexpr real kTol = 1e-12;

TEST(CsrProperty, FromTripletsMatchesDenseAccumulation) {
  Rng rng(0xC5511);
  for (int trial = 0; trial < kTrials; ++trial) {
    const RandomProblem p = random_problem(rng);
    const Csr m = Csr::from_triplets(p.nrows, p.ncols, p.triplets);
    ASSERT_EQ(m.nrows, p.nrows);
    ASSERT_EQ(m.ncols, p.ncols);
    const std::vector<real> got = m.to_dense_rowmajor();
    ASSERT_EQ(got.size(), p.dense.size());
    for (std::size_t k = 0; k < got.size(); ++k) {
      // Both sides accumulate the same values; ordering may differ, so
      // compare with a tolerance scaled to the duplicate count.
      ASSERT_NEAR(got[k], p.dense[k], 1e-13 * (p.triplets.size() + 1))
          << "trial " << trial << " flat index " << k;
    }
    // Rows must be sorted and duplicate-free.
    for (idx i = 0; i < m.nrows; ++i) {
      for (nnz_t k = m.rowptr[i] + 1; k < m.rowptr[i + 1]; ++k) {
        ASSERT_LT(m.colidx[k - 1], m.colidx[k]);
      }
    }
  }
}

TEST(CsrProperty, SpmvMatchesDenseMatvec) {
  Rng rng(0x5917);
  for (int trial = 0; trial < kTrials; ++trial) {
    const RandomProblem p = random_problem(rng);
    const Csr m = Csr::from_triplets(p.nrows, p.ncols, p.triplets);
    const std::vector<real> x = random_vector(rng, p.ncols);
    std::vector<real> y(static_cast<std::size_t>(p.nrows));
    m.spmv(x, y);
    for (idx i = 0; i < p.nrows; ++i) {
      real want = 0;
      for (idx j = 0; j < p.ncols; ++j) {
        want += p.dense[static_cast<std::size_t>(i) * p.ncols + j] * x[j];
      }
      ASSERT_NEAR(y[i], want, kTol * (p.triplets.size() + 1))
          << "trial " << trial << " row " << i;
    }

    // spmv_add must add exactly one spmv on top of the seed vector.
    std::vector<real> y2 = random_vector(rng, p.nrows);
    const std::vector<real> y2_before = y2;
    m.spmv_add(x, y2);
    for (idx i = 0; i < p.nrows; ++i) {
      ASSERT_NEAR(y2[i] - y2_before[i], y[i], kTol * (p.triplets.size() + 1));
    }
  }
}

TEST(CsrProperty, SpmvTransposeMatchesDenseMatvec) {
  Rng rng(0x7A57E);
  for (int trial = 0; trial < kTrials; ++trial) {
    const RandomProblem p = random_problem(rng);
    const Csr m = Csr::from_triplets(p.nrows, p.ncols, p.triplets);
    const std::vector<real> x = random_vector(rng, p.nrows);
    std::vector<real> y(static_cast<std::size_t>(p.ncols));
    m.spmv_transpose(x, y);
    for (idx j = 0; j < p.ncols; ++j) {
      real want = 0;
      for (idx i = 0; i < p.nrows; ++i) {
        want += p.dense[static_cast<std::size_t>(i) * p.ncols + j] * x[i];
      }
      ASSERT_NEAR(y[j], want, kTol * (p.triplets.size() + 1))
          << "trial " << trial << " col " << j;
    }
  }
}

TEST(CsrProperty, TransposeRoundTripIsExact) {
  Rng rng(0x1207);
  for (int trial = 0; trial < kTrials; ++trial) {
    const RandomProblem p = random_problem(rng);
    const Csr m = Csr::from_triplets(p.nrows, p.ncols, p.triplets);
    const Csr tt = m.transposed().transposed();
    ASSERT_EQ(tt.nrows, m.nrows);
    ASSERT_EQ(tt.ncols, m.ncols);
    ASSERT_EQ(tt.rowptr, m.rowptr);
    ASSERT_EQ(tt.colidx, m.colidx);
    ASSERT_EQ(tt.vals, m.vals);  // permutation only — bitwise round trip

    // And A^T x == spmv_transpose(A, x) exactly up to summation order.
    const std::vector<real> x = random_vector(rng, p.nrows);
    std::vector<real> via_t(static_cast<std::size_t>(p.ncols));
    std::vector<real> via_kernel(static_cast<std::size_t>(p.ncols));
    m.transposed().spmv(x, via_t);
    m.spmv_transpose(x, via_kernel);
    for (idx j = 0; j < p.ncols; ++j) {
      ASSERT_NEAR(via_t[j], via_kernel[j], kTol * (p.triplets.size() + 1));
    }
  }
}

TEST(CsrProperty, SymmetryErrorZeroOnSymmetrizedInput) {
  Rng rng(0x5E44);
  for (int trial = 0; trial < kTrials; ++trial) {
    RandomProblem p = random_problem(rng);
    // Symmetrize: emit every triplet mirrored. The (i,j) and (j,i) slots
    // then accumulate the same value multiset, but from_triplets' unstable
    // sort may sum the duplicates in different orders, so allow last-bit
    // rounding noise scaled to the duplicate count.
    const idx n = std::max(p.nrows, p.ncols);
    std::vector<Triplet> sym;
    sym.reserve(2 * p.triplets.size());
    for (const Triplet& t : p.triplets) {
      sym.push_back(t);
      sym.push_back({t.col, t.row, t.value});
    }
    const Csr m = Csr::from_triplets(n, n, sym);
    EXPECT_LE(m.symmetry_error(), 1e-14 * (p.triplets.size() + 1))
        << "trial " << trial;

    // A generic random square matrix, by contrast, should not be
    // symmetric (sanity that the check can fail).
    if (p.nrows == p.ncols && !p.triplets.empty()) {
      const Csr plain = Csr::from_triplets(p.nrows, p.ncols, p.triplets);
      const std::vector<real> d = plain.to_dense_rowmajor();
      real asym = 0;
      for (idx i = 0; i < p.nrows; ++i) {
        for (idx j = 0; j < p.ncols; ++j) {
          asym = std::max(asym,
                          std::fabs(d[static_cast<std::size_t>(i) * p.ncols +
                                      j] -
                                    d[static_cast<std::size_t>(j) * p.ncols +
                                      i]));
        }
      }
      EXPECT_NEAR(plain.symmetry_error(), asym, kTol);
    }
  }
}

TEST(CsrProperty, SpgemmMatchesDenseProduct) {
  Rng rng(0x69E44);
  for (int trial = 0; trial < 60; ++trial) {
    const RandomProblem pa = random_problem(rng, 24);
    RandomProblem pb = random_problem(rng, 24);
    // Force compatible shapes: B is (A.ncols x pb.ncols).
    for (Triplet& t : pb.triplets) t.row %= pa.ncols;
    pb.nrows = pa.ncols;
    const Csr a = Csr::from_triplets(pa.nrows, pa.ncols, pa.triplets);
    const Csr b = Csr::from_triplets(pb.nrows, pb.ncols, pb.triplets);
    const Csr c = spgemm(a, b);
    const std::vector<real> da = a.to_dense_rowmajor();
    const std::vector<real> db = b.to_dense_rowmajor();
    const std::vector<real> dc = c.to_dense_rowmajor();
    for (idx i = 0; i < a.nrows; ++i) {
      for (idx j = 0; j < b.ncols; ++j) {
        real want = 0;
        for (idx k = 0; k < a.ncols; ++k) {
          want += da[static_cast<std::size_t>(i) * a.ncols + k] *
                  db[static_cast<std::size_t>(k) * b.ncols + j];
        }
        ASSERT_NEAR(dc[static_cast<std::size_t>(i) * c.ncols + j], want,
                    1e-11)
            << "trial " << trial << " (" << i << ", " << j << ")";
      }
    }
  }
}

}  // namespace
}  // namespace prom::la
