// "Athena" — the end-to-end experiment driver of Figure 8: generate the
// model problem, partition it, create the fine grid (assembly), build the
// grid hierarchy (mesh setup), build the Galerkin operators (matrix
// setup), and run the solve phase on virtual ranks, with per-phase wall
// times and the §6 flop/traffic measurements the benches print.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/config.h"
#include "fem/assembly.h"
#include "fem/scalar.h"
#include "mesh/generate.h"
#include "mg/hierarchy.h"
#include "mg/solver.h"
#include "nonlinear/newton.h"
#include "obs/report.h"
#include "perf/efficiency.h"
#include "perf/model.h"

namespace prom::app {

/// Which PDE the model problem discretizes. Elasticity is the paper's
/// 3-dof-per-vertex system; the scalar classes (block size 1) stress the
/// same hierarchy machinery with coefficient jumps and non-symmetry.
enum class EquationClass : std::uint8_t {
  kElasticity,  ///< 3D linear elasticity (SPD, block size 3)
  kPoissonHet,  ///< jump-coefficient Poisson (SPD, block size 1)
  kAdvDiff,     ///< SUPG advection-diffusion (non-symmetric, block size 1)
};
const char* to_string(EquationClass eq);
/// PROM_EQUATION=elasticity|poisson_het|advdiff (default elasticity).
/// Fails fast on an unknown value.
EquationClass equation_from_env();

/// Solver defaults appropriate to an equation class. The SPD classes keep
/// the paper's configuration (PCG, processor-block Jacobi, LDL^T
/// coarsest); advection-diffusion swaps in damped point Jacobi —
/// BlockJacobi's LDL^T block factors and Chebyshev's eigenvalue bounds
/// both assume symmetry — plus a partial-pivoting LU coarsest solve.
mg::MgOptions default_mg_options(EquationClass eq);
/// PCG for the SPD classes, right-preconditioned GMRES(m) for
/// advection-diffusion.
la::KrylovKind default_krylov(EquationClass eq);

/// A ready-to-solve model problem (mesh + constraints + coefficients).
/// Elasticity uses `dofmap` + `materials`; the scalar classes use
/// `scalar_dofmap` + `coeffs` instead.
struct ModelProblem {
  EquationClass equation = EquationClass::kElasticity;
  mesh::Mesh mesh;
  fem::DofMap dofmap{0};
  std::vector<fem::Material> materials;
  fem::ScalarDofMap scalar_dofmap{0};
  fem::ScalarCoefficients coeffs;

  /// Re-applies the problem's Dirichlet constraints to a dof map over a
  /// different mesh of the same domain (adaptive refinement creates new
  /// boundary vertices; bisection midpoints of a boundary face stay on
  /// its plane, so the factories' coordinate predicates still apply).
  /// The callback fixes dofs only; the caller finalizes. Set by every
  /// factory for its own equation family; null for hand-built problems,
  /// which then cannot be refined.
  std::function<void(const mesh::Mesh&, fem::DofMap&)> fix_bcs;
  std::function<void(const mesh::Mesh&, fem::ScalarDofMap&)> fix_scalar_bcs;
};

/// The paper's §7 concentric-spheres problem: symmetric BCs on the three
/// cut faces, uniform crushing displacement on the top face.
ModelProblem make_sphere_problem(const mesh::SphereInCubeParams& params,
                                 real crush);

/// A homogeneous elastic cube: bottom clamped, top pressed down; the
/// simple scalable problem used by tests and the quickstart.
ModelProblem make_box_problem(idx n, real crush = 0.05,
                              fem::Material material = {});

/// Jump-coefficient Poisson on the unit cube (n^3 hex cells): diffusion
/// `contrast` inside the centered half-cube [1/4, 3/4]^3 and 1 outside
/// (sampled per quadrature point; the interface aligns with element faces
/// when 4 divides n); u = 0 on the bottom face, u = 1 on the top, natural
/// elsewhere; unit volume source.
ModelProblem make_poisson_het_problem(idx n, real contrast = 1e3);

/// Reaction-dominated scalar problem on the unit cube (n^3 hex cells):
/// -lap(u) + c u = f with constant reaction c = `reaction`, manufactured
/// so u = sin(pi x) sin(pi y) sin(pi z) exactly (f = (3 pi^2 + c) u,
/// u = 0 on the whole boundary). SPD at any c, so it runs the
/// kPoissonHet configuration (MG-PCG); the MMS gate checks O(h^2) L2
/// convergence, exercising the ScalarCoefficients::reaction term.
ModelProblem make_reaction_problem(idx n, real reaction = 1e3);

/// SUPG advection-diffusion on the unit cube (n^3 hex cells): skew
/// velocity v = (1, 1/2, 1/4)/|.|, isotropic diffusion kappa = |v|/peclet
/// (so `peclet` is the global Péclet number |v| L / kappa at L = 1);
/// u = 1 on the inflow face x = 0, u = 0 on the outflow face x = 1,
/// natural side walls; unit volume source. Non-symmetric: solve with
/// GMRES or BiCGStab.
ModelProblem make_advdiff_problem(idx n, real peclet = 10);

struct LinearStudyConfig {
  int nranks = 2;
  real rtol = 1e-4;             ///< the paper's first-linear-solve tolerance
  int max_iters = 200;
  mg::MgOptions mg;
  mg::CycleKind cycle = mg::CycleKind::kFmg;
  /// Solve-phase matrix format (PROM_MATRIX=csr|bsr3|mf by default):
  /// kBsr3 re-blocks every level operator into 3x3 node blocks and ships
  /// whole node blocks in the ghost exchange; kMf applies the finest
  /// level matrix-free from batched element data (coarse levels stay
  /// assembled). Iteration counts and residual histories match kCsr to
  /// rounding in both cases.
  mg::MatrixFormat format = mg::matrix_format_from_env();
  /// When non-empty, the study's obs report (report.json schema) is
  /// written here after the run.
  std::string report_path;
};

/// Everything Figures 10-12 and Table 2 need from one linear solve.
struct LinearStudyReport {
  idx unknowns = 0;
  int ranks = 0;
  int levels = 0;
  int iterations = 0;
  bool converged = false;

  // Wall-clock phase breakdown on the host (Figure 10's phases). Mesh
  // setup is serial (grids only); matrix setup and solve run distributed
  // on the virtual ranks.
  double wall_partition = 0;     ///< Athena: partitioning
  double wall_fine_grid = 0;     ///< FEAP: fine grid creation (assembly)
  double wall_mesh_setup = 0;    ///< Prometheus: coarse grid construction
  double wall_matrix_setup = 0;  ///< Epimetheus: distributed RAR^T + smoothers
  double wall_solve = 0;         ///< PETSc: the actual MG-PCG solve

  // Per-phase measurements across virtual ranks (§6).
  perf::PhaseStats setup_phase;  ///< distributed matrix setup
  /// This-rank flops spent in the Galerkin triple products alone, maxed
  /// over ranks (the matrix-setup scaling quantity).
  std::int64_t max_rank_galerkin_flops = 0;
  perf::PhaseStats solve_phase;
  double modeled_solve_time = 0;   ///< machine-model seconds
  double modeled_mflops = 0;       ///< total modeled Mflop/s in MG iterations

  /// The full observability report of the study's tracing window (phases,
  /// level-resolved cycle components, metrics). Every wall/traffic field
  /// above is derived from it — there is no separate stopwatch path.
  obs::Report obs;

  perf::RunMeasurement measurement() const;
};

/// Runs the distributed first linear solve of `problem` on virtual ranks.
LinearStudyReport run_linear_study(const ModelProblem& problem,
                                   const LinearStudyConfig& config);

/// The scaled-problem series of §7 (~constant work per rank): returns the
/// sphere parameters and rank count for step `i` of the series, starting
/// from `base_ranks` ranks at `layers_per_shell` == 1.
struct ScaledCase {
  mesh::SphereInCubeParams params;
  int ranks;
};
std::vector<ScaledCase> scaled_series(int num_cases, int base_ranks = 2);

}  // namespace prom::app
