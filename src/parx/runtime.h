// parx — a virtual message-passing runtime (the project's MPI substitute,
// see DESIGN.md substitution 1). `Runtime::run(nranks, fn)` launches one
// thread per rank and executes `fn` SPMD-style; ranks communicate only
// through the `Comm` handle: buffered point-to-point sends, blocking
// tag-matched receives, and tree-based collectives. Per-rank traffic
// statistics (message/byte counts) feed the §6 communication-efficiency
// model in `src/perf`.
//
// Semantics intentionally mirror the MPI subset the paper's stack uses:
//  - send() is buffered and never blocks (like MPI_Bsend);
//  - recv() blocks until a message with matching (source, tag) arrives;
//    messages from the same source with the same tag are FIFO;
//  - collectives are implemented over point-to-point with binomial trees,
//    so their traffic is O(log P) deep like a real MPI implementation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <type_traits>
#include <vector>

#include "common/error.h"
#include "obs/trace.h"

namespace prom::parx {

/// Per-rank communication counters, returned by Runtime::run.
struct TrafficStats {
  std::int64_t messages_sent = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t flops = 0;  ///< flops counted on the rank's thread
};

namespace detail {
class Context;
}

/// Per-rank communicator handle; only valid inside Runtime::run.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Buffered, non-blocking send of raw bytes. `tag` must be >= 0 (negative
  /// tags are reserved for collectives).
  void send_bytes(int to, int tag, std::span<const std::byte> data);

  /// Blocking receive of a message from `from` with tag `tag`.
  std::vector<std::byte> recv_bytes(int from, int tag);

  /// True if a message from (from, tag) is already waiting.
  bool has_message(int from, int tag) const;

  /// Snapshot of this rank's cumulative traffic counters (messages/bytes
  /// sent so far) plus the calling thread's flop counter — used to bracket
  /// per-phase measurements (§6).
  TrafficStats traffic() const;

  // ---- typed convenience wrappers (T must be trivially copyable) ----

  template <typename T>
  void send(int to, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(to, tag, std::as_bytes(data));
  }

  template <typename T>
  void send(int to, int tag, const std::vector<T>& data) {
    send<T>(to, tag, std::span<const T>(data));
  }

  template <typename T>
  void send_value(int to, int tag, const T& value) {
    send<T>(to, tag, std::span<const T>(&value, 1));
  }

  template <typename T>
  std::vector<T> recv(int from, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> raw = recv_bytes(from, tag);
    PROM_CHECK(raw.size() % sizeof(T) == 0);
    std::vector<T> out(raw.size() / sizeof(T));
    // Empty messages are legal; memcpy's pointers must not be null then.
    if (!raw.empty()) std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  template <typename T>
  T recv_value(int from, int tag) {
    std::vector<T> v = recv<T>(from, tag);
    PROM_CHECK(v.size() == 1);
    return v[0];
  }

  // ---- collectives (all ranks must call; tree-based over p2p) ----

  void barrier();

  /// Element-wise reduction of equal-length vectors; result on all ranks.
  enum class ReduceOp { kSum, kMin, kMax };
  std::vector<double> allreduce(std::vector<double> v, ReduceOp op);
  std::vector<std::int64_t> allreduce(std::vector<std::int64_t> v,
                                      ReduceOp op);

  double allreduce_sum(double v) {
    return allreduce(std::vector<double>{v}, ReduceOp::kSum)[0];
  }
  double allreduce_max(double v) {
    return allreduce(std::vector<double>{v}, ReduceOp::kMax)[0];
  }
  double allreduce_min(double v) {
    return allreduce(std::vector<double>{v}, ReduceOp::kMin)[0];
  }
  std::int64_t allreduce_sum(std::int64_t v) {
    return allreduce(std::vector<std::int64_t>{v}, ReduceOp::kSum)[0];
  }

  /// Broadcast `data` from `root` to all ranks (returned everywhere).
  template <typename T>
  std::vector<T> bcast(std::vector<T> data, int root);

  /// Variable-size gather-to-all: every rank contributes `mine`, every rank
  /// receives all contributions indexed by rank.
  template <typename T>
  std::vector<std::vector<T>> allgatherv(const std::vector<T>& mine);

  /// Personalized all-to-all: `sendbufs[r]` goes to rank r; returns the
  /// buffers received from each rank.
  template <typename T>
  std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& sendbufs);

 private:
  friend class Runtime;
  friend class detail::Context;
  Comm(detail::Context* ctx, int rank) : ctx_(ctx), rank_(rank) {}

  std::vector<std::byte> bcast_bytes(std::vector<std::byte> data, int root);

  detail::Context* ctx_;
  int rank_;
};

/// Launches an SPMD region on `nranks` virtual ranks (threads). Exceptions
/// thrown by any rank are re-thrown (the first one) after all join.
class Runtime {
 public:
  static std::vector<TrafficStats> run(
      int nranks, const std::function<void(Comm&)>& fn);
};

// ---- template definitions -------------------------------------------------

template <typename T>
std::vector<T> Comm::bcast(std::vector<T> data, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::byte> raw(data.size() * sizeof(T));
  if (rank_ == root && !raw.empty()) {
    std::memcpy(raw.data(), data.data(), raw.size());
  }
  raw = bcast_bytes(std::move(raw), root);
  std::vector<T> out(raw.size() / sizeof(T));
  if (!raw.empty()) std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

template <typename T>
std::vector<std::vector<T>> Comm::allgatherv(const std::vector<T>& mine) {
  const obs::Span span("parx.allgatherv");
  // Gather to rank 0 then broadcast; sizes first, then payloads.
  constexpr int kTagGather = 0x7ffffff1;
  const int p = size();
  std::vector<std::vector<T>> all(p);
  if (rank_ == 0) {
    all[0] = mine;
    for (int r = 1; r < p; ++r) all[r] = recv<T>(r, kTagGather);
  } else {
    send<T>(0, kTagGather, mine);
  }
  // Broadcast the concatenation with a size table.
  std::vector<std::int64_t> sizes(p);
  std::vector<T> flat;
  if (rank_ == 0) {
    for (int r = 0; r < p; ++r) {
      sizes[r] = static_cast<std::int64_t>(all[r].size());
      flat.insert(flat.end(), all[r].begin(), all[r].end());
    }
  }
  sizes = bcast(std::move(sizes), 0);
  flat = bcast(std::move(flat), 0);
  std::size_t off = 0;
  for (int r = 0; r < p; ++r) {
    all[r].assign(flat.begin() + off, flat.begin() + off + sizes[r]);
    off += sizes[r];
  }
  return all;
}

template <typename T>
std::vector<std::vector<T>> Comm::alltoallv(
    const std::vector<std::vector<T>>& sendbufs) {
  const obs::Span span("parx.alltoallv");
  const int p = size();
  PROM_CHECK(static_cast<int>(sendbufs.size()) == p);
  constexpr int kTag = 0x7ffffff0;
  for (int r = 0; r < p; ++r) {
    if (r != rank_) send<T>(r, kTag, sendbufs[r]);
  }
  std::vector<std::vector<T>> recvbufs(p);
  recvbufs[rank_] = sendbufs[rank_];
  for (int r = 0; r < p; ++r) {
    if (r != rank_) recvbufs[r] = recv<T>(r, kTag);
  }
  return recvbufs;
}

}  // namespace prom::parx
