# Empty compiler generated dependencies file for prom_coarsen.
# This may be replaced when dependencies are built.
