// Conjugate gradient solvers. The paper's outer solver is CG preconditioned
// with one full multigrid cycle (§7.2); the same `pcg` below accepts any
// symmetric positive definite preconditioner through LinearOperator.
#pragma once

#include <span>
#include <vector>

#include "common/config.h"
#include "la/operator.h"

namespace prom::la {

struct KrylovOptions {
  real rtol = 1e-6;        ///< stop when ||r||_2 / ||b||_2 <= rtol
  int max_iters = 1000;
  bool track_history = false;  ///< record ||r|| after each iteration
};

struct KrylovResult {
  int iterations = 0;
  real final_relres = 0;
  bool converged = false;
  /// True if CG stopped because p'Ap or r'z lost positivity (operator or
  /// preconditioner not SPD at working precision).
  bool breakdown = false;
  std::vector<real> history;  ///< residual norms (if tracked), history[0]=||b||
};

/// The one relative-residual stopping criterion shared by every Krylov
/// driver on every backend (serial and parx instantiate the same templated
/// solver bodies, so tolerances cannot drift between them).
inline bool krylov_converged(real rnorm, real bnorm, real rtol) {
  return rnorm / bnorm <= rtol;
}

/// Unpreconditioned CG for SPD systems; x holds the initial guess on entry
/// and the solution on exit.
KrylovResult cg(const LinearOperator& a, std::span<const real> b,
                std::span<real> x, const KrylovOptions& opts = {});

/// Preconditioned CG; `m` applies the (SPD) preconditioner: z = M^{-1} r.
KrylovResult pcg(const LinearOperator& a, const LinearOperator& m,
                 std::span<const real> b, std::span<real> x,
                 const KrylovOptions& opts = {});

struct KrylovWorkspace;  // la/krylov_any.h

/// Blocked PCG over k right-hand sides (columns of `b` / `x`) against one
/// operator: matrix passes are shared, per-column recurrences are not, so
/// column j is bitwise identical to a standalone `pcg` of that RHS. `m`
/// may be null (unpreconditioned); `ws` (optional) makes repeat solves
/// allocation-free.
std::vector<KrylovResult> pcg_multi(const LinearOperator& a,
                                    const LinearOperator* m,
                                    const MultiVec& b, MultiVec& x,
                                    const KrylovOptions& opts = {},
                                    KrylovWorkspace* ws = nullptr);

struct GmresOptions {
  real rtol = 1e-6;
  int max_iters = 500;   ///< total inner iterations across restarts
  int restart = 50;      ///< Krylov subspace dimension per cycle
  bool track_history = false;
};

/// Restarted GMRES with optional *right* preconditioning (`m` may be
/// null). Unlike CG it tolerates nonsymmetric and indefinite operators —
/// the fallback for Newton tangents that lose positive definiteness (cf.
/// the multigrid-enhanced GMRES of Owen/Feng/Peric the paper cites as
/// related work [18]).
KrylovResult gmres(const LinearOperator& a, const LinearOperator* m,
                   std::span<const real> b, std::span<real> x,
                   const GmresOptions& opts = {});

/// BiCGStab with optional *right* preconditioning (`m` may be null): the
/// short-recurrence companion to `gmres` for non-symmetric systems — no
/// growing Arnoldi basis, at the price of a less monotone residual.
KrylovResult bicgstab(const LinearOperator& a, const LinearOperator* m,
                      std::span<const real> b, std::span<real> x,
                      const KrylovOptions& opts = {});

/// Which outer Krylov driver a multigrid solve wraps the V/FMG
/// preconditioner in. PCG is correct only for SPD operators (elasticity,
/// pure-diffusion scalars); non-symmetric operators (SUPG
/// advection–diffusion) take GMRES or BiCGStab.
enum class KrylovKind {
  kPcg,
  kGmres,
  kBicgstab,
};

const char* to_string(KrylovKind k);

}  // namespace prom::la
