#include "dla/dist_bsr.h"

#include <algorithm>
#include <utility>

#include "common/error.h"

namespace prom::dla {
namespace {

constexpr int kTagNodeGhost = 311;
constexpr int BS = kDofPerVertex;

}  // namespace

DistBsr DistBsr::build(parx::Comm& comm, const DistCsr& a,
                       std::span<const idx> perm,
                       std::span<const idx> free_dofs) {
  DistBsr d;
  d.rank_ = comm.rank();
  const int rank = d.rank_;
  const RowDist& cols = a.col_dist();
  const idx c0 = cols.begin(rank);
  const idx n_own = cols.local_size(rank);
  // Square operator with aligned row/column distributions only.
  PROM_CHECK(a.row_dist().begin(rank) == c0 && a.local_rows() == n_own);
  PROM_CHECK(static_cast<idx>(perm.size()) == cols.global_size());
  d.nlocal_ = n_own;

  const std::vector<idx>& ghosts = a.ghost_cols();
  const idx n_ext = n_own + static_cast<idx>(ghosts.size());

  // Extended columns sorted by global id (owned range and ghost list are
  // both ascending — merge). A node's free dofs are contiguous in the
  // global numbering, so grouping consecutive equal vertices yields the
  // node partition, already ordered by global position.
  std::vector<std::pair<idx, idx>> by_global;  // (global id, ext col)
  by_global.reserve(static_cast<std::size_t>(n_ext));
  {
    idx io = 0;
    std::size_t ig = 0;
    while (io < n_own || ig < ghosts.size()) {
      if (ig >= ghosts.size() || (io < n_own && c0 + io < ghosts[ig])) {
        by_global.emplace_back(c0 + io, io);
        ++io;
      } else {
        by_global.emplace_back(ghosts[ig], n_own + static_cast<idx>(ig));
        ++ig;
      }
    }
  }

  struct NodeInfo {
    idx vertex;
    int owner;
  };
  std::vector<NodeInfo> nodes;
  std::vector<idx> bcol_of_ext(static_cast<std::size_t>(n_ext));
  std::vector<idx> comp_of_ext(static_cast<std::size_t>(n_ext));
  for (const auto& [g, e] : by_global) {
    const idx serial = perm[g];
    const idx v = free_dofs[serial] / BS;
    const idx c = free_dofs[serial] % BS;
    if (nodes.empty() || nodes.back().vertex != v) {
      nodes.push_back({v, cols.owner(g)});
    }
    bcol_of_ext[e] = static_cast<idx>(nodes.size()) - 1;
    comp_of_ext[e] = c;
  }
  const idx nnodes = static_cast<idx>(nodes.size());

  // Owned block rows, in node (= global) order.
  std::vector<idx> brow_of_node(static_cast<std::size_t>(nnodes),
                                kInvalidIdx);
  idx nbrows = 0;
  for (idx nd = 0; nd < nnodes; ++nd) {
    if (nodes[nd].owner == rank) brow_of_node[nd] = nbrows++;
  }

  d.row_slot_of_free_.resize(static_cast<std::size_t>(n_own));
  d.slot_of_owned_col_.resize(static_cast<std::size_t>(n_own));
  d.own_node_dof_.assign(static_cast<std::size_t>(nbrows) * BS, kInvalidIdx);
  for (idx i = 0; i < n_own; ++i) {
    const idx nd = bcol_of_ext[i];
    PROM_CHECK(brow_of_node[nd] != kInvalidIdx);
    d.row_slot_of_free_[i] = BS * brow_of_node[nd] + comp_of_ext[i];
    d.slot_of_owned_col_[i] = BS * nd + comp_of_ext[i];
    d.own_node_dof_[d.row_slot_of_free_[i]] = i;
  }

  // Re-block the local rows. Pattern pass per block row over the node's
  // scalar rows (consecutive local rows — owned columns are sorted by
  // global id); the diagonal node block is always kept so constrained
  // components get their identity pivot.
  const la::Csr& lm = a.local_matrix();
  la::Bsr3& m = d.local_;
  m.nbrows = nbrows;
  m.nbcols = nnodes;
  m.browptr.assign(static_cast<std::size_t>(nbrows) + 1, 0);
  std::vector<idx> marker(static_cast<std::size_t>(nnodes), kInvalidIdx);
  std::vector<std::vector<idx>> row_bcols(static_cast<std::size_t>(nbrows));
  for (idx i = 0; i < n_own; ++i) {
    const idx br = d.row_slot_of_free_[i] / BS;
    auto& bcols = row_bcols[br];
    const idx own_nd = bcol_of_ext[i];
    if (marker[own_nd] != br) {
      marker[own_nd] = br;
      bcols.push_back(own_nd);
    }
    for (nnz_t k = lm.rowptr[i]; k < lm.rowptr[i + 1]; ++k) {
      const idx nd = bcol_of_ext[lm.colidx[k]];
      if (marker[nd] != br) {
        marker[nd] = br;
        bcols.push_back(nd);
      }
    }
  }
  for (idx br = 0; br < nbrows; ++br) {
    std::sort(row_bcols[br].begin(), row_bcols[br].end());
    m.browptr[br + 1] =
        m.browptr[br] + static_cast<nnz_t>(row_bcols[br].size());
  }
  m.bcolidx.resize(static_cast<std::size_t>(m.browptr[nbrows]));
  m.vals.assign(m.bcolidx.size() * BS * BS, real{0});
  for (idx br = 0; br < nbrows; ++br) {
    std::copy(row_bcols[br].begin(), row_bcols[br].end(),
              m.bcolidx.begin() + m.browptr[br]);
  }
  for (idx i = 0; i < n_own; ++i) {
    const idx br = d.row_slot_of_free_[i] / BS;
    const idx r = d.row_slot_of_free_[i] % BS;
    const auto& bcols = row_bcols[br];
    const nnz_t base = m.browptr[br];
    for (nnz_t k = lm.rowptr[i]; k < lm.rowptr[i + 1]; ++k) {
      const idx nd = bcol_of_ext[lm.colidx[k]];
      const auto it = std::lower_bound(bcols.begin(), bcols.end(), nd);
      const nnz_t pos = base + static_cast<nnz_t>(it - bcols.begin());
      m.vals[static_cast<std::size_t>(pos) * BS * BS + r * BS +
             comp_of_ext[lm.colidx[k]]] = lm.vals[k];
    }
  }
  // Identity pivots on constrained (padding) components of owned nodes;
  // the padded x entries are always 0, so SpMV results are unaffected.
  for (idx nd = 0; nd < nnodes; ++nd) {
    const idx br = brow_of_node[nd];
    if (br == kInvalidIdx) continue;
    for (int c = 0; c < BS; ++c) {
      if (d.own_node_dof_[static_cast<std::size_t>(br) * BS + c] !=
          kInvalidIdx) {
        continue;
      }
      const auto& bcols = row_bcols[br];
      const auto it = std::lower_bound(bcols.begin(), bcols.end(), nd);
      const nnz_t pos =
          m.browptr[br] + static_cast<nnz_t>(it - bcols.begin());
      m.vals[static_cast<std::size_t>(pos) * BS * BS + c * BS + c] = 1;
    }
  }

  // Node-granularity exchange plan: ghost nodes are requested from their
  // owners by vertex id (identical on every rank at a given level).
  std::vector<std::vector<idx>> requests(
      static_cast<std::size_t>(comm.size()));
  std::vector<std::vector<idx>> req_bcols(
      static_cast<std::size_t>(comm.size()));
  for (idx nd = 0; nd < nnodes; ++nd) {
    if (nodes[nd].owner == rank) continue;
    requests[nodes[nd].owner].push_back(nodes[nd].vertex);
    req_bcols[nodes[nd].owner].push_back(nd);
  }
  const auto incoming = comm.alltoallv(requests);

  std::vector<std::pair<idx, idx>> vertex_to_brow;  // owned (vertex, brow)
  vertex_to_brow.reserve(static_cast<std::size_t>(nbrows));
  for (idx nd = 0; nd < nnodes; ++nd) {
    if (brow_of_node[nd] != kInvalidIdx) {
      vertex_to_brow.emplace_back(nodes[nd].vertex, brow_of_node[nd]);
    }
  }
  std::sort(vertex_to_brow.begin(), vertex_to_brow.end());

  for (int r = 0; r < comm.size(); ++r) {
    if (r == rank) continue;
    if (!incoming[r].empty()) {
      d.peers_send_.push_back(r);
      std::vector<idx> brows;
      brows.reserve(incoming[r].size());
      for (idx v : incoming[r]) {
        const auto it = std::lower_bound(
            vertex_to_brow.begin(), vertex_to_brow.end(),
            std::make_pair(v, idx{0}),
            [](const auto& a_, const auto& b_) { return a_.first < b_.first; });
        PROM_CHECK(it != vertex_to_brow.end() && it->first == v);
        brows.push_back(it->second);
      }
      d.send_brows_.push_back(std::move(brows));
    }
    if (!requests[r].empty()) {
      d.peers_recv_.push_back(r);
      d.recv_bcols_.push_back(std::move(req_bcols[r]));
    }
  }
  return d;
}

void DistBsr::fill_extended(parx::Comm& comm, std::span<const real> x_local,
                            std::span<real> x_ext) const {
  for (idx i = 0; i < nlocal_; ++i) {
    x_ext[slot_of_owned_col_[i]] = x_local[i];
  }
  // Whole node blocks on the wire: BS values per requested node, padding
  // components shipped as the zeros they hold.
  std::vector<real> buffer;
  for (std::size_t p = 0; p < peers_send_.size(); ++p) {
    buffer.clear();
    buffer.reserve(send_brows_[p].size() * BS);
    for (idx br : send_brows_[p]) {
      for (int c = 0; c < BS; ++c) {
        const idx i = own_node_dof_[static_cast<std::size_t>(br) * BS + c];
        buffer.push_back(i == kInvalidIdx ? real{0} : x_local[i]);
      }
    }
    comm.send<real>(peers_send_[p], kTagNodeGhost, buffer);
  }
  for (std::size_t p = 0; p < peers_recv_.size(); ++p) {
    const std::vector<real> vals =
        comm.recv<real>(peers_recv_[p], kTagNodeGhost);
    PROM_CHECK(vals.size() == recv_bcols_[p].size() * BS);
    for (std::size_t j = 0; j < recv_bcols_[p].size(); ++j) {
      const std::size_t slot =
          static_cast<std::size_t>(recv_bcols_[p][j]) * BS;
      for (int c = 0; c < BS; ++c) x_ext[slot + c] = vals[j * BS + c];
    }
  }
}

void DistBsr::spmv(parx::Comm& comm, std::span<const real> x_local,
                   std::span<real> y_local) const {
  PROM_CHECK(static_cast<idx>(x_local.size()) == nlocal_ &&
             static_cast<idx>(y_local.size()) == nlocal_);
  std::vector<real> x_ext(static_cast<std::size_t>(local_.cols()), real{0});
  fill_extended(comm, x_local, x_ext);
  std::vector<real> y_pad(static_cast<std::size_t>(local_.rows()));
  local_.spmv(x_ext, y_pad);
  for (idx i = 0; i < nlocal_; ++i) y_local[i] = y_pad[row_slot_of_free_[i]];
}

void DistBsr::residual(parx::Comm& comm, std::span<const real> b_local,
                       std::span<const real> x_local,
                       std::span<real> r_local) const {
  PROM_CHECK(static_cast<idx>(b_local.size()) == nlocal_ &&
             static_cast<idx>(x_local.size()) == nlocal_ &&
             static_cast<idx>(r_local.size()) == nlocal_);
  std::vector<real> x_ext(static_cast<std::size_t>(local_.cols()), real{0});
  fill_extended(comm, x_local, x_ext);
  std::vector<real> b_pad(static_cast<std::size_t>(local_.rows()), real{0});
  for (idx i = 0; i < nlocal_; ++i) b_pad[row_slot_of_free_[i]] = b_local[i];
  std::vector<real> r_pad(b_pad.size());
  local_.residual(b_pad, x_ext, r_pad);
  for (idx i = 0; i < nlocal_; ++i) r_local[i] = r_pad[row_slot_of_free_[i]];
}

}  // namespace prom::dla
