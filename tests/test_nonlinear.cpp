#include <gtest/gtest.h>

#include <cmath>

#include "app/driver.h"
#include "la/vec.h"
#include "nonlinear/newton.h"

namespace prom::nonlinear {
namespace {

/// Small Neo-Hookean cube, bottom clamped, top pressed down.
app::ModelProblem nh_cube(idx n, real crush) {
  fem::Material soft;
  soft.model = fem::MaterialModel::kNeoHookean;
  soft.youngs = 1.0;
  soft.poisson = 0.3;
  return app::make_box_problem(n, crush, soft);
}

TEST(Newton, ConvergesOnNeoHookeanCube) {
  const app::ModelProblem model = nh_cube(3, 0.1);
  fem::FeProblem prob(model.mesh, model.materials, model.dofmap);
  mg::MgOptions mopts;
  mopts.coarsest_max_dofs = 100;
  NewtonDriver driver(prob, mopts);
  const NewtonStepReport rep = driver.solve_step(1.0);
  EXPECT_TRUE(rep.converged);
  EXPECT_LE(rep.newton_iters, 10);
  // The residual history decreases sharply at the end (superlinear tail).
  ASSERT_GE(rep.residual_norms.size(), 2u);
  EXPECT_LT(rep.residual_norms.back(), 1e-4 * rep.residual_norms.front());
}

TEST(Newton, LinearProblemConvergesInOneIteration) {
  // For a purely linear material, Newton's first full correction solves
  // the problem; iteration 2 only confirms convergence.
  const app::ModelProblem model = app::make_box_problem(3, 0.05);
  fem::FeProblem prob(model.mesh, model.materials, model.dofmap);
  mg::MgOptions mopts;
  mopts.coarsest_max_dofs = 100;
  NewtonOptions nopts;
  nopts.first_linear_rtol = 1e-10;  // tight solve so one step suffices
  NewtonDriver driver(prob, mopts, nopts);
  const NewtonStepReport rep = driver.solve_step(1.0);
  EXPECT_TRUE(rep.converged);
  EXPECT_LE(rep.newton_iters, 2);
}

TEST(Newton, DynamicToleranceLoosensAfterFirstIteration) {
  const app::ModelProblem model = nh_cube(3, 0.15);
  fem::FeProblem prob(model.mesh, model.materials, model.dofmap);
  mg::MgOptions mopts;
  mopts.coarsest_max_dofs = 100;
  NewtonOptions nopts;
  NewtonDriver driver(prob, mopts, nopts);
  const NewtonStepReport rep = driver.solve_step(1.0);
  ASSERT_TRUE(rep.converged);
  ASSERT_GE(rep.linear_rtols.size(), 2u);
  EXPECT_DOUBLE_EQ(rep.linear_rtols[0], nopts.first_linear_rtol);
  for (std::size_t m = 1; m < rep.linear_rtols.size(); ++m) {
    EXPECT_LE(rep.linear_rtols[m], nopts.max_linear_rtol + 1e-15);
  }
}

TEST(Newton, LoadStepsReachFullDisplacement) {
  const app::ModelProblem model = nh_cube(3, 0.12);
  fem::FeProblem prob(model.mesh, model.materials, model.dofmap);
  mg::MgOptions mopts;
  mopts.coarsest_max_dofs = 100;
  NewtonDriver driver(prob, mopts);
  const auto reports = driver.run_load_steps(4);
  ASSERT_EQ(reports.size(), 4u);
  for (const auto& rep : reports) EXPECT_TRUE(rep.converged);
  // The final state carries meaningful displacement.
  EXPECT_GT(la::nrm2(driver.displacement()), 1e-4);
  EXPECT_GE(driver.matrix_setups(), 4);
}

TEST(Newton, PlasticityAccumulatesAcrossSteps) {
  // Hard J2 cube sheared beyond yield: plastic fraction is monotone
  // nondecreasing over load steps (the Fig 13 left property).
  fem::Material hard = fem::Material::paper_hard();
  app::ModelProblem model = app::make_box_problem(2, 0.0, hard);
  // Shear the top instead of crushing it.
  model.dofmap = fem::DofMap(model.mesh.num_vertices());
  const real eps = 1e-12;
  model.dofmap.fix_all(model.mesh.vertices_where(
                           [&](const Vec3& p) { return p.z < eps; }),
                       0);
  for (idx v : model.mesh.vertices_where(
           [&](const Vec3& p) { return p.z > 1 - eps; })) {
    model.dofmap.fix(v, 0, 0.02);
    model.dofmap.fix(v, 1, 0);
    model.dofmap.fix(v, 2, 0);
  }
  model.dofmap.finalize();
  fem::FeProblem prob(model.mesh, model.materials, model.dofmap);
  mg::MgOptions mopts;
  mopts.coarsest_max_dofs = 60;
  NewtonDriver driver(prob, mopts);
  const auto reports = driver.run_load_steps(5);
  real prev = 0;
  bool any_plastic = false;
  for (const auto& rep : reports) {
    ASSERT_TRUE(rep.converged);
    EXPECT_GE(rep.plastic_fraction, prev - 1e-12);
    prev = rep.plastic_fraction;
    if (rep.plastic_fraction > 0) any_plastic = true;
  }
  EXPECT_TRUE(any_plastic);
  EXPECT_GT(reports.back().plastic_fraction, 0.5);
}

TEST(Newton, AdaptiveSubsteppingRecoversFromAggressiveStep) {
  // A single huge step on a soft NH cube: solve_step_adaptive must either
  // converge directly or succeed via substeps; the state must be usable.
  fem::Material soft;
  soft.model = fem::MaterialModel::kNeoHookean;
  soft.youngs = 1.0;
  soft.poisson = 0.45;
  const app::ModelProblem model = app::make_box_problem(2, 0.35, soft);
  fem::FeProblem prob(model.mesh, model.materials, model.dofmap);
  mg::MgOptions mopts;
  mopts.coarsest_max_dofs = 60;
  NewtonDriver driver(prob, mopts);
  const NewtonStepReport rep = driver.solve_step_adaptive(1.0);
  EXPECT_TRUE(rep.converged);
}

TEST(Newton, MixedMaterialSphereStepMatchesPaperIterationBand) {
  // One load step of the §7 problem at small scale: first linear solve
  // iteration count lands in the paper's 20-40 band.
  mesh::SphereInCubeParams sp;
  sp.num_shells = 5;
  sp.base_core_layers = 1;
  sp.base_outer_layers = 1;
  const app::ModelProblem model = app::make_sphere_problem(sp, 0.12);
  fem::FeProblem prob(model.mesh, model.materials, model.dofmap);
  mg::MgOptions mopts;
  mopts.coarsest_max_dofs = 300;
  NewtonDriver driver(prob, mopts);
  const NewtonStepReport rep = driver.solve_step(1.0);
  ASSERT_TRUE(rep.converged);
  ASSERT_FALSE(rep.linear_iters.empty());
  EXPECT_GT(rep.linear_iters[0], 3);
  EXPECT_LT(rep.linear_iters[0], 60);
}

}  // namespace
}  // namespace prom::nonlinear
