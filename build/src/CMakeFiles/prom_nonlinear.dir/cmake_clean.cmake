file(REMOVE_RECURSE
  "CMakeFiles/prom_nonlinear.dir/nonlinear/newton.cpp.o"
  "CMakeFiles/prom_nonlinear.dir/nonlinear/newton.cpp.o.d"
  "libprom_nonlinear.a"
  "libprom_nonlinear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prom_nonlinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
