#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "la/csr.h"
#include "la/vec.h"

namespace prom::la {
namespace {

Csr random_sparse(idx nrows, idx ncols, idx nnz_target, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> t;
  for (idx k = 0; k < nnz_target; ++k) {
    t.push_back({static_cast<idx>(rng.next_below(nrows)),
                 static_cast<idx>(rng.next_below(ncols)),
                 rng.next_real() - 0.5});
  }
  return Csr::from_triplets(nrows, ncols, t);
}

std::vector<real> random_vec(idx n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<real> v(static_cast<std::size_t>(n));
  for (real& x : v) x = rng.next_real() - 0.5;
  return v;
}

/// Dense reference SpMV.
std::vector<real> dense_spmv(const Csr& a, std::span<const real> x) {
  const std::vector<real> d = a.to_dense_rowmajor();
  std::vector<real> y(static_cast<std::size_t>(a.nrows), 0);
  for (idx i = 0; i < a.nrows; ++i) {
    for (idx j = 0; j < a.ncols; ++j) {
      y[i] += d[static_cast<std::size_t>(i) * a.ncols + j] * x[j];
    }
  }
  return y;
}

TEST(Csr, FromTripletsSumsDuplicates) {
  std::vector<Triplet> t = {{0, 0, 1.0}, {0, 0, 2.0}, {1, 2, 5.0}};
  const Csr a = Csr::from_triplets(2, 3, t);
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 0.0);
}

TEST(Csr, ColumnsSortedWithinRows) {
  std::vector<Triplet> t = {{0, 5, 1}, {0, 1, 1}, {0, 3, 1}};
  const Csr a = Csr::from_triplets(1, 6, t);
  EXPECT_EQ(a.colidx, (std::vector<idx>{1, 3, 5}));
}

TEST(Csr, EmptyRowsHandled) {
  std::vector<Triplet> t = {{3, 0, 1.0}};
  const Csr a = Csr::from_triplets(5, 2, t);
  EXPECT_EQ(a.nnz(), 1);
  std::vector<real> y(5);
  a.spmv(std::vector<real>{2, 0}, y);
  EXPECT_EQ(y, (std::vector<real>{0, 0, 0, 2, 0}));
}

class CsrRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsrRandom, SpmvMatchesDense) {
  const Csr a = random_sparse(17, 23, 120, GetParam());
  const std::vector<real> x = random_vec(23, GetParam() + 1);
  std::vector<real> y(17);
  a.spmv(x, y);
  const std::vector<real> ref = dense_spmv(a, x);
  for (idx i = 0; i < 17; ++i) EXPECT_NEAR(y[i], ref[i], 1e-12);
}

TEST_P(CsrRandom, SpmvAddAccumulates) {
  const Csr a = random_sparse(9, 9, 40, GetParam());
  const std::vector<real> x = random_vec(9, GetParam() + 2);
  std::vector<real> y(9, 1.0), y2(9);
  a.spmv(x, y2);
  a.spmv_add(x, y);
  for (idx i = 0; i < 9; ++i) EXPECT_NEAR(y[i], y2[i] + 1.0, 1e-13);
}

TEST_P(CsrRandom, TransposeIsInvolutionAndConsistent) {
  const Csr a = random_sparse(11, 7, 40, GetParam());
  const Csr at = a.transposed();
  EXPECT_EQ(at.nrows, 7);
  EXPECT_EQ(at.ncols, 11);
  const Csr att = at.transposed();
  EXPECT_EQ(att.to_dense_rowmajor(), a.to_dense_rowmajor());
  // spmv_transpose(a) == spmv(at)
  const std::vector<real> x = random_vec(11, GetParam() + 3);
  std::vector<real> y1(7), y2(7);
  a.spmv_transpose(x, y1);
  at.spmv(x, y2);
  for (idx i = 0; i < 7; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-13);
}

TEST_P(CsrRandom, SpgemmMatchesDense) {
  const Csr a = random_sparse(8, 12, 40, GetParam());
  const Csr b = random_sparse(12, 6, 40, GetParam() + 7);
  const Csr c = spgemm(a, b);
  const auto da = a.to_dense_rowmajor();
  const auto db = b.to_dense_rowmajor();
  const auto dc = c.to_dense_rowmajor();
  for (idx i = 0; i < 8; ++i) {
    for (idx j = 0; j < 6; ++j) {
      real ref = 0;
      for (idx k = 0; k < 12; ++k) {
        ref += da[static_cast<std::size_t>(i) * 12 + k] *
               db[static_cast<std::size_t>(k) * 6 + j];
      }
      EXPECT_NEAR(dc[static_cast<std::size_t>(i) * 6 + j], ref, 1e-12);
    }
  }
}

TEST_P(CsrRandom, GalerkinProductSymmetricForSymmetricA) {
  // A = S + S^T (symmetric), R random rectangular; R A R^T symmetric.
  const Csr s = random_sparse(10, 10, 50, GetParam());
  Csr a;
  {
    std::vector<Triplet> t;
    for (idx i = 0; i < 10; ++i) {
      for (nnz_t k = s.rowptr[i]; k < s.rowptr[i + 1]; ++k) {
        t.push_back({i, s.colidx[k], s.vals[k]});
        t.push_back({s.colidx[k], i, s.vals[k]});
      }
    }
    a = Csr::from_triplets(10, 10, t);
  }
  const Csr r = random_sparse(4, 10, 20, GetParam() + 11);
  const Csr coarse = galerkin_product(r, a);
  EXPECT_EQ(coarse.nrows, 4);
  EXPECT_EQ(coarse.ncols, 4);
  EXPECT_LT(coarse.symmetry_error(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrRandom,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 17u, 99u));

TEST(Csr, Identity) {
  const Csr eye = Csr::identity(4);
  std::vector<real> x = {1, 2, 3, 4}, y(4);
  eye.spmv(x, y);
  EXPECT_EQ(y, x);
}

TEST(Csr, DiagonalExtraction) {
  std::vector<Triplet> t = {{0, 0, 2}, {1, 0, 7}, {2, 2, -3}};
  const Csr a = Csr::from_triplets(3, 3, t);
  EXPECT_EQ(a.diagonal(), (std::vector<real>{2, 0, -3}));
}

TEST(Csr, SymmetryError) {
  std::vector<Triplet> t = {{0, 1, 2.0}, {1, 0, 2.5}};
  const Csr a = Csr::from_triplets(2, 2, t);
  EXPECT_NEAR(a.symmetry_error(), 0.5, 1e-15);
}

TEST(Csr, DropSmallKeepsDiagonal) {
  std::vector<Triplet> t = {{0, 0, 1e-12}, {0, 1, 1.0}, {1, 0, 1e-14}};
  const Csr a = Csr::from_triplets(2, 2, t);
  const Csr b = drop_small(a, 1e-10);
  EXPECT_DOUBLE_EQ(b.at(0, 0), 1e-12);  // diagonal kept
  EXPECT_DOUBLE_EQ(b.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(b.at(1, 0), 0.0);  // off-diagonal dropped
}

TEST(Csr, OutOfRangeTripletThrows) {
  std::vector<Triplet> t = {{0, 5, 1.0}};
  EXPECT_THROW(Csr::from_triplets(2, 2, t), Error);
}

}  // namespace
}  // namespace prom::la
