#include "la/sparse_chol.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/flops.h"
#include "graph/graph.h"
#include "graph/order.h"

namespace prom::la {

SparseCholesky::SparseCholesky(const Csr& a, const Options& opts)
    : n_(a.nrows) {
  PROM_CHECK(a.nrows == a.ncols);
  const idx n = n_;

  // Fill-reducing preordering on the matrix adjacency graph.
  if (opts.use_rcm && n > 1) {
    std::vector<std::pair<idx, idx>> edges;
    for (idx i = 0; i < n; ++i) {
      for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
        if (a.colidx[k] > i) edges.emplace_back(i, a.colidx[k]);
      }
    }
    const graph::Graph g = graph::Graph::from_edges(n, edges);
    perm_ = graph::reverse_cuthill_mckee(g);
  } else {
    perm_.resize(static_cast<std::size_t>(n));
    std::iota(perm_.begin(), perm_.end(), idx{0});
  }
  iperm_.resize(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) iperm_[perm_[i]] = i;

  // Left-looking LL^T on the permuted matrix. Column patterns grow
  // dynamically; row_cols[i] lists (column k, position of L(i,k)) pairs
  // for finished columns k with a nonzero in row i.
  colptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  diag_.assign(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<std::pair<idx, nnz_t>>> row_cols(
      static_cast<std::size_t>(n));

  std::vector<real> w(static_cast<std::size_t>(n), 0);
  std::vector<char> touched(static_cast<std::size_t>(n), 0);
  std::vector<idx> pattern;

  for (idx j = 0; j < n; ++j) {
    // Load column j of the permuted A (entries at/below the diagonal).
    pattern.clear();
    const idx oj = perm_[j];
    for (nnz_t k = a.rowptr[oj]; k < a.rowptr[oj + 1]; ++k) {
      const idx i = iperm_[a.colidx[k]];
      if (i < j) continue;
      if (!touched[i]) {
        touched[i] = 1;
        w[i] = 0;
        if (i != j) pattern.push_back(i);
      }
      w[i] += a.vals[k];
    }
    if (!touched[j]) {
      touched[j] = 1;
      w[j] = 0;
    }
    w[j] += opts.shift;

    // Subtract contributions of all finished columns with L(j,k) != 0.
    for (const auto& [k, pos] : row_cols[j]) {
      const real ljk = values_[pos];
      for (nnz_t q = pos; q < colptr_[k + 1]; ++q) {
        const idx i = rowidx_[q];
        if (!touched[i]) {
          touched[i] = 1;
          w[i] = 0;
          pattern.push_back(i);
        }
        w[i] -= ljk * values_[q];
      }
      factor_flops_ += 2 * (colptr_[k + 1] - pos);
    }

    const real djj = w[j];
    touched[j] = 0;
    if (!(std::isfinite(djj)) || djj <= 0) {
      for (idx i : pattern) touched[i] = 0;
      ok_ = false;
      return;
    }
    const real ljj = std::sqrt(djj);
    diag_[j] = ljj;

    std::sort(pattern.begin(), pattern.end());
    for (idx i : pattern) {
      touched[i] = 0;
      const real lij = w[i] / ljj;
      if (lij != 0) {
        // Record this entry's position for the future column i update.
        row_cols[i].emplace_back(j, static_cast<nnz_t>(values_.size()));
        rowidx_.push_back(i);
        values_.push_back(lij);
      }
    }
    factor_flops_ += static_cast<std::int64_t>(pattern.size()) + 2;
    colptr_[j + 1] = static_cast<nnz_t>(values_.size());
  }
  count_flops(factor_flops_);
  ok_ = true;
}

nnz_t SparseCholesky::factor_nnz() const {
  return static_cast<nnz_t>(values_.size()) + n_;
}

void SparseCholesky::solve(std::span<const real> b, std::span<real> x) const {
  PROM_CHECK_MSG(ok_, "SparseCholesky::solve on a failed factorization");
  PROM_CHECK(static_cast<idx>(b.size()) == n_ &&
             static_cast<idx>(x.size()) == n_);
  const idx n = n_;
  std::vector<real> z(static_cast<std::size_t>(n));
  for (idx j = 0; j < n; ++j) z[j] = b[perm_[j]];
  // Forward: L z = b.
  for (idx j = 0; j < n; ++j) {
    z[j] /= diag_[j];
    const real zj = z[j];
    for (nnz_t q = colptr_[j]; q < colptr_[j + 1]; ++q) {
      z[rowidx_[q]] -= values_[q] * zj;
    }
  }
  // Backward: L^T y = z.
  for (idx j = n - 1; j >= 0; --j) {
    real sum = z[j];
    for (nnz_t q = colptr_[j]; q < colptr_[j + 1]; ++q) {
      sum -= values_[q] * z[rowidx_[q]];
    }
    z[j] = sum / diag_[j];
  }
  for (idx j = 0; j < n; ++j) x[perm_[j]] = z[j];
  count_flops(4 * static_cast<std::int64_t>(values_.size()) + 4LL * n);
}

}  // namespace prom::la
