#include "la/vec.h"

#include <cmath>

#include "common/error.h"
#include "common/flops.h"

namespace prom::la {

void axpy(real a, std::span<const real> x, std::span<real> y) {
  PROM_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
  count_flops(2 * static_cast<std::int64_t>(x.size()));
}

void aypx(real a, std::span<const real> x, std::span<real> y) {
  PROM_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] + a * y[i];
  count_flops(2 * static_cast<std::int64_t>(x.size()));
}

void waxpby(real a, std::span<const real> x, real b, std::span<const real> y,
            std::span<real> w) {
  PROM_CHECK(x.size() == y.size() && x.size() == w.size());
  for (std::size_t i = 0; i < x.size(); ++i) w[i] = a * x[i] + b * y[i];
  count_flops(3 * static_cast<std::int64_t>(x.size()));
}

real dot(std::span<const real> x, std::span<const real> y) {
  PROM_CHECK(x.size() == y.size());
  real sum = 0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  count_flops(2 * static_cast<std::int64_t>(x.size()));
  return sum;
}

real nrm2(std::span<const real> x) { return std::sqrt(dot(x, x)); }

void scale(real a, std::span<real> x) {
  for (real& v : x) v *= a;
  count_flops(static_cast<std::int64_t>(x.size()));
}

void set_all(std::span<real> x, real value) {
  for (real& v : x) v = value;
}

void copy(std::span<const real> x, std::span<real> y) {
  PROM_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i];
}

}  // namespace prom::la
