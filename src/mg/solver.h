// The paper's solver: conjugate gradient preconditioned with one multigrid
// cycle (§7.2: "preconditioned conjugate gradient (PCG), preconditioned
// with one 'full' multigrid cycle").
#pragma once

#include <span>

#include "la/krylov.h"
#include "la/operator.h"
#include "mg/cycle.h"
#include "mg/hierarchy.h"

namespace prom::mg {

enum class CycleKind : std::uint8_t { kV, kFmg };

/// Adapts one multigrid cycle to the preconditioner interface.
class MgPreconditioner final : public la::LinearOperator {
 public:
  MgPreconditioner(const Hierarchy& h, CycleKind kind)
      : h_(&h), kind_(kind) {}

  idx rows() const override { return h_->level(0).a.nrows; }
  idx cols() const override { return rows(); }
  void apply(std::span<const real> x, std::span<real> y) const override;

 private:
  const Hierarchy* h_;
  CycleKind kind_;
};

struct MgSolveOptions {
  real rtol = 1e-6;
  int max_iters = 200;
  CycleKind cycle = CycleKind::kFmg;
  bool track_history = false;
};

/// Solves A_0 x = b with MG-preconditioned CG; x holds the initial guess.
la::KrylovResult mg_pcg_solve(const Hierarchy& h, std::span<const real> b,
                              std::span<real> x,
                              const MgSolveOptions& opts = {});

}  // namespace prom::mg
