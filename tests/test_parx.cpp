#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/flops.h"
#include "parx/runtime.h"

namespace prom::parx {
namespace {

class ParxRanks : public ::testing::TestWithParam<int> {};

TEST_P(ParxRanks, PointToPointRoundTrip) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP();
  Runtime::run(p, [](Comm& comm) {
    // Ring: send my rank to the next rank, receive from the previous.
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    if (next != comm.rank()) {
      comm.send_value<int>(next, 7, comm.rank());
      EXPECT_EQ(comm.recv_value<int>(prev, 7), prev);
    }
  });
}

TEST_P(ParxRanks, TagMatchingIsSelective) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP();
  Runtime::run(p, [](Comm& comm) {
    if (comm.rank() == 0) {
      // Send two tagged messages out of order; rank 1 receives by tag.
      comm.send_value<int>(1, 20, 222);
      comm.send_value<int>(1, 10, 111);
    } else if (comm.rank() == 1) {
      EXPECT_EQ(comm.recv_value<int>(0, 10), 111);
      EXPECT_EQ(comm.recv_value<int>(0, 20), 222);
    }
  });
}

TEST_P(ParxRanks, FifoPerSourceAndTag) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP();
  Runtime::run(p, [](Comm& comm) {
    constexpr int kN = 50;
    if (comm.rank() == 0) {
      for (int i = 0; i < kN; ++i) comm.send_value<int>(1, 3, i);
    } else if (comm.rank() == 1) {
      for (int i = 0; i < kN; ++i) {
        EXPECT_EQ(comm.recv_value<int>(0, 3), i);
      }
    }
  });
}

TEST_P(ParxRanks, Barrier) {
  const int p = GetParam();
  std::atomic<int> phase_one{0};
  std::atomic<bool> violated{false};
  Runtime::run(p, [&](Comm& comm) {
    phase_one.fetch_add(1);
    comm.barrier();
    if (phase_one.load() != comm.size()) violated = true;
  });
  EXPECT_FALSE(violated.load());
}

TEST_P(ParxRanks, AllreduceSumMinMax) {
  const int p = GetParam();
  Runtime::run(p, [p](Comm& comm) {
    const double mine = comm.rank() + 1;
    EXPECT_DOUBLE_EQ(comm.allreduce_sum(mine), p * (p + 1) / 2.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_min(mine), 1.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_max(mine), static_cast<double>(p));
    EXPECT_EQ(comm.allreduce_sum(std::int64_t{2}), 2 * p);
  });
}

TEST_P(ParxRanks, AllreduceVector) {
  const int p = GetParam();
  Runtime::run(p, [p](Comm& comm) {
    std::vector<double> v = {1.0 * comm.rank(), 1.0};
    v = comm.allreduce(v, Comm::ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(v[0], p * (p - 1) / 2.0);
    EXPECT_DOUBLE_EQ(v[1], static_cast<double>(p));
  });
}

TEST_P(ParxRanks, BcastFromEveryRoot) {
  const int p = GetParam();
  Runtime::run(p, [p](Comm& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<int> data;
      if (comm.rank() == root) data = {root, 10 * root, -1};
      data = comm.bcast(std::move(data), root);
      ASSERT_EQ(data.size(), 3u);
      EXPECT_EQ(data[0], root);
      EXPECT_EQ(data[1], 10 * root);
    }
  });
}

TEST_P(ParxRanks, Allgatherv) {
  const int p = GetParam();
  Runtime::run(p, [](Comm& comm) {
    // Rank r contributes r+1 copies of its rank id.
    std::vector<int> mine(static_cast<std::size_t>(comm.rank()) + 1,
                          comm.rank());
    const auto all = comm.allgatherv(mine);
    ASSERT_EQ(static_cast<int>(all.size()), comm.size());
    for (int r = 0; r < comm.size(); ++r) {
      ASSERT_EQ(static_cast<int>(all[r].size()), r + 1);
      for (int v : all[r]) EXPECT_EQ(v, r);
    }
  });
}

TEST_P(ParxRanks, Alltoallv) {
  const int p = GetParam();
  Runtime::run(p, [p](Comm& comm) {
    std::vector<std::vector<int>> send(p);
    for (int r = 0; r < p; ++r) send[r] = {100 * comm.rank() + r};
    const auto recv = comm.alltoallv(send);
    for (int r = 0; r < p; ++r) {
      ASSERT_EQ(recv[r].size(), 1u);
      EXPECT_EQ(recv[r][0], 100 * r + comm.rank());
    }
  });
}

TEST_P(ParxRanks, RecvIntoMatchesRecv) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP();
  Runtime::run(p, [](Comm& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    std::vector<double> mine(17);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      mine[i] = 100.0 * comm.rank() + static_cast<double>(i);
    }
    comm.send<double>(next, 31, mine);
    std::vector<double> got(mine.size(), -1.0);
    comm.recv_into<double>(prev, 31, got);
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], 100.0 * prev + static_cast<double>(i));
    }
  });
}

TEST(Parx, WaitAnyReturnsArrivalOrder) {
  // Rank 2 sends first and rank 1 only after rank 0 has consumed rank 2's
  // message, so wait_any must report rank 2 although rank 1 is listed
  // first — a rank-ordered drain would block on the still-silent rank 1.
  Runtime::run(3, [](Comm& comm) {
    constexpr int kTag = 41;
    if (comm.rank() == 0) {
      const std::vector<int> sources = {1, 2};
      const int first = comm.wait_any(sources, kTag);
      EXPECT_EQ(first, 2);
      EXPECT_EQ(comm.recv_value<int>(first, kTag), 22);
      comm.send_value<int>(1, kTag + 1, 0);  // release rank 1
      const int second = comm.wait_any(sources, kTag);
      EXPECT_EQ(second, 1);
      EXPECT_EQ(comm.recv_value<int>(second, kTag), 11);
    } else if (comm.rank() == 1) {
      (void)comm.recv_value<int>(0, kTag + 1);
      comm.send_value<int>(0, kTag, 11);
    } else {
      comm.send_value<int>(0, kTag, 22);
    }
  });
}

TEST(Parx, WaitAnyIgnoresUnlistedSourcesAndTags) {
  Runtime::run(3, [](Comm& comm) {
    constexpr int kTag = 43;
    if (comm.rank() == 0) {
      // Rank 2's wrong-tag message and rank 1's unlisted-source message
      // must not satisfy the wait.
      (void)comm.recv_value<int>(1, kTag);      // ensure both arrived
      (void)comm.recv_value<int>(2, kTag + 1);  // wrong-tag arrival
      const std::vector<int> sources = {2};
      EXPECT_FALSE(comm.has_message(2, kTag));
      comm.send_value<int>(2, kTag, 0);  // ask rank 2 for the real one
      EXPECT_EQ(comm.wait_any(sources, kTag), 2);
      EXPECT_EQ(comm.recv_value<int>(2, kTag), 99);
    } else if (comm.rank() == 1) {
      comm.send_value<int>(0, kTag, 1);
    } else {
      comm.send_value<int>(0, kTag + 1, 2);
      (void)comm.recv_value<int>(0, kTag);
      comm.send_value<int>(0, kTag, 99);
    }
  });
}

TEST(Parx, AllgathervTrafficAvoidsRootFunnel) {
  // Dissemination allgatherv ships every foreign block to every receiver
  // exactly once: total data = (p-1) * S plus one 8-byte length header
  // per shipped block. The old gather-to-root + bcast path moved ~2x the
  // payload (S per rank to root, then the p*S concatenation down a
  // binomial tree), so total traffic must now stay strictly below p * S.
  const int p = 8;
  static constexpr std::size_t kPerRank = 1000;
  const auto stats = Runtime::run(p, [](Comm& comm) {
    std::vector<double> mine(kPerRank, 1.0 + comm.rank());
    const auto all = comm.allgatherv(mine);
    for (int r = 0; r < comm.size(); ++r) {
      ASSERT_EQ(all[r].size(), kPerRank);
      EXPECT_EQ(all[r][0], 1.0 + r);
    }
  });
  const std::int64_t per_rank =
      static_cast<std::int64_t>(kPerRank) * sizeof(double);
  const std::int64_t payload = p * per_rank;  // S: the gathered result
  std::int64_t total_bytes = 0;
  for (const auto& s : stats) total_bytes += s.bytes_sent;
  // (p-1) foreign blocks per receiver plus an 8-byte header per block.
  EXPECT_EQ(total_bytes,
            std::int64_t{p} * (p - 1) * per_rank + std::int64_t{8} * p * (p - 1));
  EXPECT_LT(total_bytes, p * payload);
}

TEST_P(ParxRanks, TrafficStatsCountSends) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP();
  const auto stats = Runtime::run(p, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> payload(100, 1.0);
      comm.send<double>(1, 5, payload);
    } else if (comm.rank() == 1) {
      (void)comm.recv<double>(0, 5);
    }
  });
  EXPECT_EQ(stats[0].messages_sent, 1);
  EXPECT_EQ(stats[0].bytes_sent, 800);
  if (p > 1) {
    EXPECT_EQ(stats[1].messages_sent, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ParxRanks,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13));

TEST(Parx, SplitSubsetCollectivesAndConcurrentDisjointGroups) {
  // Evens and odds each split off their own communicator and run the same
  // collectives concurrently: translation keeps every message inside the
  // group, so the shared tag space never cross-talks between disjoint
  // groups.
  Runtime::run(8, [](Comm& comm) {
    std::vector<int> members;
    for (int r = comm.rank() % 2; r < 8; r += 2) members.push_back(r);
    Comm sub = comm.split(members);
    EXPECT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    const double sum = sub.allreduce_sum(1.0 * comm.rank());
    EXPECT_DOUBLE_EQ(sum, comm.rank() % 2 == 0 ? 12.0 : 16.0);
    std::vector<int> data;
    if (sub.rank() == 1) data = {comm.rank() % 2 + 100};
    data = sub.bcast(std::move(data), 1);
    ASSERT_EQ(data.size(), 1u);
    EXPECT_EQ(data[0], comm.rank() % 2 + 100);
    const auto all = sub.allgatherv(std::vector<int>{comm.rank()});
    ASSERT_EQ(all.size(), 4u);
    for (int r = 0; r < 4; ++r) {
      ASSERT_EQ(all[r].size(), 1u);
      EXPECT_EQ(all[r][0], 2 * r + comm.rank() % 2);
    }
    sub.barrier();
  });
}

TEST(Parx, SplitTranslatesPointToPointAndTraffic) {
  // Group ranks are translated at the p2p boundary: subcomm rank 0 is
  // global rank 1, and the traffic stats bill that global rank.
  const auto stats = Runtime::run(4, [](Comm& comm) {
    if (comm.rank() != 1 && comm.rank() != 3) return;
    Comm sub = comm.split(std::vector<int>{1, 3});
    if (sub.rank() == 0) {
      sub.send_value<int>(1, 9, 77);
      EXPECT_EQ(sub.traffic().messages_sent, 1);
    } else {
      EXPECT_EQ(sub.recv_value<int>(0, 9), 77);
      EXPECT_FALSE(sub.has_message(0, 9));
    }
  });
  EXPECT_EQ(stats[1].messages_sent, 1);
  EXPECT_EQ(stats[3].messages_sent, 0);
}

TEST(Parx, SplitNests) {
  // A split of a split composes the translations: members are named in
  // parent-communicator ranks at every layer.
  Runtime::run(8, [](Comm& comm) {
    if (comm.rank() % 2 != 0) return;
    Comm evens = comm.split(std::vector<int>{0, 2, 4, 6});
    if (evens.rank() >= 2) return;
    Comm pair = evens.split(std::vector<int>{0, 1});  // global {0, 2}
    EXPECT_EQ(pair.size(), 2);
    EXPECT_DOUBLE_EQ(pair.allreduce_sum(1.0 * comm.rank()), 2.0);
    const auto all = pair.allgatherv(std::vector<int>{comm.rank()});
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0][0], 0);
    EXPECT_EQ(all[1][0], 2);
  });
}

TEST(Parx, SplitWaitAnyReportsGroupRanks) {
  // Arrival-order drain inside a subcomm: sources are listed and reported
  // in group ranks (the halo plans of agglomerated levels rely on this).
  Runtime::run(4, [](Comm& comm) {
    if (comm.rank() == 0) return;
    Comm sub = comm.split(std::vector<int>{1, 2, 3});
    constexpr int kTag = 17;
    if (sub.rank() == 0) {
      const std::vector<int> sources = {1, 2};
      const int first = sub.wait_any(sources, kTag);
      EXPECT_EQ(first, 2);
      EXPECT_EQ(sub.recv_value<int>(2, kTag), 22);
      sub.send_value<int>(1, kTag + 1, 0);  // release sub rank 1
      const int second = sub.wait_any(sources, kTag);
      EXPECT_EQ(second, 1);
      EXPECT_EQ(sub.recv_value<int>(1, kTag), 11);
    } else if (sub.rank() == 1) {
      (void)sub.recv_value<int>(0, kTag + 1);
      sub.send_value<int>(0, kTag, 11);
    } else {
      sub.send_value<int>(0, kTag, 22);
    }
  });
}

TEST(Parx, SplitSingletonBehavesLikeSingleRankWorld) {
  Runtime::run(3, [](Comm& comm) {
    Comm solo = comm.split(std::vector<int>{comm.rank()});
    EXPECT_EQ(solo.size(), 1);
    EXPECT_EQ(solo.rank(), 0);
    EXPECT_DOUBLE_EQ(solo.allreduce_sum(2.5), 2.5);
    solo.barrier();
    const auto all = solo.allgatherv(std::vector<int>{comm.rank()});
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0][0], comm.rank());
  });
}

TEST(Parx, ExceptionInRankPropagates) {
  EXPECT_THROW(Runtime::run(3,
                            [](Comm& comm) {
                              if (comm.rank() == 1) {
                                throw Error("rank 1 exploded");
                              }
                            }),
               Error);
}

TEST(Parx, FlopCountsPerRank) {
  const auto stats = Runtime::run(4, [](Comm& comm) {
    count_flops(10 * (comm.rank() + 1));
  });
  for (int r = 0; r < 4; ++r) EXPECT_EQ(stats[r].flops, 10 * (r + 1));
}

}  // namespace
}  // namespace prom::parx
