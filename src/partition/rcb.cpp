#include "partition/rcb.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "geom/aabb.h"

namespace prom::partition {
namespace {

// Recursively assigns parts [part_lo, part_lo + nparts) to the points whose
// indices are in `ids` (modified in place by nth_element).
void rcb_recurse(std::span<const Vec3> points, std::span<idx> ids,
                 idx part_lo, idx nparts, std::vector<idx>& part) {
  if (nparts == 1) {
    for (idx i : ids) part[i] = part_lo;
    return;
  }
  Aabb box;
  for (idx i : ids) box.extend(points[i]);
  const Vec3 ext = box.extent();
  int axis = 0;
  if (ext.y > ext.x) axis = 1;
  if (ext.z > ext[axis]) axis = 2;

  // Split point counts proportionally to the part counts on each side so
  // non-power-of-two part counts stay balanced.
  const idx left_parts = nparts / 2;
  const idx right_parts = nparts - left_parts;
  const std::size_t left_count =
      ids.size() * static_cast<std::size_t>(left_parts) / nparts;
  auto mid = ids.begin() + static_cast<std::ptrdiff_t>(left_count);
  std::nth_element(ids.begin(), mid, ids.end(), [&](idx a, idx b) {
    if (points[a][axis] != points[b][axis]) {
      return points[a][axis] < points[b][axis];
    }
    return a < b;  // deterministic tie-break
  });
  rcb_recurse(points, ids.subspan(0, left_count), part_lo, left_parts, part);
  rcb_recurse(points, ids.subspan(left_count), part_lo + left_parts,
              right_parts, part);
}

}  // namespace

std::vector<idx> rcb_partition(std::span<const Vec3> points, idx nparts) {
  PROM_CHECK(nparts >= 1);
  std::vector<idx> part(points.size(), 0);
  if (nparts == 1 || points.empty()) return part;
  std::vector<idx> ids(points.size());
  std::iota(ids.begin(), ids.end(), idx{0});
  rcb_recurse(points, ids, 0, nparts, part);
  return part;
}

std::vector<idx> part_sizes(std::span<const idx> part, idx nparts) {
  std::vector<idx> sizes(static_cast<std::size_t>(nparts), 0);
  for (idx p : part) {
    PROM_CHECK(p >= 0 && p < nparts);
    sizes[p]++;
  }
  return sizes;
}

std::vector<std::vector<idx>> parts_to_blocks(std::span<const idx> part,
                                              idx nparts) {
  // blocks[p] lists the members of part p — aligned with part ids, so an
  // empty part yields an empty block (callers that cannot use empty
  // blocks filter them out themselves).
  std::vector<std::vector<idx>> blocks(static_cast<std::size_t>(nparts));
  for (std::size_t i = 0; i < part.size(); ++i) {
    blocks[part[i]].push_back(static_cast<idx>(i));
  }
  return blocks;
}

}  // namespace prom::partition
