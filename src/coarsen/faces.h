// Face identification (the paper's Figure 3): partitions the boundary
// facets of a mesh into "faces" — maximal somewhat-flat manifolds — by
// breadth-first growth from seed facets, constrained so every facet in a
// face keeps normal agreement (dot product > TOL) with both the face's
// root facet and its BFS parent neighbor.
#pragma once

#include <span>
#include <vector>

#include "common/config.h"
#include "graph/graph.h"
#include "mesh/mesh.h"

namespace prom::coarsen {

struct FaceIdOptions {
  /// Minimum cosine between facet normals within a face (the paper's user
  /// tolerance TOL, -1 < TOL <= 1). cos(30 deg) by default.
  real tol = 0.866;
};

struct FaceIdResult {
  /// face id per facet, in [0, num_faces).
  std::vector<idx> face_id;
  idx num_faces = 0;
};

/// Serial face identification over `facets` with adjacency `facet_adj`
/// (from mesh::facet_adjacency). Deterministic: seeds are taken in facet
/// index order, exactly as Figure 3's "forall f in facet_list".
FaceIdResult identify_faces(std::span<const mesh::Facet> facets,
                            const graph::Graph& facet_adj,
                            const FaceIdOptions& opts = {});

}  // namespace prom::coarsen
