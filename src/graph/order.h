// Vertex orderings for the MIS (§4.7): "natural" orders (block-regular
// input order, or a cache-friendly Cuthill–McKee order) tend to produce
// dense MISs; random orders produce sparse ones.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.h"
#include "graph/graph.h"

namespace prom::graph {

/// The identity permutation 0, 1, ..., n-1.
std::vector<idx> natural_order(idx n);

/// A deterministic pseudo-random permutation (Fisher–Yates).
std::vector<idx> random_order(idx n, std::uint64_t seed);

/// Cuthill–McKee: breadth-first from a minimum-degree vertex, neighbors
/// visited in increasing-degree order; handles disconnected graphs.
std::vector<idx> cuthill_mckee(const Graph& g);

/// Reverse Cuthill–McKee (the usual bandwidth-reducing variant).
std::vector<idx> reverse_cuthill_mckee(const Graph& g);

}  // namespace prom::graph
