#!/usr/bin/env bash
# CI race gate for the two-level parallelism model (parx rank threads x
# intra-rank kernel threads): builds the `tsan` preset and runs the
# threaded-determinism, parx stress, BSR kernel property, halo-exchange,
# matrix-free equivalence, and serial/distributed equivalence suites
# under ThreadSanitizer (the equivalence suite drives the whole
# distributed matrix setup + solve — both assembled formats — across
# 1..8 rank threads; the matrix-free suite drives the SIMD element
# kernel across kernel-thread counts and the overlapped DistMf apply on
# 1..8 ranks; the halo suite drives the overlapped arrival-order ghost
# drain with staggered peer sends; the service suite drives the blocked
# multi-RHS solve path — one message per peer carrying k columns — across
# rank and kernel-thread counts in all three matrix formats; the scalar
# assembly suite drives the chunked block-size-1 assembly across kernel-
# thread counts; the equations golden suite drives the scalar service
# path — GMRES included — on 2 rank threads).
# Any reported race fails the build (TSAN_OPTIONS below aborts on the
# first report).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)" --target \
  test_threads_determinism test_parx_stress test_la_bsr_prop \
  test_serial_dist_equiv test_mf_equiv test_halo test_obs test_service \
  test_agglom test_scalar_assembly_prop test_equations_golden \
  test_dist_refine

export TSAN_OPTIONS="halt_on_error=1 abort_on_error=1 ${TSAN_OPTIONS:-}"
# Exercise the pool beyond the core count regardless of the CI machine.
export PROM_THREADS="${PROM_THREADS:-4}"

./build-tsan/tests/test_threads_determinism
./build-tsan/tests/test_parx_stress
./build-tsan/tests/test_la_bsr_prop
./build-tsan/tests/test_serial_dist_equiv
./build-tsan/tests/test_mf_equiv
./build-tsan/tests/test_halo
./build-tsan/tests/test_obs
./build-tsan/tests/test_service
# Agglomerated coarse levels: idle ranks skipping the cycle subtree while
# active ranks exchange at the level boundary is exactly the kind of
# schedule a race would hide in.
./build-tsan/tests/test_agglom
# Scalar (block-size-1) stack: chunk-ordered assembly across kernel
# threads, and the non-symmetric Krylov drivers through the distributed
# service path.
./build-tsan/tests/test_scalar_assembly_prop
./build-tsan/tests/test_equations_golden
# Refined hierarchies: masked local smoothing and mesh repartitioning
# across 1..8 rank threads, plus the whole refine pipeline across
# kernel-thread counts.
./build-tsan/tests/test_dist_refine

echo "tsan gate: OK (no races reported)"
