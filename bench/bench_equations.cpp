// Scalar equation-class robustness sweep: MG-preconditioned iteration
// counts for the jump-coefficient Poisson problem as the coefficient
// contrast grows (1, 1e3, 1e6) and for the SUPG advection-diffusion
// problem as the Péclet number grows (1, 10, 100). Shape claims under
// test:
//  - MG-PCG iterations stay roughly flat across six orders of contrast
//    (the hierarchy is built from the jump operator itself, so the
//    Galerkin coarse operators see the interface),
//  - MG-GMRES iterations grow only mildly with Péclet while the damped-
//    Jacobi smoother plus SUPG fine operator keeps the cycle stable.
// Emits BENCH_equations.json with iterations and solve seconds per row.
//
// Environment: PROM_BENCH_FULL=1 enlarges the meshes; PROM_BENCH_SMOKE=1
// shrinks them (the CI smoke lane).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "app/driver.h"
#include "fem/scalar.h"
#include "la/krylov.h"
#include "mg/hierarchy.h"
#include "mg/solver.h"

using namespace prom;

namespace {

struct Row {
  double knob;       ///< contrast or Péclet number
  idx unknowns;
  int iterations;
  double solve_s;
  bool converged;
};

/// Assembles, builds the block-size-1 hierarchy, and solves one scalar
/// problem with the equation class's default Krylov driver.
Row run(const app::ModelProblem& p, double knob) {
  fem::ScalarSystem sys =
      fem::assemble_scalar_system(p.mesh, p.scalar_dofmap, p.coeffs);
  const mg::MgOptions mo = app::default_mg_options(p.equation);
  std::vector<real> rhs = std::move(sys.rhs);
  const mg::Hierarchy h = mg::Hierarchy::build_scalar(
      p.mesh, p.scalar_dofmap, std::move(sys.stiffness), mo);

  mg::MgSolveOptions so;
  so.rtol = 1e-8;
  so.max_iters = 200;
  so.krylov = app::default_krylov(p.equation);
  std::vector<real> x(rhs.size(), 0);
  const auto t0 = std::chrono::steady_clock::now();
  const la::KrylovResult r = mg::mg_krylov_solve(h, rhs, x, so);
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  return {knob, static_cast<idx>(rhs.size()), r.iterations, dt.count(),
          r.converged};
}

void print_rows(const char* knob_name, const std::vector<Row>& rows) {
  std::printf("%-10s | %-9s %-6s %-10s\n", knob_name, "unknowns", "its",
              "solve (s)");
  for (const Row& r : rows) {
    std::printf("%-10g | %-9d %-6d %-10.4f%s\n", r.knob, r.unknowns,
                r.iterations, r.solve_s, r.converged ? "" : "  DIVERGED");
  }
  std::printf("\n");
}

void write_rows(std::FILE* json, const char* name,
                const char* knob_name, const std::vector<Row>& rows,
                bool last) {
  std::fprintf(json, "  \"%s\": [\n", name);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(json,
                 "    {\"%s\": %g, \"unknowns\": %d, \"iterations\": %d, "
                 "\"solve_s\": %.6f, \"converged\": %s}%s\n",
                 knob_name, r.knob, r.unknowns, r.iterations, r.solve_s,
                 r.converged ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]%s\n", last ? "" : ",");
}

}  // namespace

int main() {
  const bool full = std::getenv("PROM_BENCH_FULL") != nullptr;
  const bool smoke = std::getenv("PROM_BENCH_SMOKE") != nullptr;
  const idx n = smoke ? 8 : (full ? 20 : 12);

  std::printf("equation classes on a %dx%dx%d box (MG-PCG for the "
              "symmetric class,\nright-preconditioned MG-GMRES for "
              "advection-diffusion, rtol 1e-8)\n\n",
              n, n, n);

  std::vector<Row> contrast_rows;
  for (const double contrast : {1.0, 1e3, 1e6}) {
    contrast_rows.push_back(
        run(app::make_poisson_het_problem(n, contrast), contrast));
  }
  print_rows("contrast", contrast_rows);

  std::vector<Row> peclet_rows;
  for (const double peclet : {1.0, 10.0, 100.0}) {
    peclet_rows.push_back(
        run(app::make_advdiff_problem(n, peclet), peclet));
  }
  print_rows("peclet", peclet_rows);

  // Reaction-dominated Helmholtz-like class (-div(grad u) + c u = f):
  // the zeroth-order term only adds diagonal mass, so MG-PCG iterations
  // should *drop* as c grows (the operator becomes more diagonally
  // dominant and the smoother more effective).
  std::vector<Row> reaction_rows;
  for (const double reaction : {1.0, 1e3, 1e6}) {
    reaction_rows.push_back(
        run(app::make_reaction_problem(n, reaction), reaction));
  }
  print_rows("reaction", reaction_rows);

  std::printf("shape claims: PCG iterations stay roughly flat across six\n"
              "orders of coefficient contrast, GMRES iterations grow only\n"
              "mildly with the Péclet number, and reaction dominance only\n"
              "helps the symmetric solver.\n");

  bool ok = true;
  for (const Row& r : contrast_rows) ok = ok && r.converged;
  for (const Row& r : peclet_rows) ok = ok && r.converged;
  for (const Row& r : reaction_rows) ok = ok && r.converged;

  std::FILE* json = std::fopen("BENCH_equations.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_equations.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"equations\",\n  \"n\": %d,\n", n);
  write_rows(json, "contrast_sweep", "contrast", contrast_rows, false);
  write_rows(json, "peclet_sweep", "peclet", peclet_rows, false);
  write_rows(json, "reaction_sweep", "reaction", reaction_rows, true);
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("wrote BENCH_equations.json\n");
  return ok ? 0 : 1;
}
