// Distributed CSR matrices: each rank stores the rows it owns; columns are
// split into the locally-owned block and "ghost" columns whose values are
// fetched from their owners by a precomputed neighbor-exchange plan before
// each SpMV — the standard PETSc-style MPIAIJ pattern the paper's solve
// phase runs on.
#pragma once

#include <span>
#include <vector>

#include "common/config.h"
#include "dla/dist_vec.h"
#include "dla/halo.h"
#include "la/csr.h"
#include "parx/runtime.h"

namespace prom::dla {

class DistCsr {
 public:
  DistCsr() = default;

  /// Builds this rank's slice of the global matrix `a` (replicated input;
  /// only rows [row_dist.begin(rank), end(rank)) are stored). `col_dist`
  /// describes the distribution of the input vector. Collective.
  DistCsr(parx::Comm& comm, const la::Csr& a, RowDist row_dist,
          RowDist col_dist);

  /// Builds from this rank's rows only: `local_rows` holds the owned rows
  /// (in owning order) with *global* column indices. This is how the
  /// distributed matrix-setup phase assembles operators — no rank ever
  /// materializes a global matrix. Collective (builds the exchange plan).
  static DistCsr from_local_rows(parx::Comm& comm, const la::Csr& local_rows,
                                 RowDist row_dist, RowDist col_dist);

  /// Slices rows [row_dist.begin(rank), end(rank)) of the *permuted* view
  /// of the replicated matrix `a` (out[i][j] = a[row_perm[i]][col_perm[j]])
  /// without forming the permuted global matrix. Used only on the fine
  /// level and for restrictions, whose serial inputs already exist.
  static DistCsr from_global_permuted(parx::Comm& comm, const la::Csr& a,
                                      RowDist row_dist, RowDist col_dist,
                                      std::span<const idx> row_perm,
                                      std::span<const idx> col_perm);

  const RowDist& row_dist() const { return rows_; }
  const RowDist& col_dist() const { return cols_; }
  idx local_rows() const { return local_.nrows; }
  idx num_ghosts() const { return static_cast<idx>(ghost_cols_.size()); }

  /// Global ids of this rank's ghost columns, ascending.
  const std::vector<idx>& ghost_cols() const { return ghost_cols_; }

  /// Global column id of a local column index (owned or ghost).
  idx global_col(idx local_col) const {
    const idx n_own = cols_.local_size(rank_);
    return local_col < n_own ? cols_.begin(rank_) + local_col
                             : ghost_cols_[local_col - n_own];
  }

  /// Local row indices whose entries reference only owned columns — safe
  /// to compute before the ghost exchange completes. Complemented by
  /// boundary_rows(); together they cover [0, local_rows()).
  const std::vector<idx>& interior_rows() const { return interior_rows_; }
  const std::vector<idx>& boundary_rows() const { return boundary_rows_; }

  /// The exchange plan (persistent staging; see dla/halo.h).
  const HaloPlan& halo_plan() const { return plan_; }

  /// y_local = A x (x given as the local block of the distributed input);
  /// performs the ghost exchange, overlapping it with the interior rows
  /// under HaloMode::kOverlap. Collective.
  void spmv(parx::Comm& comm, std::span<const real> x_local,
            std::span<real> y_local) const;

  /// r_local = b - A x, fused (same bits as spmv + subtraction, see
  /// la/backend.h). Collective.
  void residual(parx::Comm& comm, std::span<const real> b_local,
                std::span<const real> x_local, std::span<real> r_local) const;

  /// y_local = A^T x distributed: each rank computes its rows' scatter
  /// contributions and ships them to the owners of the output (used for
  /// prolongation when only R is stored). Collective.
  void spmv_transpose(parx::Comm& comm, std::span<const real> x_local,
                      std::span<real> y_local) const;

  /// Column-blocked spmv: one ghost exchange (one message per peer
  /// carrying all k columns) and one matrix pass serve every column;
  /// column j is bitwise identical to `spmv` on that column. Collective.
  void spmm(parx::Comm& comm, const la::MultiVec& x_local,
            la::MultiVec& y_local) const;

  /// Column-blocked fused residual. Collective.
  void residual_mv(parx::Comm& comm, const la::MultiVec& b_local,
                   const la::MultiVec& x_local, la::MultiVec& r_local) const;

  /// Column-blocked spmv_transpose (one reverse message per peer carrying
  /// all k columns). Collective.
  void spmm_transpose(parx::Comm& comm, const la::MultiVec& x_local,
                      la::MultiVec& y_local) const;

  /// The local rows with *local* column indexing: columns [0, n_local) are
  /// owned, [n_local, n_local + n_ghost) are ghosts.
  const la::Csr& local_matrix() const { return local_; }

  /// Diagonal block (owned rows x owned cols) as a standalone matrix —
  /// what the processor-local block-Jacobi smoother factors.
  la::Csr local_diagonal_block() const;

 private:
  /// Shared construction core: remaps the owned rows (global column ids)
  /// into the [owned | ghost] local indexing, builds the neighbor
  /// exchange plan with its persistent staging, and splits the rows into
  /// interior and boundary. Collective.
  void init_from_local(parx::Comm& comm, const la::Csr& local_rows);

  int rank_ = 0;
  RowDist rows_;
  RowDist cols_;
  la::Csr local_;                 // local rows, remapped columns
  std::vector<idx> ghost_cols_;   // global ids of ghost columns (sorted)
  HaloPlan plan_;                 // ghost exchange (forward + reverse)
  std::vector<idx> interior_rows_;  // rows referencing no ghost column
  std::vector<idx> boundary_rows_;  // the rest
  // Persistent [owned | ghost] work vectors: the owned prefix is rewritten
  // on every call and every ghost slot belongs to exactly one peer's recv
  // segment, so no per-call zero-fill or allocation is needed.
  mutable std::vector<real> x_ext_;
  mutable std::vector<real> y_ext_;  // spmv_transpose scratch
  // Blocked counterparts, reshaped lazily (no allocation once the widest
  // block has been seen; same rewrite invariants as the scalar buffers).
  mutable la::MultiVec x_ext_mv_;
  mutable la::MultiVec y_ext_mv_;
};

}  // namespace prom::dla
