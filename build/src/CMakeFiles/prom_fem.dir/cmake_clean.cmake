file(REMOVE_RECURSE
  "CMakeFiles/prom_fem.dir/fem/assembly.cpp.o"
  "CMakeFiles/prom_fem.dir/fem/assembly.cpp.o.d"
  "CMakeFiles/prom_fem.dir/fem/element.cpp.o"
  "CMakeFiles/prom_fem.dir/fem/element.cpp.o.d"
  "CMakeFiles/prom_fem.dir/fem/material.cpp.o"
  "CMakeFiles/prom_fem.dir/fem/material.cpp.o.d"
  "CMakeFiles/prom_fem.dir/fem/quadrature.cpp.o"
  "CMakeFiles/prom_fem.dir/fem/quadrature.cpp.o.d"
  "CMakeFiles/prom_fem.dir/fem/shape.cpp.o"
  "CMakeFiles/prom_fem.dir/fem/shape.cpp.o.d"
  "libprom_fem.a"
  "libprom_fem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prom_fem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
