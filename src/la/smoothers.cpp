#include "la/smoothers.h"

#include <algorithm>

#include "common/error.h"
#include "common/flops.h"
#include "common/parallel.h"
#include "la/vec.h"

namespace prom::la {
namespace {

/// Fixed chunk sizes (see common/parallel.h determinism contract).
constexpr idx kPointGrain = 8192;  // elementwise updates
constexpr idx kBlockGrain = 8;     // block-Jacobi blocks

std::vector<real> inverted_diagonal(const Csr& a) {
  std::vector<real> d = a.diagonal();
  for (real& v : d) {
    PROM_CHECK_MSG(v != real{0}, "smoother needs a nonzero diagonal");
    v = real{1} / v;
  }
  return d;
}

}  // namespace

JacobiSmoother::JacobiSmoother(const Csr& a, real omega)
    : a_(&a), omega_(omega), inv_diag_(inverted_diagonal(a)) {
  PROM_CHECK(a.nrows == a.ncols);
}

void JacobiSmoother::smooth(std::span<const real> b,
                            std::span<real> x) const {
  const idx n = a_->nrows;
  PROM_CHECK(static_cast<idx>(b.size()) == n &&
             static_cast<idx>(x.size()) == n);
  std::vector<real> r(n);
  a_->spmv(x, r);
  common::parallel_for(0, n, kPointGrain, [&](idx ib, idx ie) {
    for (idx i = ib; i < ie; ++i) {
      x[i] += omega_ * inv_diag_[i] * (b[i] - r[i]);
    }
  });
  count_flops(4LL * n);
}

SymmetricGaussSeidel::SymmetricGaussSeidel(const Csr& a)
    : a_(&a), inv_diag_(inverted_diagonal(a)) {
  PROM_CHECK(a.nrows == a.ncols);
}

void SymmetricGaussSeidel::smooth(std::span<const real> b,
                                  std::span<real> x) const {
  const idx n = a_->nrows;
  PROM_CHECK(static_cast<idx>(b.size()) == n &&
             static_cast<idx>(x.size()) == n);
  auto sweep_row = [&](idx i) {
    real sum = b[i];
    for (nnz_t k = a_->rowptr[i]; k < a_->rowptr[i + 1]; ++k) {
      const idx j = a_->colidx[k];
      if (j != i) sum -= a_->vals[k] * x[j];
    }
    x[i] = sum * inv_diag_[i];
  };
  for (idx i = 0; i < n; ++i) sweep_row(i);
  for (idx i = n - 1; i >= 0; --i) sweep_row(i);
  count_flops(4 * a_->nnz() + 4LL * n);
}

BlockJacobiSmoother::BlockJacobiSmoother(const Csr& a,
                                         std::vector<std::vector<idx>> blocks,
                                         real omega)
    : a_(&a), omega_(omega), blocks_(std::move(blocks)) {
  PROM_CHECK(a.nrows == a.ncols);
  // Verify the blocks partition [0, n).
  std::vector<char> seen(static_cast<std::size_t>(a.nrows), 0);
  idx total = 0;
  for (const auto& block : blocks_) {
    for (idx i : block) {
      PROM_CHECK(i >= 0 && i < a.nrows);
      PROM_CHECK_MSG(!seen[i], "block Jacobi blocks overlap");
      seen[i] = 1;
      ++total;
    }
  }
  PROM_CHECK_MSG(total == a.nrows, "block Jacobi blocks must cover all rows");

  factors_.reserve(blocks_.size());
  for (const auto& block : blocks_) {
    const idx bn = static_cast<idx>(block.size());
    // Gather the dense diagonal block. Blocks are small (≈ 170 unknowns at
    // the paper's 6-per-1000 density), so dense extraction is fine.
    std::vector<idx> local_of(static_cast<std::size_t>(a.nrows), kInvalidIdx);
    for (idx li = 0; li < bn; ++li) local_of[block[li]] = li;
    DenseMatrix blk(bn, bn);
    real max_diag = 0;
    for (idx li = 0; li < bn; ++li) {
      const idx gi = block[li];
      for (nnz_t k = a.rowptr[gi]; k < a.rowptr[gi + 1]; ++k) {
        const idx lj = local_of[a.colidx[k]];
        if (lj != kInvalidIdx) blk(li, lj) = a.vals[k];
        if (a.colidx[k] == gi) max_diag = std::max(max_diag, a.vals[k]);
      }
    }
    factors_.emplace_back(blk);
    // A diagonal block of an SPD matrix is SPD in exact arithmetic, but
    // ill-conditioned (or, inside Newton, mildly indefinite) operators can
    // defeat the unpivoted LDL^T. Escalate a relative diagonal shift until
    // the factorization succeeds — the standard manufactured-SPD smoother
    // fallback (cf. PETSc's pc_factor_shift); a strongly shifted block
    // degrades the smoother, never correctness.
    if (max_diag <= 0) max_diag = 1;
    for (real shift = 1e-12 * max_diag; !factors_.back().ok(); shift *= 10) {
      DenseMatrix shifted = blk;
      for (idx li = 0; li < bn; ++li) shifted(li, li) += shift;
      factors_.back() = DenseLdlt(shifted);
      PROM_CHECK_MSG(shift < 1e30, "block Jacobi shift escalation failed");
    }
  }
}

void BlockJacobiSmoother::smooth(std::span<const real> b,
                                 std::span<real> x) const {
  const idx n = a_->nrows;
  PROM_CHECK(static_cast<idx>(b.size()) == n &&
             static_cast<idx>(x.size()) == n);
  std::vector<real> r(n);
  a_->spmv(x, r);
  waxpby(1, b, -1, r, r);  // r = b - A x
  // Blocks partition the rows, so block solves write disjoint slices of x
  // and parallelize without ordering concerns.
  common::parallel_for(
      0, static_cast<idx>(blocks_.size()), kBlockGrain, [&](idx kb, idx ke) {
        std::vector<real> rb, xb;
        for (idx k = kb; k < ke; ++k) {
          const auto& block = blocks_[k];
          rb.resize(block.size());
          xb.resize(block.size());
          for (std::size_t li = 0; li < block.size(); ++li) {
            rb[li] = r[block[li]];
          }
          factors_[k].solve(rb, xb);
          for (std::size_t li = 0; li < block.size(); ++li) {
            x[block[li]] += omega_ * xb[li];
          }
        }
      });
  count_flops(2LL * n);
}

ChebyshevSmoother::ChebyshevSmoother(const Csr& a, int degree,
                                     real eig_ratio)
    : a_(&a), degree_(std::max(1, degree)),
      inv_diag_(inverted_diagonal(a)) {
  PROM_CHECK(a.nrows == a.ncols);
  // Power iteration on D^{-1}A for the largest eigenvalue.
  const idx n = a.nrows;
  std::vector<real> v(static_cast<std::size_t>(n)), av(v.size());
  for (idx i = 0; i < n; ++i) v[i] = 1 + (i % 7) * 0.1;  // deterministic
  real lambda = 1;
  for (int it = 0; it < 15; ++it) {
    a.spmv(v, av);
    for (idx i = 0; i < n; ++i) av[i] *= inv_diag_[i];
    lambda = nrm2(av);
    if (lambda == 0) break;
    for (idx i = 0; i < n; ++i) v[i] = av[i] / lambda;
  }
  lmax_ = 1.1 * std::max(lambda, real{1e-12});
  lmin_ = lmax_ / eig_ratio;
}

void ChebyshevSmoother::smooth(std::span<const real> b,
                               std::span<real> x) const {
  const idx n = a_->nrows;
  PROM_CHECK(static_cast<idx>(b.size()) == n &&
             static_cast<idx>(x.size()) == n);
  const real theta = (lmax_ + lmin_) / 2;
  const real delta = (lmax_ - lmin_) / 2;
  const real sigma = theta / delta;
  real rho = 1 / sigma;

  std::vector<real> r(n), d(n), ad(n);
  a_->spmv(x, r);
  waxpby(1, b, -1, r, r);
  common::parallel_for(0, n, kPointGrain, [&](idx ib, idx ie) {
    for (idx i = ib; i < ie; ++i) d[i] = inv_diag_[i] * r[i] / theta;
  });
  for (int k = 0; k < degree_; ++k) {
    axpy(1, d, x);
    if (k + 1 == degree_) break;
    a_->spmv(d, ad);
    axpy(-1, ad, r);
    const real rho_new = 1 / (2 * sigma - rho);
    common::parallel_for(0, n, kPointGrain, [&](idx ib, idx ie) {
      for (idx i = ib; i < ie; ++i) {
        const real zi = inv_diag_[i] * r[i];
        d[i] = rho_new * rho * d[i] + 2 * rho_new / delta * zi;
      }
    });
    rho = rho_new;
    count_flops(6LL * n);
  }
}

std::vector<std::vector<idx>> contiguous_blocks(idx n, idx nblocks) {
  PROM_CHECK(n >= 0 && nblocks >= 1);
  nblocks = std::min<idx>(nblocks, std::max<idx>(n, 1));
  std::vector<std::vector<idx>> blocks(static_cast<std::size_t>(nblocks));
  for (idx i = 0; i < n; ++i) {
    const idx k = static_cast<idx>(
        (static_cast<nnz_t>(i) * nblocks) / std::max<idx>(n, 1));
    blocks[k].push_back(i);
  }
  // Remove empty blocks (possible when nblocks > n).
  std::erase_if(blocks, [](const auto& b) { return b.empty(); });
  return blocks;
}

}  // namespace prom::la
