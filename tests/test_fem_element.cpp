#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "fem/element.h"
#include "fem/quadrature.h"

namespace prom::fem {
namespace {

const std::vector<Vec3> kUnitHex = {
    Vec3{0, 0, 0}, Vec3{1, 0, 0}, Vec3{1, 1, 0}, Vec3{0, 1, 0},
    Vec3{0, 0, 1}, Vec3{1, 0, 1}, Vec3{1, 1, 1}, Vec3{0, 1, 1}};

std::vector<real> zero_disp(int nodes) {
  return std::vector<real>(static_cast<std::size_t>(3 * nodes), 0.0);
}

/// Nodal displacement of a linear field u(x) = A x + b.
std::vector<real> linear_disp(std::span<const Vec3> coords, const Mat3& a,
                              const Vec3& b) {
  std::vector<real> u;
  for (const Vec3& x : coords) {
    const Vec3 v = matvec(a, x) + b;
    u.insert(u.end(), {v.x, v.y, v.z});
  }
  return u;
}

la::DenseMatrix stiffness_of(const Material& mat,
                             std::span<const Vec3> coords, bool bbar) {
  la::DenseMatrix k(static_cast<idx>(3 * coords.size()),
                    static_cast<idx>(3 * coords.size()));
  small_strain_element(mat, coords, zero_disp(coords.size()), bbar, {}, {},
                       &k, {});
  return k;
}

TEST(SmallStrainElement, StiffnessSymmetric) {
  Material m;
  const la::DenseMatrix k = stiffness_of(m, kUnitHex, true);
  for (idx i = 0; i < 24; ++i) {
    for (idx j = 0; j < 24; ++j) {
      EXPECT_NEAR(k(i, j), k(j, i), 1e-13);
    }
  }
}

TEST(SmallStrainElement, RigidBodyModesInNullSpace) {
  // Translations and (linearized) rotations produce zero internal force
  // and zero stiffness action.
  Material m;
  const la::DenseMatrix k = stiffness_of(m, kUnitHex, true);
  // Three translations + three skew-symmetric rotations.
  std::vector<std::vector<real>> modes;
  for (int d = 0; d < 3; ++d) {
    Vec3 b{};
    b[d] = 1;
    modes.push_back(linear_disp(kUnitHex, Mat3::zero(), b));
  }
  for (int r = 0; r < 3; ++r) {
    Mat3 w = Mat3::zero();
    const int i = (r + 1) % 3, j = (r + 2) % 3;
    w(i, j) = 1;
    w(j, i) = -1;
    modes.push_back(linear_disp(kUnitHex, w, {}));
  }
  for (const auto& mode : modes) {
    std::vector<real> ku(24);
    k.matvec(mode, ku);
    for (real v : ku) EXPECT_NEAR(v, 0.0, 1e-12);
  }
}

TEST(SmallStrainElement, PatchTestConstantStrain) {
  // A linear displacement field produces the exact constant-strain
  // internal force: f = K u for the linear element.
  Material m;
  m.youngs = 2;
  m.poisson = 0.25;
  Mat3 grad = Mat3::zero();
  grad(0, 0) = 0.01;
  grad(1, 1) = -0.002;
  grad(0, 1) = 0.004;
  const std::vector<real> u = linear_disp(kUnitHex, grad, {});
  la::DenseMatrix k(24, 24);
  std::vector<real> f(24);
  small_strain_element(m, kUnitHex, u, true, {}, {}, &k, f);
  std::vector<real> ku(24);
  k.matvec(u, ku);
  for (int i = 0; i < 24; ++i) EXPECT_NEAR(f[i], ku[i], 1e-12);
}

TEST(SmallStrainElement, DistortedElementStillSymmetricPsd) {
  Rng rng(4);
  std::vector<Vec3> coords = kUnitHex;
  for (Vec3& p : coords) {
    p.x += 0.15 * (rng.next_real() - 0.5);
    p.y += 0.15 * (rng.next_real() - 0.5);
    p.z += 0.15 * (rng.next_real() - 0.5);
  }
  Material m;
  const la::DenseMatrix k = stiffness_of(m, coords, true);
  // PSD via quadratic forms on random vectors.
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<real> x(24), kx(24);
    for (real& v : x) v = rng.next_real() - 0.5;
    k.matvec(x, kx);
    real q = 0;
    for (int i = 0; i < 24; ++i) q += x[i] * kx[i];
    EXPECT_GE(q, -1e-12);
  }
}

TEST(SmallStrainElement, BbarSoftensVolumetricLocking) {
  // For a nearly incompressible material, the B-bar element must be much
  // softer in the constrained bending-like mode than the standard one.
  Material m;
  m.poisson = 0.499;
  const la::DenseMatrix k_std = stiffness_of(m, kUnitHex, false);
  const la::DenseMatrix k_bbar = stiffness_of(m, kUnitHex, true);
  // Probe with a non-volumetric trial mode that standard elements lock on.
  Rng rng(7);
  real q_std = 0, q_bbar = 0;
  std::vector<real> x(24), kx(24);
  for (real& v : x) v = rng.next_real() - 0.5;
  k_std.matvec(x, kx);
  for (int i = 0; i < 24; ++i) q_std += x[i] * kx[i];
  k_bbar.matvec(x, kx);
  for (int i = 0; i < 24; ++i) q_bbar += x[i] * kx[i];
  EXPECT_LT(q_bbar, q_std);
}

TEST(SmallStrainElement, J2StateUpdatedAndPlasticCounted) {
  Material m = Material::paper_hard();
  std::vector<J2State> committed(8), updated(8);
  Mat3 grad = Mat3::zero();
  grad(0, 1) = 0.02;  // strong shear: all Gauss points yield
  const std::vector<real> u = linear_disp(kUnitHex, grad, {});
  std::vector<real> f(24);
  const int plastic = small_strain_element(m, kUnitHex, u, true, committed,
                                           updated, nullptr, f);
  EXPECT_EQ(plastic, 8);
  for (const J2State& s : updated) EXPECT_TRUE(s.has_yielded());
  for (const J2State& s : committed) EXPECT_FALSE(s.has_yielded());
}

TEST(TotalLagrangian, MatchesSmallStrainAtTinyDisplacement) {
  Material nh;
  nh.model = MaterialModel::kNeoHookean;
  nh.youngs = 1;
  nh.poisson = 0.3;
  Material lin;
  lin.youngs = 1;
  lin.poisson = 0.3;
  Mat3 grad = Mat3::zero();
  grad(0, 0) = 1e-7;
  grad(1, 2) = 5e-8;
  grad(2, 1) = 5e-8;
  const std::vector<real> u = linear_disp(kUnitHex, grad, {});
  std::vector<real> f_nh(24), f_lin(24);
  total_lagrangian_element(nh, kUnitHex, u, false, nullptr, f_nh);
  small_strain_element(lin, kUnitHex, u, false, {}, {}, nullptr, f_lin);
  for (int i = 0; i < 24; ++i) {
    EXPECT_NEAR(f_nh[i], f_lin[i], 1e-12);
  }
}

TEST(TotalLagrangian, TangentConsistentWithResidual) {
  // K(u) must equal d f_int/d u at a finite deformation state.
  Material nh;
  nh.model = MaterialModel::kNeoHookean;
  nh.youngs = 1;
  nh.poisson = 0.3;
  Rng rng(12);
  std::vector<real> u(24);
  for (real& v : u) v = 0.05 * (rng.next_real() - 0.5);
  la::DenseMatrix k(24, 24);
  std::vector<real> f0(24);
  total_lagrangian_element(nh, kUnitHex, u, false, &k, f0);
  const real h = 1e-7;
  for (int d = 0; d < 24; d += 5) {  // sample columns
    std::vector<real> up = u, um = u;
    up[d] += h;
    um[d] -= h;
    std::vector<real> fp(24), fm(24);
    total_lagrangian_element(nh, kUnitHex, up, false, nullptr, fp);
    total_lagrangian_element(nh, kUnitHex, um, false, nullptr, fm);
    for (int i = 0; i < 24; ++i) {
      EXPECT_NEAR((fp[i] - fm[i]) / (2 * h), k(i, d), 1e-5) << i << " " << d;
    }
  }
}

TEST(TotalLagrangian, TrueRotationIsStressFree) {
  // Geometric nonlinearity: a *finite* rigid rotation produces zero
  // internal force (the small-strain element would not pass this).
  Material nh;
  nh.model = MaterialModel::kNeoHookean;
  nh.youngs = 1;
  nh.poisson = 0.3;
  const real angle = 0.5;
  Mat3 rot = Mat3::identity();
  rot(0, 0) = std::cos(angle);
  rot(0, 1) = -std::sin(angle);
  rot(1, 0) = std::sin(angle);
  rot(1, 1) = std::cos(angle);
  std::vector<real> u;
  for (const Vec3& x : kUnitHex) {
    const Vec3 v = matvec(rot, x) - x;
    u.insert(u.end(), {v.x, v.y, v.z});
  }
  std::vector<real> f(24);
  total_lagrangian_element(nh, kUnitHex, u, false, nullptr, f);
  for (real v : f) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(TotalLagrangian, FbarRunsAndStaysConsistentAtIdentity) {
  Material nh;
  nh.model = MaterialModel::kNeoHookean;
  nh.youngs = 1;
  nh.poisson = 0.49;
  std::vector<real> u = zero_disp(8);
  la::DenseMatrix k(24, 24);
  std::vector<real> f(24);
  total_lagrangian_element(nh, kUnitHex, u, true, &k, f);
  for (real v : f) EXPECT_NEAR(v, 0.0, 1e-15);
  // Symmetric at the reference state.
  for (int i = 0; i < 24; ++i) {
    for (int j = 0; j < 24; ++j) EXPECT_NEAR(k(i, j), k(j, i), 1e-12);
  }
}

TEST(GaussPointsPerCell, Counts) {
  EXPECT_EQ(gauss_points_per_cell(8), 8);
  EXPECT_EQ(gauss_points_per_cell(4), 4);
}

}  // namespace
}  // namespace prom::fem
