#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "la/krylov.h"
#include "la/smoothers.h"
#include "graph/order.h"
#include "la/sparse_chol.h"
#include "la/vec.h"

namespace prom::la {
namespace {

/// 3D Poisson 7-point stencil on an n^3 grid.
Csr poisson3d(idx n) {
  auto id = [n](idx i, idx j, idx k) { return (k * n + j) * n + i; };
  std::vector<Triplet> t;
  for (idx k = 0; k < n; ++k) {
    for (idx j = 0; j < n; ++j) {
      for (idx i = 0; i < n; ++i) {
        t.push_back({id(i, j, k), id(i, j, k), 6.0});
        if (i > 0) t.push_back({id(i, j, k), id(i - 1, j, k), -1.0});
        if (i + 1 < n) t.push_back({id(i, j, k), id(i + 1, j, k), -1.0});
        if (j > 0) t.push_back({id(i, j, k), id(i, j - 1, k), -1.0});
        if (j + 1 < n) t.push_back({id(i, j, k), id(i, j + 1, k), -1.0});
        if (k > 0) t.push_back({id(i, j, k), id(i, j, k - 1), -1.0});
        if (k + 1 < n) t.push_back({id(i, j, k), id(i, j, k + 1), -1.0});
      }
    }
  }
  return Csr::from_triplets(n * n * n, n * n * n, t);
}

class CholSizes : public ::testing::TestWithParam<idx> {};

TEST_P(CholSizes, SolvesPoissonExactly) {
  const idx n = GetParam();
  const Csr a = poisson3d(n);
  SparseCholesky chol(a);
  ASSERT_TRUE(chol.ok());
  std::vector<real> x_true(a.nrows), b(a.nrows), x(a.nrows);
  for (idx i = 0; i < a.nrows; ++i) x_true[i] = std::sin(0.37 * i);
  a.spmv(x_true, b);
  chol.solve(b, x);
  for (idx i = 0; i < a.nrows; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST_P(CholSizes, RcmReducesFill) {
  const idx n = GetParam();
  if (n < 4) GTEST_SKIP();
  const Csr a = poisson3d(n);
  SparseCholOptions with, without;
  without.use_rcm = false;
  // RCM orders a lattice by breadth-first levels; for the *natural* 3D
  // lattice ordering the fill is already near-minimal bandwidth, so
  // shuffle rows first to simulate an arbitrary input ordering.
  const auto perm = graph::random_order(a.nrows, 5);
  std::vector<Triplet> t;
  for (idx i = 0; i < a.nrows; ++i) {
    for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
      t.push_back({perm[i], perm[a.colidx[k]], a.vals[k]});
    }
  }
  const Csr shuffled = Csr::from_triplets(a.nrows, a.ncols, t);
  SparseCholesky chol_rcm(shuffled, with);
  SparseCholesky chol_nat(shuffled, without);
  ASSERT_TRUE(chol_rcm.ok());
  ASSERT_TRUE(chol_nat.ok());
  EXPECT_LT(chol_rcm.factor_nnz(), chol_nat.factor_nnz());
  // Both still solve correctly.
  std::vector<real> b(a.nrows, 1.0), x1(a.nrows), x2(a.nrows);
  chol_rcm.solve(b, x1);
  chol_nat.solve(b, x2);
  for (idx i = 0; i < a.nrows; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholSizes, ::testing::Values(2, 4, 6, 8));

TEST(SparseCholesky, DetectsIndefinite) {
  std::vector<Triplet> t = {{0, 0, 1.0}, {1, 1, -2.0}};
  const Csr a = Csr::from_triplets(2, 2, t);
  EXPECT_FALSE(SparseCholesky(a).ok());
  // A compensating shift makes it factorable.
  SparseCholOptions opts;
  opts.shift = 3.0;
  EXPECT_TRUE(SparseCholesky(a, opts).ok());
}

TEST(SparseCholesky, FactorFlopsAndFillGrowSuperlinearly) {
  // The paper's §1 argument: direct methods have super-linear complexity.
  const Csr small = poisson3d(4);
  const Csr large = poisson3d(8);
  SparseCholesky cs(small), cl(large);
  ASSERT_TRUE(cs.ok() && cl.ok());
  const double dof_ratio =
      static_cast<double>(large.nrows) / small.nrows;  // 8x
  const double flop_ratio = static_cast<double>(cl.factor_flops()) /
                            static_cast<double>(cs.factor_flops());
  EXPECT_GT(flop_ratio, 2 * dof_ratio);  // clearly super-linear
}

TEST(Gmres, SolvesSpdSystemLikeCg) {
  const Csr a = poisson3d(4);
  std::vector<real> x_true(a.nrows, 1.0), b(a.nrows);
  a.spmv(x_true, b);
  const CsrOperator op(a);
  std::vector<real> x(a.nrows, 0.0);
  GmresOptions opts;
  opts.rtol = 1e-10;
  const KrylovResult res = gmres(op, nullptr, b, x, opts);
  EXPECT_TRUE(res.converged);
  for (idx i = 0; i < a.nrows; ++i) EXPECT_NEAR(x[i], 1.0, 1e-7);
}

TEST(Gmres, SolvesNonsymmetricSystem) {
  // Convection-diffusion-like nonsymmetric tridiagonal operator — CG is
  // not applicable; GMRES must converge.
  const idx n = 60;
  std::vector<Triplet> t;
  for (idx i = 0; i < n; ++i) {
    t.push_back({i, i, 3.0});
    if (i > 0) t.push_back({i, i - 1, -2.0});
    if (i + 1 < n) t.push_back({i, i + 1, -0.5});
  }
  const Csr a = Csr::from_triplets(n, n, t);
  std::vector<real> x_true(n), b(n);
  for (idx i = 0; i < n; ++i) x_true[i] = std::cos(0.2 * i);
  a.spmv(x_true, b);
  const CsrOperator op(a);
  std::vector<real> x(n, 0.0);
  GmresOptions opts;
  opts.rtol = 1e-11;
  opts.max_iters = 300;
  const KrylovResult res = gmres(op, nullptr, b, x, opts);
  ASSERT_TRUE(res.converged);
  for (idx i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-7);
}

TEST(Gmres, SolvesIndefiniteSystemWhereCgBreaksDown) {
  // Symmetric indefinite diagonal: CG breaks down, GMRES solves it.
  const idx n = 20;
  std::vector<Triplet> t;
  for (idx i = 0; i < n; ++i) t.push_back({i, i, i % 2 ? -2.0 : 3.0});
  const Csr a = Csr::from_triplets(n, n, t);
  std::vector<real> b(n, 1.0);
  const CsrOperator op(a);
  std::vector<real> x_cg(n, 0.0);
  EXPECT_TRUE(cg(op, b, x_cg).breakdown);
  std::vector<real> x(n, 0.0);
  const KrylovResult res = gmres(op, nullptr, b, x, {});
  ASSERT_TRUE(res.converged);
  for (idx i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], 1.0 / (i % 2 ? -2.0 : 3.0), 1e-8);
  }
}

TEST(Gmres, RestartsStillConverge) {
  const Csr a = poisson3d(5);
  std::vector<real> b(a.nrows, 1.0);
  const CsrOperator op(a);
  std::vector<real> x(a.nrows, 0.0);
  GmresOptions opts;
  opts.rtol = 1e-9;
  opts.restart = 5;  // force many restart cycles
  opts.max_iters = 2000;
  const KrylovResult res = gmres(op, nullptr, b, x, opts);
  EXPECT_TRUE(res.converged);
}

TEST(Gmres, RightPreconditioningAccelerates) {
  // Badly scaled SPD diagonal + Jacobi preconditioner.
  const idx n = 50;
  std::vector<Triplet> t;
  for (idx i = 0; i < n; ++i) t.push_back({i, i, std::pow(10.0, i % 6)});
  const Csr a = Csr::from_triplets(n, n, t);

  class DiagInv final : public LinearOperator {
   public:
    explicit DiagInv(const Csr& a) : d_(a.diagonal()) {
      for (real& v : d_) v = 1 / v;
    }
    idx rows() const override { return static_cast<idx>(d_.size()); }
    idx cols() const override { return rows(); }
    void apply(std::span<const real> x, std::span<real> y) const override {
      for (std::size_t i = 0; i < d_.size(); ++i) y[i] = d_[i] * x[i];
    }

   private:
    std::vector<real> d_;
  } precond(a);

  std::vector<real> b(n, 1.0);
  const CsrOperator op(a);
  GmresOptions opts;
  opts.rtol = 1e-10;
  std::vector<real> x1(n, 0.0), x2(n, 0.0);
  const KrylovResult plain = gmres(op, nullptr, b, x1, opts);
  const KrylovResult pre = gmres(op, &precond, b, x2, opts);
  EXPECT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations, plain.iterations);
}

TEST(Chebyshev, ReducesResidualAndIsSymmetricEnoughForCg) {
  const Csr a = poisson3d(5);
  const ChebyshevSmoother smoother(a, 3);
  EXPECT_GT(smoother.lambda_max(), 0.5);
  std::vector<real> b(a.nrows, 1.0), x(a.nrows, 0.0);
  std::vector<real> r(a.nrows);
  auto resnorm = [&] {
    a.spmv(x, r);
    waxpby(1, b, -1, r, r);
    return nrm2(r);
  };
  real prev = resnorm();
  for (int step = 0; step < 8; ++step) {
    smoother.smooth(b, x);
    const real now = resnorm();
    EXPECT_LT(now, prev);
    prev = now;
  }
}

TEST(Chebyshev, HigherDegreeSmoothsMorePerStep) {
  const Csr a = poisson3d(5);
  const ChebyshevSmoother deg1(a, 1), deg4(a, 4);
  std::vector<real> b(a.nrows, 1.0);
  std::vector<real> x1(a.nrows, 0.0), x4(a.nrows, 0.0), r(a.nrows);
  deg1.smooth(b, x1);
  deg4.smooth(b, x4);
  auto resnorm = [&](std::span<const real> x) {
    a.spmv(x, r);
    waxpby(1, b, -1, r, r);
    return nrm2(r);
  };
  EXPECT_LT(resnorm(x4), resnorm(x1));
}

}  // namespace
}  // namespace prom::la
