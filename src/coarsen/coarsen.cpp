#include "coarsen/coarsen.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"
#include "graph/order.h"

namespace prom::coarsen {

std::vector<idx> mis_ordering(const Classification& cls,
                              const CoarsenOptions& opts) {
  const idx n = cls.num_vertices();
  // Sort key per vertex: exterior vertices in [0, n), interior in [n, 2n),
  // with the within-class key natural (index) or random per options.
  Rng rng(opts.seed);
  std::vector<std::uint64_t> key(static_cast<std::size_t>(n));
  for (idx v = 0; v < n; ++v) {
    const bool exterior = cls.type[v] != VertexType::kInterior;
    const MisOrdering ord =
        exterior ? opts.exterior_order : opts.interior_order;
    const std::uint64_t within =
        ord == MisOrdering::kNatural ? static_cast<std::uint64_t>(v)
                                     : rng.next_u64() >> 1;
    key[v] = (exterior ? 0 : (std::uint64_t{1} << 62)) | within;
  }
  std::vector<idx> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), idx{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](idx a, idx b) { return key[a] < key[b]; });
  return order;
}

CoarsenLevelResult coarsen_level(const std::vector<Vec3>& coords,
                                 const graph::Graph& vertex_graph,
                                 const Classification& cls, int level_index,
                                 const CoarsenOptions& opts) {
  const idx n = static_cast<idx>(coords.size());
  PROM_CHECK(vertex_graph.num_vertices() == n && cls.num_vertices() == n);

  CoarsenLevelResult result;

  // §4.6: feature-aware graph modification.
  const graph::Graph* mis_graph = &vertex_graph;
  graph::Graph modified;
  if (opts.modify_graph) {
    modified = modified_mis_graph(vertex_graph, cls, &result.graph_stats);
    mis_graph = &modified;
  }

  // §4.2/§4.7: rank-aware greedy MIS in the heuristic ordering.
  const std::vector<idx> order = mis_ordering(cls, opts);
  const std::vector<idx> ranks = cls.ranks();
  graph::MisOptions mis_opts;
  mis_opts.ranks = ranks;
  graph::MisResult mis = graph::greedy_mis(*mis_graph, order, mis_opts);
  std::sort(mis.selected.begin(), mis.selected.end());
  result.selected = std::move(mis.selected);

  // §4.8: remesh and build the restriction operator. The *unmodified*
  // vertex graph supplies the "near on the fine mesh" relation.
  RestrictionResult restriction = build_restriction(
      coords, result.selected, opts.restriction, &vertex_graph);
  result.r_vertex = std::move(restriction.r_vertex);
  result.coarse_mesh = std::move(restriction.coarse_mesh);
  result.lost = std::move(restriction.lost);

  // Coarse classification: inherit from the fine parents on early grids,
  // reclassify from the coarse tet mesh geometry on deeper ones (§4.6).
  const int coarse_index = level_index + 1;
  if (coarse_index >= opts.reclassify_from_level &&
      result.coarse_mesh.num_cells() > 0) {
    result.coarse_cls = classify_mesh(result.coarse_mesh, opts.face);
  } else {
    const idx nc = static_cast<idx>(result.selected.size());
    result.coarse_cls.type.resize(static_cast<std::size_t>(nc));
    for (idx c = 0; c < nc; ++c) {
      result.coarse_cls.type[c] = cls.type[result.selected[c]];
    }
    // Inherit feature sets so share_face keeps working on the next level.
    result.coarse_cls.vface_ptr.assign(static_cast<std::size_t>(nc) + 1, 0);
    for (idx c = 0; c < nc; ++c) {
      const auto faces = cls.faces_of(result.selected[c]);
      result.coarse_cls.vface_ptr[c + 1] =
          result.coarse_cls.vface_ptr[c] + static_cast<nnz_t>(faces.size());
      result.coarse_cls.vface.insert(result.coarse_cls.vface.end(),
                                     faces.begin(), faces.end());
    }
  }
  return result;
}

}  // namespace prom::coarsen
