
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coarsen/classify.cpp" "src/CMakeFiles/prom_coarsen.dir/coarsen/classify.cpp.o" "gcc" "src/CMakeFiles/prom_coarsen.dir/coarsen/classify.cpp.o.d"
  "/root/repo/src/coarsen/coarsen.cpp" "src/CMakeFiles/prom_coarsen.dir/coarsen/coarsen.cpp.o" "gcc" "src/CMakeFiles/prom_coarsen.dir/coarsen/coarsen.cpp.o.d"
  "/root/repo/src/coarsen/faces.cpp" "src/CMakeFiles/prom_coarsen.dir/coarsen/faces.cpp.o" "gcc" "src/CMakeFiles/prom_coarsen.dir/coarsen/faces.cpp.o.d"
  "/root/repo/src/coarsen/modified_graph.cpp" "src/CMakeFiles/prom_coarsen.dir/coarsen/modified_graph.cpp.o" "gcc" "src/CMakeFiles/prom_coarsen.dir/coarsen/modified_graph.cpp.o.d"
  "/root/repo/src/coarsen/parallel_faces.cpp" "src/CMakeFiles/prom_coarsen.dir/coarsen/parallel_faces.cpp.o" "gcc" "src/CMakeFiles/prom_coarsen.dir/coarsen/parallel_faces.cpp.o.d"
  "/root/repo/src/coarsen/parallel_mis.cpp" "src/CMakeFiles/prom_coarsen.dir/coarsen/parallel_mis.cpp.o" "gcc" "src/CMakeFiles/prom_coarsen.dir/coarsen/parallel_mis.cpp.o.d"
  "/root/repo/src/coarsen/restriction.cpp" "src/CMakeFiles/prom_coarsen.dir/coarsen/restriction.cpp.o" "gcc" "src/CMakeFiles/prom_coarsen.dir/coarsen/restriction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prom_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_delaunay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_parx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
