# Empty dependencies file for test_coarsen_mis.
# This may be replaced when dependencies are built.
