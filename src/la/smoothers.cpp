#include "la/smoothers.h"

#include <algorithm>

#include "common/error.h"
#include "common/flops.h"
#include "la/operator.h"
#include "la/smoother_kernels.h"
#include "la/vec.h"

namespace prom::la {

std::vector<real> inverted_diagonal(const Csr& a) {
  std::vector<real> d = a.diagonal();
  for (real& v : d) {
    PROM_CHECK_MSG(v != real{0}, "smoother needs a nonzero diagonal");
    v = real{1} / v;
  }
  return d;
}

JacobiSmoother::JacobiSmoother(const Csr& a, real omega)
    : a_(&a), omega_(omega), inv_diag_(inverted_diagonal(a)) {
  PROM_CHECK(a.nrows == a.ncols);
}

void JacobiSmoother::smooth(std::span<const real> b,
                            std::span<real> x) const {
  jacobi_sweep(SerialBackend{}, CsrOperator(*a_), inv_diag_, omega_, b, x);
}

SymmetricGaussSeidel::SymmetricGaussSeidel(const Csr& a)
    : a_(&a), inv_diag_(inverted_diagonal(a)) {
  PROM_CHECK(a.nrows == a.ncols);
}

// Gauss–Seidel is inherently sequential (each row update reads the
// previous ones), so it stays a serial-only baseline with no backend-
// generic driver; the distributed hierarchy substitutes processor-block
// Jacobi, exactly as the paper's parallel smoother does.
void SymmetricGaussSeidel::smooth(std::span<const real> b,
                                  std::span<real> x) const {
  const idx n = a_->nrows;
  PROM_CHECK(static_cast<idx>(b.size()) == n &&
             static_cast<idx>(x.size()) == n);
  auto sweep_row = [&](idx i) {
    real sum = b[i];
    for (nnz_t k = a_->rowptr[i]; k < a_->rowptr[i + 1]; ++k) {
      const idx j = a_->colidx[k];
      if (j != i) sum -= a_->vals[k] * x[j];
    }
    x[i] = sum * inv_diag_[i];
  };
  for (idx i = 0; i < n; ++i) sweep_row(i);
  for (idx i = n - 1; i >= 0; --i) sweep_row(i);
  count_flops(4 * a_->nnz() + 4LL * n);
}

BlockJacobiSmoother::BlockJacobiSmoother(const Csr& a,
                                         std::vector<std::vector<idx>> blocks,
                                         real omega)
    : a_(&a), omega_(omega), blocks_(std::move(blocks)) {
  PROM_CHECK(a.nrows == a.ncols);
  // Verify the blocks partition [0, n).
  std::vector<char> seen(static_cast<std::size_t>(a.nrows), 0);
  idx total = 0;
  for (const auto& block : blocks_) {
    for (idx i : block) {
      PROM_CHECK(i >= 0 && i < a.nrows);
      PROM_CHECK_MSG(!seen[i], "block Jacobi blocks overlap");
      seen[i] = 1;
      ++total;
    }
  }
  PROM_CHECK_MSG(total == a.nrows, "block Jacobi blocks must cover all rows");
  factors_ = factor_diagonal_blocks(a, blocks_);
}

void BlockJacobiSmoother::smooth(std::span<const real> b,
                                 std::span<real> x) const {
  block_jacobi_sweep(SerialBackend{}, CsrOperator(*a_), blocks_, factors_,
                     omega_, b, x);
}

std::vector<DenseLdlt> factor_diagonal_blocks(
    const Csr& a, std::span<const std::vector<idx>> blocks) {
  std::vector<DenseLdlt> factors;
  factors.reserve(blocks.size());
  std::vector<idx> local_of(static_cast<std::size_t>(a.nrows), kInvalidIdx);
  for (const auto& block : blocks) {
    const idx bn = static_cast<idx>(block.size());
    // Gather the dense diagonal block. Blocks are small (≈ 170 unknowns at
    // the paper's 6-per-1000 density), so dense extraction is fine.
    for (idx li = 0; li < bn; ++li) local_of[block[li]] = li;
    DenseMatrix blk(bn, bn);
    real max_diag = 0;
    for (idx li = 0; li < bn; ++li) {
      const idx gi = block[li];
      for (nnz_t k = a.rowptr[gi]; k < a.rowptr[gi + 1]; ++k) {
        if (a.colidx[k] >= a.nrows) continue;  // ghost column (dist levels)
        const idx lj = local_of[a.colidx[k]];
        if (lj != kInvalidIdx) blk(li, lj) = a.vals[k];
        if (a.colidx[k] == gi) max_diag = std::max(max_diag, a.vals[k]);
      }
    }
    factors.emplace_back(blk);
    // A diagonal block of an SPD matrix is SPD in exact arithmetic, but
    // ill-conditioned (or, inside Newton, mildly indefinite) operators can
    // defeat the unpivoted LDL^T. Escalate a relative diagonal shift until
    // the factorization succeeds — the standard manufactured-SPD smoother
    // fallback (cf. PETSc's pc_factor_shift); a strongly shifted block
    // degrades the smoother, never correctness.
    if (max_diag <= 0) max_diag = 1;
    for (real shift = 1e-12 * max_diag; !factors.back().ok(); shift *= 10) {
      DenseMatrix shifted = blk;
      for (idx li = 0; li < bn; ++li) shifted(li, li) += shift;
      factors.back() = DenseLdlt(shifted);
      PROM_CHECK_MSG(shift < 1e30, "block Jacobi shift escalation failed");
    }
    for (idx li = 0; li < bn; ++li) local_of[block[li]] = kInvalidIdx;
  }
  return factors;
}

ChebyshevSmoother::ChebyshevSmoother(const Csr& a, int degree,
                                     real eig_ratio)
    : a_(&a), degree_(std::max(1, degree)),
      inv_diag_(inverted_diagonal(a)) {
  PROM_CHECK(a.nrows == a.ncols);
  const real lambda = estimate_lambda_max(SerialBackend{}, CsrOperator(a),
                                          inv_diag_, /*row_offset=*/0);
  lmax_ = 1.1 * std::max(lambda, real{1e-12});
  lmin_ = lmax_ / eig_ratio;
}

void ChebyshevSmoother::smooth(std::span<const real> b,
                               std::span<real> x) const {
  chebyshev_sweep(SerialBackend{}, CsrOperator(*a_), inv_diag_, degree_,
                  lmin_, lmax_, b, x);
}

std::vector<std::vector<idx>> contiguous_blocks(idx n, idx nblocks) {
  PROM_CHECK(n >= 0 && nblocks >= 1);
  nblocks = std::min<idx>(nblocks, std::max<idx>(n, 1));
  std::vector<std::vector<idx>> blocks(static_cast<std::size_t>(nblocks));
  for (idx i = 0; i < n; ++i) {
    const idx k = static_cast<idx>(
        (static_cast<nnz_t>(i) * nblocks) / std::max<idx>(n, 1));
    blocks[k].push_back(i);
  }
  // Remove empty blocks (possible when nblocks > n).
  std::erase_if(blocks, [](const auto& b) { return b.empty(); });
  return blocks;
}

}  // namespace prom::la
