#include "dla/dist_setup.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/flops.h"
#include "obs/trace.h"

namespace prom::dla {
namespace {

/// Ghost-row replies: one fused message per peer (counts + cols + vals).
constexpr int kTagGhostRows = 321;

/// This rank's rows of `a` with column indices mapped back to global ids
/// (storage order — ascending global column — preserved).
la::Csr local_rows_global_cols(const DistCsr& a) {
  la::Csr out = a.local_matrix();
  out.ncols = a.col_dist().global_size();
  for (auto& c : out.colidx) c = a.global_col(c);
  return out;
}

template <typename T>
void append_bytes(std::vector<std::byte>& msg, const std::vector<T>& v) {
  const auto raw = std::as_bytes(std::span<const T>(v));
  msg.insert(msg.end(), raw.begin(), raw.end());
}

template <typename T>
std::vector<T> take_bytes(const std::vector<std::byte>& msg, std::size_t& off,
                          std::size_t count) {
  std::vector<T> out(count);
  PROM_CHECK(off + count * sizeof(T) <= msg.size());
  if (count > 0) std::memcpy(out.data(), msg.data() + off, count * sizeof(T));
  off += count * sizeof(T);
  return out;
}

/// One peer's ghost rows: per requested row its length, then all column
/// ids and values concatenated in request order.
struct GhostRowReply {
  std::vector<nnz_t> counts;
  std::vector<idx> cols;
  std::vector<real> vals;
};

}  // namespace

DistCsr dist_spgemm(parx::Comm& comm, const DistCsr& a, const DistCsr& b,
                    std::span<const idx> a_col_serial) {
  const obs::Span span("setup.spgemm");
  PROM_CHECK(a.col_dist().offsets == b.row_dist().offsets);
  PROM_CHECK(a_col_serial.empty() ||
             static_cast<idx>(a_col_serial.size()) ==
                 a.col_dist().global_size());
  const int p = comm.size();
  const int rank = comm.rank();
  const RowDist& bd = b.row_dist();

  // Fetch the ghost rows of B: the rows matching A's ghost columns, from
  // their owners. Requests per owner are ascending (ghost_cols() is
  // sorted), so the reply streams can be consumed in the same order.
  std::vector<std::vector<idx>> want(p);
  for (idx g : a.ghost_cols()) want[bd.owner(g)].push_back(g);
  const auto asked = comm.alltoallv(want);

  // Each owner replies with one fused message per requester — the row
  // lengths, column ids and values of the requested rows back to back —
  // instead of three separate collectives. Replies are drained in arrival
  // order (slow peers never stall parsed ones); the assembly loop below
  // walks the ghost list in fixed order, so the result is deterministic.
  const la::Csr b_rows = local_rows_global_cols(b);
  const idx b0 = bd.begin(rank);
  {
    std::vector<nnz_t> counts;
    std::vector<idx> cols;
    std::vector<real> vals;
    for (int r = 0; r < p; ++r) {
      if (r == rank || asked[r].empty()) continue;
      counts.clear();
      cols.clear();
      vals.clear();
      for (idx grow : asked[r]) {
        PROM_CHECK(bd.owner(grow) == rank);
        const idx lr = grow - b0;
        counts.push_back(b_rows.rowptr[lr + 1] - b_rows.rowptr[lr]);
        for (nnz_t k = b_rows.rowptr[lr]; k < b_rows.rowptr[lr + 1]; ++k) {
          cols.push_back(b_rows.colidx[k]);
          vals.push_back(b_rows.vals[k]);
        }
      }
      std::vector<std::byte> msg;
      msg.reserve(counts.size() * sizeof(nnz_t) + cols.size() * sizeof(idx) +
                  vals.size() * sizeof(real));
      append_bytes(msg, counts);
      append_bytes(msg, cols);
      append_bytes(msg, vals);
      comm.send_bytes(r, kTagGhostRows, msg);
    }
  }
  std::vector<GhostRowReply> replies(p);
  {
    std::vector<int> pending;
    for (int r = 0; r < p; ++r) {
      if (r != rank && !want[r].empty()) pending.push_back(r);
    }
    while (!pending.empty()) {
      const int src = comm.wait_any(pending, kTagGhostRows);
      const std::vector<std::byte> msg = comm.recv_bytes(src, kTagGhostRows);
      std::size_t off = 0;
      GhostRowReply& rep = replies[src];
      rep.counts = take_bytes<nnz_t>(msg, off, want[src].size());
      nnz_t total = 0;
      for (nnz_t nz : rep.counts) total += nz;
      rep.cols = take_bytes<idx>(msg, off, static_cast<std::size_t>(total));
      rep.vals = take_bytes<real>(msg, off, static_cast<std::size_t>(total));
      PROM_CHECK(off == msg.size());
      pending.erase(std::find(pending.begin(), pending.end(), src));
    }
  }
  // Self-requests never happen: every ghost column is owned elsewhere.
  PROM_CHECK(want[rank].empty());

  // Ghost-row table aligned with A's ghost slots (global columns).
  la::Csr ghost_rows;
  ghost_rows.nrows = a.num_ghosts();
  ghost_rows.ncols = b.col_dist().global_size();
  ghost_rows.rowptr.assign(static_cast<std::size_t>(ghost_rows.nrows) + 1, 0);
  std::vector<std::size_t> ccur(p, 0), ecur(p, 0);
  for (std::size_t g = 0; g < a.ghost_cols().size(); ++g) {
    const int o = bd.owner(a.ghost_cols()[g]);
    const GhostRowReply& rep = replies[o];
    const nnz_t nz = rep.counts[ccur[o]++];
    for (nnz_t t = 0; t < nz; ++t) {
      ghost_rows.colidx.push_back(rep.cols[ecur[o]]);
      ghost_rows.vals.push_back(rep.vals[ecur[o]]);
      ++ecur[o];
    }
    ghost_rows.rowptr[g + 1] = static_cast<nnz_t>(ghost_rows.colidx.size());
  }

  // Local Gustavson over the owned rows. An output entry accumulates one
  // term `+= av * bv` per A-column, from a zero seed, so its value depends
  // only on the order the A-row entries are visited; visiting them in
  // ascending *serial* column order (a_col_serial, when given) reproduces
  // la::spgemm on the unpermuted matrices bit for bit.
  const la::Csr& al = a.local_matrix();
  const idx a_n_own = a.col_dist().local_size(rank);
  la::Csr c;
  c.nrows = al.nrows;
  c.ncols = b.col_dist().global_size();
  c.rowptr.assign(static_cast<std::size_t>(c.nrows) + 1, 0);
  std::int64_t flops = 0;
  std::unordered_map<idx, real> acc;
  std::vector<idx> cols_in_row;
  std::vector<std::pair<idx, nnz_t>> order;  // (term key, position in row)
  for (idx i = 0; i < al.nrows; ++i) {
    acc.clear();
    cols_in_row.clear();
    order.clear();
    for (nnz_t ka = al.rowptr[i]; ka < al.rowptr[i + 1]; ++ka) {
      const idx gc = a.global_col(al.colidx[ka]);
      order.emplace_back(a_col_serial.empty() ? gc : a_col_serial[gc], ka);
    }
    std::sort(order.begin(), order.end());
    for (const auto& [key, ka] : order) {
      const idx lc = al.colidx[ka];
      const real av = al.vals[ka];
      const la::Csr& src = lc < a_n_own ? b_rows : ghost_rows;
      const idx row = lc < a_n_own ? lc : lc - a_n_own;
      for (nnz_t kb = src.rowptr[row]; kb < src.rowptr[row + 1]; ++kb) {
        const idx col = src.colidx[kb];
        const auto [it, inserted] = acc.try_emplace(col, real{0});
        if (inserted) cols_in_row.push_back(col);
        it->second += av * src.vals[kb];
        flops += 2;
      }
    }
    std::sort(cols_in_row.begin(), cols_in_row.end());
    for (idx col : cols_in_row) {
      c.colidx.push_back(col);
      c.vals.push_back(acc.at(col));
    }
    c.rowptr[i + 1] = static_cast<nnz_t>(c.colidx.size());
  }
  count_flops(flops);

  return DistCsr::from_local_rows(comm, c, a.row_dist(), b.col_dist());
}

DistCsr dist_transpose(parx::Comm& comm, const DistCsr& r) {
  const obs::Span span("setup.transpose");
  const int p = comm.size();
  const int rank = comm.rank();
  const RowDist& out_rows = r.col_dist();  // rows of R^T
  const RowDist& out_cols = r.row_dist();  // cols of R^T

  // Ship each local entry (i, j, v) to the owner of output row j.
  const la::Csr rl = local_rows_global_cols(r);
  const idx r0 = r.row_dist().begin(rank);
  std::vector<std::vector<idx>> trows(p), tcols(p);
  std::vector<std::vector<real>> tvals(p);
  for (idx i = 0; i < rl.nrows; ++i) {
    for (nnz_t k = rl.rowptr[i]; k < rl.rowptr[i + 1]; ++k) {
      const int o = out_rows.owner(rl.colidx[k]);
      trows[o].push_back(rl.colidx[k]);  // output row
      tcols[o].push_back(r0 + i);        // output col
      tvals[o].push_back(rl.vals[k]);
    }
  }
  const auto got_rows = comm.alltoallv(trows);
  const auto got_cols = comm.alltoallv(tcols);
  const auto got_vals = comm.alltoallv(tvals);

  // Sort received triplets by (row, col); entries of R are unique, so the
  // order is deterministic regardless of source rank.
  std::vector<std::tuple<idx, idx, real>> trip;
  for (int s = 0; s < p; ++s) {
    for (std::size_t k = 0; k < got_rows[s].size(); ++k) {
      trip.emplace_back(got_rows[s][k], got_cols[s][k], got_vals[s][k]);
    }
  }
  std::sort(trip.begin(), trip.end(), [](const auto& x, const auto& y) {
    return std::tie(std::get<0>(x), std::get<1>(x)) <
           std::tie(std::get<0>(y), std::get<1>(y));
  });

  la::Csr t;
  t.nrows = out_rows.local_size(rank);
  t.ncols = out_cols.global_size();
  t.rowptr.assign(static_cast<std::size_t>(t.nrows) + 1, 0);
  const idx t0 = out_rows.begin(rank);
  for (const auto& [grow, gcol, v] : trip) {
    PROM_CHECK(out_rows.owner(grow) == rank);
    t.colidx.push_back(gcol);
    t.vals.push_back(v);
    t.rowptr[grow - t0 + 1] += 1;
  }
  for (idx i = 0; i < t.nrows; ++i) t.rowptr[i + 1] += t.rowptr[i];

  return DistCsr::from_local_rows(comm, t, out_rows, out_cols);
}

DistCsr dist_galerkin_product(parx::Comm& comm, const DistCsr& r,
                              const DistCsr& a,
                              std::span<const idx> fine_col_serial) {
  const obs::Span span("setup.galerkin");
  const DistCsr rt = dist_transpose(comm, r);
  const DistCsr art = dist_spgemm(comm, a, rt, fine_col_serial);
  return dist_spgemm(comm, r, art, fine_col_serial);
}

DistCsr dist_redistribute(parx::Comm& comm, const DistCsr& a,
                          const RowDist& rows, const RowDist& cols) {
  // Leveled "agglom.redistribute" spans are opened by the caller
  // (DistHierarchy::build), which knows the level.
  const int p = comm.size();
  const RowDist& old_rows = a.row_dist();
  PROM_CHECK(rows.nranks() == p && old_rows.nranks() == p);
  PROM_CHECK(rows.global_size() == old_rows.global_size());
  PROM_CHECK(cols.global_size() == a.col_dist().global_size());
  const la::Csr mine = local_rows_global_cols(a);
  const idx my0 = old_rows.begin(comm.rank());

  // Both distributions are contiguous, so each destination receives an
  // interval of my rows: ship per-row lengths + columns in one idx
  // stream and the values in a real stream, in ascending row order.
  std::vector<std::vector<idx>> send_meta(static_cast<std::size_t>(p));
  std::vector<std::vector<real>> send_vals(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) {
    const idx lo = std::max(my0, rows.begin(d)) - my0;
    const idx hi = std::min(my0 + mine.nrows, rows.end(d)) - my0;
    for (idx i = lo; i < hi; ++i) {
      send_meta[d].push_back(
          static_cast<idx>(mine.rowptr[i + 1] - mine.rowptr[i]));
    }
    for (idx i = lo; i < hi; ++i) {
      for (nnz_t k = mine.rowptr[i]; k < mine.rowptr[i + 1]; ++k) {
        send_meta[d].push_back(mine.colidx[k]);
        send_vals[d].push_back(mine.vals[k]);
      }
    }
  }
  const auto recv_meta = comm.alltoallv(send_meta);
  const auto recv_vals = comm.alltoallv(send_vals);

  // Reassemble my new rows: sources in rank order are ascending global
  // row ranges, and each row arrives with its storage order preserved.
  la::Csr local;
  local.nrows = rows.local_size(comm.rank());
  local.ncols = cols.global_size();
  local.rowptr.assign(static_cast<std::size_t>(local.nrows) + 1, 0);
  idx row = 0;
  for (int s = 0; s < p; ++s) {
    const idx lo = std::max(rows.begin(comm.rank()), old_rows.begin(s));
    const idx hi = std::min(rows.end(comm.rank()), old_rows.end(s));
    const idx nrows_s = std::max<idx>(0, hi - lo);
    const std::vector<idx>& meta = recv_meta[s];
    PROM_CHECK(static_cast<idx>(meta.size()) >= nrows_s);
    std::size_t off = static_cast<std::size_t>(nrows_s);
    for (idx i = 0; i < nrows_s; ++i) {
      const idx nz = meta[static_cast<std::size_t>(i)];
      local.rowptr[row + 1] = local.rowptr[row] + nz;
      for (idx k = 0; k < nz; ++k) local.colidx.push_back(meta[off++]);
      ++row;
    }
    PROM_CHECK(off == meta.size());
    local.vals.insert(local.vals.end(), recv_vals[s].begin(),
                      recv_vals[s].end());
  }
  PROM_CHECK(row == local.nrows &&
             local.vals.size() == local.colidx.size());
  return DistCsr::from_local_rows(comm, local, rows, cols);
}

RepartitionResult repartition_mesh(parx::Comm& comm, const DistCsr& a,
                                   std::span<const idx> old_perm,
                                   std::span<const idx> new_owner) {
  const obs::Span span("rebalance.migrate");
  const int p = comm.size();
  const int rank = comm.rank();
  const idx n = a.row_dist().global_size();
  PROM_CHECK(static_cast<idx>(old_perm.size()) == n);
  PROM_CHECK(static_cast<idx>(new_owner.size()) == n);
  PROM_CHECK(a.col_dist().global_size() == n);

  // New numbering: stable-sort the serial rows by their new owner (the
  // DistHierarchy::build recipe, so downstream layouts agree bitwise).
  RepartitionResult out;
  out.perm.resize(static_cast<std::size_t>(n));
  std::iota(out.perm.begin(), out.perm.end(), idx{0});
  std::stable_sort(out.perm.begin(), out.perm.end(), [&](idx x, idx y) {
    return new_owner[x] < new_owner[y];
  });
  std::vector<idx> sorted_owner(static_cast<std::size_t>(n));
  std::vector<idx> new_of_serial(static_cast<std::size_t>(n));
  for (idx g = 0; g < n; ++g) {
    sorted_owner[g] = new_owner[out.perm[g]];
    new_of_serial[out.perm[g]] = g;
  }
  const RowDist dist = RowDist::from_sorted_owners(sorted_owner, p);

  // Ship every owned row to its new owner: (new row id, nnz, new column
  // ids ascending) in the idx stream, values in the real stream. Sorting
  // the relabeled columns permutes (column, value) pairs only — values
  // stay bit-identical to the serial matrix's.
  const la::Csr mine = local_rows_global_cols(a);
  std::vector<std::vector<idx>> send_meta(static_cast<std::size_t>(p));
  std::vector<std::vector<real>> send_vals(static_cast<std::size_t>(p));
  const idx my0 = a.row_dist().begin(rank);
  std::vector<std::pair<idx, real>> row;
  for (idx i = 0; i < mine.nrows; ++i) {
    const idx serial = old_perm[my0 + i];
    const int dest = static_cast<int>(new_owner[serial]);
    row.clear();
    for (nnz_t k = mine.rowptr[i]; k < mine.rowptr[i + 1]; ++k) {
      row.emplace_back(new_of_serial[old_perm[mine.colidx[k]]],
                       mine.vals[k]);
    }
    std::sort(row.begin(), row.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    send_meta[dest].push_back(new_of_serial[serial]);
    send_meta[dest].push_back(static_cast<idx>(row.size()));
    for (const auto& [c, v] : row) {
      send_meta[dest].push_back(c);
      send_vals[dest].push_back(v);
    }
  }
  const auto recv_meta = comm.alltoallv(send_meta);
  const auto recv_vals = comm.alltoallv(send_vals);

  // Reassemble: every new row of mine arrives exactly once; scatter the
  // payloads into their slots (deterministic for any arrival order).
  la::Csr local;
  local.nrows = dist.local_size(rank);
  local.ncols = n;
  local.rowptr.assign(static_cast<std::size_t>(local.nrows) + 1, 0);
  const idx b0 = dist.begin(rank);
  std::vector<idx> nnz_of(static_cast<std::size_t>(local.nrows), 0);
  for (int s = 0; s < p; ++s) {
    const std::vector<idx>& meta = recv_meta[s];
    for (std::size_t k = 0; k < meta.size();) {
      const idx g = meta[k];
      const idx nz = meta[k + 1];
      PROM_CHECK(g >= b0 && g < b0 + local.nrows);
      nnz_of[g - b0] = nz;
      k += 2 + static_cast<std::size_t>(nz);
    }
  }
  for (idx i = 0; i < local.nrows; ++i) {
    local.rowptr[i + 1] = local.rowptr[i] + nnz_of[i];
  }
  local.colidx.resize(static_cast<std::size_t>(local.rowptr[local.nrows]));
  local.vals.resize(local.colidx.size());
  for (int s = 0; s < p; ++s) {
    const std::vector<idx>& meta = recv_meta[s];
    const std::vector<real>& vals = recv_vals[s];
    std::size_t voff = 0;
    for (std::size_t k = 0; k < meta.size();) {
      const idx g = meta[k];
      const idx nz = meta[k + 1];
      nnz_t at = local.rowptr[g - b0];
      for (idx j = 0; j < nz; ++j) {
        local.colidx[at + j] = meta[k + 2 + static_cast<std::size_t>(j)];
        local.vals[at + j] = vals[voff++];
      }
      k += 2 + static_cast<std::size_t>(nz);
    }
    PROM_CHECK(voff == vals.size());
  }
  out.a = DistCsr::from_local_rows(comm, local, dist, dist);
  return out;
}

la::Csr dist_gather_matrix(parx::Comm& comm, const DistCsr& a) {
  const obs::Span span("setup.gather_coarse");
  const la::Csr mine = local_rows_global_cols(a);
  std::vector<nnz_t> my_counts(static_cast<std::size_t>(mine.nrows));
  for (idx i = 0; i < mine.nrows; ++i) {
    my_counts[i] = mine.rowptr[i + 1] - mine.rowptr[i];
  }
  const auto all_counts = comm.allgatherv(my_counts);
  const auto all_cols = comm.allgatherv(mine.colidx);
  const auto all_vals = comm.allgatherv(mine.vals);

  la::Csr g;
  g.nrows = a.row_dist().global_size();
  g.ncols = a.col_dist().global_size();
  g.rowptr.assign(static_cast<std::size_t>(g.nrows) + 1, 0);
  idx row = 0;
  for (int s = 0; s < comm.size(); ++s) {
    for (nnz_t nz : all_counts[s]) {
      g.rowptr[row + 1] = g.rowptr[row] + nz;
      ++row;
    }
    g.colidx.insert(g.colidx.end(), all_cols[s].begin(), all_cols[s].end());
    g.vals.insert(g.vals.end(), all_vals[s].begin(), all_vals[s].end());
  }
  PROM_CHECK(row == g.nrows);
  return g;
}

}  // namespace prom::dla
