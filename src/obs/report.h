// The machine-readable aggregation of one tracing window: top-level
// "phase.*" spans become per-rank phase breakdowns (Figure 10's bars plus
// the §6 message/byte/flop brackets), every other span is grouped by
// (name, level) into cycle-component totals (Figure 12's breakdown,
// level-resolved), and the metric registry contributes per-level gauges
// (rows, nnz, operator complexity), counters, and series (the PCG
// residual history). `Report::to_json()` is the `report.json` schema the
// benches consume and the CI smoke lane uploads.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace prom::obs {

inline constexpr std::string_view kReportSchema = "prom.obs.report.v1";

/// One rank's share of a phase: summed same-named top-level spans.
struct RankPhase {
  int rank = kHostRank;
  double seconds = 0;
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
  std::int64_t flops = 0;
};

/// One Figure-10 phase. `host_seconds` is the controlling thread's wall
/// time (phases that run serially); `per_rank` covers the SPMD phases.
struct PhaseEntry {
  std::string name;  ///< span name without the "phase." prefix
  double host_seconds = 0;
  std::vector<RankPhase> per_rank;  ///< ranks >= 0, ascending
  std::int64_t messages = 0;        ///< totals over ranks
  std::int64_t bytes = 0;
  std::int64_t flops = 0;

  /// Host wall time if the phase ran on the host, else the slowest rank
  /// (bulk-synchronous approximation).
  double seconds() const;
  double max_rank_seconds() const;
};

/// All spans of one (name, level) outside the top-level phases — e.g.
/// ("mg.smooth", 2) across every V-cycle and rank of the window.
struct ComponentEntry {
  std::string name;
  int level = kNoLevel;
  double seconds = 0;           ///< summed over all ranks and spans
  double max_rank_seconds = 0;  ///< max over ranks of that rank's sum
  std::int64_t count = 0;
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
  std::int64_t flops = 0;
};

struct MetricEntry {
  std::string name;
  int level = kNoLevel;
  double value = 0;
};

struct SeriesEntry {
  std::string name;
  int level = kNoLevel;
  std::vector<double> values;
};

struct Report {
  int ranks = 0;  ///< distinct parx ranks observed (0 = host-only window)
  std::vector<PhaseEntry> phases;          ///< first-open order
  std::vector<ComponentEntry> components;  ///< sorted by (name, level)
  std::vector<MetricEntry> counters;       ///< summed per (name, level)
  std::vector<MetricEntry> gauges;         ///< last write per (name, level)
  std::vector<SeriesEntry> series;

  const PhaseEntry* phase(std::string_view name) const;
  double phase_seconds(std::string_view name) const;
  const ComponentEntry* component(std::string_view name, int level) const;
  /// NaN when the gauge was never set.
  double gauge(std::string_view name, int level = kNoLevel) const;
  double counter(std::string_view name, int level = kNoLevel) const;
  const SeriesEntry* find_series(std::string_view name) const;

  std::string to_json() const;
  void write_json(const std::string& path) const;

  /// Parses a report serialized with to_json() (schema tag checked) — the
  /// benches consume their own report.json through this, so the artifact
  /// schema is the schema the printed numbers came through.
  static Report from_json(std::string_view text);
  static Report read_json(const std::string& path);
};

/// Aggregates every record made at or after `mark_ns` (a Tracer::now_ns()
/// value; 0 = everything). Call outside SPMD regions only.
Report build_report(std::int64_t mark_ns = 0);

}  // namespace prom::obs
