# Empty compiler generated dependencies file for prom_perf.
# This may be replaced when dependencies are built.
