// Gauss quadrature rules for the reference hexahedron [-1,1]^3 and the
// reference tetrahedron (unit simplex).
#pragma once

#include <span>

#include "geom/vec3.h"

namespace prom::fem {

struct GaussPoint {
  Vec3 xi;    ///< reference coordinates
  real w = 0; ///< weight
};

/// 2x2x2 rule for HEX8 (exact for the trilinear stiffness integrand).
std::span<const GaussPoint> hex_gauss_8();

/// Single centroid point for HEX8 (used by B-bar mean dilatation).
std::span<const GaussPoint> hex_gauss_1();

/// 1-point rule for TET4 (exact for linear shape function products).
std::span<const GaussPoint> tet_gauss_1();

/// 4-point rule for TET4.
std::span<const GaussPoint> tet_gauss_4();

}  // namespace prom::fem
