// Distributed matrix setup (dla/dist_setup.h + DistHierarchy::build): the
// Galerkin triple products run on row-distributed matrices, so the work
// any one rank performs must *shrink* as ranks are added to a fixed mesh —
// the scalability claim the replicated setup could not make — and no rank
// may hold a global-size operator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "app/driver.h"
#include "dla/dist_mg.h"
#include "dla/dist_setup.h"
#include "fem/assembly.h"
#include "la/csr.h"
#include "mg/hierarchy.h"
#include "partition/rcb.h"
#include "parx/runtime.h"

namespace prom::dla {
namespace {

struct Fixture {
  mg::Hierarchy hierarchy;
  std::vector<Vec3> coords;
};

Fixture build_fixture(idx n) {
  const app::ModelProblem p = app::make_box_problem(n);
  fem::FeProblem fe(p.mesh, p.materials, p.dofmap);
  fem::LinearSystem sys = fem::assemble_linear_system(fe);
  mg::MgOptions mo;
  mo.coarsest_max_dofs = 60;
  Fixture out;
  out.coords.assign(p.mesh.coords().begin(), p.mesh.coords().end());
  out.hierarchy = mg::Hierarchy::build_grids(p.mesh, p.dofmap,
                                             std::move(sys.stiffness), mo);
  return out;
}

/// Max-over-ranks Galerkin flops for one distributed setup; also checks
/// that with p > 1 every level's rows are genuinely split across ranks.
std::int64_t max_rank_galerkin_flops(const Fixture& fx, int p) {
  const std::vector<idx> owner = partition::rcb_partition(fx.coords, p);
  std::vector<std::int64_t> flops(static_cast<std::size_t>(p), 0);
  parx::Runtime::run(p, [&](parx::Comm& comm) {
    const DistHierarchy dist = DistHierarchy::build(comm, fx.hierarchy, owner);
    flops[comm.rank()] = dist.galerkin_flops();
    for (int l = 0; l < dist.num_levels(); ++l) {
      const DistCsr& a = dist.level(l).a;
      EXPECT_EQ(a.local_rows(), a.row_dist().local_size(comm.rank()));
      if (p > 1) {
        // No rank constructs a global-size operator at any level.
        EXPECT_LT(a.local_rows(), a.row_dist().global_size()) << "level " << l;
      }
    }
  });
  return *std::max_element(flops.begin(), flops.end());
}

TEST(DistSetup, PerRankGalerkinFlopsShrinkWithRanks) {
  const Fixture fx = build_fixture(8);
  ASSERT_GE(fx.hierarchy.num_levels(), 2);
  const std::int64_t f1 = max_rank_galerkin_flops(fx, 1);
  const std::int64_t f2 = max_rank_galerkin_flops(fx, 2);
  const std::int64_t f4 = max_rank_galerkin_flops(fx, 4);
  ASSERT_GT(f1, 0);
  // Strict monotone decrease, and real (not merely epsilon) savings: the
  // busiest of 4 ranks does well under the whole single-rank product.
  EXPECT_LT(f2, f1);
  EXPECT_LT(f4, f2);
  EXPECT_LT(f4, (3 * f1) / 4);
}

TEST(DistSetup, OneRankMatchesSerialTripleProduct) {
  // On one rank the distributed triple product is the serial one: same
  // operator entries level by level as the serially built hierarchy.
  const app::ModelProblem p = app::make_box_problem(5);
  fem::FeProblem fe(p.mesh, p.materials, p.dofmap);
  fem::LinearSystem sys = fem::assemble_linear_system(fe);
  mg::MgOptions mo;
  mo.coarsest_max_dofs = 60;
  la::Csr stiffness = sys.stiffness;
  const mg::Hierarchy full =
      mg::Hierarchy::build(p.mesh, p.dofmap, std::move(stiffness), mo);
  const mg::Hierarchy grids = mg::Hierarchy::build_grids(
      p.mesh, p.dofmap, std::move(sys.stiffness), mo);
  const std::vector<idx> owner(
      static_cast<std::size_t>(p.mesh.num_vertices()), 0);
  parx::Runtime::run(1, [&](parx::Comm& comm) {
    const DistHierarchy dist = DistHierarchy::build(comm, grids, owner);
    ASSERT_EQ(dist.num_levels(), full.num_levels());
    for (int l = 1; l < dist.num_levels(); ++l) {
      const la::Csr& ref = full.level(l).a;
      const la::Csr& got = dist.level(l).a.local_matrix();
      ASSERT_EQ(got.nrows, ref.nrows);
      ASSERT_EQ(got.rowptr, ref.rowptr);  // single rank, identity layout
      ASSERT_EQ(got.colidx, ref.colidx);
      for (std::size_t k = 0; k < got.vals.size(); ++k) {
        EXPECT_EQ(got.vals[k], ref.vals[k]) << "level " << l << " nnz " << k;
      }
    }
  });
}

}  // namespace
}  // namespace prom::dla
