#include "graph/order.h"

#include <algorithm>
#include <numeric>

#include "common/rng.h"

namespace prom::graph {

std::vector<idx> natural_order(idx n) {
  std::vector<idx> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), idx{0});
  return order;
}

std::vector<idx> random_order(idx n, std::uint64_t seed) {
  std::vector<idx> order = natural_order(n);
  Rng rng(seed);
  for (idx i = n - 1; i > 0; --i) {
    const idx j = static_cast<idx>(rng.next_below(static_cast<std::uint64_t>(i) + 1));
    std::swap(order[i], order[j]);
  }
  return order;
}

std::vector<idx> cuthill_mckee(const Graph& g) {
  const idx n = g.num_vertices();
  std::vector<idx> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> visited(static_cast<std::size_t>(n), 0);

  // Vertices sorted by degree, used both to pick component seeds and to
  // order neighbor expansion.
  std::vector<idx> by_degree = natural_order(n);
  std::sort(by_degree.begin(), by_degree.end(), [&](idx a, idx b) {
    return g.degree(a) != g.degree(b) ? g.degree(a) < g.degree(b) : a < b;
  });

  std::vector<idx> nbrs;
  for (idx seed : by_degree) {
    if (visited[seed]) continue;
    visited[seed] = 1;
    order.push_back(seed);
    for (std::size_t head = order.size() - 1; head < order.size(); ++head) {
      const idx v = order[head];
      nbrs.assign(g.neighbors(v).begin(), g.neighbors(v).end());
      std::sort(nbrs.begin(), nbrs.end(), [&](idx a, idx b) {
        return g.degree(a) != g.degree(b) ? g.degree(a) < g.degree(b) : a < b;
      });
      for (idx u : nbrs) {
        if (!visited[u]) {
          visited[u] = 1;
          order.push_back(u);
        }
      }
    }
  }
  return order;
}

std::vector<idx> reverse_cuthill_mckee(const Graph& g) {
  std::vector<idx> order = cuthill_mckee(g);
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace prom::graph
