// Latency-hiding halo exchange shared by DistCsr and DistBsr (§6: halo
// cost is amortized against per-rank flops only if communication and
// interior compute actually overlap). A HaloPlan is built once per
// operator: per peer, the flattened gather list of local values to ship
// and the absolute destination slots to fill, plus persistent pre-sized
// staging buffers — after finalize() an exchange performs no heap
// allocation in this layer (the parx transport still buffers messages,
// like MPI_Bsend).
//
// The overlap schedule is post() → compute interior rows → finish() →
// compute boundary rows. finish() drains peers in *arrival* order
// (parx::Comm::wait_any); that is deterministic because each peer's
// destination slots are disjoint, and bitwise identical to the
// synchronous path because every scalar row still accumulates in CSR
// sorted-column order over the same extended vector. The reverse
// (transpose) exchange also stages replies in arrival order but
// *accumulates* them in fixed peer order — reverse contributions from
// different peers may target the same output entry, so the summation
// order must not depend on timing.
#pragma once

#include <span>
#include <vector>

#include "common/config.h"
#include "la/multivec.h"
#include "parx/runtime.h"

namespace prom::dla {

/// Schedule used by the distributed SpMV/residual paths: kSync reproduces
/// the historical blocking exchange (post all sends, drain peers in rank
/// order, then run the full local kernel); kOverlap posts sends, computes
/// interior rows while messages are in flight, drains in arrival order
/// and finishes with the boundary rows. Both produce identical bits.
enum class HaloMode { kSync, kOverlap };

/// Process-wide mode switch. The initial value comes from PROM_HALO
/// ("sync" | "overlap"), defaulting to kOverlap. Set outside SPMD regions.
void set_halo_mode(HaloMode mode);
HaloMode halo_mode();

/// One operator's neighbor-exchange plan with persistent staging buffers.
class HaloPlan {
 public:
  /// Registers a peer this rank sends to. `gather[i]` is the local index
  /// of the i-th wire value; kInvalidIdx ships a literal 0 (DistBsr's
  /// constrained/padding node components).
  void add_send(int peer, std::vector<idx> gather);

  /// Registers a peer this rank receives from. `slots[i]` is the absolute
  /// index (into the destination span of finish()) the i-th wire value
  /// fills. Slots of different peers are disjoint by construction.
  void add_recv(int peer, std::vector<idx> slots);

  /// Sizes the staging buffers. The forward exchange uses `tag`, the
  /// reverse (transpose) exchange `tag + 1`.
  void finalize(int tag);

  int num_send_peers() const { return static_cast<int>(send_peers_.size()); }
  int num_recv_peers() const { return static_cast<int>(recv_peers_.size()); }
  /// Peer ranks in registration (ascending rank) order — what the
  /// agglomeration tests and benches inspect: at a repartitioned level
  /// every plan role belongs to that level's active-rank set.
  const std::vector<int>& send_peers() const { return send_peers_; }
  const std::vector<int>& recv_peers() const { return recv_peers_; }
  /// Total scalar values shipped / received per forward exchange.
  std::int64_t send_count() const {
    return static_cast<std::int64_t>(send_idx_.size());
  }
  std::int64_t recv_count() const {
    return static_cast<std::int64_t>(recv_slots_.size());
  }

  // ---- forward exchange (owner -> ghost) ----

  /// Packs the staging buffer from `x_local` and sends every peer its
  /// segment. Returns immediately (parx sends are buffered).
  void post(parx::Comm& comm, std::span<const real> x_local) const;

  /// Drains all pending peers in arrival order, scattering each segment
  /// into `dst` at the registered slots.
  void finish(parx::Comm& comm, std::span<real> dst) const;

  /// Drains peers in ascending registration (rank) order — the historical
  /// blocking schedule, kept for HaloMode::kSync and as the bitwise
  /// reference the overlap tests compare against.
  void finish_rank_order(parx::Comm& comm, std::span<real> dst) const;

  // ---- reverse exchange (ghost contributions -> owner) ----

  /// Ships each recv peer the values its slots hold in `src` (used by
  /// spmv_transpose: the ghost rows of y_ext go back to their owners).
  void reverse_post(parx::Comm& comm, std::span<const real> src) const;

  /// Receives one reverse message per send peer (arrival-order staging
  /// under kOverlap, rank order under kSync) and accumulates
  /// `y_local[gather[i]] += value` in *fixed* peer order — reverse
  /// targets overlap across peers, so the accumulation order must be a
  /// function of the plan alone. kInvalidIdx gather entries are dropped.
  void reverse_accumulate(parx::Comm& comm, std::span<real> y_local) const;

  // ---- blocked (multi-column) exchange ----
  //
  // The mv variants ship all k columns of a MultiVec in ONE message per
  // peer: a peer whose forward segment holds c values receives c*k reals,
  // column-major within the segment (value t of column j at j*c + t). The
  // per-peer message count — and hence the latency bill — is that of a
  // single-column exchange; only the payload grows. Per column the packed
  // values, destination slots, and accumulation order match the scalar
  // exchange exactly, so every column is bitwise identical to a scalar
  // exchange of that column. Staging grows monotonically to the widest
  // block seen and is then reused allocation-free.

  /// Blocked post: one message per send peer carrying all columns.
  void post_mv(parx::Comm& comm, const la::MultiVec& x_local) const;

  /// Blocked finish, draining peers in arrival order.
  void finish_mv(parx::Comm& comm, la::MultiVec& dst) const;

  /// Blocked finish in ascending registration (rank) order.
  void finish_rank_order_mv(parx::Comm& comm, la::MultiVec& dst) const;

  /// Blocked reverse post (one message per recv peer, all columns).
  void reverse_post_mv(parx::Comm& comm, const la::MultiVec& src) const;

  /// Blocked reverse accumulate: stages every reply, then accumulates
  /// column by column in the scalar path's fixed flattened order.
  void reverse_accumulate_mv(parx::Comm& comm, la::MultiVec& y_local) const;

 private:
  void scatter(std::size_t peer, std::span<real> dst) const;
  void scatter_mv(std::size_t peer, la::MultiVec& dst) const;
  /// Grows the blocked staging to width k (never shrinks).
  void ensure_mv_staging(int k) const;

  int tag_ = 0;
  std::vector<int> send_peers_;
  std::vector<std::size_t> send_off_{0};  // per-peer segment offsets
  std::vector<idx> send_idx_;             // flattened gather lists
  std::vector<int> recv_peers_;
  std::vector<std::size_t> recv_off_{0};
  std::vector<idx> recv_slots_;  // flattened absolute destination slots
  // Persistent staging; sized by finalize(), reused by every exchange.
  // send_buf_ doubles as the reverse-direction receive staging (the
  // reverse payload per peer has exactly the forward send length).
  mutable std::vector<real> send_buf_;
  mutable std::vector<real> recv_buf_;
  mutable std::vector<int> pending_;  // wait_any scratch
  // Blocked staging, sized lazily to (counts * widest block seen).
  mutable std::vector<real> send_buf_mv_;
  mutable std::vector<real> recv_buf_mv_;
  mutable int mv_width_ = 0;
};

}  // namespace prom::dla
