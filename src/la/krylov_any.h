// The single preconditioned-conjugate-gradient implementation, templated
// over an execution backend (la/backend.h). la::cg / la::pcg instantiate
// it with SerialBackend; dla::dist_pcg instantiates it with ParxBackend —
// same code, same stopping criterion, only the reductions differ.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "common/error.h"
#include "la/backend.h"
#include "la/krylov.h"
#include "la/vec.h"
#include "obs/trace.h"

namespace prom::la {

/// PCG for SPD systems over any backend; `m == nullptr` means
/// unpreconditioned. `b` and `x` are the local blocks of the distributed
/// right-hand side and iterate (the whole vectors on SerialBackend); x
/// holds the initial guess on entry and the solution on exit. On a
/// collective backend every rank receives the same KrylovResult.
template <class B, class Op>
  requires BackendFor<B, Op>
KrylovResult pcg_any(const B& be, const Op& a, const Op* m,
                     std::span<const real> b, std::span<real> x,
                     const KrylovOptions& opts) {
  const idx n = be.local_n(a);
  PROM_CHECK(static_cast<idx>(b.size()) == n &&
             static_cast<idx>(x.size()) == n);

  KrylovResult result;
  std::vector<real> r(n), z(n), p(n), ap(n);

  const real bnorm = be.norm2(b);
  if (opts.track_history) result.history.push_back(bnorm);
  // Residual history into the obs series registry (same convention as
  // `history`: entry 0 is ||b||). Identical values on every rank of a
  // collective backend; the report keeps one representative copy.
  obs::series_push("pcg.residual", bnorm);
  if (bnorm == real{0}) {
    set_all(x, 0);
    result.converged = true;
    return result;
  }

  // r = b - A x
  be.apply(a, x, r);
  waxpby(1, b, -1, r, r);

  real rnorm = be.norm2(r);
  if (krylov_converged(rnorm, bnorm, opts.rtol)) {
    result.converged = true;
    result.final_relres = rnorm / bnorm;
    return result;
  }

  if (m != nullptr) {
    be.apply(*m, r, z);
  } else {
    copy(r, z);
  }
  copy(z, p);
  real rz = be.dot(r, z);

  for (int it = 1; it <= opts.max_iters; ++it) {
    be.apply(a, p, ap);
    const real pap = be.dot(p, ap);
    if (!std::isfinite(pap) || pap <= 0) {
      result.breakdown = true;
      break;
    }
    const real alpha = rz / pap;
    be.axpy(alpha, p, x);
    be.axpy(-alpha, ap, r);
    rnorm = be.norm2(r);
    if (opts.track_history) result.history.push_back(rnorm);
    obs::series_push("pcg.residual", rnorm);
    result.iterations = it;
    if (krylov_converged(rnorm, bnorm, opts.rtol)) {
      result.converged = true;
      break;
    }
    if (m != nullptr) {
      be.apply(*m, r, z);
    } else {
      copy(r, z);
    }
    const real rz_new = be.dot(r, z);
    const real beta = rz_new / rz;
    rz = rz_new;
    aypx(beta, z, p);
  }
  result.final_relres = rnorm / bnorm;
  return result;
}

}  // namespace prom::la
