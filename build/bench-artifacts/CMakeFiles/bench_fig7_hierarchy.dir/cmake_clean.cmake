file(REMOVE_RECURSE
  "../bench/bench_fig7_hierarchy"
  "../bench/bench_fig7_hierarchy.pdb"
  "CMakeFiles/bench_fig7_hierarchy.dir/bench_fig7_hierarchy.cpp.o"
  "CMakeFiles/bench_fig7_hierarchy.dir/bench_fig7_hierarchy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
