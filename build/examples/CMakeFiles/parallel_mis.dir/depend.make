# Empty dependencies file for parallel_mis.
# This may be replaced when dependencies are built.
