file(REMOVE_RECURSE
  "CMakeFiles/test_la_direct.dir/test_la_direct.cpp.o"
  "CMakeFiles/test_la_direct.dir/test_la_direct.cpp.o.d"
  "test_la_direct"
  "test_la_direct.pdb"
  "test_la_direct[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_la_direct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
