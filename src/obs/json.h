// A minimal JSON document model and recursive-descent parser, just enough
// for the obs outputs to be validated and consumed in-process: the benches
// read their timings back out of the serialized report (so the schema the
// CI artifacts carry is the schema the numbers came through), and the
// tests round-trip `report.json` / the Chrome trace through it. Not a
// general-purpose JSON library: no comments, numbers parsed as double.
// \uXXXX escapes decode to UTF-8, including surrogate pairs.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace prom::obs::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one JSON document (throws prom::Error on malformed input or
  /// trailing garbage).
  static Value parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Checked accessors (throw prom::Error on kind mismatch).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Array elements (throws unless array).
  const std::vector<Value>& items() const;

  /// Object members in document order (throws unless object).
  const std::vector<std::pair<std::string, Value>>& members() const;

  /// Object lookup: nullptr when absent (throws unless object).
  const Value* find(std::string_view key) const;

  /// Object lookup that throws when the key is absent.
  const Value& at(std::string_view key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;

  friend class Parser;
};

/// Reads and parses a JSON file (throws prom::Error if unreadable).
Value parse_file(const std::string& path);

/// Appends `s` to `out` with JSON string escaping: quote, backslash, and
/// control characters (\uXXXX); everything else — including non-ASCII
/// UTF-8 bytes — passes through verbatim. The single escaper behind every
/// obs writer (report.json, the Chrome trace), so adversarial span labels
/// cannot break the documents.
void escape_into(std::string& out, std::string_view s);

/// Convenience: the escaped copy.
std::string escaped(std::string_view s);

}  // namespace prom::obs::json
