// Distributed multigrid: mirrors a serial mg::Hierarchy's *grids* across
// virtual ranks and performs the matrix setup distributed. Dofs at every
// level are assigned to the rank owning the vertex they derive from (the
// MIS chain makes coarse vertices fine vertices, so ownership is
// inherited, exactly as in the paper's Prometheus); each level's operator
// is the Galerkin triple product R A R^T computed on row-distributed
// matrices (dla/dist_setup.h), smoothing is the backend-generic driver of
// the configured kind (processor-block Jacobi by default), and the
// constant-size coarsest problem is gathered and solved redundantly on
// every rank (§5). Per-rank setup work scales with local rows: no rank
// constructs a global-size operator at any level but the coarsest.
//
// The cycles and PCG are the single backend-generic implementations
// (mg/cycle_any.h, la/krylov_any.h) instantiated with ParxBackend — this
// file adds only the CycleView adapter and the level data.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dla/dist_bsr.h"
#include "dla/dist_csr.h"
#include "dla/dist_krylov.h"
#include "dla/dist_mf.h"
#include "la/dense.h"
#include "mg/hierarchy.h"
#include "mg/solver.h"

namespace prom::dla {

/// Per-level active-rank counts for coarse-level agglomeration: level 0
/// always keeps all `nranks`; below it, while a level's global row count
/// leaves fewer than `min_rows_per_rank` rows per active rank, the count
/// is halved (rounding up) down to 1 — the degenerate case where a level
/// lives entirely on rank 0 and the existing coarsest gather is trivial.
/// The active set of level l is always ranks [0, result[l]), and the
/// sequence is monotone non-increasing. `min_rows_per_rank <= 0` disables
/// agglomeration (every level keeps every rank).
std::vector<int> agglom_active_ranks(std::span<const idx> level_rows,
                                     int nranks, idx min_rows_per_rank);

struct DistMgLevel {
  DistCsr a;   ///< level operator (square, row/col dist identical)
  DistCsr r;   ///< restriction from the finer level (empty on level 0)
  /// Node-block (BAIJ) view of `a`, built when the hierarchy is
  /// constructed with mg::MatrixFormat::kBsr3; the solve phase (SpMV
  /// inside smoothers, cycles, and PCG) then ships whole node blocks in
  /// the ghost exchange. Null in the scalar configuration. The matrix
  /// *setup* (Galerkin chain) stays CSR either way, so both formats see
  /// bit-identical operators.
  std::unique_ptr<DistBsr> a_bsr;
  /// Matrix-free element view of `a`, built when the hierarchy is
  /// constructed with mg::MatrixFormat::kMf and an MfProblem; level 0
  /// only (coarse levels have no elements). It borrows `a`'s layout and
  /// exchange plan, so the assembled fine matrix stays resident for the
  /// Galerkin products and the smoother diagonals.
  std::unique_ptr<DistMf> a_mf;

  // Smoother data over the local rows (kSymGaussSeidel falls back to
  // processor-block Jacobi — Gauss–Seidel does not parallelize).
  mg::SmootherKind kind = mg::SmootherKind::kBlockJacobi;
  la::Csr local_diag;               ///< owned rows x owned cols
  std::vector<real> inv_diag;       ///< Jacobi / Chebyshev
  std::vector<std::vector<idx>> blocks;
  std::vector<la::DenseLdlt> factors;
  real omega = 0.6;
  int cheby_degree = 3;
  real cheby_lmin = 0, cheby_lmax = 0;

  // Coarsest level: replicated dense factorization of the gathered
  // (constant-size) operator; null on single-level hierarchies. LDL^T for
  // symmetric chains, partial-pivoting LU when the serial hierarchy was
  // built with CoarseSolverKind::kDenseLu (non-symmetric scalar classes);
  // exactly one of the two is set on the coarsest level.
  std::unique_ptr<la::DenseLdlt> direct;
  std::unique_ptr<la::DenseLu> direct_lu;

  /// Local smoothing (adaptive refinement levels, MgLevel::smooth_rows):
  /// when `smooth_masked` is set — identically on every rank of the
  /// level — a smoothing step updates only the local rows listed in
  /// `smooth_rows_local` (this rank's slice of the refined region) and
  /// leaves the rest of x untouched. The underlying sweep still runs
  /// collectively on all rows, so the exchange schedule is unchanged.
  bool smooth_masked = false;
  std::vector<idx> smooth_rows_local;

  idx local_n() const { return a.local_rows(); }

  /// One smoothing step of the configured kind (collective).
  void smooth(parx::Comm& comm, std::span<const real> b_local,
              std::span<real> x_local) const;

  /// Column-blocked smoothing step: one exchange per operator application
  /// serves all k columns; column j bitwise equals `smooth` on that
  /// column. Collective.
  void smooth_mv(parx::Comm& comm, const la::MultiVec& b_local,
                 la::MultiVec& x_local) const;

 private:
  void smooth_full(parx::Comm& comm, std::span<const real> b_local,
                   std::span<real> x_local) const;
  void smooth_full_mv(parx::Comm& comm, const la::MultiVec& b_local,
                      la::MultiVec& x_local) const;
};

class DistHierarchy {
 public:
  /// Builds the distributed hierarchy from `serial`'s grids and fine
  /// matrix. `serial` needs grids + restrictions + the level-0 operator
  /// only (mg::Hierarchy::build_grids suffices; a fully built hierarchy
  /// also works — its serial coarse operators are simply ignored).
  /// `fine_vertex_owner` maps each fine-mesh vertex to a rank; level-l dof
  /// ownership follows the MIS parent chain. Collective; deterministic and
  /// identical on all ranks. The permutations applied per level are
  /// retained so solutions can be mapped back to the serial ordering.
  /// `mf` supplies the fine-level element data when `format` is
  /// mg::MatrixFormat::kMf (required then, ignored otherwise).
  static DistHierarchy build(parx::Comm& comm, const mg::Hierarchy& serial,
                             std::span<const idx> fine_vertex_owner,
                             mg::MatrixFormat format = mg::MatrixFormat::kCsr,
                             const MfProblem* mf = nullptr);

  int num_levels() const { return static_cast<int>(levels_.size()); }
  const DistMgLevel& level(int l) const { return levels_[l]; }

  /// perm[l][new_index] = serial free-dof index at level l.
  const std::vector<idx>& permutation(int l) const { return perms_[l]; }

  /// Size of level l's active-rank set (always ranks [0, active_ranks(l))
  /// of the build communicator). Equals the communicator size on every
  /// level when agglomeration is off (MgOptions::agglom_min_rows == 0).
  /// Ranks outside the set own no rows at the level, appear in none of
  /// its exchange plans, and skip the cycle's subtree below it — their
  /// only contact is the restriction/prolongation exchange at the level
  /// boundary.
  int active_ranks(int l) const { return active_[l]; }

  /// Flops this rank spent in the distributed Galerkin triple products
  /// (the matrix-setup scaling quantity: shrinks as ranks grow).
  std::int64_t galerkin_flops() const { return galerkin_flops_; }

  int pre_smooth = 1;
  int post_smooth = 1;

 private:
  std::vector<DistMgLevel> levels_;
  std::vector<std::vector<idx>> perms_;
  std::vector<int> active_;  ///< active-rank count per level
  std::int64_t galerkin_flops_ = 0;
};

/// One distributed V-cycle at `level` (collective).
void dist_vcycle(parx::Comm& comm, const DistHierarchy& h, int level,
                 std::span<const real> b_local, std::span<real> x_local);

/// One distributed full-multigrid cycle from zero (collective).
std::vector<real> dist_fmg_cycle(parx::Comm& comm, const DistHierarchy& h,
                                 std::span<const real> b_local);

/// The distributed FMG/V-cycle preconditioner.
class DistMgPreconditioner final : public DistOperator {
 public:
  DistMgPreconditioner(const DistHierarchy& h, mg::CycleKind kind)
      : h_(&h), kind_(kind) {}
  idx local_n() const override { return h_->level(0).local_n(); }
  void apply(parx::Comm& comm, std::span<const real> x_local,
             std::span<real> y_local) const override;
  void apply_mv(parx::Comm& comm, const la::MultiVec& x_local,
                la::MultiVec& y_local) const override;

 private:
  const DistHierarchy* h_;
  mg::CycleKind kind_;
};

/// Distributed MG-preconditioned CG (collective).
la::KrylovResult dist_mg_pcg_solve(parx::Comm& comm, const DistHierarchy& h,
                                   std::span<const real> b_local,
                                   std::span<real> x_local,
                                   const mg::MgSolveOptions& opts = {});

/// Column-blocked distributed MG-PCG for k right-hand sides: every ghost
/// exchange ships one message per peer carrying all k columns, and column
/// j of the result is bitwise identical to `dist_mg_pcg_solve` on that
/// column alone (at any rank count, kernel-thread count, and halo mode).
/// `ws` (optional, per rank) reuses the PCG work vectors across solves.
/// Collective.
std::vector<la::KrylovResult> dist_mg_pcg_solve_mv(
    parx::Comm& comm, const DistHierarchy& h, const la::MultiVec& b_local,
    la::MultiVec& x_local, const mg::MgSolveOptions& opts = {},
    la::KrylovWorkspace* ws = nullptr);

/// Distributed MG-preconditioned solve with the Krylov driver selected by
/// `opts.krylov` (PCG, GMRES(m), or BiCGStab — the latter two for
/// non-symmetric operators, right-preconditioned with the same cycle).
/// Collective; every rank receives the same KrylovResult.
la::KrylovResult dist_mg_krylov_solve(parx::Comm& comm,
                                      const DistHierarchy& h,
                                      std::span<const real> b_local,
                                      std::span<real> x_local,
                                      const mg::MgSolveOptions& opts = {});

}  // namespace prom::dla
