
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fem/assembly.cpp" "src/CMakeFiles/prom_fem.dir/fem/assembly.cpp.o" "gcc" "src/CMakeFiles/prom_fem.dir/fem/assembly.cpp.o.d"
  "/root/repo/src/fem/element.cpp" "src/CMakeFiles/prom_fem.dir/fem/element.cpp.o" "gcc" "src/CMakeFiles/prom_fem.dir/fem/element.cpp.o.d"
  "/root/repo/src/fem/material.cpp" "src/CMakeFiles/prom_fem.dir/fem/material.cpp.o" "gcc" "src/CMakeFiles/prom_fem.dir/fem/material.cpp.o.d"
  "/root/repo/src/fem/quadrature.cpp" "src/CMakeFiles/prom_fem.dir/fem/quadrature.cpp.o" "gcc" "src/CMakeFiles/prom_fem.dir/fem/quadrature.cpp.o.d"
  "/root/repo/src/fem/shape.cpp" "src/CMakeFiles/prom_fem.dir/fem/shape.cpp.o" "gcc" "src/CMakeFiles/prom_fem.dir/fem/shape.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prom_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_parx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
