// Quickstart: solve a 3D elasticity problem with the fully automatic
// unstructured multigrid solver in a few lines — the workflow §1 of the
// paper promises ("the user need only provide the fine grid").
//
//   1. build (or load) a finite element mesh,
//   2. mark Dirichlet constraints,
//   3. assemble the stiffness matrix,
//   4. let the solver coarsen the mesh automatically (MIS + Delaunay +
//      Galerkin) and run multigrid-preconditioned CG.
//
// Usage: quickstart [n]   (default n = 10: an n x n x n hex cube)
//
// Run with PROM_TRACE=trace.json to get a Chrome-trace timeline of the
// phases below plus the per-level multigrid cycle components (open it at
// ui.perfetto.dev). PROM_MATRIX=bsr3 switches the solve phase to the
// node-block (BAIJ-style 3x3) kernels; PROM_MATRIX=mf applies the finest
// level matrix-free from batched element data (coarse levels stay
// assembled). The iteration count and residual history match the default
// CSR path to rounding either way. PROM_EQUATION=poisson_het|advdiff
// swaps the elasticity problem for a scalar equation class (jump-
// coefficient Poisson under MG-PCG, SUPG advection-diffusion under
// right-preconditioned MG-GMRES) on the same cube — scalar classes run
// CSR only (PROM_MATRIX=bsr3|mf is rejected: no node blocks at block
// size 1). PROM_REFINE=r runs r adaptive solve-estimate-mark-refine
// rounds first (app/refine.h) and solves on the locally refined tet
// mesh, with the refinement levels stacked above the MIS chain.
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "app/driver.h"
#include "app/refine.h"
#include "common/error.h"
#include "fem/assembly.h"
#include "fem/scalar.h"
#include "mesh/generate.h"
#include "mg/hierarchy.h"
#include "mg/solver.h"
#include "obs/trace.h"

namespace {

void print_refined(const prom::app::AdaptiveLoop& loop) {
  std::printf("adaptive refinement: %d rounds, unknowns",
              static_cast<int>(loop.rounds.size()));
  for (prom::idx u : loop.round_unknowns) std::printf(" %d", u);
  std::printf(", %d cells\n", loop.final_mesh().num_cells());
}

/// The scalar-equation quickstart: same automatic coarsening, block size
/// 1, and the equation class's default smoother + Krylov driver.
int run_scalar(prom::app::EquationClass eq, prom::idx n, int refine_rounds) {
  using namespace prom;
  // Fail fast instead of silently solving in CSR: the scalar classes
  // have no 3x3 node blocks for bsr3 and no elasticity element kernels
  // for mf.
  PROM_CHECK_MSG(mg::matrix_format_from_env() == mg::MatrixFormat::kCsr,
                 "quickstart: scalar equation classes (poisson_het, advdiff) "
                 "support only PROM_MATRIX=csr; bsr3 and mf are "
                 "elasticity-only");
  app::ModelProblem p;
  {
    const obs::Span span("phase.mesh");
    p = eq == app::EquationClass::kPoissonHet
            ? app::make_poisson_het_problem(n, 1e3)
            : app::make_advdiff_problem(n, 10.0);
  }
  const mg::MgOptions mo = app::default_mg_options(eq);

  std::vector<real> rhs;
  mg::Hierarchy hierarchy;
  if (refine_rounds > 0) {
    app::AdaptiveOptions ao;
    ao.rounds = refine_rounds;
    ao.mg = mo;
    app::AdaptiveLoop loop = app::run_adaptive_refinement(p, ao);
    print_refined(loop);
    rhs = std::move(loop.sys.rhs);
    const obs::Span span("phase.mesh_setup");
    hierarchy = mg::Hierarchy::build_refined_scalar(
        loop.mesh_ptrs(), loop.scalar_dofmap_ptrs(), loop.rounds,
        std::move(loop.sys.stiffness), mo);
  } else {
    fem::ScalarSystem sys;
    {
      const obs::Span span("phase.fine_grid");
      sys = fem::assemble_scalar_system(p.mesh, p.scalar_dofmap, p.coeffs);
    }
    std::printf("assembled %d scalar unknowns (%lld nonzeros, %s)\n",
                sys.stiffness.nrows,
                static_cast<long long>(sys.stiffness.nnz()),
                app::to_string(eq));
    rhs = std::move(sys.rhs);
    const obs::Span span("phase.mesh_setup");
    hierarchy = mg::Hierarchy::build_scalar(p.mesh, p.scalar_dofmap,
                                            std::move(sys.stiffness), mo);
  }
  std::printf("%s", hierarchy.describe().c_str());

  mg::MgSolveOptions opts;
  opts.rtol = 1e-8;
  opts.krylov = app::default_krylov(eq);
  std::vector<real> x(rhs.size(), 0.0);
  la::KrylovResult result;
  {
    const obs::Span span("phase.solve");
    result = mg_krylov_solve(hierarchy, rhs, x, opts);
  }
  std::printf("MG-%s: %d iterations, relative residual %.2e, %s\n",
              la::to_string(opts.krylov), result.iterations,
              result.final_relres,
              result.converged ? "converged" : "NOT converged");
  return result.converged ? 0 : 1;
}

}  // namespace

namespace {

/// Elasticity with PROM_REFINE > 0: the adaptive loop refines the
/// (tet-split) cube where the error indicator is largest, then the solve
/// runs on the refined hierarchy — refinement levels with local
/// smoothing above the automatic MIS/Delaunay chain.
int run_refined_elasticity(prom::idx n, int refine_rounds) {
  using namespace prom;
  app::ModelProblem p;
  {
    const obs::Span span("phase.mesh");
    p = app::make_box_problem(n);
  }
  app::AdaptiveOptions ao;
  ao.rounds = refine_rounds;
  app::AdaptiveLoop loop = app::run_adaptive_refinement(p, ao);
  print_refined(loop);

  std::vector<real> rhs = std::move(loop.sys.rhs);
  mg::Hierarchy hierarchy;
  {
    const obs::Span span("phase.mesh_setup");
    hierarchy = mg::Hierarchy::build_refined(
        loop.mesh_ptrs(), loop.dofmap_ptrs(), loop.rounds,
        std::move(loop.sys.stiffness), {});
  }
  const mg::MatrixFormat format = mg::matrix_format_from_env();
  {
    const obs::Span span("phase.matrix_setup");
    if (format == mg::MatrixFormat::kBsr3) hierarchy.enable_bsr();
    if (format == mg::MatrixFormat::kMf) {
      hierarchy.enable_mf(loop.final_mesh(), p.materials,
                          loop.final_dofmap());
    }
  }
  std::printf("%s", hierarchy.describe().c_str());

  std::vector<real> x(rhs.size(), 0.0);
  mg::MgSolveOptions opts;
  opts.rtol = 1e-8;
  opts.format = format;
  la::KrylovResult result;
  {
    const obs::Span span("phase.solve");
    result = mg_pcg_solve(hierarchy, rhs, x, opts);
  }
  std::printf("FMG-PCG: %d iterations, relative residual %.2e, %s\n",
              result.iterations, result.final_relres,
              result.converged ? "converged" : "NOT converged");
  return result.converged ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace prom;
  const idx n = argc > 1 ? std::atoi(argv[1]) : 10;

  const app::EquationClass eq = app::equation_from_env();
  const int refine_rounds = app::refine_rounds_from_env();
  if (eq != app::EquationClass::kElasticity) {
    return run_scalar(eq, n, refine_rounds);
  }
  if (refine_rounds > 0) return run_refined_elasticity(n, refine_rounds);

  // 1. The fine grid: a unit cube of n^3 hexahedra, one elastic material.
  mesh::Mesh mesh;
  {
    const obs::Span span("phase.mesh");
    mesh = mesh::box_hex(n, n, n, {0, 0, 0}, {1, 1, 1});
  }

  // 2. Constraints: clamp the bottom face, press the top face down.
  fem::DofMap dofmap(mesh.num_vertices());
  {
    const obs::Span span("phase.constraints");
    dofmap.fix_all(
        mesh.vertices_where([](const Vec3& p) { return p.z < 1e-12; }), 0.0);
    for (idx v :
         mesh.vertices_where([](const Vec3& p) { return p.z > 1 - 1e-12; })) {
      dofmap.fix(v, 2, -0.05);
    }
    dofmap.finalize();
  }

  // 3. Assemble the linear elastic stiffness matrix.
  const std::vector<fem::Material> materials(1);  // E = 1, nu = 0.3
  fem::LinearSystem sys;
  {
    const obs::Span span("phase.fine_grid");
    fem::FeProblem problem(mesh, materials, dofmap);
    sys = fem::assemble_linear_system(problem);
  }
  std::printf("assembled %d unknowns (%lld nonzeros)\n", sys.stiffness.nrows,
              static_cast<long long>(sys.stiffness.nnz()));

  // 4. Automatic coarsening (mesh setup: grids + restrictions) ...
  mg::Hierarchy hierarchy;
  {
    const obs::Span span("phase.mesh_setup");
    hierarchy =
        mg::Hierarchy::build_grids(mesh, dofmap, sys.stiffness, {});
  }
  // ... Galerkin coarse operators + smoothers (matrix setup) ...
  const mg::MatrixFormat format = mg::matrix_format_from_env();
  {
    const obs::Span span("phase.matrix_setup");
    hierarchy.update_fine_matrix(sys.stiffness);
    if (format == mg::MatrixFormat::kBsr3) hierarchy.enable_bsr();
    if (format == mg::MatrixFormat::kMf) {
      hierarchy.enable_mf(mesh, materials, dofmap);
    }
  }
  std::printf("%s", hierarchy.describe().c_str());

  // ... and full-multigrid-preconditioned CG.
  std::vector<real> x(sys.rhs.size(), 0.0);
  mg::MgSolveOptions opts;
  opts.rtol = 1e-8;
  opts.format = format;
  la::KrylovResult result;
  {
    const obs::Span span("phase.solve");
    result = mg_pcg_solve(hierarchy, sys.rhs, x, opts);
  }
  std::printf("FMG-PCG: %d iterations, relative residual %.2e, %s\n",
              result.iterations, result.final_relres,
              result.converged ? "converged" : "NOT converged");
  return result.converged ? 0 : 1;
}
