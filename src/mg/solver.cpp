#include "mg/solver.h"

#include <algorithm>

#include "common/error.h"

namespace prom::mg {

void MgPreconditioner::apply(std::span<const real> x,
                             std::span<real> y) const {
  if (kind_ == CycleKind::kFmg) {
    const std::vector<real> z = fmg_cycle(*h_, x);
    std::copy(z.begin(), z.end(), y.begin());
  } else {
    std::fill(y.begin(), y.end(), real{0});
    vcycle(*h_, 0, x, y);
  }
}

la::KrylovResult mg_pcg_solve(const Hierarchy& h, std::span<const real> b,
                              std::span<real> x, const MgSolveOptions& opts) {
  const MgPreconditioner precond(h, opts.cycle);
  const la::CsrOperator a(h.level(0).a);
  la::KrylovOptions kopts;
  kopts.rtol = opts.rtol;
  kopts.max_iters = opts.max_iters;
  kopts.track_history = opts.track_history;
  return la::pcg(a, precond, b, x, kopts);
}

}  // namespace prom::mg
