#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "fem/quadrature.h"
#include "fem/shape.h"

namespace prom::fem {
namespace {

const std::array<Vec3, 8> kUnitHex = {
    Vec3{0, 0, 0}, Vec3{1, 0, 0}, Vec3{1, 1, 0}, Vec3{0, 1, 0},
    Vec3{0, 0, 1}, Vec3{1, 0, 1}, Vec3{1, 1, 1}, Vec3{0, 1, 1}};

const std::array<Vec3, 4> kUnitTet = {Vec3{0, 0, 0}, Vec3{1, 0, 0},
                                      Vec3{0, 1, 0}, Vec3{0, 0, 1}};

TEST(Quadrature, WeightsSumToReferenceVolume) {
  real w = 0;
  for (const auto& gp : hex_gauss_8()) w += gp.w;
  EXPECT_NEAR(w, 8.0, 1e-14);  // [-1,1]^3
  w = 0;
  for (const auto& gp : tet_gauss_4()) w += gp.w;
  EXPECT_NEAR(w, 1.0 / 6.0, 1e-14);  // unit simplex
  EXPECT_NEAR(tet_gauss_1()[0].w, 1.0 / 6.0, 1e-15);
  EXPECT_NEAR(hex_gauss_1()[0].w, 8.0, 1e-15);
}

TEST(Quadrature, Hex2x2x2IntegratesQuadraticsExactly) {
  // Integral of x^2 y^2 z^2 over [-1,1]^3 = (2/3)^3.
  real sum = 0;
  for (const auto& gp : hex_gauss_8()) {
    sum += gp.w * gp.xi.x * gp.xi.x * gp.xi.y * gp.xi.y * gp.xi.z * gp.xi.z;
  }
  EXPECT_NEAR(sum, 8.0 / 27.0, 1e-13);
}

class ShapePoints : public ::testing::TestWithParam<int> {
 protected:
  Vec3 random_hex_point() {
    Rng rng(GetParam());
    return {2 * rng.next_real() - 1, 2 * rng.next_real() - 1,
            2 * rng.next_real() - 1};
  }
  Vec3 random_tet_point() {
    Rng rng(GetParam() + 50);
    Vec3 p{rng.next_real(), rng.next_real(), rng.next_real()};
    const real s = p.x + p.y + p.z;
    if (s > 1) p = p * (0.99 / s);
    return p;
  }
};

TEST_P(ShapePoints, Hex8PartitionOfUnity) {
  const ShapeEval s = hex8_shape(random_hex_point());
  real sum = 0;
  Vec3 grad_sum{};
  for (int a = 0; a < 8; ++a) {
    sum += s.value[a];
    grad_sum += s.grad_xi[a];
  }
  EXPECT_NEAR(sum, 1.0, 1e-14);
  EXPECT_NEAR(norm(grad_sum), 0.0, 1e-14);
}

TEST_P(ShapePoints, Tet4PartitionOfUnity) {
  const ShapeEval s = tet4_shape(random_tet_point());
  real sum = 0;
  for (int a = 0; a < 4; ++a) sum += s.value[a];
  EXPECT_NEAR(sum, 1.0, 1e-14);
}

TEST_P(ShapePoints, Hex8GradientsMatchFiniteDifferences) {
  const Vec3 xi = random_hex_point();
  const real h = 1e-6;
  const ShapeEval s = hex8_shape(xi);
  for (int d = 0; d < 3; ++d) {
    Vec3 xp = xi, xm = xi;
    xp[d] += h;
    xm[d] -= h;
    const ShapeEval sp = hex8_shape(xp);
    const ShapeEval sm = hex8_shape(xm);
    for (int a = 0; a < 8; ++a) {
      const real fd = (sp.value[a] - sm.value[a]) / (2 * h);
      EXPECT_NEAR(s.grad_xi[a][d], fd, 1e-8);
    }
  }
}

TEST_P(ShapePoints, IsoparametricMapReproducesGeometry) {
  // Interpolating the node coordinates with the shape functions recovers
  // the mapped point for the identity-like unit hex.
  const Vec3 xi = random_hex_point();
  const ShapeEval s = hex8_shape(xi);
  const Vec3 x = interpolate_position(s, kUnitHex);
  EXPECT_NEAR(x.x, (xi.x + 1) / 2, 1e-13);
  EXPECT_NEAR(x.y, (xi.y + 1) / 2, 1e-13);
  EXPECT_NEAR(x.z, (xi.z + 1) / 2, 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Points, ShapePoints, ::testing::Range(1, 9));

TEST(PhysicalGradients, UnitHexJacobian) {
  const ShapeEval s = hex8_shape({0, 0, 0});
  const PhysicalGrads pg = physical_gradients(s, kUnitHex);
  EXPECT_NEAR(pg.detJ, 0.125, 1e-14);  // (1/2)^3
}

TEST(PhysicalGradients, LinearFieldGradientExact) {
  // u(x) = 3x - 2y + z on the unit tet: grad from shape functions must be
  // (3, -2, 1) exactly.
  const ShapeEval s = tet4_shape({0.2, 0.3, 0.1});
  const PhysicalGrads pg = physical_gradients(s, kUnitTet);
  auto f = [](const Vec3& p) { return 3 * p.x - 2 * p.y + p.z; };
  Vec3 grad{};
  for (int a = 0; a < 4; ++a) grad += pg.grad[a] * f(kUnitTet[a]);
  EXPECT_NEAR(grad.x, 3.0, 1e-13);
  EXPECT_NEAR(grad.y, -2.0, 1e-13);
  EXPECT_NEAR(grad.z, 1.0, 1e-13);
}

TEST(PhysicalGradients, InvertedElementThrows) {
  std::array<Vec3, 4> bad = kUnitTet;
  std::swap(bad[1], bad[2]);  // negative orientation
  const ShapeEval s = tet4_shape({0.25, 0.25, 0.25});
  EXPECT_THROW(physical_gradients(s, bad), Error);
}

TEST(PhysicalGradients, StretchedHexScalesGradients) {
  std::array<Vec3, 8> stretched = kUnitHex;
  for (Vec3& p : stretched) p.x *= 10;
  const ShapeEval s = hex8_shape({0.3, -0.2, 0.4});
  const PhysicalGrads pg = physical_gradients(s, stretched);
  const PhysicalGrads ref = physical_gradients(s, kUnitHex);
  EXPECT_NEAR(pg.detJ, 10 * ref.detJ, 1e-12);
  for (int a = 0; a < 8; ++a) {
    EXPECT_NEAR(pg.grad[a].x, ref.grad[a].x / 10, 1e-12);
    EXPECT_NEAR(pg.grad[a].y, ref.grad[a].y, 1e-12);
  }
}

}  // namespace
}  // namespace prom::fem
