# Empty compiler generated dependencies file for thin_body.
# This may be replaced when dependencies are built.
