// Distributed node-block (BAIJ-style) matrices for the solve phase: the
// blocked counterpart of DistCsr. Each rank re-blocks its owned rows of a
// square row-distributed operator into dense 3x3 node blocks (la/bsr.h)
// and the ghost exchange ships whole node blocks — one node index plus
// kDofPerVertex values per ghost node instead of one index per scalar —
// cutting both the plan metadata and the per-SpMV index traffic by 3x.
//
// Node identity comes from the level's vertex ids: the distributed dof
// permutation stable-sorts free dofs by owning rank, so a node's free
// dofs stay contiguous (and on one rank) in the permuted global
// numbering. Block columns are ordered by global position, so the local
// blocked SpMV accumulates each scalar row in DistCsr's storage order and
// the two formats produce the same residual histories to rounding.
#pragma once

#include <span>
#include <vector>

#include "common/config.h"
#include "dla/dist_csr.h"
#include "dla/dist_krylov.h"
#include "dla/halo.h"
#include "la/bsr.h"
#include "parx/runtime.h"

namespace prom::dla {

class DistBsr {
 public:
  DistBsr() = default;

  /// Re-blocks the square row-distributed operator `a` (row and column
  /// distributions aligned) into node blocks. `perm` is the level's
  /// global permutation (perm[global] = serial free-dof index, identical
  /// on all ranks) and `free_dofs` the level's serial free-dof list
  /// (kDofPerVertex * vertex + component) — together they recover the
  /// (node, component) of every owned and ghost column. Collective
  /// (builds the node-granularity exchange plan).
  static DistBsr build(parx::Comm& comm, const DistCsr& a,
                       std::span<const idx> perm,
                       std::span<const idx> free_dofs);

  idx local_rows() const { return nlocal_; }

  /// The owned node-block rows over [owned | ghost] node columns.
  const la::Bsr3& local_matrix() const { return local_; }

  /// Block rows referencing only owned node columns — computable before
  /// the ghost exchange completes; boundary_brows() is the complement.
  const std::vector<idx>& interior_brows() const { return interior_brows_; }
  const std::vector<idx>& boundary_brows() const { return boundary_brows_; }

  /// The exchange plan (persistent staging; see dla/halo.h).
  const HaloPlan& halo_plan() const { return plan_; }

  /// y_local = A x on free-dof local blocks; ships whole node blocks in
  /// the ghost exchange. Collective.
  void spmv(parx::Comm& comm, std::span<const real> x_local,
            std::span<real> y_local) const;

  /// r_local = b - A x, fused (same bits as spmv + subtraction).
  /// Collective.
  void residual(parx::Comm& comm, std::span<const real> b_local,
                std::span<const real> x_local, std::span<real> r_local) const;

  /// Column-blocked spmv: one node-block ghost exchange and one blocked
  /// matrix pass serve all k columns; column j bitwise equals `spmv` on
  /// that column. Collective.
  void spmm(parx::Comm& comm, const la::MultiVec& x_local,
            la::MultiVec& y_local) const;

  /// Column-blocked fused residual. Collective.
  void residual_mv(parx::Comm& comm, const la::MultiVec& b_local,
                   const la::MultiVec& x_local, la::MultiVec& r_local) const;

 private:
  /// Reshapes the padded mv work buffers to width k. The zero-fill on
  /// reshape re-establishes the padding invariants per column (owned
  /// padding slots stay zero; ghost padding is rewritten every exchange).
  void ensure_mv_buffers(int k) const;
  int rank_ = 0;
  idx nlocal_ = 0;  // owned scalar rows (free dofs)
  la::Bsr3 local_;  // owned node rows x [owned | ghost] node cols
  std::vector<idx> row_slot_of_free_;   // local row -> BS*brow + comp
  std::vector<idx> slot_of_owned_col_;  // local owned col -> x_ext slot
  /// Per owned-node slot, the local dof holding its value (kInvalidIdx for
  /// constrained/padding components, which always carry 0).
  std::vector<idx> own_node_dof_;
  // Scalar-slot exchange plan over whole node blocks: the gather list is
  // own_node_dof_ per requested node (kInvalidIdx ships the padding zero)
  // and the recv slots are each ghost node's x_ext slots. Ghost padding
  // slots are rewritten with zeros every exchange; owned padding slots are
  // zeroed once at build and never touched again.
  HaloPlan plan_;
  std::vector<idx> interior_brows_;  // block rows with owned columns only
  std::vector<idx> boundary_brows_;  // the rest
  // Persistent padded work vectors (see build() for the zero invariants).
  mutable std::vector<real> x_ext_;
  mutable std::vector<real> y_pad_;
  mutable std::vector<real> b_pad_;
  mutable std::vector<real> r_pad_;
  // Blocked counterparts (see ensure_mv_buffers).
  mutable la::MultiVec x_ext_mv_;
  mutable la::MultiVec y_pad_mv_;
  mutable la::MultiVec b_pad_mv_;
  mutable la::MultiVec r_pad_mv_;
};

/// DistOperator adapter for a square DistBsr, with the fused residual the
/// ParxBackend picks up.
class DistBsrOperator final : public DistOperator {
 public:
  explicit DistBsrOperator(const DistBsr& a) : a_(&a) {}
  idx local_n() const override { return a_->local_rows(); }
  void apply(parx::Comm& comm, std::span<const real> x_local,
             std::span<real> y_local) const override {
    a_->spmv(comm, x_local, y_local);
  }
  void residual(parx::Comm& comm, std::span<const real> b_local,
                std::span<const real> x_local,
                std::span<real> r_local) const {
    a_->residual(comm, b_local, x_local, r_local);
  }
  void apply_mv(parx::Comm& comm, const la::MultiVec& x_local,
                la::MultiVec& y_local) const override {
    a_->spmm(comm, x_local, y_local);
  }
  void residual_mv(parx::Comm& comm, const la::MultiVec& b_local,
                   const la::MultiVec& x_local, la::MultiVec& r_local) const {
    a_->residual_mv(comm, b_local, x_local, r_local);
  }

 private:
  const DistBsr* a_;
};

}  // namespace prom::dla
