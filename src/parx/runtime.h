// parx — a virtual message-passing runtime (the project's MPI substitute,
// see DESIGN.md substitution 1). `Runtime::run(nranks, fn)` launches one
// thread per rank and executes `fn` SPMD-style; ranks communicate only
// through the `Comm` handle: buffered point-to-point sends, blocking
// tag-matched receives, and tree-based collectives. Per-rank traffic
// statistics (message/byte counts) feed the §6 communication-efficiency
// model in `src/perf`.
//
// Semantics intentionally mirror the MPI subset the paper's stack uses:
//  - send() is buffered and never blocks (like MPI_Bsend);
//  - recv() blocks until a message with matching (source, tag) arrives;
//    messages from the same source with the same tag are FIFO;
//  - wait_any() blocks until a message from any listed source arrives,
//    so receivers can drain peers in arrival order (MPI_Waitany);
//  - collectives are implemented over point-to-point with binomial trees
//    or log-round dissemination schedules, so their traffic is O(log P)
//    deep like a real MPI implementation.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "common/error.h"
#include "obs/trace.h"

namespace prom::parx {

/// Per-rank communication counters, returned by Runtime::run.
struct TrafficStats {
  std::int64_t messages_sent = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t flops = 0;  ///< flops counted on the rank's thread
};

namespace detail {
class Context;
}

/// Per-rank communicator handle; only valid inside Runtime::run.
/// A Comm is either the world communicator Runtime::run hands to `fn` or
/// a subset of it made by split(); either way it is a cheap value type
/// (a context pointer, a rank, and a shared group list).
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Subset communicator over `members` — ranks of *this* communicator,
  /// ascending, containing the caller; the result's rank r is members[r].
  /// Construction is pure-local (no communication, unlike
  /// MPI_Comm_split): every member derives the same group from the same
  /// list, which is all the tree collectives need. Point-to-point and
  /// collective traffic translates member ranks onto the parent context,
  /// so tags and per-rank traffic counters are shared with the parent;
  /// concurrent traffic on *overlapping* communicators with the same
  /// (peer, tag) is the caller's responsibility, exactly as in MPI.
  /// Disjoint subsets may communicate concurrently. Splits nest.
  Comm split(std::span<const int> members) const;

  /// Buffered, non-blocking send of raw bytes. `tag` must be >= 0 (negative
  /// tags are reserved for collectives).
  void send_bytes(int to, int tag, std::span<const std::byte> data);

  /// Blocking receive of a message from `from` with tag `tag`.
  std::vector<std::byte> recv_bytes(int from, int tag);

  /// Blocking receive into a caller-provided buffer (no allocation). The
  /// message size must equal `out.size()`.
  void recv_bytes_into(int from, int tag, std::span<std::byte> out);

  /// True if a message from (from, tag) is already waiting.
  bool has_message(int from, int tag) const;

  /// Blocks until a message with `tag` from any rank in `sources` is
  /// waiting and returns that source — the one whose message arrived
  /// earliest, so pairing wait_any with recv drains peers in arrival
  /// order (MPI_Waitany). Does not consume the message.
  int wait_any(std::span<const int> sources, int tag) const;

  /// Snapshot of this rank's cumulative traffic counters (messages/bytes
  /// sent so far) plus the calling thread's flop counter — used to bracket
  /// per-phase measurements (§6).
  TrafficStats traffic() const;

  // ---- typed convenience wrappers (T must be trivially copyable) ----

  template <typename T>
  void send(int to, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(to, tag, std::as_bytes(data));
  }

  template <typename T>
  void send(int to, int tag, const std::vector<T>& data) {
    send<T>(to, tag, std::span<const T>(data));
  }

  template <typename T>
  void send_value(int to, int tag, const T& value) {
    send<T>(to, tag, std::span<const T>(&value, 1));
  }

  template <typename T>
  std::vector<T> recv(int from, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> raw = recv_bytes(from, tag);
    PROM_CHECK(raw.size() % sizeof(T) == 0);
    std::vector<T> out(raw.size() / sizeof(T));
    // Empty messages are legal; memcpy's pointers must not be null then.
    if (!raw.empty()) std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  template <typename T>
  T recv_value(int from, int tag) {
    std::vector<T> v = recv<T>(from, tag);
    PROM_CHECK(v.size() == 1);
    return v[0];
  }

  /// Typed blocking receive into a caller-provided buffer; the message
  /// must hold exactly `out.size()` elements.
  template <typename T>
  void recv_into(int from, int tag, std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    recv_bytes_into(from, tag, std::as_writable_bytes(out));
  }

  // ---- collectives (all ranks must call; tree-based over p2p) ----

  void barrier();

  /// Element-wise reduction of equal-length vectors; result on all ranks.
  enum class ReduceOp { kSum, kMin, kMax };
  std::vector<double> allreduce(std::vector<double> v, ReduceOp op);
  std::vector<std::int64_t> allreduce(std::vector<std::int64_t> v,
                                      ReduceOp op);

  double allreduce_sum(double v) {
    return allreduce(std::vector<double>{v}, ReduceOp::kSum)[0];
  }
  double allreduce_max(double v) {
    return allreduce(std::vector<double>{v}, ReduceOp::kMax)[0];
  }
  double allreduce_min(double v) {
    return allreduce(std::vector<double>{v}, ReduceOp::kMin)[0];
  }
  std::int64_t allreduce_sum(std::int64_t v) {
    return allreduce(std::vector<std::int64_t>{v}, ReduceOp::kSum)[0];
  }

  /// Broadcast `data` from `root` to all ranks (returned everywhere).
  template <typename T>
  std::vector<T> bcast(std::vector<T> data, int root);

  /// Variable-size gather-to-all: every rank contributes `mine`, every rank
  /// receives all contributions indexed by rank. Bruck-style dissemination
  /// (ceil(log2 P) rounds; every foreign block crosses the wire exactly
  /// once per receiver), so no rank funnels the whole payload.
  template <typename T>
  std::vector<std::vector<T>> allgatherv(const std::vector<T>& mine);

  /// Personalized all-to-all: `sendbufs[r]` goes to rank r; returns the
  /// buffers received from each rank.
  template <typename T>
  std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& sendbufs);

 private:
  friend class Runtime;
  friend class detail::Context;
  Comm(detail::Context* ctx, int rank) : ctx_(ctx), rank_(rank) {}

  /// Context rank of communicator rank r (identity on the world comm).
  int global_rank(int r) const;

  std::vector<std::byte> bcast_bytes(std::vector<std::byte> data, int root);
  std::vector<std::vector<std::byte>> allgatherv_bytes(
      std::span<const std::byte> mine);

  detail::Context* ctx_;
  int rank_;
  /// Ascending context ranks of the group; null means the full context.
  /// Shared so copying a Comm (and nesting splits) stays cheap.
  std::shared_ptr<const std::vector<int>> group_;
};

/// Launches an SPMD region on `nranks` virtual ranks (threads). Exceptions
/// thrown by any rank are re-thrown (the first one) after all join.
class Runtime {
 public:
  static std::vector<TrafficStats> run(
      int nranks, const std::function<void(Comm&)>& fn);
};

// ---- template definitions -------------------------------------------------

template <typename T>
std::vector<T> Comm::bcast(std::vector<T> data, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::byte> raw(data.size() * sizeof(T));
  if (rank_ == root && !raw.empty()) {
    std::memcpy(raw.data(), data.data(), raw.size());
  }
  raw = bcast_bytes(std::move(raw), root);
  std::vector<T> out(raw.size() / sizeof(T));
  if (!raw.empty()) std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

template <typename T>
std::vector<std::vector<T>> Comm::allgatherv(const std::vector<T>& mine) {
  const obs::Span span("parx.allgatherv");
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::vector<std::byte>> raw =
      allgatherv_bytes(std::as_bytes(std::span<const T>(mine)));
  std::vector<std::vector<T>> all(raw.size());
  for (std::size_t r = 0; r < raw.size(); ++r) {
    PROM_CHECK(raw[r].size() % sizeof(T) == 0);
    all[r].resize(raw[r].size() / sizeof(T));
    if (!raw[r].empty()) {
      std::memcpy(all[r].data(), raw[r].data(), raw[r].size());
    }
  }
  return all;
}

template <typename T>
std::vector<std::vector<T>> Comm::alltoallv(
    const std::vector<std::vector<T>>& sendbufs) {
  const obs::Span span("parx.alltoallv");
  const int p = size();
  PROM_CHECK(static_cast<int>(sendbufs.size()) == p);
  constexpr int kTag = 0x7ffffff0;
  for (int r = 0; r < p; ++r) {
    if (r != rank_) send<T>(r, kTag, sendbufs[r]);
  }
  std::vector<std::vector<T>> recvbufs(p);
  recvbufs[rank_] = sendbufs[rank_];
  // Drain peers in arrival order (destinations are disjoint per source),
  // so one slow peer never stalls buffers that have already landed.
  std::vector<int> pending;
  pending.reserve(static_cast<std::size_t>(p > 0 ? p - 1 : 0));
  for (int r = 0; r < p; ++r) {
    if (r != rank_) pending.push_back(r);
  }
  while (!pending.empty()) {
    const int src = wait_any(pending, kTag);
    recvbufs[src] = recv<T>(src, kTag);
    pending.erase(std::find(pending.begin(), pending.end(), src));
  }
  return recvbufs;
}

}  // namespace prom::parx
