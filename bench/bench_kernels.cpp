// Kernel microbenchmarks (google-benchmark): the numerical and
// algorithmic primitives the solver spends its time in — SpMV (scalar CSR
// and 3x3 node-block BSR), the Galerkin triple product, smoothers
// (including the block-count ablation called out in DESIGN.md), greedy
// MIS, face identification, Delaunay insertion, and the exact geometric
// predicates' fast path. Emits BENCH_kernels.json with the CSR-vs-BSR
// format comparison. PROM_BENCH_SMOKE=1 shrinks every problem and caps
// the measuring time (the CI smoke lane).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "coarsen/classify.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "coarsen/coarsen.h"
#include "delaunay/delaunay.h"
#include "fem/assembly.h"
#include "fem/matrix_free.h"
#include "geom/predicates.h"
#include "graph/mis.h"
#include "graph/order.h"
#include "la/backend.h"
#include "la/bsr.h"
#include "la/smoother_kernels.h"
#include "la/smoothers.h"
#include "mesh/generate.h"
#include "partition/greedy.h"

using namespace prom;

namespace {

// Read before the BENCHMARK registrations below run (same-TU static
// initialization order), so every ->Apply sees it.
const bool kSmoke = std::getenv("PROM_BENCH_SMOKE") != nullptr;

struct Assembled {
  mesh::Mesh mesh;
  fem::DofMap dofmap{0};
  la::Csr stiffness;
};

const Assembled& assembled(idx n) {
  static std::map<idx, Assembled> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    Assembled a;
    a.mesh = mesh::box_hex(n, n, n, {0, 0, 0}, {1, 1, 1});
    a.dofmap = fem::DofMap(a.mesh.num_vertices());
    a.dofmap.fix_all(a.mesh.vertices_where(
                         [](const Vec3& p) { return p.z < 1e-12; }),
                     0);
    a.dofmap.finalize();
    fem::FeProblem prob(a.mesh, {fem::Material{}}, a.dofmap);
    a.stiffness = fem::assemble_linear_system(prob).stiffness;
    it = cache.emplace(n, std::move(a)).first;
  }
  return it->second;
}

void BM_Spmv(benchmark::State& state) {
  const Assembled& a = assembled(static_cast<idx>(state.range(0)));
  std::vector<real> x(a.stiffness.ncols, 1.0), y(a.stiffness.nrows);
  for (auto _ : state) {
    a.stiffness.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.stiffness.nnz());
}
BENCHMARK(BM_Spmv)->Apply([](benchmark::internal::Benchmark* b) {
  if (kSmoke) b->Arg(8);
  else b->Arg(8)->Arg(12)->Arg(16);
});

void BM_GalerkinTripleProduct(benchmark::State& state) {
  const Assembled& a = assembled(static_cast<idx>(state.range(0)));
  const graph::Graph g = a.mesh.vertex_graph();
  const coarsen::Classification cls = coarsen::classify_mesh(a.mesh);
  const auto level =
      coarsen::coarsen_level(a.mesh.coords(), g, cls, 0, {});
  std::vector<idx> coarse_free;
  for (idx c = 0; c < static_cast<idx>(level.selected.size()); ++c) {
    for (int comp = 0; comp < 3; ++comp) {
      if (!a.dofmap.is_constrained(3 * level.selected[c] + comp)) {
        coarse_free.push_back(3 * c + comp);
      }
    }
  }
  const la::Csr r = coarsen::expand_restriction_to_dofs(
      level.r_vertex, a.dofmap.free_dofs(), coarse_free);
  for (auto _ : state) {
    const la::Csr coarse = la::galerkin_product(r, a.stiffness);
    benchmark::DoNotOptimize(coarse.nnz());
  }
}
BENCHMARK(BM_GalerkinTripleProduct)
    ->Apply([](benchmark::internal::Benchmark* b) {
      if (kSmoke) b->Arg(8);
      else b->Arg(8)->Arg(10);
    });

void BM_BlockJacobiSweep(benchmark::State& state) {
  // Block-count ablation: the paper's 6 blocks/1000 unknowns vs denser
  // and sparser alternatives.
  const Assembled& a = assembled(10);
  const idx per1000 = static_cast<idx>(state.range(0));
  std::vector<std::pair<idx, idx>> edges;
  for (idx i = 0; i < a.stiffness.nrows; ++i) {
    for (nnz_t k = a.stiffness.rowptr[i]; k < a.stiffness.rowptr[i + 1];
         ++k) {
      if (a.stiffness.colidx[k] > i) {
        edges.emplace_back(i, a.stiffness.colidx[k]);
      }
    }
  }
  const graph::Graph g = graph::Graph::from_edges(a.stiffness.nrows, edges);
  const la::BlockJacobiSmoother smoother(
      a.stiffness, partition::block_jacobi_blocks(g, per1000), 0.6);
  std::vector<real> b(a.stiffness.nrows, 1.0), x(a.stiffness.nrows, 0.0);
  for (auto _ : state) {
    smoother.smooth(b, x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_BlockJacobiSweep)->Apply([](benchmark::internal::Benchmark* b) {
  if (kSmoke) b->Arg(6);
  else b->Arg(2)->Arg(6)->Arg(20);
});

void BM_GreedyMis(benchmark::State& state) {
  const Assembled& a = assembled(static_cast<idx>(state.range(0)));
  const graph::Graph g = a.mesh.vertex_graph();
  const auto order = graph::random_order(g.num_vertices(), 1);
  for (auto _ : state) {
    const auto mis = graph::greedy_mis(g, order, {});
    benchmark::DoNotOptimize(mis.selected.size());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_GreedyMis)->Apply([](benchmark::internal::Benchmark* b) {
  if (kSmoke) b->Arg(10);
  else b->Arg(12)->Arg(16);
});

void BM_FaceIdentification(benchmark::State& state) {
  const Assembled& a = assembled(static_cast<idx>(state.range(0)));
  const auto facets = mesh::boundary_facets(a.mesh);
  const auto adj = mesh::facet_adjacency(facets);
  for (auto _ : state) {
    const auto faces = coarsen::identify_faces(facets, adj);
    benchmark::DoNotOptimize(faces.num_faces);
  }
  state.SetItemsProcessed(state.iterations() * facets.size());
}
BENCHMARK(BM_FaceIdentification)
    ->Apply([](benchmark::internal::Benchmark* b) {
      if (kSmoke) b->Arg(10);
      else b->Arg(12)->Arg(16);
    });

void BM_DelaunayBuild(benchmark::State& state) {
  const idx n = static_cast<idx>(state.range(0));
  Rng rng(7);
  std::vector<Vec3> pts(static_cast<std::size_t>(n));
  for (Vec3& p : pts) {
    p = {rng.next_real(), rng.next_real(), rng.next_real()};
  }
  for (auto _ : state) {
    const delaunay::Delaunay3 dt(pts);
    benchmark::DoNotOptimize(dt.num_alive_tets());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DelaunayBuild)->Apply([](benchmark::internal::Benchmark* b) {
  if (kSmoke) b->Arg(200);
  else b->Arg(200)->Arg(1000);
});

void BM_Orient3dFastPath(benchmark::State& state) {
  Rng rng(3);
  std::vector<Vec3> pts(4000);
  for (Vec3& p : pts) {
    p = {rng.next_real(), rng.next_real(), rng.next_real()};
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const real d = orient3d(pts[i % 4000], pts[(i + 1) % 4000],
                            pts[(i + 2) % 4000], pts[(i + 3) % 4000]);
    benchmark::DoNotOptimize(d);
    ++i;
  }
}
BENCHMARK(BM_Orient3dFastPath);

// ---- threads sweep -------------------------------------------------------
//
// The two-level parallelism benchmarks: the same kernel at 1/2/4/8
// intra-rank threads on a >= 100k-DOF operator (box_hex(32) has ~104k free
// dofs). Each entry reports a "speedup_vs_1t" counter relative to the
// 1-thread entry of its own sweep so BENCH_*.json tracks the trajectory,
// and the SpMV sweep hard-fails if the threaded kernel is not bit-identical
// to the pre-change serial loop.

/// The pre-change serial SpMV, kept as the bit-identity reference.
void spmv_serial_reference(const la::Csr& a, const std::vector<real>& x,
                           std::vector<real>& y) {
  for (idx i = 0; i < a.nrows; ++i) {
    real sum = 0;
    for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
      sum += a.vals[k] * x[a.colidx[k]];
    }
    y[i] = sum;
  }
}

/// Records the 1-thread mean time per sweep so later entries can report
/// their speedup. Keyed by (benchmark family, problem size).
double& one_thread_ns(const char* family, std::int64_t size) {
  static std::map<std::pair<std::string, std::int64_t>, double> base;
  return base[{family, size}];
}

/// Runs `body` once per benchmark iteration under `threads` kernel
/// threads, timing it manually, and attaches threads + speedup counters.
template <typename Body>
void run_thread_sweep(benchmark::State& state, const char* family,
                      const Body& body) {
  const std::int64_t size = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  prom::common::set_kernel_threads(threads);
  double total_ns = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    total_ns += std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  }
  prom::common::set_kernel_threads(0);
  const double mean_ns =
      total_ns / static_cast<double>(std::max<std::int64_t>(
                     1, static_cast<std::int64_t>(state.iterations())));
  if (threads == 1) one_thread_ns(family, size) = mean_ns;
  state.counters["threads"] = threads;
  const double base = one_thread_ns(family, size);
  if (base > 0) state.counters["speedup_vs_1t"] = base / mean_ns;
}

void BM_SpmvThreads(benchmark::State& state) {
  const Assembled& a = assembled(static_cast<idx>(state.range(0)));
  std::vector<real> x(a.stiffness.ncols), y(a.stiffness.nrows),
      yref(a.stiffness.nrows);
  Rng rng(11);
  for (real& v : x) v = rng.next_real() - 0.5;
  // Bit-identity gate: the threaded kernel must match the serial loop
  // exactly at this sweep's thread count (rows are computed identically
  // regardless of the decomposition).
  spmv_serial_reference(a.stiffness, x, yref);
  prom::common::set_kernel_threads(static_cast<int>(state.range(1)));
  a.stiffness.spmv(x, y);
  prom::common::set_kernel_threads(0);
  if (std::memcmp(y.data(), yref.data(), y.size() * sizeof(real)) != 0) {
    std::fprintf(stderr,
                 "FATAL: threaded SpMV is not bit-identical to the serial "
                 "reference (threads=%ld)\n",
                 static_cast<long>(state.range(1)));
    std::abort();
  }
  run_thread_sweep(state, "spmv", [&] {
    a.stiffness.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  });
  state.SetItemsProcessed(state.iterations() * a.stiffness.nnz());
}
BENCHMARK(BM_SpmvThreads)->Apply([](benchmark::internal::Benchmark* b) {
  const std::int64_t n = kSmoke ? 12 : 32;
  for (const std::int64_t t : {1, 2, 4, 8}) {
    if (kSmoke && t > 2) continue;
    b->Args({n, t});
  }
});

void BM_ChebyshevSmootherThreads(benchmark::State& state) {
  const Assembled& a = assembled(static_cast<idx>(state.range(0)));
  const la::ChebyshevSmoother smoother(a.stiffness, 3);
  std::vector<real> b(a.stiffness.nrows, 1.0), x(a.stiffness.nrows, 0.0);
  run_thread_sweep(state, "chebyshev", [&] {
    smoother.smooth(b, x);
    benchmark::DoNotOptimize(x.data());
  });
}
BENCHMARK(BM_ChebyshevSmootherThreads)
    ->Apply([](benchmark::internal::Benchmark* b) {
      const std::int64_t n = kSmoke ? 12 : 32;
      for (const std::int64_t t : {1, 2, 4, 8}) {
        if (kSmoke && t > 2) continue;
        b->Args({n, t});
      }
    });

void BM_GalerkinThreads(benchmark::State& state) {
  const Assembled& a = assembled(static_cast<idx>(state.range(0)));
  const graph::Graph g = a.mesh.vertex_graph();
  const coarsen::Classification cls = coarsen::classify_mesh(a.mesh);
  const auto level = coarsen::coarsen_level(a.mesh.coords(), g, cls, 0, {});
  std::vector<idx> coarse_free;
  for (idx c = 0; c < static_cast<idx>(level.selected.size()); ++c) {
    for (int comp = 0; comp < 3; ++comp) {
      if (!a.dofmap.is_constrained(3 * level.selected[c] + comp)) {
        coarse_free.push_back(3 * c + comp);
      }
    }
  }
  const la::Csr r = coarsen::expand_restriction_to_dofs(
      level.r_vertex, a.dofmap.free_dofs(), coarse_free);
  run_thread_sweep(state, "galerkin", [&] {
    const la::Csr coarse = la::galerkin_product(r, a.stiffness);
    benchmark::DoNotOptimize(coarse.nnz());
  });
}
BENCHMARK(BM_GalerkinThreads)->Apply([](benchmark::internal::Benchmark* b) {
  const std::int64_t n = kSmoke ? 8 : 16;
  for (const std::int64_t t : {1, 2, 4, 8}) {
    if (kSmoke && t > 2) continue;
    b->Args({n, t});
  }
});

void BM_AssemblyThreads(benchmark::State& state) {
  const Assembled& a = assembled(static_cast<idx>(state.range(0)));
  fem::FeProblem prob(a.mesh, {fem::Material{}}, a.dofmap);
  const std::vector<real> u(a.dofmap.num_dofs(), 0.0);
  run_thread_sweep(state, "assembly", [&] {
    const auto res = prob.assemble(u, true);
    benchmark::DoNotOptimize(res.stiffness.nnz());
  });
  state.SetItemsProcessed(state.iterations() * a.mesh.num_cells());
}
BENCHMARK(BM_AssemblyThreads)->Apply([](benchmark::internal::Benchmark* b) {
  const std::int64_t n = kSmoke ? 6 : 12;
  for (const std::int64_t t : {1, 2, 4, 8}) {
    if (kSmoke && t > 2) continue;
    b->Args({n, t});
  }
});

void BM_Assembly(benchmark::State& state) {
  const Assembled& a = assembled(static_cast<idx>(state.range(0)));
  fem::FeProblem prob(a.mesh, {fem::Material{}}, a.dofmap);
  const std::vector<real> u(a.dofmap.num_dofs(), 0.0);
  for (auto _ : state) {
    const auto res = prob.assemble(u, true);
    benchmark::DoNotOptimize(res.stiffness.nnz());
  }
  state.SetItemsProcessed(state.iterations() * a.mesh.num_cells());
}
BENCHMARK(BM_Assembly)->Apply([](benchmark::internal::Benchmark* b) {
  if (kSmoke) b->Arg(6);
  else b->Arg(8)->Arg(12);
});

// ---- matrix-format comparison -------------------------------------------
//
// Scalar CSR (AIJ) vs 3x3 node-block BSR (BAIJ) vs the matrix-free
// element apply on the elasticity operator, 1 kernel thread — the paper
// ran Prometheus on PETSc block matrices for the column-index-traffic
// effect, and the matrix-free fine level (fem/matrix_free.h) removes the
// stored matrix from the apply stream altogether. Reports ns/dof and a
// bytes/dof traffic model per format, plus a >= 100k-unknown scale entry
// where the matrix-free bytes/dof must undercut assembled CSR. Timed
// manually (best mean over repetitions) and written to BENCH_kernels.json
// so the perf trajectory tracks the speedups.

/// Mean ns/op of the best of `reps` batches of `iters` calls.
template <typename Body>
double best_mean_ns(int reps, int iters, const Body& body) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) body();
    const double ns = std::chrono::duration<double, std::nano>(
                          std::chrono::steady_clock::now() - t0)
                          .count() /
                      iters;
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

/// Apply-stream traffic of the scalar CSR SpMV in bytes per output row:
/// vals + colidx + rowptr once each, x and y once each (perfect cache).
double csr_bytes_per_dof(const la::Csr& a) {
  const double bytes =
      static_cast<double>(a.nnz()) * (sizeof(real) + sizeof(idx)) +
      static_cast<double>(a.rowptr.size()) * sizeof(nnz_t) +
      static_cast<double>(a.ncols + a.nrows) * sizeof(real);
  return bytes / a.nrows;
}

/// Same traffic model for the 3x3 node-block BSR: block values + one
/// column index per block + block rowptr + x and y.
double bsr3_bytes_per_dof(const la::Bsr3& ab) {
  const double bytes =
      static_cast<double>(ab.vals.size()) * sizeof(real) +
      static_cast<double>(ab.bcolidx.size()) * sizeof(idx) +
      static_cast<double>(ab.browptr.size()) * sizeof(nnz_t) +
      static_cast<double>(ab.cols() + ab.rows()) * sizeof(real);
  return bytes / ab.rows();
}

int run_format_comparison() {
  // Unconstrained elasticity: every vertex keeps its 3 dofs, so the
  // scalar operator blocks losslessly and both formats do identical
  // arithmetic on identical vectors.
  const idx n = kSmoke ? 8 : 16;
  mesh::Mesh mesh = mesh::box_hex(n, n, n, {0, 0, 0}, {1, 1, 1});
  fem::DofMap dofmap(mesh.num_vertices());
  const std::vector<fem::Material> materials(1);
  fem::FeProblem prob(mesh, materials, dofmap);
  const la::Csr a = fem::assemble_linear_system(prob).stiffness;
  const la::Bsr3 ab = la::Bsr3::from_csr(a);
  const fem::MatrixFreeOperator mf =
      fem::MatrixFreeOperator::build(mesh, materials, dofmap);

  std::vector<real> x(static_cast<std::size_t>(a.ncols));
  Rng rng(5);
  for (real& v : x) v = rng.next_real() - 0.5;
  std::vector<real> y(static_cast<std::size_t>(a.nrows));
  std::vector<real> yb(y.size());
  std::vector<real> ym(y.size());

  common::set_kernel_threads(1);
  const int reps = kSmoke ? 3 : 5;
  const int iters = kSmoke ? 5 : 40;
  const double csr_spmv = best_mean_ns(reps, iters, [&] {
    a.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  });
  const double bsr_spmv = best_mean_ns(reps, iters, [&] {
    ab.spmv(x, yb);
    benchmark::DoNotOptimize(yb.data());
  });
  const double mf_apply = best_mean_ns(reps, iters, [&] {
    mf.apply(x, ym);
    benchmark::DoNotOptimize(ym.data());
  });
  if (std::memcmp(y.data(), yb.data(), y.size() * sizeof(real)) != 0) {
    std::fprintf(stderr,
                 "FATAL: blocked SpMV is not bit-identical to scalar CSR\n");
    return 1;
  }
  // The matrix-free apply sums element contributions instead of matrix
  // rows — same operator to reassociation rounding, not bitwise.
  {
    real scale = 0;
    real err = 0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      scale = std::max(scale, std::fabs(y[i]));
      err = std::max(err, std::fabs(ym[i] - y[i]));
    }
    if (err > 1e-12 * scale) {
      std::fprintf(stderr,
                   "FATAL: matrix-free apply deviates from CSR by %.3e "
                   "(scale %.3e)\n",
                   err, scale);
      return 1;
    }
  }

  // One smoother sweep: scalar Jacobi vs the point-block sweep that
  // back-solves each 3x3 node block.
  std::vector<idx> all_dofs(static_cast<std::size_t>(a.nrows));
  for (idx i = 0; i < a.nrows; ++i) all_dofs[i] = i;
  const la::BsrOperator op(ab, la::node_block_map(all_dofs));
  const la::CsrOperator sop(a);
  const std::vector<real> inv_diag = la::inverted_diagonal(a);
  const std::vector<real> inv_blocks = ab.inverted_block_diagonal();
  const std::vector<real> b(static_cast<std::size_t>(a.nrows), 1.0);
  std::vector<real> xs(b.size(), 0.0);
  const double csr_sweep = best_mean_ns(reps, iters, [&] {
    la::jacobi_sweep(la::SerialBackend{}, sop, inv_diag, 0.6, b, xs);
    benchmark::DoNotOptimize(xs.data());
  });
  std::fill(xs.begin(), xs.end(), 0.0);
  const double bsr_sweep = best_mean_ns(reps, iters, [&] {
    la::pointblock_jacobi_sweep<3>(la::SerialBackend{}, op, inv_blocks, 0.6,
                                   b, xs);
    benchmark::DoNotOptimize(xs.data());
  });
  // Fine-level scale point (>= 100k unknowns non-smoke: the n=32 box has
  // 33^3 * 3 = 107,811 free dofs). Here the assembled matrix blows out of
  // cache and the bytes/dof model decides the apply speed — the
  // matrix-free stream must undercut assembled CSR (the acceptance bar).
  const idx n_scale = kSmoke ? 8 : 32;
  mesh::Mesh mesh_s = mesh::box_hex(n_scale, n_scale, n_scale, {0, 0, 0},
                                    {1, 1, 1});
  fem::DofMap dofmap_s(mesh_s.num_vertices());
  fem::FeProblem prob_s(mesh_s, materials, dofmap_s);
  const la::Csr a_s = fem::assemble_linear_system(prob_s).stiffness;
  const fem::MatrixFreeOperator mf_s =
      fem::MatrixFreeOperator::build(mesh_s, materials, dofmap_s);
  std::vector<real> x_s(static_cast<std::size_t>(a_s.ncols));
  for (real& v : x_s) v = rng.next_real() - 0.5;
  std::vector<real> y_s(static_cast<std::size_t>(a_s.nrows));
  const int iters_s = kSmoke ? 3 : 5;
  const double csr_spmv_s = best_mean_ns(2, iters_s, [&] {
    a_s.spmv(x_s, y_s);
    benchmark::DoNotOptimize(y_s.data());
  });
  const double mf_apply_s = best_mean_ns(2, iters_s, [&] {
    mf_s.apply(x_s, y_s);
    benchmark::DoNotOptimize(y_s.data());
  });
  common::set_kernel_threads(0);

  const double spmv_speedup = csr_spmv / bsr_spmv;
  const double sweep_speedup = csr_sweep / bsr_sweep;
  const double csr_bytes = csr_bytes_per_dof(a);
  const double bsr_bytes = bsr3_bytes_per_dof(ab);
  const double mf_bytes = mf.core().apply_bytes_per_row();
  const double csr_bytes_s = csr_bytes_per_dof(a_s);
  const double mf_bytes_s = mf_s.core().apply_bytes_per_row();
  std::printf(
      "\nmatrix-format comparison (1 thread, %d unknowns, nnz %lld):\n"
      "  spmv      csr %8.0f ns  bsr3 %8.0f ns  speedup %.2fx\n"
      "  mf apply  %8.0f ns  (%.2fx vs csr spmv)\n"
      "  jacobi    csr %8.0f ns  bsr3 %8.0f ns  speedup %.2fx\n"
      "  ns/dof    csr %8.2f     bsr3 %8.2f     mf %8.2f\n"
      "  bytes/dof csr %8.1f     bsr3 %8.1f     mf %8.1f\n"
      "fine-level scale point (%d unknowns):\n"
      "  ns/dof    csr %8.2f     mf %8.2f\n"
      "  bytes/dof csr %8.1f     mf %8.1f  (mf %s csr)\n",
      a.nrows, static_cast<long long>(a.nnz()), csr_spmv, bsr_spmv,
      spmv_speedup, mf_apply, csr_spmv / mf_apply, csr_sweep, bsr_sweep,
      sweep_speedup, csr_spmv / a.nrows, bsr_spmv / a.nrows,
      mf_apply / a.nrows, csr_bytes, bsr_bytes, mf_bytes, a_s.nrows,
      csr_spmv_s / a_s.nrows, mf_apply_s / a_s.nrows, csr_bytes_s,
      mf_bytes_s, mf_bytes_s < csr_bytes_s ? "<" : ">=");

  std::FILE* json = std::fopen("BENCH_kernels.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_kernels.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"kernels\",\n  \"unknowns\": %d,\n"
               "  \"nnz\": %lld,\n  \"threads\": 1,\n"
               "  \"spmv\": {\"csr_ns\": %.1f, \"bsr3_ns\": %.1f, "
               "\"speedup\": %.3f},\n"
               "  \"jacobi_sweep\": {\"csr_ns\": %.1f, \"bsr3_ns\": %.1f, "
               "\"speedup\": %.3f},\n"
               "  \"mf_apply\": {\"ns\": %.1f, \"ns_per_dof\": %.3f, "
               "\"vs_csr_spmv\": %.3f},\n"
               "  \"bytes_per_dof\": {\"csr\": %.1f, \"bsr3\": %.1f, "
               "\"mf\": %.1f},\n"
               "  \"mf_scale\": {\"unknowns\": %d, "
               "\"csr_ns_per_dof\": %.3f, \"mf_ns_per_dof\": %.3f, "
               "\"csr_bytes_per_dof\": %.1f, \"mf_bytes_per_dof\": %.1f}\n"
               "}\n",
               a.nrows, static_cast<long long>(a.nnz()), csr_spmv, bsr_spmv,
               spmv_speedup, csr_sweep, bsr_sweep, sweep_speedup, mf_apply,
               mf_apply / a.nrows, csr_spmv / mf_apply, csr_bytes, bsr_bytes,
               mf_bytes, a_s.nrows, csr_spmv_s / a_s.nrows,
               mf_apply_s / a_s.nrows, csr_bytes_s, mf_bytes_s);
  std::fclose(json);
  std::printf("wrote BENCH_kernels.json\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  // The smoke lane keeps google-benchmark's measuring time short; any
  // explicit --benchmark_min_time on the command line still wins (later
  // flags override).
  std::string min_time = "--benchmark_min_time=0.02";
  if (kSmoke) args.insert(args.begin() + 1, min_time.data());
  int argcx = static_cast<int>(args.size());
  benchmark::Initialize(&argcx, args.data());
  if (benchmark::ReportUnrecognizedArguments(argcx, args.data())) return 1;
  if (const int rc = run_format_comparison(); rc != 0) return rc;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
