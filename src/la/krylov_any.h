// The single-source Krylov solvers — PCG for SPD operators, restarted
// right-preconditioned GMRES(m) and BiCGStab for non-symmetric ones — each
// written exactly once as a template over an execution backend
// (la/backend.h). la::cg / la::pcg / la::gmres / la::bicgstab instantiate
// them with SerialBackend; dla::dist_pcg / dist_gmres / dist_bicgstab
// instantiate them with ParxBackend — same code, same stopping criterion
// (`krylov_converged`), only the reductions differ.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "common/error.h"
#include "la/backend.h"
#include "la/krylov.h"
#include "la/vec.h"
#include "obs/trace.h"

namespace prom::la {

/// Reusable PCG work storage (r, z, p, ap). Owned by long-lived callers
/// (the solve service keeps one per rank) so that repeat solves against a
/// cached operator perform no per-solve heap allocation: `ensure` only
/// reallocates when the requested shape exceeds anything seen before.
struct KrylovWorkspace {
  MultiVec r, z, p, ap;

  void ensure(idx n, int k) {
    if (r.rows() == n && r.cols() == k) return;
    r.resize(n, k);
    z.resize(n, k);
    p.resize(n, k);
    ap.resize(n, k);
  }
};

/// PCG for SPD systems over any backend; `m == nullptr` means
/// unpreconditioned. `b` and `x` are the local blocks of the distributed
/// right-hand side and iterate (the whole vectors on SerialBackend); x
/// holds the initial guess on entry and the solution on exit. On a
/// collective backend every rank receives the same KrylovResult. A
/// caller-owned `ws` makes repeat solves allocation-free.
template <class B, class Op>
  requires BackendFor<B, Op>
KrylovResult pcg_any(const B& be, const Op& a, const Op* m,
                     std::span<const real> b, std::span<real> x,
                     const KrylovOptions& opts,
                     KrylovWorkspace* ws = nullptr) {
  const idx n = be.local_n(a);
  PROM_CHECK(static_cast<idx>(b.size()) == n &&
             static_cast<idx>(x.size()) == n);

  KrylovResult result;
  KrylovWorkspace local_ws;
  KrylovWorkspace& w = ws != nullptr ? *ws : local_ws;
  w.ensure(n, 1);
  const std::span<real> r = w.r.col(0);
  const std::span<real> z = w.z.col(0);
  const std::span<real> p = w.p.col(0);
  const std::span<real> ap = w.ap.col(0);

  const real bnorm = be.norm2(b);
  if (opts.track_history) result.history.push_back(bnorm);
  // Residual history into the obs series registry (same convention as
  // `history`: entry 0 is ||b||). Identical values on every rank of a
  // collective backend; the report keeps one representative copy.
  obs::series_push("pcg.residual", bnorm);
  if (bnorm == real{0}) {
    set_all(x, 0);
    result.converged = true;
    return result;
  }

  // r = b - A x
  be.apply(a, x, r);
  waxpby(1, b, -1, r, r);

  real rnorm = be.norm2(r);
  if (krylov_converged(rnorm, bnorm, opts.rtol)) {
    result.converged = true;
    result.final_relres = rnorm / bnorm;
    return result;
  }

  if (m != nullptr) {
    be.apply(*m, r, z);
  } else {
    copy(r, z);
  }
  copy(z, p);
  real rz = be.dot(r, z);

  for (int it = 1; it <= opts.max_iters; ++it) {
    be.apply(a, p, ap);
    const real pap = be.dot(p, ap);
    if (!std::isfinite(pap) || pap <= 0) {
      result.breakdown = true;
      break;
    }
    const real alpha = rz / pap;
    be.axpy(alpha, p, x);
    be.axpy(-alpha, ap, r);
    rnorm = be.norm2(r);
    if (opts.track_history) result.history.push_back(rnorm);
    obs::series_push("pcg.residual", rnorm);
    result.iterations = it;
    if (krylov_converged(rnorm, bnorm, opts.rtol)) {
      result.converged = true;
      break;
    }
    if (m != nullptr) {
      be.apply(*m, r, z);
    } else {
      copy(r, z);
    }
    const real rz_new = be.dot(r, z);
    const real beta = rz_new / rz;
    rz = rz_new;
    aypx(beta, z, p);
  }
  result.final_relres = rnorm / bnorm;
  return result;
}

/// Blocked PCG: k right-hand sides against one operator, sharing every
/// matrix pass (apply_mv) and ghost exchange while keeping all per-column
/// scalar recurrences separate. Column j runs exactly pcg_any's operation
/// sequence on its own data — per-column dots/norms reduced individually,
/// same update order — so it is bitwise identical to a standalone pcg_any
/// solve of that RHS, at any kernel-thread count, serial or distributed.
///
/// Convergence masking: a column that converges (or breaks down) freezes —
/// its scalar recurrences stop exactly where pcg_any would have stopped.
/// Frozen columns still ride along in the blocked applies (their results
/// are discarded), so the collective call counts stay identical on every
/// rank; all masks derive from reduced values, which a collective backend
/// returns bit-identically everywhere.
template <class B, class Op>
  requires BackendFor<B, Op>
std::vector<KrylovResult> pcg_multi_any(const B& be, const Op& a, const Op* m,
                                        const MultiVec& b, MultiVec& x,
                                        const KrylovOptions& opts,
                                        KrylovWorkspace* ws = nullptr) {
  const idx n = be.local_n(a);
  const int k = b.cols();
  PROM_CHECK(b.rows() == n && x.rows() == n && x.cols() == k && k >= 1 &&
             k <= kMaxRhsBlock);

  std::vector<KrylovResult> results(static_cast<std::size_t>(k));
  KrylovWorkspace local_ws;
  KrylovWorkspace& w = ws != nullptr ? *ws : local_ws;
  w.ensure(n, k);
  MultiVec& r = w.r;
  MultiVec& z = w.z;
  MultiVec& p = w.p;
  MultiVec& ap = w.ap;

  real bnorm[kMaxRhsBlock];
  real rnorm[kMaxRhsBlock] = {};
  real rz[kMaxRhsBlock] = {};
  bool active[kMaxRhsBlock];
  const auto any_active = [&] {
    for (int j = 0; j < k; ++j) {
      if (active[j]) return true;
    }
    return false;
  };

  for (int j = 0; j < k; ++j) {
    active[j] = true;
    bnorm[j] = be.norm2(b.col(j));
    if (opts.track_history) results[j].history.push_back(bnorm[j]);
    obs::series_push("pcg.residual", bnorm[j]);
    if (bnorm[j] == real{0}) {
      set_all(x.col(j), 0);
      results[j].converged = true;
      active[j] = false;
    }
  }
  if (!any_active()) return results;

  // R = B - A X (columns of dead RHSs computed and ignored).
  be.residual_mv(a, b, x, r);
  for (int j = 0; j < k; ++j) {
    if (!active[j]) continue;
    rnorm[j] = be.norm2(r.col(j));
    if (krylov_converged(rnorm[j], bnorm[j], opts.rtol)) {
      results[j].converged = true;
      results[j].final_relres = rnorm[j] / bnorm[j];
      active[j] = false;
    }
  }
  if (!any_active()) return results;

  if (m != nullptr) {
    be.apply_mv(*m, r, z);
  } else {
    for (int j = 0; j < k; ++j) copy(r.col(j), z.col(j));
  }
  for (int j = 0; j < k; ++j) {
    if (!active[j]) continue;
    copy(z.col(j), p.col(j));
    rz[j] = be.dot(r.col(j), z.col(j));
  }

  for (int it = 1; it <= opts.max_iters; ++it) {
    be.apply_mv(a, p, ap);
    for (int j = 0; j < k; ++j) {
      if (!active[j]) continue;
      const real pap = be.dot(p.col(j), ap.col(j));
      if (!std::isfinite(pap) || pap <= 0) {
        results[j].breakdown = true;
        results[j].final_relres = rnorm[j] / bnorm[j];
        active[j] = false;
        continue;
      }
      const real alpha = rz[j] / pap;
      be.axpy(alpha, p.col(j), x.col(j));
      be.axpy(-alpha, ap.col(j), r.col(j));
      rnorm[j] = be.norm2(r.col(j));
      if (opts.track_history) results[j].history.push_back(rnorm[j]);
      obs::series_push("pcg.residual", rnorm[j]);
      results[j].iterations = it;
      if (krylov_converged(rnorm[j], bnorm[j], opts.rtol)) {
        results[j].converged = true;
        results[j].final_relres = rnorm[j] / bnorm[j];
        active[j] = false;
      }
    }
    if (!any_active()) break;
    if (m != nullptr) {
      be.apply_mv(*m, r, z);
    } else {
      for (int j = 0; j < k; ++j) copy(r.col(j), z.col(j));
    }
    for (int j = 0; j < k; ++j) {
      if (!active[j]) continue;
      const real rz_new = be.dot(r.col(j), z.col(j));
      const real beta = rz_new / rz[j];
      rz[j] = rz_new;
      aypx(beta, z.col(j), p.col(j));
    }
  }
  for (int j = 0; j < k; ++j) {
    if (active[j]) results[j].final_relres = rnorm[j] / bnorm[j];
  }
  return results;
}

/// Restarted GMRES(m) with optional *right* preconditioning over any
/// backend (`m == nullptr` means unpreconditioned). The Arnoldi basis
/// vectors are local blocks; the Hessenberg matrix, Givens rotations, and
/// least-squares state are replicated scalars derived purely from backend
/// reductions, so on a collective backend every rank walks the identical
/// recurrence and receives the same KrylovResult. Right preconditioning
/// keeps the minimized residual the *true* residual, so `krylov_converged`
/// means the same thing it does for PCG.
template <class B, class Op>
  requires BackendFor<B, Op>
KrylovResult gmres_any(const B& be, const Op& a, const Op* m,
                       std::span<const real> b, std::span<real> x,
                       const GmresOptions& opts) {
  const idx n = be.local_n(a);
  PROM_CHECK(static_cast<idx>(b.size()) == n &&
             static_cast<idx>(x.size()) == n);
  const int restart = std::max(1, opts.restart);

  KrylovResult result;
  const real bnorm = be.norm2(b);
  if (opts.track_history) result.history.push_back(bnorm);
  obs::series_push("gmres.residual", bnorm);
  if (bnorm == real{0}) {
    set_all(x, 0);
    result.converged = true;
    return result;
  }

  std::vector<std::vector<real>> basis;  // Arnoldi vectors v_0..v_k
  // Hessenberg in compact column form + Givens rotation coefficients.
  std::vector<std::vector<real>> hcols;
  std::vector<real> cs(static_cast<std::size_t>(restart) + 1);
  std::vector<real> sn(static_cast<std::size_t>(restart) + 1);
  std::vector<real> g(static_cast<std::size_t>(restart) + 1);
  std::vector<real> r(static_cast<std::size_t>(n));
  std::vector<real> w(static_cast<std::size_t>(n));
  std::vector<real> z(static_cast<std::size_t>(n));

  int total_iters = 0;
  while (total_iters < opts.max_iters) {
    // (Re)start: r = b - A x.
    be.residual(a, b, x, r);
    real rnorm = be.norm2(r);
    result.final_relres = rnorm / bnorm;
    if (krylov_converged(rnorm, bnorm, opts.rtol)) {
      result.converged = true;
      return result;
    }

    basis.clear();
    hcols.clear();
    basis.push_back(std::vector<real>(r.begin(), r.end()));
    scale(1 / rnorm, basis[0]);
    std::fill(g.begin(), g.end(), real{0});
    g[0] = rnorm;

    int k = 0;
    for (; k < restart && total_iters < opts.max_iters; ++k) {
      // w = A M^{-1} v_k (right preconditioning).
      if (m != nullptr) {
        be.apply(*m, basis[k], z);
        be.apply(a, z, w);
      } else {
        be.apply(a, basis[k], w);
      }
      // Modified Gram-Schmidt.
      std::vector<real> h(static_cast<std::size_t>(k) + 2, 0);
      for (int i = 0; i <= k; ++i) {
        h[i] = be.dot(w, basis[i]);
        axpy(-h[i], basis[i], w);
      }
      h[k + 1] = be.norm2(w);
      const real subdiag = h[k + 1];
      if (h[k + 1] > 0) {
        basis.push_back(std::vector<real>(w.begin(), w.end()));
        scale(1 / h[k + 1], basis.back());
      }
      // Apply previous Givens rotations to the new column.
      for (int i = 0; i < k; ++i) {
        const real t = cs[i] * h[i] + sn[i] * h[i + 1];
        h[i + 1] = -sn[i] * h[i] + cs[i] * h[i + 1];
        h[i] = t;
      }
      // New rotation to annihilate h[k+1].
      const real denom = std::sqrt(h[k] * h[k] + h[k + 1] * h[k + 1]);
      if (denom == 0) {
        cs[k] = 1;
        sn[k] = 0;
      } else {
        cs[k] = h[k] / denom;
        sn[k] = h[k + 1] / denom;
      }
      h[k] = cs[k] * h[k] + sn[k] * h[k + 1];
      h[k + 1] = 0;
      g[k + 1] = -sn[k] * g[k];
      g[k] = cs[k] * g[k];
      hcols.push_back(std::move(h));
      ++total_iters;
      result.iterations = total_iters;
      rnorm = std::fabs(g[k + 1]);
      if (opts.track_history) result.history.push_back(rnorm);
      obs::series_push("gmres.residual", rnorm);
      if (krylov_converged(rnorm, bnorm, opts.rtol) || subdiag == 0) {
        ++k;
        break;
      }
    }

    // Solve the k x k triangular system and update x.
    std::vector<real> y(static_cast<std::size_t>(k));
    for (int i = k - 1; i >= 0; --i) {
      real sum = g[i];
      for (int jj = i + 1; jj < k; ++jj) sum -= hcols[jj][i] * y[jj];
      PROM_CHECK_MSG(hcols[i][i] != 0, "GMRES breakdown: singular H");
      y[i] = sum / hcols[i][i];
    }
    std::fill(z.begin(), z.end(), real{0});
    for (int i = 0; i < k; ++i) axpy(y[i], basis[i], z);
    if (m != nullptr) {
      be.apply(*m, z, w);
      axpy(1, w, x);
    } else {
      axpy(1, z, x);
    }
    result.final_relres = rnorm / bnorm;
    if (krylov_converged(rnorm, bnorm, opts.rtol)) {
      result.converged = true;
      return result;
    }
  }
  // Final true-residual check.
  be.residual(a, b, x, r);
  result.final_relres = be.norm2(r) / bnorm;
  result.converged = result.final_relres <= opts.rtol;
  return result;
}

/// BiCGStab with optional *right* preconditioning over any backend
/// (`m == nullptr` means unpreconditioned). Short recurrences — constant
/// storage where GMRES grows a basis — at the price of a less monotone
/// residual. All recurrence scalars (rho, alpha, omega) come from backend
/// reductions, so the serial and collective instantiations walk the same
/// iterate history; the residual history records both the half-step ||s||
/// and the full-step ||r||, one `iterations` count per full loop.
template <class B, class Op>
  requires BackendFor<B, Op>
KrylovResult bicgstab_any(const B& be, const Op& a, const Op* m,
                          std::span<const real> b, std::span<real> x,
                          const KrylovOptions& opts) {
  const idx n = be.local_n(a);
  PROM_CHECK(static_cast<idx>(b.size()) == n &&
             static_cast<idx>(x.size()) == n);

  KrylovResult result;
  const real bnorm = be.norm2(b);
  if (opts.track_history) result.history.push_back(bnorm);
  obs::series_push("bicgstab.residual", bnorm);
  if (bnorm == real{0}) {
    set_all(x, 0);
    result.converged = true;
    return result;
  }

  std::vector<real> r(static_cast<std::size_t>(n));
  std::vector<real> rhat(static_cast<std::size_t>(n));
  std::vector<real> p(static_cast<std::size_t>(n), 0);
  std::vector<real> v(static_cast<std::size_t>(n), 0);
  std::vector<real> s(static_cast<std::size_t>(n));
  std::vector<real> t(static_cast<std::size_t>(n));
  std::vector<real> phat(static_cast<std::size_t>(n));
  std::vector<real> shat(static_cast<std::size_t>(n));

  be.residual(a, b, x, r);
  real rnorm = be.norm2(r);
  if (krylov_converged(rnorm, bnorm, opts.rtol)) {
    result.converged = true;
    result.final_relres = rnorm / bnorm;
    return result;
  }
  copy(r, rhat);  // fixed shadow residual

  real rho = 1, alpha = 1, omega = 1;
  for (int it = 1; it <= opts.max_iters; ++it) {
    const real rho_new = be.dot(rhat, r);
    if (!std::isfinite(rho_new) || rho_new == 0 || omega == 0) {
      result.breakdown = true;
      break;
    }
    if (it == 1) {
      copy(r, p);
    } else {
      const real beta = (rho_new / rho) * (alpha / omega);
      axpy(-omega, v, p);    // p -= omega v
      aypx(beta, r, p);      // p  = r + beta p
    }
    if (m != nullptr) {
      be.apply(*m, p, phat);
    } else {
      copy(p, phat);
    }
    be.apply(a, phat, v);
    const real rhat_v = be.dot(rhat, v);
    if (!std::isfinite(rhat_v) || rhat_v == 0) {
      result.breakdown = true;
      break;
    }
    alpha = rho_new / rhat_v;
    waxpby(1, r, -alpha, v, s);
    const real snorm = be.norm2(s);
    result.iterations = it;
    if (opts.track_history) result.history.push_back(snorm);
    obs::series_push("bicgstab.residual", snorm);
    if (krylov_converged(snorm, bnorm, opts.rtol)) {
      be.axpy(alpha, phat, x);
      rnorm = snorm;
      result.converged = true;
      break;
    }
    if (m != nullptr) {
      be.apply(*m, s, shat);
    } else {
      copy(s, shat);
    }
    be.apply(a, shat, t);
    const real tt = be.dot(t, t);
    const real ts = be.dot(t, s);
    if (!std::isfinite(tt) || tt == 0) {
      result.breakdown = true;
      break;
    }
    omega = ts / tt;
    be.axpy(alpha, phat, x);
    be.axpy(omega, shat, x);
    waxpby(1, s, -omega, t, r);
    rnorm = be.norm2(r);
    if (opts.track_history) result.history.push_back(rnorm);
    obs::series_push("bicgstab.residual", rnorm);
    if (krylov_converged(rnorm, bnorm, opts.rtol)) {
      result.converged = true;
      break;
    }
    rho = rho_new;
  }
  result.final_relres = rnorm / bnorm;
  return result;
}

}  // namespace prom::la
