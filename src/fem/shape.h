// Isoparametric shape functions. HEX8 (trilinear) carries the fine-grid
// discretization; TET4 (linear) provides the restriction operator weights
// on Delaunay coarse grids — "standard linear finite element shape
// functions for tetrahedra are used to produce the restriction operator"
// (§3 of the paper).
#pragma once

#include <array>
#include <span>

#include "common/config.h"
#include "geom/mat3.h"
#include "geom/vec3.h"

namespace prom::fem {

inline constexpr int kMaxNodes = 8;

/// Shape function values and reference-space gradients at one point.
struct ShapeEval {
  int n = 0;                                 ///< number of nodes (4 or 8)
  std::array<real, kMaxNodes> value{};       ///< N_a
  std::array<Vec3, kMaxNodes> grad_xi{};     ///< dN_a / dxi
};

/// Trilinear HEX8 shape functions at reference point xi in [-1,1]^3, node
/// order matching the VTK hexahedron.
ShapeEval hex8_shape(const Vec3& xi);

/// Linear TET4 shape functions at reference point xi in the unit simplex.
ShapeEval tet4_shape(const Vec3& xi);

/// Physical-space gradients at one quadrature point.
struct PhysicalGrads {
  std::array<Vec3, kMaxNodes> grad;  ///< dN_a / dX
  real detJ = 0;                     ///< Jacobian determinant
};

/// Maps reference gradients to physical ones given the element's node
/// coordinates. Throws on a non-positive Jacobian (inverted element).
PhysicalGrads physical_gradients(const ShapeEval& shape,
                                 std::span<const Vec3> nodes);

/// Interpolated position sum_a N_a * X_a.
Vec3 interpolate_position(const ShapeEval& shape, std::span<const Vec3> nodes);

}  // namespace prom::fem
