file(REMOVE_RECURSE
  "CMakeFiles/prom_parx.dir/parx/runtime.cpp.o"
  "CMakeFiles/prom_parx.dir/parx/runtime.cpp.o.d"
  "libprom_parx.a"
  "libprom_parx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prom_parx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
