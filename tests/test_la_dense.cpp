#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "la/dense.h"

namespace prom::la {
namespace {

/// Random SPD matrix A = B^T B + n*I.
DenseMatrix random_spd(idx n, std::uint64_t seed) {
  Rng rng(seed);
  DenseMatrix b(n, n);
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < n; ++i) b(i, j) = rng.next_real() - 0.5;
  }
  DenseMatrix a(n, n);
  for (idx i = 0; i < n; ++i) {
    for (idx j = 0; j < n; ++j) {
      real sum = 0;
      for (idx k = 0; k < n; ++k) sum += b(k, i) * b(k, j);
      a(i, j) = sum + (i == j ? n : real{0});
    }
  }
  return a;
}

TEST(DenseMatrix, MatvecIdentity) {
  const DenseMatrix eye = DenseMatrix::identity(3);
  std::vector<real> x = {1, 2, 3}, y(3);
  eye.matvec(x, y);
  EXPECT_EQ(y, x);
}

TEST(DenseMatrix, MatvecRectangular) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 2) = 4;
  std::vector<real> x = {1, 1, 1}, y(2);
  a.matvec(x, y);
  EXPECT_DOUBLE_EQ(y[0], 6);
  EXPECT_DOUBLE_EQ(y[1], 4);
}

class LdltSizes : public ::testing::TestWithParam<idx> {};

TEST_P(LdltSizes, SolveRecoversKnownSolution) {
  const idx n = GetParam();
  const DenseMatrix a = random_spd(n, 42 + n);
  // Manufactured solution.
  std::vector<real> x_true(n), b(n), x(n);
  for (idx i = 0; i < n; ++i) x_true[i] = std::sin(i + 1.0);
  a.matvec(x_true, b);
  DenseLdlt ldlt(a);
  ASSERT_TRUE(ldlt.ok());
  ldlt.solve(b, x);
  for (idx i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LdltSizes,
                         ::testing::Values(1, 2, 3, 5, 10, 33, 100));

TEST(Ldlt, DetectsIndefiniteMatrix) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(1, 1) = -1;
  EXPECT_FALSE(DenseLdlt(a).ok());
}

TEST(Ldlt, DetectsSingularMatrix) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = a(1, 0) = 1;
  a(1, 1) = 1;  // rank 1
  EXPECT_FALSE(DenseLdlt(a).ok());
}

TEST(Ldlt, SolveOnFailedFactorizationThrows) {
  DenseMatrix a(1, 1);
  a(0, 0) = -1;
  DenseLdlt f(a);
  ASSERT_FALSE(f.ok());
  std::vector<real> b = {1}, x = {0};
  EXPECT_THROW(f.solve(b, x), Error);
}

TEST(Ldlt, IllConditionedStillAccurate) {
  // Diagonal spread of 1e10 — LDLT of an SPD diagonal-ish matrix.
  const idx n = 20;
  DenseMatrix a(n, n);
  for (idx i = 0; i < n; ++i) a(i, i) = std::pow(10.0, i % 11 - 5);
  for (idx i = 0; i + 1 < n; ++i) {
    const real off = 1e-3 * std::min(a(i, i), a(i + 1, i + 1));
    a(i, i + 1) = a(i + 1, i) = off;
  }
  DenseLdlt f(a);
  ASSERT_TRUE(f.ok());
  std::vector<real> x_true(n, 1.0), b(n), x(n);
  a.matvec(x_true, b);
  f.solve(b, x);
  for (idx i = 0; i < n; ++i) EXPECT_NEAR(x[i], 1.0, 1e-8);
}

}  // namespace
}  // namespace prom::la
