// Golden-history regression for the matrix-free fine level: the
// quickstart elasticity solve under PROM_MATRIX=mf must (a) reproduce the
// assembled CSR path's PCG residual history to 1e-12 with the identical
// iteration count (the matrix-free apply is the same operator to
// reassociation rounding), (b) emit the mf.setup and mf.apply obs spans,
// and (c) reproduce the committed golden history
// (tests/golden/mf_quickstart.json, an obs::Report) — catching any change
// to the element kernel, the SIMD batching, or the two-pass accumulation
// that alters convergence. Regenerate the golden file after an
// *intentional* change with PROM_UPDATE_GOLDEN=1.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "app/driver.h"
#include "fem/assembly.h"
#include "la/krylov.h"
#include "mg/hierarchy.h"
#include "mg/solver.h"
#include "obs/report.h"
#include "obs/trace.h"

#ifndef PROM_GOLDEN_DIR
#error "PROM_GOLDEN_DIR must point at the committed golden files"
#endif

namespace prom {
namespace {

struct SolveOutcome {
  la::KrylovResult result;
  obs::Report report;  ///< contains the "pcg.residual" series
};

/// The quickstart problem (8^3 box, clamped bottom, pressed top) solved
/// with the requested solve-phase format under a fresh tracing window.
SolveOutcome run_quickstart(mg::MatrixFormat format) {
  const app::ModelProblem p = app::make_box_problem(8);
  fem::FeProblem fe(p.mesh, p.materials, p.dofmap);
  fem::LinearSystem sys = fem::assemble_linear_system(fe);
  mg::Hierarchy h =
      mg::Hierarchy::build(p.mesh, p.dofmap, std::move(sys.stiffness), {});

  obs::Tracer& tracer = obs::Tracer::instance();
  const bool was_tracing = obs::tracing();
  tracer.set_enabled(true);
  const std::int64_t mark = obs::Tracer::now_ns();

  // Inside the window so the mf.setup span is recorded.
  if (format == mg::MatrixFormat::kMf) {
    h.enable_mf(p.mesh, p.materials, p.dofmap);
  }

  mg::MgSolveOptions opts;
  opts.rtol = 1e-8;
  opts.track_history = true;
  opts.format = format;
  std::vector<real> x(sys.rhs.size(), 0);
  SolveOutcome out;
  out.result = mg::mg_pcg_solve(h, sys.rhs, x, opts);
  tracer.set_enabled(was_tracing);
  out.report = obs::build_report(mark);
  return out;
}

const std::vector<double>& residual_series(const obs::Report& rep) {
  const obs::SeriesEntry* s = rep.find_series("pcg.residual");
  EXPECT_NE(s, nullptr) << "report lacks the pcg.residual series";
  static const std::vector<double> empty;
  return s != nullptr ? s->values : empty;
}

TEST(MfGolden, MatchesCsrHistoryAndCommittedGolden) {
  const SolveOutcome csr = run_quickstart(mg::MatrixFormat::kCsr);
  const SolveOutcome mf = run_quickstart(mg::MatrixFormat::kMf);
  ASSERT_TRUE(csr.result.converged);
  ASSERT_TRUE(mf.result.converged);

  // (a) The matrix-free solve is the same iteration to rounding:
  // identical iteration count, history equal to 1e-12 of the initial
  // residual (the acceptance bar for PROM_MATRIX=mf).
  EXPECT_EQ(mf.result.iterations, csr.result.iterations);
  const std::vector<double>& hc = residual_series(csr.report);
  const std::vector<double>& hm = residual_series(mf.report);
  ASSERT_FALSE(hc.empty());
  ASSERT_EQ(hm.size(), hc.size());
  for (std::size_t i = 0; i < hc.size(); ++i) {
    EXPECT_NEAR(hm[i], hc[i], 1e-12 * hc[0]) << "history entry " << i;
  }
  EXPECT_NEAR(mf.result.final_relres, csr.result.final_relres, 1e-12);

  // (b) The matrix-free spans were recorded: one setup, one apply per
  // fine-level operator application (PCG matvecs + cycle fine levels).
  const obs::ComponentEntry* setup =
      mf.report.component("mf.setup", obs::kNoLevel);
  ASSERT_NE(setup, nullptr);
  EXPECT_GE(setup->count, 1);
  const obs::ComponentEntry* apply =
      mf.report.component("mf.apply", obs::kNoLevel);
  ASSERT_NE(apply, nullptr);
  EXPECT_GT(apply->count, static_cast<std::int64_t>(mf.result.iterations));
  EXPECT_EQ(csr.report.component("mf.apply", obs::kNoLevel), nullptr);

  // (c) The mf history matches the committed golden history.
  const std::string path =
      std::string(PROM_GOLDEN_DIR) + "/mf_quickstart.json";
  if (std::getenv("PROM_UPDATE_GOLDEN") != nullptr) {
    mf.report.write_json(path);
    GTEST_SKIP() << "golden file regenerated at " << path;
  }
  const obs::Report golden = obs::Report::read_json(path);
  const std::vector<double>& hg = residual_series(golden);
  ASSERT_EQ(hm.size(), hg.size())
      << "iteration count drifted from the golden history; if intended, "
         "regenerate with PROM_UPDATE_GOLDEN=1";
  for (std::size_t i = 0; i < hg.size(); ++i) {
    EXPECT_NEAR(hm[i], hg[i], 1e-10 * hg[0]) << "golden entry " << i;
  }
}

}  // namespace
}  // namespace prom
