// Smoothed aggregation multigrid (Vanek, Mandel & Brezina [25 in the
// paper]) — the alternative unstructured algorithm the paper's §8 names as
// future work ("we also plan to explore alternative (effective)
// unstructured multigrid algorithms such as smoothed aggregation, to
// evaluate (and make publicly available) competitive algorithms").
//
// Unlike the paper's geometric MIS/Delaunay coarsening, SA is purely
// algebraic: nodes are aggregated along strong connections, a tentative
// prolongator is built from the rigid-body modes restricted to each
// aggregate (orthonormalized per aggregate), and the prolongator is
// improved by one damped-Jacobi smoothing step. The resulting hierarchy
// plugs into the same V-cycle/FMG/PCG machinery as the geometric solver,
// which makes the head-to-head comparison (bench_sa_vs_gmg) direct.
#pragma once

#include "mg/hierarchy.h"

namespace prom::mg {

struct SaOptions {
  /// Strength-of-connection threshold: nodes i, j are strongly connected
  /// when ||A_ij||_F^2 > theta^2 ||A_ii||_F ||A_jj||_F.
  real strength_theta = 0.06;
  /// Damping for the prolongator smoother P = (I - omega D^{-1} A) P_tent
  /// (omega is divided by the spectral radius estimate of D^{-1}A).
  real prolongator_omega = 0.66;
  /// Columns of the near-null-space candidate block carried per level
  /// (6 rigid body modes for 3D elasticity).
  int num_candidates = 6;
};

/// Builds a smoothed-aggregation hierarchy for the free-dof system
/// `a_fine` of the given mesh/constraints. Level sizing (max_levels,
/// coarsest_max_dofs), smoother and coarse-solver choices come from
/// `opts`; the coarsening itself ignores opts.coarsen (it is algebraic).
Hierarchy build_smoothed_aggregation(const mesh::Mesh& mesh,
                                     const fem::DofMap& dofmap,
                                     la::Csr a_fine, const MgOptions& opts,
                                     const SaOptions& sa = {});

/// The rigid-body modes of the mesh restricted to the free dofs: a dense
/// column-major n_free x 6 block (3 translations + 3 rotations about the
/// mesh centroid). Exposed for tests.
std::vector<real> rigid_body_modes(const mesh::Mesh& mesh,
                                   const fem::DofMap& dofmap);

/// Greedy root-based aggregation of a node strength graph; returns the
/// aggregate id per node (all nodes assigned). Exposed for tests.
std::vector<idx> aggregate_nodes(const graph::Graph& strength, idx* num_out);

}  // namespace prom::mg
