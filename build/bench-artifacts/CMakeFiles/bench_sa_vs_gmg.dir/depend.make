# Empty dependencies file for bench_sa_vs_gmg.
# This may be replaced when dependencies are built.
