// Figure 11 reproduction: flop/iteration/processor efficiency (left: the
// flop scale efficiency eFs and load imbalance) and flop-rate/processor
// efficiency (right: communication efficiency ec) over the scaled series,
// normalized to the smallest (2-rank) case exactly as the paper
// normalizes to its 2-processor base. Per DESIGN.md substitution 1, flops
// and traffic are measured per virtual rank; the flop *rate* uses the
// calibrated machine model.
#include <cstdio>
#include <cstdlib>

#include "app/driver.h"

using namespace prom;

int main() {
  const bool full = std::getenv("PROM_BENCH_FULL") != nullptr;
  const auto series = app::scaled_series(full ? 4 : 3);

  std::vector<app::LinearStudyReport> reports;
  for (const app::ScaledCase& sc : series) {
    const app::ModelProblem problem =
        app::make_sphere_problem(sc.params, 1.2);
    app::LinearStudyConfig cfg;
    cfg.nranks = sc.ranks;
    cfg.rtol = 1e-4;
    reports.push_back(app::run_linear_study(problem, cfg));
  }
  const perf::RunMeasurement base = reports.front().measurement();

  std::printf("Figure 11: solve-phase efficiencies relative to the "
              "%d-rank base\n", reports.front().ranks);
  std::printf("%-10s %-7s %-18s %-14s %-16s %-12s\n", "equations", "ranks",
              "flop/it/unknown", "eFs (left)", "ec flop rate", "load bal");
  for (const app::LinearStudyReport& r : reports) {
    const perf::Efficiencies e =
        perf::compute_efficiencies(base, r.measurement());
    const double fpiu =
        static_cast<double>(r.solve_phase.total_flops()) /
        (static_cast<double>(r.iterations) * r.unknowns);
    std::printf("%-10d %-7d %-18.1f %-14.3f %-16.3f %-12.3f\n", r.unknowns,
                r.ranks, fpiu, e.flop_scale, e.communication,
                e.load_balance);
  }
  std::printf(
      "\nheadline: modeled solve Mflop/s %.0f (base) -> %.0f (largest); "
      "parallel\nefficiency of the flop rate %.0f%% at the largest case "
      "(paper: ~60%% at 960 procs).\n",
      reports.front().modeled_mflops, reports.back().modeled_mflops,
      100 * perf::compute_efficiencies(base, reports.back().measurement())
                .communication);
  std::printf("shape claims: eFs >= 1 and growing (interior fraction grows "
              "with size,\nso flops/unknown shrink — the paper's "
              "super-linear flop efficiency);\nec and load balance decay "
              "slowly from 1.0.\n");
  return 0;
}
