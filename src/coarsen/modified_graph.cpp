#include "coarsen/modified_graph.h"

#include <utility>
#include <vector>

#include "common/error.h"

namespace prom::coarsen {

graph::Graph modified_mis_graph(const graph::Graph& vertex_graph,
                                const Classification& cls,
                                ModifiedGraphStats* stats) {
  const idx n = vertex_graph.num_vertices();
  PROM_CHECK(cls.num_vertices() == n);
  std::vector<std::pair<idx, idx>> kept;
  nnz_t removed = 0;
  for (idx u = 0; u < n; ++u) {
    for (idx v : vertex_graph.neighbors(u)) {
      if (v <= u) continue;
      const bool both_exterior = cls.type[u] != VertexType::kInterior &&
                                 cls.type[v] != VertexType::kInterior;
      if (both_exterior && !cls.share_face(u, v)) {
        ++removed;
        continue;
      }
      kept.emplace_back(u, v);
    }
  }
  if (stats != nullptr) stats->edges_removed = removed;
  return graph::Graph::from_edges(n, kept);
}

}  // namespace prom::coarsen
