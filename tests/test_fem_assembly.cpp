#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"
#include "fem/assembly.h"
#include "fem/matrix_free.h"
#include "la/dense.h"
#include "la/krylov.h"
#include "mesh/generate.h"

namespace prom::fem {
namespace {

TEST(DofMap, FixAndFinalize) {
  DofMap dm(4);  // 12 dofs
  EXPECT_EQ(dm.num_dofs(), 12);
  EXPECT_EQ(dm.num_free(), 12);
  dm.fix(0, 2, -1.5);
  dm.fix(3, 0, 0.0);
  dm.finalize();
  EXPECT_EQ(dm.num_free(), 10);
  EXPECT_TRUE(dm.is_constrained(DofMap::dof_of(0, 2)));
  EXPECT_DOUBLE_EQ(dm.bc_value(DofMap::dof_of(0, 2)), -1.5);
  EXPECT_EQ(dm.free_index(DofMap::dof_of(0, 2)), kInvalidIdx);
  EXPECT_NE(dm.free_index(DofMap::dof_of(1, 0)), kInvalidIdx);
}

TEST(DofMap, FullFreeRoundTrip) {
  DofMap dm(2);
  dm.fix(0, 0, 2.0);
  dm.finalize();
  std::vector<real> free_values(5);
  for (int i = 0; i < 5; ++i) free_values[i] = 10.0 + i;
  const auto full = dm.full_from_free(free_values);
  EXPECT_DOUBLE_EQ(full[0], 2.0);
  EXPECT_DOUBLE_EQ(full[1], 10.0);
  const auto back = dm.free_from_full(full);
  EXPECT_EQ(back, free_values);
  // Scaled BC insertion.
  const auto half = dm.full_from_free(free_values, 0.5);
  EXPECT_DOUBLE_EQ(half[0], 1.0);
}

TEST(DofMap, ScaleBc) {
  DofMap dm(1);
  dm.fix(0, 1, 4.0);
  dm.scale_bc(0.25);
  EXPECT_DOUBLE_EQ(dm.bc_value(1), 1.0);
}

class AssemblyFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    mesh_ = mesh::box_hex(3, 3, 3, {0, 0, 0}, {1, 1, 1});
    dofmap_ = DofMap(mesh_.num_vertices());
    const real eps = 1e-12;
    dofmap_.fix_all(
        mesh_.vertices_where([&](const Vec3& p) { return p.z < eps; }), 0);
    for (idx v : mesh_.vertices_where(
             [&](const Vec3& p) { return p.z > 1 - eps; })) {
      dofmap_.fix(v, 2, -0.01);
    }
    dofmap_.finalize();
  }

  mesh::Mesh mesh_;
  DofMap dofmap_{0};
};

TEST_F(AssemblyFixture, StiffnessSymmetricPositiveDefinite) {
  FeProblem prob(mesh_, {Material{}}, dofmap_);
  const LinearSystem sys = assemble_linear_system(prob);
  EXPECT_EQ(sys.stiffness.nrows, dofmap_.num_free());
  EXPECT_LT(sys.stiffness.symmetry_error(), 1e-12);
  // SPD: dense LDLT succeeds.
  la::DenseMatrix dense(sys.stiffness.nrows, sys.stiffness.ncols);
  const auto d = sys.stiffness.to_dense_rowmajor();
  for (idx i = 0; i < sys.stiffness.nrows; ++i) {
    for (idx j = 0; j < sys.stiffness.ncols; ++j) {
      dense(i, j) = d[static_cast<std::size_t>(i) * sys.stiffness.ncols + j];
    }
  }
  EXPECT_TRUE(la::DenseLdlt(dense).ok());
}

TEST_F(AssemblyFixture, LinearSolveMatchesDirectSolve) {
  FeProblem prob(mesh_, {Material{}}, dofmap_);
  const LinearSystem sys = assemble_linear_system(prob);
  // CG solution.
  std::vector<real> x_cg(sys.rhs.size(), 0.0);
  const la::CsrOperator op(sys.stiffness);
  la::KrylovOptions kopts;
  kopts.rtol = 1e-12;
  kopts.max_iters = 5000;
  ASSERT_TRUE(la::cg(op, sys.rhs, x_cg, kopts).converged);
  // Dense direct solution.
  la::DenseMatrix dense(sys.stiffness.nrows, sys.stiffness.ncols);
  const auto d = sys.stiffness.to_dense_rowmajor();
  for (idx i = 0; i < sys.stiffness.nrows; ++i) {
    for (idx j = 0; j < sys.stiffness.ncols; ++j) {
      dense(i, j) = d[static_cast<std::size_t>(i) * sys.stiffness.ncols + j];
    }
  }
  la::DenseLdlt ldlt(dense);
  ASSERT_TRUE(ldlt.ok());
  std::vector<real> x_direct(sys.rhs.size());
  ldlt.solve(sys.rhs, x_direct);
  for (std::size_t i = 0; i < x_cg.size(); ++i) {
    EXPECT_NEAR(x_cg[i], x_direct[i], 1e-8);
  }
}

TEST_F(AssemblyFixture, ResidualVanishesAtEquilibrium) {
  // f_int at the solved displacement is zero on the free dofs.
  FeProblem prob(mesh_, {Material{}}, dofmap_);
  const LinearSystem sys = assemble_linear_system(prob);
  std::vector<real> x(sys.rhs.size(), 0.0);
  const la::CsrOperator op(sys.stiffness);
  la::KrylovOptions kopts;
  kopts.rtol = 1e-13;
  kopts.max_iters = 5000;
  ASSERT_TRUE(la::cg(op, sys.rhs, x, kopts).converged);
  const auto u_full = prob.dofmap().full_from_free(x);
  const AssemblyResult res = prob.assemble(u_full, false);
  real rnorm = 0;
  for (real v : res.f_int) rnorm = std::max(rnorm, std::fabs(v));
  EXPECT_LT(rnorm, 1e-10);
}

TEST_F(AssemblyFixture, CompressionProducesDownwardDisplacementField) {
  FeProblem prob(mesh_, {Material{}}, dofmap_);
  const LinearSystem sys = assemble_linear_system(prob);
  std::vector<real> x(sys.rhs.size(), 0.0);
  const la::CsrOperator op(sys.stiffness);
  la::KrylovOptions kopts;
  kopts.rtol = 1e-10;
  kopts.max_iters = 5000;
  ASSERT_TRUE(la::cg(op, sys.rhs, x, kopts).converged);
  const auto u_full = prob.dofmap().full_from_free(x);
  // All z-displacements between the BC values.
  for (idx v = 0; v < mesh_.num_vertices(); ++v) {
    const real uz = u_full[DofMap::dof_of(v, 2)];
    EXPECT_LE(uz, 1e-12);
    EXPECT_GE(uz, -0.01 - 1e-12);
  }
}

TEST_F(AssemblyFixture, BcCouplingMatchesExplicitProduct) {
  // bc_coupling must equal K_fc * u_c computed from an unconstrained
  // reference assembly.
  FeProblem prob(mesh_, {Material{}}, dofmap_);
  const std::vector<real> u_zero(dofmap_.num_dofs(), 0.0);
  const AssemblyResult res = prob.assemble(u_zero, true);

  // Reference: unconstrained problem (no BCs) gives the full matrix.
  DofMap free_map(mesh_.num_vertices());
  FeProblem full_prob(mesh_, {Material{}}, free_map);
  const AssemblyResult full = full_prob.assemble(u_zero, true);
  // K_fc u_c: rows = free dofs of dofmap_, cols = constrained with values.
  for (idx d = 0; d < dofmap_.num_dofs(); ++d) {
    const idx fi = dofmap_.free_index(d);
    if (fi == kInvalidIdx) continue;
    real expected = 0;
    for (idx c = 0; c < dofmap_.num_dofs(); ++c) {
      if (!dofmap_.is_constrained(c)) continue;
      expected += full.stiffness.at(d, c) * dofmap_.bc_value(c);
    }
    EXPECT_NEAR(res.bc_coupling[fi], expected, 1e-12);
  }
}

TEST_F(AssemblyFixture, BlockedAssemblyMatchesScalar) {
  // The node-block assembly path must reproduce the scalar one: same rhs
  // bit for bit (identical accumulation order), same stiffness entries to
  // the triplet-reordering tolerance, identity pivots on every
  // constrained diagonal slot, zeros elsewhere in constrained rows/cols.
  FeProblem scalar_problem(mesh_, {Material{}}, dofmap_);
  const LinearSystem sys = assemble_linear_system(scalar_problem);
  FeProblem blocked_problem(mesh_, {Material{}}, dofmap_);
  const LinearSystemBsr bsys = assemble_linear_system_bsr(blocked_problem);

  ASSERT_EQ(bsys.rhs.size(), sys.rhs.size());
  for (std::size_t i = 0; i < sys.rhs.size(); ++i) {
    EXPECT_EQ(bsys.rhs[i], sys.rhs[i]) << "rhs entry " << i;
  }

  const la::NodeBlockMap& map = bsys.map;
  ASSERT_EQ(map.nfree, sys.stiffness.nrows);
  real scale = 0;
  for (real v : sys.stiffness.vals) scale = std::max(scale, std::abs(v));
  for (idx i = 0; i < map.nfree; ++i) {
    // Stored scalar entries agree (duplicate triplets may sum in a
    // different order between the two paths — tolerance, not bitwise).
    for (nnz_t k = sys.stiffness.rowptr[i]; k < sys.stiffness.rowptr[i + 1];
         ++k) {
      EXPECT_NEAR(bsys.stiffness.at(map.slot_of_free[i],
                                    map.slot_of_free[sys.stiffness.colidx[k]]),
                  sys.stiffness.vals[k], 1e-12 * scale)
          << "entry (" << i << ", " << sys.stiffness.colidx[k] << ")";
    }
  }
  for (idx s = 0; s < map.nslots(); ++s) {
    if (map.free_of_slot[s] == kInvalidIdx) {
      EXPECT_EQ(bsys.stiffness.at(s, s), 1.0) << "padding slot " << s;
    }
  }

  // The blocked operator applied through the map matches the scalar SpMV.
  const la::BsrOperator op(bsys.stiffness, map);
  std::vector<real> x(static_cast<std::size_t>(map.nfree));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(static_cast<real>(i) + 1);
  }
  std::vector<real> yb(x.size());
  std::vector<real> ys(x.size());
  op.apply(x, yb);
  sys.stiffness.spmv(x, ys);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(yb[i], ys[i], 1e-12 * scale) << "spmv entry " << i;
  }
}

// --- Matrix-free element cross-check ---------------------------------------
// fem::mf_element_apply runs one element through the batched SIMD kernel;
// it must reproduce Ke x for the assembled unloaded-state tangent on every
// element shape the meshers produce (axis-aligned, stretched, rotated and
// perturbed hexes; reference and distorted tets; warped sphere-mesh cells).

la::Csr element_stiffness(mesh::CellKind kind, std::span<const Vec3> coords,
                          const Material& mat) {
  const int nen = mesh::nodes_per_cell(kind);
  std::vector<idx> cell(static_cast<std::size_t>(nen));
  std::iota(cell.begin(), cell.end(), idx{0});
  const mesh::Mesh m(kind, std::vector<Vec3>(coords.begin(), coords.end()),
                     std::move(cell), {0});
  const DofMap dm(nen);  // nothing fixed: Ke over all 3*nen dofs
  FeProblem prob(m, {mat}, dm);
  return assemble_linear_system(prob).stiffness;
}

void expect_mf_matches_element(mesh::CellKind kind,
                               std::span<const Vec3> coords,
                               const Material& mat, Rng& rng,
                               const std::string& label) {
  const idx n = 3 * mesh::nodes_per_cell(kind);
  const la::Csr ke = element_stiffness(kind, coords, mat);
  ASSERT_EQ(ke.nrows, n) << label;
  real scale = 0;
  for (real v : ke.vals) scale = std::max(scale, std::abs(v));
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<real> x(static_cast<std::size_t>(n));
    for (real& v : x) v = 2 * rng.next_real() - 1;
    std::vector<real> y_ref(x.size());
    ke.spmv(x, y_ref);
    const std::vector<real> y_mf = mf_element_apply(mat, coords, x, true);
    for (idx i = 0; i < n; ++i) {
      EXPECT_NEAR(y_mf[i], y_ref[i], 1e-12 * scale)
          << label << ", trial " << trial << ", dof " << i;
    }
  }
}

TEST(MatrixFreeElement, MatchesAssembledKeOnHexAndTetOrientations) {
  Rng rng(20260808);
  const std::vector<Material> mats = {Material{}, Material::paper_soft(),
                                      Material::paper_hard()};
  const char* mat_names[] = {"elastic", "neo-hookean", "j2"};

  const std::vector<Vec3> unit_hex = {{0, 0, 0}, {1, 0, 0}, {1, 1, 0},
                                      {0, 1, 0}, {0, 0, 1}, {1, 0, 1},
                                      {1, 1, 1}, {0, 1, 1}};
  // Anisotropic stretch (thin-slab-like aspect ratios).
  std::vector<Vec3> stretched = unit_hex;
  for (Vec3& p : stretched) p = {4 * p.x, p.y, real{0.25} * p.z};
  // Rigid rotation (30 degrees about z then 45 about x) — must leave Ke's
  // action on rotated vectors consistent; here it just exercises a fully
  // populated Jacobian.
  const real c30 = std::cos(0.5), s30 = std::sin(0.5);
  const real c45 = std::cos(0.8), s45 = std::sin(0.8);
  std::vector<Vec3> rotated = unit_hex;
  for (Vec3& p : rotated) {
    const Vec3 q = {c30 * p.x - s30 * p.y, s30 * p.x + c30 * p.y, p.z};
    p = {q.x, c45 * q.y - s45 * q.z, s45 * q.y + c45 * q.z};
  }
  // Random perturbation, small enough to keep every det J positive.
  std::vector<Vec3> jiggled = unit_hex;
  for (Vec3& p : jiggled) {
    p = {p.x + real{0.15} * (2 * rng.next_real() - 1),
         p.y + real{0.15} * (2 * rng.next_real() - 1),
         p.z + real{0.15} * (2 * rng.next_real() - 1)};
  }

  const std::vector<Vec3> ref_tet = {
      {0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  const std::vector<Vec3> skew_tet = {
      {0.1, 0, 0.05}, {1.3, 0.2, 0}, {0.3, 0.9, 0.1}, {0.2, 0.4, 1.5}};

  struct Case {
    mesh::CellKind kind;
    const std::vector<Vec3>* coords;
    const char* name;
  };
  const Case cases[] = {
      {mesh::CellKind::kHex8, &unit_hex, "unit hex"},
      {mesh::CellKind::kHex8, &stretched, "stretched hex"},
      {mesh::CellKind::kHex8, &rotated, "rotated hex"},
      {mesh::CellKind::kHex8, &jiggled, "perturbed hex"},
      {mesh::CellKind::kTet4, &ref_tet, "reference tet"},
      {mesh::CellKind::kTet4, &skew_tet, "skewed tet"},
  };
  for (const Case& c : cases) {
    for (std::size_t mi = 0; mi < mats.size(); ++mi) {
      expect_mf_matches_element(c.kind, *c.coords, mats[mi], rng,
                                std::string(c.name) + " / " + mat_names[mi]);
    }
  }
}

TEST(MatrixFreeElement, MatchesAssembledKeOnSphereMeshCells) {
  // The warped cells the paper's sphere-in-cube mesher actually emits,
  // with the Table 1 material each cell carries.
  mesh::SphereInCubeParams p;
  p.num_shells = 5;
  p.base_core_layers = 2;
  p.base_outer_layers = 2;
  const mesh::Mesh m = mesh::sphere_in_cube_octant(p);
  const std::vector<Material> mats = {Material::paper_soft(),
                                      Material::paper_hard()};
  Rng rng(7);
  const int nen = mesh::nodes_per_cell(m.kind());
  const idx stride = std::max<idx>(1, m.num_cells() / 24);
  for (idx e = 0; e < m.num_cells(); e += stride) {
    std::vector<Vec3> coords(static_cast<std::size_t>(nen));
    const auto cell = m.cell(e);
    for (int a = 0; a < nen; ++a) coords[a] = m.coord(cell[a]);
    expect_mf_matches_element(m.kind(), coords, mats[m.material(e)], rng,
                              "sphere cell " + std::to_string(e));
  }
}

TEST(FeProblem, PlasticFractionLifecycle) {
  // One hard element sheared far beyond yield; commit() latches state.
  mesh::Mesh m = mesh::box_hex(1, 1, 1, {0, 0, 0}, {1, 1, 1});
  DofMap dm(m.num_vertices());
  const real eps = 1e-12;
  dm.fix_all(m.vertices_where([&](const Vec3& p) { return p.z < eps; }), 0);
  for (idx v :
       m.vertices_where([&](const Vec3& p) { return p.z > 1 - eps; })) {
    dm.fix(v, 0, 0.05);  // shear the top
    dm.fix(v, 1, 0.0);
    dm.fix(v, 2, 0.0);
  }
  dm.finalize();
  FeProblem prob(m, {Material::paper_hard()}, dm);
  EXPECT_DOUBLE_EQ(prob.plastic_fraction(), 0.0);
  const std::vector<real> zeros(dm.num_free(), 0.0);
  const auto u_full = dm.full_from_free(zeros);
  const AssemblyResult res = prob.assemble(u_full, false);
  EXPECT_GT(res.plastic_gauss_points, 0);
  EXPECT_EQ(res.hard_gauss_points, 8);
  EXPECT_DOUBLE_EQ(prob.plastic_fraction(), 0.0);  // not yet committed
  prob.commit();
  EXPECT_GT(prob.plastic_fraction(), 0.0);
  // Snapshot / restore round trip.
  auto snap = prob.snapshot_state();
  prob.restore_state(std::vector<J2State>(snap.size()));
  EXPECT_DOUBLE_EQ(prob.plastic_fraction(), 0.0);
  prob.restore_state(std::move(snap));
  EXPECT_GT(prob.plastic_fraction(), 0.0);
}

TEST(FeProblem, RejectsBadMaterialIndex) {
  mesh::Mesh m = mesh::box_hex(1, 1, 1, {0, 0, 0}, {1, 1, 1});
  DofMap dm(m.num_vertices());
  EXPECT_THROW(FeProblem(m, {}, dm), Error);
}

}  // namespace
}  // namespace prom::fem
