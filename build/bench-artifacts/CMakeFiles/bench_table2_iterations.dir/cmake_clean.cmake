file(REMOVE_RECURSE
  "../bench/bench_table2_iterations"
  "../bench/bench_table2_iterations.pdb"
  "CMakeFiles/bench_table2_iterations.dir/bench_table2_iterations.cpp.o"
  "CMakeFiles/bench_table2_iterations.dir/bench_table2_iterations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
