// Column-blocked multi-vector: k right-hand sides (or iterates) over one
// operator, stored column-major so each column is a contiguous span usable
// by every existing single-vector kernel. The blocked SpMM / halo / PCG
// paths operate on MultiVec under the determinism contract: column j of
// any blocked operation is bitwise identical to the single-vector kernel
// run on that column alone.
#pragma once

#include <span>
#include <vector>

#include "common/config.h"
#include "common/error.h"

namespace prom::la {

/// Hard cap on the column count of a single blocked kernel call. Blocked
/// kernels keep one accumulator per column in a stack array of this size;
/// wider requests are chunked by the caller (app::SolveService honours
/// PROM_RHS_BLOCK <= kMaxRhsBlock).
inline constexpr int kMaxRhsBlock = 16;

class MultiVec {
 public:
  MultiVec() = default;
  MultiVec(idx n, int k) { resize(n, k); }

  idx rows() const { return n_; }
  int cols() const { return k_; }

  /// Shapes to n x k and zero-fills every column. Never shrinks capacity,
  /// so reshaping to a previously-seen (or smaller) shape allocates
  /// nothing — the property the reusable solve workspaces rely on.
  void resize(idx n, int k) {
    PROM_CHECK(n >= 0 && k >= 0 && k <= kMaxRhsBlock);
    n_ = n;
    k_ = k;
    data_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(k),
                 real{0});
  }

  real* col_data(int j) {
    return data_.data() + static_cast<std::size_t>(j) * n_;
  }
  const real* col_data(int j) const {
    return data_.data() + static_cast<std::size_t>(j) * n_;
  }

  std::span<real> col(int j) {
    return {col_data(j), static_cast<std::size_t>(n_)};
  }
  std::span<const real> col(int j) const {
    return {col_data(j), static_cast<std::size_t>(n_)};
  }

  /// The full column-major storage (column j occupies [j*n, (j+1)*n)).
  real* data() { return data_.data(); }
  const real* data() const { return data_.data(); }

 private:
  idx n_ = 0;
  int k_ = 0;
  std::vector<real> data_;
};

}  // namespace prom::la
