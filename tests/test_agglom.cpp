// Coarse-level rank agglomeration (dla::DistHierarchy +
// MgOptions::agglom_min_rows): the active-set policy, the operator
// redistribution primitive, and — the load-bearing contract — that
// agglomeration changes *where* coarse levels live without changing what
// the solver computes: iterate histories match the non-agglomerated run
// to allreduce rounding (1e-12 of the initial residual) with identical
// PCG iteration counts, in every matrix format, both halo modes, and the
// column-blocked multi-RHS path; and at the traffic level, that the
// coarse grids actually stop talking (message counts shrink, idle ranks
// hold no rows and no exchange-plan roles).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "app/driver.h"
#include "app/service.h"
#include "dla/dist_mg.h"
#include "dla/dist_setup.h"
#include "dla/halo.h"
#include "fem/assembly.h"
#include "la/multivec.h"
#include "mg/hierarchy.h"
#include "mg/solver.h"
#include "parx/runtime.h"

namespace prom {
namespace {

// ---------------------------------------------------------------------
// Active-set policy (pure function, no ranks involved).
// ---------------------------------------------------------------------

TEST(AgglomPolicy, ZeroMinRowsKeepsEveryRankOnEveryLevel) {
  const std::vector<idx> rows = {1000, 10, 1};
  const auto active = dla::agglom_active_ranks(rows, 8, 0);
  EXPECT_EQ(active, (std::vector<int>{8, 8, 8}));
}

TEST(AgglomPolicy, HalvesUntilRowsPerRankSuffice) {
  const std::vector<idx> rows = {1000, 300, 80, 20};
  // min=200: level 1 halves 8 -> 4 -> 2 -> 1 (300 < 200*2); coarser
  // levels inherit the collapse.
  EXPECT_EQ(dla::agglom_active_ranks(rows, 8, 200),
            (std::vector<int>{8, 1, 1, 1}));
  // min=50: level 1 stops at 4 (300 >= 50*4), level 2 collapses.
  EXPECT_EQ(dla::agglom_active_ranks(rows, 8, 50),
            (std::vector<int>{8, 4, 1, 1}));
}

TEST(AgglomPolicy, MonotoneNonIncreasingAndFineLevelAlwaysFull) {
  // The fine level keeps all ranks even when its row count is tiny, and
  // the sequence never grows back down the hierarchy — even when a
  // coarser level is (pathologically) larger than its parent.
  const std::vector<idx> rows = {4, 4000, 50, 50};
  const auto active = dla::agglom_active_ranks(rows, 8, 100);
  EXPECT_EQ(active[0], 8);
  for (std::size_t l = 1; l < active.size(); ++l) {
    EXPECT_LE(active[l], active[l - 1]) << "level " << l;
    EXPECT_GE(active[l], 1);
  }
}

TEST(AgglomPolicy, HugeMinRowsCollapsesEveryCoarseLevelToRankZero) {
  const std::vector<idx> rows = {100000, 30000, 8000};
  const auto active = dla::agglom_active_ranks(rows, 16, 1000000);
  EXPECT_EQ(active, (std::vector<int>{16, 1, 1}));
}

// ---------------------------------------------------------------------
// Distributed fixtures (same harness as test_serial_dist_equiv).
// ---------------------------------------------------------------------

struct ScopedHaloMode {
  dla::HaloMode saved;
  explicit ScopedHaloMode(dla::HaloMode m) : saved(dla::halo_mode()) {
    dla::set_halo_mode(m);
  }
  ~ScopedHaloMode() { dla::set_halo_mode(saved); }
};

struct Problem {
  app::ModelProblem model;
  mg::Hierarchy hierarchy;
  std::vector<real> rhs;
};

/// Small box, multi-level hierarchy, Jacobi smoothing (the strict-
/// equivalence smoother: block-Jacobi blocks and Chebyshev bounds are
/// partition-dependent, pointwise Jacobi is not). `min_rows` feeds the
/// agglomeration policy of every DistHierarchy built from the result.
Problem build_problem(idx min_rows) {
  Problem out;
  out.model = app::make_box_problem(6);
  fem::FeProblem fe(out.model.mesh, out.model.materials, out.model.dofmap);
  fem::LinearSystem sys = fem::assemble_linear_system(fe);
  mg::MgOptions mo;
  mo.smoother = mg::SmootherKind::kJacobi;
  mo.coarsest_max_dofs = 60;
  mo.agglom_min_rows = min_rows;
  out.rhs = std::move(sys.rhs);
  out.hierarchy = mg::Hierarchy::build(out.model.mesh, out.model.dofmap,
                                       std::move(sys.stiffness), mo);
  return out;
}

std::vector<idx> block_owner(idx nv, int p) {
  std::vector<idx> owner(static_cast<std::size_t>(nv));
  for (idx v = 0; v < nv; ++v) {
    owner[static_cast<std::size_t>(v)] =
        static_cast<idx>((static_cast<std::int64_t>(v) * p) / nv);
  }
  return owner;
}

la::KrylovResult run_pcg(const Problem& prob, int p,
                         mg::MatrixFormat format = mg::MatrixFormat::kCsr) {
  mg::MgSolveOptions so;
  so.rtol = 1e-8;
  so.track_history = true;
  so.format = format;
  const dla::MfProblem mfp{&prob.model.mesh, &prob.model.materials,
                           &prob.model.dofmap, true};
  const std::vector<idx> owner =
      block_owner(prob.model.mesh.num_vertices(), p);
  la::KrylovResult out;
  parx::Runtime::run(p, [&](parx::Comm& comm) {
    const dla::DistHierarchy dist = dla::DistHierarchy::build(
        comm, prob.hierarchy, owner, format,
        format == mg::MatrixFormat::kMf ? &mfp : nullptr);
    const auto& perm = dist.permutation(0);
    const dla::RowDist& rows = dist.level(0).a.row_dist();
    const idx b0 = rows.begin(comm.rank());
    const idx nloc = rows.local_size(comm.rank());
    std::vector<real> b_local(static_cast<std::size_t>(nloc));
    for (idx i = 0; i < nloc; ++i) b_local[i] = prob.rhs[perm[b0 + i]];
    std::vector<real> x_local(static_cast<std::size_t>(nloc), 0);
    const la::KrylovResult r =
        dist_mg_pcg_solve(comm, dist, b_local, x_local, so);
    if (comm.rank() == 0) out = r;
  });
  return out;
}

void expect_same_history(const la::KrylovResult& ref,
                         const la::KrylovResult& got, const char* what) {
  EXPECT_TRUE(got.converged) << what;
  EXPECT_EQ(got.iterations, ref.iterations) << what;
  ASSERT_EQ(got.history.size(), ref.history.size()) << what;
  ASSERT_FALSE(ref.history.empty()) << what;
  for (std::size_t i = 0; i < ref.history.size(); ++i) {
    EXPECT_NEAR(got.history[i], ref.history[i], 1e-12 * ref.history[0])
        << what << " history entry " << i;
  }
}

class AgglomRanks : public ::testing::TestWithParam<int> {};

// The tentpole acceptance: agglomeration is invisible in the iterate
// history. Sweep the policy from "barely on" through "collapse every
// coarse level onto rank 0" against the untouched run.
TEST_P(AgglomRanks, HistoryMatchesUnagglomeratedAtEveryPolicy) {
  const int p = GetParam();
  const la::KrylovResult ref = run_pcg(build_problem(0), p);
  ASSERT_TRUE(ref.converged);
  for (const idx min_rows : {idx{1}, idx{200}, idx{5000}}) {
    const la::KrylovResult got = run_pcg(build_problem(min_rows), p);
    expect_same_history(ref, got,
                        ("min_rows=" + std::to_string(min_rows)).c_str());
  }
}

// Same invariance across the matrix formats and both halo modes at one
// aggressive policy (collapse everything coarse onto rank 0).
TEST_P(AgglomRanks, FormatsAndHaloModesMatchUnagglomerated) {
  const int p = GetParam();
  const Problem agglom = build_problem(5000);
  const Problem natural = build_problem(0);
  for (const mg::MatrixFormat format :
       {mg::MatrixFormat::kCsr, mg::MatrixFormat::kBsr3,
        mg::MatrixFormat::kMf}) {
    const la::KrylovResult ref = run_pcg(natural, p, format);
    ASSERT_TRUE(ref.converged);
    for (const dla::HaloMode mode :
         {dla::HaloMode::kSync, dla::HaloMode::kOverlap}) {
      const ScopedHaloMode scoped(mode);
      const la::KrylovResult got = run_pcg(agglom, p, format);
      const std::string what =
          "format=" + std::to_string(static_cast<int>(format)) +
          " halo=" + std::to_string(static_cast<int>(mode));
      expect_same_history(ref, got, what.c_str());
    }
  }
}

// The column-blocked path under agglomeration: column j of a k=4 blocked
// solve stays bitwise identical to the scalar solve of that column.
TEST_P(AgglomRanks, BlockedMultiRhsColumnsBitwiseMatchScalar) {
  const int p = GetParam();
  constexpr int kRhs = 4;
  const Problem prob = build_problem(200);
  mg::MgSolveOptions so;
  so.rtol = 1e-8;
  so.track_history = true;
  const std::vector<idx> owner =
      block_owner(prob.model.mesh.num_vertices(), p);
  std::vector<la::KrylovResult> blocked(kRhs);
  std::vector<la::KrylovResult> scalar(kRhs);
  parx::Runtime::run(p, [&](parx::Comm& comm) {
    const dla::DistHierarchy dist =
        dla::DistHierarchy::build(comm, prob.hierarchy, owner);
    const auto& perm = dist.permutation(0);
    const dla::RowDist& rows = dist.level(0).a.row_dist();
    const idx b0 = rows.begin(comm.rank());
    const idx nloc = rows.local_size(comm.rank());
    la::MultiVec b(nloc, kRhs);
    for (int j = 0; j < kRhs; ++j) {
      for (idx i = 0; i < nloc; ++i) {
        b.col(j)[static_cast<std::size_t>(i)] =
            prob.rhs[perm[b0 + i]] * (1.0 + 0.25 * j);
      }
    }
    la::MultiVec x(nloc, kRhs);
    const auto res = dist_mg_pcg_solve_mv(comm, dist, b, x, so);
    std::vector<la::KrylovResult> res1(kRhs);
    for (int j = 0; j < kRhs; ++j) {
      std::vector<real> bj(b.col(j).begin(), b.col(j).end());
      std::vector<real> xj(static_cast<std::size_t>(nloc), 0);
      res1[j] = dist_mg_pcg_solve(comm, dist, bj, xj, so);
      for (idx i = 0; i < nloc; ++i) {
        EXPECT_EQ(xj[static_cast<std::size_t>(i)],
                  x.col(j)[static_cast<std::size_t>(i)])
            << "rank " << comm.rank() << " col " << j << " row " << i;
      }
    }
    if (comm.rank() == 0) {
      for (int j = 0; j < kRhs; ++j) {
        blocked[j] = res[j];
        scalar[j] = res1[j];
      }
    }
  });
  for (int j = 0; j < kRhs; ++j) {
    EXPECT_TRUE(blocked[j].converged) << "col " << j;
    EXPECT_EQ(blocked[j].iterations, scalar[j].iterations) << "col " << j;
    ASSERT_EQ(blocked[j].history.size(), scalar[j].history.size());
    for (std::size_t i = 0; i < blocked[j].history.size(); ++i) {
      EXPECT_EQ(blocked[j].history[i], scalar[j].history[i])
          << "col " << j << " entry " << i;
    }
  }
}

// "pN" names let the CI rank matrix select one rank count per job with
// --gtest_filter='*/pN'.
INSTANTIATE_TEST_SUITE_P(Ranks, AgglomRanks, ::testing::Values(2, 4, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "p" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------
// Redistribution primitive and structural properties.
// ---------------------------------------------------------------------

// dist_redistribute ships rows in storage order with global column ids:
// shipping a level operator to rank 0 and back must reproduce the local
// blocks bit for bit (rowptr, global column per entry, value bits).
TEST(AgglomRedistribute, RoundTripIsBitIdentical) {
  const int p = 4;
  const Problem prob = build_problem(0);
  ASSERT_GE(prob.hierarchy.num_levels(), 2);
  const std::vector<idx> owner =
      block_owner(prob.model.mesh.num_vertices(), p);
  parx::Runtime::run(p, [&](parx::Comm& comm) {
    const dla::DistHierarchy dist =
        dla::DistHierarchy::build(comm, prob.hierarchy, owner);
    const dla::DistCsr& a = dist.level(1).a;
    const idx n = a.row_dist().global_size();
    std::vector<idx> all_on_zero(static_cast<std::size_t>(p) + 1, n);
    all_on_zero[0] = 0;
    const dla::RowDist packed{std::move(all_on_zero)};
    const dla::DistCsr shipped =
        dist_redistribute(comm, a, packed, packed);
    EXPECT_EQ(shipped.local_rows(), comm.rank() == 0 ? n : 0);
    if (comm.rank() != 0) {
      EXPECT_EQ(shipped.halo_plan().num_send_peers(), 0);
      EXPECT_EQ(shipped.halo_plan().num_recv_peers(), 0);
    }
    const dla::DistCsr round = dist_redistribute(
        comm, shipped, a.row_dist(), a.col_dist());
    const la::Csr& ref = a.local_matrix();
    const la::Csr& got = round.local_matrix();
    ASSERT_EQ(got.nrows, ref.nrows);
    ASSERT_EQ(got.rowptr, ref.rowptr);
    for (nnz_t k = 0; k < static_cast<nnz_t>(ref.vals.size()); ++k) {
      ASSERT_EQ(round.global_col(got.colidx[static_cast<std::size_t>(k)]),
                a.global_col(ref.colidx[static_cast<std::size_t>(k)]));
      ASSERT_EQ(got.vals[static_cast<std::size_t>(k)],
                ref.vals[static_cast<std::size_t>(k)]);
    }
  });
}

// Structure of an agglomerated hierarchy: idle ranks own nothing and
// appear in no exchange plan; every plan peer of a level lives in that
// level's active set (restriction plans may also touch the finer level's
// active set, which contains it).
TEST(AgglomStructure, IdleRanksOwnNoRowsAndNoPlanRoles) {
  const int p = 8;
  const Problem prob = build_problem(5000);
  parx::Runtime::run(p, [&](parx::Comm& comm) {
    const dla::DistHierarchy dist = dla::DistHierarchy::build(
        comm, prob.hierarchy,
        block_owner(prob.model.mesh.num_vertices(), p));
    EXPECT_EQ(dist.active_ranks(0), p);
    bool any_agglomerated = false;
    for (int l = 1; l < dist.num_levels(); ++l) {
      const int active = dist.active_ranks(l);
      EXPECT_LE(active, dist.active_ranks(l - 1)) << "level " << l;
      if (active == p) continue;
      any_agglomerated = true;
      const dla::DistMgLevel& lv = dist.level(l);
      if (comm.rank() >= active) {
        EXPECT_EQ(lv.local_n(), 0) << "level " << l;
        EXPECT_EQ(lv.a.halo_plan().num_send_peers(), 0) << "level " << l;
        EXPECT_EQ(lv.a.halo_plan().num_recv_peers(), 0) << "level " << l;
      }
      for (const int peer : lv.a.halo_plan().send_peers()) {
        EXPECT_LT(peer, active) << "level " << l;
      }
      for (const int peer : lv.a.halo_plan().recv_peers()) {
        EXPECT_LT(peer, active) << "level " << l;
      }
      // The restriction couples this level's rows (active set) to the
      // finer level's columns (its active set).
      for (const int peer : lv.r.halo_plan().recv_peers()) {
        EXPECT_LT(peer, dist.active_ranks(l - 1)) << "level " << l;
      }
    }
    EXPECT_TRUE(any_agglomerated);
  });
}

// The point of the exercise: at p=8 with everything coarse on rank 0,
// running cycles below the fine level must move far fewer messages than
// the natural partition (acceptance asks for at least a 2x reduction).
TEST(AgglomTraffic, CoarseCycleMessagesDropAtLeastTwofold) {
  const int p = 8;
  std::array<std::int64_t, 2> messages{};  // [0]=natural, [1]=agglomerated
  int which = 0;
  for (const idx min_rows : {idx{0}, idx{5000}}) {
    const Problem prob = build_problem(min_rows);
    ASSERT_GE(prob.hierarchy.num_levels(), 2);
    std::int64_t total = 0;
    parx::Runtime::run(p, [&](parx::Comm& comm) {
      const dla::DistHierarchy dist = dla::DistHierarchy::build(
          comm, prob.hierarchy,
          block_owner(prob.model.mesh.num_vertices(), p));
      const idx nloc = dist.level(1).local_n();
      std::vector<real> b(static_cast<std::size_t>(nloc), 1.0);
      std::vector<real> x(static_cast<std::size_t>(nloc), 0.0);
      const std::int64_t before = comm.traffic().messages_sent;
      for (int it = 0; it < 3; ++it) dist_vcycle(comm, dist, 1, b, x);
      const std::int64_t mine = comm.traffic().messages_sent - before;
      // Disjoint write per rank, summed after the SPMD region via a
      // plain reduction over the stats would also work; accumulate the
      // per-rank counts through an allreduce for simplicity.
      const std::int64_t all = comm.allreduce_sum(mine);
      if (comm.rank() == 0) total = all;
    });
    messages[static_cast<std::size_t>(which++)] = total;
  }
  // The allreduce above added the same message count to both runs, so
  // the comparison is conservative.
  EXPECT_GT(messages[0], 0);
  EXPECT_LE(2 * messages[1], messages[0])
      << "natural=" << messages[0] << " agglomerated=" << messages[1];
}

// ---------------------------------------------------------------------
// Service integration: the policy is part of the cache fingerprint.
// ---------------------------------------------------------------------

TEST(AgglomService, FingerprintDistinguishesAgglomerationPolicies) {
  app::ServiceConfig a;
  a.mg.agglom_min_rows = 0;
  app::ServiceConfig b = a;
  b.mg.agglom_min_rows = 1000;
  app::ServiceConfig c = a;
  c.mg.agglom_min_rows = 0;
  const app::SolveService sa(a);
  const app::SolveService sb(b);
  const app::SolveService sc(c);
  EXPECT_NE(sa.fingerprint("mesh"), sb.fingerprint("mesh"));
  EXPECT_EQ(sa.fingerprint("mesh"), sc.fingerprint("mesh"));
}

TEST(AgglomService, CachedSolvesRunAgglomerated) {
  app::ServiceConfig cfg;
  cfg.nranks = 4;
  cfg.mg.coarsest_max_dofs = 60;
  cfg.mg.agglom_min_rows = 1000;
  app::SolveService service(cfg);
  service.register_problem("box", app::make_box_problem(6));
  app::SolveRequest req;
  req.mesh_id = "box";
  req.rtol = 1e-6;
  const app::SolveResponse cold = service.solve(req);
  ASSERT_EQ(cold.results.size(), 1u);
  EXPECT_TRUE(cold.results[0].converged);
  EXPECT_FALSE(cold.cache_hit);
  const app::SolveResponse warm = service.solve(req);
  EXPECT_TRUE(warm.cache_hit);
  ASSERT_EQ(warm.results.size(), 1u);
  EXPECT_EQ(warm.results[0].iterations, cold.results[0].iterations);
}

}  // namespace
}  // namespace prom
