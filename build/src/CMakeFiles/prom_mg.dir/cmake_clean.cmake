file(REMOVE_RECURSE
  "CMakeFiles/prom_mg.dir/mg/cycle.cpp.o"
  "CMakeFiles/prom_mg.dir/mg/cycle.cpp.o.d"
  "CMakeFiles/prom_mg.dir/mg/hierarchy.cpp.o"
  "CMakeFiles/prom_mg.dir/mg/hierarchy.cpp.o.d"
  "CMakeFiles/prom_mg.dir/mg/sa.cpp.o"
  "CMakeFiles/prom_mg.dir/mg/sa.cpp.o.d"
  "CMakeFiles/prom_mg.dir/mg/solver.cpp.o"
  "CMakeFiles/prom_mg.dir/mg/solver.cpp.o.d"
  "libprom_mg.a"
  "libprom_mg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prom_mg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
