# Empty compiler generated dependencies file for test_la_csr.
# This may be replaced when dependencies are built.
