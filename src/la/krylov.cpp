#include "la/krylov.h"

#include <cmath>

#include "common/error.h"
#include "la/krylov_any.h"
#include "la/vec.h"

namespace prom::la {

KrylovResult cg(const LinearOperator& a, std::span<const real> b,
                std::span<real> x, const KrylovOptions& opts) {
  PROM_CHECK(a.cols() == a.rows());
  return pcg_any(SerialBackend{}, a,
                 static_cast<const LinearOperator*>(nullptr), b, x, opts);
}

KrylovResult pcg(const LinearOperator& a, const LinearOperator& m,
                 std::span<const real> b, std::span<real> x,
                 const KrylovOptions& opts) {
  PROM_CHECK(a.cols() == a.rows());
  return pcg_any(SerialBackend{}, a, &m, b, x, opts);
}

std::vector<KrylovResult> pcg_multi(const LinearOperator& a,
                                    const LinearOperator* m, const MultiVec& b,
                                    MultiVec& x, const KrylovOptions& opts,
                                    KrylovWorkspace* ws) {
  PROM_CHECK(a.cols() == a.rows());
  return pcg_multi_any(SerialBackend{}, a, m, b, x, opts, ws);
}

KrylovResult gmres(const LinearOperator& a, const LinearOperator* m,
                   std::span<const real> b, std::span<real> x,
                   const GmresOptions& opts) {
  const idx n = a.rows();
  PROM_CHECK(a.cols() == n);
  PROM_CHECK(static_cast<idx>(b.size()) == n &&
             static_cast<idx>(x.size()) == n);
  const int restart = std::max(1, opts.restart);

  KrylovResult result;
  const real bnorm = nrm2(b);
  if (opts.track_history) result.history.push_back(bnorm);
  if (bnorm == real{0}) {
    set_all(x, 0);
    result.converged = true;
    return result;
  }

  std::vector<std::vector<real>> basis;  // Arnoldi vectors v_0..v_k
  // Hessenberg in compact column form + Givens rotation coefficients.
  std::vector<std::vector<real>> hcols;
  std::vector<real> cs(static_cast<std::size_t>(restart) + 1);
  std::vector<real> sn(static_cast<std::size_t>(restart) + 1);
  std::vector<real> g(static_cast<std::size_t>(restart) + 1);
  std::vector<real> r(n), w(n), z(n);

  int total_iters = 0;
  while (total_iters < opts.max_iters) {
    // (Re)start: r = b - A x.
    a.apply(x, r);
    waxpby(1, b, -1, r, r);
    real rnorm = nrm2(r);
    result.final_relres = rnorm / bnorm;
    if (krylov_converged(rnorm, bnorm, opts.rtol)) {
      result.converged = true;
      return result;
    }

    basis.clear();
    hcols.clear();
    basis.push_back(std::vector<real>(r.begin(), r.end()));
    scale(1 / rnorm, basis[0]);
    std::fill(g.begin(), g.end(), real{0});
    g[0] = rnorm;

    int k = 0;
    for (; k < restart && total_iters < opts.max_iters; ++k) {
      // w = A M^{-1} v_k (right preconditioning).
      if (m != nullptr) {
        m->apply(basis[k], z);
        a.apply(z, w);
      } else {
        a.apply(basis[k], w);
      }
      // Modified Gram-Schmidt.
      std::vector<real> h(static_cast<std::size_t>(k) + 2, 0);
      for (int i = 0; i <= k; ++i) {
        h[i] = dot(w, basis[i]);
        axpy(-h[i], basis[i], w);
      }
      h[k + 1] = nrm2(w);
      const real subdiag = h[k + 1];
      if (h[k + 1] > 0) {
        basis.push_back(std::vector<real>(w.begin(), w.end()));
        scale(1 / h[k + 1], basis.back());
      }
      // Apply previous Givens rotations to the new column.
      for (int i = 0; i < k; ++i) {
        const real t = cs[i] * h[i] + sn[i] * h[i + 1];
        h[i + 1] = -sn[i] * h[i] + cs[i] * h[i + 1];
        h[i] = t;
      }
      // New rotation to annihilate h[k+1].
      const real denom = std::sqrt(h[k] * h[k] + h[k + 1] * h[k + 1]);
      if (denom == 0) {
        cs[k] = 1;
        sn[k] = 0;
      } else {
        cs[k] = h[k] / denom;
        sn[k] = h[k + 1] / denom;
      }
      h[k] = cs[k] * h[k] + sn[k] * h[k + 1];
      h[k + 1] = 0;
      g[k + 1] = -sn[k] * g[k];
      g[k] = cs[k] * g[k];
      hcols.push_back(std::move(h));
      ++total_iters;
      result.iterations = total_iters;
      rnorm = std::fabs(g[k + 1]);
      if (opts.track_history) result.history.push_back(rnorm);
      if (krylov_converged(rnorm, bnorm, opts.rtol) || subdiag == 0) {
        ++k;
        break;
      }
    }

    // Solve the k x k triangular system and update x.
    std::vector<real> y(static_cast<std::size_t>(k));
    for (int i = k - 1; i >= 0; --i) {
      real sum = g[i];
      for (int jj = i + 1; jj < k; ++jj) sum -= hcols[jj][i] * y[jj];
      PROM_CHECK_MSG(hcols[i][i] != 0, "GMRES breakdown: singular H");
      y[i] = sum / hcols[i][i];
    }
    std::fill(z.begin(), z.end(), real{0});
    for (int i = 0; i < k; ++i) axpy(y[i], basis[i], z);
    if (m != nullptr) {
      m->apply(z, w);
      axpy(1, w, x);
    } else {
      axpy(1, z, x);
    }
    result.final_relres = rnorm / bnorm;
    if (krylov_converged(rnorm, bnorm, opts.rtol)) {
      result.converged = true;
      return result;
    }
  }
  // Final true-residual check.
  a.apply(x, r);
  waxpby(1, b, -1, r, r);
  result.final_relres = nrm2(r) / bnorm;
  result.converged = result.final_relres <= opts.rtol;
  return result;
}

}  // namespace prom::la
