#include "app/driver.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string_view>

#include "app/service.h"
#include "common/error.h"
#include "obs/trace.h"

namespace prom::app {

const char* to_string(EquationClass eq) {
  switch (eq) {
    case EquationClass::kElasticity: return "elasticity";
    case EquationClass::kPoissonHet: return "poisson_het";
    case EquationClass::kAdvDiff: return "advdiff";
  }
  return "?";
}

EquationClass equation_from_env() {
  const char* env = std::getenv("PROM_EQUATION");
  if (env == nullptr || *env == '\0') return EquationClass::kElasticity;
  const std::string_view v(env);
  if (v == "elasticity") return EquationClass::kElasticity;
  if (v == "poisson_het") return EquationClass::kPoissonHet;
  if (v == "advdiff") return EquationClass::kAdvDiff;
  PROM_CHECK_MSG(false,
                 "PROM_EQUATION must be elasticity, poisson_het, or advdiff");
  return EquationClass::kElasticity;
}

mg::MgOptions default_mg_options(EquationClass eq) {
  mg::MgOptions mo;
  if (eq == EquationClass::kAdvDiff) {
    mo.smoother = mg::SmootherKind::kJacobi;
    mo.omega = 0.5;
    mo.coarse_solver = mg::CoarseSolverKind::kDenseLu;
  }
  return mo;
}

la::KrylovKind default_krylov(EquationClass eq) {
  return eq == EquationClass::kAdvDiff ? la::KrylovKind::kGmres
                                       : la::KrylovKind::kPcg;
}

ModelProblem make_sphere_problem(const mesh::SphereInCubeParams& params,
                                 real crush) {
  ModelProblem p;
  p.mesh = mesh::sphere_in_cube_octant(params);
  p.materials = {fem::Material::paper_soft(), fem::Material::paper_hard()};
  const real side = params.cube_side;
  const real eps = 1e-9 * side;
  p.fix_bcs = [side, eps, crush](const mesh::Mesh& m, fem::DofMap& dm) {
    for (idx v : m.vertices_where([&](const Vec3& x) { return x.x < eps; })) {
      dm.fix(v, 0, 0);
    }
    for (idx v : m.vertices_where([&](const Vec3& x) { return x.y < eps; })) {
      dm.fix(v, 1, 0);
    }
    for (idx v : m.vertices_where([&](const Vec3& x) { return x.z < eps; })) {
      dm.fix(v, 2, 0);
    }
    for (idx v : m.vertices_where(
             [&](const Vec3& x) { return x.z > side - eps; })) {
      dm.fix(v, 2, -crush);
    }
  };
  p.dofmap = fem::DofMap(p.mesh.num_vertices());
  p.fix_bcs(p.mesh, p.dofmap);
  p.dofmap.finalize();
  return p;
}

ModelProblem make_box_problem(idx n, real crush, fem::Material material) {
  ModelProblem p;
  p.mesh = mesh::box_hex(n, n, n, {0, 0, 0}, {1, 1, 1});
  p.materials = {material};
  const real eps = 1e-9;
  p.fix_bcs = [eps, crush](const mesh::Mesh& m, fem::DofMap& dm) {
    dm.fix_all(m.vertices_where([&](const Vec3& x) { return x.z < eps; }), 0);
    for (idx v :
         m.vertices_where([&](const Vec3& x) { return x.z > 1 - eps; })) {
      dm.fix(v, 2, -crush);
    }
  };
  p.dofmap = fem::DofMap(p.mesh.num_vertices());
  p.fix_bcs(p.mesh, p.dofmap);
  p.dofmap.finalize();
  return p;
}

ModelProblem make_poisson_het_problem(idx n, real contrast) {
  ModelProblem p;
  p.equation = EquationClass::kPoissonHet;
  p.mesh = mesh::box_hex(n, n, n, {0, 0, 0}, {1, 1, 1});
  const real eps = 1e-9;
  p.fix_scalar_bcs = [eps](const mesh::Mesh& m, fem::ScalarDofMap& dm) {
    for (idx v : m.vertices_where([&](const Vec3& x) { return x.z < eps; })) {
      dm.fix(v, 0);
    }
    for (idx v :
         m.vertices_where([&](const Vec3& x) { return x.z > 1 - eps; })) {
      dm.fix(v, 1);
    }
  };
  p.scalar_dofmap = fem::ScalarDofMap(p.mesh.num_vertices());
  p.fix_scalar_bcs(p.mesh, p.scalar_dofmap);
  p.scalar_dofmap.finalize();
  p.coeffs.diffusion = [contrast](idx, const Vec3& x) {
    const bool inside = x.x > 0.25 && x.x < 0.75 && x.y > 0.25 &&
                        x.y < 0.75 && x.z > 0.25 && x.z < 0.75;
    return (inside ? contrast : real(1)) * Mat3::identity();
  };
  p.coeffs.source = [](idx, const Vec3&) { return real(1); };
  return p;
}

ModelProblem make_reaction_problem(idx n, real reaction) {
  PROM_CHECK_MSG(reaction >= 0, "make_reaction_problem: reaction must be >= 0");
  ModelProblem p;
  p.equation = EquationClass::kPoissonHet;
  p.mesh = mesh::box_hex(n, n, n, {0, 0, 0}, {1, 1, 1});
  const real eps = 1e-9;
  p.fix_scalar_bcs = [eps](const mesh::Mesh& m, fem::ScalarDofMap& dm) {
    for (idx v : m.vertices_where([&](const Vec3& x) {
           return x.x < eps || x.x > 1 - eps || x.y < eps || x.y > 1 - eps ||
                  x.z < eps || x.z > 1 - eps;
         })) {
      dm.fix(v, 0);
    }
  };
  p.scalar_dofmap = fem::ScalarDofMap(p.mesh.num_vertices());
  p.fix_scalar_bcs(p.mesh, p.scalar_dofmap);
  p.scalar_dofmap.finalize();
  p.coeffs.diffusion = [](idx, const Vec3&) { return Mat3::identity(); };
  p.coeffs.reaction = [reaction](idx, const Vec3&) { return reaction; };
  const real pi = real(3.14159265358979323846);
  p.coeffs.source = [reaction, pi](idx, const Vec3& x) {
    return (3 * pi * pi + reaction) * std::sin(pi * x.x) *
           std::sin(pi * x.y) * std::sin(pi * x.z);
  };
  return p;
}

ModelProblem make_advdiff_problem(idx n, real peclet) {
  PROM_CHECK_MSG(peclet > 0, "make_advdiff_problem: peclet must be > 0");
  ModelProblem p;
  p.equation = EquationClass::kAdvDiff;
  p.mesh = mesh::box_hex(n, n, n, {0, 0, 0}, {1, 1, 1});
  const real eps = 1e-9;
  p.fix_scalar_bcs = [eps](const mesh::Mesh& m, fem::ScalarDofMap& dm) {
    for (idx v : m.vertices_where([&](const Vec3& x) { return x.x < eps; })) {
      dm.fix(v, 1);
    }
    for (idx v :
         m.vertices_where([&](const Vec3& x) { return x.x > 1 - eps; })) {
      dm.fix(v, 0);
    }
  };
  p.scalar_dofmap = fem::ScalarDofMap(p.mesh.num_vertices());
  p.fix_scalar_bcs(p.mesh, p.scalar_dofmap);
  p.scalar_dofmap.finalize();
  const Vec3 dir{1, 0.5, 0.25};
  const real speed = norm(dir);
  const real kappa = speed / peclet;
  p.coeffs.diffusion = [kappa](idx, const Vec3&) {
    return kappa * Mat3::identity();
  };
  p.coeffs.velocity = [dir](idx, const Vec3&) { return dir; };
  p.coeffs.source = [](idx, const Vec3&) { return real(1); };
  p.coeffs.supg = true;
  return p;
}

perf::RunMeasurement LinearStudyReport::measurement() const {
  perf::RunMeasurement m;
  m.ranks = ranks;
  m.unknowns = unknowns;
  m.iterations = iterations;
  m.solve_flops = solve_phase.total_flops();
  m.solve_phase = solve_phase;
  m.modeled_solve_time = modeled_solve_time;
  m.wall_solve_time = wall_solve;
  return m;
}

namespace {

/// Per-rank TrafficStats of one report phase (rank-indexed, zero for
/// ranks that recorded nothing).
std::vector<parx::TrafficStats> phase_traffic(const obs::Report& rep,
                                              std::string_view name,
                                              int nranks) {
  std::vector<parx::TrafficStats> stats(static_cast<std::size_t>(nranks));
  const obs::PhaseEntry* phase = rep.phase(name);
  if (phase == nullptr) return stats;
  for (const obs::RankPhase& rp : phase->per_rank) {
    if (rp.rank < 0 || rp.rank >= nranks) continue;
    stats[rp.rank] = {rp.messages, rp.bytes, rp.flops};
  }
  return stats;
}

}  // namespace

LinearStudyReport run_linear_study(const ModelProblem& problem,
                                   const LinearStudyConfig& config) {
  LinearStudyReport report;
  report.ranks = config.nranks;

  // Every phase wall time and traffic bracket below comes out of the obs
  // tracer: recording is forced on for the study's window (independent of
  // PROM_TRACE) and aggregated into report.obs at the end.
  obs::Tracer& tracer = obs::Tracer::instance();
  const bool was_tracing = obs::tracing();
  tracer.set_enabled(true);
  const std::int64_t mark = obs::Tracer::now_ns();

  // The study is one uncached request through the solve service: a fresh
  // service per study, so the setup phases (partition, fine grid, mesh
  // setup, distributed matrix setup) always run — and emit their spans —
  // inside the tracing window.
  ServiceConfig sc;
  sc.nranks = config.nranks;
  sc.mg = config.mg;
  sc.cycle = config.cycle;
  sc.format = config.format;
  sc.cache_capacity = 1;
  SolveService service(sc);
  // Non-owning alias: the caller's problem outlives the study.
  service.register_problem(
      "study",
      std::shared_ptr<const ModelProblem>(std::shared_ptr<void>(), &problem));
  const EntryHandle entry = service.acquire("study");
  report.unknowns = entry->unknowns;
  report.levels = entry->grids.num_levels();

  SolveRequest req;
  req.mesh_id = "study";
  req.rtol = config.rtol;
  req.max_iters = config.max_iters;
  req.return_solutions = false;  // the study reads measurements, not x
  const SolveResponse resp = service.solve_with(entry, req);

  tracer.set_enabled(was_tracing);
  report.obs = obs::build_report(mark);

  report.iterations = resp.results[0].iterations;
  report.converged = resp.results[0].converged;
  report.wall_partition = report.obs.phase_seconds("partition");
  report.wall_fine_grid = report.obs.phase_seconds("fine_grid");
  report.wall_mesh_setup = report.obs.phase_seconds("mesh_setup");
  report.wall_matrix_setup = report.obs.phase_seconds("matrix_setup");
  report.wall_solve = report.obs.phase_seconds("solve");
  report.setup_phase.per_rank =
      phase_traffic(report.obs, "matrix_setup", config.nranks);
  for (const dla::DistHierarchy& dist : entry->per_rank) {
    report.max_rank_galerkin_flops =
        std::max(report.max_rank_galerkin_flops, dist.galerkin_flops());
  }
  report.solve_phase.per_rank =
      phase_traffic(report.obs, "solve", config.nranks);
  const perf::MachineModel model;
  report.modeled_solve_time = report.solve_phase.modeled_time(model);
  report.modeled_mflops =
      report.solve_phase.modeled_flop_rate(model) / 1e6;
  if (!config.report_path.empty()) report.obs.write_json(config.report_path);
  return report;
}

std::vector<ScaledCase> scaled_series(int num_cases, int base_ranks) {
  // Scaled-down mirror of the paper's series (≈ constant unknowns/rank):
  // the first three cases refine the core/outer regions tangentially, the
  // later ones add a full element layer through every shell, like the
  // paper's "one more layer of elements through each of the seventeen
  // shell layers".
  struct Knobs {
    idx core, outer, per_shell;
    double rank_scale;
  };
  const Knobs knobs[] = {
      {1, 1, 1, 1.0},   // n = 19
      {4, 3, 1, 2.0},   // n = 24
      {7, 6, 1, 3.9},   // n = 30
      {1, 1, 2, 7.8},   // n = 38
      {4, 3, 2, 15.6},  // n = 48
  };
  const int count = std::min<int>(num_cases, 5);
  std::vector<ScaledCase> cases;
  for (int i = 0; i < count; ++i) {
    ScaledCase c;
    c.params.num_shells = 17;
    c.params.base_core_layers = knobs[i].core;
    c.params.base_outer_layers = knobs[i].outer;
    c.params.layers_per_shell = knobs[i].per_shell;
    c.ranks = std::max(
        2, static_cast<int>(base_ranks * knobs[i].rank_scale + 0.5));
    cases.push_back(c);
  }
  return cases;
}

}  // namespace prom::app
