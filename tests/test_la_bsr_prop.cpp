// Property suite for the node-block (BAIJ-style) kernel layer (la/bsr.h):
// lossless CSR round-trips, bitwise agreement of every blocked kernel with
// its scalar counterpart (the BSR SpMV preserves CSR's per-scalar-row
// accumulation order, so "agreement" means equality, not tolerance), the
// padded free-dof view, point-block smoother sweeps, and the thread-count
// determinism gate of common/parallel.h.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "fem/assembly.h"
#include "la/backend.h"
#include "la/bsr.h"
#include "la/csr.h"
#include "la/smoother_kernels.h"
#include "la/vec.h"
#include "mesh/generate.h"

namespace prom {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

template <typename Fn>
auto with_threads(int t, const Fn& fn) {
  common::set_kernel_threads(t);
  auto out = fn();
  common::set_kernel_threads(0);
  return out;
}

template <typename T>
void expect_bitwise_equal(const std::vector<T>& a, const std::vector<T>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(T)), 0)
      << what << ": results differ bitwise";
}

/// Random block matrix from block triplets (duplicates included, so the
/// summing path is exercised too).
la::Bsr3 random_bsr(Rng& rng, idx nbrows, idx nbcols, idx blocks_per_row) {
  std::vector<la::BlockTriplet3> trip;
  for (idx i = 0; i < nbrows; ++i) {
    for (idx k = 0; k < blocks_per_row; ++k) {
      la::BlockTriplet3 bt;
      bt.brow = i;
      bt.bcol = static_cast<idx>(rng.next_below(nbcols));
      for (auto& v : bt.v) v = rng.next_real() - 0.5;
      trip.push_back(bt);
    }
  }
  return la::Bsr3::from_block_triplets(nbrows, nbcols, trip);
}

/// Random block-diagonally-dominant symmetric matrix in node space (every
/// diagonal block SPD — a valid point-block smoother operator).
la::Bsr3 random_block_spd(Rng& rng, idx nb, idx off_per_row) {
  std::vector<la::BlockTriplet3> trip;
  std::vector<real> dom(static_cast<std::size_t>(nb), real{1});
  for (idx i = 0; i < nb; ++i) {
    for (idx k = 0; k < off_per_row; ++k) {
      const idx j = static_cast<idx>(rng.next_below(nb));
      if (j == i) continue;
      la::BlockTriplet3 bt;
      bt.brow = i;
      bt.bcol = j;
      real mag = 0;
      for (auto& v : bt.v) {
        v = rng.next_real() - 0.5;
        mag += std::abs(v);
      }
      la::BlockTriplet3 tr;
      tr.brow = j;
      tr.bcol = i;
      for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 3; ++c) tr.v[r * 3 + c] = bt.v[c * 3 + r];
      }
      trip.push_back(bt);
      trip.push_back(tr);
      dom[i] += mag + 1;
      dom[j] += mag + 1;
    }
  }
  for (idx i = 0; i < nb; ++i) {
    la::BlockTriplet3 bt;
    bt.brow = bt.bcol = i;
    bt.v.fill(0);
    for (int c = 0; c < 3; ++c) bt.v[c * 3 + c] = dom[i];
    trip.push_back(bt);
  }
  return la::Bsr3::from_block_triplets(nb, nb, trip);
}

std::vector<real> random_vec(Rng& rng, idx n) {
  std::vector<real> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.next_real() - 0.5;
  return x;
}

/// The assembled box-problem stiffness (constrained dofs removed) and its
/// free-dof list — the real operator the solve path re-blocks.
struct FreeSystem {
  la::Csr a;
  std::vector<idx> free_dofs;
};
FreeSystem box_free_system(idx n) {
  mesh::Mesh mesh = mesh::box_hex(n, n, n, {0, 0, 0}, {1, 1, 1});
  fem::DofMap dofmap(mesh.num_vertices());
  dofmap.fix_all(
      mesh.vertices_where([](const Vec3& p) { return p.z < 1e-12; }), 0.0);
  for (idx v :
       mesh.vertices_where([](const Vec3& p) { return p.z > 1 - 1e-12; })) {
    dofmap.fix(v, 2, -0.05);
  }
  dofmap.finalize();
  fem::FeProblem problem(mesh, {fem::Material{}}, dofmap);
  FreeSystem out;
  out.a = fem::assemble_linear_system(problem).stiffness;
  out.free_dofs = dofmap.free_dofs();
  return out;
}

TEST(BsrRoundTrip, CsrThereAndBackIsLossless) {
  Rng rng(17);
  const la::Bsr3 m = random_bsr(rng, 40, 30, 5);
  const la::Csr s = m.to_csr();
  ASSERT_EQ(s.nrows, m.rows());
  ASSERT_EQ(s.ncols, m.cols());
  ASSERT_EQ(s.nnz(), m.nblocks() * 9);
  const la::Bsr3 back = la::Bsr3::from_csr(s);
  ASSERT_EQ(back.nbrows, m.nbrows);
  ASSERT_EQ(back.nbcols, m.nbcols);
  expect_bitwise_equal(back.browptr, m.browptr, "browptr");
  expect_bitwise_equal(back.bcolidx, m.bcolidx, "bcolidx");
  expect_bitwise_equal(back.vals, m.vals, "vals");
}

TEST(BsrRoundTrip, FromCsrKeepsEveryScalarEntry) {
  Rng rng(18);
  // A scalar matrix with ragged (non-block) sparsity: blocking fills with
  // explicit zeros and must not move any value.
  std::vector<la::Triplet> trip;
  const idx n = 36;
  for (idx i = 0; i < n; ++i) {
    for (int k = 0; k < 4; ++k) {
      trip.push_back({i, static_cast<idx>(rng.next_below(n)),
                      rng.next_real() - 0.5});
    }
  }
  const la::Csr a = la::Csr::from_triplets(n, n, trip);
  const la::Bsr3 m = la::Bsr3::from_csr(a);
  for (idx i = 0; i < n; ++i) {
    for (idx j = 0; j < n; ++j) {
      real aij = 0;
      for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
        if (a.colidx[k] == j) aij = a.vals[k];
      }
      ASSERT_EQ(m.at(i, j), aij) << "entry (" << i << ", " << j << ")";
    }
  }
}

TEST(BsrKernels, SpmvMatchesCsrBitwise) {
  Rng rng(19);
  const la::Bsr3 m = random_bsr(rng, 50, 40, 6);
  const la::Csr s = m.to_csr();
  const std::vector<real> x = random_vec(rng, m.cols());
  std::vector<real> yb(static_cast<std::size_t>(m.rows()));
  std::vector<real> ys(yb.size());
  m.spmv(x, yb);
  s.spmv(x, ys);
  expect_bitwise_equal(yb, ys, "spmv");

  // spmv_add on top of an existing vector.
  std::vector<real> zb = random_vec(rng, m.rows());
  std::vector<real> zs = zb;
  m.spmv_add(x, zb);
  for (std::size_t i = 0; i < zs.size(); ++i) zs[i] += ys[i];
  expect_bitwise_equal(zb, zs, "spmv_add");

  // The fused residual: same bits as spmv followed by b - y.
  const std::vector<real> b = random_vec(rng, m.rows());
  std::vector<real> rb(b.size());
  m.residual(b, x, rb);
  std::vector<real> rs(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) rs[i] = b[i] - ys[i];
  expect_bitwise_equal(rb, rs, "residual");
}

TEST(BsrKernels, TransposeMatchesCsr) {
  Rng rng(20);
  const la::Bsr3 m = random_bsr(rng, 30, 45, 5);
  const la::Csr st = m.to_csr().transposed();
  const la::Csr bt = m.transposed().to_csr();
  ASSERT_EQ(bt.nrows, st.nrows);
  ASSERT_EQ(bt.ncols, st.ncols);
  expect_bitwise_equal(bt.rowptr, st.rowptr, "transposed rowptr");
  expect_bitwise_equal(bt.colidx, st.colidx, "transposed colidx");
  expect_bitwise_equal(bt.vals, st.vals, "transposed vals");

  // The mat-free transpose product against the explicit transpose.
  const std::vector<real> x = random_vec(rng, m.rows());
  std::vector<real> y1(static_cast<std::size_t>(m.cols()));
  std::vector<real> y2(y1.size());
  m.spmv_transpose(x, y1);
  m.transposed().spmv(x, y2);
  real scale = 0;
  for (real v : y2) scale = std::max(scale, std::abs(v));
  for (std::size_t i = 0; i < y1.size(); ++i) {
    EXPECT_NEAR(y1[i], y2[i], 1e-13 * scale) << "entry " << i;
  }
}

TEST(BsrKernels, BlockDiagonalAndInverse) {
  Rng rng(21);
  const la::Bsr3 m = random_block_spd(rng, 25, 4);
  const std::vector<real> diag = m.diagonal();
  const std::vector<real> bd = m.block_diagonal();
  const std::vector<real> inv = m.inverted_block_diagonal();
  ASSERT_EQ(diag.size(), static_cast<std::size_t>(m.rows()));
  ASSERT_EQ(bd.size(), static_cast<std::size_t>(m.nbrows) * 9);
  ASSERT_EQ(inv.size(), bd.size());
  for (idx nb = 0; nb < m.nbrows; ++nb) {
    const real* d = bd.data() + nb * 9;
    const real* di = inv.data() + nb * 9;
    real scale = 0;
    for (int e = 0; e < 9; ++e) scale = std::max(scale, std::abs(d[e]));
    for (int r = 0; r < 3; ++r) {
      EXPECT_EQ(d[r * 3 + r], diag[3 * nb + r]);
      for (int c = 0; c < 3; ++c) {
        EXPECT_EQ(d[r * 3 + c], m.at(3 * nb + r, 3 * nb + c));
        real prod = 0;
        for (int k = 0; k < 3; ++k) prod += di[r * 3 + k] * d[k * 3 + c];
        EXPECT_NEAR(prod, r == c ? 1.0 : 0.0, 1e-12 * std::max(scale, real{1}))
            << "block " << nb;
      }
    }
  }
}

TEST(BsrKernels, MissingDiagonalBlockInvertsToIdentity) {
  // One strictly off-diagonal block: the diagonal block is absent, its
  // "inverse" must be the identity (the point-block smoothers rely on it).
  la::BlockTriplet3 bt;
  bt.brow = 0;
  bt.bcol = 1;
  bt.v.fill(2.0);
  const la::Bsr3 m =
      la::Bsr3::from_block_triplets(2, 2, std::span(&bt, 1));
  const std::vector<real> inv = m.inverted_block_diagonal();
  for (idx nb = 0; nb < 2; ++nb) {
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c) {
        EXPECT_EQ(inv[nb * 9 + r * 3 + c], r == c ? 1.0 : 0.0);
      }
    }
  }
}

TEST(BsrKernels, SpgemmAndGalerkinMatchScalar) {
  Rng rng(22);
  const la::Bsr3 a = random_block_spd(rng, 30, 4);
  const la::Bsr3 r = random_bsr(rng, 12, 30, 5);
  const la::Csr sc = la::galerkin_product(r.to_csr(), a.to_csr());
  const la::Bsr3 bc = la::galerkin_product<3>(r, a);
  ASSERT_EQ(bc.rows(), sc.nrows);
  ASSERT_EQ(bc.cols(), sc.ncols);
  // Same per-entry accumulation order (ascending scalar k, blocked or
  // not): values agree exactly where the scalar product stores an entry,
  // and the blocked fill is exact zeros elsewhere.
  for (idx i = 0; i < sc.nrows; ++i) {
    std::vector<real> dense(static_cast<std::size_t>(sc.ncols), 0);
    for (nnz_t k = sc.rowptr[i]; k < sc.rowptr[i + 1]; ++k) {
      dense[sc.colidx[k]] = sc.vals[k];
    }
    for (idx j = 0; j < sc.ncols; ++j) {
      ASSERT_EQ(bc.at(i, j), dense[j]) << "entry (" << i << ", " << j << ")";
    }
  }

  const la::Csr sp = la::spgemm(r.to_csr(), a.to_csr());
  const la::Bsr3 bp = la::spgemm<3>(r, a);
  const std::vector<real> x = random_vec(rng, bp.cols());
  std::vector<real> yb(static_cast<std::size_t>(bp.rows()));
  std::vector<real> ys(yb.size());
  bp.spmv(x, yb);
  sp.spmv(x, ys);
  for (std::size_t i = 0; i < yb.size(); ++i) {
    EXPECT_EQ(yb[i], ys[i]) << "spgemm row " << i;
  }
}

TEST(BsrFreeDofView, OperatorMatchesScalarCsrBitwise) {
  const FreeSystem sys = box_free_system(5);
  const la::NodeBlockMap map = la::node_block_map(sys.free_dofs);
  ASSERT_LT(map.nfree, map.nslots());  // the box problem has constraints
  const la::BsrOperator op(la::bsr_from_free_csr(sys.a, map), map);
  ASSERT_EQ(op.rows(), sys.a.nrows);

  Rng rng(23);
  const std::vector<real> x = random_vec(rng, sys.a.nrows);
  std::vector<real> yb(x.size());
  std::vector<real> ys(x.size());
  op.apply(x, yb);
  sys.a.spmv(x, ys);
  expect_bitwise_equal(yb, ys, "free-dof blocked spmv");

  const std::vector<real> b = random_vec(rng, sys.a.nrows);
  std::vector<real> rb(x.size());
  op.residual(b, x, rb);
  std::vector<real> rs(x.size());
  for (std::size_t i = 0; i < rs.size(); ++i) rs[i] = b[i] - ys[i];
  expect_bitwise_equal(rb, rs, "free-dof blocked residual");

  // Padded diagonal slots carry exact identity pivots.
  const la::Bsr3& m = op.matrix();
  for (idx s = 0; s < map.nslots(); ++s) {
    if (map.free_of_slot[s] == kInvalidIdx) {
      ASSERT_EQ(m.at(s, s), 1.0) << "padding slot " << s;
    }
  }
}

TEST(BsrFreeDofView, GatherScatterRoundTrip) {
  const FreeSystem sys = box_free_system(4);
  const la::NodeBlockMap map = la::node_block_map(sys.free_dofs);
  Rng rng(24);
  const std::vector<real> x = random_vec(rng, map.nfree);
  std::vector<real> slots(static_cast<std::size_t>(map.nslots()), -1);
  map.gather(x, slots);
  for (idx s = 0; s < map.nslots(); ++s) {
    if (map.free_of_slot[s] == kInvalidIdx) {
      EXPECT_EQ(slots[s], 0.0) << "padding slot " << s;
    }
  }
  std::vector<real> back(x.size());
  map.scatter(slots, back);
  expect_bitwise_equal(back, x, "gather/scatter round trip");
}

TEST(BsrSmoothers, PointBlockJacobiMatchesManualUpdate) {
  Rng rng(25);
  const idx nb = 40;
  const la::Bsr3 m = random_block_spd(rng, nb, 4);
  // Identity node map: every dof free, so the operator runs in block space.
  std::vector<idx> all_dofs(static_cast<std::size_t>(m.rows()));
  for (idx i = 0; i < m.rows(); ++i) all_dofs[i] = i;
  const la::NodeBlockMap map = la::node_block_map(all_dofs);
  const la::BsrOperator op(m, map);
  const std::vector<real> inv = m.inverted_block_diagonal();
  const std::vector<real> b = random_vec(rng, m.rows());
  const std::vector<real> x0 = random_vec(rng, m.rows());
  const real omega = 0.7;

  std::vector<real> x = x0;
  la::pointblock_jacobi_sweep<3>(la::SerialBackend{}, op, inv, omega, b, x);

  // Manual reference in the kernel's accumulation order.
  std::vector<real> r(b.size());
  op.residual(b, x0, r);
  std::vector<real> ref = x0;
  for (idx n = 0; n < nb; ++n) {
    for (int c = 0; c < 3; ++c) {
      real acc = 0;
      for (int k = 0; k < 3; ++k) acc += inv[n * 9 + c * 3 + k] * r[3 * n + k];
      ref[3 * n + c] += omega * acc;
    }
  }
  expect_bitwise_equal(x, ref, "point-block Jacobi sweep");

  // Repeated sweeps reduce the error of the dominant system.
  std::vector<real> y(b.size());
  op.apply(x, y);
  real e1 = 0, e0 = 0;
  for (std::size_t i = 0; i < b.size(); ++i) e1 += (b[i] - y[i]) * (b[i] - y[i]);
  op.apply(x0, y);
  for (std::size_t i = 0; i < b.size(); ++i) e0 += (b[i] - y[i]) * (b[i] - y[i]);
  EXPECT_LT(e1, e0);
}

TEST(BsrSmoothers, PointBlockChebyshevReducesResidual) {
  Rng rng(26);
  const la::Bsr3 m = random_block_spd(rng, 40, 4);
  std::vector<idx> all_dofs(static_cast<std::size_t>(m.rows()));
  for (idx i = 0; i < m.rows(); ++i) all_dofs[i] = i;
  const la::NodeBlockMap map = la::node_block_map(all_dofs);
  const la::BsrOperator op(m, map);
  const std::vector<real> inv = m.inverted_block_diagonal();
  const std::vector<real> b = random_vec(rng, m.rows());

  // Diagonal dominance bounds the block-preconditioned spectrum near 1.
  std::vector<real> x(b.size(), 0);
  la::pointblock_chebyshev_sweep<3>(la::SerialBackend{}, op, inv, 4, 0.1, 2.0,
                                    b, x);
  std::vector<real> r(b.size());
  op.residual(b, x, r);
  real rn = 0, bn = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    rn += r[i] * r[i];
    bn += b[i] * b[i];
  }
  EXPECT_LT(std::sqrt(rn), 0.5 * std::sqrt(bn));
}

// ---------------------------------------------------------------------------
// Thread-count determinism gate: every blocked kernel must produce
// BIT-identical results at 1, 2, and 8 kernel threads.

TEST(BsrDeterminism, KernelsAreThreadCountInvariant) {
  Rng rng(27);
  const la::Bsr3 a = random_block_spd(rng, 90, 6);
  const la::Bsr3 r = random_bsr(rng, 30, 90, 8);
  const std::vector<real> x = random_vec(rng, a.cols());
  const std::vector<real> xt = random_vec(rng, r.rows());
  const std::vector<real> b = random_vec(rng, a.rows());

  struct Outputs {
    std::vector<real> spmv, spmv_t, resid, galerkin;
  };
  auto run = [&] {
    Outputs o;
    o.spmv.resize(static_cast<std::size_t>(a.rows()));
    a.spmv(x, o.spmv);
    o.spmv_t.resize(static_cast<std::size_t>(r.cols()));
    r.spmv_transpose(xt, o.spmv_t);
    o.resid.resize(static_cast<std::size_t>(a.rows()));
    a.residual(b, x, o.resid);
    o.galerkin = la::galerkin_product<3>(r, a).vals;
    return o;
  };

  const Outputs ref = with_threads(kThreadCounts[0], run);
  for (std::size_t t = 1; t < std::size(kThreadCounts); ++t) {
    const Outputs got = with_threads(kThreadCounts[t], run);
    expect_bitwise_equal(got.spmv, ref.spmv, "spmv");
    expect_bitwise_equal(got.spmv_t, ref.spmv_t, "spmv_transpose");
    expect_bitwise_equal(got.resid, ref.resid, "residual");
    expect_bitwise_equal(got.galerkin, ref.galerkin, "galerkin vals");
  }
}

TEST(BsrDeterminism, PointBlockSweepsAreThreadCountInvariant) {
  Rng rng(28);
  const la::Bsr3 m = random_block_spd(rng, 80, 5);
  std::vector<idx> all_dofs(static_cast<std::size_t>(m.rows()));
  for (idx i = 0; i < m.rows(); ++i) all_dofs[i] = i;
  const la::NodeBlockMap map = la::node_block_map(all_dofs);
  const la::BsrOperator op(m, map);
  const std::vector<real> inv = m.inverted_block_diagonal();
  const std::vector<real> b = random_vec(rng, m.rows());
  const std::vector<real> x0 = random_vec(rng, m.rows());

  auto run = [&] {
    std::vector<real> xj = x0;
    la::pointblock_jacobi_sweep<3>(la::SerialBackend{}, op, inv, 0.8, b, xj);
    std::vector<real> xc = x0;
    la::pointblock_chebyshev_sweep<3>(la::SerialBackend{}, op, inv, 3, 0.1,
                                      2.0, b, xc);
    xj.insert(xj.end(), xc.begin(), xc.end());
    return xj;
  };
  const std::vector<real> ref = with_threads(kThreadCounts[0], run);
  for (std::size_t t = 1; t < std::size(kThreadCounts); ++t) {
    expect_bitwise_equal(with_threads(kThreadCounts[t], run), ref,
                         "point-block sweeps");
  }
}

}  // namespace
}  // namespace prom
