// Golden-history regression for the matrix formats: the quickstart
// elasticity solve must (a) produce the same PCG residual history under
// PROM_MATRIX=csr and bsr3 to 1e-12, and (b) reproduce the committed
// golden history (tests/golden/bsr_quickstart.json, an obs::Report) —
// catching any change to the solver arithmetic, blocked or scalar, that
// alters convergence. Regenerate the golden file after an *intentional*
// change with PROM_UPDATE_GOLDEN=1.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "app/driver.h"
#include "fem/assembly.h"
#include "la/krylov.h"
#include "mg/hierarchy.h"
#include "mg/solver.h"
#include "obs/report.h"
#include "obs/trace.h"

#ifndef PROM_GOLDEN_DIR
#error "PROM_GOLDEN_DIR must point at the committed golden files"
#endif

namespace prom {
namespace {

struct SolveOutcome {
  la::KrylovResult result;
  obs::Report report;  ///< contains the "pcg.residual" series
};

/// The quickstart problem (8^3 box, clamped bottom, pressed top) solved
/// with the requested solve-phase format under a fresh tracing window.
SolveOutcome run_quickstart(mg::MatrixFormat format) {
  const app::ModelProblem p = app::make_box_problem(8);
  fem::FeProblem fe(p.mesh, p.materials, p.dofmap);
  fem::LinearSystem sys = fem::assemble_linear_system(fe);
  mg::Hierarchy h =
      mg::Hierarchy::build(p.mesh, p.dofmap, std::move(sys.stiffness), {});
  if (format == mg::MatrixFormat::kBsr3) h.enable_bsr();

  obs::Tracer& tracer = obs::Tracer::instance();
  const bool was_tracing = obs::tracing();
  tracer.set_enabled(true);
  const std::int64_t mark = obs::Tracer::now_ns();

  mg::MgSolveOptions opts;
  opts.rtol = 1e-8;
  opts.track_history = true;
  opts.format = format;
  std::vector<real> x(sys.rhs.size(), 0);
  SolveOutcome out;
  out.result = mg::mg_pcg_solve(h, sys.rhs, x, opts);
  tracer.set_enabled(was_tracing);
  out.report = obs::build_report(mark);
  return out;
}

const std::vector<double>& residual_series(const obs::Report& rep) {
  const obs::SeriesEntry* s = rep.find_series("pcg.residual");
  EXPECT_NE(s, nullptr) << "report lacks the pcg.residual series";
  static const std::vector<double> empty;
  return s != nullptr ? s->values : empty;
}

TEST(BsrGolden, FormatsAgreeAndMatchCommittedHistory) {
  const SolveOutcome csr = run_quickstart(mg::MatrixFormat::kCsr);
  const SolveOutcome bsr = run_quickstart(mg::MatrixFormat::kBsr3);
  ASSERT_TRUE(csr.result.converged);
  ASSERT_TRUE(bsr.result.converged);

  // (a) The blocked solve is the same iteration, to rounding: identical
  // iteration count, history equal to 1e-12 of the initial residual.
  EXPECT_EQ(bsr.result.iterations, csr.result.iterations);
  const std::vector<double>& hc = residual_series(csr.report);
  const std::vector<double>& hb = residual_series(bsr.report);
  ASSERT_FALSE(hc.empty());
  ASSERT_EQ(hb.size(), hc.size());
  for (std::size_t i = 0; i < hc.size(); ++i) {
    EXPECT_NEAR(hb[i], hc[i], 1e-12 * hc[0]) << "history entry " << i;
  }
  EXPECT_NEAR(bsr.result.final_relres, csr.result.final_relres, 1e-12);

  // (b) Both match the committed golden history.
  const std::string path =
      std::string(PROM_GOLDEN_DIR) + "/bsr_quickstart.json";
  if (std::getenv("PROM_UPDATE_GOLDEN") != nullptr) {
    csr.report.write_json(path);
    GTEST_SKIP() << "golden file regenerated at " << path;
  }
  const obs::Report golden = obs::Report::read_json(path);
  const std::vector<double>& hg = residual_series(golden);
  ASSERT_EQ(hc.size(), hg.size())
      << "iteration count drifted from the golden history; if intended, "
         "regenerate with PROM_UPDATE_GOLDEN=1";
  for (std::size_t i = 0; i < hg.size(); ++i) {
    EXPECT_NEAR(hc[i], hg[i], 1e-10 * hg[0]) << "golden entry " << i;
    EXPECT_NEAR(hb[i], hg[i], 1e-10 * hg[0]) << "golden entry " << i;
  }
}

}  // namespace
}  // namespace prom
