#include "la/bsr.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/flops.h"
#include "common/parallel.h"
#include "la/block_kernels.h"

namespace prom::la {
namespace {

/// Block rows per parallel chunk. Fixed constants: the chunk decomposition
/// is part of the bit-determinism contract (common/parallel.h), so it may
/// depend on the matrix but never on the thread count. 128 block rows of
/// BS=3 cover ~the same scalar span as la/csr.cpp's kRowGrain.
constexpr idx kBlockRowGrain = 128;
constexpr idx kBlockSpgemmGrain = 512;
constexpr idx kMergeGrain = 8192;

/// Transpose-SpMV scatter chunks (block rows). Each chunk owns a private
/// accumulator of `cols()` reals, so the count is capped to bound memory.
idx transpose_grain(idx nbrows) {
  return std::max<idx>(1024, (nbrows + 7) / 8);
}

/// Inverts a dense BS x BS row-major block by Gauss-Jordan with partial
/// pivoting. Returns false on a (numerically) singular block.
template <int BS>
bool invert_block(const real* in, real* out) {
  real aug[BS][2 * BS];
  for (int r = 0; r < BS; ++r) {
    for (int c = 0; c < BS; ++c) {
      aug[r][c] = in[r * BS + c];
      aug[r][BS + c] = (r == c) ? real{1} : real{0};
    }
  }
  for (int col = 0; col < BS; ++col) {
    int piv = col;
    for (int r = col + 1; r < BS; ++r) {
      if (std::fabs(aug[r][col]) > std::fabs(aug[piv][col])) piv = r;
    }
    if (aug[piv][col] == real{0}) return false;
    if (piv != col) {
      for (int c = 0; c < 2 * BS; ++c) std::swap(aug[piv][c], aug[col][c]);
    }
    const real inv_p = real{1} / aug[col][col];
    for (int c = 0; c < 2 * BS; ++c) aug[col][c] *= inv_p;
    for (int r = 0; r < BS; ++r) {
      if (r == col) continue;
      const real f = aug[r][col];
      if (f == real{0}) continue;
      for (int c = 0; c < 2 * BS; ++c) aug[r][c] -= f * aug[col][c];
    }
  }
  for (int r = 0; r < BS; ++r) {
    for (int c = 0; c < BS; ++c) out[r * BS + c] = aug[r][BS + c];
  }
  return true;
}

/// out(0..BS) = block row i times x. For BS == 3 the inner op is the
/// shared vectorized microkernel (la/block_kernels.h); otherwise the
/// reference scalar loop. Either way each scalar row accumulates in
/// ascending block-column then ascending scalar-column order, so the
/// result is bit-identical to the scalar CSR walk of the same row.
template <int BS>
inline void block_row_times(const std::vector<nnz_t>& browptr,
                            const std::vector<idx>& bcolidx,
                            const std::vector<real>& vals,
                            std::span<const real> x, idx i, real* out) {
  constexpr int kBlockSize = BS * BS;
  if constexpr (BS == 3) {
    RealPack acc = pack_zero();
    for (nnz_t k = browptr[i]; k < browptr[i + 1]; ++k) {
      const real* blk = vals.data() + static_cast<std::size_t>(k) * kBlockSize;
      const real* xj = x.data() + static_cast<std::size_t>(bcolidx[k]) * BS;
      block3_row_madd(blk, xj, acc);
    }
    for (int r = 0; r < BS; ++r) out[r] = pack_lane(acc, r);
  } else {
    real acc[BS] = {};
    for (nnz_t k = browptr[i]; k < browptr[i + 1]; ++k) {
      const real* blk = vals.data() + static_cast<std::size_t>(k) * kBlockSize;
      const real* xj = x.data() + static_cast<std::size_t>(bcolidx[k]) * BS;
      for (int r = 0; r < BS; ++r) {
        for (int c = 0; c < BS; ++c) acc[r] += blk[r * BS + c] * xj[c];
      }
    }
    for (int r = 0; r < BS; ++r) out[r] = acc[r];
  }
}

}  // namespace

template <int BS>
void Bsr<BS>::spmv(std::span<const real> x, std::span<real> y) const {
  PROM_CHECK(static_cast<idx>(x.size()) == cols() &&
             static_cast<idx>(y.size()) == rows());
  common::parallel_for(0, nbrows, kBlockRowGrain, [&](idx rb, idx re) {
    for (idx i = rb; i < re; ++i) {
      block_row_times<BS>(browptr, bcolidx, vals, x, i,
                          y.data() + static_cast<std::size_t>(i) * BS);
    }
  });
  count_flops(2 * kBlockSize * nblocks());
}

template <int BS>
void Bsr<BS>::spmv_add(std::span<const real> x, std::span<real> y) const {
  PROM_CHECK(static_cast<idx>(x.size()) == cols() &&
             static_cast<idx>(y.size()) == rows());
  common::parallel_for(0, nbrows, kBlockRowGrain, [&](idx rb, idx re) {
    for (idx i = rb; i < re; ++i) {
      real acc[BS];
      block_row_times<BS>(browptr, bcolidx, vals, x, i, acc);
      real* yi = y.data() + static_cast<std::size_t>(i) * BS;
      for (int r = 0; r < BS; ++r) yi[r] += acc[r];
    }
  });
  count_flops(2 * kBlockSize * nblocks());
}

template <int BS>
void Bsr<BS>::residual(std::span<const real> b, std::span<const real> x,
                       std::span<real> r) const {
  PROM_CHECK(static_cast<idx>(x.size()) == cols() &&
             static_cast<idx>(b.size()) == rows() &&
             static_cast<idx>(r.size()) == rows());
  common::parallel_for(0, nbrows, kBlockRowGrain, [&](idx rb, idx re) {
    for (idx i = rb; i < re; ++i) {
      real acc[BS];
      block_row_times<BS>(browptr, bcolidx, vals, x, i, acc);
      const std::size_t base = static_cast<std::size_t>(i) * BS;
      for (int rr = 0; rr < BS; ++rr) r[base + rr] = b[base + rr] - acc[rr];
    }
  });
  count_flops(2 * kBlockSize * nblocks() + static_cast<std::int64_t>(rows()));
}

template <int BS>
void Bsr<BS>::spmv_brows(std::span<const real> x, std::span<real> y,
                         std::span<const idx> brows) const {
  PROM_CHECK(static_cast<idx>(x.size()) == cols() &&
             static_cast<idx>(y.size()) == rows());
  const idx n = static_cast<idx>(brows.size());
  common::parallel_for(0, n, kBlockRowGrain, [&](idx tb, idx te) {
    nnz_t sub = 0;
    for (idx t = tb; t < te; ++t) {
      const idx i = brows[t];
      block_row_times<BS>(browptr, bcolidx, vals, x, i,
                          y.data() + static_cast<std::size_t>(i) * BS);
      sub += browptr[i + 1] - browptr[i];
    }
    count_flops(2 * kBlockSize * sub);
  });
}

template <int BS>
void Bsr<BS>::residual_brows(std::span<const real> b, std::span<const real> x,
                             std::span<real> r,
                             std::span<const idx> brows) const {
  PROM_CHECK(static_cast<idx>(x.size()) == cols() &&
             static_cast<idx>(b.size()) == rows() &&
             static_cast<idx>(r.size()) == rows());
  const idx n = static_cast<idx>(brows.size());
  common::parallel_for(0, n, kBlockRowGrain, [&](idx tb, idx te) {
    nnz_t sub = 0;
    for (idx t = tb; t < te; ++t) {
      const idx i = brows[t];
      real acc[BS];
      block_row_times<BS>(browptr, bcolidx, vals, x, i, acc);
      const std::size_t base = static_cast<std::size_t>(i) * BS;
      for (int rr = 0; rr < BS; ++rr) r[base + rr] = b[base + rr] - acc[rr];
      sub += browptr[i + 1] - browptr[i];
    }
    count_flops(2 * kBlockSize * sub + static_cast<std::int64_t>(te - tb) * BS);
  });
}

namespace {

/// Blocked counterpart of block_row_times: one pass over block row i feeds
/// one accumulator per column of X, each updated in exactly
/// block_row_times' order, so every output column matches the
/// single-vector kernel bitwise. `out[j]` receives the BS row results for
/// column j.
template <int BS>
inline void block_row_times_mv(const std::vector<nnz_t>& browptr,
                               const std::vector<idx>& bcolidx,
                               const std::vector<real>& vals,
                               const real* const* xp, int ncol, idx i,
                               real out[][BS]) {
  constexpr int kBlockSize = BS * BS;
  if constexpr (BS == 3) {
    RealPack acc[kMaxRhsBlock];
    for (int j = 0; j < ncol; ++j) acc[j] = pack_zero();
    for (nnz_t k = browptr[i]; k < browptr[i + 1]; ++k) {
      const real* blk = vals.data() + static_cast<std::size_t>(k) * kBlockSize;
      const std::size_t xoff = static_cast<std::size_t>(bcolidx[k]) * BS;
      for (int j = 0; j < ncol; ++j) {
        block3_row_madd(blk, xp[j] + xoff, acc[j]);
      }
    }
    for (int j = 0; j < ncol; ++j) {
      for (int r = 0; r < BS; ++r) out[j][r] = pack_lane(acc[j], r);
    }
  } else {
    real acc[kMaxRhsBlock][BS] = {};
    for (nnz_t k = browptr[i]; k < browptr[i + 1]; ++k) {
      const real* blk = vals.data() + static_cast<std::size_t>(k) * kBlockSize;
      const std::size_t xoff = static_cast<std::size_t>(bcolidx[k]) * BS;
      for (int j = 0; j < ncol; ++j) {
        for (int r = 0; r < BS; ++r) {
          for (int c = 0; c < BS; ++c) {
            acc[j][r] += blk[r * BS + c] * xp[j][xoff + c];
          }
        }
      }
    }
    for (int j = 0; j < ncol; ++j) {
      for (int r = 0; r < BS; ++r) out[j][r] = acc[j][r];
    }
  }
}

}  // namespace

template <int BS>
void Bsr<BS>::spmm(const MultiVec& x, MultiVec& y) const {
  PROM_CHECK(x.rows() == cols() && y.rows() == rows() &&
             x.cols() == y.cols() && x.cols() >= 1);
  const int ncol = x.cols();
  const real* xp[kMaxRhsBlock];
  real* yp[kMaxRhsBlock];
  for (int j = 0; j < ncol; ++j) {
    xp[j] = x.col_data(j);
    yp[j] = y.col_data(j);
  }
  common::parallel_for(0, nbrows, kBlockRowGrain, [&](idx rb, idx re) {
    for (idx i = rb; i < re; ++i) {
      real acc[kMaxRhsBlock][BS];
      block_row_times_mv<BS>(browptr, bcolidx, vals, xp, ncol, i, acc);
      const std::size_t base = static_cast<std::size_t>(i) * BS;
      for (int j = 0; j < ncol; ++j) {
        for (int r = 0; r < BS; ++r) yp[j][base + r] = acc[j][r];
      }
    }
  });
  count_flops(2 * kBlockSize * nblocks() * ncol);
}

template <int BS>
void Bsr<BS>::residual_mv(const MultiVec& b, const MultiVec& x,
                          MultiVec& r) const {
  PROM_CHECK(x.rows() == cols() && b.rows() == rows() && r.rows() == rows() &&
             x.cols() == b.cols() && x.cols() == r.cols() && x.cols() >= 1);
  const int ncol = x.cols();
  const real* xp[kMaxRhsBlock];
  const real* bp[kMaxRhsBlock];
  real* rp[kMaxRhsBlock];
  for (int j = 0; j < ncol; ++j) {
    xp[j] = x.col_data(j);
    bp[j] = b.col_data(j);
    rp[j] = r.col_data(j);
  }
  common::parallel_for(0, nbrows, kBlockRowGrain, [&](idx rb, idx re) {
    for (idx i = rb; i < re; ++i) {
      real acc[kMaxRhsBlock][BS];
      block_row_times_mv<BS>(browptr, bcolidx, vals, xp, ncol, i, acc);
      const std::size_t base = static_cast<std::size_t>(i) * BS;
      for (int j = 0; j < ncol; ++j) {
        for (int rr = 0; rr < BS; ++rr) {
          rp[j][base + rr] = bp[j][base + rr] - acc[j][rr];
        }
      }
    }
  });
  count_flops((2 * kBlockSize * nblocks() + static_cast<std::int64_t>(rows())) *
              ncol);
}

template <int BS>
void Bsr<BS>::spmm_brows(const MultiVec& x, MultiVec& y,
                         std::span<const idx> brows) const {
  PROM_CHECK(x.rows() == cols() && y.rows() == rows() &&
             x.cols() == y.cols() && x.cols() >= 1);
  const int ncol = x.cols();
  const real* xp[kMaxRhsBlock];
  real* yp[kMaxRhsBlock];
  for (int j = 0; j < ncol; ++j) {
    xp[j] = x.col_data(j);
    yp[j] = y.col_data(j);
  }
  const idx n = static_cast<idx>(brows.size());
  common::parallel_for(0, n, kBlockRowGrain, [&](idx tb, idx te) {
    nnz_t sub = 0;
    for (idx t = tb; t < te; ++t) {
      const idx i = brows[t];
      real acc[kMaxRhsBlock][BS];
      block_row_times_mv<BS>(browptr, bcolidx, vals, xp, ncol, i, acc);
      const std::size_t base = static_cast<std::size_t>(i) * BS;
      for (int j = 0; j < ncol; ++j) {
        for (int r = 0; r < BS; ++r) yp[j][base + r] = acc[j][r];
      }
      sub += browptr[i + 1] - browptr[i];
    }
    count_flops(2 * kBlockSize * sub * ncol);
  });
}

template <int BS>
void Bsr<BS>::residual_mv_brows(const MultiVec& b, const MultiVec& x,
                                MultiVec& r, std::span<const idx> brows) const {
  PROM_CHECK(x.rows() == cols() && b.rows() == rows() && r.rows() == rows() &&
             x.cols() == b.cols() && x.cols() == r.cols() && x.cols() >= 1);
  const int ncol = x.cols();
  const real* xp[kMaxRhsBlock];
  const real* bp[kMaxRhsBlock];
  real* rp[kMaxRhsBlock];
  for (int j = 0; j < ncol; ++j) {
    xp[j] = x.col_data(j);
    bp[j] = b.col_data(j);
    rp[j] = r.col_data(j);
  }
  const idx n = static_cast<idx>(brows.size());
  common::parallel_for(0, n, kBlockRowGrain, [&](idx tb, idx te) {
    nnz_t sub = 0;
    for (idx t = tb; t < te; ++t) {
      const idx i = brows[t];
      real acc[kMaxRhsBlock][BS];
      block_row_times_mv<BS>(browptr, bcolidx, vals, xp, ncol, i, acc);
      const std::size_t base = static_cast<std::size_t>(i) * BS;
      for (int j = 0; j < ncol; ++j) {
        for (int rr = 0; rr < BS; ++rr) {
          rp[j][base + rr] = bp[j][base + rr] - acc[j][rr];
        }
      }
      sub += browptr[i + 1] - browptr[i];
    }
    count_flops((2 * kBlockSize * sub + static_cast<std::int64_t>(te - tb) * BS) *
                ncol);
  });
}

template <int BS>
void Bsr<BS>::spmv_transpose(std::span<const real> x,
                             std::span<real> y) const {
  PROM_CHECK(static_cast<idx>(x.size()) == rows() &&
             static_cast<idx>(y.size()) == cols());
  const idx grain = transpose_grain(nbrows);
  const idx nchunks = common::chunk_count(0, nbrows, grain);
  if (nchunks <= 1) {
    std::fill(y.begin(), y.end(), real{0});
    for (idx i = 0; i < nbrows; ++i) {
      const real* xi = x.data() + static_cast<std::size_t>(i) * BS;
      for (nnz_t k = browptr[i]; k < browptr[i + 1]; ++k) {
        const real* blk =
            vals.data() + static_cast<std::size_t>(k) * kBlockSize;
        real* yj = y.data() + static_cast<std::size_t>(bcolidx[k]) * BS;
        for (int r = 0; r < BS; ++r) {
          for (int c = 0; c < BS; ++c) yj[c] += blk[r * BS + c] * xi[r];
        }
      }
    }
    count_flops(2 * kBlockSize * nblocks());
    return;
  }
  // Scatter into per-chunk accumulators (disjoint by construction), then
  // merge column-parallel in fixed chunk order — same scheme as
  // Csr::spmv_transpose, so any thread count produces the same bits.
  const std::size_t width = static_cast<std::size_t>(cols());
  std::vector<real> partial(static_cast<std::size_t>(nchunks) * width,
                            real{0});
  common::parallel_for(0, nbrows, grain, [&](idx rb, idx re) {
    real* acc = partial.data() + static_cast<std::size_t>(rb / grain) * width;
    for (idx i = rb; i < re; ++i) {
      const real* xi = x.data() + static_cast<std::size_t>(i) * BS;
      for (nnz_t k = browptr[i]; k < browptr[i + 1]; ++k) {
        const real* blk =
            vals.data() + static_cast<std::size_t>(k) * kBlockSize;
        real* aj = acc + static_cast<std::size_t>(bcolidx[k]) * BS;
        for (int r = 0; r < BS; ++r) {
          for (int c = 0; c < BS; ++c) aj[c] += blk[r * BS + c] * xi[r];
        }
      }
    }
  });
  common::parallel_for(0, cols(), kMergeGrain, [&](idx jb, idx je) {
    for (idx j = jb; j < je; ++j) {
      real sum = 0;
      for (idx c = 0; c < nchunks; ++c) {
        sum += partial[static_cast<std::size_t>(c) * width + j];
      }
      y[j] = sum;
    }
  });
  count_flops(2 * kBlockSize * nblocks());
}

template <int BS>
std::vector<real> Bsr<BS>::apply(std::span<const real> x) const {
  std::vector<real> y(static_cast<std::size_t>(rows()));
  spmv(x, y);
  return y;
}

template <int BS>
real Bsr<BS>::at(idx i, idx j) const {
  PROM_CHECK(i >= 0 && i < rows() && j >= 0 && j < cols());
  const idx bi = i / BS, bj = j / BS;
  const auto begin = bcolidx.begin() + browptr[bi];
  const auto end = bcolidx.begin() + browptr[bi + 1];
  const auto it = std::lower_bound(begin, end, bj);
  if (it == end || *it != bj) return 0;
  const std::size_t k = static_cast<std::size_t>(it - bcolidx.begin());
  return vals[k * kBlockSize + (i % BS) * BS + (j % BS)];
}

template <int BS>
Bsr<BS> Bsr<BS>::transposed() const {
  Bsr t;
  t.nbrows = nbcols;
  t.nbcols = nbrows;
  t.browptr.assign(static_cast<std::size_t>(nbcols) + 1, 0);
  for (idx j : bcolidx) t.browptr[j + 1]++;
  for (idx j = 0; j < nbcols; ++j) t.browptr[j + 1] += t.browptr[j];
  t.bcolidx.resize(bcolidx.size());
  t.vals.resize(vals.size());
  std::vector<nnz_t> next(t.browptr.begin(), t.browptr.end() - 1);
  for (idx i = 0; i < nbrows; ++i) {
    for (nnz_t k = browptr[i]; k < browptr[i + 1]; ++k) {
      const nnz_t pos = next[bcolidx[k]]++;
      t.bcolidx[pos] = i;
      const real* src = vals.data() + static_cast<std::size_t>(k) * kBlockSize;
      real* dst = t.vals.data() + static_cast<std::size_t>(pos) * kBlockSize;
      for (int r = 0; r < BS; ++r) {
        for (int c = 0; c < BS; ++c) dst[c * BS + r] = src[r * BS + c];
      }
    }
  }
  return t;  // block columns sorted because block rows were walked in order
}

template <int BS>
std::vector<real> Bsr<BS>::diagonal() const {
  std::vector<real> d(static_cast<std::size_t>(rows()), real{0});
  const std::vector<real> blocks = block_diagonal();
  const idx n = std::min(nbrows, nbcols);
  for (idx i = 0; i < n; ++i) {
    for (int r = 0; r < BS; ++r) {
      d[static_cast<std::size_t>(i) * BS + r] =
          blocks[static_cast<std::size_t>(i) * kBlockSize + r * BS + r];
    }
  }
  return d;
}

template <int BS>
std::vector<real> Bsr<BS>::block_diagonal() const {
  std::vector<real> blocks(
      static_cast<std::size_t>(nbrows) * kBlockSize, real{0});
  const idx n = std::min(nbrows, nbcols);
  for (idx i = 0; i < n; ++i) {
    const auto begin = bcolidx.begin() + browptr[i];
    const auto end = bcolidx.begin() + browptr[i + 1];
    const auto it = std::lower_bound(begin, end, i);
    if (it == end || *it != i) continue;
    const std::size_t k = static_cast<std::size_t>(it - bcolidx.begin());
    std::copy_n(vals.begin() + k * kBlockSize, kBlockSize,
                blocks.begin() + static_cast<std::size_t>(i) * kBlockSize);
  }
  return blocks;
}

template <int BS>
std::vector<real> Bsr<BS>::inverted_block_diagonal() const {
  PROM_CHECK(nbrows == nbcols);
  std::vector<real> blocks = block_diagonal();
  std::vector<real> inv(blocks.size(), real{0});
  for (idx i = 0; i < nbrows; ++i) {
    const real* in = blocks.data() + static_cast<std::size_t>(i) * kBlockSize;
    real* out = inv.data() + static_cast<std::size_t>(i) * kBlockSize;
    bool zero = true;
    for (int e = 0; e < kBlockSize; ++e) zero = zero && in[e] == real{0};
    if (zero) {
      // No stored diagonal block: treat as identity so the point-block
      // smoothers stay well-defined on padding rows.
      for (int r = 0; r < BS; ++r) out[r * BS + r] = 1;
      continue;
    }
    PROM_CHECK_MSG(invert_block<BS>(in, out),
                   "singular diagonal node block in point-block smoother");
  }
  return inv;
}

template <int BS>
Csr Bsr<BS>::to_csr() const {
  Csr m;
  m.nrows = rows();
  m.ncols = cols();
  m.rowptr.assign(static_cast<std::size_t>(m.nrows) + 1, 0);
  for (idx i = 0; i < nbrows; ++i) {
    const nnz_t row_blocks = browptr[i + 1] - browptr[i];
    for (int r = 0; r < BS; ++r) {
      m.rowptr[static_cast<std::size_t>(i) * BS + r + 1] = row_blocks * BS;
    }
  }
  for (idx i = 0; i < m.nrows; ++i) m.rowptr[i + 1] += m.rowptr[i];
  m.colidx.resize(static_cast<std::size_t>(m.rowptr[m.nrows]));
  m.vals.resize(m.colidx.size());
  for (idx i = 0; i < nbrows; ++i) {
    for (int r = 0; r < BS; ++r) {
      nnz_t pos = m.rowptr[static_cast<std::size_t>(i) * BS + r];
      for (nnz_t k = browptr[i]; k < browptr[i + 1]; ++k) {
        const real* blk =
            vals.data() + static_cast<std::size_t>(k) * kBlockSize;
        for (int c = 0; c < BS; ++c) {
          m.colidx[pos] = bcolidx[k] * BS + c;
          m.vals[pos] = blk[r * BS + c];
          ++pos;
        }
      }
    }
  }
  return m;
}

template <int BS>
Bsr<BS> Bsr<BS>::from_csr(const Csr& a) {
  PROM_CHECK_MSG(a.nrows % BS == 0 && a.ncols % BS == 0,
                 "Bsr::from_csr needs dimensions divisible by the block size");
  Bsr m;
  m.nbrows = a.nrows / BS;
  m.nbcols = a.ncols / BS;
  m.browptr.assign(static_cast<std::size_t>(m.nbrows) + 1, 0);
  // Pass 1: per block row, the sorted union of the scalar rows' block
  // columns (scalar columns are sorted, so each row contributes a sorted
  // run and a merge via marker + sort stays cheap).
  std::vector<idx> marker(static_cast<std::size_t>(m.nbcols), kInvalidIdx);
  std::vector<std::vector<idx>> row_bcols(static_cast<std::size_t>(m.nbrows));
  for (idx bi = 0; bi < m.nbrows; ++bi) {
    auto& bcols = row_bcols[bi];
    for (int r = 0; r < BS; ++r) {
      const idx i = bi * BS + r;
      for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
        const idx bj = a.colidx[k] / BS;
        if (marker[bj] != bi) {
          marker[bj] = bi;
          bcols.push_back(bj);
        }
      }
    }
    std::sort(bcols.begin(), bcols.end());
    m.browptr[bi + 1] = m.browptr[bi] + static_cast<nnz_t>(bcols.size());
  }
  m.bcolidx.resize(static_cast<std::size_t>(m.browptr[m.nbrows]));
  m.vals.assign(m.bcolidx.size() * kBlockSize, real{0});
  // Pass 2: scatter values into their blocks.
  for (idx bi = 0; bi < m.nbrows; ++bi) {
    const nnz_t base = m.browptr[bi];
    const auto& bcols = row_bcols[bi];
    std::copy(bcols.begin(), bcols.end(), m.bcolidx.begin() + base);
    for (int r = 0; r < BS; ++r) {
      const idx i = bi * BS + r;
      for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
        const idx bj = a.colidx[k] / BS;
        const auto it = std::lower_bound(bcols.begin(), bcols.end(), bj);
        const nnz_t pos = base + static_cast<nnz_t>(it - bcols.begin());
        m.vals[static_cast<std::size_t>(pos) * kBlockSize + r * BS +
               a.colidx[k] % BS] = a.vals[k];
      }
    }
  }
  return m;
}

template <int BS>
Bsr<BS> Bsr<BS>::from_block_triplets(
    idx nbrows, idx nbcols, std::span<const BlockTriplet<BS>> triplets) {
  std::vector<const BlockTriplet<BS>*> t;
  t.reserve(triplets.size());
  for (const auto& bt : triplets) t.push_back(&bt);
  // Stable, so duplicate blocks sum in emission order — callers (FE
  // assembly) rely on that for thread-count-independent rounding.
  std::stable_sort(t.begin(), t.end(),
                   [](const BlockTriplet<BS>* a, const BlockTriplet<BS>* b) {
                     return a->brow != b->brow ? a->brow < b->brow
                                               : a->bcol < b->bcol;
                   });
  Bsr m;
  m.nbrows = nbrows;
  m.nbcols = nbcols;
  m.browptr.assign(static_cast<std::size_t>(nbrows) + 1, 0);
  for (std::size_t i = 0; i < t.size();) {
    const idx brow = t[i]->brow, bcol = t[i]->bcol;
    PROM_CHECK(brow >= 0 && brow < nbrows && bcol >= 0 && bcol < nbcols);
    std::array<real, kBlockSize> sum{};
    while (i < t.size() && t[i]->brow == brow && t[i]->bcol == bcol) {
      for (int e = 0; e < kBlockSize; ++e) sum[e] += t[i]->v[e];
      ++i;
    }
    m.bcolidx.push_back(bcol);
    m.vals.insert(m.vals.end(), sum.begin(), sum.end());
    m.browptr[brow + 1] = static_cast<nnz_t>(m.bcolidx.size());
  }
  for (idx r = 0; r < nbrows; ++r) {
    m.browptr[r + 1] = std::max(m.browptr[r + 1], m.browptr[r]);
  }
  return m;
}

template <int BS>
Bsr<BS> spgemm(const Bsr<BS>& a, const Bsr<BS>& b) {
  PROM_CHECK(a.nbcols == b.nbrows);
  constexpr int kBlockSize = BS * BS;
  Bsr<BS> c;
  c.nbrows = a.nbrows;
  c.nbcols = b.nbcols;
  c.browptr.assign(static_cast<std::size_t>(a.nbrows) + 1, 0);

  // Block-row-parallel Gustavson, mirroring la/csr.cpp's scalar spgemm:
  // fixed chunks of block rows accumulate into private dense-block
  // buffers (each row's accumulation order matches the serial algorithm,
  // so results are bit-identical for any thread count), then the chunk
  // outputs are concatenated in chunk order.
  struct ChunkOut {
    std::vector<idx> bcols;
    std::vector<real> vals;
    std::vector<nnz_t> row_nblocks;
    std::int64_t flops = 0;
  };
  const idx nchunks = common::chunk_count(0, a.nbrows, kBlockSpgemmGrain);
  std::vector<ChunkOut> outs(static_cast<std::size_t>(nchunks));
  common::parallel_for(0, a.nbrows, kBlockSpgemmGrain, [&](idx rb, idx re) {
    ChunkOut& out = outs[rb / kBlockSpgemmGrain];
    out.row_nblocks.reserve(static_cast<std::size_t>(re - rb));
    std::vector<real> acc(static_cast<std::size_t>(b.nbcols) * kBlockSize,
                          real{0});
    std::vector<idx> marker(static_cast<std::size_t>(b.nbcols), kInvalidIdx);
    std::vector<idx> bcols_in_row;
    for (idx i = rb; i < re; ++i) {
      bcols_in_row.clear();
      for (nnz_t ka = a.browptr[i]; ka < a.browptr[i + 1]; ++ka) {
        const idx j = a.bcolidx[ka];
        const real* ab =
            a.vals.data() + static_cast<std::size_t>(ka) * kBlockSize;
        for (nnz_t kb = b.browptr[j]; kb < b.browptr[j + 1]; ++kb) {
          const idx col = b.bcolidx[kb];
          real* cb = acc.data() + static_cast<std::size_t>(col) * kBlockSize;
          if (marker[col] != i) {
            marker[col] = i;
            std::fill_n(cb, kBlockSize, real{0});
            bcols_in_row.push_back(col);
          }
          const real* bb =
              b.vals.data() + static_cast<std::size_t>(kb) * kBlockSize;
          for (int r = 0; r < BS; ++r) {
            for (int cc = 0; cc < BS; ++cc) {
              real sum = cb[r * BS + cc];
              for (int q = 0; q < BS; ++q) {
                sum += ab[r * BS + q] * bb[q * BS + cc];
              }
              cb[r * BS + cc] = sum;
            }
          }
          out.flops += 2 * BS * kBlockSize;
        }
      }
      std::sort(bcols_in_row.begin(), bcols_in_row.end());
      for (idx col : bcols_in_row) {
        out.bcols.push_back(col);
        const real* cb = acc.data() + static_cast<std::size_t>(col) * kBlockSize;
        out.vals.insert(out.vals.end(), cb, cb + kBlockSize);
      }
      out.row_nblocks.push_back(static_cast<nnz_t>(bcols_in_row.size()));
    }
  });

  std::int64_t flops = 0;
  std::vector<nnz_t> chunk_offset(static_cast<std::size_t>(nchunks) + 1, 0);
  for (idx ch = 0; ch < nchunks; ++ch) {
    const ChunkOut& out = outs[ch];
    flops += out.flops;
    chunk_offset[ch + 1] =
        chunk_offset[ch] + static_cast<nnz_t>(out.bcols.size());
    for (std::size_t r = 0; r < out.row_nblocks.size(); ++r) {
      const idx i = ch * kBlockSpgemmGrain + static_cast<idx>(r);
      c.browptr[i + 1] = c.browptr[i] + out.row_nblocks[r];
    }
  }
  c.bcolidx.resize(static_cast<std::size_t>(chunk_offset[nchunks]));
  c.vals.resize(c.bcolidx.size() * kBlockSize);
  common::parallel_for(0, nchunks, 1, [&](idx cb, idx ce) {
    for (idx ch = cb; ch < ce; ++ch) {
      std::copy(outs[ch].bcols.begin(), outs[ch].bcols.end(),
                c.bcolidx.begin() + chunk_offset[ch]);
      std::copy(outs[ch].vals.begin(), outs[ch].vals.end(),
                c.vals.begin() +
                    static_cast<std::size_t>(chunk_offset[ch]) * kBlockSize);
    }
  });
  count_flops(flops);
  return c;
}

template <int BS>
Bsr<BS> galerkin_product(const Bsr<BS>& r, const Bsr<BS>& a) {
  PROM_CHECK(r.nbcols == a.nbrows && a.nbrows == a.nbcols);
  const Bsr<BS> rt = r.transposed();
  const Bsr<BS> art = spgemm(a, rt);
  return spgemm(r, art);
}

template struct Bsr<3>;
template Bsr<3> spgemm<3>(const Bsr<3>&, const Bsr<3>&);
template Bsr<3> galerkin_product<3>(const Bsr<3>&, const Bsr<3>&);

namespace {
constexpr idx kMapGrain = 8192;  // elementwise gather/scatter chunks
}

void NodeBlockMap::gather(std::span<const real> free_vec,
                          std::span<real> slots) const {
  PROM_CHECK(static_cast<idx>(free_vec.size()) == nfree &&
             static_cast<idx>(slots.size()) == nslots());
  common::parallel_for(0, nslots(), kMapGrain, [&](idx sb, idx se) {
    for (idx s = sb; s < se; ++s) {
      const idx f = free_of_slot[s];
      slots[s] = f == kInvalidIdx ? real{0} : free_vec[f];
    }
  });
}

void NodeBlockMap::scatter(std::span<const real> slots,
                           std::span<real> free_vec) const {
  PROM_CHECK(static_cast<idx>(free_vec.size()) == nfree &&
             static_cast<idx>(slots.size()) == nslots());
  common::parallel_for(0, nfree, kMapGrain, [&](idx fb, idx fe) {
    for (idx f = fb; f < fe; ++f) free_vec[f] = slots[slot_of_free[f]];
  });
}

NodeBlockMap node_block_map(std::span<const idx> free_dofs) {
  NodeBlockMap m;
  m.nfree = static_cast<idx>(free_dofs.size());
  m.slot_of_free.resize(free_dofs.size());
  idx prev_vertex = kInvalidIdx;
  for (std::size_t i = 0; i < free_dofs.size(); ++i) {
    const idx v = free_dofs[i] / kDofPerVertex;
    const idx c = free_dofs[i] % kDofPerVertex;
    PROM_CHECK_MSG(v >= prev_vertex, "free_dofs must be ascending");
    if (v != prev_vertex) {
      m.vertex_of_node.push_back(v);
      prev_vertex = v;
    }
    const idx node = static_cast<idx>(m.vertex_of_node.size()) - 1;
    m.slot_of_free[i] = kDofPerVertex * node + c;
  }
  m.nnodes = static_cast<idx>(m.vertex_of_node.size());
  m.free_of_slot.assign(static_cast<std::size_t>(m.nslots()), kInvalidIdx);
  for (idx f = 0; f < m.nfree; ++f) m.free_of_slot[m.slot_of_free[f]] = f;
  return m;
}

Bsr3 bsr_from_free_csr(const Csr& a, const NodeBlockMap& map) {
  PROM_CHECK(a.nrows == map.nfree && a.ncols == map.nfree);
  constexpr int BS = kDofPerVertex;
  constexpr int kBlockSize = BS * BS;
  Bsr3 m;
  m.nbrows = map.nnodes;
  m.nbcols = map.nnodes;
  m.browptr.assign(static_cast<std::size_t>(map.nnodes) + 1, 0);
  // slot_of_free is strictly increasing, so a free row's sorted columns
  // map to nondecreasing block columns; the per-block-row union is built
  // with a marker and sorted (small rows). The diagonal block is always
  // inserted so padded components get their identity pivot.
  std::vector<idx> marker(static_cast<std::size_t>(map.nnodes), kInvalidIdx);
  std::vector<std::vector<idx>> row_bcols(
      static_cast<std::size_t>(map.nnodes));
  for (idx bi = 0; bi < map.nnodes; ++bi) {
    auto& bcols = row_bcols[bi];
    marker[bi] = bi;
    bcols.push_back(bi);
    for (int r = 0; r < BS; ++r) {
      const idx i = map.free_of_slot[static_cast<std::size_t>(bi) * BS + r];
      if (i == kInvalidIdx) continue;
      for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
        const idx bj = map.slot_of_free[a.colidx[k]] / BS;
        if (marker[bj] != bi) {
          marker[bj] = bi;
          bcols.push_back(bj);
        }
      }
    }
    std::sort(bcols.begin(), bcols.end());
    m.browptr[bi + 1] = m.browptr[bi] + static_cast<nnz_t>(bcols.size());
  }
  m.bcolidx.resize(static_cast<std::size_t>(m.browptr[map.nnodes]));
  m.vals.assign(m.bcolidx.size() * kBlockSize, real{0});
  for (idx bi = 0; bi < map.nnodes; ++bi) {
    const nnz_t base = m.browptr[bi];
    const auto& bcols = row_bcols[bi];
    std::copy(bcols.begin(), bcols.end(), m.bcolidx.begin() + base);
    for (int r = 0; r < BS; ++r) {
      const idx slot = static_cast<idx>(bi) * BS + r;
      const idx i = map.free_of_slot[slot];
      if (i == kInvalidIdx) {
        // Padding row: a 1 on the padded diagonal slot keeps the diagonal
        // block invertible; the padded x entry is always 0, so SpMV on the
        // free sub-operator is unaffected.
        const auto it = std::lower_bound(bcols.begin(), bcols.end(), bi);
        const nnz_t pos = base + static_cast<nnz_t>(it - bcols.begin());
        m.vals[static_cast<std::size_t>(pos) * kBlockSize + r * BS + r] = 1;
        continue;
      }
      for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
        const idx cslot = map.slot_of_free[a.colidx[k]];
        const auto it = std::lower_bound(bcols.begin(), bcols.end(),
                                         cslot / BS);
        const nnz_t pos = base + static_cast<nnz_t>(it - bcols.begin());
        m.vals[static_cast<std::size_t>(pos) * kBlockSize + r * BS +
               cslot % BS] = a.vals[k];
      }
    }
  }
  return m;
}

BsrOperator::BsrOperator(Bsr3 a, NodeBlockMap map)
    : a_(std::move(a)), map_(std::move(map)) {
  PROM_CHECK(a_.nbrows == map_.nnodes && a_.nbcols == map_.nnodes);
}

void BsrOperator::apply(std::span<const real> x, std::span<real> y) const {
  const std::size_t ns = static_cast<std::size_t>(map_.nslots());
  std::vector<real> xs(ns), ys(ns);
  map_.gather(x, xs);
  a_.spmv(xs, ys);
  map_.scatter(ys, y);
}

void BsrOperator::apply_mv(const MultiVec& x, MultiVec& y) const {
  const idx ns = map_.nslots();
  const int ncol = x.cols();
  MultiVec xs(ns, ncol), ys(ns, ncol);
  for (int j = 0; j < ncol; ++j) map_.gather(x.col(j), xs.col(j));
  a_.spmm(xs, ys);
  for (int j = 0; j < ncol; ++j) map_.scatter(ys.col(j), y.col(j));
}

void BsrOperator::residual(std::span<const real> b, std::span<const real> x,
                           std::span<real> r) const {
  const std::size_t ns = static_cast<std::size_t>(map_.nslots());
  std::vector<real> xs(ns), bs(ns), rs(ns);
  map_.gather(x, xs);
  map_.gather(b, bs);
  a_.residual(bs, xs, rs);
  map_.scatter(rs, r);
}

void BsrOperator::residual_mv(const MultiVec& b, const MultiVec& x,
                              MultiVec& r) const {
  const idx ns = map_.nslots();
  const int ncol = x.cols();
  MultiVec xs(ns, ncol), bs(ns, ncol), rs(ns, ncol);
  for (int j = 0; j < ncol; ++j) {
    map_.gather(x.col(j), xs.col(j));
    map_.gather(b.col(j), bs.col(j));
  }
  a_.residual_mv(bs, xs, rs);
  for (int j = 0; j < ncol; ++j) map_.scatter(rs.col(j), r.col(j));
}

}  // namespace prom::la
