# Empty dependencies file for bench_direct_vs_mg.
# This may be replaced when dependencies are built.
