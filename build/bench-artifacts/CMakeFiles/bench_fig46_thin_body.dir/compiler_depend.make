# Empty compiler generated dependencies file for bench_fig46_thin_body.
# This may be replaced when dependencies are built.
