// Golden-history regressions for the scalar equation classes through the
// solve service: the jump-coefficient Poisson problem (MG-PCG) and the
// SUPG advection-diffusion problem (MG-GMRES) on 2 virtual ranks must
// reproduce their committed residual histories
// (tests/golden/poisson_het.json, tests/golden/advdiff.json — obs::Report
// files), catching any change to the scalar assembly, the block-size-1
// hierarchy, or the non-symmetric Krylov drivers that alters convergence.
// Cached repeat requests must carry no setup spans (the service contract).
// Regenerate after an *intentional* change with PROM_UPDATE_GOLDEN=1.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "app/driver.h"
#include "app/service.h"
#include "obs/report.h"
#include "obs/trace.h"

#ifndef PROM_GOLDEN_DIR
#error "PROM_GOLDEN_DIR must point at the committed golden files"
#endif

namespace prom {
namespace {

struct GoldenCase {
  const char* name;         ///< golden file stem and mesh id
  app::EquationClass eq;
  const char* series;       ///< obs residual series of the expected driver
};

struct ServiceOutcome {
  app::SolveResponse cold;
  app::SolveResponse warm;
  obs::Report cold_report;  ///< tracing window around the cold request
  obs::Report warm_report;  ///< tracing window around the cached request
};

app::ModelProblem make_problem(app::EquationClass eq) {
  return eq == app::EquationClass::kPoissonHet
             ? app::make_poisson_het_problem(8, 1e3)
             : app::make_advdiff_problem(8, 10.0);
}

ServiceOutcome run_case(const GoldenCase& c) {
  app::ServiceConfig sc;
  sc.nranks = 2;
  sc.mg = app::default_mg_options(c.eq);
  sc.mg.coarsest_max_dofs = 60;
  app::SolveService service(sc);
  service.register_problem(c.name, make_problem(c.eq));

  app::SolveRequest req;
  req.mesh_id = c.name;
  req.rtol = 1e-8;
  req.max_iters = 200;
  req.track_history = true;

  obs::Tracer& tracer = obs::Tracer::instance();
  const bool was_tracing = obs::tracing();
  ServiceOutcome out;

  tracer.set_enabled(true);
  std::int64_t mark = obs::Tracer::now_ns();
  out.cold = service.solve(req);
  out.cold_report = obs::build_report(mark);

  mark = obs::Tracer::now_ns();
  out.warm = service.solve(req);
  out.warm_report = obs::build_report(mark);
  tracer.set_enabled(was_tracing);
  return out;
}

const std::vector<double>& residual_series(const obs::Report& rep,
                                           const char* name) {
  const obs::SeriesEntry* s = rep.find_series(name);
  EXPECT_NE(s, nullptr) << "report lacks the " << name << " series";
  static const std::vector<double> empty;
  return s != nullptr ? s->values : empty;
}

class EquationsGolden : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(EquationsGolden, MatchesCommittedHistoryAndSkipsCachedSetup) {
  const GoldenCase& c = GetParam();
  const ServiceOutcome out = run_case(c);
  ASSERT_EQ(out.cold.results.size(), 1u);
  ASSERT_TRUE(out.cold.results[0].converged);
  EXPECT_FALSE(out.cold.cache_hit);

  // The cold request emits every setup phase; the cached one none of them
  // (its window must hold only the solve).
  for (const char* phase :
       {"partition", "fine_grid", "mesh_setup", "matrix_setup"}) {
    EXPECT_NE(out.cold_report.phase(phase), nullptr) << phase;
    EXPECT_EQ(out.warm_report.phase(phase), nullptr) << phase;
  }
  EXPECT_NE(out.warm_report.phase("solve"), nullptr);
  EXPECT_TRUE(out.warm.cache_hit);
  ASSERT_TRUE(out.warm.results[0].converged);
  EXPECT_EQ(out.warm.results[0].iterations, out.cold.results[0].iterations);

  // The residual series of the expected Krylov driver — and no other.
  const std::vector<double>& hist = residual_series(out.cold_report, c.series);
  ASSERT_FALSE(hist.empty());
  const char* other = c.eq == app::EquationClass::kPoissonHet
                          ? "gmres.residual"
                          : "pcg.residual";
  EXPECT_EQ(out.cold_report.find_series(other), nullptr)
      << "unexpected " << other << " series";

  const std::string path =
      std::string(PROM_GOLDEN_DIR) + "/" + c.name + ".json";
  if (std::getenv("PROM_UPDATE_GOLDEN") != nullptr) {
    out.cold_report.write_json(path);
    GTEST_SKIP() << "golden file regenerated at " << path;
  }
  const obs::Report golden = obs::Report::read_json(path);
  const std::vector<double>& hg = residual_series(golden, c.series);
  ASSERT_EQ(hist.size(), hg.size())
      << "iteration count drifted from the golden history; if intended, "
         "regenerate with PROM_UPDATE_GOLDEN=1";
  // The report writer serializes at 9 significant digits, so the committed
  // values carry ~5e-10 relative rounding; 1e-8 still pins the history.
  for (std::size_t i = 0; i < hg.size(); ++i) {
    EXPECT_NEAR(hist[i], hg[i], 1e-8 * hg[0]) << "golden entry " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Classes, EquationsGolden,
    ::testing::Values(
        GoldenCase{"poisson_het", app::EquationClass::kPoissonHet,
                   "pcg.residual"},
        GoldenCase{"advdiff", app::EquationClass::kAdvDiff,
                   "gmres.residual"}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace prom
