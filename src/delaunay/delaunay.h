// Incremental (Bowyer–Watson) 3D Delaunay tetrahedralization, the
// remeshing engine of §4.8: "We use a standard Delaunay meshing algorithm
// ... by placing a bounding box around the coarse grid vertices, then
// meshing this to produce a mesh that covers all fine grid vertices."
//
// The mesher seeds the triangulation with the 8 corners of an enlarged
// bounding box ("super-box"), inserts the input points one at a time, and
// keeps the super-box tetrahedra in the structure — the caller classifies
// fine vertices that land in super-box tetrahedra as "lost" (lost_list of
// §4.8) and assigns them interpolants from a nearby element instead.
//
// Robustness: all orientation/circumsphere decisions go through the exact
// predicates in geom/predicates.h. Inputs may optionally be jittered by a
// deterministic relative perturbation to keep exactly-degenerate
// (cospherical lattice) configurations off the slow exact path; the
// perturbation is orders of magnitude below the interpolation accuracy the
// multigrid restriction needs.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "common/config.h"
#include "geom/aabb.h"
#include "geom/vec3.h"

namespace prom::delaunay {

struct Tet {
  std::array<idx, 4> v;    ///< vertex ids, positively oriented
  std::array<idx, 4> nbr;  ///< nbr[i] = tet across the face opposite v[i]
  bool alive = true;
};

struct DelaunayOptions {
  /// Relative jitter magnitude (times the bounding-box extent) applied
  /// to the points used for predicate evaluation; 0 disables. Large enough
  /// that sliver tetrahedra between exactly-cospherical lattice points get
  /// numerically usable volumes, small enough that linear interpolation is
  /// unaffected at working accuracy.
  real jitter = 1e-6;
  /// Super-box inflation factor around the point bounding box.
  real super_box_scale = 10.0;
};

class Delaunay3 {
 public:
  /// Triangulates `points`. Point i becomes vertex id 8 + i (ids 0..7 are
  /// the super-box corners). Duplicate points are not supported.
  explicit Delaunay3(std::span<const Vec3> points,
                     const DelaunayOptions& opts = {});

  idx num_input_points() const { return num_points_; }

  /// True if vertex id belongs to the super-box.
  bool is_super_vertex(idx v) const { return v < 8; }

  /// Input point index of vertex id (requires !is_super_vertex).
  idx point_of_vertex(idx v) const { return v - 8; }

  /// All alive tetrahedra (including those touching super-box vertices).
  const std::vector<Tet>& tets() const { return tets_; }
  bool tet_alive(idx t) const { return tets_[t].alive; }

  /// True if tet t touches a super-box vertex.
  bool tet_touches_super(idx t) const;

  /// Locates the alive tet containing p (walks from `hint` if valid,
  /// otherwise from the last inserted tet). Points on shared faces may
  /// return either incident tet.
  idx locate(const Vec3& p, idx hint = kInvalidIdx) const;

  /// Barycentric coordinates of p in tet t (sum to 1; components may be
  /// slightly negative for p outside t). Uses the *unjittered* original
  /// coordinates for super-box corners and jittered-free math otherwise.
  std::array<real, 4> barycentric(idx t, const Vec3& p) const;

  /// The coordinates the triangulation actually used (jittered).
  const std::vector<Vec3>& vertex_coords() const { return coords_; }

  /// Verifies the empty-circumsphere property over all alive tets
  /// (O(n_tets * n_points) — tests only). Returns number of violations.
  idx count_delaunay_violations() const;

  /// Number of alive tets.
  idx num_alive_tets() const;

 private:
  void insert_point(idx vertex_id);
  idx walk_from(idx start, const Vec3& p) const;
  bool point_in_tet(idx t, const Vec3& p) const;

  std::vector<Vec3> coords_;  ///< super-box corners + (jittered) points
  std::vector<Tet> tets_;
  idx num_points_ = 0;
  idx last_tet_ = 0;  ///< walk hint
};

}  // namespace prom::delaunay
