# Empty compiler generated dependencies file for prom_delaunay.
# This may be replaced when dependencies are built.
