#include "geom/predicates.h"

#include <atomic>
#include <cmath>
#include <vector>

namespace prom {
namespace {

// Machine epsilon in Shewchuk's convention: half an ulp of 1.0. All error
// bound constants below are taken from "Adaptive Precision Floating-Point
// Arithmetic and Fast Robust Geometric Predicates" (1997), stage-A filters.
constexpr real kEps = 0x1p-53;
constexpr real kO3dErrBoundA = (7.0 + 56.0 * kEps) * kEps;
constexpr real kIspErrBoundA = (16.0 + 224.0 * kEps) * kEps;

std::atomic<long> g_orient3d_exact{0};
std::atomic<long> g_insphere_exact{0};

// ---------------------------------------------------------------------------
// Expansion arithmetic. An expansion is a sum of doubles stored in order of
// increasing magnitude whose components are nonoverlapping, so the sign of
// the expansion equals the sign of its largest (last nonzero) component.
// The operations below (two_sum / two_diff / two_prod / grow / scale)
// preserve that invariant (Shewchuk, Theorems 6, 10, 19).
// ---------------------------------------------------------------------------

using Expansion = std::vector<real>;

inline void two_sum(real a, real b, real& x, real& y) {
  x = a + b;
  const real bv = x - a;
  const real av = x - bv;
  y = (a - av) + (b - bv);
}

inline void two_diff(real a, real b, real& x, real& y) {
  x = a - b;
  const real bv = a - x;
  const real av = x + bv;
  y = (a - av) - (b - bv);
}

inline void two_prod(real a, real b, real& x, real& y) {
  x = a * b;
  y = std::fma(a, b, -x);
}

/// e + b, where e is an expansion and b a single double.
Expansion grow_expansion(const Expansion& e, real b) {
  Expansion h;
  h.reserve(e.size() + 1);
  real q = b;
  for (real ei : e) {
    real sum, err;
    two_sum(q, ei, sum, err);
    if (err != 0) h.push_back(err);
    q = sum;
  }
  h.push_back(q);
  return h;
}

/// e + f (expansion + expansion).
Expansion expansion_sum(const Expansion& e, const Expansion& f) {
  Expansion h = e;
  for (real fi : f) h = grow_expansion(h, fi);
  return h;
}

/// e * b (expansion times a single double).
Expansion scale_expansion(const Expansion& e, real b) {
  Expansion h;
  h.reserve(2 * e.size());
  for (real ei : e) {
    real p, perr;
    two_prod(ei, b, p, perr);
    Expansion term;
    if (perr != 0) term.push_back(perr);
    term.push_back(p);
    h = h.empty() ? term : expansion_sum(h, term);
  }
  if (h.empty()) h.push_back(0);
  return h;
}

/// e * f (expansion times expansion).
Expansion expansion_mul(const Expansion& e, const Expansion& f) {
  Expansion h{0};
  for (real fi : f) h = expansion_sum(h, scale_expansion(e, fi));
  return h;
}

Expansion expansion_neg(Expansion e) {
  for (real& v : e) v = -v;
  return e;
}

Expansion expansion_diff(const Expansion& e, const Expansion& f) {
  return expansion_sum(e, expansion_neg(f));
}

/// Most significant component (0 for the zero expansion); its sign is the
/// sign of the whole (nonoverlapping) expansion.
real expansion_estimate(const Expansion& e) {
  for (auto it = e.rbegin(); it != e.rend(); ++it) {
    if (*it != 0) return *it;
  }
  return 0;
}

/// Exact a - b as a length-2 expansion.
Expansion exact_diff(real a, real b) {
  real x, y;
  two_diff(a, b, x, y);
  Expansion e;
  if (y != 0) e.push_back(y);
  e.push_back(x);
  return e;
}

/// 2x2 determinant p*s - q*r of four expansions.
Expansion det2(const Expansion& p, const Expansion& q, const Expansion& r,
               const Expansion& s) {
  return expansion_diff(expansion_mul(p, s), expansion_mul(q, r));
}

/// 3x3 determinant of expansion entries (rows u, v, w).
Expansion det3(const Expansion& u0, const Expansion& u1, const Expansion& u2,
               const Expansion& v0, const Expansion& v1, const Expansion& v2,
               const Expansion& w0, const Expansion& w1, const Expansion& w2) {
  Expansion t0 = expansion_mul(u0, det2(v1, v2, w1, w2));
  Expansion t1 = expansion_mul(u1, det2(v0, v2, w0, w2));
  Expansion t2 = expansion_mul(u2, det2(v0, v1, w0, w1));
  return expansion_sum(expansion_diff(t0, t1), t2);
}

real orient3d_exact(const Vec3& a, const Vec3& b, const Vec3& c,
                    const Vec3& d) {
  g_orient3d_exact.fetch_add(1, std::memory_order_relaxed);
  const Expansion adx = exact_diff(a.x, d.x), ady = exact_diff(a.y, d.y),
                  adz = exact_diff(a.z, d.z);
  const Expansion bdx = exact_diff(b.x, d.x), bdy = exact_diff(b.y, d.y),
                  bdz = exact_diff(b.z, d.z);
  const Expansion cdx = exact_diff(c.x, d.x), cdy = exact_diff(c.y, d.y),
                  cdz = exact_diff(c.z, d.z);
  const Expansion det =
      det3(adx, ady, adz, bdx, bdy, bdz, cdx, cdy, cdz);
  return expansion_estimate(det);
}

real insphere_exact(const Vec3& a, const Vec3& b, const Vec3& c,
                    const Vec3& d, const Vec3& e) {
  g_insphere_exact.fetch_add(1, std::memory_order_relaxed);
  // Row entries relative to e; lift(p) = |p - e|^2 computed exactly.
  const Vec3* pts[4] = {&a, &b, &c, &d};
  Expansion dx[4], dy[4], dz[4], lift[4];
  for (int i = 0; i < 4; ++i) {
    dx[i] = exact_diff(pts[i]->x, e.x);
    dy[i] = exact_diff(pts[i]->y, e.y);
    dz[i] = exact_diff(pts[i]->z, e.z);
    lift[i] = expansion_sum(expansion_mul(dx[i], dx[i]),
                            expansion_sum(expansion_mul(dy[i], dy[i]),
                                          expansion_mul(dz[i], dz[i])));
  }
  // Cofactor expansion of the 4x4 determinant along the lift column:
  //   det = -lift0*D0 + lift1*D1 - lift2*D2 + lift3*D3
  // where Di is the 3x3 minor of the coordinate rows with row i removed,
  // matching the standard insphere sign convention.
  auto minor = [&](int skip) {
    int r[3], k = 0;
    for (int i = 0; i < 4; ++i) {
      if (i != skip) r[k++] = i;
    }
    return det3(dx[r[0]], dy[r[0]], dz[r[0]], dx[r[1]], dy[r[1]], dz[r[1]],
                dx[r[2]], dy[r[2]], dz[r[2]]);
  };
  Expansion det = expansion_neg(expansion_mul(lift[0], minor(0)));
  det = expansion_sum(det, expansion_mul(lift[1], minor(1)));
  det = expansion_diff(det, expansion_mul(lift[2], minor(2)));
  det = expansion_sum(det, expansion_mul(lift[3], minor(3)));
  return expansion_estimate(det);
}

}  // namespace

real orient3d(const Vec3& a_in, const Vec3& b_in, const Vec3& c, const Vec3& d) {
  // Conventional sign (positive for the standard unit tetrahedron, i.e.
  // det[b-a, c-a, d-a] > 0) is the negative of Shewchuk's determinant of
  // [a-d; b-d; c-d]; swapping the first two arguments implements the
  // negation exactly in both the filtered and the exact path.
  const Vec3& a = b_in;
  const Vec3& b = a_in;
  const real adx = a.x - d.x, ady = a.y - d.y, adz = a.z - d.z;
  const real bdx = b.x - d.x, bdy = b.y - d.y, bdz = b.z - d.z;
  const real cdx = c.x - d.x, cdy = c.y - d.y, cdz = c.z - d.z;

  const real bdxcdy = bdx * cdy, bdycdx = bdy * cdx;
  const real bdycdz = bdy * cdz, bdzcdy = bdz * cdy;
  const real bdzcdx = bdz * cdx, bdxcdz = bdx * cdz;

  const real det = adx * (bdycdz - bdzcdy) + ady * (bdzcdx - bdxcdz) +
                   adz * (bdxcdy - bdycdx);

  const real permanent = (std::fabs(bdycdz) + std::fabs(bdzcdy)) *
                             std::fabs(adx) +
                         (std::fabs(bdzcdx) + std::fabs(bdxcdz)) *
                             std::fabs(ady) +
                         (std::fabs(bdxcdy) + std::fabs(bdycdx)) *
                             std::fabs(adz);
  const real errbound = kO3dErrBoundA * permanent;
  if (det > errbound || -det > errbound) return det;
  return orient3d_exact(a, b, c, d);
}

real insphere(const Vec3& a_in, const Vec3& b_in, const Vec3& c,
              const Vec3& d, const Vec3& e) {
  // Same argument swap as orient3d: keeps "insphere > 0 iff e inside the
  // circumsphere" tied to the conventional positive orientation.
  const Vec3& a = b_in;
  const Vec3& b = a_in;
  const real aex = a.x - e.x, aey = a.y - e.y, aez = a.z - e.z;
  const real bex = b.x - e.x, bey = b.y - e.y, bez = b.z - e.z;
  const real cex = c.x - e.x, cey = c.y - e.y, cez = c.z - e.z;
  const real dex = d.x - e.x, dey = d.y - e.y, dez = d.z - e.z;

  const real ab = aex * bey - bex * aey;
  const real bc = bex * cey - cex * bey;
  const real cd = cex * dey - dex * cey;
  const real da = dex * aey - aex * dey;
  const real ac = aex * cey - cex * aey;
  const real bd = bex * dey - dex * bey;

  const real abc = aez * bc - bez * ac + cez * ab;
  const real bcd = bez * cd - cez * bd + dez * bc;
  const real cda = cez * da + dez * ac + aez * cd;
  const real dab = dez * ab + aez * bd + bez * da;

  const real alift = aex * aex + aey * aey + aez * aez;
  const real blift = bex * bex + bey * bey + bez * bez;
  const real clift = cex * cex + cey * cey + cez * cez;
  const real dlift = dex * dex + dey * dey + dez * dez;

  const real det = (dlift * abc - clift * dab) + (blift * cda - alift * bcd);

  const real aezplus = std::fabs(aez), bezplus = std::fabs(bez);
  const real cezplus = std::fabs(cez), dezplus = std::fabs(dez);
  const real aexbeyplus = std::fabs(aex * bey), bexaeyplus = std::fabs(bex * aey);
  const real bexceyplus = std::fabs(bex * cey), cexbeyplus = std::fabs(cex * bey);
  const real cexdeyplus = std::fabs(cex * dey), dexceyplus = std::fabs(dex * cey);
  const real dexaeyplus = std::fabs(dex * aey), aexdeyplus = std::fabs(aex * dey);
  const real aexceyplus = std::fabs(aex * cey), cexaeyplus = std::fabs(cex * aey);
  const real bexdeyplus = std::fabs(bex * dey), dexbeyplus = std::fabs(dex * bey);
  const real permanent =
      ((cexdeyplus + dexceyplus) * bezplus +
       (dexbeyplus + bexdeyplus) * cezplus +
       (bexceyplus + cexbeyplus) * dezplus) *
          alift +
      ((dexaeyplus + aexdeyplus) * cezplus +
       (aexceyplus + cexaeyplus) * dezplus +
       (cexdeyplus + dexceyplus) * aezplus) *
          blift +
      ((aexbeyplus + bexaeyplus) * dezplus +
       (bexdeyplus + dexbeyplus) * aezplus +
       (dexaeyplus + aexdeyplus) * bezplus) *
          clift +
      ((bexceyplus + cexbeyplus) * aezplus +
       (cexaeyplus + aexceyplus) * bezplus +
       (aexbeyplus + bexaeyplus) * cezplus) *
          dlift;
  const real errbound = kIspErrBoundA * permanent;
  if (det > errbound || -det > errbound) return det;
  return insphere_exact(a, b, c, d, e);
}

PredicateStats predicate_stats() {
  return {g_orient3d_exact.load(), g_insphere_exact.load()};
}

void reset_predicate_stats() {
  g_orient3d_exact = 0;
  g_insphere_exact = 0;
}

}  // namespace prom
