// Flat mesh file I/O — the Athena input stage of §5: "Athena reads a
// large 'flat' finite element mesh input file in parallel (ie, each
// processor seeks and reads only the part of the input file that it, and
// it alone, is responsible for)".
//
// The format is a fixed-width text format designed for seekability: a one
// line header, then one fixed-width line per vertex and per cell, so rank
// r can compute the byte offset of its slice and read only that. Fixed
// width costs space but buys O(1) seeking without an index — the property
// Athena's parallel reader depends on.
//
//   prom-mesh 1 <hex8|tet4> <num_vertices> <num_cells>
//   <x> <y> <z>                          (num_vertices lines, %24.16e each)
//   <material> <v0> ... <v7|v3>          (num_cells lines, %10d each)
#pragma once

#include <string>

#include "common/config.h"
#include "mesh/mesh.h"
#include "parx/runtime.h"

namespace prom::mesh {

/// Writes `mesh` to `path` in the flat format. Returns false on I/O error.
bool write_flat_mesh(const std::string& path, const Mesh& mesh);

/// Reads a complete mesh (serial).
Mesh read_flat_mesh(const std::string& path);

/// The slice of a flat mesh one rank is responsible for: a contiguous
/// range of vertices and of cells (cells may reference vertices outside
/// the slice; resolving ghosts is the caller's partitioning problem,
/// exactly as in Athena).
struct FlatMeshSlice {
  CellKind kind = CellKind::kHex8;
  idx num_vertices_total = 0;
  idx num_cells_total = 0;
  idx vertex_begin = 0;  ///< global id of coords[0]
  idx cell_begin = 0;    ///< global id of the first cell
  std::vector<Vec3> coords;
  std::vector<idx> cells;          ///< global vertex ids
  std::vector<idx> cell_material;
};

/// Parallel read (collective): rank r seeks to and reads only its
/// contiguous 1/size share of the vertex and cell records.
FlatMeshSlice read_flat_mesh_slice(parx::Comm& comm, const std::string& path);

/// Reassembles the full mesh from all ranks' slices (collective; every
/// rank returns the complete mesh). Used to validate the parallel read
/// against the serial one and as the simplest Athena-style ingest.
Mesh gather_flat_mesh(parx::Comm& comm, const FlatMeshSlice& slice);

}  // namespace prom::mesh
