// The solve service: an explicit setup/solve lifecycle over the study
// pipeline. Setup (partition, fine-grid assembly, mesh setup, distributed
// matrix setup) is keyed by a fingerprint of the mesh id and every option
// that shapes the hierarchy, and cached — a repeat request skips
// DistHierarchy::build entirely and goes straight to the solve phase.
// Solves accept k right-hand sides at once and run the column-blocked
// MG-PCG (dla::dist_mg_pcg_solve_mv) in chunks of PROM_RHS_BLOCK columns:
// one ghost exchange per operator application serves the whole chunk, and
// column j of a k-RHS solve is bitwise identical to a standalone solve of
// that RHS at any rank count, kernel-thread count, and halo mode.
#pragma once

#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "app/driver.h"
#include "app/refine.h"
#include "dla/dist_mg.h"
#include "la/krylov_any.h"
#include "la/multivec.h"

namespace prom::app {

/// Columns per blocked-PCG chunk: PROM_RHS_BLOCK (default 8; must be in
/// [1, la::kMaxRhsBlock]). Fails fast on an out-of-range value.
int rhs_block_from_env();

struct ServiceConfig {
  int nranks = 2;
  mg::MgOptions mg;
  mg::CycleKind cycle = mg::CycleKind::kFmg;
  mg::MatrixFormat format = mg::matrix_format_from_env();
  /// Cached hierarchies kept alive (LRU eviction beyond this).
  int cache_capacity = 4;
  /// Adaptive refinement rounds run before setup (app/refine.h): the
  /// entry is then built on the refined mesh — refined grids finest-
  /// first, fresh RCB cut of the refined coordinates. 0 = the seed
  /// behavior (no refinement). Seeded from PROM_REFINE; a SolveRequest
  /// can override per request.
  int refine_rounds = refine_rounds_from_env();
  real refine_fraction = 0.1;  ///< fixed-fraction marking per round
};

/// One cached setup: everything DistHierarchy::build produced, per
/// virtual rank, plus the assembled system the right-hand sides default
/// to. Handles are shared_ptrs, so eviction never invalidates an entry a
/// caller still holds.
struct ServiceEntry {
  std::string key;  ///< the cache fingerprint this entry was built under
  std::shared_ptr<const ModelProblem> problem;
  /// The refined mesh family the entry was built on (null when the entry
  /// ran zero refinement rounds). Owns the final mesh and dof maps the
  /// grids — and the matrix-free fine operator — point into, and the
  /// per-round dof counts callers report; `sys` below is the refined
  /// system (AdaptiveLoop::sys moved out).
  std::unique_ptr<AdaptiveLoop> refined;
  std::vector<idx> vertex_owner;
  fem::LinearSystem sys;
  mg::Hierarchy grids;
  /// Rank r's distributed hierarchy (parx ranks share one address space,
  /// so the whole set lives here and each solve re-enters the runtime).
  std::vector<dla::DistHierarchy> per_rank;
  /// Rank r's PCG work vectors: repeat solves of the same shape allocate
  /// nothing on the Krylov side.
  std::vector<la::KrylovWorkspace> workspaces;
  idx unknowns = 0;
};
using EntryHandle = std::shared_ptr<ServiceEntry>;

struct SolveRequest {
  std::string mesh_id;
  /// k right-hand sides in the serial free-dof numbering; an empty block
  /// means "one solve of the assembled load vector".
  la::MultiVec rhs;
  real rtol = 1e-4;
  int max_iters = 200;
  bool track_history = false;
  /// Gather solutions back to the serial numbering (costs one allgatherv
  /// per chunk); the study driver turns this off.
  bool return_solutions = true;
  /// Adaptive refinement rounds for this request: -1 uses the config
  /// default (ServiceConfig::refine_rounds); any other value overrides
  /// it, keying a distinct cache entry.
  int refine_rounds = -1;
};

struct SolveResponse {
  std::vector<la::KrylovResult> results;  ///< one per right-hand side
  /// Solutions in the serial free-dof numbering (empty unless
  /// SolveRequest::return_solutions).
  la::MultiVec solutions;
  bool cache_hit = false;
};

/// The cached setup/solve frontend. Not thread-safe: one service per
/// driving thread (solves themselves spin up the virtual ranks).
class SolveService {
 public:
  explicit SolveService(const ServiceConfig& config) : config_(config) {}

  /// Registers a model problem under `mesh_id` (owning copy).
  void register_problem(std::string mesh_id, ModelProblem problem);
  /// Registers a caller-owned model problem (no copy; the pointee must
  /// outlive every entry built from it).
  void register_problem(std::string mesh_id,
                        std::shared_ptr<const ModelProblem> problem);

  /// The cached entry for `mesh_id` under the current config, building it
  /// on a miss (emits the setup phase spans only then — a cached request
  /// has no partition/fine_grid/mesh_setup/matrix_setup spans at all).
  /// `refine_rounds` = -1 uses the config default.
  EntryHandle acquire(const std::string& mesh_id, int refine_rounds = -1);

  /// acquire + solve_with in one call.
  SolveResponse solve(const SolveRequest& req);

  /// Runs the blocked solve against an already-acquired entry. The entry
  /// stays valid even if the cache has since evicted it.
  SolveResponse solve_with(const EntryHandle& entry,
                           const SolveRequest& req) const;

  const ServiceConfig& config() const { return config_; }
  std::size_t cache_size() const { return lru_.size(); }
  std::int64_t cache_hits() const { return hits_; }
  std::int64_t cache_misses() const { return misses_; }

  /// The cache key `mesh_id` resolves to under the current config.
  /// `refine_rounds` = -1 uses the config default.
  std::string fingerprint(const std::string& mesh_id,
                          int refine_rounds = -1) const;

 private:
  EntryHandle build_entry(const std::string& mesh_id, std::string key,
                          int refine_rounds);

  ServiceConfig config_;
  std::unordered_map<std::string, std::shared_ptr<const ModelProblem>>
      problems_;
  std::list<EntryHandle> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<EntryHandle>::iterator> cache_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace prom::app
