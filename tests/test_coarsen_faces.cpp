#include <gtest/gtest.h>

#include <set>

#include "coarsen/classify.h"
#include "coarsen/faces.h"
#include "coarsen/parallel_faces.h"
#include "mesh/generate.h"
#include "partition/rcb.h"

namespace prom::coarsen {
namespace {

struct BoxFaceData {
  std::vector<mesh::Facet> facets;
  graph::Graph adj;
};

BoxFaceData box_faces(idx n) {
  static std::map<idx, BoxFaceData> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    const mesh::Mesh m = mesh::box_hex(n, n, n, {0, 0, 0}, {1, 1, 1});
    BoxFaceData d;
    d.facets = mesh::boundary_facets(m);
    d.adj = mesh::facet_adjacency(d.facets);
    it = cache.emplace(n, std::move(d)).first;
  }
  return it->second;
}

TEST(FaceId, BoxHasExactlySixFaces) {
  const auto data = box_faces(4);
  const FaceIdResult faces = identify_faces(data.facets, data.adj);
  EXPECT_EQ(faces.num_faces, 6);
  // Each face holds n^2 facets.
  std::map<idx, int> counts;
  for (idx id : faces.face_id) counts[id]++;
  for (const auto& [id, count] : counts) EXPECT_EQ(count, 16);
}

TEST(FaceId, FacesAreNormalCoherent) {
  const auto data = box_faces(3);
  const FaceIdResult faces = identify_faces(data.facets, data.adj);
  // All facets of one face share (here: exactly equal) normals.
  for (std::size_t a = 0; a < data.facets.size(); ++a) {
    for (std::size_t b = a + 1; b < data.facets.size(); ++b) {
      if (faces.face_id[a] == faces.face_id[b]) {
        EXPECT_GT(dot(data.facets[a].normal, data.facets[b].normal), 0.99);
      }
    }
  }
}

TEST(FaceId, TolControlsMergingOnCurvedSurface) {
  // The sphere-in-cube interface is curved: a loose tolerance merges the
  // spherical interface into few faces, a strict one fragments it.
  mesh::SphereInCubeParams p;
  p.num_shells = 3;
  p.base_core_layers = 2;
  p.base_outer_layers = 2;
  const mesh::Mesh m = mesh::sphere_in_cube_octant(p);
  const auto facets = mesh::boundary_facets(m);
  const auto adj = mesh::facet_adjacency(facets);
  FaceIdOptions loose;
  loose.tol = 0.2;
  FaceIdOptions strict;
  strict.tol = 0.995;
  const idx faces_loose = identify_faces(facets, adj, loose).num_faces;
  const idx faces_strict = identify_faces(facets, adj, strict).num_faces;
  EXPECT_LT(faces_loose, faces_strict);
}

TEST(Classify, BoxHistogramIsExact) {
  // (n+1)^3 vertices of a cube: 8 corners, 12(n-1) edge vertices,
  // 6(n-1)^2 surface vertices, (n-1)^3 interior.
  const idx n = 5;
  const mesh::Mesh m = mesh::box_hex(n, n, n, {0, 0, 0}, {1, 1, 1});
  const Classification cls = classify_mesh(m);
  const auto h = cls.type_histogram();
  EXPECT_EQ(h[static_cast<int>(VertexType::kInterior)], (n - 1) * (n - 1) * (n - 1));
  EXPECT_EQ(h[static_cast<int>(VertexType::kSurface)], 6 * (n - 1) * (n - 1));
  EXPECT_EQ(h[static_cast<int>(VertexType::kEdge)], 12 * (n - 1));
  EXPECT_EQ(h[static_cast<int>(VertexType::kCorner)], 8);
}

TEST(Classify, RanksMatchTypes) {
  const mesh::Mesh m = mesh::box_hex(3, 3, 3, {0, 0, 0}, {1, 1, 1});
  const Classification cls = classify_mesh(m);
  const auto ranks = cls.ranks();
  for (idx v = 0; v < cls.num_vertices(); ++v) {
    EXPECT_EQ(ranks[v], static_cast<idx>(cls.type[v]));
  }
}

TEST(Classify, FlatMaterialInterfaceVerticesAreSurface) {
  // Two-material bar: vertices in the middle of the interface plane touch
  // one face per side — they must classify as surface, not edge (§4.3
  // treats each material's boundary separately).
  const idx n = 4;
  mesh::Mesh base = mesh::box_hex(n, n, n, {0, 0, 0}, {1, 1, 1});
  std::vector<idx> cells(base.cell(0).begin(), base.cell(0).end());
  cells.clear();
  std::vector<idx> materials;
  for (idx e = 0; e < base.num_cells(); ++e) {
    cells.insert(cells.end(), base.cell(e).begin(), base.cell(e).end());
    materials.push_back(base.centroid(e).x < 0.5 ? 0 : 1);
  }
  const mesh::Mesh m(mesh::CellKind::kHex8, base.coords(), cells, materials);
  const Classification cls = classify_mesh(m);
  // A vertex strictly inside the interface plane x = 0.5.
  idx probe = kInvalidIdx;
  for (idx v = 0; v < m.num_vertices(); ++v) {
    const Vec3& p = m.coord(v);
    if (p.x == 0.5 && p.y == 0.5 && p.z == 0.5) probe = v;
  }
  ASSERT_NE(probe, kInvalidIdx);
  EXPECT_EQ(cls.type[probe], VertexType::kSurface);
}

TEST(Classify, ShareFace) {
  const mesh::Mesh m = mesh::box_hex(3, 3, 3, {0, 0, 0}, {1, 1, 1});
  const Classification cls = classify_mesh(m);
  // Two surface vertices in the middle of the same box face share it; a
  // vertex on the bottom and one on the top share nothing.
  idx bottom_mid = kInvalidIdx, bottom_mid2 = kInvalidIdx, top_mid = kInvalidIdx;
  for (idx v = 0; v < m.num_vertices(); ++v) {
    const Vec3& p = m.coord(v);
    if (p.z == 0 && p.x > 0.2 && p.x < 0.8 && p.y > 0.2 && p.y < 0.45) {
      bottom_mid = v;
    }
    if (p.z == 0 && p.x > 0.2 && p.x < 0.8 && p.y > 0.55 && p.y < 0.8) {
      bottom_mid2 = v;
    }
    if (p.z == 1 && p.x > 0.2 && p.x < 0.8 && p.y > 0.2 && p.y < 0.8) {
      top_mid = v;
    }
  }
  ASSERT_NE(bottom_mid, kInvalidIdx);
  ASSERT_NE(bottom_mid2, kInvalidIdx);
  ASSERT_NE(top_mid, kInvalidIdx);
  EXPECT_TRUE(cls.share_face(bottom_mid, bottom_mid2));
  EXPECT_FALSE(cls.share_face(bottom_mid, top_mid));
}

class ParallelFaceRanks : public ::testing::TestWithParam<int> {};

TEST_P(ParallelFaceRanks, MatchesSerialFaceCountOnBox) {
  const int nranks = GetParam();
  const auto data = box_faces(4);
  // Owner of a facet: RCB on facet centroids (any owner map works).
  const mesh::Mesh m = mesh::box_hex(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  std::vector<Vec3> centroids;
  for (const auto& f : data.facets) {
    Vec3 c{};
    for (idx v : f.vertices()) c += m.coord(v);
    centroids.push_back(c / 4.0);
  }
  const auto owner = partition::rcb_partition(centroids, nranks);

  const FaceIdResult serial = identify_faces(data.facets, data.adj);
  std::vector<FaceIdResult> per_rank(static_cast<std::size_t>(nranks));
  parx::Runtime::run(nranks, [&](parx::Comm& comm) {
    per_rank[comm.rank()] =
        parallel_identify_faces(comm, data.facets, data.adj, owner);
  });
  // Identical on all ranks and equal to the serial face *partition* (face
  // count and facet groupings; ids may be renumbered).
  for (int r = 0; r < nranks; ++r) {
    EXPECT_EQ(per_rank[r].num_faces, serial.num_faces) << "rank " << r;
    EXPECT_EQ(per_rank[r].face_id, per_rank[0].face_id);
  }
  // Same partition: two facets share a parallel face id iff they share a
  // serial one.
  for (std::size_t a = 0; a < data.facets.size(); ++a) {
    for (std::size_t b = a + 1; b < data.facets.size(); ++b) {
      EXPECT_EQ(per_rank[0].face_id[a] == per_rank[0].face_id[b],
                serial.face_id[a] == serial.face_id[b]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, ParallelFaceRanks,
                         ::testing::Values(1, 2, 3, 4, 7));

}  // namespace
}  // namespace prom::coarsen
