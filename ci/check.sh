#!/usr/bin/env bash
# The one-command CI gate: optimized build, the full test suite, then the
# ThreadSanitizer race gate (ci/tsan.sh). Everything a PR must pass.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset release
cmake --build --preset release -j"$(nproc)"
ctest --test-dir build-release --output-on-failure -j"$(nproc)"

./ci/tsan.sh

echo "ci/check.sh: OK"
