#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "graph/graph.h"
#include "graph/mis.h"
#include "graph/order.h"

namespace prom::graph {
namespace {

Graph random_graph(idx n, idx num_edges, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<idx, idx>> edges;
  for (idx e = 0; e < num_edges; ++e) {
    edges.emplace_back(static_cast<idx>(rng.next_below(n)),
                       static_cast<idx>(rng.next_below(n)));
  }
  return Graph::from_edges(n, edges);
}

Graph path_graph(idx n) {
  std::vector<std::pair<idx, idx>> edges;
  for (idx i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph::from_edges(n, edges);
}

TEST(Graph, FromEdgesDedupAndSymmetrize) {
  std::vector<std::pair<idx, idx>> edges = {{0, 1}, {1, 0}, {0, 1}, {2, 2}};
  const Graph g = Graph::from_edges(3, edges);
  EXPECT_EQ(g.num_edges(), 1);  // self-loop dropped, duplicates merged
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(2, 2));
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 0);
  EXPECT_TRUE(g.is_symmetric());
}

TEST(Graph, NeighborsSorted) {
  const Graph g = Graph::from_edges(
      5, std::vector<std::pair<idx, idx>>{{0, 4}, {0, 2}, {0, 1}});
  const auto nb = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
}

TEST(IndependentSetChecks, Work) {
  const Graph g = path_graph(5);
  EXPECT_TRUE(is_independent_set(g, std::vector<idx>{0, 2, 4}));
  EXPECT_FALSE(is_independent_set(g, std::vector<idx>{0, 1}));
  EXPECT_TRUE(is_maximal_independent_set(g, std::vector<idx>{0, 2, 4}));
  // Independent but not maximal (vertex 4 uncovered).
  EXPECT_FALSE(is_maximal_independent_set(g, std::vector<idx>{0, 2}));
}

class MisRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MisRandom, GreedyProducesMaximalIndependentSet) {
  const Graph g = random_graph(200, 600, GetParam());
  const MisResult mis = greedy_mis(g);
  EXPECT_TRUE(is_maximal_independent_set(g, mis.selected));
}

TEST_P(MisRandom, RandomOrderProducesMaximalIndependentSet) {
  const Graph g = random_graph(150, 400, GetParam());
  const auto order = random_order(150, GetParam());
  const MisResult mis = greedy_mis(g, order, {});
  EXPECT_TRUE(is_maximal_independent_set(g, mis.selected));
}

TEST_P(MisRandom, RanksNeverSuppressedByLowerRanks) {
  // Property (§4.2/§4.6): with rank sorting, a vertex can only be deleted
  // by a neighbor of equal or higher rank.
  const idx n = 120;
  const Graph g = random_graph(n, 350, GetParam());
  Rng rng(GetParam() + 1);
  std::vector<idx> ranks(n);
  for (idx& r : ranks) r = static_cast<idx>(rng.next_below(4));
  MisOptions opts;
  opts.ranks = ranks;
  const MisResult mis = greedy_mis(g, natural_order(n), opts);
  EXPECT_TRUE(is_maximal_independent_set(g, mis.selected));
  for (idx v = 0; v < n; ++v) {
    if (mis.state[v] != MisState::kDeleted) continue;
    bool has_dominating_neighbor = false;
    for (idx u : g.neighbors(v)) {
      if (mis.state[u] == MisState::kSelected && ranks[u] >= ranks[v]) {
        has_dominating_neighbor = true;
        break;
      }
    }
    EXPECT_TRUE(has_dominating_neighbor) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MisRandom,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u));

TEST(Mis, PathGraphNaturalOrder) {
  // Greedy MIS on a path in natural order picks 0, 2, 4, ...
  const Graph g = path_graph(7);
  const MisResult mis = greedy_mis(g);
  EXPECT_EQ(mis.selected, (std::vector<idx>{0, 2, 4, 6}));
}

TEST(Mis, EmptyGraphSelectsEverything) {
  const Graph g = Graph::from_edges(5, {});
  const MisResult mis = greedy_mis(g);
  EXPECT_EQ(mis.selected.size(), 5u);
}

TEST(Order, NaturalIsIdentity) {
  EXPECT_EQ(natural_order(4), (std::vector<idx>{0, 1, 2, 3}));
}

TEST(Order, RandomIsPermutationAndSeedDependent) {
  const auto a = random_order(50, 1);
  const auto b = random_order(50, 1);
  const auto c = random_order(50, 2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  std::set<idx> seen(a.begin(), a.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(Order, CuthillMckeeReducesBandwidth) {
  // 2D grid graph: CM ordering should have much smaller bandwidth than a
  // random ordering.
  const idx n = 12;
  std::vector<std::pair<idx, idx>> edges;
  auto id = [n](idx i, idx j) { return i * n + j; };
  for (idx i = 0; i < n; ++i) {
    for (idx j = 0; j < n; ++j) {
      if (i + 1 < n) edges.emplace_back(id(i, j), id(i + 1, j));
      if (j + 1 < n) edges.emplace_back(id(i, j), id(i, j + 1));
    }
  }
  const Graph g = Graph::from_edges(n * n, edges);
  auto bandwidth = [&](const std::vector<idx>& order) {
    std::vector<idx> pos(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
    idx bw = 0;
    for (idx v = 0; v < g.num_vertices(); ++v) {
      for (idx u : g.neighbors(v)) bw = std::max(bw, std::abs(pos[v] - pos[u]));
    }
    return bw;
  };
  const idx bw_cm = bandwidth(cuthill_mckee(g));
  const idx bw_random = bandwidth(random_order(n * n, 3));
  EXPECT_LT(bw_cm, bw_random / 2);
  // RCM is CM reversed; same bandwidth.
  EXPECT_EQ(bandwidth(reverse_cuthill_mckee(g)), bw_cm);
}

TEST(Order, CuthillMckeeCoversDisconnectedGraphs) {
  const Graph g = Graph::from_edges(
      6, std::vector<std::pair<idx, idx>>{{0, 1}, {3, 4}});
  const auto order = cuthill_mckee(g);
  std::set<idx> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), 6u);
}

}  // namespace
}  // namespace prom::graph
