// Wall-clock timers and a named phase-timer registry used by the driver to
// report the per-phase breakdown of Figure 10 (partitioning, fine grid
// creation, mesh setup, matrix setup, solve).
#pragma once

#include <chrono>
#include <map>
#include <string>

namespace prom {

/// Simple wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named phase durations; not thread-safe by design (one
/// registry per driver run on the controlling thread).
class PhaseTimers {
 public:
  /// Adds `seconds` to the accumulated time of `phase`.
  void add(const std::string& phase, double seconds) {
    totals_[phase] += seconds;
  }

  /// Accumulated seconds for `phase` (0 if never recorded).
  double total(const std::string& phase) const {
    auto it = totals_.find(phase);
    return it == totals_.end() ? 0.0 : it->second;
  }

  const std::map<std::string, double>& totals() const { return totals_; }

  void clear() { totals_.clear(); }

 private:
  std::map<std::string, double> totals_;
};

/// RAII helper: times a scope and records it into a PhaseTimers.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimers& timers, std::string phase)
      : timers_(timers), phase_(std::move(phase)) {}
  ~ScopedPhase() { timers_.add(phase_, timer_.seconds()); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimers& timers_;
  std::string phase_;
  Timer timer_;
};

}  // namespace prom
