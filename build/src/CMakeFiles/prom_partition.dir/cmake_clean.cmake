file(REMOVE_RECURSE
  "CMakeFiles/prom_partition.dir/partition/greedy.cpp.o"
  "CMakeFiles/prom_partition.dir/partition/greedy.cpp.o.d"
  "CMakeFiles/prom_partition.dir/partition/rcb.cpp.o"
  "CMakeFiles/prom_partition.dir/partition/rcb.cpp.o.d"
  "libprom_partition.a"
  "libprom_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prom_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
