// Coarse-grid remeshing and restriction operator construction (§4.8):
// Delaunay-mesh the MIS vertex set, evaluate linear tetrahedral shape
// functions at every fine vertex to form the rows of R, prune super-box
// and far-connecting tetrahedra, and fall back to nearest-vertex
// injection for "lost" fine vertices.
#pragma once

#include <span>
#include <vector>

#include "common/config.h"
#include "geom/vec3.h"
#include "graph/graph.h"
#include "la/csr.h"
#include "mesh/mesh.h"

namespace prom::coarsen {

struct RestrictionOptions {
  /// The paper's epsilon: a fine vertex counts as lying "uniquely" inside
  /// a tet when all its barycentric weights exceed +eps; tets that connect
  /// far-apart vertices and contain no such fine vertex are pruned from
  /// the *coarse mesh* (interpolation is unaffected — it always uses the
  /// containing tet of the full triangulation, super-box tets excepted).
  real inside_eps = 0.02;
  /// Two coarse vertices are "near each other on the fine mesh" if they
  /// are within this many hops in the fine vertex graph; tet edges between
  /// non-near vertices mark the tet as a pruning candidate. Used when a
  /// fine graph is supplied; otherwise the edge-length fallback applies.
  idx near_hops = 3;
  /// Edge-length fallback (no fine graph): tets with an edge longer than
  /// this multiple of the median coarse tet edge are pruning candidates.
  real long_edge_factor = 2.5;
};

struct RestrictionResult {
  /// Vertex-weight restriction: n_coarse x n_fine, rows sum to... each
  /// *column* (fine vertex) holds that vertex's interpolation weights; a
  /// selected fine vertex has a single unit weight on itself.
  la::Csr r_vertex;
  /// Pruned coarse tet mesh in coarse-local vertex numbering (material 0).
  mesh::Mesh coarse_mesh;
  /// Fine vertices that required the nearest-vertex fallback.
  std::vector<idx> lost;
};

/// Builds the restriction from `fine_coords` onto the subset `selected`
/// (coarse vertex i is fine vertex selected[i]). `fine_graph`, when given,
/// provides the "near each other on the fine mesh" relation for tet
/// pruning (§4.8); pass nullptr to use the geometric fallback.
RestrictionResult build_restriction(std::span<const Vec3> fine_coords,
                                    std::span<const idx> selected,
                                    const RestrictionOptions& opts = {},
                                    const graph::Graph* fine_graph = nullptr);

/// Expands a vertex-weight restriction to dof space (`ncomp` dofs per
/// vertex): R_dof = R_vertex (Kronecker) I_ncomp, then restricted to the
/// given free-dof subsets: row c of the result corresponds to coarse free
/// dof c, and columns to fine free dofs. `fine_free`/`coarse_free` list
/// the free dofs (ncomp*vertex+comp) at each level in free-index order.
/// ncomp=3 is the elasticity stack; ncomp=1 the scalar equation classes.
la::Csr expand_restriction_to_dofs(const la::Csr& r_vertex,
                                   std::span<const idx> fine_free,
                                   std::span<const idx> coarse_free,
                                   int ncomp = 3);

}  // namespace prom::coarsen
