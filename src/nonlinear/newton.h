// The paper's nonlinear solution procedure (§7.2): full Newton with
// displacement-driven load steps, each linear solve done by multigrid-
// preconditioned CG with the dynamic relative tolerance
//   rtol_1 = 1e-4,   rtol_m = min(1e-3, 1e-1 * ||r_m|| / ||r_{m-1}||),
// and convergence declared when the energy norm of the correction falls
// to 1e-20 of the first correction's:
//   |dx_m^T r_m| < 1e-20 * |dx_0^T r_0|.
#pragma once

#include <span>
#include <vector>

#include "common/config.h"
#include "fem/assembly.h"
#include "mg/hierarchy.h"
#include "mg/solver.h"

namespace prom::nonlinear {

struct NewtonOptions {
  int max_newton_iters = 25;
  /// Energy-norm drop declaring Newton convergence (paper: 1e-20... of the
  /// first correction; the energy is quadratic so this is ~1e-10 in norm).
  real energy_rtol = 1e-16;
  real first_linear_rtol = 1e-4;  ///< paper's rtol_1
  real max_linear_rtol = 1e-3;    ///< cap on the dynamic tolerance
  real rtol_residual_factor = 0.1;  ///< the 1e-1 in the dynamic heuristic
  int max_linear_iters = 300;
  mg::CycleKind cycle = mg::CycleKind::kFmg;
  /// When MG-preconditioned CG breaks down on an indefinite tangent, retry
  /// the linear solve with FMG-preconditioned restarted GMRES (which does
  /// not require positive definiteness; cf. the multigrid-enhanced GMRES
  /// of [18] the paper cites for elasto-plastic problems).
  bool gmres_fallback = true;
  /// Evaluate the tangent of the *first* iteration of each load step at
  /// the previous converged state. The trial state concentrates the whole
  /// boundary-displacement increment in the constrained dofs' neighbor
  /// layer, where a finite-deformation tangent can lose positive
  /// definiteness; the converged-state tangent is SPD.
  bool initial_stiffness_first_iter = true;
  /// > 0: run each Newton linear solve distributed over this many virtual
  /// ranks — per-iteration matrix setup (the Galerkin chain + smoothers)
  /// is then the row-distributed dla::DistHierarchy::build, reusing the
  /// serially-built grids. 0 keeps the serial path. The GMRES breakdown
  /// fallback is serial-only and is skipped in distributed mode.
  int dist_ranks = 0;
};

struct NewtonStepReport {
  bool converged = false;
  int newton_iters = 0;
  std::vector<int> linear_iters;      ///< PCG iterations per Newton iter
  std::vector<real> linear_rtols;     ///< dynamic tolerance used
  std::vector<real> residual_norms;   ///< ||r|| at the start of each iter
  real plastic_fraction = 0;          ///< after commit (Fig 13 left)
};

/// Drives `problem` through `num_steps` equal displacement increments of
/// the DofMap's prescribed values (step s applies scale s/num_steps).
/// The multigrid hierarchy's grids are built once from the fine mesh and
/// the unloaded tangent; only the operators are rebuilt per Newton
/// iteration (the paper's per-matrix "matrix setup" phase).
class NewtonDriver {
 public:
  NewtonDriver(fem::FeProblem& problem, const mg::MgOptions& mg_opts,
               const NewtonOptions& opts = {});

  /// Runs one load step at BC scale `bc_scale`, updating the state.
  NewtonStepReport solve_step(real bc_scale);

  /// Like solve_step, but rolls back and retries in half-steps (up to
  /// `depth` 3) when the step fails — FEAP-style adaptive load stepping.
  NewtonStepReport solve_step_adaptive(real target_scale, int depth = 0);

  /// Runs `num_steps` uniform steps to scale 1; returns per-step reports.
  std::vector<NewtonStepReport> run_load_steps(int num_steps);

  const std::vector<real>& displacement() const { return u_free_; }
  const mg::Hierarchy& hierarchy() const { return hierarchy_; }

  /// Total matrix ("matrix setup") rebuilds so far — one per Newton iter.
  int matrix_setups() const { return matrix_setups_; }

 private:
  /// Distributed linear solve: builds the per-tangent DistHierarchy on
  /// opts_.dist_ranks virtual ranks and runs distributed MG-PCG; `dx` is
  /// scattered back to the serial ordering.
  la::KrylovResult solve_linear_distributed(std::span<const real> rhs,
                                            std::span<real> dx,
                                            const mg::MgSolveOptions& so);

  fem::FeProblem* problem_;
  NewtonOptions opts_;
  mg::Hierarchy hierarchy_;
  std::vector<real> u_free_;
  std::vector<idx> vertex_owner_;  ///< fine-mesh partition (dist mode)
  real committed_scale_ = 0;
  int matrix_setups_ = 0;
};

}  // namespace prom::nonlinear
