// Gates for the latency-hiding halo exchange (ISSUE 5): the interior/
// boundary split is a true partition with interior rows touching no ghost
// column, and the overlapped schedule (post sends, compute interior,
// drain peers in arrival order, finish boundary) is BIT-identical to the
// synchronous rank-ordered path for spmv/residual/transpose, in both the
// scalar CSR and node-block BSR formats, at 1/2/8 kernel threads — even
// when peers stagger their sends adversarially.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "app/driver.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "dla/dist_bsr.h"
#include "dla/dist_csr.h"
#include "dla/dist_mg.h"
#include "dla/dist_vec.h"
#include "dla/halo.h"
#include "fem/assembly.h"
#include "mg/hierarchy.h"
#include "partition/rcb.h"

namespace prom::dla {
namespace {

/// Random sparse matrix with a full diagonal and `extra` couplings per
/// row at varied strides, so block-distributed rows get ghost columns
/// from several peers.
la::Csr random_coupled(idx n, idx extra, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<la::Triplet> t;
  for (idx i = 0; i < n; ++i) {
    t.push_back({i, i, 2.0 + rng.next_real()});
    for (idx k = 0; k < extra; ++k) {
      const idx j = static_cast<idx>(rng.next_below(n));
      if (j != i) t.push_back({i, j, rng.next_real() - 0.5});
    }
  }
  return la::Csr::from_triplets(n, n, t);
}

std::vector<real> random_vec(idx n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<real> v(static_cast<std::size_t>(n));
  for (real& x : v) x = rng.next_real() - 0.5;
  return v;
}

void expect_bitwise_equal(const std::vector<real>& a,
                          const std::vector<real>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(real)), 0)
      << what << ": overlap and sync results differ bitwise";
}

/// Restores the halo mode (and kernel threads) when a test exits.
struct HaloModeGuard {
  ~HaloModeGuard() {
    set_halo_mode(HaloMode::kOverlap);
    common::set_kernel_threads(0);
  }
};

constexpr int kThreadCounts[] = {1, 2, 8};

class HaloRanks : public ::testing::TestWithParam<int> {};

TEST_P(HaloRanks, InteriorBoundarySplitIsAPartition) {
  const int p = GetParam();
  const idx n = 211;
  const la::Csr a = random_coupled(n, 6, 11);
  const RowDist dist = RowDist::block(n, p);
  parx::Runtime::run(p, [&](parx::Comm& comm) {
    const DistCsr da(comm, a, dist, dist);
    const idx n_own = dist.local_size(comm.rank());
    const la::Csr& lm = da.local_matrix();
    std::vector<int> seen(static_cast<std::size_t>(lm.nrows), 0);
    for (idx i : da.interior_rows()) {
      ASSERT_GE(i, 0);
      ASSERT_LT(i, lm.nrows);
      seen[i] += 1;
      // Interior rows reference owned columns only.
      for (nnz_t k = lm.rowptr[i]; k < lm.rowptr[i + 1]; ++k) {
        EXPECT_LT(lm.colidx[k], n_own);
      }
    }
    for (idx i : da.boundary_rows()) {
      ASSERT_GE(i, 0);
      ASSERT_LT(i, lm.nrows);
      seen[i] += 1;
      // Boundary rows reference at least one ghost column.
      bool has_ghost = false;
      for (nnz_t k = lm.rowptr[i]; k < lm.rowptr[i + 1]; ++k) {
        has_ghost = has_ghost || lm.colidx[k] >= n_own;
      }
      EXPECT_TRUE(has_ghost);
    }
    // interior ∪ boundary covers every row exactly once.
    for (idx i = 0; i < lm.nrows; ++i) EXPECT_EQ(seen[i], 1);
    // Single rank has no ghosts at all.
    if (comm.size() == 1) {
      EXPECT_EQ(da.num_ghosts(), 0);
      EXPECT_EQ(static_cast<idx>(da.interior_rows().size()), lm.nrows);
    }
  });
}

TEST_P(HaloRanks, CsrOverlapMatchesSyncBitwise) {
  const int p = GetParam();
  const HaloModeGuard guard;
  const idx n = 193;
  const la::Csr a = random_coupled(n, 5, 23);
  const auto x = random_vec(n, 3);
  const auto b = random_vec(n, 4);
  const RowDist dist = RowDist::block(n, p);
  for (const int threads : kThreadCounts) {
    common::set_kernel_threads(threads);
    parx::Runtime::run(p, [&](parx::Comm& comm) {
      const DistCsr da(comm, a, dist, dist);
      const idx lo = dist.begin(comm.rank());
      const idx ln = dist.local_size(comm.rank());
      const std::vector<real> xl(x.begin() + lo, x.begin() + lo + ln);
      const std::vector<real> bl(b.begin() + lo, b.begin() + lo + ln);
      std::vector<real> y_sync(ln), y_over(ln), r_sync(ln), r_over(ln);
      set_halo_mode(HaloMode::kSync);
      da.spmv(comm, xl, y_sync);
      da.residual(comm, bl, xl, r_sync);
      set_halo_mode(HaloMode::kOverlap);
      da.spmv(comm, xl, y_over);
      da.residual(comm, bl, xl, r_over);
      expect_bitwise_equal(y_over, y_sync, "csr spmv");
      expect_bitwise_equal(r_over, r_sync, "csr residual");
    });
  }
}

TEST_P(HaloRanks, CsrTransposeOverlapMatchesSyncBitwise) {
  const int p = GetParam();
  const HaloModeGuard guard;
  const idx nrows = 150, ncols = 90;
  Rng rng(31);
  std::vector<la::Triplet> t;
  for (int k = 0; k < 700; ++k) {
    t.push_back({static_cast<idx>(rng.next_below(nrows)),
                 static_cast<idx>(rng.next_below(ncols)),
                 rng.next_real() - 0.5});
  }
  const la::Csr r = la::Csr::from_triplets(nrows, ncols, t);
  const auto x = random_vec(nrows, 5);
  const RowDist rows = RowDist::block(nrows, p);
  const RowDist cols = RowDist::block(ncols, p);
  for (const int threads : kThreadCounts) {
    common::set_kernel_threads(threads);
    parx::Runtime::run(p, [&](parx::Comm& comm) {
      const DistCsr dr(comm, r, rows, cols);
      const idx lo = rows.begin(comm.rank());
      const std::vector<real> xl(x.begin() + lo,
                                 x.begin() + rows.end(comm.rank()));
      const std::size_t cn =
          static_cast<std::size_t>(cols.local_size(comm.rank()));
      std::vector<real> y_sync(cn), y_over(cn);
      set_halo_mode(HaloMode::kSync);
      dr.spmv_transpose(comm, xl, y_sync);
      set_halo_mode(HaloMode::kOverlap);
      dr.spmv_transpose(comm, xl, y_over);
      expect_bitwise_equal(y_over, y_sync, "csr transpose");
    });
  }
}

TEST_P(HaloRanks, Bsr3OverlapMatchesSyncBitwise) {
  const int p = GetParam();
  const HaloModeGuard guard;
  // Real node-block operator: the fine-level elasticity stiffness of a
  // small box problem, distributed with an RCB vertex partition.
  const app::ModelProblem model = app::make_box_problem(5);
  fem::FeProblem fe(model.mesh, model.materials, model.dofmap);
  const fem::LinearSystem sys = fem::assemble_linear_system(fe);
  mg::MgOptions mopts;
  mopts.coarsest_max_dofs = 150;
  const mg::Hierarchy serial_h =
      mg::Hierarchy::build(model.mesh, model.dofmap, sys.stiffness, mopts);
  const auto owner = partition::rcb_partition(model.mesh.coords(), p);
  const idx n = static_cast<idx>(sys.rhs.size());
  const auto x = random_vec(n, 7);
  const auto b = random_vec(n, 8);
  for (const int threads : kThreadCounts) {
    common::set_kernel_threads(threads);
    parx::Runtime::run(p, [&](parx::Comm& comm) {
      const DistHierarchy dh = DistHierarchy::build(comm, serial_h, owner,
                                                    mg::MatrixFormat::kBsr3);
      ASSERT_NE(dh.level(0).a_bsr, nullptr);
      const DistBsr& da = *dh.level(0).a_bsr;
      const auto& perm = dh.permutation(0);
      const RowDist& rows = dh.level(0).a.row_dist();
      const idx lo = rows.begin(comm.rank());
      const idx ln = rows.local_size(comm.rank());
      std::vector<real> xl(static_cast<std::size_t>(ln));
      std::vector<real> bl(static_cast<std::size_t>(ln));
      for (idx i = 0; i < ln; ++i) {
        xl[i] = x[perm[lo + i]];
        bl[i] = b[perm[lo + i]];
      }
      // Block rows partition into interior + boundary.
      EXPECT_EQ(static_cast<idx>(da.interior_brows().size() +
                                 da.boundary_brows().size()),
                da.local_matrix().nbrows);
      std::vector<real> y_sync(ln), y_over(ln), r_sync(ln), r_over(ln);
      set_halo_mode(HaloMode::kSync);
      da.spmv(comm, xl, y_sync);
      da.residual(comm, bl, xl, r_sync);
      set_halo_mode(HaloMode::kOverlap);
      da.spmv(comm, xl, y_over);
      da.residual(comm, bl, xl, r_over);
      expect_bitwise_equal(y_over, y_sync, "bsr3 spmv");
      expect_bitwise_equal(r_over, r_sync, "bsr3 residual");
    });
  }
}

// "pN" names let the CI rank matrix select one rank count per job with
// --gtest_filter='*/pN'.
INSTANTIATE_TEST_SUITE_P(Ranks, HaloRanks, ::testing::Values(1, 2, 4, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "p" + std::to_string(info.param);
                         });

TEST(Halo, StaggeredPeerSendsDrainInArrivalOrder) {
  // Adversarial timing: low ranks enter the exchange long after high
  // ranks, so a rank-ordered drain would idle on already-delivered
  // messages and (worse) an arrival-order drain must still produce the
  // synchronous bits. Repeat with rotating stagger patterns.
  const HaloModeGuard guard;
  const int p = 5;
  const idx n = 150;
  const la::Csr a = random_coupled(n, 8, 47);
  const auto x = random_vec(n, 9);
  const RowDist dist = RowDist::block(n, p);

  // Synchronous reference, no stagger.
  std::vector<real> ref(static_cast<std::size_t>(n));
  set_halo_mode(HaloMode::kSync);
  parx::Runtime::run(p, [&](parx::Comm& comm) {
    const DistCsr da(comm, a, dist, dist);
    const idx lo = dist.begin(comm.rank());
    const idx ln = dist.local_size(comm.rank());
    const std::vector<real> xl(x.begin() + lo, x.begin() + lo + ln);
    std::vector<real> yl(static_cast<std::size_t>(ln));
    da.spmv(comm, xl, yl);
    std::copy(yl.begin(), yl.end(), ref.begin() + lo);
  });

  set_halo_mode(HaloMode::kOverlap);
  for (int round = 0; round < 4; ++round) {
    std::vector<real> got(static_cast<std::size_t>(n));
    parx::Runtime::run(p, [&](parx::Comm& comm) {
      const DistCsr da(comm, a, dist, dist);
      const idx lo = dist.begin(comm.rank());
      const idx ln = dist.local_size(comm.rank());
      const std::vector<real> xl(x.begin() + lo, x.begin() + lo + ln);
      std::vector<real> yl(static_cast<std::size_t>(ln));
      // Rotate which ranks lag: delayed ranks post their sends late.
      const int lag = (comm.rank() + round) % p;
      std::this_thread::sleep_for(std::chrono::milliseconds(3 * lag));
      da.spmv(comm, xl, yl);
      std::copy(yl.begin(), yl.end(), got.begin() + lo);
    });
    ASSERT_EQ(got.size(), ref.size());
    EXPECT_EQ(std::memcmp(got.data(), ref.data(), ref.size() * sizeof(real)),
              0)
        << "staggered overlap round " << round << " differs from sync";
  }
}

TEST(Halo, ModeSwitchRoundTrips) {
  const HaloModeGuard guard;
  set_halo_mode(HaloMode::kSync);
  EXPECT_EQ(halo_mode(), HaloMode::kSync);
  set_halo_mode(HaloMode::kOverlap);
  EXPECT_EQ(halo_mode(), HaloMode::kOverlap);
}

TEST(Halo, PlanCountsMatchGhosts) {
  const int p = 4;
  const idx n = 101;
  const la::Csr a = random_coupled(n, 4, 91);
  const RowDist dist = RowDist::block(n, p);
  parx::Runtime::run(p, [&](parx::Comm& comm) {
    const DistCsr da(comm, a, dist, dist);
    // Every ghost column is filled by exactly one peer's segment.
    EXPECT_EQ(da.halo_plan().recv_count(),
              static_cast<std::int64_t>(da.num_ghosts()));
    EXPECT_EQ(da.halo_plan().num_recv_peers() == 0, da.num_ghosts() == 0);
  });
}

}  // namespace
}  // namespace prom::dla
