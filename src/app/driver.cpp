#include "app/driver.h"

#include <algorithm>

#include "common/error.h"
#include "dla/dist_mg.h"
#include "dla/dist_vec.h"
#include "obs/trace.h"
#include "partition/rcb.h"
#include "parx/runtime.h"

namespace prom::app {

ModelProblem make_sphere_problem(const mesh::SphereInCubeParams& params,
                                 real crush) {
  ModelProblem p;
  p.mesh = mesh::sphere_in_cube_octant(params);
  p.materials = {fem::Material::paper_soft(), fem::Material::paper_hard()};
  p.dofmap = fem::DofMap(p.mesh.num_vertices());
  const real side = params.cube_side;
  const real eps = 1e-9 * side;
  for (idx v :
       p.mesh.vertices_where([&](const Vec3& x) { return x.x < eps; })) {
    p.dofmap.fix(v, 0, 0);
  }
  for (idx v :
       p.mesh.vertices_where([&](const Vec3& x) { return x.y < eps; })) {
    p.dofmap.fix(v, 1, 0);
  }
  for (idx v :
       p.mesh.vertices_where([&](const Vec3& x) { return x.z < eps; })) {
    p.dofmap.fix(v, 2, 0);
  }
  for (idx v : p.mesh.vertices_where(
           [&](const Vec3& x) { return x.z > side - eps; })) {
    p.dofmap.fix(v, 2, -crush);
  }
  p.dofmap.finalize();
  return p;
}

ModelProblem make_box_problem(idx n, real crush, fem::Material material) {
  ModelProblem p;
  p.mesh = mesh::box_hex(n, n, n, {0, 0, 0}, {1, 1, 1});
  p.materials = {material};
  p.dofmap = fem::DofMap(p.mesh.num_vertices());
  const real eps = 1e-9;
  p.dofmap.fix_all(
      p.mesh.vertices_where([&](const Vec3& x) { return x.z < eps; }), 0);
  for (idx v : p.mesh.vertices_where(
           [&](const Vec3& x) { return x.z > 1 - eps; })) {
    p.dofmap.fix(v, 2, -crush);
  }
  p.dofmap.finalize();
  return p;
}

perf::RunMeasurement LinearStudyReport::measurement() const {
  perf::RunMeasurement m;
  m.ranks = ranks;
  m.unknowns = unknowns;
  m.iterations = iterations;
  m.solve_flops = solve_phase.total_flops();
  m.solve_phase = solve_phase;
  m.modeled_solve_time = modeled_solve_time;
  m.wall_solve_time = wall_solve;
  return m;
}

namespace {

/// Per-rank TrafficStats of one report phase (rank-indexed, zero for
/// ranks that recorded nothing).
std::vector<parx::TrafficStats> phase_traffic(const obs::Report& rep,
                                              std::string_view name,
                                              int nranks) {
  std::vector<parx::TrafficStats> stats(static_cast<std::size_t>(nranks));
  const obs::PhaseEntry* phase = rep.phase(name);
  if (phase == nullptr) return stats;
  for (const obs::RankPhase& rp : phase->per_rank) {
    if (rp.rank < 0 || rp.rank >= nranks) continue;
    stats[rp.rank] = {rp.messages, rp.bytes, rp.flops};
  }
  return stats;
}

}  // namespace

LinearStudyReport run_linear_study(const ModelProblem& problem,
                                   const LinearStudyConfig& config) {
  LinearStudyReport report;
  report.ranks = config.nranks;

  // Every phase wall time and traffic bracket below comes out of the obs
  // tracer: recording is forced on for the study's window (independent of
  // PROM_TRACE) and aggregated into report.obs at the end.
  obs::Tracer& tracer = obs::Tracer::instance();
  const bool was_tracing = obs::tracing();
  tracer.set_enabled(true);
  const std::int64_t mark = obs::Tracer::now_ns();

  // Phase 1 — partitioning (Athena/ParMetis): vertices to ranks by RCB.
  std::vector<idx> vertex_owner;
  {
    const obs::Span span("phase.partition");
    vertex_owner = partition::rcb_partition(problem.mesh.coords(),
                                            config.nranks);
  }

  // Phase 2 — fine grid creation (FEAP): assemble the stiffness matrix.
  fem::LinearSystem sys;
  {
    const obs::Span span("phase.fine_grid");
    fem::FeProblem fe(problem.mesh, problem.materials, problem.dofmap);
    sys = fem::assemble_linear_system(fe);
  }
  report.unknowns = sys.stiffness.nrows;

  // Phase 3 — mesh setup (Prometheus): grids + restriction operators only;
  // the Galerkin operators belong to the distributed matrix setup below.
  mg::Hierarchy hierarchy;
  {
    const obs::Span span("phase.mesh_setup");
    hierarchy = mg::Hierarchy::build_grids(problem.mesh, problem.dofmap,
                                           sys.stiffness, config.mg);
  }
  report.levels = hierarchy.num_levels();

  // Phases 4 + 5 — matrix setup (Epimetheus: distributed RAR^T, smoother
  // setup, coarse factorization) and the solve, on virtual ranks. Each
  // rank's phase span starts after a barrier and covers a trailing
  // barrier, so the spans — and the traffic they bracket — are per-phase.
  std::vector<std::int64_t> galerkin_flops(
      static_cast<std::size_t>(config.nranks));
  la::KrylovResult solve_result;
  parx::Runtime::run(config.nranks, [&](parx::Comm& comm) {
    comm.barrier();
    dla::DistHierarchy dist;
    {
      const obs::Span span("phase.matrix_setup");
      // MatrixFormat::kMf additionally needs the fine-level element data
      // (mesh/materials/constraints) to integrate the apply on the fly.
      const dla::MfProblem mf{&problem.mesh, &problem.materials,
                              &problem.dofmap, /*bbar=*/true};
      dist = dla::DistHierarchy::build(
          comm, hierarchy, vertex_owner, config.format,
          config.format == mg::MatrixFormat::kMf ? &mf : nullptr);
      comm.barrier();
    }
    galerkin_flops[comm.rank()] = dist.galerkin_flops();

    // Permuted local right-hand side.
    const auto& perm = dist.permutation(0);
    const dla::RowDist& rows = dist.level(0).a.row_dist();
    const idx b0 = rows.begin(comm.rank());
    std::vector<real> b_local(
        static_cast<std::size_t>(rows.local_size(comm.rank())));
    for (idx i = 0; i < static_cast<idx>(b_local.size()); ++i) {
      b_local[i] = sys.rhs[perm[b0 + i]];
    }
    std::vector<real> x_local(b_local.size(), 0);

    comm.barrier();
    la::KrylovResult result;
    {
      const obs::Span span("phase.solve");
      mg::MgSolveOptions so;
      so.rtol = config.rtol;
      so.max_iters = config.max_iters;
      so.cycle = config.cycle;
      so.format = config.format;
      result = dist_mg_pcg_solve(comm, dist, b_local, x_local, so);
      comm.barrier();
    }
    if (comm.rank() == 0) solve_result = result;
  });

  tracer.set_enabled(was_tracing);
  report.obs = obs::build_report(mark);

  report.iterations = solve_result.iterations;
  report.converged = solve_result.converged;
  report.wall_partition = report.obs.phase_seconds("partition");
  report.wall_fine_grid = report.obs.phase_seconds("fine_grid");
  report.wall_mesh_setup = report.obs.phase_seconds("mesh_setup");
  report.wall_matrix_setup = report.obs.phase_seconds("matrix_setup");
  report.wall_solve = report.obs.phase_seconds("solve");
  report.setup_phase.per_rank =
      phase_traffic(report.obs, "matrix_setup", config.nranks);
  report.max_rank_galerkin_flops =
      *std::max_element(galerkin_flops.begin(), galerkin_flops.end());
  report.solve_phase.per_rank =
      phase_traffic(report.obs, "solve", config.nranks);
  const perf::MachineModel model;
  report.modeled_solve_time = report.solve_phase.modeled_time(model);
  report.modeled_mflops =
      report.solve_phase.modeled_flop_rate(model) / 1e6;
  if (!config.report_path.empty()) report.obs.write_json(config.report_path);
  return report;
}

std::vector<ScaledCase> scaled_series(int num_cases, int base_ranks) {
  // Scaled-down mirror of the paper's series (≈ constant unknowns/rank):
  // the first three cases refine the core/outer regions tangentially, the
  // later ones add a full element layer through every shell, like the
  // paper's "one more layer of elements through each of the seventeen
  // shell layers".
  struct Knobs {
    idx core, outer, per_shell;
    double rank_scale;
  };
  const Knobs knobs[] = {
      {1, 1, 1, 1.0},   // n = 19
      {4, 3, 1, 2.0},   // n = 24
      {7, 6, 1, 3.9},   // n = 30
      {1, 1, 2, 7.8},   // n = 38
      {4, 3, 2, 15.6},  // n = 48
  };
  const int count = std::min<int>(num_cases, 5);
  std::vector<ScaledCase> cases;
  for (int i = 0; i < count; ++i) {
    ScaledCase c;
    c.params.num_shells = 17;
    c.params.base_core_layers = knobs[i].core;
    c.params.base_outer_layers = knobs[i].outer;
    c.params.layers_per_shell = knobs[i].per_shell;
    c.ranks = std::max(
        2, static_cast<int>(base_ranks * knobs[i].rank_scale + 0.5));
    cases.push_back(c);
  }
  return cases;
}

}  // namespace prom::app
