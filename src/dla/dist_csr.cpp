#include "dla/dist_csr.h"

#include <algorithm>

#include "common/error.h"
#include "common/flops.h"

namespace prom::dla {
namespace {

constexpr int kTagGhost = 301;
constexpr int kTagTranspose = 302;

}  // namespace

void DistCsr::init_from_local(parx::Comm& comm, const la::Csr& local_rows) {
  PROM_CHECK(local_rows.nrows == rows_.local_size(rank_));
  PROM_CHECK(local_rows.ncols == cols_.global_size());
  const idx c0 = cols_.begin(rank_), c1 = cols_.end(rank_);
  const idx n_local_cols = c1 - c0;

  // Ghost columns: every referenced column outside my owned range, sorted
  // ascending by global id. O(local nnz log) — never touches global size.
  ghost_cols_.clear();
  for (idx c : local_rows.colidx) {
    if (c < c0 || c >= c1) ghost_cols_.push_back(c);
  }
  std::sort(ghost_cols_.begin(), ghost_cols_.end());
  ghost_cols_.erase(std::unique(ghost_cols_.begin(), ghost_cols_.end()),
                    ghost_cols_.end());

  const auto ghost_slot = [&](idx c) {
    return static_cast<idx>(
        std::lower_bound(ghost_cols_.begin(), ghost_cols_.end(), c) -
        ghost_cols_.begin());
  };

  // Local matrix with remapped columns (storage order preserved).
  local_.nrows = local_rows.nrows;
  local_.ncols = n_local_cols + static_cast<idx>(ghost_cols_.size());
  local_.rowptr = local_rows.rowptr;
  local_.vals = local_rows.vals;
  local_.colidx.resize(local_rows.colidx.size());
  for (std::size_t k = 0; k < local_rows.colidx.size(); ++k) {
    const idx c = local_rows.colidx[k];
    local_.colidx[k] =
        c >= c0 && c < c1 ? c - c0 : n_local_cols + ghost_slot(c);
  }

  // Build the exchange plan: tell each owner which of its entries I need.
  std::vector<std::vector<idx>> requests(comm.size());
  for (idx g : ghost_cols_) requests[cols_.owner(g)].push_back(g);
  const auto incoming = comm.alltoallv(requests);

  peers_send_.clear();
  send_lists_.clear();
  peers_recv_.clear();
  recv_slots_.clear();
  for (int r = 0; r < comm.size(); ++r) {
    if (r == rank_) continue;
    if (!incoming[r].empty()) {
      peers_send_.push_back(r);
      std::vector<idx> local_ids;
      local_ids.reserve(incoming[r].size());
      for (idx g : incoming[r]) {
        PROM_CHECK(cols_.owner(g) == rank_);
        local_ids.push_back(g - c0);
      }
      send_lists_.push_back(std::move(local_ids));
    }
    if (!requests[r].empty()) {
      peers_recv_.push_back(r);
      std::vector<idx> slots;
      slots.reserve(requests[r].size());
      for (idx g : requests[r]) slots.push_back(ghost_slot(g));
      recv_slots_.push_back(std::move(slots));
    }
  }
}

DistCsr::DistCsr(parx::Comm& comm, const la::Csr& a, RowDist row_dist,
                 RowDist col_dist)
    : rank_(comm.rank()),
      rows_(std::move(row_dist)),
      cols_(std::move(col_dist)) {
  PROM_CHECK(rows_.global_size() == a.nrows);
  PROM_CHECK(cols_.global_size() == a.ncols);
  PROM_CHECK(rows_.nranks() == comm.size() && cols_.nranks() == comm.size());

  // Slice my rows out of the replicated matrix, keeping global columns.
  const idx r0 = rows_.begin(rank_), r1 = rows_.end(rank_);
  la::Csr mine;
  mine.nrows = r1 - r0;
  mine.ncols = a.ncols;
  mine.rowptr.assign(static_cast<std::size_t>(mine.nrows) + 1, 0);
  for (idx i = r0; i < r1; ++i) {
    for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
      mine.colidx.push_back(a.colidx[k]);
      mine.vals.push_back(a.vals[k]);
    }
    mine.rowptr[i - r0 + 1] = static_cast<nnz_t>(mine.colidx.size());
  }
  init_from_local(comm, mine);
}

DistCsr DistCsr::from_local_rows(parx::Comm& comm, const la::Csr& local_rows,
                                 RowDist row_dist, RowDist col_dist) {
  DistCsr d;
  d.rank_ = comm.rank();
  d.rows_ = std::move(row_dist);
  d.cols_ = std::move(col_dist);
  PROM_CHECK(d.rows_.nranks() == comm.size() &&
             d.cols_.nranks() == comm.size());
  d.init_from_local(comm, local_rows);
  return d;
}

DistCsr DistCsr::from_global_permuted(parx::Comm& comm, const la::Csr& a,
                                      RowDist row_dist, RowDist col_dist,
                                      std::span<const idx> row_perm,
                                      std::span<const idx> col_perm) {
  PROM_CHECK(row_dist.global_size() == a.nrows);
  PROM_CHECK(col_dist.global_size() == a.ncols);
  PROM_CHECK(static_cast<idx>(row_perm.size()) == a.nrows &&
             static_cast<idx>(col_perm.size()) == a.ncols);
  const int rank = comm.rank();
  const idx r0 = row_dist.begin(rank), r1 = row_dist.end(rank);

  // Inverse column permutation (index bookkeeping, no matrix values).
  std::vector<idx> col_inv(static_cast<std::size_t>(a.ncols));
  for (idx j = 0; j < a.ncols; ++j) col_inv[col_perm[j]] = j;

  la::Csr mine;
  mine.nrows = r1 - r0;
  mine.ncols = a.ncols;
  mine.rowptr.assign(static_cast<std::size_t>(mine.nrows) + 1, 0);
  std::vector<std::pair<idx, real>> row;
  for (idx i = r0; i < r1; ++i) {
    const idx old_row = row_perm[i];
    row.clear();
    for (nnz_t k = a.rowptr[old_row]; k < a.rowptr[old_row + 1]; ++k) {
      row.emplace_back(col_inv[a.colidx[k]], a.vals[k]);
    }
    std::sort(row.begin(), row.end());
    for (const auto& [c, v] : row) {
      mine.colidx.push_back(c);
      mine.vals.push_back(v);
    }
    mine.rowptr[i - r0 + 1] = static_cast<nnz_t>(mine.colidx.size());
  }
  return from_local_rows(comm, mine, std::move(row_dist),
                         std::move(col_dist));
}

void DistCsr::exchange_ghosts(parx::Comm& comm, std::span<const real> x_local,
                              std::span<real> ghost_values) const {
  std::vector<real> buffer;
  for (std::size_t p = 0; p < peers_send_.size(); ++p) {
    buffer.clear();
    for (idx li : send_lists_[p]) buffer.push_back(x_local[li]);
    comm.send<real>(peers_send_[p], kTagGhost, buffer);
  }
  for (std::size_t p = 0; p < peers_recv_.size(); ++p) {
    const std::vector<real> vals = comm.recv<real>(peers_recv_[p], kTagGhost);
    PROM_CHECK(vals.size() == recv_slots_[p].size());
    for (std::size_t i = 0; i < vals.size(); ++i) {
      ghost_values[recv_slots_[p][i]] = vals[i];
    }
  }
}

void DistCsr::spmv(parx::Comm& comm, std::span<const real> x_local,
                   std::span<real> y_local) const {
  const idx n_own = cols_.local_size(rank_);
  PROM_CHECK(static_cast<idx>(x_local.size()) == n_own);
  PROM_CHECK(static_cast<idx>(y_local.size()) == local_.nrows);

  // Assemble [owned | ghost] input.
  std::vector<real> x_ext(static_cast<std::size_t>(local_.ncols), 0);
  std::copy(x_local.begin(), x_local.end(), x_ext.begin());
  exchange_ghosts(comm, x_local,
                  std::span<real>(x_ext).subspan(n_own));
  local_.spmv(x_ext, y_local);
}

void DistCsr::spmv_transpose(parx::Comm& comm, std::span<const real> x_local,
                             std::span<real> y_local) const {
  const idx n_own_cols = cols_.local_size(rank_);
  PROM_CHECK(static_cast<idx>(x_local.size()) == local_.nrows);
  PROM_CHECK(static_cast<idx>(y_local.size()) == n_own_cols);

  // Local A^T x over the extended column space.
  std::vector<real> y_ext(static_cast<std::size_t>(local_.ncols), 0);
  local_.spmv_transpose(x_local, y_ext);

  std::fill(y_local.begin(), y_local.end(), real{0});
  for (idx c = 0; c < n_own_cols; ++c) y_local[c] = y_ext[c];

  // Ship ghost contributions to their owners (reverse of the ghost plan:
  // I RECEIVED ghost values from peers_recv_, so contributions go back to
  // those ranks, and I accumulate contributions arriving from peers_send_).
  for (std::size_t p = 0; p < peers_recv_.size(); ++p) {
    std::vector<real> buffer;
    buffer.reserve(recv_slots_[p].size());
    for (idx slot : recv_slots_[p]) buffer.push_back(y_ext[n_own_cols + slot]);
    comm.send<real>(peers_recv_[p], kTagTranspose, buffer);
  }
  for (std::size_t p = 0; p < peers_send_.size(); ++p) {
    const std::vector<real> vals =
        comm.recv<real>(peers_send_[p], kTagTranspose);
    PROM_CHECK(vals.size() == send_lists_[p].size());
    for (std::size_t i = 0; i < vals.size(); ++i) {
      y_local[send_lists_[p][i]] += vals[i];
    }
    count_flops(static_cast<std::int64_t>(vals.size()));
  }
}

la::Csr DistCsr::local_diagonal_block() const {
  const idx n_own_cols = cols_.local_size(rank_);
  la::Csr d;
  d.nrows = local_.nrows;
  d.ncols = n_own_cols;
  d.rowptr.assign(static_cast<std::size_t>(local_.nrows) + 1, 0);
  for (idx i = 0; i < local_.nrows; ++i) {
    for (nnz_t k = local_.rowptr[i]; k < local_.rowptr[i + 1]; ++k) {
      if (local_.colidx[k] < n_own_cols) {
        d.colidx.push_back(local_.colidx[k]);
        d.vals.push_back(local_.vals[k]);
      }
    }
    d.rowptr[i + 1] = static_cast<nnz_t>(d.colidx.size());
  }
  return d;
}

}  // namespace prom::dla
