# Empty compiler generated dependencies file for test_parx.
# This may be replaced when dependencies are built.
