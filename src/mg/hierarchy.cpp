#include "mg/hierarchy.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string_view>
#include <utility>

#include "common/error.h"
#include "common/log.h"
#include "obs/trace.h"
#include "partition/greedy.h"

namespace prom::mg {
namespace {

/// Adjacency graph of a (structurally symmetric) sparse matrix.
graph::Graph graph_of_matrix(const la::Csr& a) {
  std::vector<std::pair<idx, idx>> edges;
  edges.reserve(static_cast<std::size_t>(a.nnz()));
  for (idx i = 0; i < a.nrows; ++i) {
    for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
      if (a.colidx[k] > i) edges.emplace_back(i, a.colidx[k]);
    }
  }
  return graph::Graph::from_edges(a.nrows, edges);
}

std::unique_ptr<la::Smoother> make_smoother(const la::Csr& a,
                                            const MgOptions& opts) {
  switch (opts.smoother) {
    case SmootherKind::kJacobi:
      return std::make_unique<la::JacobiSmoother>(a, opts.omega);
    case SmootherKind::kSymGaussSeidel:
      return std::make_unique<la::SymmetricGaussSeidel>(a);
    case SmootherKind::kBlockJacobi: {
      auto blocks = partition::block_jacobi_blocks(graph_of_matrix(a),
                                                   opts.bj_blocks_per_1000);
      return std::make_unique<la::BlockJacobiSmoother>(a, std::move(blocks),
                                                       opts.omega);
    }
    case SmootherKind::kChebyshev:
      return std::make_unique<la::ChebyshevSmoother>(a, opts.cheby_degree);
  }
  PROM_CHECK(false);
  return nullptr;
}

}  // namespace

Hierarchy Hierarchy::build(const mesh::Mesh& mesh, const fem::DofMap& dofmap,
                           la::Csr a_fine, const MgOptions& opts) {
  Hierarchy h = build_grids(mesh, dofmap, std::move(a_fine), opts);
  h.build_operators();
  return h;
}

Hierarchy Hierarchy::build_grids(const mesh::Mesh& mesh,
                                 const fem::DofMap& dofmap, la::Csr a_fine,
                                 const MgOptions& opts) {
  PROM_CHECK(dofmap.num_vertices() == mesh.num_vertices());
  PROM_CHECK(a_fine.nrows == dofmap.num_free() &&
             a_fine.ncols == dofmap.num_free());
  std::vector<char> dof_free(static_cast<std::size_t>(dofmap.num_dofs()));
  for (idx d = 0; d < dofmap.num_dofs(); ++d) {
    dof_free[d] = dofmap.is_constrained(d) ? 0 : 1;
  }
  return build_grids_any(mesh, 3, std::move(dof_free), dofmap.free_dofs(),
                         std::move(a_fine), opts);
}

Hierarchy Hierarchy::build_scalar(const mesh::Mesh& mesh,
                                  const fem::ScalarDofMap& dofmap,
                                  la::Csr a_fine, const MgOptions& opts) {
  Hierarchy h = build_grids_scalar(mesh, dofmap, std::move(a_fine), opts);
  h.build_operators();
  return h;
}

Hierarchy Hierarchy::build_grids_scalar(const mesh::Mesh& mesh,
                                        const fem::ScalarDofMap& dofmap,
                                        la::Csr a_fine,
                                        const MgOptions& opts) {
  PROM_CHECK(dofmap.num_vertices() == mesh.num_vertices());
  PROM_CHECK(a_fine.nrows == dofmap.num_free() &&
             a_fine.ncols == dofmap.num_free());
  std::vector<char> dof_free(static_cast<std::size_t>(dofmap.num_dofs()));
  for (idx v = 0; v < dofmap.num_dofs(); ++v) {
    dof_free[v] = dofmap.is_constrained(v) ? 0 : 1;
  }
  return build_grids_any(mesh, 1, std::move(dof_free), dofmap.free_dofs(),
                         std::move(a_fine), opts);
}

Hierarchy Hierarchy::build_grids_any(const mesh::Mesh& mesh, int ncomp,
                                     std::vector<char> dof_free,
                                     std::vector<idx> fine_free,
                                     la::Csr a_fine, const MgOptions& opts) {
  Hierarchy h;
  h.opts_ = opts;
  h.block_size_ = ncomp;

  // Level 0: the application-provided grid.
  MgLevel fine;
  fine.a = std::move(a_fine);
  fine.num_vertices = mesh.num_vertices();
  fine.free_dofs = std::move(fine_free);
  h.levels_.push_back(std::move(fine));

  // Geometry of the level currently being coarsened. The coarsening is
  // purely vertex-based — identical grids for any block size; only the
  // dof expansion of the restriction differs.
  std::vector<Vec3> coords = mesh.coords();
  graph::Graph vgraph = mesh.vertex_graph();
  coarsen::Classification cls = coarsen::classify_mesh(mesh, opts.coarsen.face);

  for (int l = 0; l + 1 < opts.max_levels; ++l) {
    const idx n_free = static_cast<idx>(h.levels_.back().free_dofs.size());
    if (n_free <= opts.coarsest_max_dofs) break;

    coarsen::CoarsenLevelResult cl =
        coarsen::coarsen_level(coords, vgraph, cls, l, opts.coarsen);
    const idx n_coarse = static_cast<idx>(cl.selected.size());
    if (n_coarse < 8 ||
        n_coarse >= static_cast<idx>(opts.min_coarsen_ratio *
                                     static_cast<real>(coords.size()))) {
      PROM_WARN("coarsening stalled at level "
                << l << " (" << coords.size() << " -> " << n_coarse
                << " vertices); stopping hierarchy here");
      break;
    }

    // Coarse constraint flags + free dof lists for the dof expansion.
    std::vector<char> coarse_dof_free(static_cast<std::size_t>(ncomp) *
                                      n_coarse);
    std::vector<idx> coarse_free;
    for (idx c = 0; c < n_coarse; ++c) {
      for (int comp = 0; comp < ncomp; ++comp) {
        const char f = dof_free[ncomp * cl.selected[c] + comp];
        coarse_dof_free[ncomp * c + comp] = f;
        if (f) coarse_free.push_back(ncomp * c + comp);
      }
    }

    MgLevel next;
    next.r = coarsen::expand_restriction_to_dofs(
        cl.r_vertex, h.levels_.back().free_dofs, coarse_free, ncomp);
    next.num_vertices = n_coarse;
    next.free_dofs = std::move(coarse_free);
    next.selected_from_fine = cl.selected;
    next.lost_vertices = static_cast<idx>(cl.lost.size());
    next.graph_edges_removed = cl.graph_stats.edges_removed;
    h.levels_.push_back(std::move(next));

    // Advance the geometry to the new level.
    std::vector<Vec3> coarse_coords(static_cast<std::size_t>(n_coarse));
    for (idx c = 0; c < n_coarse; ++c) {
      coarse_coords[c] = coords[cl.selected[c]];
    }
    coords = std::move(coarse_coords);
    vgraph = cl.coarse_mesh.vertex_graph();
    cls = std::move(cl.coarse_cls);
    dof_free = std::move(coarse_dof_free);
  }

  return h;
}

namespace {

/// Free-dof list of a finalized dof map, plus the constraint flags the
/// MIS chain continues from.
template <typename AnyDofMap>
std::vector<idx> free_list(const AnyDofMap& dm) {
  return dm.free_dofs();
}

/// Vertex-weight restriction for one bisection round: n_coarse x n_fine,
/// column f holding fine vertex f's interpolation weights on the coarse
/// (pre-round) vertices. Surviving vertices inject; midpoints take half
/// of each bisected-edge endpoint, composed through same-round midpoints
/// in increasing id order (parents always have smaller ids).
la::Csr refinement_restriction(const mesh::RefineResult& round,
                               idx n_fine) {
  const idx n_coarse = round.num_parent_vertices;
  PROM_CHECK(n_fine ==
             n_coarse + static_cast<idx>(round.vertex_parents.size()));
  // weights[f]: sorted (coarse vertex, weight) pairs for fine vertex f.
  std::vector<std::vector<std::pair<idx, real>>> weights(
      static_cast<std::size_t>(n_fine));
  for (idx f = 0; f < n_coarse; ++f) weights[f] = {{f, 1}};
  for (idx m = n_coarse; m < n_fine; ++m) {
    const auto& par = round.vertex_parents[m - n_coarse];
    std::vector<std::pair<idx, real>> w;
    for (idx p : {par[0], par[1]}) {
      PROM_CHECK(p < m);
      for (const auto& [cv, cw] : weights[p]) w.emplace_back(cv, cw / 2);
    }
    std::sort(w.begin(), w.end());
    std::vector<std::pair<idx, real>> merged;
    for (const auto& [cv, cw] : w) {
      if (!merged.empty() && merged.back().first == cv) {
        merged.back().second += cw;
      } else {
        merged.emplace_back(cv, cw);
      }
    }
    weights[m] = std::move(merged);
  }
  // Transpose the per-column weights into CSR rows (coarse vertices).
  std::vector<nnz_t> rowptr(static_cast<std::size_t>(n_coarse) + 1, 0);
  for (idx f = 0; f < n_fine; ++f) {
    for (const auto& [cv, cw] : weights[f]) rowptr[cv + 1]++;
  }
  for (idx i = 0; i < n_coarse; ++i) rowptr[i + 1] += rowptr[i];
  la::Csr r;
  r.nrows = n_coarse;
  r.ncols = n_fine;
  r.rowptr = rowptr;
  r.colidx.resize(static_cast<std::size_t>(rowptr[n_coarse]));
  r.vals.resize(static_cast<std::size_t>(rowptr[n_coarse]));
  std::vector<nnz_t> cursor(rowptr.begin(), rowptr.end() - 1);
  for (idx f = 0; f < n_fine; ++f) {
    for (const auto& [cv, cw] : weights[f]) {
      const nnz_t k = cursor[cv]++;
      r.colidx[k] = f;
      r.vals[k] = cw;
    }
  }
  return r;
}

/// Free-dof rows (level-local) of the vertices touching the cells that
/// `round` subdivided — the local-smoothing region of that level.
std::vector<idx> refined_region_rows(const mesh::Mesh& mesh,
                                     const mesh::RefineResult& round,
                                     std::span<const idx> free,
                                     int ncomp) {
  std::vector<char> in_region(static_cast<std::size_t>(mesh.num_vertices()),
                              0);
  for (idx e = 0; e < mesh.num_cells(); ++e) {
    if (!round.cell_changed[e]) continue;
    for (idx v : mesh.cell(e)) in_region[v] = 1;
  }
  std::vector<idx> rows;
  for (idx i = 0; i < static_cast<idx>(free.size()); ++i) {
    if (in_region[free[i] / ncomp]) rows.push_back(i);
  }
  return rows;
}

}  // namespace

Hierarchy Hierarchy::build_grids_refined(
    const std::vector<const mesh::Mesh*>& meshes,
    const std::vector<const fem::DofMap*>& dofmaps,
    const std::vector<mesh::RefineResult>& rounds, la::Csr a_fine,
    const MgOptions& opts) {
  std::vector<std::vector<idx>> level_free;
  for (const fem::DofMap* dm : dofmaps) level_free.push_back(free_list(*dm));
  return build_grids_refined_any(meshes, rounds, std::move(level_free), 3,
                                 std::move(a_fine), opts);
}

Hierarchy Hierarchy::build_grids_refined_scalar(
    const std::vector<const mesh::Mesh*>& meshes,
    const std::vector<const fem::ScalarDofMap*>& dofmaps,
    const std::vector<mesh::RefineResult>& rounds, la::Csr a_fine,
    const MgOptions& opts) {
  std::vector<std::vector<idx>> level_free;
  for (const fem::ScalarDofMap* dm : dofmaps) {
    level_free.push_back(free_list(*dm));
  }
  return build_grids_refined_any(meshes, rounds, std::move(level_free), 1,
                                 std::move(a_fine), opts);
}

Hierarchy Hierarchy::build_refined(
    const std::vector<const mesh::Mesh*>& meshes,
    const std::vector<const fem::DofMap*>& dofmaps,
    const std::vector<mesh::RefineResult>& rounds, la::Csr a_fine,
    const MgOptions& opts) {
  Hierarchy h = build_grids_refined(meshes, dofmaps, rounds,
                                    std::move(a_fine), opts);
  h.build_operators();
  return h;
}

Hierarchy Hierarchy::build_refined_scalar(
    const std::vector<const mesh::Mesh*>& meshes,
    const std::vector<const fem::ScalarDofMap*>& dofmaps,
    const std::vector<mesh::RefineResult>& rounds, la::Csr a_fine,
    const MgOptions& opts) {
  Hierarchy h = build_grids_refined_scalar(meshes, dofmaps, rounds,
                                           std::move(a_fine), opts);
  h.build_operators();
  return h;
}

Hierarchy Hierarchy::build_grids_refined_any(
    const std::vector<const mesh::Mesh*>& meshes,
    const std::vector<mesh::RefineResult>& rounds,
    std::vector<std::vector<idx>> level_free, int ncomp, la::Csr a_fine,
    const MgOptions& opts) {
  const int R = static_cast<int>(rounds.size());
  PROM_CHECK(static_cast<int>(meshes.size()) == R + 1);
  PROM_CHECK(static_cast<int>(level_free.size()) == R + 1);
  PROM_CHECK(R >= 1);
  for (const mesh::Mesh* m : meshes) {
    PROM_CHECK_MSG(m->kind() == mesh::CellKind::kTet4,
                   "build_refined: refinement levels must be TET4 meshes");
  }
  PROM_CHECK(a_fine.nrows == static_cast<idx>(level_free[R].size()));

  Hierarchy h;
  h.opts_ = opts;
  h.block_size_ = ncomp;

  // Level 0: the finest refined mesh. Full smoothing — everything below
  // defers its unrefined region here or to the MIS chain.
  MgLevel fine;
  fine.a = std::move(a_fine);
  fine.num_vertices = meshes[R]->num_vertices();
  fine.free_dofs = level_free[R];
  h.levels_.push_back(std::move(fine));

  // Refinement levels, finest first: level R - r is meshes[r].
  for (int r = R - 1; r >= 0; --r) {
    const obs::Span span("setup.refine_level", R - r);
    const idx n_coarse = meshes[r]->num_vertices();
    la::Csr r_vertex =
        refinement_restriction(rounds[r], meshes[r + 1]->num_vertices());
    MgLevel next;
    next.r = coarsen::expand_restriction_to_dofs(
        r_vertex, h.levels_.back().free_dofs, level_free[r], ncomp);
    next.num_vertices = n_coarse;
    next.free_dofs = level_free[r];
    // Ownership chain for the distributed build: every coarse vertex IS
    // fine vertex with the same id (bisection only appends midpoints).
    next.selected_from_fine.resize(static_cast<std::size_t>(n_coarse));
    for (idx v = 0; v < n_coarse; ++v) next.selected_from_fine[v] = v;
    next.smooth_rows =
        refined_region_rows(*meshes[r], rounds[r], level_free[r], ncomp);
    h.levels_.push_back(std::move(next));
  }

  // MIS/Delaunay chain below the unrefined mesh: reuse the standard grid
  // build on meshes[0] and splice its coarse levels in (its level 0
  // duplicates the refinement-coarsest level above and is dropped).
  std::vector<char> dof_free(
      static_cast<std::size_t>(ncomp) * meshes[0]->num_vertices(), 0);
  for (idx d : level_free[0]) dof_free[d] = 1;
  Hierarchy mis = build_grids_any(*meshes[0], ncomp, std::move(dof_free),
                                  level_free[0], la::Csr{}, opts);
  for (std::size_t l = 1; l < mis.levels_.size(); ++l) {
    h.levels_.push_back(std::move(mis.levels_[l]));
  }
  return h;
}

Hierarchy Hierarchy::from_operator_chain(la::Csr a_fine,
                                         std::vector<la::Csr> restrictions,
                                         const MgOptions& opts) {
  Hierarchy h;
  h.opts_ = opts;
  MgLevel fine;
  fine.num_vertices = a_fine.nrows;
  fine.free_dofs.resize(static_cast<std::size_t>(a_fine.nrows));
  for (idx i = 0; i < a_fine.nrows; ++i) fine.free_dofs[i] = i;
  fine.a = std::move(a_fine);
  h.levels_.push_back(std::move(fine));
  for (la::Csr& r : restrictions) {
    PROM_CHECK(r.ncols ==
               static_cast<idx>(h.levels_.back().free_dofs.size()));
    MgLevel next;
    next.num_vertices = r.nrows;
    next.free_dofs.resize(static_cast<std::size_t>(r.nrows));
    for (idx i = 0; i < r.nrows; ++i) next.free_dofs[i] = i;
    next.r = std::move(r);
    h.levels_.push_back(std::move(next));
  }
  h.build_operators();
  return h;
}

void Hierarchy::update_fine_matrix(la::Csr a_fine) {
  PROM_CHECK(!levels_.empty());
  PROM_CHECK(a_fine.nrows == levels_[0].a.nrows);
  levels_[0].a = std::move(a_fine);
  build_operators();
}

void Hierarchy::set_fine_matrix(la::Csr a_fine) {
  PROM_CHECK(!levels_.empty());
  PROM_CHECK(a_fine.nrows == levels_[0].a.nrows);
  levels_[0].a = std::move(a_fine);
  levels_[0].a_bsr.reset();  // stale node-block view; enable_bsr rebuilds
}

void Hierarchy::build_operators() {
  for (std::size_t l = 1; l < levels_.size(); ++l) {
    const obs::Span span("setup.galerkin", static_cast<int>(l));
    levels_[l].a = la::galerkin_product(levels_[l].r, levels_[l - 1].a);
  }
  // Level-resolved size metrics (the serial mirror of the distributed
  // build's records; the serial hierarchy holds the whole operator).
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const int li = static_cast<int>(l);
    obs::gauge_set("mg.rows", static_cast<double>(levels_[l].a.nrows), li);
    obs::counter_add("mg.nnz", static_cast<double>(levels_[l].a.nnz()), li);
  }
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const bool coarsest = l + 1 == levels_.size();
    levels_[l].smoother.reset();
    levels_[l].direct.reset();
    levels_[l].direct_lu.reset();
    levels_[l].sparse_direct.reset();
    levels_[l].a_bsr.reset();  // stale node-block view; enable_bsr rebuilds
    if (coarsest && levels_.size() > 1 &&
        opts_.coarse_solver == CoarseSolverKind::kDenseLu) {
      // Partial-pivoting LU: the non-symmetric coarse solve. No shift
      // escalation — pivoting handles anything short of exact
      // singularity, which PROM_CHECK rejects.
      const la::Csr& a = levels_[l].a;
      la::DenseMatrix dense(a.nrows, a.ncols);
      for (idx i = 0; i < a.nrows; ++i) {
        for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
          dense(i, a.colidx[k]) = a.vals[k];
        }
      }
      levels_[l].direct_lu = std::make_unique<la::DenseLu>(dense);
      PROM_CHECK_MSG(levels_[l].direct_lu->ok(),
                     "coarsest-level LU factorization failed (singular)");
    } else if (coarsest && levels_.size() > 1 &&
               opts_.coarse_solver == CoarseSolverKind::kSparseCholesky) {
      const la::Csr& a = levels_[l].a;
      levels_[l].sparse_direct = std::make_unique<la::SparseCholesky>(a);
      if (!levels_[l].sparse_direct->ok()) {
        real max_diag = 1;
        for (real v : a.diagonal()) max_diag = std::max(max_diag, std::abs(v));
        la::SparseCholOptions copts;
        for (copts.shift = 1e-12 * max_diag;
             !levels_[l].sparse_direct->ok(); copts.shift *= 10) {
          *levels_[l].sparse_direct = la::SparseCholesky(a, copts);
          PROM_CHECK_MSG(copts.shift < 1e30,
                         "coarse sparse Cholesky shift escalation failed");
        }
        PROM_WARN("coarsest-level sparse factor required a diagonal shift");
      }
    } else if (coarsest && levels_.size() > 1) {
      // Redundant dense factorization of the coarsest operator.
      const la::Csr& a = levels_[l].a;
      la::DenseMatrix dense(a.nrows, a.ncols);
      for (idx i = 0; i < a.nrows; ++i) {
        for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
          dense(i, a.colidx[k]) = a.vals[k];
        }
      }
      levels_[l].direct = std::make_unique<la::DenseLdlt>(dense);
      if (!levels_[l].direct->ok()) {
        // Newton tangents can be mildly indefinite; shift to factorability
        // (degrades the coarse solve, never correctness of PCG's answer).
        real max_diag = 1;
        for (idx i = 0; i < a.nrows; ++i) {
          max_diag = std::max(max_diag, std::abs(dense(i, i)));
        }
        for (real shift = 1e-12 * max_diag; !levels_[l].direct->ok();
             shift *= 10) {
          la::DenseMatrix shifted = dense;
          for (idx i = 0; i < a.nrows; ++i) shifted(i, i) += shift;
          *levels_[l].direct = la::DenseLdlt(shifted);
          PROM_CHECK_MSG(shift < 1e30, "coarse-level shift escalation failed");
        }
        PROM_WARN("coarsest-level operator required a diagonal shift");
      }
    } else {
      levels_[l].smoother = make_smoother(levels_[l].a, opts_);
    }
  }
}

MatrixFormat matrix_format_from_env() {
  const char* env = std::getenv("PROM_MATRIX");
  if (env == nullptr || env[0] == '\0') return MatrixFormat::kCsr;
  const std::string_view v(env);
  if (v == "csr") return MatrixFormat::kCsr;
  if (v == "bsr3") return MatrixFormat::kBsr3;
  if (v == "mf") return MatrixFormat::kMf;
  PROM_CHECK_MSG(false, "PROM_MATRIX must be 'csr', 'bsr3' or 'mf'");
  return MatrixFormat::kCsr;
}

idx agglom_min_rows_from_env() {
  const char* env = std::getenv("PROM_MIN_ROWS_PER_RANK");
  if (env == nullptr || env[0] == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  PROM_CHECK_MSG(end != env && *end == '\0' && v >= 0,
                 "PROM_MIN_ROWS_PER_RANK must be a non-negative integer");
  return static_cast<idx>(v);
}

void Hierarchy::enable_bsr() {
  const obs::Span span("setup.enable_bsr");
  PROM_CHECK_MSG(block_size_ == 3,
                 "node-block (bsr3) format requires block size 3");
  for (MgLevel& lv : levels_) {
    PROM_CHECK(static_cast<idx>(lv.free_dofs.size()) == lv.a.nrows);
    la::NodeBlockMap map = la::node_block_map(lv.free_dofs);
    la::Bsr3 blocked = la::bsr_from_free_csr(lv.a, map);
    lv.a_bsr =
        std::make_unique<la::BsrOperator>(std::move(blocked), std::move(map));
  }
}

void Hierarchy::enable_mf(const mesh::Mesh& mesh,
                          std::span<const fem::Material> materials,
                          const fem::DofMap& dofmap, bool bbar) {
  PROM_CHECK(!levels_.empty());
  PROM_CHECK_MSG(block_size_ == 3,
                 "matrix-free elasticity format requires block size 3");
  fem::MatrixFreeOperator op =
      fem::MatrixFreeOperator::build(mesh, materials, dofmap, bbar);
  PROM_CHECK_MSG(op.rows() == levels_[0].a.nrows,
                 "enable_mf: dofmap does not match the fine operator");
  levels_[0].a_mf = std::make_unique<fem::MatrixFreeOperator>(std::move(op));
}

std::string Hierarchy::describe() const {
  std::ostringstream os;
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const MgLevel& lv = levels_[l];
    os << "level " << l << ": " << lv.num_vertices << " vertices, "
       << lv.free_dofs.size() << " free dofs, nnz(A) = " << lv.a.nnz();
    if (l > 0) {
      os << ", reduction 1/"
         << static_cast<double>(levels_[l - 1].num_vertices) /
                static_cast<double>(lv.num_vertices)
         << ", lost " << lv.lost_vertices;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace prom::mg
