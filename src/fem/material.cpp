#include "fem/material.h"

#include <cmath>

#include "common/error.h"

namespace prom::fem {
namespace {

constexpr real kDelta[3][3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};

}  // namespace

Material Material::paper_soft() {
  Material m;
  m.model = MaterialModel::kNeoHookean;
  m.youngs = 1e-4;
  m.poisson = 0.49;
  return m;
}

Material Material::paper_hard() {
  Material m;
  m.model = MaterialModel::kJ2Plasticity;
  m.youngs = 1;
  m.poisson = 0.3;
  m.yield_stress = 0.001;
  m.hardening = 0.002 * m.youngs;
  return m;
}

void elastic_tangent(const Material& mat, Tangent& c) {
  const real lam = mat.lambda();
  const real mu = mat.mu();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      for (int k = 0; k < 3; ++k) {
        for (int l = 0; l < 3; ++l) {
          tangent_at(c, i, j, k, l) =
              lam * kDelta[i][j] * kDelta[k][l] +
              mu * (kDelta[i][k] * kDelta[j][l] +
                    kDelta[i][l] * kDelta[j][k]);
        }
      }
    }
  }
}

bool j2_radial_return(const Material& mat, const Mat3& strain,
                      const J2State& committed, J2State& updated,
                      Mat3& stress, Tangent& c_ep) {
  const real mu = mat.mu();
  const real kappa = mat.bulk();
  const real h = mat.hardening;

  // Elastic trial.
  const Mat3 strain_e = strain - committed.plastic_strain;
  const Mat3 s_trial = deviator(strain_e) * (2 * mu);
  const real pressure = kappa * trace(strain);
  const Mat3 xi = s_trial - committed.backstress;
  const real xi_norm = frobenius_norm(xi);
  const real radius = std::sqrt(real{2.0} / 3) * mat.yield_stress;
  const real f_trial = xi_norm - radius;

  if (f_trial <= 0) {
    updated = committed;
    stress = s_trial;
    for (int i = 0; i < 3; ++i) stress(i, i) += pressure;
    elastic_tangent(mat, c_ep);
    return false;
  }

  // Plastic correction (radial return).
  const real dgamma = f_trial / (2 * mu + (real{2.0} / 3) * h);
  const Mat3 n = xi * (real{1} / xi_norm);

  updated.plastic_strain = committed.plastic_strain + n * dgamma;
  updated.backstress = committed.backstress + n * ((real{2.0} / 3) * h * dgamma);
  updated.eq_plastic =
      committed.eq_plastic + std::sqrt(real{2.0} / 3) * dgamma;

  stress = s_trial - n * (2 * mu * dgamma);
  for (int i = 0; i < 3; ++i) stress(i, i) += pressure;

  // Consistent tangent (Simo & Hughes eq. 3.3.12 adapted to kinematic
  // hardening): C = kappa I (x) I + 2 mu theta I_dev - 2 mu theta_bar n (x) n.
  const real theta = 1 - 2 * mu * dgamma / xi_norm;
  const real theta_bar = 1 / (1 + h / (3 * mu)) - (1 - theta);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      for (int k = 0; k < 3; ++k) {
        for (int l = 0; l < 3; ++l) {
          const real i_sym = real{0.5} * (kDelta[i][k] * kDelta[j][l] +
                                          kDelta[i][l] * kDelta[j][k]);
          const real i_dev = i_sym - kDelta[i][j] * kDelta[k][l] / real{3};
          tangent_at(c_ep, i, j, k, l) =
              kappa * kDelta[i][j] * kDelta[k][l] + 2 * mu * theta * i_dev -
              2 * mu * theta_bar * n(i, j) * n(k, l);
        }
      }
    }
  }
  return true;
}

void neo_hookean_stress(const Material& mat, const Mat3& f, Mat3& p,
                        Tangent& a) {
  const real mu = mat.mu();
  const real lam = mat.lambda();
  const real jac = det(f);
  PROM_CHECK_MSG(jac > 0, "Neo-Hookean: non-positive det F");
  const real lnj = std::log(jac);
  const Mat3 finv_t = transpose(inverse(f));

  // P = mu F + (lambda ln J - mu) F^{-T}
  p = f * mu + finv_t * (lam * lnj - mu);

  // A_iJkL = mu d_ik d_JL + lambda Fit_iJ Fit_kL
  //          + (mu - lambda ln J) Fit_iL Fit_kJ
  const real coeff = mu - lam * lnj;
  for (int i = 0; i < 3; ++i) {
    for (int jj = 0; jj < 3; ++jj) {
      for (int k = 0; k < 3; ++k) {
        for (int l = 0; l < 3; ++l) {
          tangent_at(a, i, jj, k, l) = mu * kDelta[i][k] * kDelta[jj][l] +
                                       lam * finv_t(i, jj) * finv_t(k, l) +
                                       coeff * finv_t(i, l) * finv_t(k, jj);
        }
      }
    }
  }
}

}  // namespace prom::fem
