file(REMOVE_RECURSE
  "CMakeFiles/test_la_csr.dir/test_la_csr.cpp.o"
  "CMakeFiles/test_la_csr.dir/test_la_csr.cpp.o.d"
  "test_la_csr"
  "test_la_csr.pdb"
  "test_la_csr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_la_csr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
