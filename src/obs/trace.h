// Observability core: a hierarchical span tracer plus a typed
// counter/gauge/series registry, always compiled in and near-free when
// disabled. Every instrumentation call starts with one relaxed atomic
// load (`tracing()`); when that is false nothing else happens, so the
// bit-determinism and threads-sweep gates see exactly the code they saw
// before this subsystem existed.
//
// Recording model (the lock-free contract): each thread appends records
// to its own ThreadLog, registered once (under a mutex) at the thread's
// first instrumented call. parx rank threads, the controlling thread and
// kernel-pool workers therefore never contend while an SPMD region runs.
// Readers (`Tracer::spans_since`, `obs::build_report`) copy the logs out
// and must be called *outside* SPMD regions, i.e. after Runtime::run has
// joined its rank threads — the only threads that record spans.
//
// Attribution: parx tags each rank thread via `set_thread_rank`; records
// made on the controlling thread carry `kHostRank`. Spans bracket the
// thread's wall clock, its parx traffic counters (messages/bytes, bumped
// by `count_message` from the runtime) and its flop counter, so a span is
// a per-rank measurement window in the §6 sense.
//
// Span and metric names must be string literals (records store the
// pointer, not a copy).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace prom::obs {

/// `level` value for records not tied to a multigrid level.
inline constexpr int kNoLevel = -1;

/// `rank` value for records made outside any parx SPMD region.
inline constexpr int kHostRank = -1;

namespace detail {
extern std::atomic<bool> g_tracing;
void record_metric(const char* name, int kind, double value, int level);
}  // namespace detail

/// True when recording is on. One relaxed load — the entire cost of a
/// disabled span or metric call.
inline bool tracing() {
  return detail::g_tracing.load(std::memory_order_relaxed);
}

/// Tags the calling thread as parx rank `rank` (kHostRank to clear);
/// called by parx::Runtime::run on each rank thread.
void set_thread_rank(int rank);
int thread_rank();

/// Thread-local traffic counters; parx bumps them on every send so spans
/// can bracket message/byte deltas without reaching into the runtime.
void count_message(std::int64_t bytes);
std::int64_t thread_messages();
std::int64_t thread_bytes();

/// One closed span: a wall-clock interval on one thread with traffic and
/// flop deltas. `depth` is the nesting depth at open (0 = top-level) and
/// `seq` the per-thread open order — together they reconstruct the tree.
struct SpanRecord {
  const char* name;
  int level;
  int rank;
  std::uint32_t tid;    ///< registration index of the recording thread
  std::uint32_t depth;
  std::uint32_t seq;
  std::int64_t t0_ns;   ///< open/close times since the process origin
  std::int64_t t1_ns;
  std::int64_t messages;
  std::int64_t bytes;
  std::int64_t flops;
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kSeries };

struct MetricRecord {
  const char* name;
  MetricKind kind;
  int level;
  int rank;
  std::uint32_t tid;
  std::uint32_t seq;
  std::int64_t t_ns;
  double value;
};

/// RAII span. Construction and destruction cost one branch each while
/// tracing is off.
class Span {
 public:
  explicit Span(const char* name, int level = kNoLevel) {
    if (tracing()) begin(name, level);
  }
  ~Span() {
    if (active_) end();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(const char* name, int level);
  void end();

  bool active_ = false;
  const char* name_ = nullptr;
  int level_ = kNoLevel;
  std::uint32_t depth_ = 0;
  std::uint32_t seq_ = 0;
  std::int64_t t0_ = 0;
  std::int64_t messages0_ = 0;
  std::int64_t bytes0_ = 0;
  std::int64_t flops0_ = 0;
};

/// Counters sum over all records (and all ranks) in a report window;
/// gauges keep the last write (ranks recording the same global value may
/// all write it); series keep per-thread append order and the report
/// picks one representative thread (collective backends record identical
/// series on every rank).
inline void counter_add(const char* name, double value, int level = kNoLevel) {
  if (tracing()) {
    detail::record_metric(name, static_cast<int>(MetricKind::kCounter), value,
                          level);
  }
}
inline void gauge_set(const char* name, double value, int level = kNoLevel) {
  if (tracing()) {
    detail::record_metric(name, static_cast<int>(MetricKind::kGauge), value,
                          level);
  }
}
inline void series_push(const char* name, double value, int level = kNoLevel) {
  if (tracing()) {
    detail::record_metric(name, static_cast<int>(MetricKind::kSeries), value,
                          level);
  }
}

/// Process-wide recorder registry. `PROM_TRACE=<path>` in the environment
/// enables recording at startup and writes a Chrome-trace JSON of every
/// recorded span to <path> at process exit; programs can instead (or
/// additionally) drive it through this class.
class Tracer {
 public:
  static Tracer& instance();

  void set_enabled(bool on);
  bool enabled() const { return tracing(); }

  /// Chrome-trace output path written at process exit ("" = none).
  void set_trace_path(std::string path);
  const std::string& trace_path() const { return trace_path_; }

  /// Nanoseconds since the process origin; use as a window mark for
  /// spans_since / metrics_since / build_report.
  static std::int64_t now_ns();

  /// Copies of every record whose span opened (metric: fired) at or after
  /// `mark_ns`. Call outside SPMD regions only.
  std::vector<SpanRecord> spans_since(std::int64_t mark_ns = 0) const;
  std::vector<MetricRecord> metrics_since(std::int64_t mark_ns = 0) const;

  /// Writes all spans recorded so far as a Chrome-trace ("chrome://tracing"
  /// / Perfetto) JSON file: one process lane per rank, one thread lane per
  /// recording thread, traffic/flop deltas in each event's args.
  void write_chrome_trace(const std::string& path) const;

 private:
  Tracer() = default;
  std::string trace_path_;
};

}  // namespace prom::obs
