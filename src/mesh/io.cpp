#include "mesh/io.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "common/error.h"

namespace prom::mesh {
namespace {

constexpr int kHeaderBytes = 64;
constexpr int kVertexLineBytes = 75;  // "%24.16e %24.16e %24.16e\n"

int cell_line_bytes(CellKind kind) {
  // material + npc vertex ids, 11 bytes per field ("%10d " / final "\n").
  return 11 * (1 + nodes_per_cell(kind));
}

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

struct Header {
  CellKind kind;
  idx num_vertices;
  idx num_cells;
};

Header read_header(std::FILE* f) {
  char buf[kHeaderBytes + 1] = {0};
  PROM_CHECK_MSG(std::fread(buf, 1, kHeaderBytes, f) == kHeaderBytes,
                 "flat mesh: truncated header");
  char magic[16] = {0}, kind_str[16] = {0};
  int version = 0;
  long nv = 0, nc = 0;
  PROM_CHECK_MSG(std::sscanf(buf, "%15s %d %15s %ld %ld", magic, &version,
                             kind_str, &nv, &nc) == 5,
                 "flat mesh: malformed header");
  PROM_CHECK_MSG(std::strcmp(magic, "prom-mesh") == 0 && version == 1,
                 "flat mesh: bad magic/version");
  Header h;
  if (std::strcmp(kind_str, "hex8") == 0) {
    h.kind = CellKind::kHex8;
  } else if (std::strcmp(kind_str, "tet4") == 0) {
    h.kind = CellKind::kTet4;
  } else {
    PROM_CHECK_MSG(false, "flat mesh: unknown cell kind");
  }
  h.num_vertices = static_cast<idx>(nv);
  h.num_cells = static_cast<idx>(nc);
  return h;
}

void read_vertex_range(std::FILE* f, idx begin, idx count,
                       std::vector<Vec3>& coords) {
  PROM_CHECK(std::fseek(f, kHeaderBytes +
                               static_cast<long>(begin) * kVertexLineBytes,
                        SEEK_SET) == 0);
  char line[kVertexLineBytes + 1];
  coords.resize(static_cast<std::size_t>(count));
  for (idx i = 0; i < count; ++i) {
    PROM_CHECK_MSG(
        std::fread(line, 1, kVertexLineBytes, f) ==
            static_cast<std::size_t>(kVertexLineBytes),
        "flat mesh: truncated vertex record");
    line[kVertexLineBytes] = 0;
    double x, y, z;
    PROM_CHECK(std::sscanf(line, "%lf %lf %lf", &x, &y, &z) == 3);
    coords[i] = {x, y, z};
  }
}

void read_cell_range(std::FILE* f, const Header& h, idx begin, idx count,
                     std::vector<idx>& cells, std::vector<idx>& materials) {
  const int npc = nodes_per_cell(h.kind);
  const int bytes = cell_line_bytes(h.kind);
  const long cells_offset = kHeaderBytes +
                            static_cast<long>(h.num_vertices) *
                                kVertexLineBytes;
  PROM_CHECK(std::fseek(f, cells_offset + static_cast<long>(begin) * bytes,
                        SEEK_SET) == 0);
  std::vector<char> line(static_cast<std::size_t>(bytes) + 1);
  cells.clear();
  materials.clear();
  for (idx e = 0; e < count; ++e) {
    PROM_CHECK_MSG(std::fread(line.data(), 1, bytes, f) ==
                       static_cast<std::size_t>(bytes),
                   "flat mesh: truncated cell record");
    line[bytes] = 0;
    const char* p = line.data();
    long value = 0;
    int consumed = 0;
    PROM_CHECK(std::sscanf(p, "%ld%n", &value, &consumed) == 1);
    p += consumed;
    materials.push_back(static_cast<idx>(value));
    for (int a = 0; a < npc; ++a) {
      PROM_CHECK(std::sscanf(p, "%ld%n", &value, &consumed) == 1);
      p += consumed;
      cells.push_back(static_cast<idx>(value));
    }
  }
}

}  // namespace

bool write_flat_mesh(const std::string& path, const Mesh& mesh) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;

  char header[kHeaderBytes + 1];
  std::snprintf(header, sizeof header, "prom-mesh 1 %s %d %d",
                mesh.kind() == CellKind::kHex8 ? "hex8" : "tet4",
                mesh.num_vertices(), mesh.num_cells());
  // Pad the header to its fixed width (newline-terminated).
  std::string padded(header);
  padded.resize(kHeaderBytes - 1, ' ');
  padded.push_back('\n');
  if (std::fwrite(padded.data(), 1, kHeaderBytes, f.get()) != kHeaderBytes) {
    return false;
  }

  for (idx v = 0; v < mesh.num_vertices(); ++v) {
    const Vec3& p = mesh.coord(v);
    if (std::fprintf(f.get(), "%24.16e %24.16e %24.16e\n", p.x, p.y, p.z) !=
        kVertexLineBytes) {
      return false;
    }
  }
  const int npc = nodes_per_cell(mesh.kind());
  for (idx e = 0; e < mesh.num_cells(); ++e) {
    std::fprintf(f.get(), "%10d", mesh.material(e));
    const auto verts = mesh.cell(e);
    for (int a = 0; a < npc; ++a) {
      std::fprintf(f.get(), " %10d", verts[a]);
    }
    std::fprintf(f.get(), "\n");
  }
  return std::fflush(f.get()) == 0;
}

Mesh read_flat_mesh(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  PROM_CHECK_MSG(f != nullptr, "flat mesh: cannot open " + path);
  const Header h = read_header(f.get());
  std::vector<Vec3> coords;
  std::vector<idx> cells, materials;
  read_vertex_range(f.get(), 0, h.num_vertices, coords);
  read_cell_range(f.get(), h, 0, h.num_cells, cells, materials);
  return Mesh(h.kind, std::move(coords), std::move(cells),
              std::move(materials));
}

FlatMeshSlice read_flat_mesh_slice(parx::Comm& comm,
                                   const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  PROM_CHECK_MSG(f != nullptr, "flat mesh: cannot open " + path);
  const Header h = read_header(f.get());
  const int p = comm.size();
  const int r = comm.rank();

  FlatMeshSlice slice;
  slice.kind = h.kind;
  slice.num_vertices_total = h.num_vertices;
  slice.num_cells_total = h.num_cells;
  slice.vertex_begin =
      static_cast<idx>(static_cast<nnz_t>(h.num_vertices) * r / p);
  const idx vertex_end =
      static_cast<idx>(static_cast<nnz_t>(h.num_vertices) * (r + 1) / p);
  slice.cell_begin =
      static_cast<idx>(static_cast<nnz_t>(h.num_cells) * r / p);
  const idx cell_end =
      static_cast<idx>(static_cast<nnz_t>(h.num_cells) * (r + 1) / p);

  read_vertex_range(f.get(), slice.vertex_begin,
                    vertex_end - slice.vertex_begin, slice.coords);
  read_cell_range(f.get(), h, slice.cell_begin, cell_end - slice.cell_begin,
                  slice.cells, slice.cell_material);
  return slice;
}

Mesh gather_flat_mesh(parx::Comm& comm, const FlatMeshSlice& slice) {
  // Slices are contiguous and rank-ordered: concatenation reassembles the
  // file order exactly.
  std::vector<real> flat_coords;
  for (const Vec3& c : slice.coords) {
    flat_coords.insert(flat_coords.end(), {c.x, c.y, c.z});
  }
  const auto all_coords = comm.allgatherv(flat_coords);
  const auto all_cells = comm.allgatherv(slice.cells);
  const auto all_materials = comm.allgatherv(slice.cell_material);

  std::vector<Vec3> coords;
  coords.reserve(static_cast<std::size_t>(slice.num_vertices_total));
  for (const auto& part : all_coords) {
    for (std::size_t i = 0; i + 2 < part.size(); i += 3) {
      coords.push_back({part[i], part[i + 1], part[i + 2]});
    }
  }
  std::vector<idx> cells, materials;
  for (const auto& part : all_cells) {
    cells.insert(cells.end(), part.begin(), part.end());
  }
  for (const auto& part : all_materials) {
    materials.insert(materials.end(), part.begin(), part.end());
  }
  PROM_CHECK(static_cast<idx>(coords.size()) == slice.num_vertices_total);
  return Mesh(slice.kind, std::move(coords), std::move(cells),
              std::move(materials));
}

}  // namespace prom::mesh
