// §4.7 reproduction: the effect of vertex ordering on MIS density. On a
// uniform 3D hex mesh the MIS-to-vertex ratio is bounded by 1/27 and 1/8
// (every third vs every second vertex per dimension); natural orders give
// dense MISs near the upper bound, random orders sparse ones. Also sweeps
// the exterior-natural/interior-random combination the paper recommends,
// and the corner-protection ablation (DESIGN.md).
#include <cstdio>

#include "coarsen/coarsen.h"
#include "graph/mis.h"
#include "graph/order.h"
#include "mesh/generate.h"

using namespace prom;

namespace {

double mis_ratio(const mesh::Mesh& m, coarsen::MisOrdering exterior,
                 coarsen::MisOrdering interior, bool modify_graph) {
  const graph::Graph g = m.vertex_graph();
  const coarsen::Classification cls = coarsen::classify_mesh(m);
  coarsen::CoarsenOptions opts;
  opts.exterior_order = exterior;
  opts.interior_order = interior;
  opts.modify_graph = modify_graph;
  const graph::Graph* mis_graph = &g;
  graph::Graph modified;
  if (modify_graph) {
    modified = coarsen::modified_mis_graph(g, cls);
    mis_graph = &modified;
  }
  const std::vector<idx> ranks = cls.ranks();
  graph::MisOptions mopts;
  mopts.ranks = ranks;
  const auto mis =
      graph::greedy_mis(*mis_graph, coarsen::mis_ordering(cls, opts), mopts);
  return static_cast<double>(mis.selected.size()) / m.num_vertices();
}

}  // namespace

int main() {
  using Ord = coarsen::MisOrdering;
  std::printf("Section 4.7: MIS size vs vertex ordering on uniform hex "
              "meshes\n");
  std::printf("(uniform-mesh bounds: 1/27 = %.4f <= ratio <= 1/8 = %.4f)\n\n",
              1.0 / 27, 1.0 / 8);
  std::printf("%-8s %-10s | %-16s %-16s %-20s\n", "mesh", "vertices",
              "natural/natural", "random/random", "natural-ext/random-int");
  for (idx n : {8, 12, 16, 20}) {
    const mesh::Mesh m = mesh::box_hex(n, n, n, {0, 0, 0}, {1, 1, 1});
    const double nat = mis_ratio(m, Ord::kNatural, Ord::kNatural, true);
    const double rnd = mis_ratio(m, Ord::kRandom, Ord::kRandom, true);
    const double mix = mis_ratio(m, Ord::kNatural, Ord::kRandom, true);
    std::printf("%2dx%2dx%2d %-10d | 1/%-14.2f 1/%-14.2f 1/%-18.2f\n", n, n,
                n, m.num_vertices(), 1 / nat, 1 / rnd, 1 / mix);
  }

  std::printf("\nablation: graph modification effect on MIS size "
              "(16^3 mesh)\n");
  const mesh::Mesh m = mesh::box_hex(16, 16, 16, {0, 0, 0}, {1, 1, 1});
  std::printf("  modified graph : ratio 1/%.2f\n",
              1 / mis_ratio(m, Ord::kNatural, Ord::kRandom, true));
  std::printf("  plain graph    : ratio 1/%.2f\n",
              1 / mis_ratio(m, Ord::kNatural, Ord::kRandom, false));
  std::printf(
      "\nshape claims: natural orderings yield denser (larger) MISs than\n"
      "random ones; all ratios inside (or near) the paper's [1/27, 1/8]\n"
      "band; the recommended mixed ordering lands between the extremes.\n");
  return 0;
}
