file(REMOVE_RECURSE
  "CMakeFiles/prom_app.dir/app/driver.cpp.o"
  "CMakeFiles/prom_app.dir/app/driver.cpp.o.d"
  "libprom_app.a"
  "libprom_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prom_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
