file(REMOVE_RECURSE
  "CMakeFiles/test_la_smoothers.dir/test_la_smoothers.cpp.o"
  "CMakeFiles/test_la_smoothers.dir/test_la_smoothers.cpp.o.d"
  "test_la_smoothers"
  "test_la_smoothers.pdb"
  "test_la_smoothers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_la_smoothers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
