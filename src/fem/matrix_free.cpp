#include "fem/matrix_free.h"

#include <algorithm>
#include <array>
#include <limits>

#include "common/error.h"
#include "common/flops.h"
#include "common/parallel.h"
#include "fem/quadrature.h"
#include "fem/shape.h"
#include "geom/mat3.h"
#include "la/block_kernels.h"
#include "la/simd.h"
#include "obs/trace.h"

namespace prom::fem {
namespace {

using la::kSimdLanes;
using la::RealPack;

/// Batches per Pass A chunk and rows per Pass B chunk. Fixed constants:
/// the chunk decomposition is part of the bit-determinism contract
/// (common/parallel.h) — it may depend on the operator but never on the
/// thread count. One batch is kSimdLanes elements, so 4 batches span the
/// same element count as fem/assembly.cpp's kCellGrain / 4.
constexpr idx kBatchGrain = 4;
constexpr idx kRowGrain = 1024;

/// Reals per quadrature point in the geo_ stream: w = gauss_w * detJ plus
/// the row-major J^{-1}.
constexpr int kGeoPerQp = 10;

/// The quadrature rule and reference-space shape gradients for one cell
/// kind, evaluated once (they are mesh-independent compile-time data).
struct RefRule {
  int nen = 0;
  int nqp = 0;
  std::array<real, 8> w{};                    ///< gauss weights
  std::array<std::array<Vec3, 8>, 8> grad{};  ///< [qp][node] dN/dxi
};

const RefRule& ref_rule(int nen) {
  static const RefRule hex = [] {
    RefRule r;
    r.nen = 8;
    const auto rule = hex_gauss_8();
    r.nqp = static_cast<int>(rule.size());
    for (int q = 0; q < r.nqp; ++q) {
      r.w[q] = rule[q].w;
      const ShapeEval s = hex8_shape(rule[q].xi);
      for (int a = 0; a < 8; ++a) r.grad[q][a] = s.grad_xi[a];
    }
    return r;
  }();
  static const RefRule tet = [] {
    RefRule r;
    r.nen = 4;
    const auto rule = tet_gauss_4();
    r.nqp = static_cast<int>(rule.size());
    for (int q = 0; q < r.nqp; ++q) {
      r.w[q] = rule[q].w;
      const ShapeEval s = tet4_shape(rule[q].xi);
      for (int a = 0; a < 4; ++a) r.grad[q][a] = s.grad_xi[a];
    }
    return r;
  }();
  return nen == 8 ? hex : tet;
}

/// Per-element geometry at the reference configuration: per quadrature
/// point w = gauss_w * detJ and J^{-1}, plus the B-bar element-mean
/// physical gradients (the same mean-dilatation average as
/// fem/element.cpp). Serial and distributed setups call this identical
/// code on identical coordinates, a prerequisite of the bitwise
/// serial-vs-distributed apply guarantee.
struct ElementGeo {
  std::array<real, 8 * kGeoPerQp> geo{};   ///< [qp][{w, Jinv row-major}]
  std::array<Vec3, 8> mean_grad{};         ///< zeros unless B-bar
};

ElementGeo element_geometry(const RefRule& rule, std::span<const Vec3> coords,
                            bool bbar) {
  ElementGeo out;
  real vol = 0;
  for (int q = 0; q < rule.nqp; ++q) {
    Mat3 jac = Mat3::zero();
    for (int a = 0; a < rule.nen; ++a) {
      const Vec3& gx = rule.grad[q][a];
      for (int i = 0; i < 3; ++i) {
        jac(i, 0) += coords[a][i] * gx.x;
        jac(i, 1) += coords[a][i] * gx.y;
        jac(i, 2) += coords[a][i] * gx.z;
      }
    }
    const real detj = det(jac);
    PROM_CHECK_MSG(detj > 0, "matrix-free setup: inverted element");
    const Mat3 jinv = inverse(jac);
    real* g = out.geo.data() + q * kGeoPerQp;
    const real w = rule.w[q] * detj;
    g[0] = w;
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) g[1 + i * 3 + j] = jinv(i, j);
    }
    if (bbar) {
      vol += w;
      const Mat3 jinv_t = transpose(jinv);
      for (int a = 0; a < rule.nen; ++a) {
        out.mean_grad[a] += matvec(jinv_t, rule.grad[q][a]) * w;
      }
    }
  }
  if (bbar) {
    const real inv_vol = real{1} / vol;
    for (int a = 0; a < rule.nen; ++a) out.mean_grad[a] *= inv_vol;
  }
  return out;
}

/// One Pass A batch: gathers u, integrates the elastic-at-zero stress,
/// scatters nodal forces to the batch's fe slice. Every lane is a pure
/// per-element function; inert padding lanes (zero geometry, invalid
/// slots) produce exact zeros.
void pass_a_batch(const RefRule& rule, const real* geo, const real* mean,
                  const real* lam, const real* two_mu, const real* bdil,
                  const idx* slots, std::span<const real> x, real* fe) {
  const int nen = rule.nen;
  const int edof = 3 * nen;

  RealPack u[24];
  for (int d = 0; d < edof; ++d) {
    RealPack v = la::pack_zero();
    for (int l = 0; l < kSimdLanes; ++l) {
      const idx s = slots[d * kSimdLanes + l];
      if (s != kInvalidIdx) la::pack_set_lane(v, l, x[s]);
    }
    u[d] = v;
  }
  const RealPack plam = la::pack_load(lam);
  const RealPack p2mu = la::pack_load(two_mu);
  const RealPack pdil = la::pack_load(bdil);
  const RealPack half = la::pack_broadcast(real{0.5});

  RealPack acc[24];
  for (int d = 0; d < edof; ++d) acc[d] = la::pack_zero();

  for (int q = 0; q < rule.nqp; ++q) {
    const real* gq = geo + static_cast<std::size_t>(q) * kGeoPerQp * kSimdLanes;
    const RealPack w = la::pack_load(gq);
    RealPack ji[9];
    for (int m = 0; m < 9; ++m) {
      ji[m] = la::pack_load(gq + (1 + m) * kSimdLanes);
    }

    // Physical gradients g_a = J^{-T} dN_a/dxi (per lane; dN/dxi are
    // compile-time scalars broadcast across the lanes).
    RealPack g[8][3];
    for (int a = 0; a < nen; ++a) {
      const Vec3& gx = rule.grad[q][a];
      for (int j = 0; j < 3; ++j) {
        g[a][j] = ji[0 * 3 + j] * la::pack_broadcast(gx.x) +
                  ji[1 * 3 + j] * la::pack_broadcast(gx.y) +
                  ji[2 * 3 + j] * la::pack_broadcast(gx.z);
      }
    }

    // Displacement gradient H_il = sum_a u_{a,i} g_a[l], the B-bar
    // per-qp deviation gm_a = (mean_grad_a - g_a) / 3 (zero for non-B-bar
    // lanes via the 0-or-1/3 factor), and the dilatation correction
    // dil = sum_{a,k} gm_{a,k} u_{a,k}.
    RealPack h[9];
    for (int m = 0; m < 9; ++m) h[m] = la::pack_zero();
    RealPack gm[8][3];
    RealPack dil = la::pack_zero();
    for (int a = 0; a < nen; ++a) {
      for (int i = 0; i < 3; ++i) {
        const RealPack ua = u[a * 3 + i];
        for (int l = 0; l < 3; ++l) h[i * 3 + l] += ua * g[a][l];
        const RealPack m =
            la::pack_load(mean + (a * 3 + i) * kSimdLanes);
        gm[a][i] = (m - g[a][i]) * pdil;
        dil += gm[a][i] * ua;
      }
    }

    // sigma = lambda tr(eps_bar) I + 2 mu eps_bar with
    // eps_bar = sym(H) + dil I.
    const RealPack tr_eps =
        h[0] + h[4] + h[8] + (dil + dil + dil);
    const RealPack press = plam * tr_eps;
    RealPack sigma[9];
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        RealPack e = half * (h[i * 3 + j] + h[j * 3 + i]);
        if (i == j) e += dil;
        RealPack s = p2mu * e;
        if (i == j) s += press;
        sigma[i * 3 + j] = s;
      }
    }
    const RealPack tr_sig = sigma[0] + sigma[4] + sigma[8];

    // Nodal forces: y_{a,k} += w ((sigma g_a)_k + gm_{a,k} tr sigma).
    // sigma g_a is the shared 3x3 microkernel at pack granularity.
    for (int a = 0; a < nen; ++a) {
      RealPack sv[3] = {la::pack_zero(), la::pack_zero(), la::pack_zero()};
      la::block3_madd(sigma, g[a], sv);
      for (int k = 0; k < 3; ++k) {
        acc[a * 3 + k] += w * (sv[k] + gm[a][k] * tr_sig);
      }
    }
  }

  for (int d = 0; d < edof; ++d) {
    la::pack_store(fe + static_cast<std::size_t>(d) * kSimdLanes, acc[d]);
  }
}

}  // namespace

MfCore MfCore::build(const mesh::Mesh& mesh,
                     std::span<const Material> materials, bool bbar,
                     std::span<const idx> elements, idx num_slots,
                     idx num_rows, idx first_ghost_slot,
                     const std::function<Dof(idx e, int a, int c)>& dof_of) {
  const obs::Span span("mf.setup");
  MfCore core;
  const int nen = mesh::nodes_per_cell(mesh.kind());
  const int edof = 3 * nen;
  const RefRule& rule = ref_rule(nen);
  core.nen_ = nen;
  core.nqp_ = rule.nqp;
  core.nrows_ = num_rows;
  core.nslots_ = num_slots;

  const idx ne = static_cast<idx>(elements.size());
  // Per listed element: its dofs and its interior/boundary group.
  std::vector<Dof> dofs(static_cast<std::size_t>(ne) * edof);
  std::vector<char> boundary(static_cast<std::size_t>(ne), 0);
  idx n_interior = 0;
  for (idx t = 0; t < ne; ++t) {
    PROM_CHECK_MSG(t == 0 || elements[t] > elements[t - 1],
                   "mf elements must be ascending global cell ids");
    bool bd = false;
    for (int a = 0; a < nen; ++a) {
      for (int c = 0; c < 3; ++c) {
        const Dof d = dof_of(elements[t], a, c);
        PROM_CHECK(d.gather_slot == kInvalidIdx ||
                   (d.gather_slot >= 0 && d.gather_slot < num_slots));
        PROM_CHECK(d.scatter_row == kInvalidIdx ||
                   (d.scatter_row >= 0 && d.scatter_row < num_rows));
        dofs[static_cast<std::size_t>(t) * edof + a * 3 + c] = d;
        bd = bd || (d.gather_slot != kInvalidIdx &&
                    d.gather_slot >= first_ghost_slot);
      }
    }
    boundary[t] = bd ? 1 : 0;
    if (!bd) ++n_interior;
  }

  // Batch placement: interior batches first, then boundary batches, each
  // group in ascending global-element order with inert padding lanes in
  // its final batch.
  const idx nb_int = (n_interior + kSimdLanes - 1) / kSimdLanes;
  const idx nb_bnd = (ne - n_interior + kSimdLanes - 1) / kSimdLanes;
  core.nbatch_interior_ = nb_int;
  core.nbatch_ = nb_int + nb_bnd;
  const idx nb = core.nbatch_;

  const std::size_t geo_stride =
      static_cast<std::size_t>(rule.nqp) * kGeoPerQp * kSimdLanes;
  core.geo_.assign(static_cast<std::size_t>(nb) * geo_stride, 0);
  core.mean_.assign(static_cast<std::size_t>(nb) * edof * kSimdLanes, 0);
  core.lam_.assign(static_cast<std::size_t>(nb) * kSimdLanes, 0);
  core.two_mu_.assign(static_cast<std::size_t>(nb) * kSimdLanes, 0);
  core.bdil_.assign(static_cast<std::size_t>(nb) * kSimdLanes, 0);
  core.slots_.assign(static_cast<std::size_t>(nb) * edof * kSimdLanes,
                     kInvalidIdx);
  core.fe_.assign(static_cast<std::size_t>(nb) * edof * kSimdLanes, 0);
  PROM_CHECK_MSG(core.fe_.size() <
                     static_cast<std::size_t>(std::numeric_limits<idx>::max()),
                 "mf fe buffer exceeds 32-bit row-source indexing");

  std::vector<Vec3> coords(static_cast<std::size_t>(nen));
  std::vector<idx> lane_of(static_cast<std::size_t>(ne));
  std::vector<idx> batch_of(static_cast<std::size_t>(ne));
  idx next_int = 0, next_bnd = 0;
  for (idx t = 0; t < ne; ++t) {
    // Boundary lanes start at the first boundary *batch*, past the
    // interior group's padding — a boundary element must never share a
    // batch that runs before the halo exchange lands.
    const idx pos =
        boundary[t] ? nb_int * kSimdLanes + next_bnd++ : next_int++;
    const idx b = pos / kSimdLanes;
    const int l = static_cast<int>(pos % kSimdLanes);
    batch_of[t] = b;
    lane_of[t] = l;

    const idx e = elements[t];
    const auto verts = mesh.cell(e);
    for (int a = 0; a < nen; ++a) coords[a] = mesh.coord(verts[a]);
    const Material& mat = materials[mesh.material(e)];
    // Neo-Hookean cells assemble through the total-Lagrangian kernel,
    // which has no B-bar; everything else follows FeProblem's bbar flag.
    const bool cell_bbar =
        bbar && mat.model != MaterialModel::kNeoHookean;
    const ElementGeo eg = element_geometry(rule, coords, cell_bbar);

    real* geo = core.geo_.data() + static_cast<std::size_t>(b) * geo_stride;
    for (int q = 0; q < rule.nqp; ++q) {
      for (int f = 0; f < kGeoPerQp; ++f) {
        geo[(static_cast<std::size_t>(q) * kGeoPerQp + f) * kSimdLanes + l] =
            eg.geo[q * kGeoPerQp + f];
      }
    }
    real* mean =
        core.mean_.data() + static_cast<std::size_t>(b) * edof * kSimdLanes;
    for (int a = 0; a < nen; ++a) {
      for (int k = 0; k < 3; ++k) {
        mean[(a * 3 + k) * kSimdLanes + l] = eg.mean_grad[a][k];
      }
    }
    core.lam_[static_cast<std::size_t>(b) * kSimdLanes + l] = mat.lambda();
    core.two_mu_[static_cast<std::size_t>(b) * kSimdLanes + l] = 2 * mat.mu();
    core.bdil_[static_cast<std::size_t>(b) * kSimdLanes + l] =
        cell_bbar ? real{1} / 3 : real{0};
    idx* slots =
        core.slots_.data() + static_cast<std::size_t>(b) * edof * kSimdLanes;
    for (int d = 0; d < edof; ++d) {
      slots[d * kSimdLanes + l] =
          dofs[static_cast<std::size_t>(t) * edof + d].gather_slot;
    }
  }

  // Row adjacency: walk the input element list (ascending global ids) and
  // append each valid scatter row's fe source — every row accumulates its
  // incident elements in global order, independent of batching and of the
  // rank layout.
  std::vector<nnz_t> cnt(static_cast<std::size_t>(num_rows) + 1, 0);
  for (idx t = 0; t < ne; ++t) {
    for (int d = 0; d < edof; ++d) {
      const idx row = dofs[static_cast<std::size_t>(t) * edof + d].scatter_row;
      if (row != kInvalidIdx) ++cnt[row + 1];
    }
  }
  for (idx r = 0; r < num_rows; ++r) cnt[r + 1] += cnt[r];
  core.row_ptr_ = cnt;
  core.row_src_.resize(static_cast<std::size_t>(core.row_ptr_[num_rows]));
  std::vector<nnz_t> next(core.row_ptr_.begin(), core.row_ptr_.end() - 1);
  for (idx t = 0; t < ne; ++t) {
    const std::size_t fe_base =
        (static_cast<std::size_t>(batch_of[t]) * edof) * kSimdLanes +
        lane_of[t];
    for (int d = 0; d < edof; ++d) {
      const idx row = dofs[static_cast<std::size_t>(t) * edof + d].scatter_row;
      if (row == kInvalidIdx) continue;
      core.row_src_[next[row]++] =
          static_cast<idx>(fe_base + static_cast<std::size_t>(d) * kSimdLanes);
    }
  }

  // Pass A flop model per batch (all lanes): gradients, H/gm/dil, the
  // stress update, and the nodal-force scatter per quadrature point.
  core.flops_per_batch_ = static_cast<std::int64_t>(rule.nqp) * kSimdLanes *
                          (nen * 72 + 40);
  return core;
}

void MfCore::pass_a(std::span<const real> x, idx bb, idx be) const {
  PROM_CHECK(static_cast<idx>(x.size()) == nslots_ && bb >= 0 && be <= nbatch_);
  const RefRule& rule = ref_rule(nen_);
  const int edof = 3 * nen_;
  const std::size_t geo_stride =
      static_cast<std::size_t>(nqp_) * kGeoPerQp * kSimdLanes;
  common::parallel_for(bb, be, kBatchGrain, [&](idx b0, idx b1) {
    for (idx b = b0; b < b1; ++b) {
      const std::size_t eb = static_cast<std::size_t>(b) * edof * kSimdLanes;
      const std::size_t sb = static_cast<std::size_t>(b) * kSimdLanes;
      pass_a_batch(rule, geo_.data() + static_cast<std::size_t>(b) * geo_stride,
                   mean_.data() + eb, lam_.data() + sb, two_mu_.data() + sb,
                   bdil_.data() + sb, slots_.data() + eb, x, fe_.data() + eb);
    }
  });
  count_flops((be - bb) * flops_per_batch_);
}

void MfCore::pass_b_apply(std::span<real> y) const {
  PROM_CHECK(static_cast<idx>(y.size()) == nrows_);
  common::parallel_for(0, nrows_, kRowGrain, [&](idx rb, idx re) {
    for (idx r = rb; r < re; ++r) {
      real acc = 0;
      for (nnz_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        acc += fe_[row_src_[k]];
      }
      y[r] = acc;
    }
  });
  count_flops(static_cast<std::int64_t>(row_src_.size()));
}

void MfCore::pass_b_apply_rows(std::span<real> y,
                               std::span<const idx> rows) const {
  PROM_CHECK(static_cast<idx>(y.size()) == nrows_);
  const idx n = static_cast<idx>(rows.size());
  common::parallel_for(0, n, kRowGrain, [&](idx tb, idx te) {
    for (idx t = tb; t < te; ++t) {
      const idx r = rows[t];
      real acc = 0;
      for (nnz_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        acc += fe_[row_src_[k]];
      }
      y[r] = acc;
    }
  });
}

void MfCore::pass_b_residual(std::span<const real> b,
                             std::span<real> r) const {
  PROM_CHECK(static_cast<idx>(b.size()) == nrows_ &&
             static_cast<idx>(r.size()) == nrows_);
  common::parallel_for(0, nrows_, kRowGrain, [&](idx rb, idx re) {
    for (idx row = rb; row < re; ++row) {
      real acc = 0;
      for (nnz_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
        acc += fe_[row_src_[k]];
      }
      r[row] = b[row] - acc;
    }
  });
  count_flops(static_cast<std::int64_t>(row_src_.size()) + nrows_);
}

void MfCore::pass_b_residual_rows(std::span<const real> b, std::span<real> r,
                                  std::span<const idx> rows) const {
  PROM_CHECK(static_cast<idx>(b.size()) == nrows_ &&
             static_cast<idx>(r.size()) == nrows_);
  const idx n = static_cast<idx>(rows.size());
  common::parallel_for(0, n, kRowGrain, [&](idx tb, idx te) {
    for (idx t = tb; t < te; ++t) {
      const idx row = rows[t];
      real acc = 0;
      for (nnz_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
        acc += fe_[row_src_[k]];
      }
      r[row] = b[row] - acc;
    }
  });
}

double MfCore::apply_bytes_per_row() const {
  if (nrows_ == 0) return 0;
  const double bytes =
      static_cast<double>(geo_.size() + mean_.size() + lam_.size() +
                          two_mu_.size() + bdil_.size()) *
          sizeof(real) +
      static_cast<double>(slots_.size()) * sizeof(idx) +
      2.0 * static_cast<double>(fe_.size()) * sizeof(real) +  // write + read
      static_cast<double>(row_ptr_.size()) * sizeof(nnz_t) +
      static_cast<double>(row_src_.size()) * sizeof(idx) +
      static_cast<double>(nslots_ + nrows_) * sizeof(real);  // x + y
  return bytes / static_cast<double>(nrows_);
}

MatrixFreeOperator MatrixFreeOperator::build(const mesh::Mesh& mesh,
                                             std::span<const Material>
                                                 materials,
                                             const DofMap& dofmap,
                                             bool bbar) {
  PROM_CHECK(dofmap.num_vertices() == mesh.num_vertices());
  std::vector<idx> elements(static_cast<std::size_t>(mesh.num_cells()));
  for (idx e = 0; e < mesh.num_cells(); ++e) elements[e] = e;
  const idx nfree = dofmap.num_free();
  MfCore core = MfCore::build(
      mesh, materials, bbar, elements, nfree, nfree,
      /*first_ghost_slot=*/nfree, [&](idx e, int a, int c) {
        const idx v = mesh.cell(e)[a];
        const idx f = dofmap.free_index(DofMap::dof_of(v, c));
        return MfCore::Dof{f, f};
      });
  return MatrixFreeOperator(std::move(core));
}

void MatrixFreeOperator::apply(std::span<const real> x,
                               std::span<real> y) const {
  const obs::Span span("mf.apply");
  core_.pass_a(x, 0, core_.num_batches());
  core_.pass_b_apply(y);
}

void MatrixFreeOperator::apply_mv(const la::MultiVec& x,
                                  la::MultiVec& y) const {
  const obs::Span span("mf.apply");
  for (int j = 0; j < x.cols(); ++j) {
    core_.pass_a(x.col(j), 0, core_.num_batches());
    core_.pass_b_apply(y.col(j));
  }
}

void MatrixFreeOperator::residual(std::span<const real> b,
                                  std::span<const real> x,
                                  std::span<real> r) const {
  const obs::Span span("mf.apply");
  core_.pass_a(x, 0, core_.num_batches());
  core_.pass_b_residual(b, r);
}

void MatrixFreeOperator::residual_mv(const la::MultiVec& b,
                                     const la::MultiVec& x,
                                     la::MultiVec& r) const {
  const obs::Span span("mf.apply");
  for (int j = 0; j < x.cols(); ++j) {
    core_.pass_a(x.col(j), 0, core_.num_batches());
    core_.pass_b_residual(b.col(j), r.col(j));
  }
}

void MatrixFreeOperator::apply_rows(std::span<const real> x, std::span<real> y,
                                    std::span<const idx> rows) const {
  const obs::Span span("mf.apply");
  core_.pass_a(x, 0, core_.num_batches());
  core_.pass_b_apply_rows(y, rows);
}

void MatrixFreeOperator::residual_rows(std::span<const real> b,
                                       std::span<const real> x,
                                       std::span<real> r,
                                       std::span<const idx> rows) const {
  const obs::Span span("mf.apply");
  core_.pass_a(x, 0, core_.num_batches());
  core_.pass_b_residual_rows(b, r, rows);
}

std::vector<real> mf_element_apply(const Material& mat,
                                   std::span<const Vec3> coords,
                                   std::span<const real> u, bool bbar) {
  const int nen = static_cast<int>(coords.size());
  PROM_CHECK(nen == 8 || nen == 4);
  PROM_CHECK(static_cast<int>(u.size()) == 3 * nen);
  std::vector<idx> cell(static_cast<std::size_t>(nen));
  for (int a = 0; a < nen; ++a) cell[a] = a;
  const mesh::Mesh mesh(nen == 8 ? mesh::CellKind::kHex8
                                 : mesh::CellKind::kTet4,
                        std::vector<Vec3>(coords.begin(), coords.end()),
                        std::move(cell), {0});
  const DofMap dofmap(nen);  // nothing fixed: all 3*nen dofs free
  const std::vector<Material> mats = {mat};
  const MatrixFreeOperator op =
      MatrixFreeOperator::build(mesh, mats, dofmap, bbar);
  std::vector<real> y(static_cast<std::size_t>(3 * nen));
  op.apply(u, y);
  return y;
}

}  // namespace prom::fem
