#include "mesh/generate.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace prom::mesh {
namespace {

/// Structured hex connectivity over an (nx+1)x(ny+1)x(nz+1) vertex lattice.
std::vector<idx> lattice_hexes(idx nx, idx ny, idx nz) {
  auto vid = [&](idx i, idx j, idx k) {
    return (k * (ny + 1) + j) * (nx + 1) + i;
  };
  std::vector<idx> cells;
  cells.reserve(static_cast<std::size_t>(nx) * ny * nz * 8);
  for (idx k = 0; k < nz; ++k) {
    for (idx j = 0; j < ny; ++j) {
      for (idx i = 0; i < nx; ++i) {
        // VTK hex ordering: bottom quad then top quad.
        cells.push_back(vid(i, j, k));
        cells.push_back(vid(i + 1, j, k));
        cells.push_back(vid(i + 1, j + 1, k));
        cells.push_back(vid(i, j + 1, k));
        cells.push_back(vid(i, j, k + 1));
        cells.push_back(vid(i + 1, j, k + 1));
        cells.push_back(vid(i + 1, j + 1, k + 1));
        cells.push_back(vid(i, j + 1, k + 1));
      }
    }
  }
  return cells;
}

}  // namespace

Mesh box_hex(idx nx, idx ny, idx nz, const Vec3& lo, const Vec3& hi) {
  PROM_CHECK(nx >= 1 && ny >= 1 && nz >= 1);
  std::vector<Vec3> coords;
  coords.reserve(static_cast<std::size_t>(nx + 1) * (ny + 1) * (nz + 1));
  for (idx k = 0; k <= nz; ++k) {
    for (idx j = 0; j <= ny; ++j) {
      for (idx i = 0; i <= nx; ++i) {
        coords.push_back({lo.x + (hi.x - lo.x) * i / nx,
                          lo.y + (hi.y - lo.y) * j / ny,
                          lo.z + (hi.z - lo.z) * k / nz});
      }
    }
  }
  std::vector<idx> cells = lattice_hexes(nx, ny, nz);
  std::vector<idx> materials(cells.size() / 8, 0);
  return Mesh(CellKind::kHex8, std::move(coords), std::move(cells),
              std::move(materials));
}

Mesh thin_slab(idx nx, idx ny, idx nz, real lx, real ly, real lz) {
  return box_hex(nx, ny, nz, {0, 0, 0}, {lx, ly, lz});
}

idx sphere_in_cube_resolution(const SphereInCubeParams& p) {
  const idx s = p.layers_per_shell;
  return p.base_core_layers * s + p.num_shells * s + p.base_outer_layers * s;
}

Mesh sphere_in_cube_octant(const SphereInCubeParams& p) {
  PROM_CHECK(p.num_shells >= 1 && p.layers_per_shell >= 1);
  PROM_CHECK(p.core_radius > 0 && p.shell_outer_radius > p.core_radius);
  PROM_CHECK(p.cube_side > p.shell_outer_radius);

  const idx s = p.layers_per_shell;
  const idx core_layers = p.base_core_layers * s;
  const idx shell_layers = p.num_shells * s;
  const idx outer_layers = p.base_outer_layers * s;
  const idx n = core_layers + shell_layers + outer_layers;

  // Radial knots: physical radius of each layer boundary l = 0..n, as a
  // function of the "cube-radial" coordinate m = l/n. Piecewise linear:
  // core [0, core_radius], shells [core_radius, shell_outer_radius] in
  // equal steps, then out to the cube surface.
  std::vector<real> radius_of_layer(static_cast<std::size_t>(n) + 1);
  for (idx l = 0; l <= core_layers; ++l) {
    radius_of_layer[l] = p.core_radius * l / core_layers;
  }
  const real shell_dr =
      (p.shell_outer_radius - p.core_radius) / shell_layers;
  for (idx l = 1; l <= shell_layers; ++l) {
    radius_of_layer[core_layers + l] = p.core_radius + shell_dr * l;
  }
  for (idx l = 1; l <= outer_layers; ++l) {
    radius_of_layer[core_layers + shell_layers + l] =
        p.shell_outer_radius +
        (p.cube_side - p.shell_outer_radius) * l / outer_layers;
  }

  const real m_sphere =
      static_cast<real>(core_layers + shell_layers) / n;  // blend start

  // Map lattice point (i,j,k)/n to physical space: spherical inside the
  // shell stack, blended back to the cube outside (see generate.h).
  auto map_point = [&](idx i, idx j, idx k) -> Vec3 {
    const Vec3 q{static_cast<real>(i) / n, static_cast<real>(j) / n,
                 static_cast<real>(k) / n};
    const real m = std::max({q.x, q.y, q.z});
    if (m == real{0}) return {0, 0, 0};
    // Physical radius for this cube-shell: interpolate the layer knots.
    const real lf = m * n;
    const idx l0 = std::min<idx>(static_cast<idx>(lf), n - 1);
    const real t = lf - l0;
    const real radius =
        radius_of_layer[l0] * (1 - t) + radius_of_layer[l0 + 1] * t;
    const Vec3 dir = q / norm(q);
    if (m <= m_sphere) return dir * radius;
    // Blend zone: interpolate between the spherical image and the scaled
    // cube position so the outer boundary is exactly the cube.
    const real blend = (m - m_sphere) / (real{1} - m_sphere);
    const Vec3 cube_pos = q * (radius / m);
    return dir * radius * (1 - blend) + cube_pos * blend;
  };

  std::vector<Vec3> coords;
  coords.reserve(static_cast<std::size_t>(n + 1) * (n + 1) * (n + 1));
  for (idx k = 0; k <= n; ++k) {
    for (idx j = 0; j <= n; ++j) {
      for (idx i = 0; i <= n; ++i) coords.push_back(map_point(i, j, k));
    }
  }

  std::vector<idx> cells = lattice_hexes(n, n, n);
  const idx nc = static_cast<idx>(cells.size() / 8);
  std::vector<idx> materials(static_cast<std::size_t>(nc), p.soft_material);
  // A cell in the structured grid belongs to radial layer
  // l = max(i,j,k) of its lower corner; assign shell materials by layer.
  idx e = 0;
  for (idx k = 0; k < n; ++k) {
    for (idx j = 0; j < n; ++j) {
      for (idx i = 0; i < n; ++i, ++e) {
        const idx l = std::max({i, j, k});
        if (l >= core_layers && l < core_layers + shell_layers) {
          const idx shell = (l - core_layers) / s;
          materials[e] =
              (shell % 2 == 0) ? p.hard_material : p.soft_material;
        }
      }
    }
  }
  return Mesh(CellKind::kHex8, std::move(coords), std::move(cells),
              std::move(materials));
}

}  // namespace prom::mesh
