#include "dla/dist_mg.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "common/flops.h"
#include "dla/dist_vec.h"
#include "la/vec.h"
#include "partition/greedy.h"

namespace prom::dla {
namespace {

/// Permutes a square matrix: out[new_i][new_j] = a[perm[new_i]][perm[new_j]].
la::Csr permute_square(const la::Csr& a, std::span<const idx> perm) {
  std::vector<idx> inv(static_cast<std::size_t>(a.nrows));
  for (idx i = 0; i < a.nrows; ++i) inv[perm[i]] = i;
  std::vector<la::Triplet> t;
  t.reserve(static_cast<std::size_t>(a.nnz()));
  for (idx i = 0; i < a.nrows; ++i) {
    for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
      t.push_back({inv[i], inv[a.colidx[k]], a.vals[k]});
    }
  }
  return la::Csr::from_triplets(a.nrows, a.ncols, t);
}

/// Permutes rows by row_perm and columns by col_perm (both new -> old).
la::Csr permute_rect(const la::Csr& a, std::span<const idx> row_perm,
                     std::span<const idx> col_perm) {
  std::vector<idx> row_inv(static_cast<std::size_t>(a.nrows));
  std::vector<idx> col_inv(static_cast<std::size_t>(a.ncols));
  for (idx i = 0; i < a.nrows; ++i) row_inv[row_perm[i]] = i;
  for (idx j = 0; j < a.ncols; ++j) col_inv[col_perm[j]] = j;
  std::vector<la::Triplet> t;
  t.reserve(static_cast<std::size_t>(a.nnz()));
  for (idx i = 0; i < a.nrows; ++i) {
    for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
      t.push_back({row_inv[i], col_inv[a.colidx[k]], a.vals[k]});
    }
  }
  return la::Csr::from_triplets(a.nrows, a.ncols, t);
}

graph::Graph graph_of_pattern(const la::Csr& a) {
  std::vector<std::pair<idx, idx>> edges;
  for (idx i = 0; i < a.nrows; ++i) {
    for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
      if (a.colidx[k] > i && a.colidx[k] < a.nrows) {
        edges.emplace_back(i, a.colidx[k]);
      }
    }
  }
  return graph::Graph::from_edges(a.nrows, edges);
}

}  // namespace

void DistMgLevel::smooth(parx::Comm& comm, std::span<const real> b_local,
                         std::span<real> x_local) const {
  const idx n = local_n();
  PROM_CHECK(static_cast<idx>(b_local.size()) == n &&
             static_cast<idx>(x_local.size()) == n);
  std::vector<real> r(n);
  a.spmv(comm, x_local, r);
  la::waxpby(1, b_local, -1, r, r);
  std::vector<real> rb, xb;
  for (std::size_t k = 0; k < blocks.size(); ++k) {
    const auto& block = blocks[k];
    rb.resize(block.size());
    xb.resize(block.size());
    for (std::size_t i = 0; i < block.size(); ++i) rb[i] = r[block[i]];
    factors[k].solve(rb, xb);
    for (std::size_t i = 0; i < block.size(); ++i) {
      x_local[block[i]] += omega * xb[i];
    }
  }
  count_flops(2LL * n);
}

DistHierarchy DistHierarchy::build(parx::Comm& comm,
                                   const mg::Hierarchy& serial,
                                   std::span<const idx> fine_vertex_owner) {
  const int nl = serial.num_levels();
  const int p = comm.size();
  DistHierarchy h;
  h.pre_smooth = serial.options().pre_smooth;
  h.post_smooth = serial.options().post_smooth;
  h.levels_.resize(static_cast<std::size_t>(nl));
  h.perms_.resize(static_cast<std::size_t>(nl));

  // Propagate dof ownership down the hierarchy via the MIS parent chain.
  // vertex_owner[l][v] = rank of vertex v at level l.
  std::vector<std::vector<idx>> vertex_owner(static_cast<std::size_t>(nl));
  vertex_owner[0].assign(fine_vertex_owner.begin(), fine_vertex_owner.end());
  for (int l = 1; l < nl; ++l) {
    const auto& sel = serial.level(l).selected_from_fine;
    vertex_owner[l].resize(sel.size());
    for (std::size_t c = 0; c < sel.size(); ++c) {
      vertex_owner[l][c] = vertex_owner[l - 1][sel[c]];
    }
  }

  std::vector<RowDist> dists(static_cast<std::size_t>(nl));
  for (int l = 0; l < nl; ++l) {
    const mg::MgLevel& lv = serial.level(l);
    const idx n = static_cast<idx>(lv.free_dofs.size());
    // Owner of free dof i = owner of its vertex; stable-sort dofs by owner.
    std::vector<idx> owner(static_cast<std::size_t>(n));
    for (idx i = 0; i < n; ++i) {
      owner[i] = vertex_owner[l][lv.free_dofs[i] / 3];
    }
    std::vector<idx>& perm = h.perms_[l];
    perm.resize(static_cast<std::size_t>(n));
    std::iota(perm.begin(), perm.end(), idx{0});
    std::stable_sort(perm.begin(), perm.end(),
                     [&](idx x, idx y) { return owner[x] < owner[y]; });
    std::vector<idx> sorted_owner(static_cast<std::size_t>(n));
    for (idx i = 0; i < n; ++i) sorted_owner[i] = owner[perm[i]];
    dists[l] = RowDist::from_sorted_owners(sorted_owner, p);
  }

  for (int l = 0; l < nl; ++l) {
    const mg::MgLevel& lv = serial.level(l);
    DistMgLevel& dl = h.levels_[l];
    const la::Csr a_perm = permute_square(lv.a, h.perms_[l]);
    dl.a = DistCsr(comm, a_perm, dists[l], dists[l]);
    if (l > 0) {
      const la::Csr r_perm =
          permute_rect(lv.r, h.perms_[l], h.perms_[l - 1]);
      dl.r = DistCsr(comm, r_perm, dists[l], dists[l - 1]);
    }
    if (l + 1 == nl) {
      // Redundant dense coarse factorization on every rank (global A).
      la::DenseMatrix dense(a_perm.nrows, a_perm.ncols);
      for (idx i = 0; i < a_perm.nrows; ++i) {
        for (nnz_t k = a_perm.rowptr[i]; k < a_perm.rowptr[i + 1]; ++k) {
          dense(i, a_perm.colidx[k]) = a_perm.vals[k];
        }
      }
      dl.direct = std::make_unique<la::DenseLdlt>(dense);
      if (!dl.direct->ok()) {
        real max_diag = 1;
        for (idx i = 0; i < a_perm.nrows; ++i) {
          max_diag = std::max(max_diag, std::abs(dense(i, i)));
        }
        for (real shift = 1e-12 * max_diag; !dl.direct->ok(); shift *= 10) {
          la::DenseMatrix shifted = dense;
          for (idx i = 0; i < a_perm.nrows; ++i) shifted(i, i) += shift;
          *dl.direct = la::DenseLdlt(shifted);
          PROM_CHECK(shift < 1e30);
        }
      }
    } else {
      // Processor-block Jacobi over the local diagonal block.
      dl.omega = serial.options().omega;
      dl.local_diag = dl.a.local_diagonal_block();
      dl.blocks = partition::block_jacobi_blocks(
          graph_of_pattern(dl.local_diag),
          serial.options().bj_blocks_per_1000);
      std::vector<idx> local_of(static_cast<std::size_t>(dl.local_diag.nrows),
                                kInvalidIdx);
      for (const auto& block : dl.blocks) {
        for (std::size_t i = 0; i < block.size(); ++i) {
          local_of[block[i]] = static_cast<idx>(i);
        }
        la::DenseMatrix blk(static_cast<idx>(block.size()),
                            static_cast<idx>(block.size()));
        real max_diag = 0;
        for (std::size_t i = 0; i < block.size(); ++i) {
          const idx gi = block[i];
          for (nnz_t k = dl.local_diag.rowptr[gi];
               k < dl.local_diag.rowptr[gi + 1]; ++k) {
            const idx lj = local_of[dl.local_diag.colidx[k]];
            if (lj != kInvalidIdx) blk(static_cast<idx>(i), lj) =
                dl.local_diag.vals[k];
            if (dl.local_diag.colidx[k] == gi) {
              max_diag = std::max(max_diag, dl.local_diag.vals[k]);
            }
          }
        }
        dl.factors.emplace_back(blk);
        if (max_diag <= 0) max_diag = 1;
        for (real shift = 1e-12 * max_diag; !dl.factors.back().ok();
             shift *= 10) {
          la::DenseMatrix shifted = blk;
          for (idx i = 0; i < blk.rows(); ++i) shifted(i, i) += shift;
          dl.factors.back() = la::DenseLdlt(shifted);
          PROM_CHECK(shift < 1e30);
        }
        for (const auto& bi : block) local_of[bi] = kInvalidIdx;
      }
    }
  }
  return h;
}

void dist_vcycle(parx::Comm& comm, const DistHierarchy& h, int level,
                 std::span<const real> b_local, std::span<real> x_local) {
  const DistMgLevel& lv = h.level(level);
  if (level + 1 == h.num_levels()) {
    // Redundant coarse solve: gather, factor-solve locally, keep my slice.
    const std::vector<real> b_full =
        dist_gather_all(comm, lv.a.row_dist(), b_local);
    std::vector<real> x_full(b_full.size());
    lv.direct->solve(b_full, x_full);
    const idx b0 = lv.a.row_dist().begin(comm.rank());
    for (idx i = 0; i < lv.local_n(); ++i) x_local[i] = x_full[b0 + i];
    return;
  }
  const DistMgLevel& coarse = h.level(level + 1);

  for (int s = 0; s < h.pre_smooth; ++s) lv.smooth(comm, b_local, x_local);

  std::vector<real> r(b_local.size());
  lv.a.spmv(comm, x_local, r);
  la::waxpby(1, b_local, -1, r, r);
  std::vector<real> rc(static_cast<std::size_t>(coarse.local_n()));
  coarse.r.spmv(comm, r, rc);

  std::vector<real> xc(rc.size(), 0);
  dist_vcycle(comm, h, level + 1, rc, xc);

  std::vector<real> dx(b_local.size());
  coarse.r.spmv_transpose(comm, xc, dx);
  la::axpy(1, dx, x_local);

  for (int s = 0; s < h.post_smooth; ++s) lv.smooth(comm, b_local, x_local);
}

std::vector<real> dist_fmg_cycle(parx::Comm& comm, const DistHierarchy& h,
                                 std::span<const real> b_local) {
  const int nl = h.num_levels();
  std::vector<std::vector<real>> bs(static_cast<std::size_t>(nl));
  bs[0].assign(b_local.begin(), b_local.end());
  for (int l = 1; l < nl; ++l) {
    bs[l].resize(static_cast<std::size_t>(h.level(l).local_n()));
    h.level(l).r.spmv(comm, bs[l - 1], bs[l]);
  }
  std::vector<real> x(bs[nl - 1].size(), 0);
  dist_vcycle(comm, h, nl - 1, bs[nl - 1], x);
  for (int l = nl - 2; l >= 0; --l) {
    std::vector<real> xf(static_cast<std::size_t>(h.level(l).local_n()));
    h.level(l + 1).r.spmv_transpose(comm, x, xf);
    x = std::move(xf);
    dist_vcycle(comm, h, l, bs[l], x);
  }
  return x;
}

void DistMgPreconditioner::apply(parx::Comm& comm,
                                 std::span<const real> x_local,
                                 std::span<real> y_local) const {
  if (kind_ == mg::CycleKind::kFmg) {
    const std::vector<real> z = dist_fmg_cycle(comm, *h_, x_local);
    std::copy(z.begin(), z.end(), y_local.begin());
  } else {
    std::fill(y_local.begin(), y_local.end(), real{0});
    dist_vcycle(comm, *h_, 0, x_local, y_local);
  }
}

la::KrylovResult dist_mg_pcg_solve(parx::Comm& comm, const DistHierarchy& h,
                                   std::span<const real> b_local,
                                   std::span<real> x_local,
                                   const mg::MgSolveOptions& opts) {
  const DistMgPreconditioner precond(h, opts.cycle);
  const DistCsrOperator a(h.level(0).a);
  la::KrylovOptions kopts;
  kopts.rtol = opts.rtol;
  kopts.max_iters = opts.max_iters;
  kopts.track_history = opts.track_history;
  return dist_pcg(comm, a, &precond, b_local, x_local, kopts);
}

}  // namespace prom::dla
