file(REMOVE_RECURSE
  "libprom_dla.a"
)
