#include "dla/dist_krylov.h"

#include "dla/parx_backend.h"
#include "la/krylov_any.h"

namespace prom::dla {

la::KrylovResult dist_pcg(parx::Comm& comm, const DistOperator& a,
                          const DistOperator* m, std::span<const real> b_local,
                          std::span<real> x_local,
                          const la::KrylovOptions& opts) {
  return la::pcg_any(ParxBackend{&comm}, a, m, b_local, x_local, opts);
}

std::vector<la::KrylovResult> dist_pcg_multi(
    parx::Comm& comm, const DistOperator& a, const DistOperator* m,
    const la::MultiVec& b_local, la::MultiVec& x_local,
    const la::KrylovOptions& opts, la::KrylovWorkspace* ws) {
  return la::pcg_multi_any(ParxBackend{&comm}, a, m, b_local, x_local, opts,
                           ws);
}

la::KrylovResult dist_gmres(parx::Comm& comm, const DistOperator& a,
                            const DistOperator* m,
                            std::span<const real> b_local,
                            std::span<real> x_local,
                            const la::GmresOptions& opts) {
  return la::gmres_any(ParxBackend{&comm}, a, m, b_local, x_local, opts);
}

la::KrylovResult dist_bicgstab(parx::Comm& comm, const DistOperator& a,
                               const DistOperator* m,
                               std::span<const real> b_local,
                               std::span<real> x_local,
                               const la::KrylovOptions& opts) {
  return la::bicgstab_any(ParxBackend{&comm}, a, m, b_local, x_local, opts);
}

}  // namespace prom::dla
