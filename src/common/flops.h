// Flop accounting. The paper's §6 efficiency decomposition is defined in
// terms of flop counts (work efficiency, flop scale efficiency, load
// balance), so every numerical kernel in `la`/`dla` reports the flops it
// performs to a thread-local counter. Virtual ranks run on distinct
// threads, which makes the thread-local counter a *per-rank* counter — the
// quantity §6 needs.
#pragma once

#include <cstdint>

namespace prom {

/// Adds `n` flops to the calling thread's counter.
void count_flops(std::int64_t n);

/// Current value of the calling thread's counter.
std::int64_t thread_flops();

/// Resets the calling thread's counter to zero.
void reset_thread_flops();

/// RAII window: measures flops performed on this thread inside a scope.
class FlopWindow {
 public:
  FlopWindow() : start_(thread_flops()) {}

  /// Flops counted on this thread since construction.
  std::int64_t flops() const { return thread_flops() - start_; }

 private:
  std::int64_t start_;
};

}  // namespace prom
