file(REMOVE_RECURSE
  "libprom_delaunay.a"
)
