// Table 2 reproduction: iteration counts for the first linear solve and
// the nonlinear solve over the scaled concentric-spheres series, plus the
// modeled Mflop/s of the multigrid iterations. Scaled to workstation size
// per DESIGN.md substitution 2 (the paper's base case is 80K dofs on 2
// processors; ours is ~24K on 2 virtual ranks). Shape claims under test:
//  - first-solve iterations roughly constant (paper: 29 -> 20),
//  - Newton iterations per step roughly constant,
//  - total Mflop/s growing nearly linearly with ranks.
//
// Environment: PROM_BENCH_FULL=1 enlarges the series and the Newton study.
#include <cstdio>
#include <cstdlib>

#include "app/driver.h"
#include "nonlinear/newton.h"

using namespace prom;

int main() {
  const bool full = std::getenv("PROM_BENCH_FULL") != nullptr;
  const int cases = full ? 4 : 3;
  const int newton_cases = full ? 2 : 1;
  const int newton_steps = full ? 10 : 8;

  std::printf("Table 2: iterations over the scaled series "
              "(crush scaled per DESIGN.md)\n");
  std::printf("%-10s %-7s %-22s %-11s %-9s %-9s %-13s\n", "equations",
              "ranks", "MG-PCG its (1st lin.)", "total PCG", "Newton",
              "avg PCG", "model Mflop/s");

  const auto series = app::scaled_series(cases);
  for (int i = 0; i < cases; ++i) {
    const app::ScaledCase& sc = series[i];
    const app::ModelProblem problem =
        app::make_sphere_problem(sc.params, 1.2);
    app::LinearStudyConfig cfg;
    cfg.nranks = sc.ranks;
    cfg.rtol = 1e-4;  // the paper's first-linear-solve tolerance
    const app::LinearStudyReport rep = app::run_linear_study(problem, cfg);

    int total_pcg = -1, total_newton = -1;
    double avg_pcg = -1;
    if (i < newton_cases) {
      // The Newton study uses a gentler crush (0.8) so the simplified
      // finite-strain kinematics stay robust at this outer-layer
      // resolution (see DESIGN.md substitution 4 / EXPERIMENTS.md).
      app::ModelProblem nl_problem =
          app::make_sphere_problem(sc.params, 0.8);
      fem::FeProblem fe(nl_problem.mesh, nl_problem.materials,
                        nl_problem.dofmap);
      nonlinear::NewtonDriver driver(fe, mg::MgOptions{});
      const auto steps = driver.run_load_steps(newton_steps);
      total_pcg = 0;
      total_newton = 0;
      for (const auto& s : steps) {
        total_newton += s.newton_iters;
        for (int it : s.linear_iters) total_pcg += it;
      }
      avg_pcg = total_newton > 0
                    ? static_cast<double>(total_pcg) / total_newton
                    : 0;
    }

    char pcg_buf[16], newton_buf[16], avg_buf[16];
    std::snprintf(pcg_buf, sizeof pcg_buf, "%d", total_pcg);
    std::snprintf(newton_buf, sizeof newton_buf, "%d", total_newton);
    std::snprintf(avg_buf, sizeof avg_buf, "%.1f", avg_pcg);
    std::printf("%-10d %-7d %-22d %-11s %-9s %-9s %-13.0f\n", rep.unknowns,
                rep.ranks, rep.iterations,
                total_pcg >= 0 ? pcg_buf : "-",
                total_newton >= 0 ? newton_buf : "-",
                avg_pcg >= 0 ? avg_buf : "-", rep.modeled_mflops);
  }
  std::printf("\n(paper, 80K..39M dofs on 2..960 procs: 29 -> 20-21 first-"
              "solve its,\n ~3000-4100 total PCG, 62-70 Newton, 44-65 avg, "
              "63 -> 19253 Mflop/s)\n");
  std::printf("(nonlinear columns computed for the first %d case(s) with "
              "%d load steps;\n set PROM_BENCH_FULL=1 for more)\n",
              newton_cases, newton_steps);
  return 0;
}
