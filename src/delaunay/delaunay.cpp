#include "delaunay/delaunay.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.h"
#include "common/rng.h"
#include "geom/predicates.h"

namespace prom::delaunay {
namespace {

// Face opposite v[i], ordered so orient3d(face, v[i]) > 0 for a positively
// oriented tet — i.e. the face normal (right-hand rule) points *into* the
// tet from that face.
constexpr int kFaceOf[4][3] = {{1, 3, 2}, {0, 2, 3}, {0, 3, 1}, {0, 1, 2}};

// 6-tet decomposition of a hexahedron along the 0-6 diagonal (vertex order
// as produced by the super-box corner loop below).
constexpr int kBoxTets[6][4] = {{0, 1, 2, 6}, {0, 2, 3, 6}, {0, 3, 7, 6},
                                {0, 7, 4, 6}, {0, 4, 5, 6}, {0, 5, 1, 6}};

}  // namespace

Delaunay3::Delaunay3(std::span<const Vec3> points,
                     const DelaunayOptions& opts) {
  num_points_ = static_cast<idx>(points.size());

  Aabb box = Aabb::of(points);
  if (points.empty()) box = Aabb::of(std::vector<Vec3>{{0, 0, 0}, {1, 1, 1}});
  const Vec3 c = box.center();
  real half = box.max_extent() * real{0.5};
  if (half == 0) half = 1;
  half *= opts.super_box_scale;

  // Super-box corners in VTK hex order (ids 0..7).
  coords_.reserve(points.size() + 8);
  const real sx[8] = {-1, 1, 1, -1, -1, 1, 1, -1};
  const real sy[8] = {-1, -1, 1, 1, -1, -1, 1, 1};
  const real sz[8] = {-1, -1, -1, -1, 1, 1, 1, 1};
  for (int a = 0; a < 8; ++a) {
    coords_.push_back({c.x + sx[a] * half, c.y + sy[a] * half,
                       c.z + sz[a] * half});
  }

  // Jittered copies of the input points (predicate coordinates).
  Rng rng(0x5eedULL);
  const real jmag = opts.jitter * box.max_extent();
  for (const Vec3& p : points) {
    Vec3 q = p;
    if (jmag > 0) {
      q.x += jmag * (rng.next_real() - real{0.5});
      q.y += jmag * (rng.next_real() - real{0.5});
      q.z += jmag * (rng.next_real() - real{0.5});
    }
    coords_.push_back(q);
  }

  // Seed triangulation: 6 tets of the super-box, oriented positively, with
  // adjacency built by face matching.
  for (const auto& bt : kBoxTets) {
    Tet t;
    t.v = {bt[0], bt[1], bt[2], bt[3]};
    if (orient3d(coords_[t.v[0]], coords_[t.v[1]], coords_[t.v[2]],
                 coords_[t.v[3]]) < 0) {
      std::swap(t.v[2], t.v[3]);
    }
    t.nbr = {kInvalidIdx, kInvalidIdx, kInvalidIdx, kInvalidIdx};
    tets_.push_back(t);
  }
  std::map<std::array<idx, 3>, std::pair<idx, int>> face_map;
  for (idx t = 0; t < static_cast<idx>(tets_.size()); ++t) {
    for (int f = 0; f < 4; ++f) {
      std::array<idx, 3> key = {tets_[t].v[kFaceOf[f][0]],
                                tets_[t].v[kFaceOf[f][1]],
                                tets_[t].v[kFaceOf[f][2]]};
      std::sort(key.begin(), key.end());
      auto it = face_map.find(key);
      if (it == face_map.end()) {
        face_map[key] = {t, f};
      } else {
        tets_[t].nbr[f] = it->second.first;
        tets_[it->second.first].nbr[it->second.second] = t;
      }
    }
  }

  for (idx i = 0; i < num_points_; ++i) insert_point(8 + i);
}

bool Delaunay3::tet_touches_super(idx t) const {
  for (idx v : tets_[t].v) {
    if (is_super_vertex(v)) return true;
  }
  return false;
}

bool Delaunay3::point_in_tet(idx t, const Vec3& p) const {
  const Tet& tet = tets_[t];
  for (int f = 0; f < 4; ++f) {
    if (orient3d(coords_[tet.v[kFaceOf[f][0]]], coords_[tet.v[kFaceOf[f][1]]],
                 coords_[tet.v[kFaceOf[f][2]]], p) < 0) {
      return false;
    }
  }
  return true;
}

idx Delaunay3::walk_from(idx start, const Vec3& p) const {
  idx t = start;
  const idx max_steps = static_cast<idx>(tets_.size()) * 4 + 64;
  for (idx step = 0; step < max_steps; ++step) {
    PROM_CHECK(tets_[t].alive);
    const Tet& tet = tets_[t];
    bool moved = false;
    // Rotate the face scan origin by step to avoid degenerate cycling.
    for (int ff = 0; ff < 4 && !moved; ++ff) {
      const int f = (ff + static_cast<int>(step)) % 4;
      const real o =
          orient3d(coords_[tet.v[kFaceOf[f][0]]], coords_[tet.v[kFaceOf[f][1]]],
                   coords_[tet.v[kFaceOf[f][2]]], p);
      if (o < 0) {
        const idx nb = tet.nbr[f];
        PROM_CHECK_MSG(nb != kInvalidIdx,
                       "Delaunay walk left the super-box (point outside?)");
        t = nb;
        moved = true;
      }
    }
    if (!moved) return t;
  }
  // Degenerate cycling fallback: exhaustive scan.
  for (idx tt = 0; tt < static_cast<idx>(tets_.size()); ++tt) {
    if (tets_[tt].alive && point_in_tet(tt, p)) return tt;
  }
  PROM_CHECK_MSG(false, "Delaunay locate failed");
  return kInvalidIdx;
}

idx Delaunay3::locate(const Vec3& p, idx hint) const {
  idx start = (hint != kInvalidIdx && hint < static_cast<idx>(tets_.size()) &&
               tets_[hint].alive)
                  ? hint
                  : last_tet_;
  if (!tets_[start].alive) {
    // Find any alive tet to start from.
    for (idx t = 0; t < static_cast<idx>(tets_.size()); ++t) {
      if (tets_[t].alive) {
        start = t;
        break;
      }
    }
  }
  return walk_from(start, p);
}

void Delaunay3::insert_point(idx vertex_id) {
  const Vec3& p = coords_[vertex_id];
  const idx containing = locate(p);

  // Grow the cavity: every alive tet whose circumsphere strictly contains
  // p, found by BFS across faces from the containing tet.
  std::vector<idx> cavity{containing};
  std::vector<char> in_cavity(tets_.size(), 0);
  in_cavity[containing] = 1;
  auto sphere_contains = [&](idx t) {
    const Tet& tet = tets_[t];
    return insphere(coords_[tet.v[0]], coords_[tet.v[1]], coords_[tet.v[2]],
                    coords_[tet.v[3]], p) > 0;
  };
  for (std::size_t head = 0; head < cavity.size(); ++head) {
    const Tet tet = tets_[cavity[head]];
    for (int f = 0; f < 4; ++f) {
      const idx nb = tet.nbr[f];
      if (nb != kInvalidIdx && !in_cavity[nb] && sphere_contains(nb)) {
        in_cavity[nb] = 1;
        cavity.push_back(nb);
      }
    }
  }

  // Collect boundary faces; ensure each is strictly visible from p (add
  // the offending cavity-side tet's neighbor... if a boundary face is not
  // strictly visible, absorb the tet across it into the cavity to restore
  // star-shapedness, and rebuild).
  struct BoundaryFace {
    std::array<idx, 3> v;  // oriented so orient3d(v, p) > 0
    idx outer;             // tet across the face (not in cavity), or -1
  };
  std::vector<BoundaryFace> boundary;
  for (bool stable = false; !stable;) {
    stable = true;
    boundary.clear();
    for (idx t : cavity) {
      const Tet& tet = tets_[t];
      for (int f = 0; f < 4; ++f) {
        const idx nb = tet.nbr[f];
        if (nb != kInvalidIdx && in_cavity[nb]) continue;
        const std::array<idx, 3> fv = {tet.v[kFaceOf[f][0]],
                                       tet.v[kFaceOf[f][1]],
                                       tet.v[kFaceOf[f][2]]};
        if (orient3d(coords_[fv[0]], coords_[fv[1]], coords_[fv[2]], p) <= 0) {
          // Not strictly visible: absorb the outer tet (if any) to fix the
          // cavity shape; with no outer tet we'd be on the hull, which the
          // super-box prevents.
          PROM_CHECK_MSG(nb != kInvalidIdx, "cavity reached the hull");
          in_cavity[nb] = 1;
          cavity.push_back(nb);
          stable = false;
          break;
        }
        boundary.push_back({fv, nb});
      }
      if (!stable) break;
    }
  }

  // Retire the cavity and build the new tets (one per boundary face).
  for (idx t : cavity) tets_[t].alive = false;
  std::map<std::pair<idx, idx>, std::pair<idx, int>> edge_map;
  std::vector<idx> new_tets;
  new_tets.reserve(boundary.size());
  for (const BoundaryFace& bf : boundary) {
    Tet nt;
    nt.v = {bf.v[0], bf.v[1], bf.v[2], vertex_id};
    nt.nbr = {kInvalidIdx, kInvalidIdx, kInvalidIdx, kInvalidIdx};
    const idx tid = static_cast<idx>(tets_.size());
    // Outer link: the face opposite the new vertex (index 3).
    nt.nbr[3] = bf.outer;
    if (bf.outer != kInvalidIdx) {
      Tet& out = tets_[bf.outer];
      std::array<idx, 3> key = bf.v;
      std::sort(key.begin(), key.end());
      for (int f = 0; f < 4; ++f) {
        std::array<idx, 3> ok = {out.v[kFaceOf[f][0]], out.v[kFaceOf[f][1]],
                                 out.v[kFaceOf[f][2]]};
        std::sort(ok.begin(), ok.end());
        if (ok == key) {
          out.nbr[f] = tid;
          break;
        }
      }
    }
    tets_.push_back(nt);
    new_tets.push_back(tid);
    // Internal links: new tets sharing a cavity-boundary edge. The face of
    // the new tet opposite base vertex v[i] contains the other two base
    // vertices and the new vertex.
    for (int i = 0; i < 3; ++i) {
      idx e0 = bf.v[(i + 1) % 3], e1 = bf.v[(i + 2) % 3];
      if (e0 > e1) std::swap(e0, e1);
      auto it = edge_map.find({e0, e1});
      if (it == edge_map.end()) {
        edge_map[{e0, e1}] = {tid, i};
      } else {
        tets_[tid].nbr[i] = it->second.first;
        tets_[it->second.first].nbr[it->second.second] = tid;
      }
    }
  }
  PROM_CHECK_MSG(!new_tets.empty(), "insertion produced no tets");
  last_tet_ = new_tets.back();
}

std::array<real, 4> Delaunay3::barycentric(idx t, const Vec3& p) const {
  const Tet& tet = tets_[t];
  const Vec3& a = coords_[tet.v[0]];
  const Vec3& b = coords_[tet.v[1]];
  const Vec3& c = coords_[tet.v[2]];
  const Vec3& d = coords_[tet.v[3]];
  const real vol = orient3d(a, b, c, d);
  PROM_CHECK_MSG(vol != 0, "degenerate tet in barycentric()");
  return {orient3d(p, b, c, d) / vol, orient3d(a, p, c, d) / vol,
          orient3d(a, b, p, d) / vol, orient3d(a, b, c, p) / vol};
}

idx Delaunay3::count_delaunay_violations() const {
  idx violations = 0;
  for (const Tet& tet : tets_) {
    if (!tet.alive) continue;
    for (idx v = 0; v < static_cast<idx>(coords_.size()); ++v) {
      if (v == tet.v[0] || v == tet.v[1] || v == tet.v[2] || v == tet.v[3]) {
        continue;
      }
      if (insphere(coords_[tet.v[0]], coords_[tet.v[1]], coords_[tet.v[2]],
                   coords_[tet.v[3]], coords_[v]) > 0) {
        ++violations;
      }
    }
  }
  return violations;
}

idx Delaunay3::num_alive_tets() const {
  return static_cast<idx>(
      std::count_if(tets_.begin(), tets_.end(),
                    [](const Tet& t) { return t.alive; }));
}

}  // namespace prom::delaunay
