# Empty dependencies file for bench_fig10_times.
# This may be replaced when dependencies are built.
