// One level of the automatic coarsening pipeline (§3): classify → modify
// graph → MIS → Delaunay remesh → restriction. Applied recursively by
// mg::Hierarchy, "to produce a series of coarse grids, and their attendant
// operators, from a 'fine' (application provided) grid."
#pragma once

#include <cstdint>
#include <vector>

#include "coarsen/classify.h"
#include "coarsen/modified_graph.h"
#include "coarsen/restriction.h"
#include "graph/graph.h"
#include "graph/mis.h"

namespace prom::coarsen {

enum class MisOrdering : std::uint8_t { kNatural, kRandom };

struct CoarsenOptions {
  FaceIdOptions face;
  RestrictionOptions restriction;
  /// Apply the §4.6 feature-aware edge deletion.
  bool modify_graph = true;
  /// Grids with index >= this are reclassified from their own (tet) mesh;
  /// below it they inherit the type of their fine parent vertex. Paper:
  /// "we generally reclassify the third and subsequent grids" → 2.
  int reclassify_from_level = 2;
  /// §4.7: "use natural ordering for the exterior vertices and a random
  /// ordering for the interior vertices."
  MisOrdering exterior_order = MisOrdering::kNatural;
  MisOrdering interior_order = MisOrdering::kRandom;
  std::uint64_t seed = 0x9d15u;
};

/// MIS traversal order per §4.7: exterior vertices first (their relative
/// order natural or random per options), then interior vertices. The rank
/// sort inside greedy_mis dominates, so only the within-class order
/// matters here.
std::vector<idx> mis_ordering(const Classification& cls,
                              const CoarsenOptions& opts);

struct CoarsenLevelResult {
  std::vector<idx> selected;       ///< MIS (fine-level vertex indices)
  la::Csr r_vertex;                ///< n_coarse x n_fine weights
  mesh::Mesh coarse_mesh;          ///< pruned Delaunay tets, coarse-local
  Classification coarse_cls;      ///< classification of the coarse grid
  std::vector<idx> lost;           ///< fine vertices on the fallback path
  ModifiedGraphStats graph_stats;
};

/// Coarsens one grid. `level_index` is the index of the *fine* grid being
/// coarsened (0 = application grid); it controls reclassification.
CoarsenLevelResult coarsen_level(const std::vector<Vec3>& coords,
                                 const graph::Graph& vertex_graph,
                                 const Classification& cls, int level_index,
                                 const CoarsenOptions& opts = {});

}  // namespace prom::coarsen
