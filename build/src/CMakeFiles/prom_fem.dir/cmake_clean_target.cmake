file(REMOVE_RECURSE
  "libprom_fem.a"
)
