file(REMOVE_RECURSE
  "CMakeFiles/test_la_vec.dir/test_la_vec.cpp.o"
  "CMakeFiles/test_la_vec.dir/test_la_vec.cpp.o.d"
  "test_la_vec"
  "test_la_vec.pdb"
  "test_la_vec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_la_vec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
