// Method-of-manufactured-solutions convergence for the scalar equation
// classes: a known exact solution is imposed through the source term and
// Dirichlet data on the whole boundary, and the discrete L2 error must
// (a) vanish for solutions in the trilinear space (linears) and
// (b) contract at O(h^2) under uniform refinement for smooth polynomial
// and trigonometric solutions — on the structured box and on the warped
// sphere-in-cube mesh. Solves run through the scalar multigrid hierarchy
// (PCG for diffusion, right-preconditioned GMRES for advection-diffusion),
// so the whole block-size-1 stack is on the hook, not just the assembly.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <utility>
#include <vector>

#include "app/driver.h"
#include "fem/scalar.h"
#include "la/krylov.h"
#include "mesh/generate.h"
#include "mg/hierarchy.h"
#include "mg/solver.h"

namespace prom {
namespace {

struct Exact {
  std::function<real(const Vec3&)> u;
  std::function<Vec3(const Vec3&)> grad;
  std::function<real(const Vec3&)> laplace;
};

Exact linear_exact() {
  Exact e;
  e.u = [](const Vec3& x) { return 1.0 + 2.0 * x.x - 3.0 * x.y + 4.0 * x.z; };
  e.grad = [](const Vec3&) { return Vec3{2.0, -3.0, 4.0}; };
  e.laplace = [](const Vec3&) { return real{0}; };
  return e;
}

Exact quadratic_exact() {
  Exact e;
  e.u = [](const Vec3& x) {
    return x.x * x.x + 2.0 * x.y * x.y + 3.0 * x.z * x.z - x.x * x.y;
  };
  e.grad = [](const Vec3& x) {
    return Vec3{2.0 * x.x - x.y, 4.0 * x.y - x.x, 6.0 * x.z};
  };
  e.laplace = [](const Vec3&) { return real{12}; };
  return e;
}

Exact trig_exact(real length) {
  const real w = M_PI / length;
  Exact e;
  e.u = [w](const Vec3& x) {
    return std::sin(w * x.x) * std::sin(w * x.y) * std::sin(w * x.z);
  };
  e.grad = [w](const Vec3& x) {
    return Vec3{w * std::cos(w * x.x) * std::sin(w * x.y) * std::sin(w * x.z),
                w * std::sin(w * x.x) * std::cos(w * x.y) * std::sin(w * x.z),
                w * std::sin(w * x.x) * std::sin(w * x.y) * std::cos(w * x.z)};
  };
  e.laplace = [w](const Vec3& x) {
    return -3.0 * w * w * std::sin(w * x.x) * std::sin(w * x.y) *
           std::sin(w * x.z);
  };
  return e;
}

struct Pde {
  real kappa = 1;           ///< isotropic diffusion coefficient
  Vec3 velocity{0, 0, 0};   ///< constant advection field (zero = Poisson)
  real reaction = 0;        ///< constant reaction coefficient c
  bool supg = false;
};

/// Assembles and solves the MMS problem on `mesh` with every boundary
/// vertex pinned to the exact solution, returning the L2 error.
real mms_l2_error(const mesh::Mesh& mesh, const Exact& exact, const Pde& pde,
                  std::vector<std::function<bool(const Vec3&)>> boundary) {
  fem::ScalarDofMap dm(mesh.num_vertices());
  for (const auto& pred : boundary) {
    for (idx v : mesh.vertices_where(pred)) dm.fix(v, exact.u(mesh.coord(v)));
  }
  dm.finalize();
  EXPECT_GT(dm.num_free(), 0);

  fem::ScalarCoefficients coeffs;
  const real kappa = pde.kappa;
  const Vec3 vel = pde.velocity;
  coeffs.diffusion = [kappa](idx, const Vec3&) {
    return kappa * Mat3::identity();
  };
  if (!(vel == Vec3{})) {
    coeffs.velocity = [vel](idx, const Vec3&) { return vel; };
  }
  const real c = pde.reaction;
  if (c != 0) {
    coeffs.reaction = [c](idx, const Vec3&) { return c; };
  }
  coeffs.supg = pde.supg;
  // f = -kappa lap(u) + v . grad(u) + c u, the strong residual of the
  // exact solution.
  coeffs.source = [kappa, vel, c, &exact](idx, const Vec3& x) {
    return -kappa * exact.laplace(x) + dot(vel, exact.grad(x)) +
           c * exact.u(x);
  };

  fem::ScalarSystem sys = fem::assemble_scalar_system(mesh, dm, coeffs);
  const bool symmetric = vel == Vec3{};
  mg::MgOptions mo =
      app::default_mg_options(symmetric ? app::EquationClass::kPoissonHet
                                        : app::EquationClass::kAdvDiff);
  mo.coarsest_max_dofs = 100;
  std::vector<real> rhs = std::move(sys.rhs);
  const mg::Hierarchy h =
      mg::Hierarchy::build_scalar(mesh, dm, std::move(sys.stiffness), mo);
  EXPECT_EQ(h.block_size(), 1);

  mg::MgSolveOptions so;
  so.rtol = 1e-11;
  so.max_iters = 400;
  so.krylov = app::default_krylov(symmetric ? app::EquationClass::kPoissonHet
                                            : app::EquationClass::kAdvDiff);
  std::vector<real> x(rhs.size(), 0);
  const la::KrylovResult r = mg::mg_krylov_solve(h, rhs, x, so);
  EXPECT_TRUE(r.converged);

  const std::vector<real> full = dm.full_from_free(x);
  return fem::scalar_l2_error(mesh, full, exact.u);
}

std::vector<std::function<bool(const Vec3&)>> box_boundary(real side) {
  const real eps = 1e-9 * side;
  return {[=](const Vec3& x) { return x.x < eps || x.x > side - eps; },
          [=](const Vec3& x) { return x.y < eps || x.y > side - eps; },
          [=](const Vec3& x) { return x.z < eps || x.z > side - eps; }};
}

mesh::Mesh unit_box(idx n) {
  return mesh::box_hex(n, n, n, {0, 0, 0}, {1, 1, 1});
}

TEST(EquationsMms, PoissonReproducesLinearExactly) {
  // Trilinear elements contain linears: the discrete solution is the
  // interpolant, exact to solver tolerance.
  const real err = mms_l2_error(unit_box(5), linear_exact(), {.kappa = 2.0},
                                box_boundary(1));
  EXPECT_LE(err, 1e-9);
}

TEST(EquationsMms, AdvdiffReproducesLinearExactly) {
  // SUPG is consistent (the stabilization tests the strong residual, zero
  // for the exact linear), so exactness survives the stabilized form.
  Pde pde;
  pde.kappa = 0.1;
  pde.velocity = {1.0, 0.5, 0.25};
  pde.supg = true;
  const real err =
      mms_l2_error(unit_box(5), linear_exact(), pde, box_boundary(1));
  EXPECT_LE(err, 1e-9);
}

struct RateCase {
  const char* name;
  Exact exact;
  Pde pde;
};

TEST(EquationsMms, ReactionReproducesLinearExactly) {
  // The mass term of a linear solution integrates exactly under both
  // quadrature rules, so -lap(u) + c u = f keeps linears in the discrete
  // kernel of the error.
  const real err = mms_l2_error(unit_box(5), linear_exact(),
                                {.kappa = 1.0, .reaction = 50.0},
                                box_boundary(1));
  EXPECT_LE(err, 1e-9);
}

TEST(EquationsMms, SecondOrderL2RatesOnBox) {
  const RateCase cases[] = {
      {"poisson_quadratic", quadratic_exact(), {.kappa = 1.0}},
      {"poisson_trig", trig_exact(1.0), {.kappa = 1.0}},
      {"reaction_trig",
       trig_exact(1.0),
       {.kappa = 1.0, .reaction = 1e3}},  // reaction-dominated
      {"advdiff_quadratic",
       quadratic_exact(),
       {.kappa = 0.5, .velocity = {1.0, 0.5, 0.25}, .supg = true}},
      {"advdiff_trig",
       trig_exact(1.0),
       {.kappa = 0.5, .velocity = {1.0, 0.5, 0.25}, .supg = true}},
  };
  for (const RateCase& c : cases) {
    const real e_coarse =
        mms_l2_error(unit_box(4), c.exact, c.pde, box_boundary(1));
    const real e_fine =
        mms_l2_error(unit_box(8), c.exact, c.pde, box_boundary(1));
    ASSERT_GT(e_coarse, 0) << c.name;
    ASSERT_GT(e_fine, 0) << c.name;
    const real rate = std::log2(e_coarse / e_fine);
    EXPECT_GE(rate, 1.8) << c.name << ": e(h)=" << e_coarse
                         << " e(h/2)=" << e_fine;
    // Reaction dominance pushes the discrete solution toward the L2
    // projection, which superconverges at these coarse sizes (observed
    // rate ~3 at n=4->8); the looser ceiling still catches an
    // accidentally-exact manufactured solution.
    const real ceiling = c.pde.reaction > 1 ? 3.5 : 2.8;
    EXPECT_LE(rate, ceiling) << c.name << ": superconvergence artifact?";
  }
}

TEST(EquationsMms, ReactionFactoryConvergesAtSecondOrder) {
  // The app factory's manufactured reaction problem end to end: assemble
  // through ScalarCoefficients::reaction, solve through the scalar MG
  // stack, and gate the L2 rate against u = sin(pi x)sin(pi y)sin(pi z).
  const auto exact = [](const Vec3& x) {
    return std::sin(M_PI * x.x) * std::sin(M_PI * x.y) * std::sin(M_PI * x.z);
  };
  real errs[2];
  for (int step = 0; step < 2; ++step) {
    const idx n = step == 0 ? 4 : 8;
    const app::ModelProblem p = app::make_reaction_problem(n);
    fem::ScalarSystem sys =
        fem::assemble_scalar_system(p.mesh, p.scalar_dofmap, p.coeffs);
    mg::MgOptions mo = app::default_mg_options(p.equation);
    mo.coarsest_max_dofs = 100;
    std::vector<real> rhs = std::move(sys.rhs);
    const mg::Hierarchy h = mg::Hierarchy::build_scalar(
        p.mesh, p.scalar_dofmap, std::move(sys.stiffness), mo);
    mg::MgSolveOptions so;
    so.rtol = 1e-11;
    so.max_iters = 400;
    so.krylov = app::default_krylov(p.equation);
    std::vector<real> x(rhs.size(), 0);
    const la::KrylovResult r = mg::mg_krylov_solve(h, rhs, x, so);
    ASSERT_TRUE(r.converged);
    const std::vector<real> full = p.scalar_dofmap.full_from_free(x);
    errs[step] = fem::scalar_l2_error(p.mesh, full, exact);
    ASSERT_GT(errs[step], 0);
  }
  const real rate = std::log2(errs[0] / errs[1]);
  EXPECT_GE(rate, 1.8) << "e(h)=" << errs[0] << " e(h/2)=" << errs[1];
  // Same reaction-dominated superconvergence allowance as the rate table.
  EXPECT_LE(rate, 3.5);
}

TEST(EquationsMms, SecondOrderL2RateOnSphereMesh) {
  // The warped sphere-in-cube mesh: non-affine hexes, curved interior
  // layers. layers_per_shell doubles every element count exactly, so the
  // two meshes are an exact h -> h/2 refinement pair.
  mesh::SphereInCubeParams params;
  params.num_shells = 3;
  params.base_core_layers = 2;
  params.base_outer_layers = 2;
  const real side = params.cube_side;
  const Exact exact = trig_exact(side);

  // Start from layers_per_shell = 2: the single-layer mesh is still
  // pre-asymptotic for this solution (rate ~1.5).
  real errs[2];
  for (int step = 0; step < 2; ++step) {
    params.layers_per_shell = 2 * (step + 1);
    const mesh::Mesh mesh = mesh::sphere_in_cube_octant(params);
    errs[step] =
        mms_l2_error(mesh, exact, {.kappa = 1.0}, box_boundary(side));
  }
  ASSERT_GT(errs[0], 0);
  ASSERT_GT(errs[1], 0);
  const real rate = std::log2(errs[0] / errs[1]);
  EXPECT_GE(rate, 1.7) << "e(h)=" << errs[0] << " e(h/2)=" << errs[1];
}

}  // namespace
}  // namespace prom
