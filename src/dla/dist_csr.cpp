#include "dla/dist_csr.h"

#include <algorithm>

#include "common/error.h"
#include "obs/trace.h"

namespace prom::dla {
namespace {

// Forward ghost exchange; the HaloPlan's reverse (transpose) path uses
// kTagGhost + 1.
constexpr int kTagGhost = 301;

}  // namespace

void DistCsr::init_from_local(parx::Comm& comm, const la::Csr& local_rows) {
  PROM_CHECK(local_rows.nrows == rows_.local_size(rank_));
  PROM_CHECK(local_rows.ncols == cols_.global_size());
  const idx c0 = cols_.begin(rank_), c1 = cols_.end(rank_);
  const idx n_local_cols = c1 - c0;

  // Ghost columns: every referenced column outside my owned range, sorted
  // ascending by global id. O(local nnz log) — never touches global size.
  ghost_cols_.clear();
  for (idx c : local_rows.colidx) {
    if (c < c0 || c >= c1) ghost_cols_.push_back(c);
  }
  std::sort(ghost_cols_.begin(), ghost_cols_.end());
  ghost_cols_.erase(std::unique(ghost_cols_.begin(), ghost_cols_.end()),
                    ghost_cols_.end());

  const auto ghost_slot = [&](idx c) {
    return static_cast<idx>(
        std::lower_bound(ghost_cols_.begin(), ghost_cols_.end(), c) -
        ghost_cols_.begin());
  };

  // Local matrix with remapped columns (storage order preserved).
  local_.nrows = local_rows.nrows;
  local_.ncols = n_local_cols + static_cast<idx>(ghost_cols_.size());
  local_.rowptr = local_rows.rowptr;
  local_.vals = local_rows.vals;
  local_.colidx.resize(local_rows.colidx.size());
  for (std::size_t k = 0; k < local_rows.colidx.size(); ++k) {
    const idx c = local_rows.colidx[k];
    local_.colidx[k] =
        c >= c0 && c < c1 ? c - c0 : n_local_cols + ghost_slot(c);
  }

  // Build the exchange plan: tell each owner which of its entries I need.
  std::vector<std::vector<idx>> requests(comm.size());
  for (idx g : ghost_cols_) requests[cols_.owner(g)].push_back(g);
  const auto incoming = comm.alltoallv(requests);

  plan_ = HaloPlan{};
  for (int r = 0; r < comm.size(); ++r) {
    if (r == rank_) continue;
    if (!incoming[r].empty()) {
      std::vector<idx> local_ids;
      local_ids.reserve(incoming[r].size());
      for (idx g : incoming[r]) {
        PROM_CHECK(cols_.owner(g) == rank_);
        local_ids.push_back(g - c0);
      }
      plan_.add_send(r, std::move(local_ids));
    }
    if (!requests[r].empty()) {
      // Absolute x_ext slots: the ghost block starts after the owned cols.
      std::vector<idx> slots;
      slots.reserve(requests[r].size());
      for (idx g : requests[r]) slots.push_back(n_local_cols + ghost_slot(g));
      plan_.add_recv(r, std::move(slots));
    }
  }
  plan_.finalize(kTagGhost);

  // Interior/boundary split: interior rows reference only owned columns,
  // so they can be computed while the ghost exchange is in flight.
  interior_rows_.clear();
  boundary_rows_.clear();
  for (idx i = 0; i < local_.nrows; ++i) {
    bool interior = true;
    for (nnz_t k = local_.rowptr[i]; k < local_.rowptr[i + 1]; ++k) {
      if (local_.colidx[k] >= n_local_cols) {
        interior = false;
        break;
      }
    }
    (interior ? interior_rows_ : boundary_rows_).push_back(i);
  }

  x_ext_.assign(static_cast<std::size_t>(local_.ncols), real{0});
  y_ext_.assign(static_cast<std::size_t>(local_.ncols), real{0});
}

DistCsr::DistCsr(parx::Comm& comm, const la::Csr& a, RowDist row_dist,
                 RowDist col_dist)
    : rank_(comm.rank()),
      rows_(std::move(row_dist)),
      cols_(std::move(col_dist)) {
  PROM_CHECK(rows_.global_size() == a.nrows);
  PROM_CHECK(cols_.global_size() == a.ncols);
  PROM_CHECK(rows_.nranks() == comm.size() && cols_.nranks() == comm.size());

  // Slice my rows out of the replicated matrix, keeping global columns.
  const idx r0 = rows_.begin(rank_), r1 = rows_.end(rank_);
  la::Csr mine;
  mine.nrows = r1 - r0;
  mine.ncols = a.ncols;
  mine.rowptr.assign(static_cast<std::size_t>(mine.nrows) + 1, 0);
  for (idx i = r0; i < r1; ++i) {
    for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
      mine.colidx.push_back(a.colidx[k]);
      mine.vals.push_back(a.vals[k]);
    }
    mine.rowptr[i - r0 + 1] = static_cast<nnz_t>(mine.colidx.size());
  }
  init_from_local(comm, mine);
}

DistCsr DistCsr::from_local_rows(parx::Comm& comm, const la::Csr& local_rows,
                                 RowDist row_dist, RowDist col_dist) {
  DistCsr d;
  d.rank_ = comm.rank();
  d.rows_ = std::move(row_dist);
  d.cols_ = std::move(col_dist);
  PROM_CHECK(d.rows_.nranks() == comm.size() &&
             d.cols_.nranks() == comm.size());
  d.init_from_local(comm, local_rows);
  return d;
}

DistCsr DistCsr::from_global_permuted(parx::Comm& comm, const la::Csr& a,
                                      RowDist row_dist, RowDist col_dist,
                                      std::span<const idx> row_perm,
                                      std::span<const idx> col_perm) {
  PROM_CHECK(row_dist.global_size() == a.nrows);
  PROM_CHECK(col_dist.global_size() == a.ncols);
  PROM_CHECK(static_cast<idx>(row_perm.size()) == a.nrows &&
             static_cast<idx>(col_perm.size()) == a.ncols);
  const int rank = comm.rank();
  const idx r0 = row_dist.begin(rank), r1 = row_dist.end(rank);

  // Inverse column permutation (index bookkeeping, no matrix values).
  std::vector<idx> col_inv(static_cast<std::size_t>(a.ncols));
  for (idx j = 0; j < a.ncols; ++j) col_inv[col_perm[j]] = j;

  la::Csr mine;
  mine.nrows = r1 - r0;
  mine.ncols = a.ncols;
  mine.rowptr.assign(static_cast<std::size_t>(mine.nrows) + 1, 0);
  std::vector<std::pair<idx, real>> row;
  for (idx i = r0; i < r1; ++i) {
    const idx old_row = row_perm[i];
    row.clear();
    for (nnz_t k = a.rowptr[old_row]; k < a.rowptr[old_row + 1]; ++k) {
      row.emplace_back(col_inv[a.colidx[k]], a.vals[k]);
    }
    std::sort(row.begin(), row.end());
    for (const auto& [c, v] : row) {
      mine.colidx.push_back(c);
      mine.vals.push_back(v);
    }
    mine.rowptr[i - r0 + 1] = static_cast<nnz_t>(mine.colidx.size());
  }
  return from_local_rows(comm, mine, std::move(row_dist),
                         std::move(col_dist));
}

void DistCsr::spmv(parx::Comm& comm, std::span<const real> x_local,
                   std::span<real> y_local) const {
  const idx n_own = cols_.local_size(rank_);
  PROM_CHECK(static_cast<idx>(x_local.size()) == n_own);
  PROM_CHECK(static_cast<idx>(y_local.size()) == local_.nrows);

  plan_.post(comm, x_local);
  std::copy(x_local.begin(), x_local.end(), x_ext_.begin());
  if (halo_mode() == HaloMode::kOverlap) {
    {
      const obs::Span span("halo.interior");
      local_.spmv_rows(x_ext_, y_local, interior_rows_);
    }
    plan_.finish(comm, x_ext_);
    const obs::Span span("halo.boundary");
    local_.spmv_rows(x_ext_, y_local, boundary_rows_);
  } else {
    plan_.finish_rank_order(comm, x_ext_);
    local_.spmv(x_ext_, y_local);
  }
}

void DistCsr::residual(parx::Comm& comm, std::span<const real> b_local,
                       std::span<const real> x_local,
                       std::span<real> r_local) const {
  const idx n_own = cols_.local_size(rank_);
  PROM_CHECK(static_cast<idx>(x_local.size()) == n_own);
  PROM_CHECK(static_cast<idx>(b_local.size()) == local_.nrows &&
             static_cast<idx>(r_local.size()) == local_.nrows);

  plan_.post(comm, x_local);
  std::copy(x_local.begin(), x_local.end(), x_ext_.begin());
  if (halo_mode() == HaloMode::kOverlap) {
    {
      const obs::Span span("halo.interior");
      local_.residual_rows(b_local, x_ext_, r_local, interior_rows_);
    }
    plan_.finish(comm, x_ext_);
    const obs::Span span("halo.boundary");
    local_.residual_rows(b_local, x_ext_, r_local, boundary_rows_);
  } else {
    plan_.finish_rank_order(comm, x_ext_);
    local_.residual(b_local, x_ext_, r_local);
  }
}

void DistCsr::spmv_transpose(parx::Comm& comm, std::span<const real> x_local,
                             std::span<real> y_local) const {
  const idx n_own_cols = cols_.local_size(rank_);
  PROM_CHECK(static_cast<idx>(x_local.size()) == local_.nrows);
  PROM_CHECK(static_cast<idx>(y_local.size()) == n_own_cols);

  // Local A^T x over the extended column space; ghost contributions then
  // travel the plan's reverse path back to their owners. Every owned
  // entry of y_local is overwritten by the copy, so no zero-fill.
  local_.spmv_transpose(x_local, y_ext_);
  plan_.reverse_post(comm, y_ext_);
  for (idx c = 0; c < n_own_cols; ++c) y_local[c] = y_ext_[c];
  plan_.reverse_accumulate(comm, y_local);
}

void DistCsr::spmm(parx::Comm& comm, const la::MultiVec& x_local,
                   la::MultiVec& y_local) const {
  const idx n_own = cols_.local_size(rank_);
  const int k = x_local.cols();
  PROM_CHECK(x_local.rows() == n_own && y_local.rows() == local_.nrows &&
             y_local.cols() == k);
  if (x_ext_mv_.rows() != local_.ncols || x_ext_mv_.cols() != k) {
    x_ext_mv_.resize(local_.ncols, k);
  }

  plan_.post_mv(comm, x_local);
  for (int j = 0; j < k; ++j) {
    std::copy(x_local.col_data(j), x_local.col_data(j) + n_own,
              x_ext_mv_.col_data(j));
  }
  if (halo_mode() == HaloMode::kOverlap) {
    {
      const obs::Span span("halo.interior");
      local_.spmm_rows(x_ext_mv_, y_local, interior_rows_);
    }
    plan_.finish_mv(comm, x_ext_mv_);
    const obs::Span span("halo.boundary");
    local_.spmm_rows(x_ext_mv_, y_local, boundary_rows_);
  } else {
    plan_.finish_rank_order_mv(comm, x_ext_mv_);
    local_.spmm(x_ext_mv_, y_local);
  }
}

void DistCsr::residual_mv(parx::Comm& comm, const la::MultiVec& b_local,
                          const la::MultiVec& x_local,
                          la::MultiVec& r_local) const {
  const idx n_own = cols_.local_size(rank_);
  const int k = x_local.cols();
  PROM_CHECK(x_local.rows() == n_own && b_local.rows() == local_.nrows &&
             r_local.rows() == local_.nrows && b_local.cols() == k &&
             r_local.cols() == k);
  if (x_ext_mv_.rows() != local_.ncols || x_ext_mv_.cols() != k) {
    x_ext_mv_.resize(local_.ncols, k);
  }

  plan_.post_mv(comm, x_local);
  for (int j = 0; j < k; ++j) {
    std::copy(x_local.col_data(j), x_local.col_data(j) + n_own,
              x_ext_mv_.col_data(j));
  }
  if (halo_mode() == HaloMode::kOverlap) {
    {
      const obs::Span span("halo.interior");
      local_.residual_mv_rows(b_local, x_ext_mv_, r_local, interior_rows_);
    }
    plan_.finish_mv(comm, x_ext_mv_);
    const obs::Span span("halo.boundary");
    local_.residual_mv_rows(b_local, x_ext_mv_, r_local, boundary_rows_);
  } else {
    plan_.finish_rank_order_mv(comm, x_ext_mv_);
    local_.residual_mv(b_local, x_ext_mv_, r_local);
  }
}

void DistCsr::spmm_transpose(parx::Comm& comm, const la::MultiVec& x_local,
                             la::MultiVec& y_local) const {
  const idx n_own_cols = cols_.local_size(rank_);
  const int k = x_local.cols();
  PROM_CHECK(x_local.rows() == local_.nrows && y_local.rows() == n_own_cols &&
             y_local.cols() == k);
  if (y_ext_mv_.rows() != local_.ncols || y_ext_mv_.cols() != k) {
    y_ext_mv_.resize(local_.ncols, k);
  }

  // Per-column local transpose (already deterministic), then ONE blocked
  // reverse exchange ships every column's ghost contributions per peer.
  for (int j = 0; j < k; ++j) {
    local_.spmv_transpose(x_local.col(j), y_ext_mv_.col(j));
  }
  plan_.reverse_post_mv(comm, y_ext_mv_);
  for (int j = 0; j < k; ++j) {
    std::copy(y_ext_mv_.col_data(j), y_ext_mv_.col_data(j) + n_own_cols,
              y_local.col_data(j));
  }
  plan_.reverse_accumulate_mv(comm, y_local);
}

la::Csr DistCsr::local_diagonal_block() const {
  const idx n_own_cols = cols_.local_size(rank_);
  la::Csr d;
  d.nrows = local_.nrows;
  d.ncols = n_own_cols;
  d.rowptr.assign(static_cast<std::size_t>(local_.nrows) + 1, 0);
  for (idx i = 0; i < local_.nrows; ++i) {
    for (nnz_t k = local_.rowptr[i]; k < local_.rowptr[i + 1]; ++k) {
      if (local_.colidx[k] < n_own_cols) {
        d.colidx.push_back(local_.colidx[k]);
        d.vals.push_back(local_.vals[k]);
      }
    }
    d.rowptr[i + 1] = static_cast<nnz_t>(d.colidx.size());
  }
  return d;
}

}  // namespace prom::dla
