// Serial/distributed equivalence: the parx backend runs the *same*
// templated solver bodies (la/krylov_any.h, mg/cycle_any.h) as the serial
// backend, so V-cycle, FMG, and MG-PCG on virtual ranks must reproduce the
// serial iterate history and final residual to working precision at every
// rank count, and every rank must report the identical KrylovResult.
#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "app/driver.h"
#include "dla/dist_mg.h"
#include "fem/assembly.h"
#include "fem/scalar.h"
#include "la/vec.h"
#include "mg/cycle.h"
#include "mg/hierarchy.h"
#include "mg/solver.h"
#include "parx/runtime.h"

namespace prom {
namespace {

struct Problem {
  mg::Hierarchy hierarchy;
  std::vector<real> rhs;
  idx num_vertices = 0;
};

Problem build_problem(mg::SmootherKind kind) {
  const app::ModelProblem p = app::make_box_problem(6);
  fem::FeProblem fe(p.mesh, p.materials, p.dofmap);
  fem::LinearSystem sys = fem::assemble_linear_system(fe);
  mg::MgOptions mo;
  mo.smoother = kind;
  mo.coarsest_max_dofs = 60;  // force a multi-level hierarchy on a small box
  Problem out;
  out.rhs = std::move(sys.rhs);
  out.num_vertices = p.mesh.num_vertices();
  out.hierarchy =
      mg::Hierarchy::build(p.mesh, p.dofmap, std::move(sys.stiffness), mo);
  return out;
}

/// Scalar (block-size-1) problem of the given class on the same small box.
/// Point Jacobi both serially and distributed (processor-block Jacobi
/// degenerates to it), so the smoother is backend-identical like the
/// elasticity cases above.
Problem build_scalar_problem(app::EquationClass eq) {
  const app::ModelProblem p = eq == app::EquationClass::kPoissonHet
                                  ? app::make_poisson_het_problem(7, 1e3)
                                  : app::make_advdiff_problem(7, 20.0);
  fem::ScalarSystem sys =
      fem::assemble_scalar_system(p.mesh, p.scalar_dofmap, p.coeffs);
  mg::MgOptions mo = app::default_mg_options(eq);
  mo.smoother = mg::SmootherKind::kJacobi;
  mo.coarsest_max_dofs = 30;
  Problem out;
  out.rhs = std::move(sys.rhs);
  out.num_vertices = p.mesh.num_vertices();
  out.hierarchy = mg::Hierarchy::build_scalar(p.mesh, p.scalar_dofmap,
                                              std::move(sys.stiffness), mo);
  return out;
}

/// Contiguous-block vertex ownership (monotone in vertex id), the layout
/// whose induced per-level dof permutations stay closest to the serial
/// ordering.
std::vector<idx> block_owner(idx nv, int p) {
  std::vector<idx> owner(static_cast<std::size_t>(nv));
  for (idx v = 0; v < nv; ++v) {
    owner[static_cast<std::size_t>(v)] =
        static_cast<idx>((static_cast<std::int64_t>(v) * p) / nv);
  }
  return owner;
}

enum class Run { kVcycle, kFmg, kPcg, kKrylov };

struct DistOutcome {
  std::vector<real> x;  ///< solution mapped back to the serial ordering
  std::vector<la::KrylovResult> results;  ///< per rank (PCG only)
};

DistOutcome run_distributed(const Problem& prob, int p, Run what,
                            const mg::MgSolveOptions& so = {},
                            mg::MatrixFormat format = mg::MatrixFormat::kCsr) {
  DistOutcome out;
  out.x.assign(prob.rhs.size(), 0);
  out.results.resize(static_cast<std::size_t>(p));
  const std::vector<idx> owner = block_owner(prob.num_vertices, p);
  parx::Runtime::run(p, [&](parx::Comm& comm) {
    const dla::DistHierarchy dist =
        dla::DistHierarchy::build(comm, prob.hierarchy, owner, format);
    const auto& perm = dist.permutation(0);
    const dla::RowDist& rows = dist.level(0).a.row_dist();
    const idx b0 = rows.begin(comm.rank());
    const idx nloc = rows.local_size(comm.rank());
    std::vector<real> b_local(static_cast<std::size_t>(nloc));
    for (idx i = 0; i < nloc; ++i) b_local[i] = prob.rhs[perm[b0 + i]];
    std::vector<real> x_local(static_cast<std::size_t>(nloc), 0);
    switch (what) {
      case Run::kVcycle:
        dist_vcycle(comm, dist, 0, b_local, x_local);
        break;
      case Run::kFmg:
        x_local = dist_fmg_cycle(comm, dist, b_local);
        break;
      case Run::kPcg:
        out.results[comm.rank()] =
            dist_mg_pcg_solve(comm, dist, b_local, x_local, so);
        break;
      case Run::kKrylov:
        out.results[comm.rank()] =
            dist_mg_krylov_solve(comm, dist, b_local, x_local, so);
        break;
    }
    // Ranks own disjoint ranges: the scatter back is race-free.
    for (idx i = 0; i < nloc; ++i) out.x[perm[b0 + i]] = x_local[i];
  });
  return out;
}

void expect_vectors_close(const std::vector<real>& ref,
                          const std::vector<real>& got, real rel_tol) {
  ASSERT_EQ(ref.size(), got.size());
  real scale = 0;
  for (real v : ref) scale = std::max(scale, std::fabs(v));
  ASSERT_GT(scale, 0);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got[i], ref[i], rel_tol * scale) << "entry " << i;
  }
}

class EquivRanks : public ::testing::TestWithParam<int> {};

TEST_P(EquivRanks, VcycleMatchesSerial) {
  const Problem prob = build_problem(mg::SmootherKind::kJacobi);
  ASSERT_GE(prob.hierarchy.num_levels(), 2);
  std::vector<real> x_ref(prob.rhs.size(), 0);
  mg::vcycle(prob.hierarchy, 0, prob.rhs, x_ref);
  const DistOutcome got = run_distributed(prob, GetParam(), Run::kVcycle);
  expect_vectors_close(x_ref, got.x, 1e-12);
}

TEST_P(EquivRanks, FmgMatchesSerial) {
  const Problem prob = build_problem(mg::SmootherKind::kJacobi);
  const std::vector<real> x_ref = mg::fmg_cycle(prob.hierarchy, prob.rhs);
  const DistOutcome got = run_distributed(prob, GetParam(), Run::kFmg);
  expect_vectors_close(x_ref, got.x, 1e-12);
}

TEST_P(EquivRanks, PcgHistoryMatchesSerial) {
  const Problem prob = build_problem(mg::SmootherKind::kJacobi);
  mg::MgSolveOptions so;
  so.rtol = 1e-8;
  so.track_history = true;
  std::vector<real> x_ref(prob.rhs.size(), 0);
  const la::KrylovResult ref =
      mg::mg_pcg_solve(prob.hierarchy, prob.rhs, x_ref, so);
  ASSERT_TRUE(ref.converged);
  ASSERT_FALSE(ref.history.empty());

  const DistOutcome got = run_distributed(prob, GetParam(), Run::kPcg, so);
  const la::KrylovResult& d = got.results[0];
  EXPECT_TRUE(d.converged);
  EXPECT_EQ(d.iterations, ref.iterations);
  // Same templated PCG body, same convergence helper: the iterate history
  // agrees to the allreduce-vs-serial rounding of the dot products.
  ASSERT_EQ(d.history.size(), ref.history.size());
  for (std::size_t i = 0; i < ref.history.size(); ++i) {
    EXPECT_NEAR(d.history[i], ref.history[i], 1e-12 * ref.history[0])
        << "history entry " << i;
  }
  EXPECT_NEAR(d.final_relres, ref.final_relres, 1e-12);
  expect_vectors_close(x_ref, got.x, 1e-10);

  // The reductions are collective and deterministic, so every rank holds
  // the bit-identical KrylovResult.
  for (int r = 1; r < GetParam(); ++r) {
    const la::KrylovResult& other = got.results[r];
    EXPECT_EQ(other.iterations, d.iterations);
    EXPECT_EQ(other.converged, d.converged);
    EXPECT_EQ(other.breakdown, d.breakdown);
    EXPECT_EQ(other.final_relres, d.final_relres);
    ASSERT_EQ(other.history.size(), d.history.size());
    for (std::size_t i = 0; i < d.history.size(); ++i) {
      EXPECT_EQ(other.history[i], d.history[i]) << "rank " << r;
    }
  }
}

/// Shared check: the distributed result reproduces the serial history to
/// 1e-12 of ||b|| with the identical iteration count, and every rank holds
/// the bit-identical KrylovResult.
void expect_histories_match(const la::KrylovResult& ref,
                            const DistOutcome& got, int p) {
  const la::KrylovResult& d = got.results[0];
  EXPECT_TRUE(d.converged);
  EXPECT_EQ(d.iterations, ref.iterations);
  ASSERT_EQ(d.history.size(), ref.history.size());
  for (std::size_t i = 0; i < ref.history.size(); ++i) {
    EXPECT_NEAR(d.history[i], ref.history[i], 1e-12 * ref.history[0])
        << "history entry " << i;
  }
  EXPECT_NEAR(d.final_relres, ref.final_relres, 1e-12);
  for (int r = 1; r < p; ++r) {
    const la::KrylovResult& other = got.results[r];
    EXPECT_EQ(other.iterations, d.iterations);
    EXPECT_EQ(other.converged, d.converged);
    EXPECT_EQ(other.final_relres, d.final_relres);
    ASSERT_EQ(other.history.size(), d.history.size());
    for (std::size_t i = 0; i < d.history.size(); ++i) {
      EXPECT_EQ(other.history[i], d.history[i]) << "rank " << r;
    }
  }
}

// Scalar (block-size-1) hierarchy, SPD class: the same backend-generic
// PCG on a one-dof-per-vertex operator chain — MIS grids, Galerkin chain,
// halo plans, and agglomeration all at block size 1.
TEST_P(EquivRanks, ScalarPoissonPcgHistoryMatchesSerial) {
  const Problem prob =
      build_scalar_problem(app::EquationClass::kPoissonHet);
  ASSERT_GE(prob.hierarchy.num_levels(), 2);
  ASSERT_EQ(prob.hierarchy.block_size(), 1);
  mg::MgSolveOptions so;
  so.rtol = 1e-8;
  so.track_history = true;
  std::vector<real> x_ref(prob.rhs.size(), 0);
  const la::KrylovResult ref =
      mg::mg_pcg_solve(prob.hierarchy, prob.rhs, x_ref, so);
  ASSERT_TRUE(ref.converged);
  ASSERT_FALSE(ref.history.empty());
  const DistOutcome got = run_distributed(prob, GetParam(), Run::kPcg, so);
  expect_histories_match(ref, got, GetParam());
  expect_vectors_close(x_ref, got.x, 1e-10);
}

// Non-symmetric class: right-preconditioned GMRES. The Hessenberg/Givens
// recurrence is replicated scalar state derived purely from backend
// reductions, so the distributed driver must track the serial history as
// tightly as PCG does.
TEST_P(EquivRanks, AdvdiffGmresHistoryMatchesSerial) {
  const Problem prob = build_scalar_problem(app::EquationClass::kAdvDiff);
  ASSERT_GE(prob.hierarchy.num_levels(), 2);
  ASSERT_EQ(prob.hierarchy.block_size(), 1);
  mg::MgSolveOptions so;
  so.rtol = 1e-8;
  so.track_history = true;
  so.krylov = la::KrylovKind::kGmres;
  std::vector<real> x_ref(prob.rhs.size(), 0);
  const la::KrylovResult ref =
      mg::mg_krylov_solve(prob.hierarchy, prob.rhs, x_ref, so);
  ASSERT_TRUE(ref.converged);
  ASSERT_FALSE(ref.history.empty());
  const DistOutcome got = run_distributed(prob, GetParam(), Run::kKrylov, so);
  expect_histories_match(ref, got, GetParam());
  expect_vectors_close(x_ref, got.x, 1e-8);
}

// Same operator through the short-recurrence driver (rho/alpha/omega are
// replicated scalars from the same reductions).
TEST_P(EquivRanks, AdvdiffBicgstabHistoryMatchesSerial) {
  const Problem prob = build_scalar_problem(app::EquationClass::kAdvDiff);
  mg::MgSolveOptions so;
  so.rtol = 1e-8;
  so.track_history = true;
  so.krylov = la::KrylovKind::kBicgstab;
  std::vector<real> x_ref(prob.rhs.size(), 0);
  const la::KrylovResult ref =
      mg::mg_krylov_solve(prob.hierarchy, prob.rhs, x_ref, so);
  ASSERT_TRUE(ref.converged);
  ASSERT_FALSE(ref.history.empty());
  const DistOutcome got = run_distributed(prob, GetParam(), Run::kKrylov, so);
  expect_histories_match(ref, got, GetParam());
  expect_vectors_close(x_ref, got.x, 1e-8);
}

// Node-block (BAIJ) solve path: the distributed bsr3 PCG must reproduce
// the *serial scalar CSR* iterate history — the blocked kernels accumulate
// each scalar row in the same order as CSR (block columns sorted by global
// position, padding contributes exact zeros), so the format change adds no
// rounding of its own on top of the backend's allreduce-vs-serial delta.
TEST_P(EquivRanks, Bsr3PcgHistoryMatchesSerialCsr) {
  Problem prob = build_problem(mg::SmootherKind::kJacobi);
  mg::MgSolveOptions so;
  so.rtol = 1e-8;
  so.track_history = true;
  std::vector<real> x_ref(prob.rhs.size(), 0);
  const la::KrylovResult ref =
      mg::mg_pcg_solve(prob.hierarchy, prob.rhs, x_ref, so);
  ASSERT_TRUE(ref.converged);
  ASSERT_FALSE(ref.history.empty());

  // Serial bsr3 against serial CSR first: same residual history to the
  // reassociation-free tolerance.
  prob.hierarchy.enable_bsr();
  mg::MgSolveOptions so_bsr = so;
  so_bsr.format = mg::MatrixFormat::kBsr3;
  std::vector<real> x_sb(prob.rhs.size(), 0);
  const la::KrylovResult sb =
      mg::mg_pcg_solve(prob.hierarchy, prob.rhs, x_sb, so_bsr);
  EXPECT_EQ(sb.iterations, ref.iterations);
  ASSERT_EQ(sb.history.size(), ref.history.size());
  for (std::size_t i = 0; i < ref.history.size(); ++i) {
    EXPECT_NEAR(sb.history[i], ref.history[i], 1e-12 * ref.history[0])
        << "serial bsr3 history entry " << i;
  }
  expect_vectors_close(x_ref, x_sb, 1e-12);

  // Distributed bsr3 at every rank count.
  const DistOutcome got = run_distributed(prob, GetParam(), Run::kPcg, so_bsr,
                                          mg::MatrixFormat::kBsr3);
  const la::KrylovResult& d = got.results[0];
  EXPECT_TRUE(d.converged);
  EXPECT_EQ(d.iterations, ref.iterations);
  ASSERT_EQ(d.history.size(), ref.history.size());
  for (std::size_t i = 0; i < ref.history.size(); ++i) {
    EXPECT_NEAR(d.history[i], ref.history[i], 1e-12 * ref.history[0])
        << "dist bsr3 history entry " << i;
  }
  EXPECT_NEAR(d.final_relres, ref.final_relres, 1e-12);
  expect_vectors_close(x_ref, got.x, 1e-10);
}

// Chebyshev estimates its eigenvalue bound with norm reductions whose
// rounding differs between the serial and allreduce backends, so the
// *smoother itself* differs slightly between backends; check convergence
// behavior rather than bitwise iterates.
TEST_P(EquivRanks, ChebyshevPcgConverges) {
  const Problem prob = build_problem(mg::SmootherKind::kChebyshev);
  mg::MgSolveOptions so;
  so.rtol = 1e-8;
  std::vector<real> x_ref(prob.rhs.size(), 0);
  const la::KrylovResult ref =
      mg::mg_pcg_solve(prob.hierarchy, prob.rhs, x_ref, so);
  ASSERT_TRUE(ref.converged);
  const DistOutcome got = run_distributed(prob, GetParam(), Run::kPcg, so);
  EXPECT_TRUE(got.results[0].converged);
  EXPECT_LE(got.results[0].final_relres, so.rtol);
  EXPECT_LE(std::abs(got.results[0].iterations - ref.iterations), 2);
  expect_vectors_close(x_ref, got.x, 1e-6);
}

// "pN" names let the CI rank matrix select one rank count per job with
// --gtest_filter='*/pN'.
INSTANTIATE_TEST_SUITE_P(Ranks, EquivRanks, ::testing::Values(1, 2, 4, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "p" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace prom
