// Axis-aligned bounding box; used by the Delaunay mesher (super-box of
// §4.8), the RCB partitioner, and mesh generators.
#pragma once

#include <algorithm>
#include <limits>
#include <span>

#include "geom/vec3.h"

namespace prom {

struct Aabb {
  Vec3 lo{std::numeric_limits<real>::max(), std::numeric_limits<real>::max(),
          std::numeric_limits<real>::max()};
  Vec3 hi{std::numeric_limits<real>::lowest(),
          std::numeric_limits<real>::lowest(),
          std::numeric_limits<real>::lowest()};

  void extend(const Vec3& p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }

  bool contains(const Vec3& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }

  Vec3 center() const { return (lo + hi) * real{0.5}; }
  Vec3 extent() const { return hi - lo; }

  /// Longest edge length of the box (0 for an empty/degenerate box).
  real max_extent() const {
    const Vec3 e = extent();
    return std::max({e.x, e.y, e.z, real{0}});
  }

  static Aabb of(std::span<const Vec3> points) {
    Aabb box;
    for (const Vec3& p : points) box.extend(p);
    return box;
  }
};

}  // namespace prom
